// Package jetstream is a reproduction of "JetStream: Graph Analytics on
// Streaming Data with Event-Driven Hardware Accelerator" (MICRO 2021): an
// event-driven streaming-graph accelerator model that incrementally
// re-evaluates standing queries (SSSP, SSWP, BFS, Connected Components,
// incremental PageRank, Adsorption) over batches of edge insertions and
// deletions, together with the GraphPulse static baseline and the
// KickStarter/GraphBolt software comparators used in the paper's evaluation.
//
// Quick start:
//
//	g := jetstream.RMAT(jetstream.RMATConfig{Vertices: 10000, Edges: 80000, Seed: 1})
//	sys, _ := jetstream.New(g, jetstream.SSSP(0))
//	init := sys.RunInitial()
//	res, _ := sys.ApplyBatch(jetstream.Batch{
//	    Inserts: []jetstream.Edge{{Src: 3, Dst: 5, Weight: 2}},
//	})
//	fmt.Println(init.Duration, res.Duration, sys.State()[5])
package jetstream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"jetstream/internal/algo"
	"jetstream/internal/core"
	"jetstream/internal/engine"
	"jetstream/internal/graph"
	"jetstream/internal/obs"
	"jetstream/internal/stats"
	"jetstream/internal/stream"
	"jetstream/internal/wal"
	"jetstream/internal/window"
)

// Re-exported substrate types, so downstream code only imports this package.
type (
	// Graph is an immutable CSR graph version with both edge directions
	// indexed.
	Graph = graph.CSR
	// Edge is a directed weighted edge.
	Edge = graph.Edge
	// Batch is one streaming update: edges to insert and delete.
	Batch = graph.Batch
	// Algorithm is a DAIC kernel (Reduce/Propagate/Identity).
	Algorithm = algo.Algorithm
	// Counters is the work/traffic counter set.
	Counters = stats.Counters
	// RMATConfig parameterizes the social-network-style generator.
	RMATConfig = graph.RMATConfig
	// WebCrawlConfig parameterizes the web-crawl-style generator.
	WebCrawlConfig = graph.WebCrawlConfig
	// GridConfig parameterizes the road-network-style generator.
	GridConfig = graph.GridConfig
	// StreamConfig parameterizes the update-batch generator.
	StreamConfig = stream.Config
	// StreamGenerator draws successive valid update batches.
	StreamGenerator = stream.Generator
	// AcceleratorConfig describes the modeled hardware (paper Table 1).
	AcceleratorConfig = engine.Config
	// OptLevel selects the deletion-recovery pruning optimization.
	OptLevel = core.OptLevel
	// IngestPolicy selects how ApplyBatch treats invalid updates.
	IngestPolicy = graph.IngestPolicy
	// BatchError is the typed rejection the Strict ingest policy returns; it
	// lists every invalid update found.
	BatchError = graph.BatchError
	// BatchIssue describes one invalid update within a rejected batch.
	BatchIssue = graph.BatchIssue
	// WatchdogConfig parameterizes the divergence watchdog (see WithWatchdog).
	WatchdogConfig = core.WatchdogConfig
)

// Optimization levels (paper §5).
const (
	OptBase = core.OptBase
	OptVAP  = core.OptVAP
	OptDAP  = core.OptDAP
)

// Ingest policies for invalid updates (see WithIngest).
const (
	// Strict rejects a batch containing any invalid update with a *BatchError
	// and leaves the query state untouched (the default).
	Strict = graph.Strict
	// Repair drops invalid updates, applies the rest, and counts the drops in
	// the stats (UpdatesDropped, BatchesRepaired).
	Repair = graph.Repair
)

// Graph constructors.
var (
	// BuildGraph constructs a CSR over n vertices from an edge list.
	BuildGraph = graph.Build
	// Symmetrize mirrors every edge (required for Connected Components).
	Symmetrize = graph.Symmetrize
	// RMAT generates a power-law social-network-style graph.
	RMAT = graph.RMAT
	// WebCrawl generates a narrow, long-path web-style graph.
	WebCrawl = graph.WebCrawl
	// Grid generates a road-network-style lattice.
	Grid = graph.Grid
	// ErdosRenyi generates a uniform random graph.
	ErdosRenyi = graph.ErdosRenyi
	// ReadEdgeList parses a "src dst [weight]" text edge list.
	ReadEdgeList = graph.ReadEdgeList
	// WriteEdgeList serializes a graph in the same format.
	WriteEdgeList = graph.WriteEdgeList
	// NewStream returns a deterministic update-batch generator.
	NewStream = stream.NewGenerator
)

// Algorithm constructors for the six evaluated kernels.
func SSSP(root uint32) Algorithm { return algo.NewSSSP(root) }
func SSWP(root uint32) Algorithm { return algo.NewSSWP(root) }
func BFS(root uint32) Algorithm  { return algo.NewBFS(root) }
func CC() Algorithm              { return algo.NewCC() }

// WCC returns the windowed Connected Components kernel: identical DAIC
// functions to CC, validated against a union-find rebuild-on-expiry oracle so
// components split correctly when a sliding window ages out bridging edges.
// Like CC it requires a symmetric graph.
func WCC() Algorithm { return algo.NewWCC() }

// PageRank returns the incremental PageRank kernel; eps <= 0 selects the
// default convergence threshold.
func PageRank(eps float64) Algorithm { return algo.NewPageRank(eps) }

// Adsorption returns the Adsorption kernel; eps <= 0 selects the default.
func Adsorption(eps float64) Algorithm { return algo.NewAdsorption(eps) }

// AlgorithmSpec names a kernel and its parameters. Fields irrelevant to the
// kernel are ignored (Root for cc/pagerank/adsorption, Eps for the selective
// kernels), and new kernel parameters become new fields rather than new
// positional arguments. The spec is the wire form of an algorithm: it
// marshals to JSON, and unmarshaling validates the name eagerly (see
// UnmarshalJSON), so a service can reject a bad tenant declaration before
// building anything.
type AlgorithmSpec struct {
	// Name is one of "sssp", "sswp", "bfs", "cc", "wcc", "pagerank",
	// "adsorption".
	Name string `json:"name"`
	// Root is the query root for sssp/sswp/bfs.
	Root uint32 `json:"root,omitempty"`
	// Eps is the convergence threshold for pagerank/adsorption; <= 0 selects
	// the kernel's default.
	Eps float64 `json:"eps,omitempty"`
}

// ErrUnknownAlgorithm is wrapped by NewAlgorithm and AlgorithmSpec
// unmarshaling when the spec names no known kernel. Match it with errors.Is.
var ErrUnknownAlgorithm = algo.ErrUnknown

// AlgorithmNames lists the kernel names a declarative AlgorithmSpec may use,
// in a stable order.
func AlgorithmNames() []string { return algo.SpecNames() }

// UnmarshalJSON decodes a spec strictly: unknown JSON fields are rejected (a
// misspelled parameter must not silently disappear), and an algorithm name
// outside AlgorithmNames fails with an error wrapping ErrUnknownAlgorithm.
func (s *AlgorithmSpec) UnmarshalJSON(data []byte) error {
	type plain AlgorithmSpec
	var p plain
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return fmt.Errorf("jetstream: algorithm spec: %w", err)
	}
	if !algo.ValidSpecName(p.Name) {
		return fmt.Errorf("jetstream: algorithm spec: %w %q (valid: %s)",
			ErrUnknownAlgorithm, p.Name, strings.Join(algo.SpecNames(), ", "))
	}
	*s = AlgorithmSpec(p)
	return nil
}

// NewAlgorithm resolves spec to a kernel.
func NewAlgorithm(spec AlgorithmSpec) (Algorithm, error) {
	a, err := algo.New(spec.Name, spec.Root, spec.Eps)
	if err != nil {
		return nil, fmt.Errorf("jetstream: %w", err)
	}
	return a, nil
}

// Option configures a System. Options compose in any order.
type Option func(*options)

type options struct {
	opt       OptLevel
	slices    int
	timing    bool
	detailed  bool
	pipeline  bool
	parallel  int
	accel     *engine.Config
	ingest    IngestPolicy
	watchdog  WatchdogConfig
	observer  Observer
	rebuild   bool
	inlineDeg int
	walDir    string
	walOpts   wal.Options
	window    int

	// err carries a deferred construction failure: options built from wire
	// data (Config.Options) cannot return an error themselves, so they record
	// it here and New rejects the whole construction under ErrConfigConflict.
	err error
}

// newOptions returns the library defaults New starts from; Config and its
// round-trip tests rely on this being the single source of default truth.
func newOptions() *options { return &options{opt: OptDAP, timing: true} }

// fail records a deferred option error (first error wins).
func (op *options) fail(err error) {
	if op.err == nil {
		op.err = err
	}
}

// WithOpt selects the deletion-recovery optimization (default OptDAP).
func WithOpt(o OptLevel) Option {
	return func(op *options) { op.opt = o }
}

// WithSlices partitions the graph into k slices (for graphs exceeding the
// on-chip queue capacity).
func WithSlices(k int) Option { return func(op *options) { op.slices = k } }

// WithTiming toggles the cycle-accurate timing model (default on). With it
// off the system is a fast functional streaming-graph engine.
func WithTiming(on bool) Option { return func(op *options) { op.timing = on } }

// WithDetailedTiming selects the per-event pipeline timing model (contended
// apply units, generation streams, crossbar ports and coalescer pipelines)
// instead of the default batch-level throughput model. Slower to simulate;
// resolves port-contention hot spots.
func WithDetailedTiming() Option {
	return func(op *options) { op.detailed = true }
}

// WithPipelineOverlap overlaps the functional compute with the cycle
// simulation when the timing model is on: the engine hands each row batch's
// charge records to a consumer goroutine over a bounded two-slot FIFO and
// keeps computing while the simulator drains. A pure wall-clock optimization
// — cycle counts and all statistics are bitwise-identical with it on or off,
// and it is a documented no-op when timing is off (including with
// WithTiming(false) or parallel functional execution).
func WithPipelineOverlap(on bool) Option {
	return func(op *options) { op.pipeline = on }
}

// WithInlineDegree tunes the degree-adaptive adjacency layout of the
// incremental host path: vertices with at most n neighbors in a direction are
// stored in per-vertex cache-line records instead of the shared slack slab,
// so the common low-degree lookup costs one line fill and zero pointer
// chases. n = 0 keeps the library default (4), n in [1, 4] sets the
// threshold, n = -1 disables the inline layout entirely (uniform slab). The
// logical graph and query results are identical at every setting. Ignored
// under WithGraphRebuild.
func WithInlineDegree(n int) Option {
	return func(op *options) {
		if n < -1 || n > 4 {
			op.fail(fmt.Errorf("WithInlineDegree(%d): threshold must be -1 (disable), 0 (default), or 1..4", n))
			return
		}
		op.inlineDeg = n
	}
}

// WithParallelism shards the functional compute phases across p worker
// goroutines, one per simulated PE (see AcceleratorConfig.Parallelism). The
// default is the modeled PE count (8). p = 1 reproduces the sequential engine
// bit for bit; higher parallelism converges to the identical fixpoint for the
// monotonic kernels (SSSP/SSWP/BFS/CC) and agrees within the epsilon bound
// for the accumulative ones (PageRank/Adsorption).
//
// Parallel execution requires the timing model off and slicing off: the
// timing model reconstructs hardware parallelism from the deterministic
// sequential trace, and slicing processes one slice at a time by design.
// Combining WithParallelism(p > 1) with timing (the default — pass
// WithTiming(false)) or WithSlices(k > 1) makes New fail with
// ErrConfigConflict; earlier versions silently fell back to sequential.
func WithParallelism(p int) Option {
	return func(op *options) { op.parallel = p }
}

// WithAccelerator overrides the hardware configuration (the event mode and
// vertex footprint still follow the optimization level).
func WithAccelerator(cfg AcceleratorConfig) Option {
	return func(op *options) { op.accel = &cfg }
}

// WithIngest selects the policy for batches containing invalid updates
// (out-of-range endpoints, NaN/Inf/non-positive weights, duplicate pairs,
// deletes of absent edges, inserts of present edges). The default is Strict.
func WithIngest(p IngestPolicy) Option {
	return func(op *options) { op.ingest = p }
}

// WithGraphRebuild applies every batch by rebuilding the full CSR (the
// paper's simplest host model: write a new CSR, swap the pointer) instead of
// the default incremental slack-based mutation that touches only the
// adjacencies a batch changes. Query results are identical either way; the
// switch exists to measure the host-side cost difference and as the
// reference side of differential tests.
func WithGraphRebuild() Option {
	return func(op *options) { op.rebuild = true }
}

// WithWAL attaches a durable write-ahead delta log in dir with the default
// per-batch fsync policy: every applied batch's edge delta is journaled (and
// synced) before the engine mutates any state, and a baseline snapshot is
// written to dir on the first batch, so after a crash RecoverFromDir rebuilds
// exactly the durable prefix of the stream. The directory must not already
// hold a snapshot — resuming an existing WAL directory goes through
// RecoverFromDir instead.
func WithWAL(dir string) Option { return func(op *options) { op.walDir = dir } }

// WithWALOptions is WithWAL with an explicit sync policy, sync interval, or
// filesystem override (see WALOptions).
func WithWALOptions(dir string, o WALOptions) Option {
	return func(op *options) { op.walDir = dir; op.walOpts = o }
}

// WithWindow bounds every edge's lifetime to ttlBatches batches — the
// infinite-window streaming model where the graph holds exactly the edges
// inserted in the last ttlBatches batches (the initial graph counts as epoch
// 0 and ages out like any other). On each ApplyBatch the system synthesizes
// the aging-based deletion batch for the edges whose epoch falls out of the
// window, merges it with the user's (sanitized) updates, and applies the
// combined delta through the ordinary slack-based CSR path, so expiry runs
// through the same deletion-recovery machinery before the functional phase —
// its cost is O(expired edges), never O(V+E). A user delete of an expiring
// edge wins (no duplicate); a same-batch delete+insert of a pair refreshes
// its age. Expired counts surface via Result.Expired and the
// jetstream_window_expired_edges_total counter. ttlBatches must be at least
// 1; the window survives Checkpoint/Restore (format v5) and WAL recovery.
func WithWindow(ttlBatches int) Option {
	return func(op *options) { op.window = ttlBatches }
}

// WithWatchdog enables the divergence watchdog: every cfg.Every batches the
// streaming state is verified against a from-scratch solve (sampled down to
// cfg.Sample vertices when set), and a deviation beyond cfg.Epsilon triggers
// an automatic cold-start recompute — the paper's GraphPulse baseline as the
// recovery of last resort. Disabled by default.
func WithWatchdog(cfg WatchdogConfig) Option {
	return func(op *options) { op.watchdog = cfg }
}

// Result summarizes one operation (initial run or one batch).
type Result struct {
	// Cycles consumed by this operation at the accelerator clock.
	Cycles uint64
	// Duration is Cycles at the configured clock.
	Duration time.Duration
	// Stats holds the work counters for this operation only.
	Stats Counters

	// Repaired counts the invalid updates dropped by the Repair ingest policy
	// for this batch. It always equals Stats.UpdatesDropped for the same
	// batch: drop accounting is per batch and only for batches that applied.
	Repaired uint64
	// Issues details each update the Repair policy dropped from this batch,
	// in batch order — the deterministic per-batch repair report.
	Issues []BatchIssue
	// Expired counts the edges the sliding window aged out in this batch
	// (always 0 without WithWindow). The synthesized deletions are applied
	// together with the batch's own updates, before the functional phase.
	Expired uint64
	// Checked reports whether the divergence watchdog ran after this batch.
	Checked bool
	// Divergence is the deviation the watchdog measured (when Checked).
	Divergence float64
	// FellBack reports whether the watchdog triggered a cold-start recompute.
	FellBack bool
}

// ErrConfigConflict is returned by New when requested options cannot be
// honored together (e.g. WithParallelism(>1) with the timing model or
// slicing). Match it with errors.Is; the wrapped message names the options.
var ErrConfigConflict = errors.New("jetstream: conflicting options")

// System is a standing query over a streaming graph: the JetStream engine,
// its current graph version, and its converged vertex states.
//
// Concurrency contract: a System is single-writer. ApplyBatch, RunInitial,
// Checkpoint, Compact, Sync, Restore and Close must not overlap — callers
// multiplexing a System across goroutines (a service hosting one System per
// tenant, say) must serialize these per System with their own lock. Read-only
// accessors (State, Graph, Metrics, Batches, ...) are safe only between such
// operations. As a cheap defense against silent state corruption, the
// mutating entry points carry an atomic in-use guard: an overlapping call
// fails fast with an error wrapping ErrConcurrentApply instead of racing.
type System struct {
	js      *core.JetStream
	alg     Algorithm
	st      *stats.Counters
	cfg     core.Config
	ingest  IngestPolicy
	wd      WatchdogConfig
	prev    stats.Counters
	batches uint64
	init    bool

	// Durability: the write-ahead delta log (nil without WithWAL), its
	// directory and options, and whether the baseline snapshot covering the
	// log's floor is already on disk.
	wal      *wal.Log
	walDir   string
	walOpts  wal.Options
	snapDone bool

	// Sliding window: per-edge insertion ages (nil without WithWindow) and
	// the cumulative expired-edge counter.
	win      *window.Ring
	expiredC *obs.Counter

	// Observability: every System owns a metrics registry (Metrics,
	// MetricsHandler work without any option); tr is the WithObserver
	// callback, obs.Nop otherwise.
	reg      *obs.Registry
	tr       obs.Tracer
	trSeq    uint64
	latency  *obs.Histogram
	batchesC *obs.Counter

	// inUse is the concurrency tripwire: set for the duration of every
	// mutating entry point so an overlapping call from another goroutine
	// fails with ErrConcurrentApply instead of corrupting engine state.
	inUse atomic.Bool
}

// ErrConcurrentApply is returned when a mutating System operation (ApplyBatch,
// Checkpoint, Compact, Sync, Close, RunInitial) overlaps another one on the
// same System. It signals a caller-side locking bug: a System is single-writer
// and must be serialized per instance. Match it with errors.Is.
var ErrConcurrentApply = errors.New("jetstream: System used concurrently")

// acquire claims the single-writer guard for op, failing fast on overlap.
func (s *System) acquire(op string) error {
	if !s.inUse.CompareAndSwap(false, true) {
		return fmt.Errorf("%w: %s overlapped another operation; serialize access to each System", ErrConcurrentApply, op)
	}
	return nil
}

// release returns the single-writer guard.
func (s *System) release() { s.inUse.Store(false) }

// New builds a System for query a over initial graph g.
func New(g *Graph, a Algorithm, opts ...Option) (*System, error) {
	if algo.NeedsSymmetric(a) && !g.Symmetric() {
		return nil, fmt.Errorf("jetstream: %s requires a symmetric graph; use Symmetrize", a.Name())
	}
	op := newOptions()
	for _, o := range opts {
		o(op)
	}
	if op.err != nil {
		return nil, fmt.Errorf("%w: %w", ErrConfigConflict, op.err)
	}
	if op.parallel > 1 {
		if op.timing {
			return nil, fmt.Errorf("%w: WithParallelism(%d) requires the timing model off — add WithTiming(false)", ErrConfigConflict, op.parallel)
		}
		if op.slices > 1 {
			return nil, fmt.Errorf("%w: WithParallelism(%d) cannot be combined with WithSlices(%d)", ErrConfigConflict, op.parallel, op.slices)
		}
	}
	cfg := core.ConfigWithOpt(op.opt)
	if op.accel != nil {
		mode, vb := cfg.Engine.EventMode, cfg.Engine.VertexBytes
		cfg.Engine = *op.accel
		cfg.Engine.EventMode, cfg.Engine.VertexBytes = mode, vb
	}
	cfg.Slices = op.slices
	cfg.RebuildGraph = op.rebuild
	cfg.InlineDegree = op.inlineDeg
	cfg.Engine.Timing = op.timing
	cfg.Engine.DetailedTiming = op.detailed
	cfg.Engine.PipelineOverlap = op.pipeline
	if op.parallel > 0 {
		cfg.Engine.Parallelism = op.parallel
	}
	st := &stats.Counters{}
	s := &System{
		js:     core.New(g, a, cfg, st),
		alg:    a,
		st:     st,
		cfg:    cfg,
		ingest: op.ingest,
		wd:     op.watchdog,
		reg:    obs.NewRegistry(),
		tr:     obs.Nop,
	}
	if op.observer != nil {
		s.tr = op.observer
	}
	s.latency = s.reg.Histogram("jetstream_batch_latency_ns")
	s.batchesC = s.reg.Counter("jetstream_batches_total")
	s.js.Instrument(s.reg, s.tr)
	if op.window != 0 {
		win, err := window.New(op.window)
		if err != nil {
			return nil, fmt.Errorf("%w: WithWindow(%d): ttl must be at least 1 batch", ErrConfigConflict, op.window)
		}
		win.Seed(0, g.Edges())
		s.win = win
		s.expiredC = s.reg.Counter("jetstream_window_expired_edges_total")
	}
	if op.walDir != "" {
		if err := s.attachFreshWAL(op.walDir, op.walOpts); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// attachFreshWAL opens a write-ahead log for a brand-new System. The
// directory must hold no prior durable history: an existing snapshot means
// the stream should resume through RecoverFromDir, and journaled records
// without a snapshot mean the snapshot half of the pair was lost.
func (s *System) attachFreshWAL(dir string, opts wal.Options) error {
	fs := opts.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	if _, err := fs.ReadFile(filepath.Join(dir, SnapshotName)); err == nil {
		return fmt.Errorf("jetstream: WAL directory %s already holds a snapshot; resume it with RecoverFromDir or point WithWAL at a fresh directory", dir)
	} else if !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("jetstream: WAL directory %s: %w", dir, err)
	}
	l, err := wal.Open(dir, opts)
	if err != nil {
		return fmt.Errorf("jetstream: %w", err)
	}
	if l.LastSeq() > 0 {
		_ = l.Close() // refusing anyway; the open error is authoritative
		return fmt.Errorf("jetstream: WAL directory %s holds journaled batches but no snapshot to replay them onto; recover the snapshot or start a fresh directory", dir)
	}
	l.SetFloor(0)
	l.Instrument(s.reg)
	s.wal, s.walDir, s.walOpts = l, dir, opts
	return nil
}

// delta snapshots the counters consumed since the previous snapshot. Cycles
// is read before the struct copy: with pipeline overlap on, the cycle read
// joins the timing consumer, and the copy must not race with it.
func (s *System) delta() Result {
	cy := s.js.Cycles()
	cur := *s.st
	cur.Cycles = cy
	d := cur
	d.Sub(&s.prev)
	s.prev = cur
	secs := s.cfg.Engine.CyclesToSeconds(d.Cycles)
	return Result{
		Cycles:   d.Cycles,
		Duration: time.Duration(secs * float64(time.Second)),
		Stats:    d,
	}
}

// RunInitial performs the initial static evaluation (cold start). It must be
// called once before streaming batches.
func (s *System) RunInitial() Result {
	s.js.RunInitial()
	s.init = true
	return s.delta()
}

// ApplyBatch incrementally updates the query results for the next graph
// version. Every batch is validated first: under the Strict policy (default)
// an invalid update rejects the whole batch with a *BatchError and the state
// is untouched; under Repair the invalid updates are dropped, counted, and
// the rest applied. With WithWAL configured the sanitized delta is journaled
// durably before the engine mutates any state; a journaling failure rejects
// the batch with the state untouched. ApplyBatch never panics on
// caller-supplied input.
func (s *System) ApplyBatch(b Batch) (Result, error) {
	if err := s.acquire("ApplyBatch"); err != nil {
		return Result{}, err
	}
	defer s.release()
	return s.applyBatch(b, true)
}

// applyBatch is ApplyBatch with the journaling step controllable: recovery
// replays already-journaled batches with journal=false so the log is not
// re-appended with its own contents.
func (s *System) applyBatch(b Batch, journal bool) (Result, error) {
	if !s.init {
		return Result{}, fmt.Errorf("jetstream: call RunInitial before ApplyBatch")
	}
	s.trace(obs.TraceEvent{Kind: obs.KindBatchStart, A: s.batches + 1, B: uint64(b.Size())})
	// Sanitize unconditionally: even a clean batch has its delete weights
	// normalized to the stored edge weight, so a stale weight cannot poison
	// the value-aware recovery.
	clean, issues := s.js.Graph().SanitizeBatch(b)
	if len(issues) > 0 && s.ingest == Strict {
		return Result{}, &BatchError{Issues: issues}
	}
	if journal && s.wal != nil {
		if err := s.journal(clean); err != nil {
			return Result{}, err
		}
	}
	// Sliding window: synthesize the aging-based deletion set for this batch
	// and merge it ahead of the user's updates, so one graph version and one
	// deletion-recovery phase cover both. Only the user batch was journaled —
	// recovery re-derives expiry deterministically by replaying through this
	// same path.
	apply, expired, err := s.expireInto(clean)
	if err != nil {
		return Result{}, err
	}
	if err := s.js.ApplyBatch(apply); err != nil {
		return Result{}, fmt.Errorf("jetstream: apply batch: %w", err)
	}
	if s.win != nil {
		s.win.Record(s.batches+1, clean)
		s.expiredC.Add(expired)
	}
	// Count repairs only after the batch actually applied, so each batch's
	// Stats delta carries exactly its own dropped-update count (a failed
	// apply leaves the global counters untouched).
	if len(issues) > 0 {
		s.st.UpdatesDropped += uint64(len(issues))
		s.st.BatchesRepaired++
	}
	s.batches++
	checked, div, fell := s.js.WatchdogCheck(s.wd, s.batches)
	res := s.delta()
	res.Repaired = uint64(len(issues))
	res.Issues = issues
	res.Expired = expired
	res.Checked, res.Divergence, res.FellBack = checked, div, fell
	s.latency.Observe(uint64(res.Duration.Nanoseconds()))
	s.batchesC.Inc()
	s.trace(obs.TraceEvent{Kind: obs.KindBatchEnd, A: s.batches,
		B: res.Stats.EventsProcessed, F: res.Duration.Seconds()})
	return res, nil
}

// expireInto computes the window's aging-based deletion set for the next
// batch and merges it ahead of the sanitized user batch, returning the batch
// to apply and the expired-edge count. Without a window it returns clean
// unchanged. The expiry deletes carry the stored edge weights (the same
// normalization SanitizeBatch performs for user deletes) so value-aware
// deletion recovery sees the true contributions; they are emitted in
// ascending (src,dst) order, making the merged batch — and therefore the
// resulting graph version and state — deterministic across replays.
func (s *System) expireInto(clean Batch) (Batch, uint64, error) {
	if s.win == nil {
		return clean, 0, nil
	}
	userDel := make(map[window.Key]bool, len(clean.Deletes))
	for _, e := range clean.Deletes {
		userDel[window.Key{Src: e.Src, Dst: e.Dst}] = true
	}
	expired := s.win.Expire(s.batches+1, func(k window.Key) bool { return userDel[k] })
	if len(expired) == 0 {
		return clean, 0, nil
	}
	g := s.js.Graph()
	merged := Batch{
		Deletes: make([]Edge, 0, len(expired)+len(clean.Deletes)),
		Inserts: clean.Inserts,
	}
	for _, k := range expired {
		w, ok := g.HasEdge(k.Src, k.Dst)
		if !ok {
			// The ring only tracks live edges; a miss means the ring and the
			// graph version diverged — state corruption, not caller error.
			return Batch{}, 0, fmt.Errorf("jetstream: window: expiring edge (%d,%d) absent from graph version", k.Src, k.Dst)
		}
		merged.Deletes = append(merged.Deletes, Edge{Src: k.Src, Dst: k.Dst, Weight: w})
	}
	merged.Deletes = append(merged.Deletes, clean.Deletes...)
	return merged, uint64(len(expired)), nil
}

// Window returns the sliding-window TTL in batches, or 0 when no window is
// configured.
func (s *System) Window() int {
	if s.win == nil {
		return 0
	}
	return s.win.TTL()
}

// trace emits a System-level trace event with sequencing filled in.
func (s *System) trace(e obs.TraceEvent) {
	s.trSeq++
	e.Seq = s.trSeq
	e.Worker = -1
	s.tr.Trace(e)
}

// Parallelism reports the effective compute-phase worker count the system was
// configured with.
func (s *System) Parallelism() int { return s.cfg.Engine.Parallelism }

// Graph returns the current graph version.
func (s *System) Graph() *Graph { return s.js.Graph() }

// State returns a copy of the converged per-vertex results. The copy is
// yours: mutating it cannot corrupt the engine between batches.
func (s *System) State() []float64 {
	return append([]float64(nil), s.js.State()...)
}

// StateRef returns the engine's live state slice without copying — the
// zero-copy read path for large graphs. The slice is owned by the engine:
// treat it as read-only and do not retain it across ApplyBatch calls.
func (s *System) StateRef() []float64 { return s.js.State() }

// Batches returns how many batches have been applied since construction (or
// across a checkpoint/restore cycle); the watchdog cadence follows it.
func (s *System) Batches() uint64 { return s.batches }

// TotalStats returns cumulative counters since construction. The cycle read
// comes first: it joins any in-flight pipelined timing work, so the struct
// copy sees settled counters.
func (s *System) TotalStats() Counters {
	cy := s.js.Cycles()
	c := *s.st
	c.Cycles = cy
	return c
}

// Verify recomputes the query from scratch with a conventional solver and
// returns the maximum deviation of the streaming state — a self-check.
func (s *System) Verify() float64 { return s.js.Verify() }
