// Package jetstream is a reproduction of "JetStream: Graph Analytics on
// Streaming Data with Event-Driven Hardware Accelerator" (MICRO 2021): an
// event-driven streaming-graph accelerator model that incrementally
// re-evaluates standing queries (SSSP, SSWP, BFS, Connected Components,
// incremental PageRank, Adsorption) over batches of edge insertions and
// deletions, together with the GraphPulse static baseline and the
// KickStarter/GraphBolt software comparators used in the paper's evaluation.
//
// Quick start:
//
//	g := jetstream.RMAT(jetstream.RMATConfig{Vertices: 10000, Edges: 80000, Seed: 1})
//	sys, _ := jetstream.New(g, jetstream.SSSP(0))
//	init := sys.RunInitial()
//	res, _ := sys.ApplyBatch(jetstream.Batch{
//	    Inserts: []jetstream.Edge{{Src: 3, Dst: 5, Weight: 2}},
//	})
//	fmt.Println(init.Duration, res.Duration, sys.State()[5])
package jetstream

import (
	"fmt"
	"time"

	"jetstream/internal/algo"
	"jetstream/internal/core"
	"jetstream/internal/engine"
	"jetstream/internal/graph"
	"jetstream/internal/stats"
	"jetstream/internal/stream"
)

// Re-exported substrate types, so downstream code only imports this package.
type (
	// Graph is an immutable CSR graph version with both edge directions
	// indexed.
	Graph = graph.CSR
	// Edge is a directed weighted edge.
	Edge = graph.Edge
	// Batch is one streaming update: edges to insert and delete.
	Batch = graph.Batch
	// Algorithm is a DAIC kernel (Reduce/Propagate/Identity).
	Algorithm = algo.Algorithm
	// Counters is the work/traffic counter set.
	Counters = stats.Counters
	// RMATConfig parameterizes the social-network-style generator.
	RMATConfig = graph.RMATConfig
	// WebCrawlConfig parameterizes the web-crawl-style generator.
	WebCrawlConfig = graph.WebCrawlConfig
	// GridConfig parameterizes the road-network-style generator.
	GridConfig = graph.GridConfig
	// StreamConfig parameterizes the update-batch generator.
	StreamConfig = stream.Config
	// StreamGenerator draws successive valid update batches.
	StreamGenerator = stream.Generator
	// AcceleratorConfig describes the modeled hardware (paper Table 1).
	AcceleratorConfig = engine.Config
	// OptLevel selects the deletion-recovery pruning optimization.
	OptLevel = core.OptLevel
)

// Optimization levels (paper §5).
const (
	OptBase = core.OptBase
	OptVAP  = core.OptVAP
	OptDAP  = core.OptDAP
)

// Graph constructors.
var (
	// BuildGraph constructs a CSR over n vertices from an edge list.
	BuildGraph = graph.Build
	// Symmetrize mirrors every edge (required for Connected Components).
	Symmetrize = graph.Symmetrize
	// RMAT generates a power-law social-network-style graph.
	RMAT = graph.RMAT
	// WebCrawl generates a narrow, long-path web-style graph.
	WebCrawl = graph.WebCrawl
	// Grid generates a road-network-style lattice.
	Grid = graph.Grid
	// ErdosRenyi generates a uniform random graph.
	ErdosRenyi = graph.ErdosRenyi
	// ReadEdgeList parses a "src dst [weight]" text edge list.
	ReadEdgeList = graph.ReadEdgeList
	// WriteEdgeList serializes a graph in the same format.
	WriteEdgeList = graph.WriteEdgeList
	// NewStream returns a deterministic update-batch generator.
	NewStream = stream.NewGenerator
)

// Algorithm constructors for the six evaluated kernels.
func SSSP(root uint32) Algorithm { return algo.NewSSSP(root) }
func SSWP(root uint32) Algorithm { return algo.NewSSWP(root) }
func BFS(root uint32) Algorithm  { return algo.NewBFS(root) }
func CC() Algorithm              { return algo.NewCC() }

// PageRank returns the incremental PageRank kernel; eps <= 0 selects the
// default convergence threshold.
func PageRank(eps float64) Algorithm { return algo.NewPageRank(eps) }

// Adsorption returns the Adsorption kernel; eps <= 0 selects the default.
func Adsorption(eps float64) Algorithm { return algo.NewAdsorption(eps) }

// AlgorithmByName resolves one of "sssp", "sswp", "bfs", "cc", "pagerank",
// "adsorption".
func AlgorithmByName(name string, root uint32, eps float64) (Algorithm, error) {
	return algo.New(name, root, eps)
}

// Option configures a System. Options compose in any order.
type Option func(*options)

type options struct {
	opt      OptLevel
	slices   int
	timing   bool
	detailed bool
	accel    *engine.Config
}

// WithOpt selects the deletion-recovery optimization (default OptDAP).
func WithOpt(o OptLevel) Option {
	return func(op *options) { op.opt = o }
}

// WithSlices partitions the graph into k slices (for graphs exceeding the
// on-chip queue capacity).
func WithSlices(k int) Option { return func(op *options) { op.slices = k } }

// WithTiming toggles the cycle-accurate timing model (default on). With it
// off the system is a fast functional streaming-graph engine.
func WithTiming(on bool) Option { return func(op *options) { op.timing = on } }

// WithDetailedTiming selects the per-event pipeline timing model (contended
// apply units, generation streams, crossbar ports and coalescer pipelines)
// instead of the default batch-level throughput model. Slower to simulate;
// resolves port-contention hot spots.
func WithDetailedTiming() Option {
	return func(op *options) { op.detailed = true }
}

// WithAccelerator overrides the hardware configuration (the event mode and
// vertex footprint still follow the optimization level).
func WithAccelerator(cfg AcceleratorConfig) Option {
	return func(op *options) { op.accel = &cfg }
}

// Result summarizes one operation (initial run or one batch).
type Result struct {
	// Cycles consumed by this operation at the accelerator clock.
	Cycles uint64
	// Duration is Cycles at the configured clock.
	Duration time.Duration
	// Stats holds the work counters for this operation only.
	Stats Counters
}

// System is a standing query over a streaming graph: the JetStream engine,
// its current graph version, and its converged vertex states.
type System struct {
	js   *core.JetStream
	st   *stats.Counters
	cfg  core.Config
	prev stats.Counters
	init bool
}

// New builds a System for query a over initial graph g.
func New(g *Graph, a Algorithm, opts ...Option) (*System, error) {
	if algo.NeedsSymmetric(a) {
		for _, e := range g.Edges() {
			if _, ok := g.HasEdge(e.Dst, e.Src); !ok {
				return nil, fmt.Errorf("jetstream: %s requires a symmetric graph; use Symmetrize", a.Name())
			}
		}
	}
	op := &options{opt: OptDAP, timing: true}
	for _, o := range opts {
		o(op)
	}
	cfg := core.ConfigWithOpt(op.opt)
	if op.accel != nil {
		mode, vb := cfg.Engine.EventMode, cfg.Engine.VertexBytes
		cfg.Engine = *op.accel
		cfg.Engine.EventMode, cfg.Engine.VertexBytes = mode, vb
	}
	cfg.Slices = op.slices
	cfg.Engine.Timing = op.timing
	cfg.Engine.DetailedTiming = op.detailed
	st := &stats.Counters{}
	return &System{js: core.New(g, a, cfg, st), st: st, cfg: cfg}, nil
}

// delta snapshots the counters consumed since the previous snapshot.
func (s *System) delta() Result {
	cur := *s.st
	cur.Cycles = s.js.Cycles()
	d := cur
	d.EventsProcessed -= s.prev.EventsProcessed
	d.EventsGenerated -= s.prev.EventsGenerated
	d.EventsCoalesced -= s.prev.EventsCoalesced
	d.VertexReads -= s.prev.VertexReads
	d.VertexWrites -= s.prev.VertexWrites
	d.EdgeReads -= s.prev.EdgeReads
	d.VerticesReset -= s.prev.VerticesReset
	d.RequestsIssued -= s.prev.RequestsIssued
	d.DeletesDiscarded -= s.prev.DeletesDiscarded
	d.Rounds -= s.prev.Rounds
	d.Phases -= s.prev.Phases
	d.BytesTransferred -= s.prev.BytesTransferred
	d.BytesUsed -= s.prev.BytesUsed
	d.DRAMAccesses -= s.prev.DRAMAccesses
	d.RowHits -= s.prev.RowHits
	d.SpillBytes -= s.prev.SpillBytes
	d.Cycles -= s.prev.Cycles
	s.prev = cur
	secs := s.cfg.Engine.CyclesToSeconds(d.Cycles)
	return Result{
		Cycles:   d.Cycles,
		Duration: time.Duration(secs * float64(time.Second)),
		Stats:    d,
	}
}

// RunInitial performs the initial static evaluation (cold start). It must be
// called once before streaming batches.
func (s *System) RunInitial() Result {
	s.js.RunInitial()
	s.init = true
	return s.delta()
}

// ApplyBatch incrementally updates the query results for the next graph
// version.
func (s *System) ApplyBatch(b Batch) (Result, error) {
	if !s.init {
		return Result{}, fmt.Errorf("jetstream: call RunInitial before ApplyBatch")
	}
	if err := s.js.ApplyBatch(b); err != nil {
		return Result{}, err
	}
	return s.delta(), nil
}

// Graph returns the current graph version.
func (s *System) Graph() *Graph { return s.js.Graph() }

// State returns the converged per-vertex results (live slice).
func (s *System) State() []float64 { return s.js.State() }

// TotalStats returns cumulative counters since construction.
func (s *System) TotalStats() Counters {
	c := *s.st
	c.Cycles = s.js.Cycles()
	return c
}

// Verify recomputes the query from scratch with a conventional solver and
// returns the maximum deviation of the streaming state — a self-check.
func (s *System) Verify() float64 { return s.js.Verify() }
