package jetstream

// Golden-trace regression test: the sequential engine's processed-event
// stream is fully deterministic — drain rounds visit queue rows in ascending
// vertex order and the stream generator is seeded — so the exact trace is
// recorded once into results/ and every future parallelism-1 run must replay
// it byte for byte. This pins down the sequential substrate that the
// differential tests measure the parallel engine against; an unintended
// change to drain order, coalescing, or recovery phasing shows up here as a
// trace diff before it can silently shift the baseline.
//
// Regenerate after an *intended* semantic change with:
//
//	UPDATE_GOLDEN=1 go test -run TestGoldenTraceSequential .

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"jetstream/internal/event"
)

const goldenTracePath = "results/golden_trace_sssp.txt"

// goldenTrace runs the fixed SSSP scenario at parallelism 1 and returns one
// line per processed event: target, source, flags, and the value's exact
// IEEE-754 bits (hex, so the file is stable across formatting changes).
func goldenTrace(t *testing.T) []byte {
	t.Helper()
	g := WebCrawl(WebCrawlConfig{Vertices: 120, AvgDegree: 4, Seed: 5})
	sys, err := New(g, SSSP(0), WithTiming(false), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sys.js.Engine().SetTrace(func(ev event.Event) {
		fmt.Fprintf(&buf, "%d %d %d %016x\n", ev.Target, ev.Source, ev.Flags, math.Float64bits(ev.Value))
	})
	sys.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 12, InsertFrac: 0.5, MaxWeight: 6, Seed: 6})
	for i := 0; i < 4; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	return buf.Bytes()
}

func TestGoldenTraceSequential(t *testing.T) {
	got := goldenTrace(t)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden trace updated: %d bytes", len(got))
		return
	}
	want, err := os.ReadFile(goldenTracePath)
	if err != nil {
		t.Fatalf("missing golden trace (run with UPDATE_GOLDEN=1 to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		// Locate the first diverging line for a useful failure message.
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Fatalf("trace diverges at event %d: got %q, want %q (%d vs %d lines)",
					i, gl[i], wl[i], len(gl), len(wl))
			}
		}
		t.Fatalf("trace length changed: got %d lines, want %d", len(gl), len(wl))
	}
}

// TestGoldenTraceStableAcrossRuns guards the determinism assumption itself:
// two fresh sequential systems must produce the identical trace in-process.
func TestGoldenTraceStableAcrossRuns(t *testing.T) {
	if !bytes.Equal(goldenTrace(t), goldenTrace(t)) {
		t.Fatal("sequential trace differs between two identical runs")
	}
}
