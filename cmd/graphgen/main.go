// Command graphgen emits synthetic graphs (and optional update streams) in
// the plain-text edge-list format the other tools read. The generators cover
// the two topology classes of the paper's Table 2 workloads plus a road-like
// lattice and a uniform random graph.
//
// Examples:
//
//	graphgen -gen rmat -vertices 100000 -edges 1000000 > social.txt
//	graphgen -gen webcrawl -vertices 50000 -edges 600000 -seed 7 > web.txt
//	graphgen -dataset LJ > lj.txt             # the Table 2 stand-in
//	graphgen -gen grid -vertices 10000 -stream 5 -batch 100 -streamout updates.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"jetstream"
	"jetstream/internal/graph"
	"jetstream/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("graphgen: ")

	var (
		gen       = flag.String("gen", "rmat", "generator: rmat, webcrawl, grid, er")
		dataset   = flag.String("dataset", "", "emit a Table 2 stand-in instead (WK, FB, LJ, UK, TW)")
		vertices  = flag.Int("vertices", 10000, "vertex count")
		edges     = flag.Int("edges", 80000, "edge count")
		seed      = flag.Int64("seed", 1, "generator seed")
		symmetric = flag.Bool("symmetric", false, "mirror all edges (undirected)")
		streamN   = flag.Int("stream", 0, "also emit N update batches")
		batch     = flag.Int("batch", 100, "updates per batch")
		mix       = flag.Float64("mix", 0.7, "insert fraction per batch")
		streamOut = flag.String("streamout", "", "file for the update stream (default stderr note)")
		stats     = flag.Bool("stats", false, "print structural statistics to stderr instead of edges to stdout")
	)
	flag.Parse()

	var g *jetstream.Graph
	if *dataset != "" {
		d, err := graph.DatasetByName(*dataset)
		if err != nil {
			log.Fatal(err)
		}
		g = d.Build(*seed)
	} else {
		switch *gen {
		case "rmat":
			g = jetstream.RMAT(jetstream.RMATConfig{Vertices: *vertices, Edges: *edges, Seed: *seed})
		case "webcrawl":
			g = jetstream.WebCrawl(jetstream.WebCrawlConfig{
				Vertices: *vertices, AvgDegree: float64(*edges) / float64(*vertices), Seed: *seed,
			})
		case "grid":
			side := 1
			for side*side < *vertices {
				side++
			}
			g = jetstream.Grid(jetstream.GridConfig{Rows: side, Cols: side, Diagonal: 0.15, Seed: *seed})
		case "er":
			g = jetstream.ErdosRenyi(*vertices, *edges, 64, *seed)
		default:
			log.Fatalf("unknown generator %q", *gen)
		}
	}
	if *symmetric {
		g = jetstream.Symmetrize(g)
	}

	if *stats {
		fmt.Fprintln(os.Stderr, graph.ComputeStats(g))
		return
	}
	out := bufio.NewWriter(os.Stdout)
	if err := jetstream.WriteEdgeList(out, g); err != nil {
		log.Fatal(err)
	}
	if err := out.Flush(); err != nil {
		log.Fatal(err)
	}

	if *streamN > 0 {
		w := os.Stdout
		if *streamOut != "" {
			f, err := os.Create(*streamOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		bw := bufio.NewWriter(w)
		sgen := stream.NewGenerator(stream.Config{
			BatchSize: *batch, InsertFrac: *mix, Symmetric: *symmetric, Seed: *seed ^ 0x517,
		})
		cur := g
		for i := 0; i < *streamN; i++ {
			b := sgen.Next(cur)
			fmt.Fprintf(bw, "# batch %d: %d inserts, %d deletes\n", i+1, len(b.Inserts), len(b.Deletes))
			for _, e := range b.Inserts {
				fmt.Fprintf(bw, "+ %d %d %g\n", e.Src, e.Dst, e.Weight)
			}
			for _, e := range b.Deletes {
				fmt.Fprintf(bw, "- %d %d %g\n", e.Src, e.Dst, e.Weight)
			}
			ng, err := cur.Apply(b)
			if err != nil {
				log.Fatalf("graphgen: batch does not apply: %v", err)
			}
			cur = ng
		}
		if err := bw.Flush(); err != nil {
			log.Fatal(err)
		}
	}
}
