// Command jetstream runs a streaming graph query from the command line: it
// loads (or generates) a graph, performs the initial evaluation, then applies
// a stream of update batches, reporting per-batch accelerator time and work
// counters.
//
// Examples:
//
//	jetstream -algo sssp -gen rmat -vertices 10000 -edges 100000 -batches 5
//	jetstream -algo pagerank -graph edges.txt -batch 500 -mix 0.7 -verify
//	jetstream -algo cc -gen webcrawl -vertices 5000 -opt vap -stats
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"jetstream"
	"jetstream/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jetstream: ")

	var (
		algoName = flag.String("algo", "sssp", "algorithm: sssp, sswp, bfs, cc, wcc, pagerank, adsorption")
		root     = flag.Uint("root", 0, "root vertex for single-source algorithms")
		eps      = flag.Float64("eps", 0, "convergence threshold for accumulative algorithms (0 = default)")
		path     = flag.String("graph", "", "edge-list file (src dst [weight]); empty uses -gen")
		gen      = flag.String("gen", "rmat", "generator when no -graph: rmat, webcrawl, grid, er")
		vertices = flag.Int("vertices", 10000, "generated graph vertices")
		edges    = flag.Int("edges", 80000, "generated graph edges")
		seed     = flag.Int64("seed", 1, "generator and stream seed")
		batches  = flag.Int("batches", 3, "number of update batches to stream")
		batch    = flag.Int("batch", 200, "updates per batch")
		mix      = flag.Float64("mix", 0.7, "insert fraction per batch")
		optName  = flag.String("opt", "dap", "delete optimization: base, vap, dap")
		windowT  = flag.Int("window", 0, "sliding-window TTL in batches: edges expire after this many batches (0 = infinite retention)")
		slices   = flag.Int("slices", 0, "graph slices (0 = automatic)")
		timing   = flag.Bool("timing", true, "enable the cycle-accurate timing model")
		verify   = flag.Bool("verify", false, "validate against a from-scratch solver after each batch")
		stats    = flag.Bool("stats", false, "print full work counters per batch")
		metrics  = flag.String("metrics", "", "serve Prometheus metrics on this address (e.g. :9090)")

		walDir      = flag.String("wal", "", "journal every batch to a write-ahead log in this directory")
		walSync     = flag.String("wal-sync", "batch", "WAL fsync policy: batch, interval, none")
		walInterval = flag.Int("wal-sync-interval", 16, "batches between fsyncs under -wal-sync interval")
		resume      = flag.Bool("resume", false, "resume the stream from the -wal directory instead of cold-starting")
		ckptPath    = flag.String("checkpoint", "", "write a checkpoint here (atomically) when the stream completes")
		ckptEvery   = flag.Int("checkpoint-every", 0, "also checkpoint (and compact the WAL) every N batches")
	)
	flag.Parse()

	syncPolicy, err := jetstream.ParseWALSyncPolicy(*walSync)
	if err != nil {
		log.Fatal(err)
	}
	walOpts := jetstream.WALOptions{Sync: syncPolicy, Interval: *walInterval}

	symmetric := *algoName == "cc" || *algoName == "wcc"

	var sys *jetstream.System
	if *resume {
		if *walDir == "" {
			log.Fatal("-resume requires -wal")
		}
		var err error
		sys, err = jetstream.RecoverFromDir(*walDir, jetstream.WithWALOptions(*walDir, walOpts))
		if err != nil {
			log.Fatal(err)
		}
	} else {
		a, err := jetstream.NewAlgorithm(jetstream.AlgorithmSpec{
			Name: *algoName, Root: uint32(*root), Eps: *eps,
		})
		if err != nil {
			log.Fatal(err)
		}

		g, err := loadGraph(*path, *gen, *vertices, *edges, *seed)
		if err != nil {
			log.Fatal(err)
		}
		if symmetric {
			g = jetstream.Symmetrize(g)
		}

		var opt jetstream.OptLevel
		switch *optName {
		case "base":
			opt = jetstream.OptBase
		case "vap":
			opt = jetstream.OptVAP
		case "dap":
			opt = jetstream.OptDAP
		default:
			log.Fatalf("unknown -opt %q", *optName)
		}

		opts := []jetstream.Option{jetstream.WithOpt(opt), jetstream.WithTiming(*timing)}
		if *slices > 1 {
			opts = append(opts, jetstream.WithSlices(*slices))
		}
		if *walDir != "" {
			opts = append(opts, jetstream.WithWALOptions(*walDir, walOpts))
		}
		if *windowT > 0 {
			opts = append(opts, jetstream.WithWindow(*windowT))
		}
		sys, err = jetstream.New(g, a, opts...)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", sys.MetricsHandler())
		expvar.Publish("jetstream", sys.Expvar())
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("serving metrics on http://%s/metrics\n", *metrics)
	}

	fmt.Printf("graph: %d vertices, %d edges; algorithm: %s (%s deletes)\n",
		sys.Graph().NumVertices(), sys.Graph().NumEdges(), *algoName, *optName)

	if *resume {
		fmt.Printf("resumed from %s: %d batches already applied (WAL %d bytes)\n",
			*walDir, sys.Batches(), sys.WALSize())
	} else {
		res := sys.RunInitial()
		fmt.Printf("initial evaluation: %v (%d cycles, %d events)\n",
			res.Duration, res.Cycles, res.Stats.EventsProcessed)
	}

	sgen := jetstream.NewStream(jetstream.StreamConfig{
		BatchSize: *batch, InsertFrac: *mix, Symmetric: symmetric, Seed: *seed ^ 0x9e77,
	})
	for i := 0; i < *batches; i++ {
		b := sgen.Next(sys.Graph())
		res, err := sys.ApplyBatch(b)
		if err != nil {
			log.Fatal(err)
		}
		expired := ""
		if sys.Window() > 0 {
			expired = fmt.Sprintf(", %d expired", res.Expired)
		}
		fmt.Printf("batch %d (%d ins, %d del%s): %v (%d cycles, %d events, %d resets)\n",
			i+1, len(b.Inserts), len(b.Deletes), expired, res.Duration, res.Cycles,
			res.Stats.EventsProcessed, res.Stats.VerticesReset)
		if *stats {
			fmt.Print(res.Stats.Table())
		}
		if *verify {
			if d := sys.Verify(); d > verifyTolerance(*algoName, *eps, sys.Graph().NumEdges(), i+1) {
				log.Fatalf("batch %d: diverged from reference by %g", i+1, d)
			}
			fmt.Printf("batch %d: verified against from-scratch solver\n", i+1)
		}
		if *ckptEvery > 0 && (i+1)%*ckptEvery == 0 {
			if *walDir != "" {
				if err := sys.Compact(); err != nil {
					log.Fatal(err)
				}
				fmt.Printf("batch %d: snapshot rewritten, WAL compacted to %d bytes\n", i+1, sys.WALSize())
			}
			if *ckptPath != "" {
				if err := writeCheckpoint(sys, *ckptPath); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	if *ckptPath != "" {
		if err := writeCheckpoint(sys, *ckptPath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *ckptPath)
	}
	if err := sys.Close(); err != nil {
		log.Fatal(err)
	}
}

// writeCheckpoint serializes the system's state to path atomically: the bytes
// land in a temp file in the same directory, are fsynced, and are renamed
// over path, so a crash mid-write can never leave a torn checkpoint behind.
func writeCheckpoint(sys *jetstream.System, path string) error {
	return wal.WriteFileAtomic(nil, path, sys.Checkpoint)
}

func verifyTolerance(algoName string, eps float64, edges, batches int) float64 {
	if algoName != "pagerank" && algoName != "pr" && algoName != "adsorption" {
		return 0
	}
	if eps <= 0 {
		eps = 1e-8
	}
	return eps * 10 * float64(edges) * float64(batches)
}

func loadGraph(path, gen string, vertices, edges int, seed int64) (*jetstream.Graph, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		g, err := jetstream.ReadEdgeList(f, 0)
		cerr := f.Close()
		if err != nil {
			return nil, err
		}
		if cerr != nil {
			return nil, cerr
		}
		return g, nil
	}
	switch gen {
	case "rmat":
		return jetstream.RMAT(jetstream.RMATConfig{Vertices: vertices, Edges: edges, Seed: seed}), nil
	case "webcrawl":
		avg := float64(edges) / float64(vertices)
		return jetstream.WebCrawl(jetstream.WebCrawlConfig{Vertices: vertices, AvgDegree: avg, Seed: seed}), nil
	case "grid":
		side := 1
		for side*side < vertices {
			side++
		}
		return jetstream.Grid(jetstream.GridConfig{Rows: side, Cols: side, Diagonal: 0.15, Seed: seed}), nil
	case "er":
		return jetstream.ErdosRenyi(vertices, edges, 64, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", gen)
	}
}
