// Command jetstreamd serves many independent streaming graph queries —
// tenants — over HTTP. Each tenant is declared entirely as data (a graph
// spec, an algorithm spec, and a jetstream.Config) in the create-tenant
// request, journals through its own WAL when configured, and is recovered
// automatically when the server restarts over the same data directory.
//
//	jetstreamd -addr :8080 -data-dir /var/lib/jetstreamd
//
// Create a tenant, stream a batch, read its state:
//
//	curl -X POST localhost:8080/v1/tenants -d '{
//	  "name": "roads",
//	  "graph": {"gen": "grid", "vertices": 10000},
//	  "algorithm": {"name": "sssp", "root": 0},
//	  "config": {"wal_dir": "wal", "wal_sync": "batch"}
//	}'
//	curl -X POST localhost:8080/v1/tenants/roads/batch -d '{
//	  "inserts": [{"src": 1, "dst": 2, "weight": 3.5}]
//	}'
//	curl localhost:8080/v1/tenants/roads/state
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"jetstream/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("jetstreamd: ")

	var (
		addr       = flag.String("addr", ":8080", "listen address")
		dataDir    = flag.String("data-dir", "", "root directory for tenant manifests, WALs, and checkpoints (empty = memory-only)")
		maxTenants = flag.Int("max-tenants", 1024, "maximum number of live tenants")
		queueDepth = flag.Int("queue-depth", 8, "per-tenant admission queue depth before ingest returns 429")
		maxVerts   = flag.Int("max-vertices", 1<<22, "largest graph a tenant may declare")
	)
	flag.Parse()

	svc := service.New(service.Options{
		DataDir:     *dataDir,
		MaxTenants:  *maxTenants,
		QueueDepth:  *queueDepth,
		MaxVertices: *maxVerts,
	})
	if *dataDir != "" {
		n, err := svc.Recover()
		if err != nil {
			log.Fatalf("recover: %v", err)
		}
		if n > 0 {
			log.Printf("recovered %d tenant(s) from %s", n, *dataDir)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (data-dir %q, max %d tenants)", *addr, *dataDir, *maxTenants)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful exit: stop accepting requests, let in-flight batches finish,
	// then checkpoint-or-sync every tenant so a restart resumes exactly.
	log.Print("shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(); err != nil {
		log.Fatalf("tenant shutdown: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
	log.Print("all tenants durable; bye")
}
