// Command loadgen drives a running jetstreamd with many tenants and many
// concurrent clients per tenant, then verifies every tenant's final state is
// bitwise-identical to a single-threaded reference run of the same batch
// sequence. It is both the service benchmark and its strongest correctness
// check: the per-tenant kernels are selective and the generated batches are
// insert-only and pairwise disjoint, so any interleaving of racing clients
// must land on exactly the reference state.
//
//	jetstreamd -addr :8080 &
//	loadgen -addr http://127.0.0.1:8080 -tenants 32 -clients 4 -json bench.json
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"

	"jetstream/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		addr     = flag.String("addr", "http://127.0.0.1:8080", "base URL of the jetstreamd to drive")
		tenants  = flag.Int("tenants", 32, "tenants to create")
		clients  = flag.Int("clients", 4, "concurrent clients per tenant")
		batches  = flag.Int("batches", 8, "update batches per tenant")
		batch    = flag.Int("batch", 32, "edge updates per batch")
		vertices = flag.Int("vertices", 256, "vertices per tenant graph")
		edges    = flag.Int("edges", 1024, "edges per tenant graph")
		seed     = flag.Int64("seed", 1, "workload seed (reproducible runs)")
		prefix   = flag.String("prefix", "loadgen-", "tenant name prefix")
		jsonPath = flag.String("json", "", "also write the report as JSON to this file")
	)
	flag.Parse()

	rep, err := service.RunLoadgen(service.LoadgenConfig{
		BaseURL:      *addr,
		Tenants:      *tenants,
		Clients:      *clients,
		Batches:      *batches,
		BatchSize:    *batch,
		Vertices:     *vertices,
		Edges:        *edges,
		Seed:         *seed,
		TenantPrefix: *prefix,
	})
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("%d tenants x %d clients: %d batches in %.2fs (%.0f batches/s), %d retries on 429, ingest p50 %dns p99 %dns",
		rep.Tenants, rep.Clients, rep.BatchesTotal, rep.WallSeconds, rep.BatchesPerSec,
		rep.Retries429, rep.IngestP50Ns, rep.IngestP99Ns)

	if *jsonPath != "" {
		blob, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			log.Fatalf("marshal report: %v", merr)
		}
		blob = append(blob, '\n')
		if werr := os.WriteFile(*jsonPath, blob, 0o644); werr != nil {
			log.Fatalf("write report: %v", werr)
		}
	}

	if len(rep.Mismatched) > 0 {
		log.Fatalf("FAIL: %d tenant(s) diverged from the sequential reference: %v", len(rep.Mismatched), rep.Mismatched)
	}
	log.Printf("all %d tenants bitwise-identical to the sequential reference", rep.Tenants)
}
