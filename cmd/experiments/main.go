// Command experiments regenerates the tables and figures of the JetStream
// paper's evaluation (§6) on the scaled synthetic workloads.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|table4|fig9..fig14|ablations]
//	            [-quick] [-seed N]
//
// Each experiment prints the same rows/series the paper reports; the shapes
// (who wins, by roughly what factor, where the crossovers fall) are the
// reproduction target — absolute numbers live at the harness's ~100x-reduced
// workload scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jetstream/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..table4, fig9..fig14, ablations)")
	quick := flag.Bool("quick", false, "use reduced datasets (seconds instead of minutes)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	r := bench.NewRunner(*quick)
	r.Seed = *seed

	render := func(run func() (fmt.Stringer, error)) func() (string, error) {
		return func() (string, error) {
			res, err := run()
			if err != nil {
				return "", err
			}
			return res.String(), nil
		}
	}
	experiments := []struct {
		name string
		run  func() (string, error)
	}{
		{"table1", func() (string, error) { return r.Table1(), nil }},
		{"table2", r.Table2},
		{"table3", render(func() (fmt.Stringer, error) { return r.Table3() })},
		{"fig9", render(func() (fmt.Stringer, error) { return r.Fig9() })},
		{"fig10", render(func() (fmt.Stringer, error) { return r.Fig10() })},
		{"fig11", render(func() (fmt.Stringer, error) { return r.Fig11() })},
		{"fig12", render(func() (fmt.Stringer, error) { return r.Fig12() })},
		{"fig13", render(func() (fmt.Stringer, error) { return r.Fig13() })},
		{"fig14", render(func() (fmt.Stringer, error) { return r.Fig14() })},
		{"table4", func() (string, error) { return r.Table4(), nil }},
		{"ablations", render(func() (fmt.Stringer, error) { return r.Ablations() })},
	}

	want := strings.ToLower(*exp)
	ran := false
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		start := time.Now()
		out, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %.1fs]\n\n", e.name, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
