// Command experiments regenerates the tables and figures of the JetStream
// paper's evaluation (§6) on the scaled synthetic workloads.
//
// Usage:
//
//	experiments [-exp all|table1|table2|table3|table4|fig9..fig14|ablations]
//	            [-quick] [-seed N]
//
// Each experiment prints the same rows/series the paper reports; the shapes
// (who wins, by roughly what factor, where the crossovers fall) are the
// reproduction target — absolute numbers live at the harness's ~100x-reduced
// workload scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"jetstream/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..table4, fig9..fig14, ablations)")
	quick := flag.Bool("quick", false, "use reduced datasets (seconds instead of minutes)")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	r := bench.NewRunner(*quick)
	r.Seed = *seed

	experiments := []struct {
		name string
		run  func() string
	}{
		{"table1", r.Table1},
		{"table2", r.Table2},
		{"table3", func() string { return r.Table3().String() }},
		{"fig9", func() string { return r.Fig9().String() }},
		{"fig10", func() string { return r.Fig10().String() }},
		{"fig11", func() string { return r.Fig11().String() }},
		{"fig12", func() string { return r.Fig12().String() }},
		{"fig13", func() string { return r.Fig13().String() }},
		{"fig14", func() string { return r.Fig14().String() }},
		{"table4", r.Table4},
		{"ablations", func() string { return r.Ablations().String() }},
	}

	want := strings.ToLower(*exp)
	ran := false
	for _, e := range experiments {
		if want != "all" && want != e.name {
			continue
		}
		ran = true
		start := time.Now()
		fmt.Println(e.run())
		fmt.Printf("[%s completed in %.1fs]\n\n", e.name, time.Since(start).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
