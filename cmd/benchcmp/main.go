// Command benchcmp gates hot-path performance: it parses `go test -bench`
// text output, compares every benchmark that appears in a committed baseline
// (results/BENCH_baseline.json), and exits nonzero when any ns/op regresses
// past the tolerance. CI runs it after the hot-path benchmarks so a PR that
// slows BenchmarkStreamingBatch or BenchmarkQueueSparseDrain by more than the
// budget fails visibly instead of decaying silently.
//
// Benchmarks present in the fresh run but absent from the baseline are
// reported and ignored (new benchmarks must not fail the gate before a
// baseline lands for them); baseline entries missing from the run fail the
// gate, since a silently deleted benchmark is how a regression hides.
//
// Usage:
//
//	go test -run NONE -bench 'BenchmarkStreamingBatch|BenchmarkQueueSparseDrain' . | \
//	  go run ./cmd/benchcmp -baseline results/BENCH_baseline.json -tolerance 0.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// baseline mirrors results/BENCH_baseline.json.
type baseline struct {
	Revision   string               `json:"revision"`
	Note       string               `json:"note"`
	Benchmarks map[string]benchLine `json:"benchmarks"`
}

type benchLine struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchRe matches one result line of `go test -bench` output: the name (with
// its -GOMAXPROCS suffix), the iteration count, and the metric pairs.
var benchRe = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench extracts name -> ns/op from go test -bench text output. Later
// duplicates (from -count > 1) keep the minimum, the conventional
// best-observed reading for a regression gate on noisy runners.
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		fields := regexp.MustCompile(`\s+`).Split(m[2], -1)
		for i := 0; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			ns, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad ns/op %q: %w", sc.Text(), fields[i], err)
			}
			if prev, ok := out[m[1]]; !ok || ns < prev {
				out[m[1]] = ns
			}
		}
	}
	return out, sc.Err()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcmp: ")

	var (
		baselinePath = flag.String("baseline", "results/BENCH_baseline.json", "committed baseline JSON")
		tolerance    = flag.Float64("tolerance", 0.15, "allowed fractional ns/op regression before failing")
		input        = flag.String("input", "-", "go test -bench output file ('-' for stdin)")
	)
	flag.Parse()

	blob, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(blob, &base); err != nil {
		log.Fatalf("%s: %v", *baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		log.Fatalf("%s: no benchmarks in baseline", *baselinePath)
	}

	in := io.Reader(os.Stdin)
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	fresh, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline %s (tolerance %+.0f%%)\n", base.Revision, *tolerance*100)
	failed := false
	for _, name := range sortedKeys(base.Benchmarks) {
		want := base.Benchmarks[name].NsPerOp
		got, ok := fresh[name]
		if !ok {
			fmt.Printf("  MISSING  %-52s baseline %12.0f ns/op, absent from run\n", name, want)
			failed = true
			continue
		}
		delta := got/want - 1
		status := "ok"
		if delta > *tolerance {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("  %-10s%-52s %12.0f -> %12.0f ns/op (%+.1f%%)\n", status, name, want, got, delta*100)
	}
	for _, name := range sortedKeys(fresh) {
		if _, ok := base.Benchmarks[name]; !ok {
			fmt.Printf("  new      %-52s %12.0f ns/op (no baseline, not gated)\n", name, fresh[name])
		}
	}
	if failed {
		log.Fatalf("ns/op regression beyond %.0f%% (or baseline benchmark missing from run)", *tolerance*100)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
