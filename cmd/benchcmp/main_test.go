package main

import (
	"strings"
	"testing"
)

// sample is verbatim-shaped `go test -bench` output: header lines, a
// GOMAXPROCS suffix, extra custom metrics, sub-benchmarks, and -count
// duplicates (the parser must keep the minimum ns/op per name).
const sample = `goos: linux
goarch: amd64
pkg: jetstream
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamingBatch/delta/batch100-8         	     100	   5435524 ns/op	 5982712 B/op	     451 allocs/op
BenchmarkStreamingBatch/delta/batch100-8         	     100	   5235524 ns/op	 5982712 B/op	     451 allocs/op
BenchmarkQueueSparseDrain/v65536-8               	    1000	     44723 ns/op	  531322 B/op	       2 allocs/op
BenchmarkDegreeAdaptive/hubchurn/inline-8        	      20	   2203443 ns/op	         0.8428 inline-frac	       0 B/op	       0 allocs/op
BenchmarkParallelism/p8                          	       3	  90000000 ns/op	        123456 events/sec
PASS
ok  	jetstream	16.737s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkStreamingBatch/delta/batch100":  5235524, // min of the two -count runs
		"BenchmarkQueueSparseDrain/v65536":        44723,
		"BenchmarkDegreeAdaptive/hubchurn/inline": 2203443,  // custom metric does not confuse the pairs
		"BenchmarkParallelism/p8":                 90000000, // no GOMAXPROCS suffix
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v ns/op, want %v", name, got[name], ns)
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok\tjetstream\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("parsed %v from output with no benchmark lines", got)
	}
}
