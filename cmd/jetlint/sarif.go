// SARIF 2.1.0 output for jetlint, the interchange format CI code-scanning
// surfaces ingest. One run per invocation; every enabled analyzer appears as
// a rule (so a clean run still documents what was checked), and each
// diagnostic becomes a result at error level with a repo-relative location.
package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"jetstream/internal/lint"
)

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool                `json:"tool"`
	OriginalURIBaseIDs map[string]sarifArtifact `json:"originalUriBaseIds,omitempty"`
	Results            []sarifResult            `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders diags as a single-run SARIF log. root anchors the
// repo-relative artifact URIs; analyzers lists every analyzer that ran, in
// order, so ruleIndex is stable across invocations with the same flag set.
// The synthetic "jetlint" rule (stale-allow directives) is appended on
// demand for diagnostics whose analyzer is not in the enabled set.
func writeSARIF(w io.Writer, root string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	index := make(map[string]int, len(analyzers)+1)
	for _, a := range analyzers {
		index[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		ri, ok := index[d.Analyzer]
		if !ok {
			ri = len(rules)
			index[d.Analyzer] = ri
			rules = append(rules, sarifRule{ID: d.Analyzer,
				ShortDescription: sarifMessage{Text: "diagnostics emitted by the jetlint driver itself"}})
		}
		uri := d.File
		if rel, err := filepath.Rel(root, d.File); err == nil {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ri,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri), URIBaseID: "SRCROOT"},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{Name: "jetlint", Rules: rules}},
			OriginalURIBaseIDs: map[string]sarifArtifact{
				"SRCROOT": {URI: "file://" + filepath.ToSlash(root) + "/"},
			},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
