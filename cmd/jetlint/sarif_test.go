package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"jetstream/internal/lint"
)

func TestWriteSARIF(t *testing.T) {
	analyzers := []*lint.Analyzer{
		{Name: "lockdiscipline", Doc: "locks released on every path"},
		{Name: "hotpathalloc", Doc: "no allocation on hot paths"},
	}
	diags := []lint.Diagnostic{
		{Analyzer: "hotpathalloc", File: "/repo/internal/queue/queue.go", Line: 12, Column: 7,
			Message: "make allocates per call"},
		{Analyzer: "jetlint", File: "/repo/jetstream.go", Line: 3, Column: 1,
			Message: "stale jetlint:allow: panicfree reports nothing on this line"},
	}

	var buf bytes.Buffer
	if err := writeSARIF(&buf, "/repo", analyzers, diags); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}

	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "jetlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}

	// Every enabled analyzer is a rule even when it reported nothing, and the
	// driver's own stale-allow pseudo-analyzer is appended on demand.
	var ids []string
	for _, r := range run.Tool.Driver.Rules {
		ids = append(ids, r.ID)
	}
	if got := strings.Join(ids, ","); got != "lockdiscipline,hotpathalloc,jetlint" {
		t.Errorf("rule ids = %s", got)
	}

	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r0 := run.Results[0]
	if r0.RuleID != "hotpathalloc" || r0.RuleIndex != 1 || r0.Level != "error" {
		t.Errorf("result 0 = %+v", r0)
	}
	loc := r0.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/queue/queue.go" {
		t.Errorf("uri = %q, want repo-relative path", loc.ArtifactLocation.URI)
	}
	if loc.ArtifactLocation.URIBaseID != "SRCROOT" {
		t.Errorf("uriBaseId = %q", loc.ArtifactLocation.URIBaseID)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	if ru := run.Results[1]; ru.RuleID != "jetlint" || ru.RuleIndex != 2 {
		t.Errorf("driver pseudo-rule result = %+v", ru)
	}
	if base, ok := run.OriginalURIBaseIDs["SRCROOT"]; !ok || base.URI != "file:///repo/" {
		t.Errorf("originalUriBaseIds = %+v", run.OriginalURIBaseIDs)
	}
}
