// Command jetlint runs the repo's custom static-analysis suite (internal/lint)
// over the module: atomicmix, determinism, panicfree, errwrap, syncerr, plus
// the flow-sensitive lockdiscipline, hotpathalloc, and journalorder analyzers.
//
// Usage:
//
//	go run ./cmd/jetlint ./...
//	go run ./cmd/jetlint -json ./internal/engine/...
//	go run ./cmd/jetlint -sarif ./... > jetlint.sarif
//	go run ./cmd/jetlint -determinism=false ./...
//
// Each analyzer has an enable flag named after it (default true). Positional
// arguments restrict which packages' diagnostics are reported (./... means
// everything); the whole module is always loaded so module-wide analyses see
// every package. -json and -sarif select machine-readable output (mutually
// exclusive); -sarif emits a SARIF 2.1.0 log for CI code-scanning surfaces.
// Exit status: 0 clean, 1 diagnostics reported, 2 load or type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"jetstream/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log")
	analyzers := lint.All()
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: jetlint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "jetlint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "jetlint:", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jetlint:", err)
		os.Exit(2)
	}
	var run []*lint.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			run = append(run, a)
		}
	}
	diags := lint.Run(mod, run)
	diags = filterPatterns(diags, root, flag.Args())

	switch {
	case *sarifOut:
		if err := writeSARIF(os.Stdout, root, run, diags); err != nil {
			fmt.Fprintln(os.Stderr, "jetlint:", err)
			os.Exit(2)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "jetlint:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// filterPatterns keeps diagnostics whose file matches one of the package
// patterns: "./..." keeps everything, "./dir/..." keeps the subtree,
// "./dir" keeps that directory only. No patterns means everything.
func filterPatterns(diags []lint.Diagnostic, root string, patterns []string) []lint.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	keep := diags[:0]
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			rel = d.File
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		for _, pat := range patterns {
			if matchPattern(dir, pat) {
				keep = append(keep, d)
				break
			}
		}
	}
	return keep
}

func matchPattern(dir, pat string) bool {
	pat = filepath.ToSlash(pat)
	pat = strings.TrimPrefix(pat, "./")
	if pat == "..." || pat == "" {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return dir == sub || strings.HasPrefix(dir, sub+"/")
	}
	if dir == "." {
		return pat == "."
	}
	return dir == pat
}
