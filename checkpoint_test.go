package jetstream

import (
	"bytes"
	"errors"
	"testing"

	"jetstream/internal/algo"
)

// buildStreamed runs a system through n batches and returns it with the
// generator used, so callers can keep streaming from where it stands.
func buildStreamed(t *testing.T, n int, opts ...Option) (*System, *StreamGenerator) {
	t.Helper()
	g := RMAT(RMATConfig{Vertices: 300, Edges: 2400, Seed: 21})
	sys, err := New(g, SSSP(0), opts...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 40, InsertFrac: 0.6, Seed: 22})
	for i := 0; i < n; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatal(err)
		}
	}
	return sys, gen
}

// absentEdge returns a valid insert naming an edge g does not contain.
func absentEdge(g *Graph) Edge {
	for dst := uint32(1); ; dst++ {
		if _, ok := g.HasEdge(0, dst); !ok {
			return Edge{Src: 0, Dst: dst, Weight: 2}
		}
	}
}

func TestCheckpointRoundTripMidStream(t *testing.T) {
	// Timing off: the cycle estimate of future batches depends on
	// microarchitectural state (caches, row buffers) that is deliberately not
	// checkpointed, so exact counter equality is asserted on the functional
	// configuration. Parallelism 1 keeps the continuation deterministic —
	// parallel drains interleave nondeterministically, so two identically
	// configured systems agree on state but not on exact counter values.
	orig, gen := buildStreamed(t, 5, WithTiming(false), WithParallelism(1), WithWatchdog(WatchdogConfig{Every: 4}))

	var buf bytes.Buffer
	if err := orig.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Batches() != orig.Batches() {
		t.Fatalf("restored %d batches, want %d", restored.Batches(), orig.Batches())
	}
	if restored.TotalStats() != orig.TotalStats() {
		t.Fatalf("restored counters differ:\n%+v\nwant\n%+v", restored.TotalStats(), orig.TotalStats())
	}

	// Continue BOTH systems through the same five batches. The original's
	// generator stays authoritative; the recorded batches are replayed into
	// the restored system.
	for i := 0; i < 5; i++ {
		b := gen.Next(orig.Graph())
		ro, err := orig.ApplyBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := restored.ApplyBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if ro.Checked != rr.Checked || ro.FellBack != rr.FellBack {
			t.Errorf("batch %d: watchdog cadence diverged (%+v vs %+v)", i, ro, rr)
		}
	}

	so, sr := orig.State(), restored.State()
	for i := range so {
		if so[i] != sr[i] {
			t.Fatalf("vertex %d state %v != %v after continuation", i, sr[i], so[i])
		}
	}
	if orig.TotalStats() != restored.TotalStats() {
		t.Errorf("continued counters differ:\n%+v\nwant\n%+v", restored.TotalStats(), orig.TotalStats())
	}
	if d := restored.Verify(); d != 0 {
		t.Errorf("restored system diverged by %v", d)
	}
}

func TestCheckpointRoundTripWithTiming(t *testing.T) {
	// With the timing model on, restored per-vertex state is still
	// bit-identical; only future cycle estimates may drift (cold caches).
	orig, _ := buildStreamed(t, 3, WithTiming(true))
	var buf bytes.Buffer
	if err := orig.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	so, sr := orig.State(), restored.State()
	for i := range so {
		if so[i] != sr[i] {
			t.Fatalf("vertex %d state %v != %v", i, sr[i], so[i])
		}
	}
	// Cumulative cycles resume from the checkpointed total.
	if restored.TotalStats().Cycles != orig.TotalStats().Cycles {
		t.Errorf("restored cycles %d, want %d", restored.TotalStats().Cycles, orig.TotalStats().Cycles)
	}
	if _, err := restored.ApplyBatch(Batch{Inserts: []Edge{absentEdge(restored.Graph())}}); err != nil {
		t.Fatal(err)
	}
	if d := restored.Verify(); d != 0 {
		t.Errorf("restored system diverged by %v", d)
	}
}

func TestCheckpointBeforeInitialRejected(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 100, Edges: 500, Seed: 23})
	sys, _ := New(g, BFS(0))
	if err := sys.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Error("checkpoint before RunInitial accepted")
	}
}

func TestCheckpointRejectsUnreconstructibleKernel(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 100, Edges: 500, Seed: 24})
	sys, err := New(g, PageRank(0), WithTiming(false))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	// Default PageRank reconstructs fine...
	if err := sys.Checkpoint(&bytes.Buffer{}); err != nil {
		t.Errorf("default pagerank checkpoint rejected: %v", err)
	}
	// ...but a kernel that cannot be rebuilt by name (LinSolve carries its
	// constant-term vector) is rejected at checkpoint time, not restore time.
	lg := algo.RowNormalize(RMAT(RMATConfig{Vertices: 100, Edges: 500, Seed: 24}), 0.7)
	lin, err := New(lg, algo.NewLinSolve(nil, 1e-7), WithTiming(false))
	if err != nil {
		t.Fatal(err)
	}
	lin.RunInitial()
	if err := lin.Checkpoint(&bytes.Buffer{}); err == nil {
		t.Error("non-reconstructible kernel checkpoint accepted")
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	orig, _ := buildStreamed(t, 2, WithTiming(false))
	var buf bytes.Buffer
	if err := orig.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte) {
		t.Helper()
		if _, err := Restore(bytes.NewReader(data)); !errors.Is(err, ErrCorruptCheckpoint) {
			t.Errorf("%s: error %v does not wrap ErrCorruptCheckpoint", name, err)
		}
	}
	check("empty", nil)
	check("bad magic", append([]byte("NOTACKPT"), good[8:]...))
	check("truncated header", good[:10])
	check("truncated payload", good[:len(good)/2])
	check("missing checksum", good[:len(good)-4])
	for _, off := range []int{20, len(good) / 2, len(good) - 20} {
		flipped := append([]byte(nil), good...)
		flipped[off] ^= 0x40
		check("bit flip", flipped)
	}
	// A pristine checkpoint still restores after all that.
	if _, err := Restore(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

func TestRestoreOrColdStartFallback(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 200, Edges: 1500, Seed: 25})

	// Damaged checkpoint: the fallback cold-starts a fresh system.
	sys, restoredOK, err := RestoreOrColdStart(bytes.NewReader([]byte("garbage")), g, SSSP(0), WithTiming(false))
	if err != nil {
		t.Fatal(err)
	}
	if restoredOK {
		t.Error("garbage reported as restored")
	}
	if sys.TotalStats().ColdStartFallbacks != 1 {
		t.Errorf("ColdStartFallbacks = %d, want 1", sys.TotalStats().ColdStartFallbacks)
	}
	// The fallback system is live: it already ran the initial evaluation and
	// accepts batches.
	if _, err := sys.ApplyBatch(Batch{Inserts: []Edge{absentEdge(sys.Graph())}}); err != nil {
		t.Fatal(err)
	}
	if d := sys.Verify(); d != 0 {
		t.Errorf("fallback system diverged by %v", d)
	}

	// Intact checkpoint: restored, no fallback counted.
	orig, _ := buildStreamed(t, 2, WithTiming(false))
	var buf bytes.Buffer
	if err := orig.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	sys2, restoredOK, err := RestoreOrColdStart(&buf, g, SSSP(0))
	if err != nil {
		t.Fatal(err)
	}
	if !restoredOK {
		t.Error("intact checkpoint fell back")
	}
	if sys2.TotalStats().ColdStartFallbacks != 0 {
		t.Errorf("restore counted a fallback: %d", sys2.TotalStats().ColdStartFallbacks)
	}
}

// TestCheckpointRecordsRebuildFlag checks the v3 format round-trips the
// mutation-path choice: a system pinned to full rebuilds must restore pinned.
func TestCheckpointRecordsRebuildFlag(t *testing.T) {
	orig, gen := buildStreamed(t, 3, WithTiming(false), WithParallelism(1), WithGraphRebuild())
	var buf bytes.Buffer
	if err := orig.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Continue both: with the flag restored, both sides take the rebuild path
	// and must stay counter-identical (the delta path books different
	// EdgeReads against slacked layouts, so a dropped flag would show here).
	for i := 0; i < 3; i++ {
		b := gen.Next(orig.Graph())
		if _, err := orig.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if orig.TotalStats() != restored.TotalStats() {
		t.Errorf("continued counters differ:\n%+v\nwant\n%+v", restored.TotalStats(), orig.TotalStats())
	}
	if d := algo.MaxAbsDiff(orig.State(), restored.State()); d != 0 {
		t.Errorf("states differ by %v after continuation", d)
	}
}

// TestCheckpointMidDeltaChain takes a checkpoint while the live graph is a
// slacked delta head with frozen ancestors, and checks the restored graph is
// the canonical compact form with identical logical content.
func TestCheckpointMidDeltaChain(t *testing.T) {
	orig, gen := buildStreamed(t, 6, WithTiming(false), WithParallelism(1))
	var buf bytes.Buffer
	if err := orig.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	og, rg := orig.Graph(), restored.Graph()
	if err := rg.Validate(); err != nil {
		t.Fatalf("restored graph invalid: %v", err)
	}
	// The restored graph is dense (slack is never serialized) but must carry
	// the same logical content as the slacked original.
	if rg.EdgeSlots() != rg.NumEdges() {
		t.Errorf("restored graph has slack: %d slots for %d edges", rg.EdgeSlots(), rg.NumEdges())
	}
	oe, re := og.Edges(), rg.Edges()
	if len(oe) != len(re) {
		t.Fatalf("edge counts differ: %d vs %d", len(oe), len(re))
	}
	for i := range oe {
		if oe[i] != re[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, oe[i], re[i])
		}
	}
	// Both continue through the same batches to identical states.
	for i := 0; i < 3; i++ {
		b := gen.Next(orig.Graph())
		if _, err := orig.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if _, err := restored.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if d := algo.MaxAbsDiff(orig.State(), restored.State()); d != 0 {
		t.Errorf("states differ by %v after continuation", d)
	}
}
