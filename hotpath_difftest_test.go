package jetstream

// Differential harness for the cache-conscious hot path: the degree-adaptive
// adjacency layout and the functional/timing pipeline overlap are both pure
// representation/wall-clock optimizations, so every kernel must produce the
// same results with them on, off, or tuned to any threshold. The adjacency
// comparisons run against the full-rebuild reference (a dense CSR with no
// slack and no inline records — maximally different memory layout, identical
// logical graph).

import (
	"fmt"
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/core"
)

// TestInlineAdjacencyAllKernelsAllParallelisms drives every kernel at
// parallelism 1, 2, and 8 with the inline layout forced on (threshold 4) and
// compares against the rebuild reference at parallelism 1. Selective kernels
// must match bitwise at every parallelism; accumulative kernels carry the
// usual epsilon-truncation tolerance above p=1 and must be bitwise at p=1.
// The logical graphs must be identical everywhere.
func TestInlineAdjacencyAllKernelsAllParallelisms(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			a := makeAlgByName(t, name)
			g, stream := difftestStream(t, a, 509, 8, 28)

			run := func(p int, opts ...Option) *System {
				t.Helper()
				opts = append([]Option{WithTiming(false), WithParallelism(p)}, opts...)
				sys, err := New(g, makeAlgByName(t, name), opts...)
				if err != nil {
					t.Fatal(err)
				}
				sys.RunInitial()
				for i, b := range stream {
					if _, err := sys.ApplyBatch(b); err != nil {
						t.Fatalf("p=%d batch %d: %v", p, i, err)
					}
				}
				return sys
			}

			ref := run(1, WithGraphRebuild())
			refState, refEdges := ref.State(), ref.Graph().Edges()
			for _, p := range difftestParallelisms {
				t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
					sys := run(p, WithInlineDegree(4))
					de := sys.Graph().Edges()
					if len(de) != len(refEdges) {
						t.Fatalf("edge counts diverge: %d vs %d", len(de), len(refEdges))
					}
					for j := range de {
						if de[j] != refEdges[j] {
							t.Fatalf("edge %d diverges: %+v vs %+v", j, de[j], refEdges[j])
						}
					}
					d := algo.MaxAbsDiff(sys.State(), refState)
					if p == 1 || a.Class() == algo.Selective {
						if d != 0 {
							t.Fatalf("p=%d: state differs from rebuild reference by %v (want bitwise equal)", p, d)
						}
						return
					}
					tol := core.Tolerance(a, sys.Graph().NumEdges(), len(stream)+1)
					if d > tol {
						t.Fatalf("p=%d: accumulative state differs by %v > tolerance %v", p, d, tol)
					}
				})
			}
		})
	}
}

// TestInlineThresholdsAgree pins that every inline threshold (including off)
// yields the bitwise-identical system: the knob moves adjacencies between
// representations, never changes what they contain.
func TestInlineThresholdsAgree(t *testing.T) {
	a := makeAlgByName(t, "pagerank")
	g, stream := difftestStream(t, a, 613, 6, 24)
	run := func(deg int) []float64 {
		sys, err := New(g, makeAlgByName(t, "pagerank"), WithTiming(false), WithParallelism(1), WithInlineDegree(deg))
		if err != nil {
			t.Fatal(err)
		}
		sys.RunInitial()
		for i, b := range stream {
			if _, err := sys.ApplyBatch(b); err != nil {
				t.Fatalf("deg=%d batch %d: %v", deg, i, err)
			}
		}
		return sys.State()
	}
	base := run(-1) // uniform slab
	for _, deg := range []int{1, 2, 4} {
		if d := algo.MaxAbsDiff(base, run(deg)); d != 0 {
			t.Fatalf("inline threshold %d changed state by %v (want bitwise equal)", deg, d)
		}
	}
}

// TestPipelineOverlapSystemBitwise drives the full System stack — detailed
// timing, sliding recovery phases, per-batch cycle reads — with pipeline
// overlap on and off, and requires identical per-batch cycle counts, stats,
// and final state. Run under -race this also exercises the handoff for
// synchronization bugs.
func TestPipelineOverlapSystemBitwise(t *testing.T) {
	a := makeAlgByName(t, "sssp")
	g, stream := difftestStream(t, a, 721, 6, 20)
	run := func(overlap bool) ([]Result, Counters, []float64) {
		sys, err := New(g, makeAlgByName(t, "sssp"), WithDetailedTiming(), WithPipelineOverlap(overlap))
		if err != nil {
			t.Fatal(err)
		}
		sys.RunInitial()
		results := make([]Result, len(stream))
		for i, b := range stream {
			r, err := sys.ApplyBatch(b)
			if err != nil {
				t.Fatalf("overlap=%v batch %d: %v", overlap, i, err)
			}
			results[i] = r
		}
		return results, sys.TotalStats(), sys.State()
	}
	offR, offTot, offState := run(false)
	onR, onTot, onState := run(true)
	for i := range offR {
		if onR[i].Cycles != offR[i].Cycles {
			t.Fatalf("batch %d: overlap changed cycles: %d vs %d", i, onR[i].Cycles, offR[i].Cycles)
		}
		if onR[i].Stats != offR[i].Stats {
			t.Fatalf("batch %d: overlap changed stats:\n  on:  %+v\n  off: %+v", i, onR[i].Stats, offR[i].Stats)
		}
	}
	if onTot != offTot {
		t.Fatalf("overlap changed totals:\n  on:  %+v\n  off: %+v", onTot, offTot)
	}
	if d := algo.MaxAbsDiff(onState, offState); d != 0 {
		t.Fatalf("overlap changed state by %v", d)
	}
	if offTot.Cycles == 0 {
		t.Fatal("detailed timing produced zero cycles")
	}
}
