package jetstream

import (
	"expvar"
	"net/http"

	"jetstream/internal/obs"
)

// This file is the observability surface of the public API: structured
// metric snapshots (Metrics), streaming trace callbacks (WithObserver), and
// the Prometheus / expvar exporters a long-running deployment scrapes.

// Observer receives trace events from a running System: batch start/end,
// phase transitions, per-worker drains, cross-worker mail, watchdog checks,
// fallback triggers, DMA retries. Implementations must be safe for
// concurrent use (parallel workers trace without synchronization) and should
// return quickly.
type Observer = obs.Tracer

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = obs.TracerFunc

// TraceEvent is one instrumentation event; the meaning of its fields depends
// on Kind.
type TraceEvent = obs.TraceEvent

// TraceKind identifies what a TraceEvent describes.
type TraceKind = obs.Kind

// Trace event kinds.
const (
	TraceBatchStart  = obs.KindBatchStart
	TraceBatchEnd    = obs.KindBatchEnd
	TracePhaseStart  = obs.KindPhaseStart
	TracePhaseEnd    = obs.KindPhaseEnd
	TraceWorkerDrain = obs.KindWorkerDrain
	TraceWorkerMail  = obs.KindWorkerMail
	TraceWatchdog    = obs.KindWatchdog
	TraceFallback    = obs.KindFallback
	TraceRetry       = obs.KindRetry
)

// WithObserver streams trace events to o as the system runs. Metrics
// collection does not require it — every System exports metrics — but the
// observer sees the event-level sequence the aggregated series cannot carry.
func WithObserver(o Observer) Option {
	return func(op *options) { op.observer = o }
}

// MetricsSchemaVersion is the version of the MetricsSnapshot layout. It
// increments when fields change meaning or disappear; additions keep the
// version.
const MetricsSchemaVersion = 1

// WorkerMetrics is one worker's cumulative share of the engine's work. At
// every operation boundary the per-worker sums over all workers equal the
// corresponding TotalStats counters: sequential-path work is attributed to
// worker 0, parallel-phase work to the worker that performed it.
type WorkerMetrics struct {
	Worker          int
	EventsProcessed uint64
	EventsCoalesced uint64
	EventsGenerated uint64
	// EventsForwarded counts events this worker routed to another worker's
	// shard through the mail channels (the NoC crossbar traffic).
	EventsForwarded uint64
	Rounds          uint64
	IdleSpins       uint64
	ShardHighWater  uint64
}

// ChannelMetrics is one DRAM channel's cumulative traffic (timing model
// only).
type ChannelMetrics struct {
	Channel  int
	Accesses uint64
	RowHits  uint64
	Bytes    uint64
}

// NoCPair is the cumulative event traffic of one (source worker, destination
// worker) crossbar pair.
type NoCPair struct {
	Src, Dst int
	Events   uint64
}

// HistogramSnapshot is a point-in-time copy of a log-2 histogram.
type HistogramSnapshot = obs.HistogramSnapshot

// HistogramBucket is one bucket of a HistogramSnapshot.
type HistogramBucket = obs.Bucket

// MetricsSnapshot is the structured, versioned view of everything the system
// exports — the API replacement for picking through TotalStats by hand.
type MetricsSnapshot struct {
	// SchemaVersion is MetricsSchemaVersion at build time.
	SchemaVersion int
	// Totals is the cumulative counter set (identical to TotalStats).
	Totals Counters
	// Batches is the number of applied batches.
	Batches uint64
	// Workers breaks the event work down per worker; empty slices of Totals
	// remain authoritative when parallelism never engaged. Sums over workers
	// equal the Totals event counters.
	Workers []WorkerMetrics
	// QueueLive and QueueHighWater describe the coalescing queue occupancy
	// (live events now / peak).
	QueueLive      int64
	QueueHighWater uint64
	// Channels is per-DRAM-channel traffic; nil with the timing model off.
	Channels []ChannelMetrics
	// NoC is the per-pair crossbar transfer matrix; nil until a parallel
	// phase has run.
	NoC []NoCPair
	// BatchLatency is the distribution of modeled per-batch durations in
	// nanoseconds (all zero with the timing model off, which models no time).
	BatchLatency HistogramSnapshot
}

// Metrics returns the structured metrics snapshot. Like State, call it
// between operations: the underlying atomics are always safe to read, but a
// snapshot taken mid-batch mixes attributed and pending work. For live
// scraping of a running system use MetricsHandler, whose series are
// individually consistent.
func (s *System) Metrics() MetricsSnapshot {
	eng := s.js.Engine()
	m := MetricsSnapshot{
		SchemaVersion: MetricsSchemaVersion,
		Totals:        s.TotalStats(),
		Batches:       s.batches,
		QueueLive:     int64(eng.Queue().Len()),
		QueueHighWater: func() uint64 {
			if ob := eng.Obs(); ob != nil {
				return ob.QueuePeak()
			}
			return uint64(eng.Queue().HighWater())
		}(),
		BatchLatency: s.latency.Snapshot(),
	}
	if ob := eng.Obs(); ob != nil {
		for i, w := range ob.WorkerSnapshots() {
			m.Workers = append(m.Workers, WorkerMetrics{
				Worker:          i,
				EventsProcessed: w.Processed,
				EventsCoalesced: w.Coalesced,
				EventsGenerated: w.Generated,
				EventsForwarded: w.Forwarded,
				Rounds:          w.Rounds,
				IdleSpins:       w.IdleSpins,
				ShardHighWater:  w.ShardHighWater,
			})
		}
		if k, cells := ob.PairSnapshot(); k > 0 {
			for src := 0; src < k; src++ {
				for dst := 0; dst < k; dst++ {
					if n := cells[src*k+dst]; n > 0 {
						m.NoC = append(m.NoC, NoCPair{Src: src, Dst: dst, Events: n})
					}
				}
			}
		}
	}
	for i, c := range eng.Channels() {
		m.Channels = append(m.Channels, ChannelMetrics{
			Channel: i, Accesses: c.Accesses, RowHits: c.RowHits, Bytes: c.Bytes,
		})
	}
	return m
}

// MetricsHandler returns an http.Handler serving the system's metrics in the
// Prometheus text exposition format. The handler reads only atomics, so it
// is safe to scrape while the system is streaming.
func (s *System) MetricsHandler() http.Handler { return s.reg.Handler() }

// Expvar returns the system's metrics as a single expvar.Var, for publishing
// under one name: expvar.Publish("jetstream", sys.Expvar()).
func (s *System) Expvar() expvar.Var { return s.reg.Var() }
