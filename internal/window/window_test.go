package window

import (
	"testing"

	"jetstream/internal/graph"
)

func e(u, v int) graph.Edge {
	return graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v), Weight: 1}
}

func k(u, v int) Key { return Key{graph.VertexID(u), graph.VertexID(v)} }

func keys(t *testing.T, got []Key, want ...Key) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("expired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("expired %v, want %v", got, want)
		}
	}
}

func TestNewRejectsNonPositiveTTL(t *testing.T) {
	for _, ttl := range []int{0, -1} {
		if _, err := New(ttl); err == nil {
			t.Fatalf("New(%d): want error", ttl)
		}
	}
}

// TestSeedExpiresAfterTTL: epoch-0 edges die exactly at batch ttl, not a
// batch earlier or later.
func TestSeedExpiresAfterTTL(t *testing.T) {
	r, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	r.Seed(0, []graph.Edge{e(1, 2), e(0, 1)})
	for epoch := uint64(1); epoch < 3; epoch++ {
		if got := r.Expire(epoch, nil); len(got) != 0 {
			t.Fatalf("epoch %d: premature expiry %v", epoch, got)
		}
		r.Record(epoch, graph.Batch{})
	}
	keys(t, r.Expire(3, nil), k(0, 1), k(1, 2)) // sorted (src,dst)
	if r.Len() != 0 {
		t.Fatalf("Len = %d after full expiry", r.Len())
	}
}

// TestDeleteCancelsExpiry: a user-deleted edge must not reappear in the
// aging deletion set when its epoch drains.
func TestDeleteCancelsExpiry(t *testing.T) {
	r, _ := New(2)
	r.Seed(0, []graph.Edge{e(1, 2), e(3, 4)})
	r.Expire(1, nil)
	r.Record(1, graph.Batch{Deletes: []graph.Edge{e(1, 2)}})
	keys(t, r.Expire(2, nil), k(3, 4))
}

// TestReinsertRefreshesAge: delete+insert of the same pair (the weight-change
// idiom) restarts the pair's lifetime; the stale bucket entry is skipped.
func TestReinsertRefreshesAge(t *testing.T) {
	r, _ := New(2)
	r.Seed(0, []graph.Edge{e(1, 2)})
	r.Expire(1, nil)
	r.Record(1, graph.Batch{Deletes: []graph.Edge{e(1, 2)}, Inserts: []graph.Edge{e(1, 2)}})
	keys(t, r.Expire(2, nil)) // epoch 0 entry is stale
	r.Record(2, graph.Batch{})
	keys(t, r.Expire(3, nil), k(1, 2)) // refreshed copy dies at 1+2
}

// TestSkipExcludesButStillForgets: a pair the caller deletes in the expiring
// batch is excluded from the set yet leaves the age map.
func TestSkipExcludesButStillForgets(t *testing.T) {
	r, _ := New(1)
	r.Seed(0, []graph.Edge{e(1, 2), e(3, 4)})
	got := r.Expire(1, func(x Key) bool { return x == k(1, 2) })
	keys(t, got, k(3, 4))
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0 (skipped pair must still leave the map)", r.Len())
	}
}

// TestExpireIdempotent: a second call for the same batch returns nothing.
func TestExpireIdempotent(t *testing.T) {
	r, _ := New(1)
	r.Seed(0, []graph.Edge{e(1, 2)})
	keys(t, r.Expire(1, nil), k(1, 2))
	keys(t, r.Expire(1, nil))
}

// TestBucketSlotReuse drives the ring well past one full revolution of the
// TTL+1 bucket slots and checks every epoch dies on schedule.
func TestBucketSlotReuse(t *testing.T) {
	const ttl = 2
	r, _ := New(ttl)
	r.Seed(0, []graph.Edge{e(0, 100)})
	for epoch := uint64(1); epoch <= 10; epoch++ {
		got := r.Expire(epoch, nil)
		if int64(epoch)-ttl >= 0 {
			want := k(int(epoch)-ttl, 100)
			keys(t, got, want)
		} else {
			keys(t, got)
		}
		r.Record(epoch, graph.Batch{Inserts: []graph.Edge{e(int(epoch), 100)}})
	}
	if r.Len() != ttl {
		t.Fatalf("Len = %d, want %d live epochs", r.Len(), ttl)
	}
}

// TestEntriesRoundTrip: Entries -> FromEntries reproduces ages and the expiry
// schedule exactly.
func TestEntriesRoundTrip(t *testing.T) {
	const ttl = 3
	r, _ := New(ttl)
	r.Seed(0, []graph.Edge{e(9, 9)})
	for epoch := uint64(1); epoch <= 5; epoch++ {
		r.Expire(epoch, nil)
		r.Record(epoch, graph.Batch{Inserts: []graph.Edge{e(int(epoch), 50)}})
	}
	ents := r.Entries()
	r2, err := FromEntries(ttl, 5, ents)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != r.Len() {
		t.Fatalf("restored Len = %d, want %d", r2.Len(), r.Len())
	}
	for epoch := uint64(6); epoch <= 9; epoch++ {
		a, b := r.Expire(epoch, nil), r2.Expire(epoch, nil)
		keys(t, b, a...)
		r.Record(epoch, graph.Batch{})
		r2.Record(epoch, graph.Batch{})
	}
}

// TestFromEntriesRejectsDamage: out-of-window epochs and duplicate pairs are
// checkpoint damage, not tolerated input.
func TestFromEntriesRejectsDamage(t *testing.T) {
	if _, err := FromEntries(2, 10, []Entry{{Src: 1, Dst: 2, Epoch: 3}}); err == nil {
		t.Fatal("epoch below window accepted")
	}
	if _, err := FromEntries(2, 10, []Entry{{Src: 1, Dst: 2, Epoch: 11}}); err == nil {
		t.Fatal("epoch beyond stream position accepted")
	}
	if _, err := FromEntries(2, 10, []Entry{
		{Src: 1, Dst: 2, Epoch: 9}, {Src: 1, Dst: 2, Epoch: 10},
	}); err == nil {
		t.Fatal("duplicate pair accepted")
	}
}

// TestSeedMidStream: a window attached at batch m gives the seeded edges a
// full TTL from that point.
func TestSeedMidStream(t *testing.T) {
	r, _ := New(2)
	r.Seed(7, []graph.Edge{e(1, 2)})
	keys(t, r.Expire(8, nil))
	r.Record(8, graph.Batch{})
	keys(t, r.Expire(9, nil), k(1, 2))
}
