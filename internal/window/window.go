// Package window implements the infinite-window streaming layer: a sliding
// window of TTL batch epochs over the edge stream. Every edge carries the
// epoch (batch number) it was inserted at; when the stream advances to batch
// k, every edge whose insertion epoch is at or below k-TTL falls out of the
// window, and the layer synthesizes the aging-based deletion set the engine
// applies through the ordinary delta path before the functional phase runs.
// This is the X-Stream model of unending streams (cybersecurity, fraud, IoT)
// where edges age out rather than accumulate forever.
//
// The structure is a ring of TTL+1 epoch buckets plus an age map:
//
//   - Record(epoch, batch) appends each inserted edge key to the bucket
//     epoch mod (TTL+1) and stamps its age; deleted keys leave the age map.
//   - Expire(epoch, skip) drains the buckets whose epochs fall out of the
//     window at batch `epoch` and returns the still-live keys they held.
//
// A bucket entry is never updated in place: an edge deleted or re-inserted
// after its recording leaves a stale entry behind, and Expire skips any entry
// whose age-map stamp no longer matches the draining epoch. Expiry therefore
// costs O(expired + stale) per batch — never O(V) or O(E) — and recording
// costs amortized O(1) per insert. Bucket reuse is safe because the slot for
// epoch e is drained at batch e+TTL, strictly before epoch e+TTL+1 records
// into the same slot.
package window

import (
	"fmt"
	"slices"

	"jetstream/internal/graph"
)

// Key identifies an edge by its endpoints — the (src,dst) pair is the edge's
// identity (paper §2.1); a same-batch delete+insert of one pair (the weight
// modification idiom) refreshes the pair's age.
type Key struct {
	Src, Dst graph.VertexID
}

// Entry is one live tracked edge with its insertion epoch — the unit a
// checkpoint serializes (format v5).
type Entry struct {
	Src, Dst graph.VertexID
	Epoch    uint64
}

// cmpKey orders keys by (src,dst). A named, non-capturing comparator feeds
// slices.SortFunc without allocating: the sort.Slice formulation boxed the
// slice into an interface and built a closure plus a reflect-based swapper
// on every expiry.
func cmpKey(a, b Key) int {
	if a.Src != b.Src {
		if a.Src < b.Src {
			return -1
		}
		return 1
	}
	switch {
	case a.Dst < b.Dst:
		return -1
	case a.Dst > b.Dst:
		return 1
	}
	return 0
}

// cmpEntry orders entries by (src,dst) — pairs are unique, so no tiebreak.
func cmpEntry(a, b Entry) int {
	return cmpKey(Key{a.Src, a.Dst}, Key{b.Src, b.Dst})
}

// Ring tracks per-edge insertion age over a sliding window of TTL batch
// epochs. It is not safe for concurrent use; the owning System serializes
// access, exactly like the engine it feeds.
type Ring struct {
	ttl     int
	buckets [][]Key
	age     map[Key]uint64
	// done is the highest epoch already drained by Expire (-1 before the
	// first expiry). Expire advances it monotonically, which makes a repeated
	// Expire call for the same batch idempotent.
	done int64
}

// New returns an empty ring with the given lifetime in batches. An edge
// recorded at epoch e expires at batch e+ttl, so after batch k the window
// holds exactly the epochs (k-ttl, k].
func New(ttl int) (*Ring, error) {
	if ttl < 1 {
		return nil, fmt.Errorf("window: ttl %d batches: must be at least 1", ttl)
	}
	return &Ring{
		ttl:     ttl,
		buckets: make([][]Key, ttl+1),
		age:     make(map[Key]uint64),
		done:    -1,
	}, nil
}

// TTL returns the window lifetime in batches.
func (r *Ring) TTL() int { return r.ttl }

// Len returns the number of live tracked edges.
func (r *Ring) Len() int { return len(r.age) }

// Age returns the insertion epoch of the edge (src,dst) and whether the ring
// tracks it.
func (r *Ring) Age(src, dst graph.VertexID) (uint64, bool) {
	e, ok := r.age[Key{src, dst}]
	return e, ok
}

// Seed registers the edges of a pre-existing graph at epoch atBatch — epoch 0
// for a fresh system, or the restored batch count when a window is attached
// to a mid-stream state (the seeded edges then live a full TTL from that
// point). Seed must run before any Record or Expire call.
func (r *Ring) Seed(atBatch uint64, edges []graph.Edge) {
	slot := atBatch % uint64(len(r.buckets))
	for _, e := range edges {
		k := Key{e.Src, e.Dst}
		r.age[k] = atBatch
		r.buckets[slot] = append(r.buckets[slot], k)
	}
	if d := int64(atBatch) - int64(r.ttl); d > r.done {
		r.done = d
	}
}

// Record registers the sanitized user batch applied as epoch: deleted pairs
// leave the age map (their bucket entries go stale) and inserted pairs are
// stamped at epoch. The caller must have called Expire(epoch, ...) first —
// Record and Expire share the bucket slot arithmetic and expiry-before-record
// ordering is what keeps slot reuse safe.
func (r *Ring) Record(epoch uint64, b graph.Batch) {
	for _, e := range b.Deletes {
		delete(r.age, Key{e.Src, e.Dst})
	}
	slot := epoch % uint64(len(r.buckets))
	for _, e := range b.Inserts {
		k := Key{e.Src, e.Dst}
		r.age[k] = epoch
		r.buckets[slot] = append(r.buckets[slot], k)
	}
}

// Expire drains every epoch that falls out of the window at batch epoch and
// returns the expiring edge keys in ascending (src,dst) order — the
// deterministic aging-based deletion set for this batch. Entries whose age
// stamp no longer matches the draining epoch (deleted or re-inserted since
// recording) are skipped. skip, when non-nil, marks pairs the caller is
// already deleting in this batch: they leave the age map but are excluded
// from the returned set so the merged deletion batch holds no duplicates.
//
//jetlint:hotpath
func (r *Ring) Expire(epoch uint64, skip func(Key) bool) []Key {
	limit := int64(epoch) - int64(r.ttl)
	if limit <= r.done {
		return nil
	}
	// Size the result once from the bucket lengths (an upper bound counting
	// stale entries) so the returned set is this batch's single allocation
	// and the appends below never grow it.
	n := 0
	for e := r.done + 1; e <= limit; e++ {
		n += len(r.buckets[uint64(e)%uint64(len(r.buckets))])
	}
	out := make([]Key, 0, n) //jetlint:allow hotpathalloc -- the returned expiry set is this batch's one sanctioned allocation
	for e := r.done + 1; e <= limit; e++ {
		slot := uint64(e) % uint64(len(r.buckets))
		for _, k := range r.buckets[slot] {
			if a, ok := r.age[k]; !ok || a != uint64(e) {
				continue // stale entry: deleted or re-inserted since
			}
			delete(r.age, k)
			if skip != nil && skip(k) {
				continue
			}
			out = append(out, k)
		}
		r.buckets[slot] = r.buckets[slot][:0]
	}
	r.done = limit
	if len(out) == 0 {
		return nil // preserve the historical nil result for empty expiries
	}
	slices.SortFunc(out, cmpKey)
	return out
}

// Peek returns exactly the keys Expire(epoch, skip) would return, without
// mutating the ring. Hosts that can abort a batch after computing its expiry
// set (a faulted DMA transfer, a journaling failure) size and stage the merged
// batch from Peek and call Expire only past the commit point.
func (r *Ring) Peek(epoch uint64, skip func(Key) bool) []Key {
	limit := int64(epoch) - int64(r.ttl)
	if limit <= r.done {
		return nil
	}
	n := 0
	for e := r.done + 1; e <= limit; e++ {
		n += len(r.buckets[uint64(e)%uint64(len(r.buckets))])
	}
	out := make([]Key, 0, n)
	for e := r.done + 1; e <= limit; e++ {
		slot := uint64(e) % uint64(len(r.buckets))
		for _, k := range r.buckets[slot] {
			if a, ok := r.age[k]; !ok || a != uint64(e) {
				continue
			}
			if skip != nil && skip(k) {
				continue
			}
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		return nil
	}
	slices.SortFunc(out, cmpKey)
	return out
}

// Entries returns the live tracked edges in ascending (src,dst) order — the
// canonical serialization a checkpoint records.
func (r *Ring) Entries() []Entry {
	out := make([]Entry, 0, len(r.age))
	for k, e := range r.age {
		out = append(out, Entry{Src: k.Src, Dst: k.Dst, Epoch: e})
	}
	slices.SortFunc(out, cmpEntry)
	return out
}

// FromEntries rebuilds a ring from a checkpoint: ttl, the stream position the
// entries were captured at, and the live entries themselves. Every entry must
// still be inside the window at that position ((batches-ttl, batches]) and no
// pair may repeat; violations indicate a damaged checkpoint and are rejected.
func FromEntries(ttl int, batches uint64, entries []Entry) (*Ring, error) {
	r, err := New(ttl)
	if err != nil {
		return nil, err
	}
	if d := int64(batches) - int64(ttl); d > r.done {
		r.done = d
	}
	for _, en := range entries {
		if en.Epoch > batches || int64(en.Epoch) <= r.done {
			return nil, fmt.Errorf("window: entry (%d,%d) epoch %d outside window (%d, %d]",
				en.Src, en.Dst, en.Epoch, r.done, batches)
		}
		k := Key{en.Src, en.Dst}
		if _, dup := r.age[k]; dup {
			return nil, fmt.Errorf("window: duplicate entry (%d,%d)", en.Src, en.Dst)
		}
		r.age[k] = en.Epoch
		slot := en.Epoch % uint64(len(r.buckets))
		r.buckets[slot] = append(r.buckets[slot], k)
	}
	return r, nil
}
