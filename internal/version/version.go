// Package version is the host-side graph versioning framework the paper
// assumes around the accelerator (§4.7): "we leave the task of maintaining
// the evolving edge list to a suitable software graph versioning framework.
// In the simplest case, we assume the host writes a new CSR for the mutated
// graph version to the accelerator memory and swaps the pointer after each
// batch iteration. In practice, any graph versioning storage, such as
// Version Traveler or GraphOne, can be used."
//
// Store keeps a chain of graph versions built from an initial snapshot plus
// the stream of update batches, in the GraphOne style: recent versions stay
// materialized as CSRs (ready for the accelerator's pointer swap), older
// ones are retained as deltas and re-materialized on demand by replaying
// from the nearest snapshot. Multiple standing queries (and the cold-start
// comparator) can therefore share one mutation history without re-applying
// batches per consumer.
package version

import (
	"fmt"
	"sync"

	"jetstream/internal/graph"
)

// Store is a multi-version graph container. It is safe for concurrent
// readers; Append serializes internally.
type Store struct {
	mu sync.RWMutex

	base     *graph.CSR
	deltas   []graph.Batch // deltas[i] transforms version i into version i+1
	matCache map[int]*graph.CSR
	// keepEvery controls which materialized versions are retained as
	// snapshots: version v stays cached if v%keepEvery == 0 or v is the
	// newest.
	keepEvery int
}

// NewStore starts a version chain at the given base graph (version 0).
// keepEvery <= 0 selects 8: every eighth version stays materialized as a
// snapshot for fast historical access.
func NewStore(base *graph.CSR, keepEvery int) *Store {
	if keepEvery <= 0 {
		keepEvery = 8
	}
	return &Store{
		base:      base,
		matCache:  map[int]*graph.CSR{0: base},
		keepEvery: keepEvery,
	}
}

// Latest returns the newest version number.
func (s *Store) Latest() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.deltas)
}

// Append validates and applies a batch, creating a new version; it returns
// the new version number and its materialized CSR (the pointer the host
// hands to the accelerator).
func (s *Store) Append(b graph.Batch) (int, *graph.CSR, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := s.materializeLocked(len(s.deltas))
	if err != nil {
		return 0, nil, err
	}
	next, err := cur.Apply(b)
	if err != nil {
		return 0, nil, err
	}
	s.deltas = append(s.deltas, b)
	v := len(s.deltas)
	s.matCache[v] = next
	s.evictLocked(v)
	return v, next, nil
}

// AppendLazy records a batch as a new version without materializing its CSR:
// an O(1) append for callers that already hold the materialized result (the
// host session applies batches through the engine's incremental path and only
// needs the store for history). The batch must apply cleanly on top of the
// current latest version — AppendLazy does not validate; an invalid batch
// surfaces later as a replay error from At/Replay. Returns the new version
// number.
//
// The newest cached snapshot is left where it is, so a later At() replays the
// lazily appended deltas from it with the rebuild path — never by mutating a
// CSR a concurrent reader may hold.
func (s *Store) AppendLazy(b graph.Batch) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deltas = append(s.deltas, b)
	return len(s.deltas)
}

// At materializes version v (0 = base). Historical versions are rebuilt by
// replaying deltas from the nearest retained snapshot.
func (s *Store) At(v int) (*graph.CSR, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.materializeLocked(v)
}

// Delta returns the batch that transforms version v into v+1.
func (s *Store) Delta(v int) (graph.Batch, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v < 0 || v >= len(s.deltas) {
		return graph.Batch{}, fmt.Errorf("version: no delta %d (have %d)", v, len(s.deltas))
	}
	return s.deltas[v], nil
}

// MaterializedVersions lists the versions currently held as CSR snapshots,
// for tests and introspection.
func (s *Store) MaterializedVersions() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.matCache))
	for v := range s.matCache {
		out = append(out, v)
	}
	return out
}

func (s *Store) materializeLocked(v int) (*graph.CSR, error) {
	if v < 0 || v > len(s.deltas) {
		return nil, fmt.Errorf("version: %d out of range (latest %d)", v, len(s.deltas))
	}
	if g, ok := s.matCache[v]; ok {
		return g, nil
	}
	// Replay from the nearest earlier snapshot.
	from := v
	for from > 0 {
		if _, ok := s.matCache[from]; ok {
			break
		}
		from--
	}
	g := s.matCache[from]
	for i := from; i < v; i++ {
		ng, err := g.Apply(s.deltas[i])
		if err != nil {
			return nil, fmt.Errorf("version: replaying delta %d: %w", i, err)
		}
		g = ng
	}
	// Cache the requested version if it is a snapshot point.
	if v%s.keepEvery == 0 || v == len(s.deltas) {
		s.matCache[v] = g
	}
	return g, nil
}

// evictLocked drops materialized versions that are neither snapshot points
// nor the newest two versions (the accelerator may still be computing on the
// previous version while the host prepares the next, §3.3).
func (s *Store) evictLocked(latest int) {
	for v := range s.matCache {
		if v%s.keepEvery == 0 || v >= latest-1 {
			continue
		}
		delete(s.matCache, v)
	}
}

// Replay calls fn for every version transition in [from, to): the version
// number, the materialized pre-state, and the delta. Consumers such as the
// cold-start comparator use it to walk the history without holding every
// CSR alive at once.
func (s *Store) Replay(from, to int, fn func(v int, g *graph.CSR, delta graph.Batch) error) error {
	if from < 0 || to > s.Latest() || from > to {
		return fmt.Errorf("version: bad replay range [%d,%d) with latest %d", from, to, s.Latest())
	}
	for v := from; v < to; v++ {
		g, err := s.At(v)
		if err != nil {
			return err
		}
		d, err := s.Delta(v)
		if err != nil {
			return err
		}
		if err := fn(v, g, d); err != nil {
			return err
		}
	}
	return nil
}
