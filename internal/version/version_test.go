package version

import (
	"sync"
	"testing"

	"jetstream/internal/graph"
	"jetstream/internal/stream"
)

func baseGraph() *graph.CSR {
	return graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1500, Seed: 1})
}

func TestAppendAndLatest(t *testing.T) {
	s := NewStore(baseGraph(), 0)
	if s.Latest() != 0 {
		t.Fatalf("fresh store latest = %d", s.Latest())
	}
	gen := stream.NewGenerator(stream.Config{BatchSize: 30, InsertFrac: 0.5, Seed: 2})
	g, _ := s.At(0)
	for i := 1; i <= 5; i++ {
		v, ng, err := s.Append(gen.Next(g))
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("version %d, want %d", v, i)
		}
		if err := ng.Validate(); err != nil {
			t.Fatal(err)
		}
		g = ng
	}
	if s.Latest() != 5 {
		t.Fatalf("latest = %d", s.Latest())
	}
}

func TestHistoricalMaterialization(t *testing.T) {
	s := NewStore(baseGraph(), 3)
	gen := stream.NewGenerator(stream.Config{BatchSize: 25, InsertFrac: 0.6, Seed: 3})
	// Record every version's edge list fingerprint as we append.
	want := map[int]int{0: mustAt(t, s, 0).NumEdges()}
	g := mustAt(t, s, 0)
	for i := 1; i <= 10; i++ {
		_, ng, err := s.Append(gen.Next(g))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ng.NumEdges()
		g = ng
	}
	// Old versions must re-materialize exactly, including evicted ones.
	for v := 0; v <= 10; v++ {
		got := mustAt(t, s, v)
		if got.NumEdges() != want[v] {
			t.Errorf("version %d: %d edges, want %d", v, got.NumEdges(), want[v])
		}
		if err := got.Validate(); err != nil {
			t.Errorf("version %d invalid: %v", v, err)
		}
	}
}

func TestEvictionKeepsSnapshots(t *testing.T) {
	s := NewStore(baseGraph(), 4)
	gen := stream.NewGenerator(stream.Config{BatchSize: 20, InsertFrac: 0.5, Seed: 4})
	g := mustAt(t, s, 0)
	for i := 0; i < 10; i++ {
		_, ng, err := s.Append(gen.Next(g))
		if err != nil {
			t.Fatal(err)
		}
		g = ng
	}
	kept := map[int]bool{}
	for _, v := range s.MaterializedVersions() {
		kept[v] = true
	}
	for _, v := range []int{0, 4, 8, 9, 10} { // snapshots + newest two
		if !kept[v] {
			t.Errorf("version %d evicted; kept: %v", v, s.MaterializedVersions())
		}
	}
	for _, v := range []int{1, 2, 3, 5, 6, 7} {
		if kept[v] {
			t.Errorf("version %d should have been evicted", v)
		}
	}
}

func TestDeltaAndReplay(t *testing.T) {
	s := NewStore(baseGraph(), 0)
	gen := stream.NewGenerator(stream.Config{BatchSize: 20, InsertFrac: 0.5, Seed: 5})
	g := mustAt(t, s, 0)
	var sizes []int
	for i := 0; i < 4; i++ {
		b := gen.Next(g)
		sizes = append(sizes, b.Size())
		_, ng, err := s.Append(b)
		if err != nil {
			t.Fatal(err)
		}
		g = ng
	}
	if _, err := s.Delta(4); err == nil {
		t.Error("Delta past latest accepted")
	}
	seen := 0
	err := s.Replay(0, 4, func(v int, g *graph.CSR, d graph.Batch) error {
		if d.Size() != sizes[v] {
			t.Errorf("replay %d: delta size %d, want %d", v, d.Size(), sizes[v])
		}
		// The delta must apply cleanly to the pre-state it is delivered with.
		if _, err := g.Apply(d); err != nil {
			return err
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 4 {
		t.Errorf("replayed %d transitions, want 4", seen)
	}
	if err := s.Replay(2, 1, nil); err == nil {
		t.Error("bad replay range accepted")
	}
}

func TestAppendRejectsInvalidBatch(t *testing.T) {
	s := NewStore(baseGraph(), 0)
	if _, _, err := s.Append(graph.Batch{Deletes: []graph.Edge{{Src: 0, Dst: 199, Weight: 1}}}); err == nil {
		// Edge (0,199) almost surely absent; if present, this still passes
		// because we check a guaranteed-missing self pair next.
		t.Log("first delete happened to exist")
	}
	if _, _, err := s.Append(graph.Batch{Inserts: []graph.Edge{{Src: 5, Dst: 5000, Weight: 1}}}); err == nil {
		t.Error("out-of-range insert accepted")
	}
	if s.Latest() != 0 {
		t.Errorf("failed append advanced version to %d", s.Latest())
	}
}

func TestConcurrentReaders(t *testing.T) {
	s := NewStore(baseGraph(), 2)
	gen := stream.NewGenerator(stream.Config{BatchSize: 20, InsertFrac: 0.5, Seed: 7})
	g := mustAt(t, s, 0)
	for i := 0; i < 8; i++ {
		_, ng, err := s.Append(gen.Next(g))
		if err != nil {
			t.Fatal(err)
		}
		g = ng
	}
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for v := 0; v <= 8; v++ {
				if _, err := s.At(v); err != nil {
					t.Errorf("reader %d at %d: %v", r, v, err)
				}
			}
		}(r)
	}
	wg.Wait()
}

func TestOutOfRange(t *testing.T) {
	s := NewStore(baseGraph(), 0)
	if _, err := s.At(-1); err == nil {
		t.Error("At(-1) accepted")
	}
	if _, err := s.At(1); err == nil {
		t.Error("At past latest accepted")
	}
	if _, err := s.Delta(-1); err == nil {
		t.Error("Delta(-1) accepted")
	}
}

func mustAt(t *testing.T, s *Store, v int) *graph.CSR {
	t.Helper()
	g, err := s.At(v)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
