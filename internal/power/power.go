// Package power provides the analytical area/energy model behind the paper's
// Table 4 ("We use CACTI 7 for power and area estimate for all memory
// elements. The queue memory is modeled in 22nm ITRS-HP SRAM logic").
// Constants are per-bit/per-port figures at a 22 nm-class node; components
// are sized from the accelerator configuration, so the GraphPulse-vs-
// JetStream deltas (wider events -> bigger buffers and NoC, extra reset
// logic) fall out of the configuration difference rather than being typed
// in.
package power

import (
	"fmt"
	"strings"

	"jetstream/internal/engine"
	"jetstream/internal/event"
)

// Tech holds 22 nm-class technology constants.
type Tech struct {
	// eDRAM (queue storage).
	EDRAMBitAreaUM2 float64 // µm² per bit
	EDRAMBitLeakNW  float64 // static nW per bit
	EDRAMDynFrac    float64 // dynamic power as a fraction of static at full activity

	// SRAM (scratchpads, buffers).
	SRAMBitAreaUM2 float64
	SRAMBitLeakNW  float64
	SRAMDynFrac    float64

	// NoC: per port and per byte of flit width.
	NoCPortAreaMM2    float64
	NoCPortStaticMW   float64
	NoCPortDynMW      float64
	NoCByteAreaScale  float64 // extra fraction per flit byte beyond 8
	NoCBytePowerScale float64

	// Processing logic per engine (FPU-dominated) and per extra function.
	PEAreaMM2     float64
	PEDynMW       float64
	ExtraLogicMM2 float64 // reset logic / stream reader / impact buffer, per PE
	ExtraLogicMW  float64
}

// Default22nm returns the calibrated constants. Calibration anchor: a 64 MB
// eDRAM queue comes out near 192 mm² and ~7.5 W static, matching Table 4's
// GraphPulse-configured queue.
func Default22nm() Tech {
	return Tech{
		EDRAMBitAreaUM2: 0.357,
		EDRAMBitLeakNW:  13.9,
		EDRAMDynFrac:    0.177,

		SRAMBitAreaUM2: 0.160,
		SRAMBitLeakNW:  2.7,
		SRAMDynFrac:    55,

		NoCPortAreaMM2:    0.097,
		NoCPortStaticMW:   1.6,
		NoCPortDynMW:      0.095,
		NoCByteAreaScale:  0.135,
		NoCBytePowerScale: 0.125,

		PEAreaMM2:     0.055,
		PEDynMW:       0.16,
		ExtraLogicMM2: 0.028,
		ExtraLogicMW:  0.065,
	}
}

// Component is one Table 4 row.
type Component struct {
	Name      string
	Count     int
	StaticMW  float64 // per instance
	DynamicMW float64 // per instance
	TotalMW   float64 // Count * (static + dynamic)
	AreaMM2   float64 // total across instances
}

// Estimate sizes the four Table 4 components for cfg.
func Estimate(cfg engine.Config, t Tech) []Component {
	evBytes := float64(event.Size(cfg.EventMode))

	// Queue: QueueBytes of eDRAM split over 64 bins (the paper's "Queue 64"
	// row), but slot width grows with the event size, enlarging the
	// peripheral/coalescer overhead slightly.
	const bins = 64
	queueBits := float64(cfg.QueueBytes) * 8
	slotOverhead := 1 + 0.01*(evBytes-8) // wider coalescer datapath
	qStatic := queueBits * t.EDRAMBitLeakNW / 1e6 * slotOverhead / bins
	qDyn := qStatic * t.EDRAMDynFrac / slotOverhead
	// Coalescing shortens queue activity for JetStream: fewer live events
	// per vertex reduce dynamic switching a little.
	if cfg.EventMode != event.ModeGraphPulse {
		qDyn *= 0.94
	}
	qArea := queueBits * t.EDRAMBitAreaUM2 / 1e6 * slotOverhead

	// Scratchpads: one per PE, plus the wider processing buffers for larger
	// events.
	spBits := float64(cfg.ScratchpadBytes)*8 + evBytes*64*8 // buffer slots
	spStatic := spBits * t.SRAMBitLeakNW / 1e6
	spDyn := spStatic * t.SRAMDynFrac / 128
	spArea := spBits * t.SRAMBitAreaUM2 / 1e6 * float64(cfg.Processors)

	// Network: the 16x16 crossbar; area/power scale with flit width.
	ports := 16.0
	widthScale := 1 + t.NoCByteAreaScale*(evBytes-8)
	powerScale := 1 + t.NoCBytePowerScale*(evBytes-8)
	nocStatic := ports * t.NoCPortStaticMW * powerScale * 16 / 16 * 3.55
	nocDyn := ports * t.NoCPortDynMW * powerScale * 3.55
	nocArea := ports * t.NoCPortAreaMM2 * widthScale * 3.55

	// Processing logic: FPUs stay the same width; JetStream adds the reset
	// logic, stream reader and impact buffer.
	peDyn := float64(cfg.Processors) * t.PEDynMW
	peArea := float64(cfg.Processors) * t.PEAreaMM2
	if cfg.EventMode != event.ModeGraphPulse {
		peDyn += float64(cfg.Processors) * t.ExtraLogicMW
		peArea += float64(cfg.Processors) * t.ExtraLogicMM2
	}

	rows := []Component{
		{Name: "Queue", Count: bins, StaticMW: qStatic, DynamicMW: qDyn,
			TotalMW: bins * (qStatic + qDyn), AreaMM2: qArea},
		{Name: "Scratchpad", Count: cfg.Processors, StaticMW: spStatic, DynamicMW: spDyn,
			TotalMW: float64(cfg.Processors) * (spStatic + spDyn), AreaMM2: spArea},
		{Name: "Network", Count: 1, StaticMW: nocStatic, DynamicMW: nocDyn,
			TotalMW: nocStatic + nocDyn, AreaMM2: nocArea},
		{Name: "Proc. Logic", Count: cfg.Processors, StaticMW: 0, DynamicMW: peDyn / float64(cfg.Processors),
			TotalMW: peDyn, AreaMM2: peArea},
	}
	return rows
}

// Totals sums a component list into a synthetic "Total" row.
func Totals(rows []Component) Component {
	t := Component{Name: "Total"}
	for _, r := range rows {
		t.TotalMW += r.TotalMW
		t.AreaMM2 += r.AreaMM2
	}
	return t
}

// Table formats a Table 4-style report comparing cfg against a baseline
// (typically JetStream vs GraphPulse-configured hardware).
func Table(rows, base []Component) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %5s %10s %10s %12s %10s\n",
		"Component", "#", "Static(mW)", "Dyn(mW)", "Total(mW)", "Area(mm2)")
	pct := func(v, b float64) string {
		if b == 0 {
			return ""
		}
		return fmt.Sprintf(" (%+.0f%%)", 100*(v-b)/b)
	}
	for i, r := range rows {
		fmt.Fprintf(&b, "%-12s %5d %10.2f %10.2f %12.1f%s %9.1f%s\n",
			r.Name, r.Count, r.StaticMW, r.DynamicMW,
			r.TotalMW, pct(r.TotalMW, base[i].TotalMW),
			r.AreaMM2, pct(r.AreaMM2, base[i].AreaMM2))
	}
	t, bt := Totals(rows), Totals(base)
	fmt.Fprintf(&b, "%-12s %5s %10s %10s %12.1f%s %9.1f%s\n",
		"Total", "", "", "", t.TotalMW, pct(t.TotalMW, bt.TotalMW),
		t.AreaMM2, pct(t.AreaMM2, bt.AreaMM2))
	return b.String()
}
