package power

import (
	"strings"
	"testing"

	"jetstream/internal/engine"
	"jetstream/internal/event"
)

func gpConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.EventMode = event.ModeGraphPulse
	return cfg
}

func jsConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.EventMode = event.ModeJetStreamDAP
	cfg.VertexBytes = 12
	return cfg
}

func TestEstimateAnchorsToPaper(t *testing.T) {
	// Table 4 anchors for the GraphPulse-like configuration: total area
	// ~200 mm2 ("The total area of JetStream is about 200mm2") dominated by
	// the 64 MB queue (~192 mm2), total power ~8.9 W dominated by queue
	// leakage.
	rows := Estimate(gpConfig(), Default22nm())
	total := Totals(rows)
	if total.AreaMM2 < 150 || total.AreaMM2 > 250 {
		t.Errorf("total area %.0f mm2, want ~200", total.AreaMM2)
	}
	if total.TotalMW < 7000 || total.TotalMW > 11000 {
		t.Errorf("total power %.0f mW, want ~8900", total.TotalMW)
	}
	if rows[0].Name != "Queue" || rows[0].AreaMM2 < 0.8*total.AreaMM2 {
		t.Errorf("queue must dominate area: %.0f of %.0f", rows[0].AreaMM2, total.AreaMM2)
	}
}

func TestJetStreamOverheadsSmall(t *testing.T) {
	// Table 4: "The overall increase in area and power is around 3% and 1%".
	gp := Totals(Estimate(gpConfig(), Default22nm()))
	js := Totals(Estimate(jsConfig(), Default22nm()))
	areaPct := 100 * (js.AreaMM2 - gp.AreaMM2) / gp.AreaMM2
	powPct := 100 * (js.TotalMW - gp.TotalMW) / gp.TotalMW
	if areaPct <= 0 || areaPct > 8 {
		t.Errorf("area overhead %.1f%%, want small positive (~3%%)", areaPct)
	}
	if powPct <= -1 || powPct > 5 {
		t.Errorf("power overhead %.1f%%, want ~1%%", powPct)
	}
}

func TestNetworkGrowsMost(t *testing.T) {
	// Table 4 shows the network taking the largest relative hit (+78%
	// static, +84% area) from the wider events.
	gp := Estimate(gpConfig(), Default22nm())
	js := Estimate(jsConfig(), Default22nm())
	var nocPct, queuePct float64
	for i := range gp {
		pct := 100 * (js[i].AreaMM2 - gp[i].AreaMM2) / gp[i].AreaMM2
		switch gp[i].Name {
		case "Network":
			nocPct = pct
		case "Queue":
			queuePct = pct
		}
	}
	if nocPct < 30 {
		t.Errorf("network area grew only %.0f%%, want large growth", nocPct)
	}
	if queuePct > 10 {
		t.Errorf("queue area grew %.0f%%, want small growth", queuePct)
	}
}

func TestTableRendering(t *testing.T) {
	gp := Estimate(gpConfig(), Default22nm())
	js := Estimate(jsConfig(), Default22nm())
	out := Table(js, gp)
	for _, want := range []string{"Queue", "Scratchpad", "Network", "Proc. Logic", "Total", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
