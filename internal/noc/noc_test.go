package noc

import "testing"

func TestBatchCycles(t *testing.T) {
	x := New(16, 16)
	if c := x.BatchCycles(nil, nil); c != 0 {
		t.Errorf("empty batch = %d cycles", c)
	}
	c := x.BatchCycles([]uint64{1, 2, 3}, []uint64{5, 1})
	if c != 5+x.HeadLatency {
		t.Errorf("cycles = %d, want %d", c, 5+x.HeadLatency)
	}
}

func TestSpreadCycles(t *testing.T) {
	x := New(16, 16)
	if c := x.SpreadCycles(0); c != 0 {
		t.Errorf("zero flits = %d", c)
	}
	// 160 flits over 16 ports = 10/port, +25% margin = 12, +head 2 = 14.
	if c := x.SpreadCycles(160); c != 14 {
		t.Errorf("160 flits = %d cycles, want 14", c)
	}
	// Throughput scales with port count.
	narrow := New(4, 4)
	if narrow.SpreadCycles(160) <= x.SpreadCycles(160) {
		t.Error("narrower crossbar should take longer")
	}
}
