// Package noc models the on-chip crossbar connecting the event generation
// streams to the queue bins (paper §4.4: "32 generators of 8 processing
// engines share the input ports of the 16x16 crossbar, and the output ports
// are shared among the queue bins").
package noc

// Crossbar is an NxM crossbar where each output port accepts one flit per
// cycle and each input port injects one flit per cycle. The timing layer
// asks for the number of cycles a batch of routed flits needs; with ideal
// scheduling that is the maximum port load, plus a pipeline fill latency.
type Crossbar struct {
	Inputs, Outputs int
	HeadLatency     uint64 // cycles for the first flit through the switch
}

// New returns an n-input, m-output crossbar with a 2-cycle head latency.
func New(n, m int) *Crossbar {
	return &Crossbar{Inputs: n, Outputs: m, HeadLatency: 2}
}

// BatchCycles returns the cycles needed to deliver a batch described by
// per-input and per-output flit counts. The bottleneck port serializes its
// own flits; everything else overlaps.
func (x *Crossbar) BatchCycles(perIn, perOut []uint64) uint64 {
	var max uint64
	for _, c := range perIn {
		if c > max {
			max = c
		}
	}
	for _, c := range perOut {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return 0
	}
	return max + x.HeadLatency
}

// SpreadCycles is the common case: n flits spread over the given number of
// source and destination ports with a uniform hash. It upper-bounds port
// load by the ceiling of a balanced spread times a mild imbalance factor —
// vertex-id hashing is not perfectly uniform in practice.
func (x *Crossbar) SpreadCycles(flits uint64) uint64 {
	if flits == 0 {
		return 0
	}
	ports := uint64(x.Outputs)
	if uint64(x.Inputs) < ports {
		ports = uint64(x.Inputs)
	}
	load := (flits + ports - 1) / ports
	// 25% imbalance margin.
	load += load / 4
	return load + x.HeadLatency
}
