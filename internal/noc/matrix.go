package noc

import "sync/atomic"

// Matrix counts per-(source, destination) transfers across the crossbar. The
// parallel engine's mail channels mirror the crossbar's ports, so each
// cross-worker event delivery is one cell increment. Cells are atomics:
// workers add concurrently without coordination, and an exporter may read the
// matrix while a phase is running.
type Matrix struct {
	k     int
	cells []atomic.Uint64 // row-major k*k
}

// NewMatrix returns a k-port transfer matrix.
func NewMatrix(k int) *Matrix {
	return &Matrix{k: k, cells: make([]atomic.Uint64, k*k)}
}

// K returns the port count.
func (m *Matrix) K() int { return m.k }

// Add records n transfers from src to dst.
func (m *Matrix) Add(src, dst int, n uint64) {
	m.cells[src*m.k+dst].Add(n)
}

// Load returns the transfer count from src to dst.
func (m *Matrix) Load(src, dst int) uint64 {
	return m.cells[src*m.k+dst].Load()
}

// Total returns the sum of all cells.
func (m *Matrix) Total() uint64 {
	var t uint64
	for i := range m.cells {
		t += m.cells[i].Load()
	}
	return t
}

// Snapshot copies the matrix as a k*k row-major slice.
func (m *Matrix) Snapshot() []uint64 {
	out := make([]uint64, len(m.cells))
	for i := range m.cells {
		out[i] = m.cells[i].Load()
	}
	return out
}
