package mem

// Cache is a set-associative cache with LRU replacement, used for the
// per-engine edge caches (1 KB each in Table 4's configuration). The
// functional layer probes it with real edge-array addresses, so hit rates —
// and through them Fig 11's transfer utilization — emerge from the actual
// access pattern.
type Cache struct {
	sets      int
	ways      int
	lineBytes uint64
	tags      [][]uint64 // tag per way; 0 means empty (tags are addr|1)
	stamp     [][]uint64
	clock     uint64

	Hits, Misses uint64
}

// NewCache builds a cache of the given total size. size and ways must yield
// at least one set.
func NewCache(sizeBytes, ways int, lineBytes uint64) *Cache {
	sets := sizeBytes / (ways * int(lineBytes))
	if sets < 1 {
		sets = 1
	}
	c := &Cache{sets: sets, ways: ways, lineBytes: lineBytes}
	c.tags = make([][]uint64, sets)
	c.stamp = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.stamp[i] = make([]uint64, ways)
	}
	return c
}

// Access probes the line containing addr, filling on miss. Returns true on
// hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	line := addr / c.lineBytes
	set := int(line) % c.sets
	tag := line | 1<<63 // mark valid
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		if c.tags[set][w] == tag {
			c.stamp[set][w] = c.clock
			c.Hits++
			return true
		}
		if c.stamp[set][w] < oldest {
			oldest = c.stamp[set][w]
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.stamp[set][victim] = c.clock
	c.Misses++
	return false
}

// HitRate returns hits/(hits+misses), 0 when unused.
func (c *Cache) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// Reset empties the cache and zeroes its counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		for w := range c.tags[i] {
			c.tags[i][w] = 0
			c.stamp[i][w] = 0
		}
	}
	c.Hits, c.Misses, c.clock = 0, 0, 0
}

// LineBytes exposes the line size.
func (c *Cache) LineBytes() uint64 { return c.lineBytes }
