// Package mem models the off-chip memory system of the accelerator: a DDR3
// multi-channel DRAM with per-bank row buffers (the paper models memory with
// DRAMSim2), a set-associative edge cache, and the vertex scratchpad
// prefetcher. The models are cycle-approximate: they capture row-buffer
// locality, channel parallelism and bus serialization, which are the effects
// the paper's Figs 9 and 11 hinge on.
package mem

import (
	"strconv"
	"sync/atomic"

	"jetstream/internal/obs"
	"jetstream/internal/stats"
)

// DRAMConfig describes the memory system. Defaults follow the paper's
// Table 1: 4 DDR3 channels at 17 GB/s each; with the accelerator clocked at
// 1 GHz a 64-byte line occupies a channel's data bus for ~4 cycles.
type DRAMConfig struct {
	Channels    int
	Banks       int    // banks per channel
	RowBytes    uint64 // row-buffer size
	LineBytes   uint64
	TRowHit     uint64 // cycles for an access hitting the open row (CAS)
	TRowMiss    uint64 // cycles for activate+precharge+CAS
	BurstCycles uint64 // data-bus occupancy per line
}

// DefaultDRAMConfig matches Table 1's 4x DDR3-2133 17 GB/s channels.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Channels:    4,
		Banks:       8,
		RowBytes:    8192,
		LineBytes:   64,
		TRowHit:     15,
		TRowMiss:    45,
		BurstCycles: 4,
	}
}

type bank struct {
	openRow int64
	freeAt  uint64
}

type channel struct {
	banks   []bank
	busFree uint64

	// Per-channel traffic tallies. Atomics so a metrics scrape can read them
	// while the (single-threaded) timing model is advancing.
	accesses atomic.Uint64
	rowHits  atomic.Uint64
	bytes    atomic.Uint64
}

// ChannelCounts is one channel's cumulative traffic.
type ChannelCounts struct {
	Accesses uint64
	RowHits  uint64
	Bytes    uint64
}

// DRAM is the stateful timing model. Addresses interleave across channels at
// line granularity (address bits just above the line offset), which is how
// the accelerator spreads sequential traffic across all four channels.
type DRAM struct {
	cfg DRAMConfig
	ch  []channel
	st  *stats.Counters
}

// NewDRAM builds the model; st may be nil.
func NewDRAM(cfg DRAMConfig, st *stats.Counters) *DRAM {
	if st == nil {
		st = &stats.Counters{}
	}
	d := &DRAM{cfg: cfg, st: st, ch: make([]channel, cfg.Channels)}
	for i := range d.ch {
		d.ch[i].banks = make([]bank, cfg.Banks)
		for b := range d.ch[i].banks {
			d.ch[i].banks[b].openRow = -1
		}
	}
	return d
}

// Access transfers the 64-byte line containing addr, issued at cycle `at`,
// and returns the completion cycle. Reads and writes are charged alike.
func (d *DRAM) Access(at uint64, addr uint64) uint64 {
	line := addr / d.cfg.LineBytes
	ci := int(line) % d.cfg.Channels
	c := &d.ch[ci]
	// Row id within the channel: lines map to rows after channel interleave.
	lineInCh := line / uint64(d.cfg.Channels)
	row := int64(lineInCh / (d.cfg.RowBytes / d.cfg.LineBytes))
	bi := int(row) % d.cfg.Banks
	b := &c.banks[bi]

	start := at
	if b.freeAt > start {
		start = b.freeAt
	}
	var lat uint64
	if b.openRow == row {
		// Column access to the open row: CAS latency to data, but the bank
		// can accept the next column command after one burst interval
		// (tCCD), so open-row streams pipeline at bus rate.
		lat = d.cfg.TRowHit
		b.freeAt = start + d.cfg.BurstCycles
		d.st.RowHits++
		c.rowHits.Add(1)
	} else {
		// Precharge + activate: the bank is occupied for the full cycle.
		lat = d.cfg.TRowMiss
		b.freeAt = start + d.cfg.TRowMiss
		b.openRow = row
	}
	ready := start + lat
	// Serialize on the channel data bus.
	busStart := ready
	if c.busFree > busStart {
		busStart = c.busFree
	}
	done := busStart + d.cfg.BurstCycles
	c.busFree = done
	d.st.DRAMAccesses++
	d.st.BytesTransferred += d.cfg.LineBytes
	c.accesses.Add(1)
	c.bytes.Add(d.cfg.LineBytes)
	return done
}

// ChannelCounts returns the per-channel traffic tallies.
func (d *DRAM) ChannelCounts() []ChannelCounts {
	out := make([]ChannelCounts, len(d.ch))
	for i := range d.ch {
		out[i] = ChannelCounts{
			Accesses: d.ch[i].accesses.Load(),
			RowHits:  d.ch[i].rowHits.Load(),
			Bytes:    d.ch[i].bytes.Load(),
		}
	}
	return out
}

// Observe registers the per-channel traffic series on reg. The values are
// read from the model's atomics at export time, so the timing hot path pays
// only the tally increments it already makes.
func (d *DRAM) Observe(reg *obs.Registry) {
	for i := range d.ch {
		c := &d.ch[i]
		l := obs.L("channel", strconv.Itoa(i))
		reg.CounterFunc("jetstream_dram_channel_accesses_total", c.accesses.Load, l)
		reg.CounterFunc("jetstream_dram_channel_row_hits_total", c.rowHits.Load, l)
		reg.CounterFunc("jetstream_dram_channel_bytes_total", c.bytes.Load, l)
	}
}

// AccessLines issues n sequential lines starting at addr and returns the
// completion cycle of the last one — the streaming pattern of the edge and
// vertex prefetchers.
func (d *DRAM) AccessLines(at uint64, addr uint64, n int) uint64 {
	done := at
	for i := 0; i < n; i++ {
		done = d.Access(at, addr+uint64(i)*d.cfg.LineBytes)
	}
	return done
}

// LineBytes exposes the configured line size.
func (d *DRAM) LineBytes() uint64 { return d.cfg.LineBytes }

// Reset clears all timing state (row buffers, bus schedules) but keeps the
// cumulative counters in the attached stats.
func (d *DRAM) Reset() {
	for i := range d.ch {
		d.ch[i].busFree = 0
		for b := range d.ch[i].banks {
			d.ch[i].banks[b] = bank{openRow: -1}
		}
	}
}
