package mem

import (
	"testing"

	"jetstream/internal/stats"
)

func TestDRAMRowLocality(t *testing.T) {
	st := &stats.Counters{}
	d := NewDRAM(DefaultDRAMConfig(), st)
	// Sequential lines map across channels; within one channel consecutive
	// lines share a row, so a streaming pattern must be mostly row hits.
	var addr uint64
	for i := 0; i < 1024; i++ {
		d.Access(0, addr)
		addr += 64
	}
	if st.DRAMAccesses != 1024 {
		t.Fatalf("accesses = %d", st.DRAMAccesses)
	}
	hitRate := float64(st.RowHits) / float64(st.DRAMAccesses)
	if hitRate < 0.9 {
		t.Errorf("sequential row-hit rate = %.2f, want > 0.9", hitRate)
	}
	if st.BytesTransferred != 1024*64 {
		t.Errorf("bytes = %d", st.BytesTransferred)
	}
}

func TestDRAMRandomWorseThanSequential(t *testing.T) {
	cfg := DefaultDRAMConfig()
	seqStats, rndStats := &stats.Counters{}, &stats.Counters{}
	seq := NewDRAM(cfg, seqStats)
	var seqDone uint64
	for i := 0; i < 2000; i++ {
		seqDone = seq.Access(0, uint64(i)*64)
	}
	rnd := NewDRAM(cfg, rndStats)
	var rndDone uint64
	x := uint64(12345)
	for i := 0; i < 2000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		rndDone = rnd.Access(0, (x>>20)%(1<<28))
	}
	if rndDone <= seqDone {
		t.Errorf("random (%d cycles) should be slower than sequential (%d)", rndDone, seqDone)
	}
	if rndStats.RowHits >= seqStats.RowHits {
		t.Errorf("random row hits %d >= sequential %d", rndStats.RowHits, seqStats.RowHits)
	}
}

func TestDRAMChannelParallelism(t *testing.T) {
	cfg := DefaultDRAMConfig()
	// All traffic to one channel vs spread across channels.
	one := NewDRAM(cfg, nil)
	var oneDone uint64
	for i := 0; i < 400; i++ {
		// Same channel: stride = channels * linebytes.
		oneDone = one.Access(0, uint64(i)*64*uint64(cfg.Channels))
	}
	spread := NewDRAM(cfg, nil)
	var spreadDone uint64
	for i := 0; i < 400; i++ {
		spreadDone = spread.Access(0, uint64(i)*64)
	}
	if spreadDone*2 > oneDone {
		t.Errorf("channel-parallel traffic (%d) should be much faster than single channel (%d)", spreadDone, oneDone)
	}
}

func TestDRAMReset(t *testing.T) {
	d := NewDRAM(DefaultDRAMConfig(), nil)
	d.Access(0, 0)
	d.Reset()
	// After reset, the first access at cycle 0 must see a closed row.
	st := &stats.Counters{}
	d2 := NewDRAM(DefaultDRAMConfig(), st)
	d2.Access(0, 0)
	d2.Reset()
	d2.Access(0, 0)
	if st.RowHits != 0 {
		t.Error("reset should close row buffers")
	}
}

func TestAccessLines(t *testing.T) {
	st := &stats.Counters{}
	d := NewDRAM(DefaultDRAMConfig(), st)
	d.AccessLines(0, 4096, 10)
	if st.DRAMAccesses != 10 {
		t.Errorf("accesses = %d, want 10", st.DRAMAccesses)
	}
}

func TestCacheBasic(t *testing.T) {
	c := NewCache(1024, 2, 64)
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) {
		t.Error("warm access missed")
	}
	if !c.Access(32) {
		t.Error("same-line access missed")
	}
	if c.Access(64) {
		t.Error("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

func TestCacheLRU(t *testing.T) {
	// 2 ways, 1 set of interest: three conflicting lines evict LRU.
	c := NewCache(128, 2, 64) // 1 set, 2 ways
	c.Access(0)
	c.Access(64)
	c.Access(0)   // touch 0: 64 becomes LRU
	c.Access(128) // evicts 64
	if !c.Access(0) {
		t.Error("0 should still be resident")
	}
	if c.Access(64) {
		t.Error("64 should have been evicted")
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1024, 2, 64)
	c.Access(0)
	c.Reset()
	if c.Access(0) {
		t.Error("cache not cold after reset")
	}
	c.Reset()
	if c.Hits != 0 && c.Misses != 0 {
		t.Error("counters not cleared")
	}
}
