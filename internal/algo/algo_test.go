package algo

import (
	"math"
	"testing"
	"testing/quick"

	"jetstream/internal/event"
	"jetstream/internal/graph"
)

func fig2Graph() *graph.CSR {
	// Paper Fig 2(a): A=0 B=1 C=2 D=3 E=4.
	return graph.MustBuild(5, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 7}, {Src: 0, Dst: 2, Weight: 3},
		{Src: 1, Dst: 3, Weight: 5},
		{Src: 2, Dst: 3, Weight: 8}, {Src: 2, Dst: 4, Weight: 2},
		{Src: 3, Dst: 4, Weight: 6},
		{Src: 4, Dst: 1, Weight: 7},
	})
}

func TestDijkstraFig2(t *testing.T) {
	// Fig 2(b) reports distances [0 3 5 8 12] ... the paper's vector is
	// (A,B,C,D,E) = (0,?,3,8,5?) — we verify against hand computation:
	// A=0, C=3, B=7, D=11 via C? C->D=8 => 11; via B: 7+5=12 -> 11? Let's
	// just assert the algorithmic invariants instead of figure literals.
	d := Dijkstra(fig2Graph(), 0)
	if d[0] != 0 {
		t.Errorf("d[A]=%v, want 0", d[0])
	}
	if d[2] != 3 {
		t.Errorf("d[C]=%v, want 3", d[2])
	}
	if d[4] != 5 {
		t.Errorf("d[E]=%v, want 5 (A->C->E)", d[4])
	}
	if d[1] != 7 {
		t.Errorf("d[B]=%v, want 7 (A->B)", d[1])
	}
	if d[3] != 11 {
		t.Errorf("d[D]=%v, want 11 (A->C->D)", d[3])
	}
}

func TestDijkstraAfterDeleteFig2(t *testing.T) {
	// Fig 2 deletes A->C; expected result from the figure: distances grow.
	g := fig2Graph().MustApply(graph.Batch{Deletes: []graph.Edge{{Src: 0, Dst: 2, Weight: 3}}})
	d := Dijkstra(g, 0)
	want := []float64{0, 7, math.Inf(1), 12, 18}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("d[%d]=%v, want %v", i, d[i], want[i])
		}
	}
}

func TestWidestPath(t *testing.T) {
	w := WidestPath(fig2Graph(), 0)
	if !math.IsInf(w[0], 1) {
		t.Errorf("w[A]=%v, want +Inf", w[0])
	}
	// A->B width 7; A->C->D width min(3,8)=3, A->B->D = min(7,5)=5.
	if w[1] != 7 {
		t.Errorf("w[B]=%v, want 7", w[1])
	}
	if w[3] != 5 {
		t.Errorf("w[D]=%v, want 5", w[3])
	}
	// E: A->B->D->E = min(7,5,6)=5 vs A->C->E = min(3,2)=2.
	if w[4] != 5 {
		t.Errorf("w[E]=%v, want 5", w[4])
	}
}

func TestBFSLevels(t *testing.T) {
	l := BFSLevels(fig2Graph(), 0)
	want := []float64{0, 1, 1, 2, 2}
	for i := range want {
		if l[i] != want[i] {
			t.Errorf("l[%d]=%v, want %v", i, l[i], want[i])
		}
	}
	// Unreachable vertices are +Inf.
	g := graph.MustBuild(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	l = BFSLevels(g, 0)
	if !math.IsInf(l[2], 1) {
		t.Errorf("unreachable level = %v, want +Inf", l[2])
	}
}

func TestCCLabels(t *testing.T) {
	// Two components: {0,1,2} and {3,4}.
	g := graph.Symmetrize(graph.MustBuild(5, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 3, Dst: 4, Weight: 1},
	}))
	l := CCLabels(g)
	want := []float64{0, 0, 0, 3, 3}
	for i := range want {
		if l[i] != want[i] {
			t.Errorf("label[%d]=%v, want %v", i, l[i], want[i])
		}
	}
}

func TestPageRankRefConverges(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2500, Seed: 3})
	pr := PageRankRef(g, 0.15, 1e-10)
	// Fixpoint check: residual of the PageRank equation must be tiny.
	for v := 0; v < g.NumVertices(); v++ {
		sum := 0.0
		g.InEdges(graph.VertexID(v), func(u graph.VertexID, _ graph.Weight) {
			sum += pr[u] / float64(g.OutDegree(u))
		})
		want := 0.15 + 0.85*sum
		if math.Abs(pr[v]-want) > 1e-8 {
			t.Fatalf("residual at %d: %v vs %v", v, pr[v], want)
		}
	}
}

func TestAdsorptionRefConverges(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2500, Seed: 4})
	a := AdsorptionRef(g, 0.15, 0.85, 1e-10)
	for v := 0; v < g.NumVertices(); v++ {
		sum := 0.0
		g.InEdges(graph.VertexID(v), func(u graph.VertexID, w graph.Weight) {
			sum += a[u] * w / g.OutWeightSum(u)
		})
		want := 0.15 + 0.85*sum
		if math.Abs(a[v]-want) > 1e-8 {
			t.Fatalf("residual at %d: %v vs %v", v, a[v], want)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name, 0, 0)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name && !(name == "pagerank" && a.Name() == "pagerank") {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := New("pr", 0, 0); err != nil {
		t.Error("alias pr rejected")
	}
	if _, err := New("bogus", 0, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestIdentityIsNonDominant(t *testing.T) {
	// Reduce(Identity, x) == x for any value x the algorithm can produce.
	samples := []float64{0, 0.5, 1, 7, 1e6}
	for _, name := range Names() {
		a, _ := New(name, 0, 0)
		for _, x := range samples {
			if got := a.Reduce(a.Identity(), x); got != x {
				t.Errorf("%s: Reduce(Identity, %v) = %v, want %v", name, x, got, x)
			}
		}
	}
}

func TestReducePropertiesQuick(t *testing.T) {
	// The Reordering Property (§3.1): Reduce must be commutative and
	// associative so contributions can be applied in any order and coalesced.
	for _, name := range Names() {
		a, _ := New(name, 0, 0)
		comm := func(x, y float64) bool {
			return a.Reduce(x, y) == a.Reduce(y, x)
		}
		if err := quick.Check(comm, nil); err != nil {
			t.Errorf("%s: not commutative: %v", name, err)
		}
		if a.Class() == Selective {
			// Selection algorithms: exact associativity.
			assoc := func(x, y, z float64) bool {
				return a.Reduce(a.Reduce(x, y), z) == a.Reduce(x, a.Reduce(y, z))
			}
			if err := quick.Check(assoc, nil); err != nil {
				t.Errorf("%s: not associative: %v", name, err)
			}
			// Selection: result is one of the inputs.
			sel := func(x, y float64) bool {
				r := a.Reduce(x, y)
				return r == x || r == y
			}
			if err := quick.Check(sel, nil); err != nil {
				t.Errorf("%s: Reduce not a selection: %v", name, err)
			}
		} else {
			// Accumulative: associativity up to float rounding.
			assoc := func(x, y, z float64) bool {
				l := a.Reduce(a.Reduce(x, y), z)
				r := a.Reduce(x, a.Reduce(y, z))
				if math.IsNaN(l) || math.IsNaN(r) || math.IsInf(l, 0) || math.IsInf(r, 0) {
					return true
				}
				// Error is relative to the inputs, not the results: near-total
				// cancellation leaves results of rounding-noise magnitude, and
				// dividing by those would reject correct float behavior.
				scale := math.Max(1, math.Max(math.Abs(x), math.Max(math.Abs(y), math.Abs(z))))
				return math.Abs(l-r)/scale < 1e-12
			}
			if err := quick.Check(assoc, nil); err != nil {
				t.Errorf("%s: not associative: %v", name, err)
			}
		}
	}
}

func TestDominates(t *testing.T) {
	sssp := NewSSSP(0)
	if !Dominates(sssp, 3, 5) {
		t.Error("3 should dominate 5 for min-Reduce")
	}
	if Dominates(sssp, 5, 3) {
		t.Error("5 should not dominate 3 for min-Reduce")
	}
	if !Dominates(sssp, 4, 4) {
		t.Error("equal values should dominate (>= progressed)")
	}
	sswp := NewSSWP(0)
	if !Dominates(sswp, 9, 2) {
		t.Error("9 should dominate 2 for max-Reduce")
	}
}

func TestPropagateDegreeDependence(t *testing.T) {
	pr := NewPageRank(0)
	d1 := pr.Propagate(0, 1.0, 1, 4, 0)
	if math.Abs(d1-0.85/4) > 1e-15 {
		t.Errorf("PageRank propagate = %v, want %v", d1, 0.85/4)
	}
	if pr.Propagate(0, 1.0, 1, 0, 0) != 0 {
		t.Error("PageRank propagate with zero out-degree must be 0")
	}
	ad := NewAdsorption(0)
	d2 := ad.Propagate(0, 2.0, 3, 0, 12)
	if math.Abs(d2-2.0*0.85*3/12) > 1e-15 {
		t.Errorf("Adsorption propagate = %v", d2)
	}
	if ad.Propagate(0, 1.0, 1, 0, 0) != 0 {
		t.Error("Adsorption propagate with zero weight sum must be 0")
	}
}

func TestInitialEvents(t *testing.T) {
	g := fig2Graph()
	// Single-source kernels seed exactly one event at the root.
	for _, a := range []Algorithm{NewSSSP(2), NewSSWP(2), NewBFS(2)} {
		evs := a.InitialEvents(g)
		if len(evs) != 1 || evs[0].Target != 2 {
			t.Errorf("%s initial events = %v", a.Name(), evs)
		}
	}
	// Whole-graph kernels seed one event per vertex.
	for _, a := range []Algorithm{NewCC(), NewPageRank(0), NewAdsorption(0)} {
		evs := a.InitialEvents(g)
		if len(evs) != g.NumVertices() {
			t.Errorf("%s: %d initial events, want %d", a.Name(), len(evs), g.NumVertices())
		}
	}
	// CC seeds each vertex with its own id.
	for i, ev := range NewCC().InitialEvents(g) {
		if ev.Value != float64(i) {
			t.Errorf("cc initial event %d carries %v", i, ev.Value)
		}
	}
}

func TestInitialEventForMatchesInitialEvents(t *testing.T) {
	// The two views of the seed set must agree exactly: InitialEvents is
	// what the Initializer loads; InitialEventFor is what deletion recovery
	// re-seeds per impacted vertex.
	g := fig2Graph()
	for _, name := range Names() {
		a, _ := New(name, 1, 0)
		fromList := map[graph.VertexID]float64{}
		for _, ev := range a.InitialEvents(g) {
			fromList[ev.Target] = ev.Value
		}
		for v := 0; v < g.NumVertices(); v++ {
			val, ok := a.InitialEventFor(graph.VertexID(v), g)
			want, inList := fromList[graph.VertexID(v)]
			if ok != inList {
				t.Errorf("%s: vertex %d seed presence mismatch (For=%v, Events=%v)", name, v, ok, inList)
			}
			if ok && val != want {
				t.Errorf("%s: vertex %d seed %v, want %v", name, v, val, want)
			}
		}
	}
}

func TestEventFlagsAndSize(t *testing.T) {
	e := event.New(5, 1.5)
	if e.IsDelete() || e.IsRequest() {
		t.Error("fresh event has flags set")
	}
	e.Flags |= event.FlagDelete
	if !e.IsDelete() {
		t.Error("delete flag not readable")
	}
	e.Flags |= event.FlagRequest
	if !e.IsRequest() {
		t.Error("request flag not readable")
	}
	if event.Size(event.ModeGraphPulse) >= event.Size(event.ModeJetStream) ||
		event.Size(event.ModeJetStream) >= event.Size(event.ModeJetStreamDAP) {
		t.Error("event sizes must grow GraphPulse < JetStream < DAP")
	}
	if e.Source != event.NoSource {
		t.Error("New must not set a source")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	inf := math.Inf(1)
	if d := MaxAbsDiff([]float64{1, inf}, []float64{1, inf}); d != 0 {
		t.Errorf("equal vectors differ by %v", d)
	}
	if d := MaxAbsDiff([]float64{1, inf}, []float64{1, 5}); !math.IsInf(d, 1) {
		t.Errorf("inf mismatch = %v, want +Inf", d)
	}
	if d := MaxAbsDiff([]float64{1, 2}, []float64{1.5, 2}); d != 0.5 {
		t.Errorf("diff = %v, want 0.5", d)
	}
}

func TestLinSolveReference(t *testing.T) {
	g := RowNormalize(graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2400, Seed: 31}), 0.8)
	a := NewLinSolve(nil, 1e-12)
	x := LinSolveRef(g, a.bAt, 1e-14)
	// Residual of x = b + Wx must vanish.
	for v := 0; v < g.NumVertices(); v++ {
		sum := 1.0
		g.InEdges(graph.VertexID(v), func(u graph.VertexID, w graph.Weight) {
			sum += x[u] * w
		})
		if math.Abs(sum-x[v]) > 1e-10 {
			t.Fatalf("residual at %d: %v vs %v", v, x[v], sum)
		}
	}
}

func TestRowNormalizeContracts(t *testing.T) {
	g := RowNormalize(graph.ErdosRenyi(200, 1600, 32, 33), 0.8)
	for v := 0; v < g.NumVertices(); v++ {
		sum := 0.0
		g.InEdges(graph.VertexID(v), func(_ graph.VertexID, w graph.Weight) {
			sum += math.Abs(w)
		})
		if sum > 0.8+1e-9 {
			t.Fatalf("in-weight sum at %d = %v > 0.8", v, sum)
		}
	}
	// Signs alternate, so some weights must be negative.
	neg := false
	for _, e := range g.Edges() {
		if e.Weight < 0 {
			neg = true
		}
	}
	if !neg {
		t.Error("RowNormalize produced no negative weights")
	}
}

func TestLinSolveCustomB(t *testing.T) {
	b := []float64{2, 0, -1}
	a := NewLinSolve(b, 0)
	if v, ok := a.InitialEventFor(0, nil); !ok || v != 2 {
		t.Errorf("seed(0) = %v,%v", v, ok)
	}
	if _, ok := a.InitialEventFor(1, nil); ok {
		t.Error("zero b must not seed")
	}
	if v, ok := a.InitialEventFor(2, nil); !ok || v != -1 {
		t.Errorf("seed(2) = %v,%v", v, ok)
	}
	// Out-of-range vertices contribute nothing.
	if _, ok := a.InitialEventFor(9, nil); ok {
		t.Error("out-of-range b must not seed")
	}
	if _, err := New("linsolve", 0, 0); err != nil {
		t.Error("linsolve not registered")
	}
}
