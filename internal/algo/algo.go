// Package algo defines the delta-accumulative (DAIC) programming model the
// GraphPulse/JetStream engines execute (paper §3.1, Algorithm 1) and the six
// workloads of the evaluation: SSSP, SSWP, BFS and Connected Components
// (selective/monotonic update functions, served by KickStarter in software)
// and incremental PageRank and Adsorption (accumulative update functions,
// served by GraphBolt in software).
package algo

import (
	"errors"
	"fmt"
	"math"

	"jetstream/internal/event"
	"jetstream/internal/graph"
)

// ErrUnknown is wrapped by New (and by everything that validates algorithm
// names, e.g. AlgorithmSpec JSON decoding) when a name resolves to no kernel.
// Match it with errors.Is.
var ErrUnknown = errors.New("unknown algorithm")

// SpecNames lists the kernels a declarative AlgorithmSpec may name, in a
// stable order. "linsolve" is deliberately absent: its coefficient matrix
// cannot be carried by a plain-data spec, so it is constructible only through
// code.
func SpecNames() []string {
	return []string{"sssp", "sswp", "bfs", "cc", "wcc", "pagerank", "adsorption"}
}

// ValidSpecName reports whether name is usable in a declarative spec
// (see SpecNames; the "pr" shorthand for pagerank is accepted too).
func ValidSpecName(name string) bool {
	if name == "pr" {
		return true
	}
	for _, n := range SpecNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Class splits the algorithms by their update function, which decides how
// JetStream recovers from edge deletions (§3.5): selective algorithms need
// tag-propagation and reapproximation; accumulative algorithms negate the
// deleted contribution with a negative event.
type Class int

const (
	// Selective algorithms pick one dominating incoming contribution
	// (min/max); their convergence is monotonic.
	Selective Class = iota
	// Accumulative algorithms sum incoming contributions.
	Accumulative
)

func (c Class) String() string {
	if c == Selective {
		return "selective"
	}
	return "accumulative"
}

// Algorithm is the user-provided kernel of the DAIC model. The engines own
// state storage, scheduling and propagation; the algorithm supplies only the
// Reduce/Propagate pair, the Identity element and the initial event set —
// exactly the API surface GraphPulse exposes, so "JetStream supports all the
// algorithms supported in GraphPulse without any change to the application".
type Algorithm interface {
	// Name is the short code used by the CLI and the experiment harness.
	Name() string
	// Class selects the deletion-recovery strategy.
	Class() Class
	// Identity is the initial vertex value and the non-dominant element of
	// Reduce: Reduce(Identity, x) == x for any reachable x.
	Identity() float64
	// Reduce combines the current state with an incoming delta and returns
	// the new state. It must be commutative and associative (the Reordering
	// Property, §3.1) so events can be coalesced and applied in any order.
	Reduce(state, delta float64) float64
	// Propagate computes the delta sent from vertex u along an out-edge of
	// weight w. For selective algorithms x is u's state; for accumulative
	// algorithms x is the delta being forwarded (Maiter-style). outDeg and
	// outWSum describe u's out-adjacency in the graph version the event is
	// generated against — degree-dependent algorithms (PageRank, Adsorption)
	// divide by them.
	Propagate(u graph.VertexID, x float64, w graph.Weight, outDeg int, outWSum float64) float64
	// InitialEvents crafts the query's seed events (Algorithm 1's
	// InitialEvents()): vertices start at Identity and the first reduction
	// moves them to their initial state.
	InitialEvents(g *graph.CSR) []event.Event
	// InitialEventFor returns the contribution InitialEvents seeds at v, if
	// any. The converged state is the fixpoint over edge contributions AND
	// initial events, so when deletion recovery resets a vertex to Identity
	// it must re-seed this contribution — reapproximation requests can only
	// re-derive edge contributions (think of CC: a component's label is the
	// label-holder's own initial event, which no in-edge can restore).
	InitialEventFor(v graph.VertexID, g *graph.CSR) (float64, bool)
	// Epsilon is the propagation threshold for accumulative algorithms:
	// deltas with magnitude below it are dropped (termination). Selective
	// algorithms return 0.
	Epsilon() float64
}

// Dominates reports whether value a would win the Reduce against b — i.e. a
// is at least as progressed as b. The VAP optimization (§5.1) discards a
// delete whose carried contribution does not dominate the receiver's state.
func Dominates(a Algorithm, x, y float64) bool {
	return a.Reduce(x, y) == x
}

// ---------------------------------------------------------------------------
// Selective algorithms
// ---------------------------------------------------------------------------

// SSSP computes single-source shortest paths from Root.
type SSSP struct{ Root graph.VertexID }

// NewSSSP returns the SSSP kernel rooted at root.
func NewSSSP(root graph.VertexID) *SSSP { return &SSSP{Root: root} }

func (a *SSSP) Name() string                { return "sssp" }
func (a *SSSP) Class() Class                { return Selective }
func (a *SSSP) Identity() float64           { return math.Inf(1) }
func (a *SSSP) Epsilon() float64            { return 0 }
func (a *SSSP) Reduce(s, d float64) float64 { return math.Min(s, d) }
func (a *SSSP) Propagate(_ graph.VertexID, x float64, w graph.Weight, _ int, _ float64) float64 {
	return x + w
}
func (a *SSSP) InitialEvents(*graph.CSR) []event.Event {
	return []event.Event{event.New(a.Root, 0)}
}

func (a *SSSP) InitialEventFor(v graph.VertexID, _ *graph.CSR) (float64, bool) {
	if v == a.Root {
		return 0, true
	}
	return 0, false
}

// SSWP computes single-source widest paths (maximize the minimum edge weight
// along the path) from Root.
type SSWP struct{ Root graph.VertexID }

// NewSSWP returns the SSWP kernel rooted at root.
func NewSSWP(root graph.VertexID) *SSWP { return &SSWP{Root: root} }

func (a *SSWP) Name() string                { return "sswp" }
func (a *SSWP) Class() Class                { return Selective }
func (a *SSWP) Identity() float64           { return 0 }
func (a *SSWP) Epsilon() float64            { return 0 }
func (a *SSWP) Reduce(s, d float64) float64 { return math.Max(s, d) }
func (a *SSWP) Propagate(_ graph.VertexID, x float64, w graph.Weight, _ int, _ float64) float64 {
	return math.Min(x, w)
}
func (a *SSWP) InitialEvents(*graph.CSR) []event.Event {
	return []event.Event{event.New(a.Root, math.Inf(1))}
}

func (a *SSWP) InitialEventFor(v graph.VertexID, _ *graph.CSR) (float64, bool) {
	if v == a.Root {
		return math.Inf(1), true
	}
	return 0, false
}

// BFS computes hop counts from Root (edge weights ignored).
type BFS struct{ Root graph.VertexID }

// NewBFS returns the BFS kernel rooted at root.
func NewBFS(root graph.VertexID) *BFS { return &BFS{Root: root} }

func (a *BFS) Name() string                { return "bfs" }
func (a *BFS) Class() Class                { return Selective }
func (a *BFS) Identity() float64           { return math.Inf(1) }
func (a *BFS) Epsilon() float64            { return 0 }
func (a *BFS) Reduce(s, d float64) float64 { return math.Min(s, d) }
func (a *BFS) Propagate(_ graph.VertexID, x float64, _ graph.Weight, _ int, _ float64) float64 {
	return x + 1
}
func (a *BFS) InitialEvents(*graph.CSR) []event.Event {
	return []event.Event{event.New(a.Root, 0)}
}

func (a *BFS) InitialEventFor(v graph.VertexID, _ *graph.CSR) (float64, bool) {
	if v == a.Root {
		return 0, true
	}
	return 0, false
}

// CC computes connected components as min-label propagation. The input graph
// must be symmetric (use graph.Symmetrize); the engines propagate along
// out-edges only.
type CC struct{}

// NewCC returns the Connected Components kernel.
func NewCC() *CC { return &CC{} }

func (a *CC) Name() string                { return "cc" }
func (a *CC) Class() Class                { return Selective }
func (a *CC) Identity() float64           { return math.Inf(1) }
func (a *CC) Epsilon() float64            { return 0 }
func (a *CC) Reduce(s, d float64) float64 { return math.Min(s, d) }
func (a *CC) Propagate(_ graph.VertexID, x float64, _ graph.Weight, _ int, _ float64) float64 {
	return x
}
func (a *CC) InitialEvents(g *graph.CSR) []event.Event {
	evs := make([]event.Event, g.NumVertices())
	for v := range evs {
		evs[v] = event.New(graph.VertexID(v), float64(v))
	}
	return evs
}

func (a *CC) InitialEventFor(v graph.VertexID, _ *graph.CSR) (float64, bool) {
	return float64(v), true
}

// WCC is the windowed connected-components kernel: the same min-label DAIC
// functions as CC, but with union-find-with-rebuild-on-expiry reference
// semantics — its golden solver re-derives components by union-find over
// exactly the in-window edges, so a sliding window that ages out a bridging
// edge must split the component and the differential harness catches any
// label that fails to rebuild. The engine-side functions are identical to CC
// (the DAIC fixpoint does not depend on how the oracle is computed); the
// distinct kernel exists so windowed deployments and the difftest grid can
// select the expiry-aware oracle by name.
type WCC struct{ CC }

// NewWCC returns the windowed Connected Components kernel.
func NewWCC() *WCC { return &WCC{} }

func (a *WCC) Name() string { return "wcc" }

// ---------------------------------------------------------------------------
// Accumulative algorithms
// ---------------------------------------------------------------------------

// PageRank is the incremental (delta-accumulative) PageRank of the paper:
// PR(v) = Alpha + (1-Alpha) * sum_{u->v} PR(u)/outdeg(u), the formulation
// Algorithm 3 negates deletions against.
type PageRank struct {
	Alpha float64 // teleport mass, paper's α (0.15)
	Eps   float64 // propagation threshold
}

// NewPageRank returns the incremental PageRank kernel with the conventional
// α = 0.15 and the given convergence threshold (<=0 selects 1e-8).
func NewPageRank(eps float64) *PageRank {
	if eps <= 0 {
		eps = 1e-8
	}
	return &PageRank{Alpha: 0.15, Eps: eps}
}

func (a *PageRank) Name() string                { return "pagerank" }
func (a *PageRank) Class() Class                { return Accumulative }
func (a *PageRank) Identity() float64           { return 0 }
func (a *PageRank) Epsilon() float64            { return a.Eps }
func (a *PageRank) Reduce(s, d float64) float64 { return s + d }
func (a *PageRank) Propagate(_ graph.VertexID, x float64, _ graph.Weight, outDeg int, _ float64) float64 {
	if outDeg == 0 {
		return 0
	}
	return x * (1 - a.Alpha) / float64(outDeg)
}
func (a *PageRank) InitialEvents(g *graph.CSR) []event.Event {
	evs := make([]event.Event, g.NumVertices())
	for v := range evs {
		evs[v] = event.New(graph.VertexID(v), a.Alpha)
	}
	return evs
}

func (a *PageRank) InitialEventFor(graph.VertexID, *graph.CSR) (float64, bool) {
	return a.Alpha, true
}

// Adsorption is the label-adsorption kernel: a weighted accumulative
// propagation where each vertex injects Inj and forwards a Cont fraction of
// incoming mass along out-edges proportionally to edge weight.
type Adsorption struct {
	Inj  float64 // injected mass per vertex
	Cont float64 // continuation probability
	Eps  float64
}

// NewAdsorption returns the Adsorption kernel (<=0 eps selects 1e-8).
func NewAdsorption(eps float64) *Adsorption {
	if eps <= 0 {
		eps = 1e-8
	}
	return &Adsorption{Inj: 0.15, Cont: 0.85, Eps: eps}
}

func (a *Adsorption) Name() string                { return "adsorption" }
func (a *Adsorption) Class() Class                { return Accumulative }
func (a *Adsorption) Identity() float64           { return 0 }
func (a *Adsorption) Epsilon() float64            { return a.Eps }
func (a *Adsorption) Reduce(s, d float64) float64 { return s + d }
func (a *Adsorption) Propagate(_ graph.VertexID, x float64, w graph.Weight, _ int, outWSum float64) float64 {
	if outWSum == 0 {
		return 0
	}
	return x * a.Cont * w / outWSum
}
func (a *Adsorption) InitialEvents(g *graph.CSR) []event.Event {
	evs := make([]event.Event, g.NumVertices())
	for v := range evs {
		evs[v] = event.New(graph.VertexID(v), a.Inj)
	}
	return evs
}

func (a *Adsorption) InitialEventFor(graph.VertexID, *graph.CSR) (float64, bool) {
	return a.Inj, true
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// New constructs an algorithm by short name. root seeds the single-source
// algorithms and is ignored by the others; eps is the accumulative
// convergence threshold (<=0 for default).
func New(name string, root graph.VertexID, eps float64) (Algorithm, error) {
	switch name {
	case "sssp":
		return NewSSSP(root), nil
	case "sswp":
		return NewSSWP(root), nil
	case "bfs":
		return NewBFS(root), nil
	case "cc":
		return NewCC(), nil
	case "wcc":
		return NewWCC(), nil
	case "pagerank", "pr":
		return NewPageRank(eps), nil
	case "adsorption":
		return NewAdsorption(eps), nil
	case "linsolve":
		return NewLinSolve(nil, eps), nil
	default:
		return nil, fmt.Errorf("algo: %w %q", ErrUnknown, name)
	}
}

// Params extracts the constructor arguments that rebuild a via New — the
// algorithm identity a checkpoint serializes. Kernels New cannot reconstruct
// exactly (LinSolve's coefficient matrix, caller-customized constants,
// user-defined Algorithm implementations) return an error; their sessions are
// not checkpointable.
func Params(a Algorithm) (name string, root graph.VertexID, eps float64, err error) {
	switch k := a.(type) {
	case *SSSP:
		return k.Name(), k.Root, 0, nil
	case *SSWP:
		return k.Name(), k.Root, 0, nil
	case *BFS:
		return k.Name(), k.Root, 0, nil
	case *WCC:
		return k.Name(), 0, 0, nil
	case *CC:
		return k.Name(), 0, 0, nil
	case *PageRank:
		if k.Alpha != 0.15 {
			return "", 0, 0, fmt.Errorf("algo: pagerank with non-default alpha %v is not reconstructible", k.Alpha)
		}
		return k.Name(), 0, k.Eps, nil
	case *Adsorption:
		if k.Inj != 0.15 || k.Cont != 0.85 {
			return "", 0, 0, fmt.Errorf("algo: adsorption with non-default constants is not reconstructible")
		}
		return k.Name(), 0, k.Eps, nil
	default:
		return "", 0, 0, fmt.Errorf("algo: %s is not reconstructible by name", a.Name())
	}
}

// Names lists the paper's Table 3 workloads in row order. The extension
// kernel "linsolve" is registered with New but not part of the evaluation
// grid.
func Names() []string {
	return []string{"sswp", "sssp", "bfs", "cc", "pagerank", "adsorption"}
}

// NeedsSymmetric reports whether the algorithm's semantics assume an
// undirected (symmetrized) input graph.
func NeedsSymmetric(a Algorithm) bool {
	return a.Name() == "cc" || a.Name() == "wcc"
}
