package algo

import (
	"container/heap"
	"math"

	"jetstream/internal/graph"
)

// This file holds golden reference solvers, used only by tests and the
// experiment harness to validate that the streaming engines converge to the
// same fixpoint as a from-scratch conventional computation on the mutated
// graph. None of the engines call into these.

// Reference computes the converged state of a on g from scratch with a
// conventional (non-event-driven) solver.
func Reference(a Algorithm, g *graph.CSR) []float64 {
	switch alg := a.(type) {
	case *SSSP:
		return Dijkstra(g, alg.Root)
	case *SSWP:
		return WidestPath(g, alg.Root)
	case *BFS:
		return BFSLevels(g, alg.Root)
	case *WCC:
		return UnionFindLabels(g)
	case *CC:
		return CCLabels(g)
	case *PageRank:
		return PageRankRef(g, alg.Alpha, alg.Eps/10)
	case *Adsorption:
		return AdsorptionRef(g, alg.Inj, alg.Cont, alg.Eps/10)
	case *LinSolve:
		return LinSolveRef(g, alg.bAt, alg.Eps/10)
	default:
		panic("algo: no reference solver for " + a.Name())
	}
}

type pqItem struct {
	v    graph.VertexID
	prio float64
}

// pq is a binary heap; better reports whether x should pop before y.
type pq struct {
	items  []pqItem
	better func(x, y float64) bool
}

func (p *pq) Len() int           { return len(p.items) }
func (p *pq) Less(i, j int) bool { return p.better(p.items[i].prio, p.items[j].prio) }
func (p *pq) Swap(i, j int)      { p.items[i], p.items[j] = p.items[j], p.items[i] }
func (p *pq) Push(x interface{}) { p.items = append(p.items, x.(pqItem)) }
func (p *pq) Pop() (x interface{}) {
	x = p.items[len(p.items)-1]
	p.items = p.items[:len(p.items)-1]
	return x
}

// Dijkstra returns shortest-path distances from root (+Inf if unreachable).
func Dijkstra(g *graph.CSR, root graph.VertexID) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[root] = 0
	q := &pq{better: func(x, y float64) bool { return x < y }}
	heap.Push(q, pqItem{root, 0})
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.prio > dist[it.v] {
			continue
		}
		g.OutEdges(it.v, func(dst graph.VertexID, w graph.Weight) {
			if d := it.prio + w; d < dist[dst] {
				dist[dst] = d
				heap.Push(q, pqItem{dst, d})
			}
		})
	}
	return dist
}

// WidestPath returns the maximum bottleneck width from root to each vertex
// (0 if unreachable; the root itself is +Inf).
func WidestPath(g *graph.CSR, root graph.VertexID) []float64 {
	width := make([]float64, g.NumVertices())
	width[root] = math.Inf(1)
	q := &pq{better: func(x, y float64) bool { return x > y }}
	heap.Push(q, pqItem{root, math.Inf(1)})
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.prio < width[it.v] {
			continue
		}
		g.OutEdges(it.v, func(dst graph.VertexID, w graph.Weight) {
			if b := math.Min(it.prio, w); b > width[dst] {
				width[dst] = b
				heap.Push(q, pqItem{dst, b})
			}
		})
	}
	return width
}

// BFSLevels returns hop counts from root (+Inf if unreachable).
func BFSLevels(g *graph.CSR, root graph.VertexID) []float64 {
	lvl := make([]float64, g.NumVertices())
	for i := range lvl {
		lvl[i] = math.Inf(1)
	}
	lvl[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.OutEdges(u, func(v graph.VertexID, _ graph.Weight) {
			if math.IsInf(lvl[v], 1) {
				lvl[v] = lvl[u] + 1
				queue = append(queue, v)
			}
		})
	}
	return lvl
}

// CCLabels returns the minimum reachable vertex id per vertex, treating the
// (assumed symmetric) graph as undirected.
func CCLabels(g *graph.CSR) []float64 {
	n := g.NumVertices()
	label := make([]float64, n)
	for i := range label {
		label[i] = -1
	}
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		// s is the smallest unvisited id, hence the component's label.
		label[s] = float64(s)
		stack := []graph.VertexID{graph.VertexID(s)}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.OutEdges(u, func(v graph.VertexID, _ graph.Weight) {
				if label[v] < 0 {
					label[v] = float64(s)
					stack = append(stack, v)
				}
			})
		}
	}
	return label
}

// UnionFindLabels is the rebuild-on-expiry oracle for the windowed
// connected-components kernel: components are re-derived cold by union-find
// over exactly the edges present in the graph (for a windowed system, exactly
// the in-window edges), and each vertex is labeled with the minimum vertex id
// of its component. On a symmetric graph this agrees with CCLabels; union-find
// is used here because a from-scratch rebuild per window slide is the
// semantics being pinned — a component split by an aged-out bridge must fall
// apart, which no incremental label raise can express.
func UnionFindLabels(g *graph.CSR) []float64 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for i, m := 0, g.NumEdges(); i < m; i++ {
		e := g.EdgeAt(i)
		ru, rv := find(int32(e.Src)), find(int32(e.Dst))
		if ru != rv {
			if ru < rv { // union by min id keeps the root the label-holder
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	}
	label := make([]float64, n)
	for v := 0; v < n; v++ {
		label[v] = float64(find(int32(v)))
	}
	return label
}

// PageRankRef iterates PR(v) = alpha + (1-alpha) * sum PR(u)/outdeg(u) to a
// fixpoint (max per-vertex change < tol).
func PageRankRef(g *graph.CSR, alpha, tol float64) []float64 {
	n := g.NumVertices()
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = alpha
	}
	for iter := 0; iter < 10000; iter++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			g.InEdges(graph.VertexID(v), func(u graph.VertexID, _ graph.Weight) {
				sum += pr[u] / float64(g.OutDegree(u))
			})
			next[v] = alpha + (1-alpha)*sum
		}
		delta := 0.0
		for v := range pr {
			delta = math.Max(delta, math.Abs(next[v]-pr[v]))
		}
		pr, next = next, pr
		if delta < tol {
			break
		}
	}
	return pr
}

// AdsorptionRef iterates a(v) = inj + cont * sum w(u,v)/outWSum(u) * a(u).
func AdsorptionRef(g *graph.CSR, inj, cont, tol float64) []float64 {
	n := g.NumVertices()
	a := make([]float64, n)
	next := make([]float64, n)
	for i := range a {
		a[i] = inj
	}
	for iter := 0; iter < 10000; iter++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			g.InEdges(graph.VertexID(v), func(u graph.VertexID, w graph.Weight) {
				sum += a[u] * w / g.OutWeightSum(u)
			})
			next[v] = inj + cont*sum
		}
		delta := 0.0
		for v := range a {
			delta = math.Max(delta, math.Abs(next[v]-a[v]))
		}
		a, next = next, a
		if delta < tol {
			break
		}
	}
	return a
}

// MaxAbsDiff returns the largest |a[i]-b[i]|, treating equal infinities as
// zero difference. Tests use it to compare engine output with references.
func MaxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if math.IsInf(a[i], 0) || math.IsInf(b[i], 0) {
			if a[i] != b[i] {
				return math.Inf(1)
			}
			continue
		}
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
