package algo

import (
	"math"

	"jetstream/internal/event"
	"jetstream/internal/graph"
)

// LinSolve is the linear-equation-solver workload class §3.1 lists among the
// algorithms the event-driven model supports ("many Linear Equation
// Solvers"). It solves x = b + Wx by Jacobi-style delta accumulation: the
// graph is the iteration matrix — an edge u→v with weight w contributes
// w·x(u) to x(v) — and each vertex injects its constant term b(v) as its
// initial event. Convergence requires the usual contraction condition (the
// absolute weights into any vertex summing below 1); RowNormalize arranges
// it for arbitrary graphs.
//
// Because its Propagate is degree-independent, streaming coefficient updates
// are especially cheap: the accumulative deletion recovery nets out every
// unchanged edge exactly.
type LinSolve struct {
	// B is the constant term per vertex.
	B   []float64
	Eps float64
}

// NewLinSolve returns the kernel for x = b + Wx. A nil b selects the all-ones
// vector; eps <= 0 selects 1e-10.
func NewLinSolve(b []float64, eps float64) *LinSolve {
	if eps <= 0 {
		eps = 1e-10
	}
	return &LinSolve{B: b, Eps: eps}
}

func (a *LinSolve) Name() string                { return "linsolve" }
func (a *LinSolve) Class() Class                { return Accumulative }
func (a *LinSolve) Identity() float64           { return 0 }
func (a *LinSolve) Epsilon() float64            { return a.Eps }
func (a *LinSolve) Reduce(s, d float64) float64 { return s + d }
func (a *LinSolve) Propagate(_ graph.VertexID, x float64, w graph.Weight, _ int, _ float64) float64 {
	return x * w
}

func (a *LinSolve) bAt(v graph.VertexID) float64 {
	if a.B == nil {
		return 1
	}
	if int(v) >= len(a.B) {
		return 0
	}
	return a.B[v]
}

func (a *LinSolve) InitialEvents(g *graph.CSR) []event.Event {
	evs := make([]event.Event, 0, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		if b := a.bAt(graph.VertexID(v)); b != 0 {
			evs = append(evs, event.New(graph.VertexID(v), b))
		}
	}
	return evs
}

func (a *LinSolve) InitialEventFor(v graph.VertexID, _ *graph.CSR) (float64, bool) {
	b := a.bAt(v)
	return b, b != 0
}

// RowNormalize rescales a graph's edge weights so that the absolute weights
// into every vertex sum to at most norm (e.g. 0.8), alternating signs by
// edge parity — turning any weighted graph into a contraction suitable for
// LinSolve. It returns a new CSR.
func RowNormalize(g *graph.CSR, norm float64) *graph.CSR {
	inSum := make([]float64, g.NumVertices())
	for _, e := range g.Edges() {
		inSum[e.Dst] += math.Abs(e.Weight)
	}
	es := g.Edges()
	for i := range es {
		if inSum[es[i].Dst] == 0 {
			continue
		}
		w := es[i].Weight / inSum[es[i].Dst] * norm
		if i%2 == 1 {
			w = -w
		}
		es[i].Weight = w
	}
	return graph.MustBuild(g.NumVertices(), es)
}

// LinSolveRef iterates x = b + Wx to a fixpoint from scratch.
func LinSolveRef(g *graph.CSR, b func(graph.VertexID) float64, tol float64) []float64 {
	n := g.NumVertices()
	x := make([]float64, n)
	next := make([]float64, n)
	for v := 0; v < n; v++ {
		x[v] = b(graph.VertexID(v))
	}
	for iter := 0; iter < 100000; iter++ {
		for v := 0; v < n; v++ {
			sum := b(graph.VertexID(v))
			g.InEdges(graph.VertexID(v), func(u graph.VertexID, w graph.Weight) {
				sum += x[u] * w
			})
			next[v] = sum
		}
		delta := 0.0
		for v := range x {
			delta = math.Max(delta, math.Abs(next[v]-x[v]))
		}
		x, next = next, x
		if delta < tol {
			break
		}
	}
	return x
}
