// Package core implements JetStream — the paper's primary contribution: a
// streaming extension of the GraphPulse event-driven accelerator that
// incrementally re-evaluates a query after a batch of edge insertions and
// deletions instead of recomputing from scratch.
//
// The flow follows the paper exactly:
//
//   - Edge insertions become ordinary events carrying the contribution the
//     edge would have delivered (Algorithm 2, §3.3).
//   - For selective (monotonic) algorithms, deletions trigger a recovery
//     phase that tags and resets every potentially impacted vertex
//     (Algorithm 4), followed by reapproximation request events along the
//     impacted vertices' in-edges, then a regular compute phase on the new
//     graph (Algorithm 5). The Value-Aware (§5.1) and Dependency-Aware
//     (§5.2) optimizations prune the tagged set.
//   - For accumulative algorithms, deletions are negated by events of
//     negative polarity; vertices with mutated out-edges are turned into
//     sinks of an intermediate graph while their old contributions are
//     rolled back, then all their edges are re-inserted (Algorithm 6,
//     Fig 5).
package core

import (
	"fmt"
	"math"

	"jetstream/internal/algo"
	"jetstream/internal/engine"
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/obs"
	"jetstream/internal/stats"
)

// OptLevel selects the delete-propagation pruning strategy for selective
// algorithms (paper §5). Accumulative algorithms ignore it.
type OptLevel int

const (
	// OptBase tags every reachable non-Identity vertex (Algorithm 4 as
	// written) — correct but, as §6.2 notes, it "tags too many vertices,
	// often leading to work comparable to full recomputation".
	OptBase OptLevel = iota
	// OptVAP discards a delete whose carried contribution does not dominate
	// the receiver's state (Value-Aware Propagation, §5.1).
	OptVAP
	// OptDAP resets a vertex only when the delete arrives from the vertex
	// it actually depends on (Dependency-Aware Propagation, §5.2);
	// coalescing is disabled during recovery so distinct sources survive.
	OptDAP
)

func (o OptLevel) String() string {
	switch o {
	case OptBase:
		return "base"
	case OptVAP:
		return "vap"
	case OptDAP:
		return "dap"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(o))
	}
}

// Config configures a JetStream instance.
type Config struct {
	Engine engine.Config
	Opt    OptLevel
	// Slices partitions the vertex space when > 1 (for graphs exceeding the
	// queue capacity, §4.7).
	Slices int

	// Ablation switches (off in the real design; the harness measures their
	// cost to quantify the design choices).

	// NoCoalesce disables event coalescing everywhere, removing the queue's
	// central optimization.
	NoCoalesce bool
	// TwoPhaseAccumulate uses the paper-literal Algorithm 6 for accumulative
	// deletion recovery: full-magnitude negation events for every out-edge
	// of a dirty vertex, a converging rollback phase, then full-magnitude
	// re-insertion events — instead of fusing the negate/re-add pairs into
	// net events at the Stream Reader.
	TwoPhaseAccumulate bool
	// RebuildGraph applies each batch by rebuilding the whole CSR (the
	// paper's "write a new CSR and swap the pointer" host model) instead of
	// the incremental slack-based mutation. The event flow is identical
	// either way; the switch exists to measure the host-side cost difference
	// and as the reference side of the differential tests.
	RebuildGraph bool
	// InlineDegree tunes the degree-adaptive adjacency threshold of the
	// incremental host path: 0 takes the library default (4), -1 disables the
	// inline layout (uniform slab), 1..4 set the cap explicitly. The logical
	// graph and the event flow are identical at every setting — the knob only
	// moves low-degree adjacencies between the slab and per-vertex cache-line
	// records. Ignored under RebuildGraph (dense CSRs have no slack layout).
	InlineDegree int
}

// DefaultConfig returns the paper's configuration with the DAP optimization,
// which Fig 12 shows is the strongest across all four selective workloads.
func DefaultConfig() Config {
	cfg := Config{Engine: engine.DefaultConfig(), Opt: OptDAP}
	cfg.Engine.EventMode = event.ModeJetStreamDAP
	cfg.Engine.VertexBytes = 12 // 8B state + 4B dependency field
	return cfg
}

// ConfigWithOpt returns DefaultConfig adjusted for the given optimization
// level (smaller events and vertex records below DAP).
func ConfigWithOpt(opt OptLevel) Config {
	cfg := DefaultConfig()
	cfg.Opt = opt
	if opt != OptDAP {
		cfg.Engine.EventMode = event.ModeJetStream
		cfg.Engine.VertexBytes = 8
	}
	return cfg
}

// JetStream evaluates one standing query over a streaming graph.
type JetStream struct {
	cfg Config
	eng *engine.Engine
	alg algo.Algorithm
	g   *graph.CSR
	st  *stats.Counters

	// impact is the Impact Buffer (§4.5): ids of vertices reset during the
	// current recovery phase, revisited to issue request events.
	impact []graph.VertexID

	// cycleBase offsets the engine's cycle counter; a restored checkpoint
	// sets it to the cycles accumulated before the process died so cumulative
	// totals continue across restarts.
	cycleBase uint64

	// tr receives scheduler-level trace events (watchdog checks, fallback
	// triggers); obs.Nop until Instrument attaches a real tracer.
	tr    obs.Tracer
	trSeq uint64
}

// New builds a JetStream instance for query alg over initial graph g. st may
// be nil. Call RunInitial before the first ApplyBatch.
func New(g *graph.CSR, alg algo.Algorithm, cfg Config, st *stats.Counters) *JetStream {
	if st == nil {
		st = &stats.Counters{}
	}
	if alg.Class() == algo.Accumulative && cfg.Engine.EventMode == event.ModeJetStreamDAP {
		// Accumulative algorithms never use dependency tracking (§3.5), so
		// they keep the smaller JetStream event and vertex footprint even
		// when the caller asked for the DAP configuration.
		cfg.Engine.EventMode = event.ModeJetStream
		cfg.Engine.VertexBytes = 8
	}
	var opts []engine.Option
	if cfg.Opt == OptDAP && alg.Class() == algo.Selective {
		opts = append(opts, engine.WithDependencyTracking())
	}
	if cfg.Slices > 1 {
		opts = append(opts, engine.WithPartition(cfg.Slices))
	}
	j := &JetStream{
		cfg: cfg,
		eng: engine.New(g, alg, cfg.Engine, st, opts...),
		alg: alg,
		g:   g,
		st:  st,
	}
	if cfg.NoCoalesce {
		j.eng.Queue().SetCoalescing(false)
	}
	j.tr = obs.Nop
	return j
}

// Instrument attaches observability: metrics series register on reg and
// trace events flow to tr (nil for metrics only). Attach before RunInitial
// so the per-worker attribution baseline covers the whole run.
func (j *JetStream) Instrument(reg *obs.Registry, tr obs.Tracer) {
	if tr == nil {
		tr = obs.Nop
	}
	j.tr = tr
	j.eng.SetObs(engine.NewObs(reg, tr))
}

// FlushObs publishes pending per-worker metric attributions (see
// engine.FlushObs). The scheduler calls it at operation boundaries; exposed
// for hosts that drive the engine directly.
func (j *JetStream) FlushObs() { j.eng.FlushObs() }

func (j *JetStream) trace(e obs.TraceEvent) {
	j.trSeq++
	e.Seq = j.trSeq
	e.Worker = -1
	j.tr.Trace(e)
}

// setCoalescing toggles queue coalescing, respecting the NoCoalesce
// ablation (which pins it off).
func (j *JetStream) setCoalescing(on bool) {
	if j.cfg.NoCoalesce {
		on = false
	}
	j.eng.Queue().SetCoalescing(on)
}

// Graph returns the current graph version.
func (j *JetStream) Graph() *graph.CSR { return j.g }

// State returns the live vertex states.
func (j *JetStream) State() []float64 { return j.eng.State() }

// Stats returns the counter sink.
func (j *JetStream) Stats() *stats.Counters { return j.st }

// Cycles returns the accumulated accelerator cycles (including any base
// carried over from a restored checkpoint).
func (j *JetStream) Cycles() uint64 { return j.cycleBase + j.eng.Cycles() }

// SetCycleBase sets the cycle offset carried over from a checkpoint.
func (j *JetStream) SetCycleBase(c uint64) { j.cycleBase = c }

// Engine exposes the underlying engine (used by the experiment harness).
func (j *JetStream) Engine() *engine.Engine { return j.eng }

// RunInitial performs the initial static evaluation (identical to
// GraphPulse, §4.6.1).
func (j *JetStream) RunInitial() {
	j.eng.RunToConvergence()
	j.eng.FlushObs()
}

// ApplyBatch incrementally updates the query results for graph version
// G+Δ. On return the instance holds the new graph version and the converged
// states for it.
func (j *JetStream) ApplyBatch(b graph.Batch) error {
	var ng *graph.CSR
	var err error
	if j.cfg.RebuildGraph {
		ng, err = j.g.Apply(b)
	} else {
		ng, err = j.g.ApplyDeltaCfg(b, j.deltaConfig())
	}
	if err != nil {
		return err
	}
	if j.alg.Class() == algo.Accumulative {
		if j.cfg.TwoPhaseAccumulate {
			j.applyAccumulativeTwoPhase(b, ng)
		} else {
			j.applyAccumulative(b, ng)
		}
	} else {
		j.applySelective(b, ng)
	}
	j.g = ng
	j.eng.FlushObs()
	return nil
}

// deltaConfig resolves the slack tuning for the incremental host path,
// applying the InlineDegree override. The same resolved config is passed on
// every batch so the layout choice is stable across versions (the graph
// layer re-slackifies with it at each compacting rebuild).
func (j *JetStream) deltaConfig() graph.DeltaConfig {
	cfg := graph.DefaultDeltaConfig()
	switch {
	case j.cfg.InlineDegree < 0:
		cfg.InlineCap = 0
	case j.cfg.InlineDegree > 0:
		cfg.InlineCap = j.cfg.InlineDegree
	}
	return cfg
}

// ---------------------------------------------------------------------------
// Selective algorithms: Algorithm 5
// ---------------------------------------------------------------------------

func (j *JetStream) applySelective(b graph.Batch, ng *graph.CSR) {
	j.impact = j.impact[:0]

	// Phase 1 — ProcessDeletesSelective: the Stream Reader converts each
	// deleted edge into a delete event for its destination (§4.6.2 "Delete
	// Setup": the source state is read but not updated; the generation unit
	// computes the propagated value used by VAP).
	j.eng.ChargeStreamRead(len(b.Deletes))
	if j.cfg.Opt == OptDAP {
		j.setCoalescing(false)
	}
	var touched []graph.VertexID
	for _, de := range b.Deletes {
		val := j.alg.Identity()
		if j.cfg.Opt == OptVAP {
			// The contribution the deleted edge used to deliver, computed
			// from the source's previous converged state.
			j.st.VertexReads++
			touched = append(touched, de.Src)
			val = j.alg.Propagate(de.Src, j.eng.PeekVertex(de.Src), de.Weight,
				j.g.OutDegree(de.Src), j.g.OutWeightSum(de.Src))
		}
		j.eng.Emit(event.Event{
			Target: de.Dst,
			Value:  val,
			Source: de.Src,
			Flags:  event.FlagDelete,
		})
	}
	j.eng.ChargeSetup(touched, nil)

	// Phase 2 — ResetImpacted: propagate the delete tags on the previous
	// graph version until no delete events remain.
	j.eng.RunPhase(j.deleteHandler())
	if j.cfg.Opt == OptDAP {
		j.setCoalescing(true)
	}

	// Phase 3 — Reapproximate: revisit the Impact Buffer and send request
	// events along each impacted vertex's incoming edges so neighbors
	// re-propagate their states (§3.4). In-edges of the new version: every
	// surviving in-neighbor is asked; inserted in-edges are covered by the
	// insertion events below.
	j.eng.ChargeSpill(2 * len(j.impact)) // Impact Buffer round trip (§4.5)
	var fetches []engine.EdgeFetch
	requests := 0
	inRegion := uint64(ng.EdgeSlots()) // in-CSR lives after the out-CSR (incl. slack)
	for _, v := range j.impact {
		// Re-seed the vertex's initial-event contribution: the converged
		// state is the fixpoint over edge contributions AND initial events,
		// and a reset erased the latter (e.g. CC's self-label, or the query
		// root under the Base policy). Requests can only restore the former.
		if val, ok := j.alg.InitialEventFor(v, ng); ok {
			j.eng.Emit(event.Event{Target: v, Value: val, Source: event.NoSource})
		}
		deg := ng.InDegree(v)
		if deg == 0 {
			continue
		}
		j.st.EdgeReads += uint64(deg)
		fetches = append(fetches, engine.EdgeFetch{Offset: inRegion + ng.InEdgeOffset(v), Count: deg})
		ng.InEdges(v, func(src graph.VertexID, _ graph.Weight) {
			j.st.RequestsIssued++
			requests++
			j.eng.Emit(event.Event{
				Target: src,
				Value:  j.alg.Identity(),
				Source: event.NoSource,
				Flags:  event.FlagRequest,
			})
		})
	}
	j.eng.ChargeSetup(nil, fetches)

	// Phase 4 — ProcessInsertions (Algorithm 2): one event per inserted
	// edge, carrying the contribution computed from the source's previous
	// state. These coalesce with pending request events by OR-ing the flag
	// bit (§3.5).
	j.processInsertions(b.Inserts, ng)

	// Phase 5 — switch to the new graph structure and run the regular
	// computation flow to convergence.
	j.eng.SetGraph(ng, nil)
	j.eng.RunCompute()
}

// deleteHandler implements the Apply/Propagate logic of the recovery phase
// (Algorithm 4 with the §5 pruning extensions).
func (j *JetStream) deleteHandler() engine.Handler {
	identity := j.alg.Identity()
	return func(ev event.Event) {
		v := ev.Target
		cur := j.eng.ReadVertex(v)
		if cur == identity {
			// Already tagged (or never reached): do not propagate again.
			j.st.DeletesDiscarded++
			return
		}
		switch j.cfg.Opt {
		case OptVAP:
			// The deleted contribution cannot have set v's state unless it
			// dominates it (§5.1).
			if !algo.Dominates(j.alg, ev.Value, cur) {
				j.st.DeletesDiscarded++
				return
			}
		case OptDAP:
			// Only the recorded dependency source may reset v (§5.2).
			if j.eng.Dep()[v] != ev.Source {
				j.st.DeletesDiscarded++
				return
			}
		}
		// Reset logic (§4.4): tag the vertex, record it in the Impact
		// Buffer, and propagate the delete along its out-edges using the
		// pre-reset state.
		j.eng.WriteVertex(v, identity)
		j.eng.SetDep(v, event.NoSource)
		j.st.VerticesReset++
		j.impact = append(j.impact, v)

		deg := j.eng.View().OutDegree(v)
		wsum := j.eng.View().OutWeightSum(v)
		j.eng.EmitAlongEdges(v, func(dst graph.VertexID, w graph.Weight) (event.Event, bool) {
			out := event.Event{Target: dst, Value: identity, Source: v, Flags: event.FlagDelete}
			if j.cfg.Opt == OptVAP {
				out.Value = j.alg.Propagate(v, cur, w, deg, wsum)
			}
			return out, true
		})
	}
}

// processInsertions queues one event per inserted edge (Algorithm 2). The
// contribution uses the source's current approximate state and the *new*
// graph's degree context (only degree-dependent algorithms care, and they
// take the accumulative path instead).
func (j *JetStream) processInsertions(inserts []graph.Edge, ng *graph.CSR) {
	j.eng.ChargeStreamRead(len(inserts))
	var touched []graph.VertexID
	emitted := 0
	for _, e := range inserts {
		j.st.VertexReads++
		touched = append(touched, e.Src)
		val := j.alg.Propagate(e.Src, j.eng.PeekVertex(e.Src), e.Weight,
			ng.OutDegree(e.Src), ng.OutWeightSum(e.Src))
		j.eng.Emit(event.Event{Target: e.Dst, Value: val, Source: e.Src})
		emitted++
	}
	j.eng.ChargeSetup(touched, nil)
}

// ---------------------------------------------------------------------------
// Accumulative algorithms: Algorithm 6 and Fig 5
// ---------------------------------------------------------------------------

func (j *JetStream) applyAccumulative(b graph.Batch, ng *graph.CSR) {
	// Any vertex whose out-adjacency changes sees the weight (1/deg) of all
	// its out-edges change, so the whole adjacency is deleted and re-added
	// (Fig 5): collect the dirty sources.
	dirty := map[graph.VertexID]bool{}
	for _, e := range b.Deletes {
		dirty[e.Src] = true
	}
	for _, e := range b.Inserts {
		dirty[e.Src] = true
	}

	// Deterministic iteration order over the dirty set.
	order := make([]graph.VertexID, 0, len(dirty))
	for v := range dirty {
		order = append(order, v)
	}
	sortVertexIDs(order)

	// Phase 1 — ProcessDeleteCumulative (Algorithm 3) fused with the
	// re-insertions of Fig 5(c): each dirty vertex's previous contribution
	// (state*Propagate against the old degree) is negated and its new
	// contribution (same state, new degree) added. Because contributions
	// are additive and order-free (the Reordering Property), the negate and
	// re-add events for each destination coalesce at creation into one net
	// event — for the kept edges of a dirty vertex that net delta is the
	// tiny 1/olddeg-vs-1/newdeg difference, so the rollback ripple stays
	// proportional to the actual structural change rather than to the full
	// adjacency. This is the event-coalescing advantage §1 highlights over
	// software frameworks, applied at the Stream Reader.
	var touched []graph.VertexID
	var fetches []engine.EdgeFetch
	scanned, emitted := 0, 0
	net := map[graph.VertexID]float64{}
	baseState := make([]float64, 0, len(order))
	for _, u := range order {
		j.st.VertexReads++
		touched = append(touched, u)
		state := j.eng.PeekVertex(u)
		baseState = append(baseState, state)
		oldDeg, oldWsum := j.g.OutDegree(u), j.g.OutWeightSum(u)
		newDeg, newWsum := ng.OutDegree(u), ng.OutWeightSum(u)
		for k := range net {
			delete(net, k)
		}
		if oldDeg > 0 {
			scanned += oldDeg
			fetches = append(fetches, engine.EdgeFetch{Offset: j.g.EdgeOffset(u), Count: oldDeg})
			j.st.EdgeReads += uint64(oldDeg)
			j.g.OutEdges(u, func(dst graph.VertexID, w graph.Weight) {
				net[dst] -= j.alg.Propagate(u, state, w, oldDeg, oldWsum)
			})
		}
		if newDeg > 0 {
			scanned += newDeg
			fetches = append(fetches, engine.EdgeFetch{Offset: ng.EdgeOffset(u), Count: newDeg})
			j.st.EdgeReads += uint64(newDeg)
			ng.OutEdges(u, func(dst graph.VertexID, w graph.Weight) {
				net[dst] += j.alg.Propagate(u, state, w, newDeg, newWsum)
			})
		}
		// Emit net events in the new-adjacency order for determinism.
		emitNet := func(dst graph.VertexID) {
			if val, ok := net[dst]; ok {
				delete(net, dst)
				if val != 0 {
					emitted++
					j.eng.Emit(event.New(dst, val))
				}
			}
		}
		ng.OutEdges(u, func(dst graph.VertexID, _ graph.Weight) { emitNet(dst) })
		j.g.OutEdges(u, func(dst graph.VertexID, _ graph.Weight) { emitNet(dst) })
	}
	j.eng.ChargeStreamRead(scanned)
	j.eng.ChargeSetup(touched, fetches)

	// Phase 2 — compute on the intermediate graph: the new structure with
	// every dirty vertex turned into a sink, which breaks cyclic paths
	// through them while the corrections ripple. (Non-dirty vertices have
	// identical adjacency in both versions, so masking the new CSR is the
	// paper's pointer-adjusted intermediate graph.)
	view := graph.NewView(ng)
	for _, u := range order {
		view.Mask(u)
	}
	j.eng.SetGraph(ng, view)
	j.eng.RunCompute()

	// Phase 3 — while masked, each dirty vertex accumulated deltas it did
	// not forward; forward them now against the new adjacency, exactly as
	// if the events had arrived after the unmask.
	touched = touched[:0]
	fetches = fetches[:0]
	emitted = 0
	for i, u := range order {
		j.st.VertexReads++
		touched = append(touched, u)
		delta := j.eng.PeekVertex(u) - baseState[i]
		if delta == 0 {
			continue
		}
		deg, wsum := ng.OutDegree(u), ng.OutWeightSum(u)
		if deg == 0 {
			continue
		}
		fetches = append(fetches, engine.EdgeFetch{Offset: ng.EdgeOffset(u), Count: deg})
		j.st.EdgeReads += uint64(deg)
		ng.OutEdges(u, func(dst graph.VertexID, w graph.Weight) {
			val := j.alg.Propagate(u, delta, w, deg, wsum)
			if math.Abs(val) <= j.alg.Epsilon() {
				return
			}
			emitted++
			j.eng.Emit(event.New(dst, val))
		})
	}
	j.eng.ChargeSetup(touched, fetches)

	// Phase 4 — switch to the (unmasked) new graph and recompute.
	j.eng.SetGraph(ng, nil)
	j.eng.RunCompute()
}

// applyAccumulativeTwoPhase is the paper-literal Algorithm 6 (kept as an
// ablation): negate every out-edge contribution of each dirty vertex
// (Algorithm 3 extended per Fig 5), converge the rollback on the
// intermediate graph, then re-insert all of the dirty vertices' edges and
// converge again. The production path (applyAccumulative) instead fuses each
// negate/re-add pair into one net event, which keeps the ripple proportional
// to the structural change; the experiment harness measures the difference.
func (j *JetStream) applyAccumulativeTwoPhase(b graph.Batch, ng *graph.CSR) {
	dirty := map[graph.VertexID]bool{}
	for _, e := range b.Deletes {
		dirty[e.Src] = true
	}
	for _, e := range b.Inserts {
		dirty[e.Src] = true
	}
	order := make([]graph.VertexID, 0, len(dirty))
	for v := range dirty {
		order = append(order, v)
	}
	sortVertexIDs(order)

	// Phase 1 — negation events against the old degrees.
	var touched []graph.VertexID
	var fetches []engine.EdgeFetch
	scanned, emitted := 0, 0
	for _, u := range order {
		j.st.VertexReads++
		touched = append(touched, u)
		state := j.eng.PeekVertex(u)
		deg, wsum := j.g.OutDegree(u), j.g.OutWeightSum(u)
		if deg == 0 {
			continue
		}
		scanned += deg
		fetches = append(fetches, engine.EdgeFetch{Offset: j.g.EdgeOffset(u), Count: deg})
		j.st.EdgeReads += uint64(deg)
		j.g.OutEdges(u, func(dst graph.VertexID, w graph.Weight) {
			if val := -j.alg.Propagate(u, state, w, deg, wsum); val != 0 {
				emitted++
				j.eng.Emit(event.New(dst, val))
			}
		})
	}
	j.eng.ChargeStreamRead(scanned)
	j.eng.ChargeSetup(touched, fetches)

	// Phase 2 — rollback on the intermediate graph (dirty vertices are
	// sinks; the old structure is used since only dirty rows differ).
	view := graph.NewView(j.g)
	for _, u := range order {
		view.Mask(u)
	}
	j.eng.SetGraph(j.g, view)
	j.eng.RunCompute()

	// Phase 3 — re-insert every dirty vertex's new adjacency from the
	// rolled-back state.
	touched = touched[:0]
	fetches = fetches[:0]
	scanned, emitted = 0, 0
	for _, u := range order {
		j.st.VertexReads++
		touched = append(touched, u)
		state := j.eng.PeekVertex(u)
		deg, wsum := ng.OutDegree(u), ng.OutWeightSum(u)
		if deg == 0 {
			continue
		}
		scanned += deg
		fetches = append(fetches, engine.EdgeFetch{Offset: ng.EdgeOffset(u), Count: deg})
		j.st.EdgeReads += uint64(deg)
		ng.OutEdges(u, func(dst graph.VertexID, w graph.Weight) {
			if val := j.alg.Propagate(u, state, w, deg, wsum); val != 0 {
				emitted++
				j.eng.Emit(event.New(dst, val))
			}
		})
	}
	j.eng.ChargeStreamRead(scanned)
	j.eng.ChargeSetup(touched, fetches)

	// Phase 4 — converge on the new graph.
	j.eng.SetGraph(ng, nil)
	j.eng.RunCompute()
}

func sortVertexIDs(v []graph.VertexID) {
	// Insertion sort is fine: dirty sets are batch-sized.
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k-1] > v[k]; k-- {
			v[k-1], v[k] = v[k], v[k-1]
		}
	}
}

// Repartition refreshes the slice assignment against the current graph
// version (§4.7); call it between batches after the graph has drifted. It is
// a no-op without slicing. Returns the new edge cut (or -1).
func (j *JetStream) Repartition() int { return j.eng.Repartition() }

// Verify recomputes the query from scratch on the current graph and returns
// the maximum deviation from the streaming state — a runtime self-check used
// by tests and the CLI's -verify flag.
func (j *JetStream) Verify() float64 {
	ref := algo.Reference(j.alg, j.g)
	return algo.MaxAbsDiff(j.State(), ref)
}

// VerifySample is Verify restricted to a deterministic stride sample of
// roughly sample vertices (sample <= 0 compares all). The reference solve
// still covers the whole graph — sampling bounds only the state read-back and
// comparison, the part that would otherwise stall the accelerator pipeline.
func (j *JetStream) VerifySample(sample int) float64 {
	ref := algo.Reference(j.alg, j.g)
	st := j.State()
	if sample <= 0 || sample >= len(st) {
		return algo.MaxAbsDiff(st, ref)
	}
	stride := len(st) / sample
	if stride < 1 {
		stride = 1
	}
	max := 0.0
	for i := 0; i < len(st); i += stride {
		if math.IsInf(st[i], 0) || math.IsInf(ref[i], 0) {
			if st[i] != ref[i] {
				return math.Inf(1)
			}
			continue
		}
		if d := math.Abs(st[i] - ref[i]); d > max {
			max = d
		}
	}
	return max
}

// ColdStart abandons the incremental approximation and recomputes the query
// from scratch on the current graph version — the GraphPulse cold-start
// baseline (§4.6.1) used here as the recovery of last resort when the
// incremental state is no longer trustworthy. The fallback is counted in the
// stats sink; afterwards the stream resumes incrementally as usual.
func (j *JetStream) ColdStart() {
	j.st.ColdStartFallbacks++
	j.trace(obs.TraceEvent{Kind: obs.KindFallback, A: j.st.ColdStartFallbacks})
	j.eng.SetGraph(j.g, nil)
	j.eng.RunToConvergence()
	j.eng.FlushObs()
}

// WatchdogConfig parameterizes the divergence watchdog: every Every batches
// the streaming state is checked against a from-scratch solve, and a
// deviation beyond Epsilon triggers a ColdStart fallback.
type WatchdogConfig struct {
	// Every is the check period in batches; <= 0 disables the watchdog.
	Every int
	// Epsilon is the maximum tolerated deviation. Selective (monotonic)
	// kernels converge exactly, so 0 is sound for them; accumulative kernels
	// accumulate suppressed sub-epsilon deltas (see Tolerance).
	Epsilon float64
	// Sample bounds how many vertices each check compares (0 = all).
	Sample int
}

// Enabled reports whether the watchdog performs any checks.
func (cfg WatchdogConfig) Enabled() bool { return cfg.Every > 0 }

// WatchdogCheck runs the divergence watchdog after batch number batchIndex
// (1-based). When the period elapses it verifies the sampled state and, on
// divergence beyond Epsilon, falls back to a cold-start recompute — after
// which the incremental stream resumes as if the state had never been
// poisoned. It is stateless so a restored checkpoint continues the same check
// cadence from the stored batch count.
func (j *JetStream) WatchdogCheck(cfg WatchdogConfig, batchIndex uint64) (checked bool, div float64, fellBack bool) {
	if !cfg.Enabled() || batchIndex%uint64(cfg.Every) != 0 {
		return false, 0, false
	}
	div = j.VerifySample(cfg.Sample)
	j.trace(obs.TraceEvent{Kind: obs.KindWatchdog, A: batchIndex, B: 1, F: div})
	if div > cfg.Epsilon || math.IsNaN(div) {
		j.ColdStart()
		fellBack = true
	}
	return true, div, fellBack
}

// Tolerance returns an acceptable Verify bound: exact for selective kernels;
// for accumulative kernels the suppressed sub-epsilon deltas accumulate with
// the graph's edge count and the propagation gain 1/(1-damping) over the
// batches applied so far.
func Tolerance(a algo.Algorithm, edges, batches int) float64 {
	if a.Class() == algo.Selective {
		return 0
	}
	if batches < 1 {
		batches = 1
	}
	return a.Epsilon() * 10 * float64(edges) * float64(batches)
}
