package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
	"jetstream/internal/stats"
	"jetstream/internal/stream"
)

func cfgOpt(opt OptLevel, timing bool) Config {
	c := ConfigWithOpt(opt)
	c.Engine.Timing = timing
	return c
}

// fig2Graph is the paper's Fig 2 example: A=0..E=4.
func fig2Graph() *graph.CSR {
	return graph.MustBuild(5, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 7}, {Src: 0, Dst: 2, Weight: 3},
		{Src: 1, Dst: 3, Weight: 5},
		{Src: 2, Dst: 3, Weight: 8}, {Src: 2, Dst: 4, Weight: 2},
		{Src: 3, Dst: 4, Weight: 6},
		{Src: 4, Dst: 1, Weight: 7},
	})
}

// TestFig2MotivatingExample reproduces §2.2: deleting A->C after an SSSP
// evaluation must converge to the correct new distances, the case where
// reusing the stale state naively never recovers.
func TestFig2MotivatingExample(t *testing.T) {
	for _, opt := range []OptLevel{OptBase, OptVAP, OptDAP} {
		t.Run(opt.String(), func(t *testing.T) {
			js := New(fig2Graph(), algo.NewSSSP(0), cfgOpt(opt, false), nil)
			js.RunInitial()
			if err := js.ApplyBatch(graph.Batch{Deletes: []graph.Edge{{Src: 0, Dst: 2, Weight: 3}}}); err != nil {
				t.Fatal(err)
			}
			want := []float64{0, 7, math.Inf(1), 12, 18}
			for i, w := range want {
				if js.State()[i] != w {
					t.Errorf("state[%d]=%v, want %v", i, js.State()[i], w)
				}
			}
			if d := js.Verify(); d != 0 {
				t.Errorf("Verify = %v", d)
			}
		})
	}
}

// fig4Graph is the paper's Fig 4 example: A=0 B=1 C=2 D=3 E=4 F=5 G=6.
func fig4Graph() *graph.CSR {
	return graph.MustBuild(7, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 8}, {Src: 0, Dst: 2, Weight: 9},
		{Src: 1, Dst: 3, Weight: 4}, {Src: 1, Dst: 4, Weight: 8},
		{Src: 2, Dst: 4, Weight: 5}, {Src: 2, Dst: 5, Weight: 8},
		{Src: 3, Dst: 6, Weight: 7},
		{Src: 4, Dst: 5, Weight: 3}, {Src: 4, Dst: 6, Weight: 5},
		{Src: 6, Dst: 4, Weight: 3},
	})
}

func TestFig4InsertAndDelete(t *testing.T) {
	// Insert A->D (weight 8) then delete A->C, mirroring Fig 4(b)-(d).
	js := New(fig4Graph(), algo.NewSSSP(0), cfgOpt(OptDAP, false), nil)
	js.RunInitial()
	if err := js.ApplyBatch(graph.Batch{Inserts: []graph.Edge{{Src: 0, Dst: 3, Weight: 8}}}); err != nil {
		t.Fatal(err)
	}
	if d := js.Verify(); d != 0 {
		t.Fatalf("after insertion: Verify = %v", d)
	}
	if err := js.ApplyBatch(graph.Batch{Deletes: []graph.Edge{{Src: 0, Dst: 2, Weight: 9}}}); err != nil {
		t.Fatal(err)
	}
	if d := js.Verify(); d != 0 {
		t.Fatalf("after deletion: Verify = %v", d)
	}
	// Fig 8(c): E is reached via B and F via E after the deletion.
	want := algo.Dijkstra(js.Graph(), 0)
	if js.State()[4] != want[4] || js.State()[5] != want[5] {
		t.Errorf("E,F = %v,%v want %v,%v", js.State()[4], js.State()[5], want[4], want[5])
	}
}

func TestStreamingSelectiveAllOptsMatchReference(t *testing.T) {
	for _, name := range []string{"sssp", "sswp", "bfs", "cc"} {
		for _, opt := range []OptLevel{OptBase, OptVAP, OptDAP} {
			t.Run(name+"/"+opt.String(), func(t *testing.T) {
				a, _ := algo.New(name, 0, 0)
				g := graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2400, Seed: 11})
				sym := algo.NeedsSymmetric(a)
				if sym {
					g = graph.Symmetrize(g)
				}
				js := New(g, a, cfgOpt(opt, false), nil)
				js.RunInitial()
				gen := stream.NewGenerator(stream.Config{
					BatchSize: 60, InsertFrac: 0.5, Symmetric: sym, Seed: 7,
				})
				for batch := 0; batch < 8; batch++ {
					b := gen.Next(js.Graph())
					if err := js.ApplyBatch(b); err != nil {
						t.Fatal(err)
					}
					if d := js.Verify(); d != 0 {
						t.Fatalf("batch %d: diverged from reference by %v", batch, d)
					}
				}
			})
		}
	}
}

func TestStreamingAccumulativeMatchesReference(t *testing.T) {
	for _, name := range []string{"pagerank", "adsorption"} {
		t.Run(name, func(t *testing.T) {
			a, _ := algo.New(name, 0, 1e-10)
			g := graph.RMAT(graph.RMATConfig{Vertices: 250, Edges: 2000, Seed: 13})
			js := New(g, a, cfgOpt(OptDAP, false), nil)
			js.RunInitial()
			gen := stream.NewGenerator(stream.Config{BatchSize: 50, InsertFrac: 0.6, Seed: 3})
			for batch := 0; batch < 6; batch++ {
				b := gen.Next(js.Graph())
				if err := js.ApplyBatch(b); err != nil {
					t.Fatal(err)
				}
				tol := Tolerance(a, js.Graph().NumEdges(), batch+1)
				if d := js.Verify(); d > tol {
					t.Fatalf("batch %d: diverged by %v (tol %v)", batch, d, tol)
				}
			}
		})
	}
}

func TestStreamingOnWebGraph(t *testing.T) {
	// Long-path topology stresses deep delete propagation.
	g := graph.WebCrawl(graph.WebCrawlConfig{Vertices: 600, AvgDegree: 5, Seed: 2})
	for _, opt := range []OptLevel{OptBase, OptVAP, OptDAP} {
		a := algo.NewSSSP(0)
		js := New(g, a, cfgOpt(opt, false), nil)
		js.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.3, Seed: 5})
		for batch := 0; batch < 5; batch++ {
			if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
				t.Fatal(err)
			}
			if d := js.Verify(); d != 0 {
				t.Fatalf("%v batch %d: diverged by %v", opt, batch, d)
			}
		}
	}
}

func TestDeleteOnlyAndInsertOnlyBatches(t *testing.T) {
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1600, Seed: 17})
	for _, frac := range []float64{0, 1} {
		js := New(g, a, cfgOpt(OptDAP, false), nil)
		js.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: frac, Seed: 9})
		if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
			t.Fatal(err)
		}
		if d := js.Verify(); d != 0 {
			t.Fatalf("frac=%v: diverged by %v", frac, d)
		}
	}
}

func TestInsertOnlyBatchTriggersNoResets(t *testing.T) {
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1600, Seed: 19})
	st := &stats.Counters{}
	js := New(g, a, cfgOpt(OptDAP, false), st)
	js.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 30, InsertFrac: 1, Seed: 1})
	if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
		t.Fatal(err)
	}
	if st.VerticesReset != 0 {
		t.Errorf("insert-only batch reset %d vertices", st.VerticesReset)
	}
	if st.RequestsIssued != 0 {
		t.Errorf("insert-only batch issued %d requests", st.RequestsIssued)
	}
}

func TestOptimizationsShrinkResetSet(t *testing.T) {
	// Fig 12's premise: Base tags the most vertices; VAP and DAP prune.
	// Distinct weights make VAP effective on SSSP.
	g := graph.RMAT(graph.RMATConfig{Vertices: 500, Edges: 4000, Seed: 23, MaxWeight: 1000})
	resets := map[OptLevel]uint64{}
	for _, opt := range []OptLevel{OptBase, OptVAP, OptDAP} {
		st := &stats.Counters{}
		js := New(g, algo.NewSSSP(0), cfgOpt(opt, false), st)
		js.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0, Seed: 31})
		if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
			t.Fatal(err)
		}
		resets[opt] = st.VerticesReset
	}
	if resets[OptVAP] > resets[OptBase] {
		t.Errorf("VAP resets %d > Base %d", resets[OptVAP], resets[OptBase])
	}
	if resets[OptDAP] > resets[OptBase] {
		t.Errorf("DAP resets %d > Base %d", resets[OptDAP], resets[OptBase])
	}
	if resets[OptDAP] == 0 && resets[OptBase] > 0 {
		t.Log("note: DAP pruned every reset") // legal, just informative
	}
}

func TestVAPIneffectiveForBFSLikeValues(t *testing.T) {
	// §5.2: "a BFS algorithm sets all nodes to the same value, and VAP
	// cannot exclude any vertex based on value" — DAP must prune at least
	// as well as VAP on BFS.
	g := graph.RMAT(graph.RMATConfig{Vertices: 400, Edges: 3000, Seed: 29})
	run := func(opt OptLevel) uint64 {
		st := &stats.Counters{}
		js := New(g, algo.NewBFS(0), cfgOpt(opt, false), st)
		js.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 30, InsertFrac: 0, Seed: 41})
		if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
			t.Fatal(err)
		}
		return st.VerticesReset
	}
	if dap, vap := run(OptDAP), run(OptVAP); dap > vap {
		t.Errorf("DAP resets %d > VAP resets %d on BFS", dap, vap)
	}
}

func TestAccumulativeBatchCompositionInsensitive(t *testing.T) {
	// §6.2 Fig 14: "for PageRank ... both types of updates are handled
	// similarly" — insert-only and delete-only batches take the same path
	// (dirty-vertex negation + re-add), so neither needs resets.
	a := algo.NewPageRank(1e-9)
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1500, Seed: 37})
	st := &stats.Counters{}
	js := New(g, a, cfgOpt(OptDAP, false), st)
	js.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 30, InsertFrac: 0, Seed: 43})
	if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
		t.Fatal(err)
	}
	if st.VerticesReset != 0 {
		t.Errorf("accumulative path reset %d vertices", st.VerticesReset)
	}
	tol := Tolerance(a, js.Graph().NumEdges(), 1)
	if d := js.Verify(); d > tol {
		t.Fatalf("delete-only PageRank diverged by %v", d)
	}
}

func TestIncrementalBeatsColdStart(t *testing.T) {
	// The headline claim: a small streaming batch costs far fewer cycles
	// than recomputing from scratch on the same hardware configuration.
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 4000, Edges: 40000, Seed: 47})
	js := New(g, a, cfgOpt(OptDAP, true), nil)
	js.RunInitial()
	coldCycles := js.Cycles()

	gen := stream.NewGenerator(stream.Config{BatchSize: 50, InsertFrac: 0.7, Seed: 51})
	before := js.Cycles()
	if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
		t.Fatal(err)
	}
	incCycles := js.Cycles() - before
	if d := js.Verify(); d != 0 {
		t.Fatalf("diverged by %v", d)
	}
	if incCycles*2 >= coldCycles {
		t.Errorf("incremental batch (%d cycles) not clearly cheaper than cold start (%d)", incCycles, coldCycles)
	}
}

func TestTimingDoesNotChangeResults(t *testing.T) {
	a := algo.NewSSWP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2400, Seed: 53})
	run := func(timing bool) []float64 {
		js := New(g, a, cfgOpt(OptDAP, timing), nil)
		js.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.5, Seed: 59})
		for i := 0; i < 3; i++ {
			if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]float64, len(js.State()))
		copy(out, js.State())
		return out
	}
	if d := algo.MaxAbsDiff(run(true), run(false)); d != 0 {
		t.Errorf("timing changed results by %v", d)
	}
}

func TestCoalescingReenabledAfterDAPRecovery(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 100, Edges: 800, Seed: 61})
	js := New(g, algo.NewSSSP(0), cfgOpt(OptDAP, false), nil)
	js.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 20, InsertFrac: 0.5, Seed: 67})
	if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
		t.Fatal(err)
	}
	if !js.Engine().Queue().CoalescingEnabled() {
		t.Error("coalescing left disabled after recovery phase")
	}
}

func TestApplyBatchRejectsInvalid(t *testing.T) {
	js := New(fig2Graph(), algo.NewSSSP(0), cfgOpt(OptDAP, false), nil)
	js.RunInitial()
	if err := js.ApplyBatch(graph.Batch{Deletes: []graph.Edge{{Src: 4, Dst: 0, Weight: 1}}}); err == nil {
		t.Error("delete of missing edge accepted")
	}
	// State must be untouched by the failed batch.
	if d := js.Verify(); d != 0 {
		t.Errorf("failed batch perturbed state by %v", d)
	}
}

func TestPartitionedStreamingMatchesReference(t *testing.T) {
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 600, Edges: 5000, Seed: 71})
	cfg := cfgOpt(OptDAP, true)
	cfg.Slices = 3
	js := New(g, a, cfg, nil)
	js.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.5, Seed: 73})
	for i := 0; i < 3; i++ {
		if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
			t.Fatal(err)
		}
		if d := js.Verify(); d != 0 {
			t.Fatalf("batch %d diverged by %v", i, d)
		}
	}
	if js.Stats().SpillBytes == 0 {
		t.Error("partitioned run produced no spill traffic")
	}
}

func TestQuickStreamingSSSPAlwaysExact(t *testing.T) {
	// Property: for any random graph and any random valid batch, JetStream's
	// post-batch state equals Dijkstra on the mutated graph, at every
	// optimization level.
	f := func(seed int64, optPick uint8) bool {
		opt := OptLevel(optPick % 3)
		g := graph.ErdosRenyi(80, 500, 32, seed)
		js := New(g, algo.NewSSSP(0), cfgOpt(opt, false), nil)
		js.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 24, InsertFrac: 0.4, Seed: seed ^ 0x5a5a})
		for i := 0; i < 3; i++ {
			if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
				return false
			}
			if js.Verify() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStreamingCCAlwaysExact(t *testing.T) {
	// CC exercises the equal-value regime where VAP cannot prune and
	// component splits force full re-derivation through requests.
	f := func(seed int64, optPick uint8) bool {
		opt := OptLevel(optPick % 3)
		g := graph.Symmetrize(graph.ErdosRenyi(60, 150, 8, seed))
		js := New(g, algo.NewCC(), cfgOpt(opt, false), nil)
		js.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 16, InsertFrac: 0.4, Symmetric: true, Seed: seed ^ 0x33})
		for i := 0; i < 3; i++ {
			if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
				return false
			}
			if js.Verify() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineReuseAcrossManyBatches(t *testing.T) {
	// Long-running stream: 20 consecutive batches stay exact.
	a := algo.NewBFS(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 250, Edges: 2000, Seed: 79})
	js := New(g, a, cfgOpt(OptDAP, false), nil)
	js.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 30, InsertFrac: 0.5, Seed: 83})
	for i := 0; i < 20; i++ {
		if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
			t.Fatal(err)
		}
		if d := js.Verify(); d != 0 {
			t.Fatalf("batch %d diverged by %v", i, d)
		}
	}
}

func TestDefaultConfigsConsistent(t *testing.T) {
	if DefaultConfig().Opt != OptDAP {
		t.Error("default opt should be DAP")
	}
	if ConfigWithOpt(OptVAP).Engine.VertexBytes != 8 {
		t.Error("VAP should not pay the dependency-field footprint")
	}
	if ConfigWithOpt(OptDAP).Engine.VertexBytes != 12 {
		t.Error("DAP must pay the dependency-field footprint")
	}
	if OptBase.String() != "base" || OptVAP.String() != "vap" || OptDAP.String() != "dap" {
		t.Error("OptLevel strings wrong")
	}
	if OptLevel(9).String() == "" {
		t.Error("unknown OptLevel must still print")
	}
}

func TestAblationTwoPhaseAccumulateCorrect(t *testing.T) {
	// The paper-literal two-phase rollback must converge to the same result
	// as the fused net-event path.
	a := algo.NewPageRank(1e-10)
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1600, Seed: 91})
	cfg := cfgOpt(OptDAP, false)
	cfg.TwoPhaseAccumulate = true
	js := New(g, a, cfg, nil)
	js.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.6, Seed: 93})
	for i := 0; i < 4; i++ {
		if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
			t.Fatal(err)
		}
		tol := Tolerance(a, js.Graph().NumEdges(), i+1)
		if d := js.Verify(); d > tol {
			t.Fatalf("batch %d diverged by %v (tol %v)", i, d, tol)
		}
	}
}

func TestAblationNoCoalesceTruncates(t *testing.T) {
	// Coalescing is not only a performance mechanism for accumulative
	// algorithms — it preserves accuracy at a given epsilon. Un-merged
	// deltas shrink per hop by ~damping/degree and fall under the
	// generation threshold within a few hops, truncating the contribution
	// series; coalesced deltas aggregate and survive ~damping per round.
	// This test pins that behavior: the no-coalescing run terminates,
	// coalesces nothing, and is *less accurate* than the full design while
	// staying boundedly wrong.
	a := algo.NewPageRank(1e-6)
	g := graph.RMAT(graph.RMATConfig{Vertices: 150, Edges: 1200, Seed: 97})

	run := func(noCoalesce bool) (maxRel float64, coalesced uint64) {
		aa := algo.NewPageRank(1e-6)
		cfg := cfgOpt(OptDAP, false)
		cfg.NoCoalesce = noCoalesce
		st := &stats.Counters{}
		js := New(g, aa, cfg, st)
		js.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 30, InsertFrac: 0.5, Seed: 99})
		for i := 0; i < 3; i++ {
			if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
				t.Fatal(err)
			}
		}
		ref := algo.Reference(a, js.Graph())
		for i := range ref {
			if ref[i] <= 0 {
				continue
			}
			d := js.State()[i] - ref[i]
			if d < 0 {
				d = -d
			}
			if rel := d / ref[i]; rel > maxRel {
				maxRel = rel
			}
		}
		return maxRel, st.EventsCoalesced
	}

	fullErr, _ := run(false)
	ablErr, coalesced := run(true)
	if coalesced != 0 {
		t.Errorf("%d events coalesced despite NoCoalesce", coalesced)
	}
	if ablErr <= fullErr {
		t.Errorf("no-coalescing error %.4f not worse than full design %.6f", ablErr, fullErr)
	}
	if fullErr > 1e-2 {
		t.Errorf("full design relative error %.4f too large", fullErr)
	}
	if ablErr > 0.8 {
		t.Errorf("no-coalescing error %.4f unboundedly wrong", ablErr)
	}
}

func TestStreamingLinSolveMatchesReference(t *testing.T) {
	// The extension workload: a streaming linear system x = b + Wx with
	// coefficient updates. RowNormalize keeps every version a contraction
	// (deletions only shrink in-weight sums; insertions use tiny weights).
	g := algo.RowNormalize(graph.RMAT(graph.RMATConfig{Vertices: 250, Edges: 2000, Seed: 41}), 0.7)
	a := algo.NewLinSolve(nil, 1e-11)
	js := New(g, a, cfgOpt(OptDAP, false), nil)
	js.RunInitial()
	rng := rand.New(rand.NewSource(43))
	for batch := 0; batch < 5; batch++ {
		var b graph.Batch
		cur := js.Graph()
		seen := map[[2]graph.VertexID]bool{}
		for len(b.Deletes) < 15 {
			e := cur.EdgeAt(rng.Intn(cur.NumEdges()))
			k := [2]graph.VertexID{e.Src, e.Dst}
			if seen[k] {
				continue
			}
			seen[k] = true
			b.Deletes = append(b.Deletes, e)
		}
		for len(b.Inserts) < 20 {
			u := graph.VertexID(rng.Intn(cur.NumVertices()))
			v := graph.VertexID(rng.Intn(cur.NumVertices()))
			if u == v {
				continue
			}
			k := [2]graph.VertexID{u, v}
			if seen[k] {
				continue
			}
			if _, ok := cur.HasEdge(u, v); ok {
				continue
			}
			seen[k] = true
			w := (rng.Float64() - 0.5) * 0.02 // tiny coefficients keep contraction
			b.Inserts = append(b.Inserts, graph.Edge{Src: u, Dst: v, Weight: w})
		}
		if err := js.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		tol := Tolerance(a, js.Graph().NumEdges(), batch+1)
		if d := js.Verify(); d > tol {
			t.Fatalf("batch %d diverged by %v (tol %v)", batch, d, tol)
		}
	}
}

func TestRepartitionKeepsResultsExact(t *testing.T) {
	// §4.7: periodic re-partitioning must not affect the workflow.
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 500, Edges: 4000, Seed: 101})
	cfg := cfgOpt(OptDAP, true)
	cfg.Slices = 3
	js := New(g, a, cfg, nil)
	js.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.6, Seed: 103})
	for i := 0; i < 4; i++ {
		if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
			t.Fatal(err)
		}
		if cut := js.Repartition(); cut < 0 {
			t.Fatal("Repartition reported slicing off")
		}
		if d := js.Verify(); d != 0 {
			t.Fatalf("batch %d after repartition: diverged by %v", i, d)
		}
	}
	// Without slicing it is a no-op.
	plain := New(g, a, cfgOpt(OptDAP, false), nil)
	if plain.Repartition() != -1 {
		t.Error("unsliced Repartition should return -1")
	}
}
