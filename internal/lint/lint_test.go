package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureCases pairs each testdata directory with the analyzer it exercises
// and the import path the fixture is loaded under (analyzer scope depends on
// where the package sits in the module).
var fixtureCases = []struct {
	dir        string
	importPath string
	analyzer   *Analyzer
}{
	{"atomicmix", "jetstream/fix/atomicmix", Atomicmix},
	{"determinism", "jetstream/internal/engine", Determinism},
	{"determinism_graph", "jetstream/internal/graph", Determinism},
	{"panicfree", "jetstream", Panicfree},
	{"errwrap", "jetstream", Errwrap},
	{"syncerr", "jetstream/internal/wal", Syncerr},
	{"lockdiscipline", "jetstream/internal/service", Lockdiscipline},
	{"hotpathalloc", "jetstream/internal/queue", Hotpathalloc},
	{"journalorder", "jetstream/internal/host", Journalorder},
}

func TestAnalyzers(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			mod, err := LoadFixture(filepath.Join("testdata", tc.dir), tc.importPath)
			if err != nil {
				t.Fatalf("LoadFixture: %v", err)
			}
			diags := Run(mod, []*Analyzer{tc.analyzer})
			checkWants(t, mod, diags)
		})
	}
}

// want extraction: a comment containing `want "re"` (one or more quoted
// regexps) asserts that each regexp matches a diagnostic message reported on
// that comment's line, and that every diagnostic on the line is matched.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, mod *Module) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "want ")
					if idx < 0 {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					quoted := quotedRe.FindAllString(c.Text[idx+len("want "):], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
					}
					for _, q := range quoted {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// checkWants compares reported diagnostics against the fixture's want
// comments: every diagnostic needs a matching want on its line and every want
// needs a matching diagnostic.
func checkWants(t *testing.T, mod *Module, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, mod)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// TestSuppressionRequiresMatchingName checks that a directive naming a
// different analyzer does not suppress a diagnostic.
func TestSuppressionRequiresMatchingName(t *testing.T) {
	allows := map[string]map[int][]*directive{
		"f.go": {10: {{analyzers: map[string]bool{"errwrap": true}}}},
	}
	d := Diagnostic{Analyzer: "determinism", File: "f.go", Line: 10}
	if suppressed(allows, d) {
		t.Fatal("directive for errwrap suppressed a determinism diagnostic")
	}
	d.Analyzer = "errwrap"
	if !suppressed(allows, d) {
		t.Fatal("directive on the same line did not suppress")
	}
	d.Line = 11 // directive on the line above the diagnostic
	if !suppressed(allows, d) {
		t.Fatal("directive on the line above did not suppress")
	}
	d.Line = 12
	if suppressed(allows, d) {
		t.Fatal("directive two lines above must not suppress")
	}
}

// TestDiagnosticJSON pins the machine-readable shape consumed by CI.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{Analyzer: "errwrap", File: "x.go", Line: 3, Column: 7, Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"errwrap","file":"x.go","line":3,"column":7,"message":"m"}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
	str := fmt.Sprint(d)
	if str != "x.go:3:7: [errwrap] m" {
		t.Fatalf("String() = %q", str)
	}
}

// TestAllNames guards the analyzer registry the driver builds flags from.
func TestAllNames(t *testing.T) {
	var names []string
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("incomplete analyzer %+v", a)
		}
		names = append(names, a.Name)
	}
	got := strings.Join(names, ",")
	if got != "atomicmix,determinism,panicfree,errwrap,syncerr,lockdiscipline,hotpathalloc,journalorder" {
		t.Fatalf("All() = %s", got)
	}
}

// TestDirectiveMultiAnalyzer pins the multi-analyzer directive grammar: both
// comma- and space-separated name lists suppress each named analyzer, and
// only those.
func TestDirectiveMultiAnalyzer(t *testing.T) {
	mod := parseDirectiveModule(t, `package p

var a = 1 //jetlint:allow determinism,syncerr -- both fire here
var b = 2 //jetlint:allow determinism syncerr -- space-separated works too
var c = 3 //jetlint:allow determinism, syncerr -- comma plus space too
`)
	allows, malformed := collectDirectives(mod)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v", malformed)
	}
	byLine := allows["d.go"]
	if byLine == nil {
		t.Fatal("no directives collected for d.go")
	}
	for _, line := range []int{3, 4, 5} {
		dirs := byLine[line]
		if len(dirs) != 1 {
			t.Fatalf("line %d: %d directives, want 1", line, len(dirs))
		}
		d := dirs[0]
		if len(d.analyzers) != 2 || !d.analyzers["determinism"] || !d.analyzers["syncerr"] {
			t.Errorf("line %d: analyzers = %v, want determinism+syncerr", line, d.analyzers)
		}
		for _, name := range []string{"determinism", "syncerr"} {
			if !suppressed(allows, Diagnostic{Analyzer: name, File: "d.go", Line: line}) {
				t.Errorf("line %d: %s not suppressed", line, name)
			}
		}
		if suppressed(allows, Diagnostic{Analyzer: "errwrap", File: "d.go", Line: line}) {
			t.Errorf("line %d: errwrap suppressed without being named", line)
		}
	}
}

// TestStaleDirectives checks that an allow directive suppressing nothing is
// reported as its own diagnostic — but only for analyzers that actually ran,
// so partial runs don't cry wolf.
func TestStaleDirectives(t *testing.T) {
	mod := parseDirectiveModule(t, `package p

var a = 1 //jetlint:allow determinism,syncerr -- neither fires here
`)
	allows, _ := collectDirectives(mod)
	stale := staleDirectives(allows, map[string]bool{"determinism": true})
	if len(stale) != 1 {
		t.Fatalf("stale = %v, want exactly the ran-but-unused determinism", stale)
	}
	d := stale[0]
	if d.Analyzer != "jetlint" || d.File != "d.go" || d.Line != 3 ||
		!strings.Contains(d.Message, "determinism") {
		t.Fatalf("stale diagnostic = %+v", d)
	}
	if strings.Contains(d.Message, "syncerr") {
		t.Fatal("syncerr did not run; its directive half must not be reported")
	}

	// Once the directive suppresses a determinism diagnostic, it is earned.
	if !suppressed(allows, Diagnostic{Analyzer: "determinism", File: "d.go", Line: 3}) {
		t.Fatal("directive did not suppress")
	}
	if got := staleDirectives(allows, map[string]bool{"determinism": true}); len(got) != 0 {
		t.Fatalf("used directive reported stale: %v", got)
	}
}

// parseDirectiveModule builds a one-file module in memory for directive
// tests, bypassing type checking (directives are purely lexical).
func parseDirectiveModule(t *testing.T, src string) *Module {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Module{
		Fset: fset,
		Path: "jetstream",
		Pkgs: []*Package{{Path: "jetstream", Files: []*ast.File{f}}},
	}
}
