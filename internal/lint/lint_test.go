package lint

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixtureCases pairs each testdata directory with the analyzer it exercises
// and the import path the fixture is loaded under (analyzer scope depends on
// where the package sits in the module).
var fixtureCases = []struct {
	dir        string
	importPath string
	analyzer   *Analyzer
}{
	{"atomicmix", "jetstream/fix/atomicmix", Atomicmix},
	{"determinism", "jetstream/internal/engine", Determinism},
	{"determinism_graph", "jetstream/internal/graph", Determinism},
	{"panicfree", "jetstream", Panicfree},
	{"errwrap", "jetstream", Errwrap},
	{"syncerr", "jetstream/internal/wal", Syncerr},
}

func TestAnalyzers(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			mod, err := LoadFixture(filepath.Join("testdata", tc.dir), tc.importPath)
			if err != nil {
				t.Fatalf("LoadFixture: %v", err)
			}
			diags := Run(mod, []*Analyzer{tc.analyzer})
			checkWants(t, mod, diags)
		})
	}
}

// want extraction: a comment containing `want "re"` (one or more quoted
// regexps) asserts that each regexp matches a diagnostic message reported on
// that comment's line, and that every diagnostic on the line is matched.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type wantSpec struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func collectWants(t *testing.T, mod *Module) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "want ")
					if idx < 0 {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					quoted := quotedRe.FindAllString(c.Text[idx+len("want "):], -1)
					if len(quoted) == 0 {
						t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
					}
					for _, q := range quoted {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// checkWants compares reported diagnostics against the fixture's want
// comments: every diagnostic needs a matching want on its line and every want
// needs a matching diagnostic.
func checkWants(t *testing.T, mod *Module, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, mod)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// TestSuppressionRequiresMatchingName checks that a directive naming a
// different analyzer does not suppress a diagnostic.
func TestSuppressionRequiresMatchingName(t *testing.T) {
	allows := map[string]map[int][]directive{
		"f.go": {10: {{analyzers: map[string]bool{"errwrap": true}}}},
	}
	d := Diagnostic{Analyzer: "determinism", File: "f.go", Line: 10}
	if suppressed(allows, d) {
		t.Fatal("directive for errwrap suppressed a determinism diagnostic")
	}
	d.Analyzer = "errwrap"
	if !suppressed(allows, d) {
		t.Fatal("directive on the same line did not suppress")
	}
	d.Line = 11 // directive on the line above the diagnostic
	if !suppressed(allows, d) {
		t.Fatal("directive on the line above did not suppress")
	}
	d.Line = 12
	if suppressed(allows, d) {
		t.Fatal("directive two lines above must not suppress")
	}
}

// TestDiagnosticJSON pins the machine-readable shape consumed by CI.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{Analyzer: "errwrap", File: "x.go", Line: 3, Column: 7, Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"analyzer":"errwrap","file":"x.go","line":3,"column":7,"message":"m"}`
	if string(b) != want {
		t.Fatalf("json = %s, want %s", b, want)
	}
	str := fmt.Sprint(d)
	if str != "x.go:3:7: [errwrap] m" {
		t.Fatalf("String() = %q", str)
	}
}

// TestAllNames guards the analyzer registry the driver builds flags from.
func TestAllNames(t *testing.T) {
	var names []string
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("incomplete analyzer %+v", a)
		}
		names = append(names, a.Name)
	}
	got := strings.Join(names, ",")
	if got != "atomicmix,determinism,panicfree,errwrap,syncerr" {
		t.Fatalf("All() = %s", got)
	}
}
