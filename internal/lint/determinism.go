package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism forbids wall-clock and unseeded-randomness sources inside the
// packages that define the simulated timeline. Golden-trace stability,
// checkpoint difftests, and the KickStarter-style streaming-correctness
// argument all assume that re-running a phase replays the identical event
// sequence; one time.Now or global rand draw in an engine path silently
// breaks that without failing any functional test.
//
// Banned in the deterministic packages (non-test files):
//
//   - time.Now, time.Since, time.Until, time.Sleep, time.After, time.Tick,
//     time.NewTimer, time.NewTicker, time.AfterFunc
//   - package-level math/rand and math/rand/v2 functions (the unseeded
//     global generator); rand.New/rand.NewSource with an explicit seed are
//     allowed, as is every method on an injected *rand.Rand
//   - select cases that receive from a timer channel (<-chan time.Time)
//
// A justified escape hatch suppresses one diagnostic:
//
//	//jetlint:allow determinism -- reason
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time and unseeded randomness in the simulated-timeline packages",
	Run:  runDeterminism,
}

// DeterministicPackages lists the module-relative packages whose behavior
// must be a pure function of configuration and input.
var DeterministicPackages = []string{
	"internal/engine",
	"internal/sim",
	"internal/mem",
	"internal/noc",
	"internal/queue",
	"internal/event",
	// The graph substrate feeds the simulated timeline directly: the delta
	// mutation layer decides rebuild-vs-in-place per batch and EdgeAt drives
	// the deterministic stream generator, so any wall-clock or global-rand
	// dependence here would desynchronize golden traces just like an engine
	// path would. Generators must use explicitly seeded *rand.Rand.
	"internal/graph",
}

var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// allowedRandFuncs are the package-level math/rand functions that construct
// explicitly seeded generators rather than drawing from the global one.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *Pass) {
	restricted := make(map[string]bool, len(DeterministicPackages))
	for _, p := range DeterministicPackages {
		restricted[pass.Mod.Path+"/"+p] = true
	}
	for _, pkg := range pass.Mod.Pkgs {
		if !restricted[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			if pass.IsTestFile(f.Pos()) {
				continue // tests may use timeouts and ad-hoc randomness
			}
			checkDeterminismFile(pass, pkg, f)
		}
	}
}

func checkDeterminismFile(pass *Pass, pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			fn, ok := pkg.Info.Uses[n].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Float64) are fine
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "time.%s is wall-clock-dependent; deterministic packages must derive time from the simulated cycle count", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(n.Pos(), "%s.%s draws from the unseeded global generator; use an injected, explicitly seeded *rand.Rand", pathBase(fn.Pkg().Path()), fn.Name())
				}
			}
		case *ast.CommClause:
			if recv := commReceiveChan(n); recv != nil {
				if tv, ok := pkg.Info.Types[recv]; ok && isTimeChan(tv.Type) {
					pass.Reportf(n.Pos(), "select on a timer channel makes the winning case schedule-dependent; deterministic packages must not race the wall clock")
				}
			}
		}
		return true
	})
}

// commReceiveChan extracts the channel expression of a select case that
// receives (case <-ch:, case v := <-ch:), or nil.
func commReceiveChan(c *ast.CommClause) ast.Expr {
	var e ast.Expr
	switch s := c.Comm.(type) {
	case *ast.ExprStmt:
		e = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			e = s.Rhs[0]
		}
	}
	if un, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
		return un.X
	}
	return nil
}

// isTimeChan reports whether t is a channel of time.Time.
func isTimeChan(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	named, ok := ch.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Time"
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
