package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// Errwrap enforces that error chains survive the public boundary, so callers
// can match with errors.Is/As instead of string comparison.
//
// Rule 1 (module-wide, non-test files): a fmt.Errorf call whose arguments
// include an error value must carry %w in its format string. %v flattens the
// wrapped error into text and severs the chain; the rendered message is
// identical either way, so there is no reason to prefer %v.
//
// Rule 2 (root package only): an exported function must not return an error
// minted by another package as-is. Bare pass-through leaks internal package
// vocabulary as the API contract; wrapping with fmt.Errorf("...: %w", err)
// adds the boundary context while keeping the chain intact. The analysis is
// a source-order approximation: an error variable becomes tainted when
// assigned from a call into another package and is cleared when reassigned
// from a local call or a wrapping constructor (fmt.Errorf, errors.*).
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "require %w when fmt.Errorf wraps an error, and forbid bare external errors from exported root functions",
	Run:  runErrwrap,
}

func runErrwrap(pass *Pass) {
	for _, pkg := range pass.Mod.Pkgs {
		for _, f := range pkg.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			checkErrorfCalls(pass, pkg, f)
			if pkg.Path == pass.Mod.Path {
				for _, decl := range f.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if ok && fd.Body != nil && exportedBoundary(fd) {
						checkBareReturns(pass, pkg, fd)
					}
				}
			}
		}
	}
}

// checkErrorfCalls implements rule 1.
func checkErrorfCalls(pass *Pass, pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 2 || !calleeFromPkg(pkg.Info, call, "fmt", "Errorf") {
			return true
		}
		tv, ok := pkg.Info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true // non-constant format: cannot judge
		}
		format := constant.StringVal(tv.Value)
		if strings.Contains(strings.ReplaceAll(format, "%%", ""), "%w") {
			return true
		}
		for _, arg := range call.Args[1:] {
			if atv, ok := pkg.Info.Types[arg]; ok && isErrorType(atv.Type) {
				pass.Reportf(call.Pos(), "fmt.Errorf has an error argument but no %%w; the chain is severed and errors.Is/As cannot see through it")
				break
			}
		}
		return true
	})
}

// isWrapConstructor reports whether call creates or wraps an error itself
// (fmt.Errorf, anything in errors): returning its result is not a bare
// pass-through.
func isWrapConstructor(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := callee(info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return (p == "fmt" && fn.Name() == "Errorf") || p == "errors"
}

// isExternalCall reports whether call invokes a function or method defined
// outside home (the root package).
func isExternalCall(info *types.Info, call *ast.CallExpr, home *types.Package) bool {
	obj := callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false // builtins, conversions, indirect calls: not judged
	}
	return fn.Pkg() != nil && fn.Pkg() != home
}

// callHasErrorResult reports whether any of call's results is error-typed.
func callHasErrorResult(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(tv.Type)
}

// checkBareReturns implements rule 2 for one exported root function.
func checkBareReturns(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	sig, ok := pkg.Info.Defs[fd.Name].Type().(*types.Signature)
	if !ok {
		return
	}
	hasErrResult := false
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			hasErrResult = true
		}
	}
	if !hasErrResult {
		return
	}

	// tainted maps error variables to the external callee that produced
	// their current value. ast.Inspect visits in source order, which tracks
	// the straight-line assignment/return structure used in this codebase.
	tainted := make(map[types.Object]string)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ext := ""
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok &&
					isExternalCall(pkg.Info, call, pkg.Pkg) && !isWrapConstructor(pkg.Info, call) {
					if fn, ok := callee(pkg.Info, call).(*types.Func); ok {
						ext = fn.Pkg().Name() + "." + fn.Name()
					}
				}
			}
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				if ext != "" {
					tainted[obj] = ext
				} else {
					delete(tainted, obj)
				}
			}
		case *ast.ReturnStmt:
			checkReturn(pass, pkg, fd, sig, n, tainted)
		}
		return true
	})
}

func checkReturn(pass *Pass, pkg *Package, fd *ast.FuncDecl, sig *types.Signature, ret *ast.ReturnStmt, tainted map[types.Object]string) {
	// return f(...) forwarding a multi-value external call.
	if len(ret.Results) == 1 && sig.Results().Len() >= 1 {
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if isExternalCall(pkg.Info, call, pkg.Pkg) && !isWrapConstructor(pkg.Info, call) &&
				callHasErrorResult(pkg.Info, call) {
				fn := callee(pkg.Info, call).(*types.Func)
				pass.Reportf(ret.Pos(), "exported %s returns the bare error of %s.%s; wrap it with fmt.Errorf(\"...: %%w\", err) so the public boundary adds context", fd.Name.Name, fn.Pkg().Name(), fn.Name())
			}
			return
		}
	}
	if len(ret.Results) != sig.Results().Len() {
		return // naked return with named results: not judged
	}
	for i, res := range ret.Results {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		e := ast.Unparen(res)
		if call, ok := e.(*ast.CallExpr); ok {
			if isExternalCall(pkg.Info, call, pkg.Pkg) && !isWrapConstructor(pkg.Info, call) &&
				callHasErrorResult(pkg.Info, call) {
				fn := callee(pkg.Info, call).(*types.Func)
				pass.Reportf(res.Pos(), "exported %s returns the bare error of %s.%s; wrap it with fmt.Errorf(\"...: %%w\", err) so the public boundary adds context", fd.Name.Name, fn.Pkg().Name(), fn.Name())
			}
			continue
		}
		if id, ok := e.(*ast.Ident); ok {
			if src, bad := tainted[pkg.Info.Uses[id]]; bad {
				pass.Reportf(res.Pos(), "exported %s returns the bare error of %s; wrap it with fmt.Errorf(\"...: %%w\", err) so the public boundary adds context", fd.Name.Name, src)
			}
		}
	}
}
