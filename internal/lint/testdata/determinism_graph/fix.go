// Fixture for the determinism analyzer over the graph substrate, loaded
// under the import path jetstream/internal/graph — the package that owns the
// delta mutation layer. The batch-apply path decides rebuild-vs-in-place and
// feeds EdgeAt sampling, so it must stay wall-clock and global-rand free.
package graph

import (
	"math/rand"
	"time"
)

type batch struct{ size int }

// StampedApply is the classic mistake: timestamping a mutation makes the
// version chain depend on the wall clock.
func StampedApply(b batch) int64 {
	return time.Now().UnixNano() // want "time.Now is wall-clock-dependent"
}

// JitteredSlack randomizes per-vertex slack from the global generator, which
// would make the compaction schedule differ between identical runs.
func JitteredSlack(deg int) int {
	return deg + rand.Intn(4) // want "rand.Intn draws from the unseeded global generator"
}

// AmortizeByTime rebuilds on a wall-clock cadence instead of an edit count.
func AmortizeByTime(last time.Time) bool {
	return time.Since(last) > time.Second // want "time.Since is wall-clock-dependent"
}

// SeededGenerator is the allowed pattern: synthetic-workload generators build
// their own explicitly seeded source.
func SeededGenerator(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// InjectedSampler consumes a caller-seeded generator (the stream generator's
// EdgeAt sampling path).
func InjectedSampler(rng *rand.Rand, edges int) int {
	return rng.Intn(edges)
}
