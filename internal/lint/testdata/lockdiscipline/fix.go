// Fixture for the lockdiscipline analyzer: leaked locks, double locks,
// double unlocks, conditional acquisition (TryLock and the acquire/release
// CAS guard), and the false-positive regressions for every clean pattern
// the service layer actually uses.
package service

import (
	"errors"
	"sync"
)

type tenant struct {
	mu sync.Mutex
	n  int
}

type registry struct {
	mu  sync.RWMutex
	set map[string]*tenant
}

// ---- positives ----

func leakOnReturn(t *tenant) int {
	t.mu.Lock()
	return t.n // want "return exits while holding t.mu"
}

func leakOnSomePaths(t *tenant, fast bool) int {
	t.mu.Lock()
	if fast {
		return t.n // want "return exits while holding t.mu"
	}
	n := t.n
	t.mu.Unlock()
	return n
}

func maybeHeldAtReturn(t *tenant, c bool) {
	if c {
		t.mu.Lock()
	}
	t.n++
	// The unlock is missing on the c path entirely.
	return // want "return may exit while holding t.mu"
}

func leakFallingOffEnd(t *tenant) {
	t.mu.Lock()
	t.n++
} // want "function exit exits while holding t.mu"

func doubleLock(t *tenant) {
	t.mu.Lock()
	t.mu.Lock() // want "t.mu acquired again while already held"
	t.mu.Unlock()
}

func doubleLockViaBranch(t *tenant, c bool) {
	t.mu.Lock()
	if c {
		t.mu.Lock() // want "t.mu acquired again while already held"
		t.mu.Unlock()
	}
	t.mu.Unlock()
}

func unlockNotHeld(t *tenant) {
	t.mu.Unlock() // want "t.mu released but not held"
}

func unlockTwiceWithDefer(t *tenant) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.n++
	t.mu.Unlock()
	return // want "deferred unlock of t.mu runs with the lock already released"
}

func readLockLeak(r *registry, k string) *tenant {
	r.mu.RLock()
	return r.set[k] // want "return exits while holding r.mu"
}

// lockedHandoff returns with the lock held on purpose; the annotation both
// documents and suppresses it.
func lockedHandoff(t *tenant) *tenant {
	t.mu.Lock()
	return t //jetlint:allow lockdiscipline -- caller unlocks after the handoff
}

// ---- the acquire/release CAS guard ----

type system struct {
	busy bool
}

var errBusy = errors.New("busy")

func (s *system) acquire(op string) error {
	if s.busy {
		return errBusy
	}
	s.busy = true
	return nil
}

func (s *system) release() { s.busy = false }

func guardLeak(s *system, work func()) error {
	if err := s.acquire("leak"); err != nil {
		return err
	}
	work()
	return nil // want "return exits while holding s.acquire"
}

func guardLeakOnBranch(s *system, bad bool) error {
	if err := s.acquire("branch"); err != nil {
		return err
	}
	if bad {
		return errBusy // want "return exits while holding s.acquire"
	}
	s.release()
	return nil
}

// ---- false-positive regressions ----

func cleanDeferPair(t *tenant) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

func cleanExplicitBranches(r *registry, k string) (*tenant, error) {
	r.mu.Lock()
	if r.set == nil {
		r.mu.Unlock()
		return nil, errors.New("closed")
	}
	t, ok := r.set[k]
	if !ok {
		r.mu.Unlock()
		return nil, errors.New("missing")
	}
	r.mu.Unlock()
	return t, nil
}

func cleanGuard(s *system, work func()) error {
	if err := s.acquire("ok"); err != nil {
		return err
	}
	defer s.release()
	work()
	return nil
}

func cleanGuardExplicit(s *system) error {
	err := s.acquire("explicit")
	if err != nil {
		return err
	}
	s.release()
	return nil
}

func cleanTryLockCond(t *tenant) bool {
	if t.mu.TryLock() {
		t.n++
		t.mu.Unlock()
		return true
	}
	return false
}

func cleanTryLockBound(t *tenant) {
	ok := t.mu.TryLock()
	if ok {
		t.n++
		t.mu.Unlock()
	}
}

func cleanLockPerIteration(ts []*tenant) int {
	sum := 0
	for _, t := range ts {
		t.mu.Lock()
		sum += t.n
		t.mu.Unlock()
	}
	return sum
}

func cleanDeferredClosure(t *tenant) {
	t.mu.Lock()
	defer func() {
		t.n++
		t.mu.Unlock()
	}()
	t.n++
}

func cleanClosureOwnsItsLock(t *tenant) func() {
	undo := func() {
		t.mu.Lock()
		t.n--
		t.mu.Unlock()
	}
	return undo
}

func cleanReadLock(r *registry) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.set)
}

func cleanTwoLocksNested(r *registry, t *tenant) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n + len(r.set)
}
