// Fixture for the panicfree analyzer, loaded under the import path
// jetstream so the package is the public boundary.
package fix

import (
	"errors"
	"log"
	"os"
)

func Validate(v int) error {
	if v < 0 {
		panic("negative") // want "panic in exported Validate"
	}
	return nil
}

func MustRun() {
	log.Fatalf("boom: %d", 1) // want "log.Fatalf in exported MustRun terminates the embedding process"
}

func Quit() {
	os.Exit(1) // want "os.Exit in exported Quit terminates the embedding process"
}

// checkInvariant is unexported: internal assertions are out of scope.
func checkInvariant(v int) {
	if v < 0 {
		panic("invariant violated")
	}
}

type Engine struct{ started bool }

func (e *Engine) Start() error {
	if e.started {
		panic("double start") // want "panic in exported Start"
	}
	e.started = true
	return nil
}

// Stop rejects bad state with an error: the sanctioned pattern.
func (e *Engine) Stop() error {
	if !e.started {
		return errors.New("not started")
	}
	e.started = false
	return nil
}

type worker struct{}

// Run has an unexported receiver type: not part of the public surface.
func (w *worker) Run() {
	panic("internal worker invariant")
}

// Deferred panics inside a function literal defined in the exported body are
// still direct calls in that body.
func Deferred() {
	defer func() {
		panic("cleanup failed") // want "panic in exported Deferred"
	}()
}
