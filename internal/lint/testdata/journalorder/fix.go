// Fixture for the journalorder analyzer: the PR 6 ordering invariant on
// commit paths. Mirrors the host.Session shape — a wal field with Append, an
// engine with ApplyBatch, a lazy store — with every ordering violation and
// the replay/conditional-journal regressions.
package host

import "errors"

type batch struct{ n int }

type log struct{ seq uint64 }

func (l *log) Append(seq uint64, b batch) error {
	l.seq = seq
	return nil
}

type engine struct{ applied int }

func (e *engine) ApplyBatch(b batch) { e.applied++ }

type store struct{ lazy int }

func (s *store) AppendLazy(b batch) { s.lazy++ }

type session struct {
	wal     *log
	js      *engine
	store   *store
	batches uint64
}

// ---- positives ----

func appendAfterMutation(s *session, b batch) error {
	s.js.ApplyBatch(b)
	if err := s.wal.Append(s.batches+1, b); err != nil { // want "WAL append after state mutation"
		return err
	}
	s.batches++
	return nil
}

func mutationAfterFailedAppend(s *session, b batch) error {
	err := s.wal.Append(s.batches+1, b)
	if err != nil {
		s.js.ApplyBatch(b) // want "state mutation after a failed WAL append"
		return err
	}
	s.store.AppendLazy(b)
	return nil
}

func journaledButNotApplied(s *session, b batch, skip bool) error {
	if err := s.wal.Append(s.batches+1, b); err != nil {
		return err
	}
	if skip {
		return nil // want "journaled but not applied"
	}
	s.js.ApplyBatch(b)
	return nil
}

func lazyStoreCountsAsMutation(s *session, b batch) error {
	s.store.AppendLazy(b)
	if err := s.wal.Append(s.batches+1, b); err != nil { // want "WAL append after state mutation"
		return err
	}
	s.js.ApplyBatch(b)
	return nil
}

// ---- regressions ----

// The canonical Stream ordering: append, bail on failure, then apply and
// commit. Clean.
func cleanCommitPath(s *session, b batch) error {
	if err := s.wal.Append(s.batches+1, b); err != nil {
		return err
	}
	s.store.AppendLazy(b)
	s.js.ApplyBatch(b)
	s.batches++
	return nil
}

// Journaling is conditional (recovery replay runs with the WAL detached);
// mutators after a maybe-journaled point are fine, and an unjournaled
// success return is fine.
func cleanConditionalJournal(s *session, b batch, journal bool) error {
	if journal && s.wal != nil {
		if err := s.wal.Append(s.batches+1, b); err != nil {
			return err
		}
	}
	s.js.ApplyBatch(b)
	s.batches++
	return nil
}

// Replay paths mutate without any append in the function at all: out of
// scope by construction (the invariant constrains journaled commits).
func cleanReplay(s *session, rs []batch) {
	for _, b := range rs {
		s.js.ApplyBatch(b)
		s.batches++
	}
}

// An error return straight after a failed append is the correct shape.
func cleanFailedAppendReturns(s *session, b batch) error {
	if err := s.wal.Append(s.batches+1, b); err != nil {
		return errors.Join(errors.New("journal"), err)
	}
	s.js.ApplyBatch(b)
	return nil
}

// A helper whose only job is journaling never applies; without a mutator in
// the body it is out of scope rather than "journaled but not applied".
func cleanJournalOnly(s *session, b batch) error {
	return s.wal.Append(s.batches+1, b)
}
