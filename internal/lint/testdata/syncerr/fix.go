// Fixture for the syncerr analyzer, loaded under the import path
// jetstream/internal/wal so the package sits inside the durability scope.
package fix

import "os"

// closer has the signature shape the analyzer matches.
type closer struct{}

func (closer) Close() error { return nil }
func (closer) Sync() error  { return nil }

// loud has same-named methods that return nothing: never flagged.
type loud struct{}

func (loud) Close() {}
func (loud) Sync()  {}

// multi returns more than one value: not the durability shape, not flagged.
type multi struct{}

func (multi) Close() (int, error) { return 0, nil }

func silentDiscards(f *os.File, c closer) {
	f.Close()       // want "Close discards its error"
	c.Sync()        // want "Sync discards its error"
	defer f.Close() // want "defer Close discards its error"
	go c.Close()    // want "go Close discards its error"
	defer func() {
		c.Sync() // want "Sync discards its error"
	}()
}

func explicitDiscards(f *os.File, c closer) {
	_ = f.Close() // allowed: visible, greppable decision
	_ = c.Sync()
}

func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func notTheShape(l loud, m multi) {
	l.Close() // returns nothing: fine
	l.Sync()
	if _, err := m.Close(); err != nil {
		_ = err
	}
}

func suppressedDiscard(f *os.File) {
	//jetlint:allow syncerr -- demonstrating the escape hatch
	f.Close()
}
