// Fixture for the atomicmix analyzer: mixed atomic/plain access (rule 1) and
// copies of sync/atomic value types (rule 2).
package fix

import "sync/atomic"

// Counter mixes function-style atomics on hits with plain access elsewhere.
type Counter struct {
	hits uint64
	name string
}

// Inc establishes that hits is an atomically accessed location.
func (c *Counter) Inc() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *Counter) Bad() uint64 {
	return c.hits // want "plain access of field hits"
}

func (c *Counter) BadStore(v uint64) {
	c.hits = v // want "plain access of field hits"
}

func (c *Counter) Good() uint64 {
	return atomic.LoadUint64(&c.hits)
}

// NewCounter initializes hits in a composite literal: the value is not yet
// shared, so no diagnostic.
func NewCounter() *Counter {
	return &Counter{hits: 0, name: "fixture"}
}

// Name touches only the untracked field.
func (c *Counter) Name() string {
	return c.name
}

var total uint64

func AddTotal() {
	atomic.AddUint64(&total, 1)
}

func ReadTotal() uint64 {
	return total // want "plain access of variable total"
}

// LocalOnly: locals are governed by escape analysis and -race, not rule 1.
// Regression test: the plain read of x below must not be flagged.
func LocalOnly() uint64 {
	var x uint64
	atomic.AddUint64(&x, 1)
	return x
}

// Gauge exercises rule 2: typed atomics must not be copied.
type Gauge struct {
	val atomic.Uint64
}

// Get calls a method on the field: method selection is not a copy.
func (g *Gauge) Get() uint64 {
	return g.val.Load()
}

func Snapshot(g *Gauge) atomic.Uint64 {
	return g.val // want "copy of sync/atomic.Uint64 value"
}

func CopyToLocal(g *Gauge) uint64 {
	v := g.val // want "copy of sync/atomic.Uint64 value"
	return v.Load()
}

// TakeAddr passes the location, not the value: allowed.
func TakeAddr(g *Gauge) *atomic.Uint64 {
	return &g.val
}

func RangeCopy(gs []atomic.Uint64) uint64 {
	var sum uint64
	for _, g := range gs { // want "range copies sync/atomic.Uint64 values"
		sum += g.Load()
	}
	return sum
}

func RangeByIndex(gs []atomic.Uint64) uint64 {
	var sum uint64
	for i := range gs {
		sum += gs[i].Load()
	}
	return sum
}
