// Fixture for the hotpathalloc analyzer: every banned allocation-inducing
// construct inside //jetlint:hotpath functions, the error-path and
// panic-path exemptions, the capacity-hinted append escape, and unannotated
// functions as the baseline regression.
package queue

import (
	"errors"
	"fmt"
	"sort"
)

type event struct {
	target int
	weight float64
}

type ring struct {
	slots   []event
	scratch []event
	byKey   map[int]event
}

// ---- positives ----

//jetlint:hotpath
func makeInHotPath(r *ring) []event {
	out := make([]event, 0, len(r.slots)) // want "make allocates per call"
	return out
}

//jetlint:hotpath
func literalsInHotPath(r *ring, e event) {
	m := map[int]event{e.target: e} // want "map literal allocates"
	s := []event{e}                 // want "slice literal allocates"
	p := &event{target: 1}          // want "heap-allocates per call"
	q := new(event)                 // want "heap-allocates per call"
	_, _, _, _ = m, s, p, q
}

//jetlint:hotpath
func unhintedAppend(r *ring, e event) {
	r.slots = append(r.slots, e) // want "append may grow its backing array"
}

//jetlint:hotpath
func capturingClosure(r *ring) func() int {
	f := func() int { return len(r.slots) } // want "captures r and allocates a closure"
	return f
}

//jetlint:hotpath
func interfaceBoxing(r *ring) {
	sort.Slice(r.slots, func(i, j int) bool { // want "passing \\[\\]event to an interface parameter boxes" "captures r and allocates a closure"
		return r.slots[i].target < r.slots[j].target
	})
}

type stats struct{ rounds int }

func sink(v any) {}

//jetlint:hotpath
func valueBoxing(s stats) {
	sink(s) // want "passing stats to an interface parameter boxes"
}

//jetlint:hotpath
func fmtAndConcat(name string, n int) string {
	msg := fmt.Sprintf("%s-%d", name, n) // want "fmt.Sprintf allocates"
	return msg + "!"                     // want "string concatenation allocates"
}

// ---- exemptions and regressions ----

// Error paths may allocate freely: the formatting only runs when the batch
// is rejected, not per event.
//
//jetlint:hotpath
func errorPathExempt(r *ring, e event) error {
	if e.target < 0 {
		return fmt.Errorf("queue: negative target %d in %v", e.target, []int{e.target})
	}
	if e.target >= len(r.slots) {
		panic(fmt.Sprintf("queue: target %d out of range", e.target))
	}
	r.slots[e.target] = e
	return nil
}

// Appending into a buffer resliced from a reused allocation is the
// sanctioned pattern — the backing array is owned by the ring.
//
//jetlint:hotpath
func hintedAppendExempt(r *ring, es []event) int {
	batch := r.scratch[:0]
	for _, e := range es {
		batch = append(batch, e)
	}
	return len(batch)
}

// Non-capturing literals compile to static functions: no closure allocation.
//
//jetlint:hotpath
func nonCapturingLiteralExempt(r *ring) {
	cmp := func(a, b event) bool { return a.target < b.target }
	if len(r.slots) > 1 && cmp(r.slots[1], r.slots[0]) {
		r.slots[0], r.slots[1] = r.slots[1], r.slots[0]
	}
}

// Pointers, funcs, and interfaces passed to interface parameters do not box.
//
//jetlint:hotpath
func referenceArgsExempt(r *ring, err error) {
	sink(r)
	sink(err)
	sink(nil)
}

// Plain struct value literals live on the stack.
//
//jetlint:hotpath
func valueLiteralExempt(r *ring, t int) {
	r.slots[t] = event{target: t}
}

// The sanctioned once-per-call allocation: documented and suppressed.
//
//jetlint:hotpath
func sanctionedAllocation(r *ring) []event {
	out := make([]event, len(r.slots)) //jetlint:allow hotpathalloc -- the returned snapshot is this call's one sanctioned allocation
	copy(out, r.slots)
	return out
}

// Unannotated functions may allocate however they like.
func unannotatedBaseline(r *ring) map[int]event {
	m := make(map[int]event, len(r.slots))
	for _, e := range r.slots {
		m[e.target] = e
	}
	var errs []error
	errs = append(errs, errors.New("fine"))
	_ = fmt.Sprint(errs)
	return m
}
