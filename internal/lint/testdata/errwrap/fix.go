// Fixture for the errwrap analyzer, loaded under the import path jetstream
// so exported functions form the public boundary for rule 2.
package fix

import (
	"errors"
	"fmt"
	"strconv"
)

var errInternal = errors.New("fix: internal")

// wrapHelper severs the chain with %v: rule 1 fires even in unexported code.
func wrapHelper(err error) error {
	return fmt.Errorf("ctx: %v", err) // want "fmt.Errorf has an error argument but no %w"
}

func GoodWrap(err error) error {
	return fmt.Errorf("ctx: %w", err)
}

// NoErrorArg formats only non-error values: no %w needed.
func NoErrorArg(n int) error {
	return fmt.Errorf("bad count: %d (max %d)", n, 10)
}

// EscapedPercent: %%w is a literal, not a verb, so the chain is still severed.
func EscapedPercent(err error) error {
	return fmt.Errorf("odd: %%w %v", err) // want "fmt.Errorf has an error argument but no %w"
}

func Parse(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err // want "exported Parse returns the bare error of strconv.Atoi"
	}
	return n, nil
}

func ParseTail(s string) (int, error) {
	return strconv.Atoi(s) // want "exported ParseTail returns the bare error of strconv.Atoi"
}

func ParseWrapped(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("parse %q: %w", s, err)
	}
	return n, nil
}

// Mint returns an error the package itself created: not a pass-through.
func Mint(v int) error {
	if v < 0 {
		return errInternal
	}
	return nil
}

// New-style constructors from errors are wrapping-exempt.
func MintInline(v int) error {
	if v < 0 {
		return errors.New("fix: negative")
	}
	return nil
}

// parseInternal is unexported: rule 2 only guards the exported boundary.
func parseInternal(s string) (int, error) {
	return strconv.Atoi(s)
}

// Reassigned clears the taint by overwriting err with a wrapped value before
// returning: regression test for the source-order tracking.
func Reassigned(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		err = fmt.Errorf("reassigned: %w", err)
		return 0, err
	}
	return n, nil
}
