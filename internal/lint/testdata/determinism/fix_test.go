// In-package test file: the determinism analyzer exempts _test.go files, so
// the wall-clock and global-rand uses below must produce no diagnostics.
package engine

import (
	"math/rand"
	"time"
)

func testClock() time.Time {
	return time.Now()
}

func testJitter() float64 {
	return rand.Float64()
}
