// Fixture for the determinism analyzer, loaded under the import path
// jetstream/internal/engine so the package falls inside the restricted set.
package engine

import (
	"math/rand"
	"time"
)

func WallClock() time.Time {
	return time.Now() // want "time.Now is wall-clock-dependent"
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since is wall-clock-dependent"
}

func GlobalRand() float64 {
	return rand.Float64() // want "rand.Float64 draws from the unseeded global generator"
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle draws from the unseeded global generator"
}

// Seeded routes randomness through an explicitly seeded generator: the
// constructors are allowed and methods on the injected *rand.Rand are fine.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Injected consumes a generator built by the caller.
func Injected(rng *rand.Rand) int {
	return rng.Intn(10)
}

func TimerRace(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second): // want "time.After is wall-clock-dependent" "select on a timer channel"
		return -1
	}
}

// Allowed demonstrates the justified escape hatch: the directive on the line
// above the call suppresses the diagnostic.
func Allowed() time.Time {
	//jetlint:allow determinism -- operator-facing timestamp only, never enters the event order
	return time.Now()
}

// DataChannel selects on an ordinary channel: no diagnostic.
func DataChannel(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

//jetlint:allow determinism // want "missing justification"
func Unjustified() int {
	return 0
}
