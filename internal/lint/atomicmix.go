package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicmix flags mixed atomic/plain access to the same memory location.
//
// Rule 1: any struct field or package-level variable whose address is ever
// passed to a sync/atomic function (atomic.AddUint64(&x, ...) and friends)
// must be accessed through sync/atomic everywhere in the module. A plain
// read or write of such a location is a data race that -race only reports
// when the scheduler happens to interleave the two sides; the type system
// sees it always. Taking the location's address (to pass to another atomic
// call) is not a plain access, and composite-literal initialization is
// exempt: the enclosing object is not yet shared.
//
// Rule 2: a value of one of the sync/atomic types (atomic.Uint64, ...) must
// not be copied: copies carry the value but not the location, so updates to
// the copy are invisible to the readers of the original. Method calls and
// address-taking are the only sanctioned uses.
//
// The analysis is module-wide: an atomic write in one package poisons plain
// access in every other.
var Atomicmix = &Analyzer{
	Name: "atomicmix",
	Doc:  "forbid plain loads/stores of fields and variables that are accessed through sync/atomic",
	Run:  runAtomicmix,
}

// atomicAddrFuncs are the sync/atomic package functions whose first argument
// is the address of the accessed location.
var atomicAddrFuncs = func() map[string]bool {
	m := make(map[string]bool)
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			m[op+ty] = true
		}
	}
	return m
}()

// atomicTypeNames are the value types of sync/atomic whose copies rule 2
// forbids.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

// isAtomicValueType reports whether t is one of the sync/atomic value types.
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicTypeNames[obj.Name()]
}

func runAtomicmix(pass *Pass) {
	// Phase 1: collect every field/variable whose address reaches a
	// sync/atomic function anywhere in the module.
	atomicObjs := make(map[types.Object]token.Pos)
	for _, pkg := range pass.Mod.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				obj := callee(pkg.Info, call)
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicAddrFuncs[fn.Name()] {
					return true
				}
				un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					return true
				}
				if o := refObject(pkg.Info, un.X); o != nil && isSharedLocation(o) {
					if _, seen := atomicObjs[o]; !seen {
						atomicObjs[o] = call.Pos()
					}
				}
				return true
			})
		}
	}

	// Phase 2: flag plain accesses of those locations, and plain copies of
	// sync/atomic typed values, everywhere.
	for _, pkg := range pass.Mod.Pkgs {
		for _, f := range pkg.Files {
			checkAtomicFile(pass, pkg, f, atomicObjs)
		}
	}
}

// isSharedLocation reports whether o is a struct field or package-level
// variable — the locations rule 1 tracks. Locals are governed by ordinary
// escape reasoning and left to -race.
func isSharedLocation(o types.Object) bool {
	v, ok := o.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func checkAtomicFile(pass *Pass, pkg *Package, f *ast.File, atomicObjs map[types.Object]token.Pos) {
	walkStack(f, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.Ident:
			checkAtomicCopy(pass, pkg, n, stack)
			obj := pkg.Info.Uses[n]
			if obj == nil {
				return
			}
			if _, tracked := atomicObjs[obj]; !tracked {
				return
			}
			// The reported node is the full selector when the ident is its
			// field: for x.f, judge the context of x.f, not of f.
			node := ast.Expr(n)
			up := stack
			if sel, ok := parentAt(stack, 0).(*ast.SelectorExpr); ok && sel.Sel == n {
				node = sel
				up = stack[:len(stack)-1]
			}
			if plainAccessExempt(pkg, node, up) {
				return
			}
			pass.Reportf(n.Pos(), "plain access of %s, which is accessed with sync/atomic at %s; use atomic loads/stores or copy after a synchronization barrier",
				objDesc(obj), pass.Mod.Fset.Position(atomicObjs[obj]))
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			checkAtomicCopy(pass, pkg, n.(ast.Expr), stack)
		case *ast.RangeStmt:
			if n.Value != nil {
				if tv, ok := pkg.Info.Types[n.Value]; ok && isAtomicValueType(tv.Type) {
					pass.Reportf(n.Value.Pos(), "range copies %s values; iterate by index and use methods on the element", tv.Type)
				} else if id, ok := n.Value.(*ast.Ident); ok {
					if d := pkg.Info.Defs[id]; d != nil && isAtomicValueType(d.Type()) {
						pass.Reportf(id.Pos(), "range copies %s values; iterate by index and use methods on the element", d.Type())
					}
				}
			}
		}
	})
}

// parentAt returns the i-th enclosing node (0 = immediate parent).
func parentAt(stack []ast.Node, i int) ast.Node {
	if len(stack) <= i {
		return nil
	}
	return stack[len(stack)-1-i]
}

// plainAccessExempt reports whether node (a reference to a tracked location,
// with stack its ancestors) is one of the sanctioned non-atomic uses:
// address-taking and composite-literal initialization.
func plainAccessExempt(pkg *Package, node ast.Expr, stack []ast.Node) bool {
	for len(stack) > 0 {
		if _, ok := parentAt(stack, 0).(*ast.ParenExpr); !ok {
			break
		}
		stack = stack[:len(stack)-1]
	}
	if un, ok := parentAt(stack, 0).(*ast.UnaryExpr); ok && un.Op == token.AND {
		return true // &x.f: address flows to an atomic call, not a data access
	}
	if kv, ok := parentAt(stack, 0).(*ast.KeyValueExpr); ok && kv.Key == node {
		if cl, ok := parentAt(stack, 1).(*ast.CompositeLit); ok {
			if tv, ok := pkg.Info.Types[cl]; ok {
				if _, isStruct := tv.Type.Underlying().(*types.Struct); isStruct {
					return true // T{f: 0}: initialization before the value is shared
				}
			}
		}
	}
	return false
}

// checkAtomicCopy flags e when it denotes a sync/atomic typed value used in
// a copying position (rule 2).
func checkAtomicCopy(pass *Pass, pkg *Package, e ast.Expr, stack []ast.Node) {
	tv, ok := pkg.Info.Types[e]
	if !ok || !tv.IsValue() || !isAtomicValueType(tv.Type) {
		return
	}
	switch parent := parentAt(stack, 0).(type) {
	case *ast.SelectorExpr:
		// x.f.Load(): method selection on x.f, not a copy. The Sel ident of
		// a selector is covered by the selector node itself.
		if parent.X == e || parent.Sel == e {
			return
		}
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return // &x.f: explicit address, fine
		}
	}
	pass.Reportf(e.Pos(), "copy of %s value: atomic values must not be copied; call its methods or take its address", tv.Type)
}

// objDesc names an object for a diagnostic: "field T.f" or "variable v".
func objDesc(o types.Object) string {
	v := o.(*types.Var)
	if v.IsField() {
		return "field " + v.Name()
	}
	return "variable " + v.Name()
}
