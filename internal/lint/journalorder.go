package lint

import (
	"go/ast"
	"go/types"
)

// Journalorder machine-checks the PR 6 durability invariant on the commit
// paths: the write-ahead append must come first, and what was journaled must
// actually be applied. Concretely, in any function of the root package,
// internal/host, or internal/service that both appends to a WAL and mutates
// durable state (System.applyBatch, host.Session.Stream and friends):
//
//  1. no state mutation may precede a WAL append on any path — replay after
//     a crash between the two would double-apply the batch;
//  2. after a WAL append fails (its error is non-nil on the taken edge),
//     no state mutation may run — the log no longer describes the state;
//  3. a success return must not leave a batch journaled but unapplied: the
//     apply/commit has to post-dominate the append on success paths.
//
// Recognized WAL appends: a method named Append called through a field or
// variable named "wal" (s.wal.Append(seq, b)), and the root System's
// journal() helper. Recognized mutators, by method name rooted anywhere but
// the wal chain: ApplyBatch, RunInitial, AppendLazy, Record, Expire,
// expireInto, windowCommit. Functions without an append (the recovery
// replay paths, which mutate with journaling intentionally off) are out of
// scope — the invariant constrains journaled commits, not replays.
var Journalorder = &Analyzer{
	Name: "journalorder",
	Doc:  "WAL append must precede state mutation, and journaled batches must be applied on success paths",
	Run:  runJournalorder,
}

var journalMutators = map[string]bool{
	"ApplyBatch": true, "RunInitial": true, "AppendLazy": true,
	"Record": true, "Expire": true, "expireInto": true, "windowCommit": true,
}

// classifyJournalCall sorts a call into append / mutator / neither.
func classifyJournalCall(call *ast.CallExpr) (isAppend, isMutator bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false, false
	}
	chain := renderRef(sel.X)
	onWal := chain == "wal" || lastSegment(chain) == "wal"
	name := sel.Sel.Name
	if name == "journal" || (name == "Append" && onWal) {
		return true, false
	}
	return false, journalMutators[name] && !onWal
}

func lastSegment(chain string) string {
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i] == '.' {
			return chain[i+1:]
		}
	}
	return chain
}

// journalStat is the three-point lattice for "has X happened on this path".
type journalStat int8

const (
	jsNo journalStat = iota
	jsMaybe
	jsYes
)

func mergeJournalStat(a, b journalStat) journalStat {
	if a == b {
		return a
	}
	return jsMaybe
}

// journalState is the dataflow value. errObj carries the variable holding
// the most recent append's error so the edge refinement can mark the
// failed-append path.
type journalState struct {
	journaled journalStat
	mutated   journalStat
	failed    bool         // an append failed on this path
	errObj    types.Object // pending: last append's unexamined error
}

func runJournalorder(pass *Pass) {
	scoped := lockScopedPkgs(pass.Mod) // same packages own the commit paths
	for _, pkg := range pass.Mod.Pkgs {
		if !scoped[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			funcsOfFile(f, func(fd *ast.FuncDecl) {
				if journalInScope(fd.Body) {
					checkJournalFunc(pass, pkg, fd)
				}
			})
		}
	}
}

// journalInScope reports whether the function body contains both an append
// and a mutator outside nested func literals — the shape of a commit path.
func journalInScope(body *ast.BlockStmt) bool {
	hasAppend, hasMut := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			a, m := classifyJournalCall(call)
			hasAppend = hasAppend || a
			hasMut = hasMut || m
		}
		return true
	})
	return hasAppend && hasMut
}

func checkJournalFunc(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	g := BuildCFG(fd.Body)
	hasErr, nresults := returnsError(pkg.Info, fd)
	flow := Flow[journalState]{
		Entry: journalState{},
		Transfer: func(b *Block, in journalState) journalState {
			return journalTransfer(pkg, b, in, nil, false, 0)
		},
		// Refine marks the failed-append path: along the edge where the
		// append's error variable is non-nil, any mutation is corruption.
		Refine: func(e *Edge, out journalState) journalState {
			if out.errObj == nil {
				return out
			}
			fact, ok := refineCond(pkg.Info, e)
			if !ok || fact.obj != out.errObj || !fact.isNilCmp {
				return out
			}
			out.errObj = nil
			if !fact.value { // the error is non-nil on this edge
				out.failed = true
			}
			return out
		},
		Merge: func(a, b journalState) journalState {
			s := journalState{
				journaled: mergeJournalStat(a.journaled, b.journaled),
				mutated:   mergeJournalStat(a.mutated, b.mutated),
				failed:    a.failed || b.failed,
			}
			if a.errObj == b.errObj {
				s.errObj = a.errObj
			}
			return s
		},
		Equal: func(a, b journalState) bool { return a == b },
	}
	in := Solve(g, flow)
	for _, b := range g.Blocks {
		state, ok := in[b]
		if !ok {
			continue
		}
		journalTransfer(pkg, b, state, pass, hasErr, nresults)
	}
}

// journalTransfer interprets one block; with pass set it replays once with
// reporting. Nested func literals are opaque (they do not run here).
func journalTransfer(pkg *Package, b *Block, in journalState, pass *Pass, hasErr bool, nresults int) journalState {
	state := in
	for _, node := range b.Nodes {
		switch n := node.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				state = applyJournalCall(state, call, nil, pass)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					var bind types.Object
					if len(n.Lhs) == 1 {
						if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
							if bind = pkg.Info.Defs[id]; bind == nil {
								bind = pkg.Info.Uses[id]
							}
						}
					}
					state = applyJournalCall(state, call, bind, pass)
				}
			}
		case *ast.ReturnStmt:
			if pass != nil {
				success := !hasErr || !isErrorReturn(n, nresults)
				if success && state.journaled == jsYes && state.mutated == jsNo {
					pass.Reportf(n.Pos(), "success return leaves the batch journaled but not applied; the commit must post-dominate the WAL append")
				}
			}
		}
	}
	return state
}

func applyJournalCall(state journalState, call *ast.CallExpr, bind types.Object, pass *Pass) journalState {
	isAppend, isMutator := classifyJournalCall(call)
	switch {
	case isAppend:
		if pass != nil && state.mutated != jsNo {
			pass.Reportf(call.Pos(), "WAL append after state mutation; a crash between them replays a half-applied batch — append before every mutator")
		}
		state.journaled = jsYes
		state.errObj = bind // nil when the error is dropped/inspected inline
		state.failed = false
	case isMutator:
		if pass != nil && state.failed {
			pass.Reportf(call.Pos(), "state mutation after a failed WAL append; the log no longer describes this state — return the append error first")
		}
		state.mutated = jsYes
	}
	return state
}
