package lint

import (
	"go/ast"
	"go/types"
)

// Panicfree forbids panic, log.Fatal*, and os.Exit in the bodies of exported
// functions and methods of the public boundary: the module root package and
// internal/host. The public API's contract (established in PR 1) is that
// caller-supplied input is rejected with errors, never a crash; a panic in
// an exported entry point takes the whole embedding process down.
//
// Scope is deliberately non-transitive: only calls appearing directly in the
// exported function's body (including function literals defined there) are
// flagged. Panics in unexported helpers are internal invariant assertions —
// reachable only through validated state, and auditing them is a
// whole-program reachability problem this analyzer does not attempt.
// Methods count as exported only when both the method name and the receiver
// type name are exported.
var Panicfree = &Analyzer{
	Name: "panicfree",
	Doc:  "forbid panic/log.Fatal/os.Exit directly in exported functions of the public boundary",
	Run:  runPanicfree,
}

func runPanicfree(pass *Pass) {
	targets := map[string]bool{
		pass.Mod.Path:                    true,
		pass.Mod.Path + "/internal/host": true,
	}
	for _, pkg := range pass.Mod.Pkgs {
		if !targets[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !exportedBoundary(fd) {
					continue
				}
				checkPanicFreeBody(pass, pkg, fd)
			}
		}
	}
}

// exportedBoundary reports whether fd is part of the exported API surface.
func exportedBoundary(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	// Methods: the receiver's named type must be exported too.
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func checkPanicFreeBody(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch obj := callee(pkg.Info, call).(type) {
		case *types.Builtin:
			if obj.Name() == "panic" {
				pass.Reportf(call.Pos(), "panic in exported %s; the public boundary must reject bad input with an error", fd.Name.Name)
			}
		case *types.Func:
			if obj.Pkg() == nil {
				return true
			}
			switch p, n := obj.Pkg().Path(), obj.Name(); {
			case p == "log" && (n == "Fatal" || n == "Fatalf" || n == "Fatalln"):
				pass.Reportf(call.Pos(), "log.%s in exported %s terminates the embedding process; return an error instead", n, fd.Name.Name)
			case p == "os" && n == "Exit":
				pass.Reportf(call.Pos(), "os.Exit in exported %s terminates the embedding process; return an error instead", fd.Name.Name)
			}
		}
		return true
	})
}
