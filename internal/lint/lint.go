// Package lint implements jetlint, a static-analysis suite enforcing the
// repo-specific invariants that go vet and staticcheck cannot see:
//
//   - atomicmix: a field or package-level variable accessed through
//     sync/atomic anywhere in the module must never be read or written with
//     a plain load/store — -race only catches the mix when the schedule
//     cooperates, the analyzer catches it always.
//   - determinism: the simulated-timeline packages (engine, sim, mem, noc,
//     queue, event) must not consult wall-clock time or unseeded global
//     randomness; golden-trace replay and checkpoint difftests depend on
//     bit-identical re-execution.
//   - panicfree: exported functions of the public boundary (the root package
//     and internal/host) must not call panic, log.Fatal*, or os.Exit
//     directly; caller-supplied input is rejected with errors.
//   - errwrap: fmt.Errorf with an error argument must use %w, and exported
//     root-package functions must not return bare errors minted by other
//     packages, so callers can errors.Is/As across the public boundary.
//   - syncerr: the durability-bearing packages (root, internal/wal,
//     cmd/jetstream) must not silently discard the error of Close or Sync; a
//     dropped fsync error is a dropped durability guarantee.
//
// Three analyzers are flow-sensitive, built on the intra-procedural CFG and
// worklist dataflow solver in cfg.go/dataflow.go:
//
//   - lockdiscipline: every Lock/RLock (and the System acquire/release CAS
//     guard) is released on all paths out of the function, never acquired
//     twice on one path, and never held across a return.
//   - hotpathalloc: functions annotated //jetlint:hotpath must not contain
//     allocation-inducing constructs on paths that reach a successful exit.
//   - journalorder: on commit paths, the WAL append precedes every state
//     mutation, nothing mutates after a failed append, and journaled batches
//     are applied before a successful return.
//
// A diagnostic can be suppressed with a justified escape hatch on the same
// line or the line above, naming one or more analyzers:
//
//	//jetlint:allow determinism -- wall clock feeds the operator log only
//	//jetlint:allow lockdiscipline,hotpathalloc -- reason
//
// The justification after "--" is mandatory; a directive without one is
// itself reported, as is a stale directive — one naming an analyzer that ran
// but reported nothing on that line, which would otherwise rot into a blanket
// waiver. Everything here is standard library only (go/parser, go/ast,
// go/types); see load.go for how the module is type-checked offline.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer run over the whole module. Analyzers iterate
// pass.Mod.Pkgs themselves: module-scope properties (atomicmix) need every
// package at once, and package-scope ones just filter.
type Pass struct {
	Mod    *Module
	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Mod.Fset.Position(pos).Filename, "_test.go")
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Atomicmix, Determinism, Panicfree, Errwrap, Syncerr,
		Lockdiscipline, Hotpathalloc, Journalorder,
	}
}

// Run executes the analyzers over m, applies //jetlint:allow suppressions,
// and returns the surviving diagnostics sorted by position. Malformed
// directives (no "-- justification") are reported under the pseudo-analyzer
// "jetlint" and suppress nothing.
func Run(m *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		name := a.Name
		ran[name] = true
		pass := &Pass{Mod: m, report: func(pos token.Pos, msg string) {
			p := m.Fset.Position(pos)
			diags = append(diags, Diagnostic{
				Analyzer: name, Pos: p, File: p.Filename, Line: p.Line, Column: p.Column, Message: msg,
			})
		}}
		a.Run(pass)
	}

	allows, malformed := collectDirectives(m)
	kept := diags[:0]
	for _, d := range diags {
		if suppressed(allows, d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = append(kept, malformed...)
	diags = append(diags, staleDirectives(allows, ran)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directive is one parsed //jetlint:allow comment. used records, per named
// analyzer, whether the directive actually suppressed a diagnostic — the
// input to stale-directive detection.
type directive struct {
	analyzers map[string]bool
	pos       Diagnostic // position fields only, for stale reporting
	used      map[string]bool
}

const allowPrefix = "//jetlint:allow"

// collectDirectives parses every //jetlint:allow comment in the module into
// a file -> line -> directives index, and returns diagnostics for malformed
// ones (missing the mandatory "-- justification").
func collectDirectives(m *Module) (map[string]map[int][]*directive, []Diagnostic) {
	allows := make(map[string]map[int][]*directive)
	var malformed []Diagnostic
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, allowPrefix)
					if !ok {
						continue
					}
					p := m.Fset.Position(c.Pos())
					// Tolerate a trailing line comment (used by fixtures).
					if i := strings.Index(text, " // "); i >= 0 {
						text = text[:i]
					}
					names, reason, found := strings.Cut(text, "--")
					names = strings.TrimSpace(names)
					if !found || strings.TrimSpace(reason) == "" || names == "" {
						malformed = append(malformed, Diagnostic{
							Analyzer: "jetlint", Pos: p, File: p.Filename, Line: p.Line, Column: p.Column,
							Message: `jetlint:allow directive missing justification: want "//jetlint:allow <analyzer> -- reason"`,
						})
						continue
					}
					d := &directive{
						analyzers: make(map[string]bool),
						used:      make(map[string]bool),
						pos: Diagnostic{
							Pos: p, File: p.Filename, Line: p.Line, Column: p.Column,
						},
					}
					for _, n := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' }) {
						d.analyzers[n] = true
					}
					byLine := allows[p.Filename]
					if byLine == nil {
						byLine = make(map[int][]*directive)
						allows[p.Filename] = byLine
					}
					byLine[p.Line] = append(byLine[p.Line], d)
				}
			}
		}
	}
	return allows, malformed
}

// suppressed reports whether a directive on d's line or the line above names
// d's analyzer, and marks every such directive as used for that analyzer.
func suppressed(allows map[string]map[int][]*directive, d Diagnostic) bool {
	byLine := allows[d.File]
	if byLine == nil {
		return false
	}
	hit := false
	for _, line := range []int{d.Line, d.Line - 1} {
		for _, dir := range byLine[line] {
			if dir.analyzers[d.Analyzer] {
				if dir.used == nil {
					dir.used = make(map[string]bool)
				}
				dir.used[d.Analyzer] = true
				hit = true
			}
		}
	}
	return hit
}

// staleDirectives reports every well-formed allow directive naming an
// analyzer that ran in this invocation but had nothing to suppress on the
// directive's line — dead waivers that would silently cover future code.
// Analyzers outside the run set are left alone: a partial run (driver
// flags) cannot tell whether the directive still earns its keep.
func staleDirectives(allows map[string]map[int][]*directive, ran map[string]bool) []Diagnostic {
	var stale []Diagnostic
	for _, byLine := range allows {
		for _, dirs := range byLine {
			for _, dir := range dirs {
				names := make([]string, 0, len(dir.analyzers))
				for name := range dir.analyzers {
					if ran[name] && !dir.used[name] {
						names = append(names, name)
					}
				}
				sort.Strings(names)
				for _, name := range names {
					d := dir.pos
					d.Analyzer = "jetlint"
					d.Message = fmt.Sprintf("stale jetlint:allow: %s reports nothing on this line; delete the directive or the name", name)
					stale = append(stale, d)
				}
			}
		}
	}
	return stale
}

// ---- shared AST/type helpers ----

// walkStack traverses root, calling fn for every node with its ancestor
// stack (outermost first, not including n itself).
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// callee resolves the object a call invokes: a *types.Func for functions and
// methods, a *types.Builtin for builtins, nil for indirect calls and
// conversions.
func callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

// calleeFromPkg reports whether call invokes the named package-level
// function of the given import path.
func calleeFromPkg(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// refObject resolves the variable or field an expression denotes: x, x.f,
// pkg.V. Returns nil for anything else (index expressions, calls, ...).
func refObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}
