package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lockdiscipline is the first CFG-based analyzer: every Lock/RLock acquired
// in a function must be released on all paths out of it, either by a defer
// or explicitly before each return; no path may acquire the same lock twice;
// and no function may return while (possibly) holding a lock. The repo's
// concurrency story depends on it twice over: the service layer serializes
// tenants with plain sync.Mutex pairs (PR 8), and the root System guards
// ApplyBatch/Sync/Compact/Close with the acquire/release CAS pair behind
// ErrConcurrentApply — a leaked acquisition wedges the tenant forever, which
// no unit test notices until the second request hangs.
//
// Tracked acquisitions, keyed by the receiver chain as written ("s.mu",
// "t.mu"), intra-procedurally per function (closures are analyzed as their
// own functions; closures deferred at the top level contribute their
// releases to the enclosing function's exit):
//
//   - (*sync.Mutex).Lock / (*sync.RWMutex).Lock / RLock: unconditional
//   - TryLock / TryRLock: held only on the true edge of the result
//   - a method named acquire returning error: held only on the err == nil
//     edge (the System CAS guard); a method named release is its unlock
//
// Intentional locked-handoff returns are suppressed the usual way:
//
//	//jetlint:allow lockdiscipline -- reason
//
// Scope: the packages that own locks with cross-request lifetime — the
// module root, internal/service, and internal/host.
var Lockdiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "every lock acquired must be released on all paths; no double-lock; no return while holding",
	Run:  runLockdiscipline,
}

func lockScopedPkgs(m *Module) map[string]bool {
	return map[string]bool{
		m.Path:                       true,
		m.Path + "/internal/service": true,
		m.Path + "/internal/host":    true,
	}
}

// lockStat is the per-key lattice value.
type lockStat int8

const (
	lockUnheld lockStat = iota // also encoded by key absence
	lockHeld
	lockMaybe // held on some predecessor paths only
	lockCond  // held iff condVar tests a certain way (TryLock / acquire)
)

// lockVal is one lock's state: its lattice point, the variable that decides
// a conditional acquisition, and whether a deferred release is pending.
type lockVal struct {
	stat     lockStat
	condObj  types.Object // for lockCond: the bool result or error variable
	condErr  bool         // condObj is an error (held iff nil), not a bool
	deferred bool         // a defer releases this key at function exit
}

// lockState maps key → value. Treated as immutable: all transitions copy.
type lockState map[string]lockVal

func (s lockState) with(key string, v lockVal) lockState {
	n := make(lockState, len(s)+1)
	for k, old := range s {
		n[k] = old
	}
	if v.stat == lockUnheld && !v.deferred {
		delete(n, key)
	} else {
		n[key] = v
	}
	return n
}

func lockStateEqual(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av != bv {
			return false
		}
	}
	return true
}

func lockStateMerge(a, b lockState) lockState {
	n := make(lockState, len(a))
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			bv = lockVal{stat: lockUnheld}
		}
		n[k] = mergeLockVal(av, bv)
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			n[k] = mergeLockVal(lockVal{stat: lockUnheld}, bv)
		}
	}
	for k, v := range n {
		if v.stat == lockUnheld && !v.deferred {
			delete(n, k)
		}
	}
	return n
}

func mergeLockVal(a, b lockVal) lockVal {
	v := lockVal{deferred: a.deferred && b.deferred}
	switch {
	case a.stat == b.stat && a.condObj == b.condObj:
		v.stat, v.condObj, v.condErr = a.stat, a.condObj, a.condErr
	case a.stat == lockUnheld && b.stat == lockUnheld:
		v.stat = lockUnheld
	case a.stat == lockHeld && b.stat == lockHeld:
		v.stat = lockHeld
	default:
		// Mixed held/unheld/conditional predecessors: possibly held.
		v.stat = lockMaybe
	}
	return v
}

// lockOp is one recognized lock-related call.
type lockOp struct {
	key     string // receiver chain + mode ("s.mu", "s.mu[R]", "s[cas]")
	chain   string // receiver chain for messages
	kind    int    // opLock..opRelease
	condErr bool   // conditional op reports via error rather than bool
}

const (
	opLock    = iota // unconditional acquisition
	opTryLock        // conditional acquisition (bool / error result)
	opUnlock
)

// classifyLockOp recognizes a call as a lock operation. Mutex methods are
// matched by resolving to package sync; the CAS guard by the local
// acquire/release naming convention with the matching signature.
func classifyLockOp(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	chain := renderRef(sel.X)
	if chain == "" {
		return lockOp{}, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil {
		return lockOp{}, false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
		switch name {
		case "Lock":
			return lockOp{key: chain, chain: chain, kind: opLock}, true
		case "RLock":
			return lockOp{key: chain + "[R]", chain: chain + " (read)", kind: opLock}, true
		case "TryLock":
			return lockOp{key: chain, chain: chain, kind: opTryLock}, true
		case "TryRLock":
			return lockOp{key: chain + "[R]", chain: chain + " (read)", kind: opTryLock}, true
		case "Unlock":
			return lockOp{key: chain, chain: chain, kind: opUnlock}, true
		case "RUnlock":
			return lockOp{key: chain + "[R]", chain: chain + " (read)", kind: opUnlock}, true
		}
		return lockOp{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return lockOp{}, false
	}
	switch name {
	case "acquire":
		if sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type()) {
			return lockOp{key: chain + "[cas]", chain: chain + ".acquire", kind: opTryLock, condErr: true}, true
		}
	case "release":
		if sig.Results().Len() == 0 {
			return lockOp{key: chain + "[cas]", chain: chain + ".acquire", kind: opUnlock}, true
		}
	}
	return lockOp{}, false
}

func runLockdiscipline(pass *Pass) {
	scoped := lockScopedPkgs(pass.Mod)
	for _, pkg := range pass.Mod.Pkgs {
		if !scoped[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			funcsOfFile(f, func(fd *ast.FuncDecl) {
				checkLockFunc(pass, pkg, fd.Body)
			})
			// Closures are their own lock scopes, except ones deferred at
			// the top of a function, whose unlocks belong to the enclosing
			// exit and are credited by the deferred-release scan.
			ast.Inspect(f, func(n ast.Node) bool {
				if d, ok := n.(*ast.DeferStmt); ok {
					if _, isLit := ast.Unparen(d.Call.Fun).(*ast.FuncLit); isLit {
						return false
					}
				}
				if lit, ok := n.(*ast.FuncLit); ok {
					checkLockFunc(pass, pkg, lit.Body)
				}
				return true
			})
		}
	}
}

// checkLockFunc solves the lock lattice over one function body and replays
// the final states to report.
func checkLockFunc(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	g := BuildCFG(body)
	flow := Flow[lockState]{
		Entry:    lockState{},
		Transfer: func(b *Block, in lockState) lockState { return lockTransfer(pkg, b, in, nil) },
		Refine:   func(e *Edge, out lockState) lockState { return lockRefine(pkg, e, out) },
		Merge:    lockStateMerge,
		Equal:    lockStateEqual,
	}
	in := Solve(g, flow)
	for _, b := range g.Blocks {
		state, ok := in[b]
		if !ok {
			continue // unreachable
		}
		lockTransfer(pkg, b, state, pass)
		// Fall-off-the-end exits have no return statement to anchor a
		// report, so a leak there is reported at the closing brace.
		if !b.Panics && b != g.Exit && endsAtExit(b, g) && !endsWithReturn(b) {
			out := lockTransfer(pkg, b, state, nil)
			reportHeld(pass, out, body.Rbrace, "function exit")
		}
	}
}

func endsAtExit(b *Block, g *CFG) bool {
	for _, e := range b.Succs {
		if e.To == g.Exit {
			return true
		}
	}
	return false
}

func endsWithReturn(b *Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	_, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return ok
}

// lockTransfer applies one block's effect. With pass == nil it is the pure
// transfer function for the solver; with pass set it replays the identical
// transitions once, reporting violations.
func lockTransfer(pkg *Package, b *Block, in lockState, pass *Pass) lockState {
	state := in
	for _, node := range b.Nodes {
		switch n := node.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				state = applyLockCall(pkg, state, call, nil, pass)
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					var bind types.Object
					if len(n.Lhs) == 1 {
						if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
							if bind = pkg.Info.Defs[id]; bind == nil {
								bind = pkg.Info.Uses[id]
							}
						}
					}
					state = applyLockCall(pkg, state, call, bind, pass)
				}
			}
		case *ast.DeferStmt:
			state = applyLockDefer(pkg, state, n.Call)
		case *ast.ReturnStmt:
			if pass != nil {
				reportHeld(pass, state, n.Pos(), "return")
			}
		}
	}
	return state
}

// applyLockCall interprets one call statement. bind is the variable the
// call's single result is assigned to, for conditional acquisitions.
func applyLockCall(pkg *Package, state lockState, call *ast.CallExpr, bind types.Object, pass *Pass) lockState {
	op, ok := classifyLockOp(pkg.Info, call)
	if !ok {
		return state
	}
	cur := state[op.key]
	switch op.kind {
	case opLock:
		if pass != nil && cur.stat == lockHeld {
			pass.Reportf(call.Pos(), "lock %s acquired again while already held on this path (deadlock)", op.chain)
		}
		return state.with(op.key, lockVal{stat: lockHeld, deferred: cur.deferred})
	case opTryLock:
		if pass != nil && cur.stat == lockHeld {
			pass.Reportf(call.Pos(), "lock %s acquired again while already held on this path (deadlock)", op.chain)
		}
		if bind == nil {
			// Result unused or not a plain variable: no edge will resolve
			// it, so stay conservative — treat as possibly held.
			return state.with(op.key, lockVal{stat: lockMaybe, deferred: cur.deferred})
		}
		return state.with(op.key, lockVal{stat: lockCond, condObj: bind, condErr: op.condErr, deferred: cur.deferred})
	case opUnlock:
		if pass != nil {
			switch {
			case cur.deferred && cur.stat != lockHeld && cur.stat != lockMaybe:
				pass.Reportf(call.Pos(), "%s released twice: explicit unlock with a deferred unlock pending", op.chain)
			case cur.stat == lockUnheld:
				pass.Reportf(call.Pos(), "%s released but not held on this path", op.chain)
			}
		}
		return state.with(op.key, lockVal{stat: lockUnheld, deferred: cur.deferred})
	}
	return state
}

// applyLockDefer records deferred releases: `defer mu.Unlock()`, `defer
// s.release()`, or a deferred closure containing such calls.
func applyLockDefer(pkg *Package, state lockState, call *ast.CallExpr) lockState {
	mark := func(s lockState, c *ast.CallExpr) lockState {
		if op, ok := classifyLockOp(pkg.Info, c); ok && op.kind == opUnlock {
			v := s[op.key]
			v.deferred = true
			if v.stat == lockUnheld {
				// defer before (or without) the acquisition: keep the key
				// alive so the flag survives merges.
				return s.with(op.key, v)
			}
			return s.with(op.key, v)
		}
		return s
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				state = mark(state, c)
			}
			return true
		})
		return state
	}
	return mark(state, call)
}

// lockRefine resolves conditional acquisitions along branch edges: the
// TryLock result variable, the acquire error, or the TryLock call appearing
// directly as the branch condition.
func lockRefine(pkg *Package, e *Edge, out lockState) lockState {
	if e.Cond == nil {
		return out
	}
	// `if mu.TryLock() { ... }` — the call is the condition itself.
	if call, ok := ast.Unparen(e.Cond).(*ast.CallExpr); ok {
		if op, ok := classifyLockOp(pkg.Info, call); ok && op.kind == opTryLock && !op.condErr {
			stat := lockUnheld
			if !e.Negate {
				stat = lockHeld
			}
			v := out[op.key]
			return out.with(op.key, lockVal{stat: stat, deferred: v.deferred})
		}
	}
	fact, ok := refineCond(pkg.Info, e)
	if !ok {
		return out
	}
	refined := out
	for key, v := range out {
		if v.stat != lockCond || v.condObj != fact.obj {
			continue
		}
		held := false
		switch {
		case v.condErr && fact.isNilCmp:
			held = fact.value // held iff the error is nil on this edge
		case !v.condErr && !fact.isNilCmp:
			held = fact.value // bool result: held iff true
		default:
			continue
		}
		stat := lockUnheld
		if held {
			stat = lockHeld
		}
		refined = refined.with(key, lockVal{stat: stat, condObj: nil, deferred: v.deferred})
	}
	return refined
}

// reportHeld reports, at an exit point, every lock still (possibly) held
// with no deferred release pending. Keys are visited in sorted order so
// multi-lock reports are deterministic.
func reportHeld(pass *Pass, state lockState, pos token.Pos, where string) {
	keys := make([]string, 0, len(state))
	for k := range state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := state[k]
		if v.deferred {
			if v.stat == lockUnheld {
				pass.Reportf(pos, "deferred unlock of %s runs with the lock already released on this path (released twice)", lockChainOf(k))
			}
			continue // Held/Maybe/Cond are covered by the pending defer
		}
		switch v.stat {
		case lockHeld:
			pass.Reportf(pos, "%s exits while holding %s; unlock on every path, defer the unlock, or annotate a locked handoff with //jetlint:allow lockdiscipline -- reason", where, lockChainOf(k))
		case lockMaybe, lockCond:
			pass.Reportf(pos, "%s may exit while holding %s (held on some paths into this point); unlock before every return", where, lockChainOf(k))
		}
	}
}

// lockChainOf maps a state key back to a human-readable lock name.
func lockChainOf(key string) string {
	if chain, ok := strings.CutSuffix(key, "[R]"); ok {
		return chain + " (read)"
	}
	if chain, ok := strings.CutSuffix(key, "[cas]"); ok {
		return chain + ".acquire"
	}
	return key
}
