package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFuncCFG parses one function declaration and builds its CFG.
func buildFuncCFG(t *testing.T, decl string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", "package p\n"+decl, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// cfgGoldenCases pins the block/edge structure of every construct the
// builder handles, including the edge cases the analyzers depend on: goto
// into a loop body, labeled break/continue across nesting, select without a
// default (no bypass edge), and panicking branches terminating as exits.
var cfgGoldenCases = []struct {
	name, src, want string
}{
	{
		name: "straight line",
		src:  "func f() { x := 1; x++ }",
		want: `
b0 entry: [x := 1; x++] -> b1
b1 exit:
`,
	},
	{
		name: "if without else",
		src:  "func f(c bool) { if c { g() }; h() }",
		want: `
b0 entry: [c] -> b1(T) b2(F)
b1 if.then: [g()] -> b2
b2 if.join: [h()] -> b3
b3 exit:
`,
	},
	{
		name: "if else with init and returns",
		src:  "func f() error { if err := g(); err != nil { return err } else { h() }; return nil }",
		want: `
b0 entry: [err := g(); err != nil] -> b1(T) b2(F)
b1 if.then: [return err] -> b4
b2 if.else: [h()] -> b3
b3 if.join: [return nil] -> b4
b4 exit:
`,
	},
	{
		name: "for with init cond post and break continue",
		src:  "func f(n int) { for i := 0; i < n; i++ { if p() { break }; if q() { continue }; w() } }",
		want: `
b0 entry: [i := 0] -> b1
b1 for.head: [i < n] -> b2(T) b3(F)
b2 for.body: [p()] -> b5(T) b6(F)
b3 for.join: -> b9
b4 for.post: [i++] -> b1
b5 if.then: -> b3
b6 if.join: [q()] -> b7(T) b8(F)
b7 if.then: -> b4
b8 if.join: [w()] -> b4
b9 exit:
`,
	},
	{
		name: "infinite for with break",
		src:  "func f() { for { if p() { break } }; g() }",
		want: `
b0 entry: -> b1
b1 for.head: -> b2
b2 for.body: [p()] -> b4(T) b5(F)
b3 for.join: [g()] -> b6
b4 if.then: -> b3
b5 if.join: -> b1
b6 exit:
`,
	},
	{
		name: "range loop",
		src:  "func f(xs []int) { for _, x := range xs { g(x) } }",
		want: `
b0 entry: -> b1
b1 range.head: [for _, x := range xs { g(x) }] -> b2 b3
b2 range.body: [g(x)] -> b1
b3 range.join: -> b4
b4 exit:
`,
	},
	{
		name: "switch with fallthrough and no default",
		src:  "func f(x int) { switch x { case 1: a(); fallthrough; case 2: b() }; c() }",
		want: `
b0 entry: [x] -> b2 b3 b1
b1 switch.join: [c()] -> b4
b2 case: [1; a()] -> b3
b3 case: [2; b()] -> b1
b4 exit:
`,
	},
	{
		name: "switch with default",
		src:  "func f(x int) { switch { case x > 0: a(); default: b() } }",
		want: `
b0 entry: -> b2 b3
b1 switch.join: -> b4
b2 case: [x > 0; a()] -> b1
b3 default: [b()] -> b1
b4 exit:
`,
	},
	{
		name: "type switch",
		src:  "func f(v any) { switch v := v.(type) { case int: a(v); case string: b(v) }; c() }",
		want: `
b0 entry: [v := v.(type)] -> b2 b3 b1
b1 typeswitch.join: [c()] -> b4
b2 case: [int; a(v)] -> b1
b3 case: [string; b(v)] -> b1
b4 exit:
`,
	},
	{
		name: "select without default has no bypass edge",
		src:  "func f(a, b chan int) { select { case x := <-a: g(x); case <-b: h() }; w() }",
		want: `
b0 entry: -> b2 b3
b1 select.join: [w()] -> b4
b2 select.case: [x := <-a; g(x)] -> b1
b3 select.case: [<-b; h()] -> b1
b4 exit:
`,
	},
	{
		name: "select with default",
		src:  "func f(a chan int) { select { case <-a: g(); default: } }",
		want: `
b0 entry: -> b2 b3
b1 select.join: -> b4
b2 select.case: [<-a; g()] -> b1
b3 select.default: -> b1
b4 exit:
`,
	},
	{
		name: "empty select blocks forever",
		src:  "func f() { select {}; g() }",
		want: `
b0 entry:
b1 select.join: [g()] -> b2
b2 exit:
`,
	},
	{
		name: "goto into loop body",
		src:  "func f() { goto inner; for { inner: g(); if p() { return } } }",
		want: `
b0 entry: -> b1
b1 label.inner: [g(); p()] -> b5(T) b6(F)
b2 for.head: -> b3
b3 for.body: -> b1
b4 for.join: -> b7
b5 if.then: [return] -> b7
b6 if.join: -> b2
b7 exit:
`,
	},
	{
		name: "labeled break and continue across nesting",
		src: `func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for {
			if p() {
				break outer
			}
			if q() {
				continue outer
			}
		}
	}
	done()
}`,
		want: `
b0 entry: -> b1
b1 label.outer: [i := 0] -> b2
b2 for.head: [i < n] -> b3(T) b4(F)
b3 for.body: -> b6
b4 for.join: [done()] -> b13
b5 for.post: [i++] -> b2
b6 for.head: -> b7
b7 for.body: [p()] -> b9(T) b10(F)
b8 for.join: -> b5
b9 if.then: -> b4
b10 if.join: [q()] -> b11(T) b12(F)
b11 if.then: -> b5
b12 if.join: -> b6
b13 exit:
`,
	},
	{
		name: "panic branch is a terminal exit",
		src:  "func f(x int) { if x < 0 { panic(\"neg\") }; g() }",
		want: `
b0 entry: [x < 0] -> b1(T) b2(F)
b1 if.then: [panic("neg")] panic
b2 if.join: [g()] -> b3
b3 exit:
`,
	},
	{
		name: "os.Exit and log.Fatalf terminate",
		src:  "func f(x int) { switch { case x == 1: os.Exit(2); case x == 2: log.Fatalf(\"no\") }; g() }",
		want: `
b0 entry: -> b2 b3 b1
b1 switch.join: [g()] -> b4
b2 case: [x == 1; os.Exit(2)] panic
b3 case: [x == 2; log.Fatalf("no")] panic
b4 exit:
`,
	},
	{
		name: "defer and go are straight-line statements",
		src:  "func f(mu sync.Locker) { mu.Lock(); defer mu.Unlock(); go h() }",
		want: `
b0 entry: [mu.Lock(); defer mu.Unlock(); go h()] -> b1
b1 exit:
`,
	},
	{
		name: "code after return is unreachable but kept",
		src:  "func f() int { return 1; g(); return 2 }",
		want: `
b0 entry: [return 1] -> b2
b1 unreachable: [g(); return 2] -> b2
b2 exit:
`,
	},
}

func TestCFGGolden(t *testing.T) {
	for _, tc := range cfgGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildFuncCFG(t, tc.src)
			got := strings.TrimSpace(g.String())
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("CFG mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCFGInvariants checks the structural properties the dataflow layer
// relies on, across every golden case: entry first, exit last, edge symmetry
// between Succs and Preds, and panic blocks having no successors.
func TestCFGInvariants(t *testing.T) {
	for _, tc := range cfgGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildFuncCFG(t, tc.src)
			if g.Blocks[0] != g.Entry {
				t.Error("entry is not Blocks[0]")
			}
			if g.Blocks[len(g.Blocks)-1] != g.Exit {
				t.Error("exit is not the last block")
			}
			if len(g.Exit.Succs) != 0 || len(g.Exit.Nodes) != 0 {
				t.Error("exit must be empty with no successors")
			}
			for i, blk := range g.Blocks {
				if blk.Index != i && blk != g.Exit {
					t.Errorf("block %d has Index %d", i, blk.Index)
				}
				if blk.Panics && len(blk.Succs) != 0 {
					t.Errorf("panic block b%d has successors", blk.Index)
				}
				for _, e := range blk.Succs {
					if e.From != blk {
						t.Errorf("edge from b%d has wrong From", blk.Index)
					}
					found := false
					for _, p := range e.To.Preds {
						if p == e {
							found = true
						}
					}
					if !found {
						t.Errorf("edge b%d->b%d missing from Preds", blk.Index, e.To.Index)
					}
				}
			}
		})
	}
}

// TestSolveReachingFlag exercises the generic solver with a tiny "has g()
// been called" gen-only lattice, including refinement on the err != nil
// edge: along the error edge the fact is cleared, so the join below sees
// "maybe" (here modeled as max = reached).
func TestSolveReachingFlag(t *testing.T) {
	g := buildFuncCFG(t, "func f() { for i := 0; i < 3; i++ { g() }; h() }")
	calls := func(b *Block) int {
		n := 0
		for _, node := range b.Nodes {
			ast.Inspect(node, func(x ast.Node) bool {
				if c, ok := x.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "g" {
						n++
					}
				}
				return true
			})
		}
		return n
	}
	in := Solve(g, Flow[bool]{
		Entry:    false,
		Transfer: func(b *Block, in bool) bool { return in || calls(b) > 0 },
		Merge:    func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
	})
	// The loop head merges entry (false) and the back edge (true): the body
	// may or may not have run, so the head's in-state must be true only via
	// the back edge — i.e. present and true after fixpoint.
	headIn, ok := in[g.Blocks[1]]
	if !ok || !headIn {
		t.Errorf("loop head in-state = %v, %v; want true after back-edge merge", headIn, ok)
	}
	exitIn, ok := in[g.Exit]
	if !ok || !exitIn {
		t.Errorf("exit in-state = %v, %v; want true", exitIn, ok)
	}
	// Every reachable block got a state; the solver visited a bounded set.
	if len(in) == 0 || len(in) > len(g.Blocks) {
		t.Errorf("solver returned %d states for %d blocks", len(in), len(g.Blocks))
	}
}
