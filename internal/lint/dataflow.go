// Generic forward dataflow over the CFGs of cfg.go.
//
// An analyzer describes its lattice with a Flow[T]: a pure Transfer function
// mapping a block's entry state to its exit state, a Merge for join points,
// Equal for the fixpoint test, and an optional Refine that sharpens the
// state along a conditional edge (the mechanism behind "the lock is held
// only on the err == nil path of a TryLock-style acquire"). Solve runs the
// classic worklist iteration to a fixpoint and returns the entry state of
// every reachable block; unreachable blocks get no state, so analyzers
// silently skip dead code.
//
// Transfer must not report diagnostics — it runs an unbounded number of
// times during iteration. The pattern the analyzers use is a single step
// function with a report switch: Solve calls it silently, then the analyzer
// replays it once per reachable block with reporting enabled.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Flow describes one forward dataflow problem over states of type T.
// T must be treated as immutable by all four functions: Transfer and Refine
// return fresh values rather than mutating their argument.
type Flow[T any] struct {
	Entry    T                      // state at function entry
	Transfer func(b *Block, in T) T // block effect; must be pure
	Refine   func(e *Edge, out T) T // optional per-edge sharpening; may be nil
	Merge    func(a, b T) T         // join of two predecessor states
	Equal    func(a, b T) bool      // fixpoint test
}

// Solve iterates f over g to a fixpoint and returns each reachable block's
// entry state. The worklist is processed in block-index order, which makes
// iteration deterministic (reports and performance do not depend on map
// ordering).
func Solve[T any](g *CFG, f Flow[T]) map[*Block]T {
	in := make(map[*Block]T, len(g.Blocks))
	in[g.Entry] = f.Entry
	queued := make([]bool, len(g.Blocks))
	queue := []int{g.Entry.Index}
	queued[g.Entry.Index] = true

	for len(queue) > 0 {
		// Pop the lowest index: approximates reverse postorder on the
		// reducible graphs Go produces, keeping iteration counts small.
		best := 0
		for i := range queue {
			if queue[i] < queue[best] {
				best = i
			}
		}
		idx := queue[best]
		queue[best] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		queued[idx] = false

		blk := g.Blocks[idx]
		out := f.Transfer(blk, in[blk])
		for _, e := range blk.Succs {
			v := out
			if f.Refine != nil {
				v = f.Refine(e, out)
			}
			prev, ok := in[e.To]
			next := v
			if ok {
				next = f.Merge(prev, v)
			}
			if !ok || !f.Equal(prev, next) {
				in[e.To] = next
				if !queued[e.To.Index] {
					queue = append(queue, e.To.Index)
					queued[e.To.Index] = true
				}
			}
		}
	}
	return in
}

// ---- shared condition facts ----

// condFact is the normal form of the refinable branch conditions: a single
// variable compared against nil, or a bare boolean variable. Analyzers map
// "acquired a lock iff err is nil" style facts onto the variable object.
type condFact struct {
	obj      types.Object
	isNilCmp bool // "obj == nil" / "obj != nil" rather than bare bool
	value    bool // truth of the *comparison shown in source* on this edge
}

// refineCond normalizes an edge's condition into a condFact: which variable
// it tests and what its truth is along this edge. Handles `v`, `!v`,
// `x == nil`, `x != nil` (either operand order). Returns false for anything
// else — notably short-circuit &&/|| chains, which the CFG does not split;
// analyzers stay conservative there.
func refineCond(info *types.Info, e *Edge) (condFact, bool) {
	if e.Cond == nil {
		return condFact{}, false
	}
	value := !e.Negate
	expr := ast.Unparen(e.Cond)
	for {
		un, ok := expr.(*ast.UnaryExpr)
		if !ok || un.Op != token.NOT {
			break
		}
		value = !value
		expr = ast.Unparen(un.X)
	}
	switch x := expr.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil {
			return condFact{obj: obj, value: value}, true
		}
	case *ast.SelectorExpr:
		if obj := info.Uses[x.Sel]; obj != nil {
			return condFact{obj: obj, value: value}, true
		}
	case *ast.BinaryExpr:
		if x.Op != token.EQL && x.Op != token.NEQ {
			return condFact{}, false
		}
		operand := ast.Unparen(x.X)
		if isNilIdent(operand) {
			operand = ast.Unparen(x.Y)
		} else if !isNilIdent(ast.Unparen(x.Y)) {
			return condFact{}, false
		}
		id, ok := operand.(*ast.Ident)
		if !ok {
			return condFact{}, false
		}
		obj := info.Uses[id]
		if obj == nil {
			return condFact{}, false
		}
		// Normalize to the truth of "obj == nil" on this edge.
		isNil := value
		if x.Op == token.NEQ {
			isNil = !isNil
		}
		return condFact{obj: obj, isNilCmp: true, value: isNil}, true
	}
	return condFact{}, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---- shared function-shape helpers ----

// funcsOfFile yields every function declaration with a body in f.
func funcsOfFile(f *ast.File, fn func(*ast.FuncDecl)) {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			fn(fd)
		}
	}
}

// returnsError reports whether the function's last result is an error, and
// hands back the result count. Analyzers use it to classify return
// statements into success and error exits.
func returnsError(info *types.Info, fd *ast.FuncDecl) (bool, int) {
	if fd.Type.Results == nil {
		return false, 0
	}
	n := 0
	var last ast.Expr
	for _, fld := range fd.Type.Results.List {
		c := len(fld.Names)
		if c == 0 {
			c = 1
		}
		n += c
		last = fld.Type
	}
	tv, ok := info.Types[last]
	if !ok {
		return false, n
	}
	return isErrorType(tv.Type), n
}

// isErrorReturn classifies a return statement in a function whose last
// result is an error: true when the statement definitely returns a non-nil
// error (its last expression is anything but the predeclared nil). Bare
// returns (named results) and single-call multi-value returns are treated
// as success — the conservative direction for analyzers that relax checks
// on error paths.
func isErrorReturn(ret *ast.ReturnStmt, nresults int) bool {
	if len(ret.Results) == 0 || len(ret.Results) != nresults {
		return false
	}
	return !isNilIdent(ast.Unparen(ret.Results[len(ret.Results)-1]))
}

// renderRef prints the variable/selector chain of e ("s.mu", "t.sys.wal"),
// or "" if e is not a pure chain of identifiers and field selections.
// Analyzers use the rendered chain as the intra-procedural identity of a
// lock or journal object.
func renderRef(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := renderRef(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}
