package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpathalloc enforces the PR 5 hot-path contract (~1 allocation per batch)
// by construction instead of benchmark vigilance: a function whose doc
// comment carries
//
//	//jetlint:hotpath
//
// may not contain allocation-inducing constructs on any path that can reach
// a successful exit. Error paths — blocks that only flow into returns whose
// final result is a non-nil error, or into panics — are exempt, so building
// a rich error message stays free. The banned constructs:
//
//   - make of any kind and new(T) — a sanctioned once-per-batch allocation
//     is documented with //jetlint:allow hotpathalloc -- reason
//   - map/slice composite literals and &T{} (plain T{} value literals are
//     stack-allocated and fine)
//   - append whose destination is not visibly capacity-bounded in the same
//     function (assigned from a reslice like buf[:0] or a 3-arg make)
//   - func literals that capture enclosing variables (each call allocates
//     the closure; non-capturing literals compile to static functions)
//   - passing a non-pointer concrete value to an interface parameter
//     (boxing), the classic sort.Slice/fmt tax
//   - any call into package fmt, and string concatenation with +
//
// The seed annotations sit on the four per-batch/per-round drains:
// (*graph.CSR).ApplyDelta, (*queue.Coalescing).DrainRound,
// (*engine.peWorker).loop, and (*window.Ring).Expire.
var Hotpathalloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//jetlint:hotpath functions must not allocate on non-error paths",
	Run:  runHotpathalloc,
}

const hotpathMarker = "//jetlint:hotpath"

func isHotpathFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

func runHotpathalloc(pass *Pass) {
	for _, pkg := range pass.Mod.Pkgs {
		for _, f := range pkg.Files {
			funcsOfFile(f, func(fd *ast.FuncDecl) {
				if isHotpathFunc(fd) {
					checkHotpathFunc(pass, pkg, fd)
				}
			})
		}
	}
}

func checkHotpathFunc(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	g := BuildCFG(fd.Body)
	hasErr, nresults := returnsError(pkg.Info, fd)
	onSuccess := successReachable(g, hasErr, nresults)
	safeDsts := appendSafeDests(pkg, fd.Body)
	for _, b := range g.Blocks {
		if !onSuccess[b.Index] {
			continue
		}
		for _, node := range b.Nodes {
			scanHotNode(pass, pkg, node, safeDsts)
		}
	}
}

// successReachable marks every block that can reach a successful function
// exit. Success terminals are blocks ending in a return whose final result
// is not a definite non-nil error, and blocks that fall off the end of the
// body (the implicit return). Panic blocks and definite error returns are
// failure terminals. Every return and panic block stops forward flow (their
// only successor is the synthetic Exit), so marking is exact backward
// reachability from the success terminals.
func successReachable(g *CFG, hasErr bool, nresults int) []bool {
	ok := make([]bool, len(g.Blocks))
	var queue []*Block
	for _, b := range g.Blocks {
		if b == g.Exit || b.Panics {
			continue
		}
		success := false
		if endsWithReturn(b) {
			ret := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
			success = !hasErr || !isErrorReturn(ret, nresults)
		} else {
			success = endsAtExit(b, g) // fall-off-the-end implicit return
		}
		if success {
			ok[b.Index] = true
			queue = append(queue, b)
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, e := range b.Preds {
			if p := e.From; !ok[p.Index] {
				ok[p.Index] = true
				queue = append(queue, p)
			}
		}
	}
	// A block exempt from the check must actually reach a failure terminal:
	// code inside a loop that never exits (a worker's forever-drain) reaches
	// no terminal at all, and is the hottest path of the function, not an
	// error path.
	fails := make([]bool, len(g.Blocks))
	for _, b := range g.Blocks {
		if b.Panics {
			fails[b.Index] = true
			queue = append(queue, b)
			continue
		}
		if b != g.Exit && endsWithReturn(b) {
			ret := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
			if hasErr && isErrorReturn(ret, nresults) {
				fails[b.Index] = true
				queue = append(queue, b)
			}
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		for _, e := range b.Preds {
			if p := e.From; !fails[p.Index] {
				fails[p.Index] = true
				queue = append(queue, p)
			}
		}
	}
	for i := range ok {
		if !fails[i] {
			ok[i] = true
		}
	}
	ok[g.Exit.Index] = false // synthetic, never has nodes
	return ok
}

// appendSafeDests collects the objects that appends may grow without a
// diagnostic: variables assigned from a reslice (buf[:0], x[a:b]) or from a
// capacity-hinted 3-arg make anywhere in the function.
func appendSafeDests(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	safe := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			hinted := false
			switch r := rhs.(type) {
			case *ast.SliceExpr:
				hinted = true
			case *ast.CallExpr:
				if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok && id.Name == "make" && len(r.Args) == 3 {
					hinted = true
				}
			}
			if !hinted {
				continue
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				safe[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				safe[obj] = true
			}
		}
		return true
	})
	return safe
}

// scanHotNode walks one CFG node reporting banned constructs. Nested func
// literals are reported as a unit (when they capture) but their bodies are
// not scanned: the closure body runs under its own annotation if hot.
func scanHotNode(pass *Pass, pkg *Package, node ast.Node, safeDsts map[types.Object]bool) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := closureCaptures(pkg, n); capt != "" {
				pass.Reportf(n.Pos(), "hot path: func literal captures %s and allocates a closure per call; hoist it or pass state explicitly", capt)
			}
			return false
		case *ast.CompositeLit:
			tv, ok := pkg.Info.Types[n]
			if ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "hot path: map literal allocates; hoist into a reused scratch structure")
				case *types.Slice:
					pass.Reportf(n.Pos(), "hot path: slice literal allocates per call; hoist into a reused buffer")
				}
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "hot path: &T{} heap-allocates per call; reuse a scratch value")
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pkg.Info.Types[n.X]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(n.Pos(), "hot path: string concatenation allocates; use a reused []byte or precomputed strings")
						return false
					}
				}
			}
		case *ast.CallExpr:
			scanHotCall(pass, pkg, n, safeDsts)
		}
		return true
	})
}

func scanHotCall(pass *Pass, pkg *Package, call *ast.CallExpr, safeDsts map[types.Object]bool) {
	switch obj := callee(pkg.Info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			pass.Reportf(call.Pos(), "hot path: make allocates per call; hoist into a reused scratch buffer (a sanctioned per-batch allocation takes //jetlint:allow hotpathalloc -- reason)")
		case "new":
			pass.Reportf(call.Pos(), "hot path: new(T) heap-allocates per call; reuse a scratch value")
		case "append":
			if len(call.Args) == 0 {
				return
			}
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := pkg.Info.Uses[id]; obj != nil && safeDsts[obj] {
					return // destination visibly capacity-bounded
				}
			}
			pass.Reportf(call.Pos(), "hot path: append may grow its backing array; append into a buffer resliced from a reused allocation (buf[:0])")
		}
		return
	case *types.Func:
		if p := obj.Pkg(); p != nil && p.Path() == "fmt" {
			pass.Reportf(call.Pos(), "hot path: fmt.%s allocates (formatting boxes every operand); keep formatting off the hot path", obj.Name())
			return
		}
	}
	// Interface boxing of non-pointer concrete arguments.
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return // builtin, conversion, or type expression
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pkg.Info.Types[arg]
		if !ok || at.Type == nil {
			continue
		}
		t := at.Type
		if at.IsNil() {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // reference-shaped: no boxing allocation
		}
		pass.Reportf(arg.Pos(), "hot path: passing %s to an interface parameter boxes the value per call; use a concrete or generic API", types.TypeString(t, types.RelativeTo(pkg.Pkg)))
	}
}

// closureCaptures returns a short description of the first enclosing
// variable a func literal captures, or "" if it captures nothing.
func closureCaptures(pkg *Package, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captured.
		if v.Parent() == pkg.Pkg.Scope() {
			return true
		}
		// Declared outside the literal's extent → captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = v.Name()
		}
		return true
	})
	return found
}
