package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path ("jetstream/internal/engine")
	Dir   string // directory relative to the module root
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the loaded module: every package, in dependency order, sharing
// one FileSet so positions are comparable across packages.
type Module struct {
	Fset *token.FileSet
	Path string // module path from go.mod
	Pkgs []*Package
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package {
	for _, p := range m.Pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// rawPkg is a parsed-but-not-yet-checked package.
type rawPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports map[string]bool // module-internal imports only
}

// LoadModule parses and type-checks every package under root (a module
// directory containing go.mod), including in-package test files. External
// test packages (package foo_test) and testdata/vendor/hidden directories
// are skipped. Standard-library dependencies are type-checked from GOROOT
// source, so no export data or network access is needed.
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	var dirs []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}

	raws := make(map[string]*rawPkg)
	for _, dir := range dirs {
		files, err := parsePackageDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := &rawPkg{path: path, dir: rel, files: files, imports: make(map[string]bool)}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					rp.imports[ip] = true
				}
			}
		}
		raws[path] = rp
	}

	order, err := topoSort(raws)
	if err != nil {
		return nil, err
	}
	return checkAll(fset, modPath, order, raws)
}

// LoadFixture parses and type-checks a single directory as one package under
// the given import path. The path override lets tests exercise analyzers
// whose scope depends on the package's location in the module (the
// determinism package list, the panic-free root boundary).
func LoadFixture(dir, importPath string) (*Module, error) {
	fset := token.NewFileSet()
	files, err := parsePackageDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	modPath := importPath
	if i := strings.Index(importPath, "/"); i >= 0 {
		modPath = importPath[:i]
	}
	rp := &rawPkg{path: importPath, dir: dir, files: files}
	return checkAll(fset, modPath, []string{importPath}, map[string]*rawPkg{importPath: rp})
}

// parsePackageDir parses the primary package of dir: its non-test files plus
// in-package test files. External test files (package foo_test) are skipped.
func parsePackageDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type parsed struct {
		f    *ast.File
		test bool
	}
	var all []parsed
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		all = append(all, parsed{f, strings.HasSuffix(e.Name(), "_test.go")})
	}
	primary := ""
	for _, p := range all {
		if !p.test {
			if name := p.f.Name.Name; primary == "" {
				primary = name
			} else if name != primary {
				return nil, fmt.Errorf("lint: multiple packages in %s: %s and %s", dir, primary, name)
			}
		}
	}
	if primary == "" {
		return nil, nil // test-only or empty directory
	}
	var files []*ast.File
	for _, p := range all {
		if p.f.Name.Name == primary {
			files = append(files, p.f)
		}
	}
	return files, nil
}

// topoSort orders the packages so every module-internal import precedes its
// importer.
func topoSort(raws map[string]*rawPkg) ([]string, error) {
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		deps := make([]string, 0, len(raws[p].imports))
		for d := range raws[p].imports {
			if _, ok := raws[d]; ok {
				deps = append(deps, d)
			}
		}
		sort.Strings(deps)
		for _, d := range deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	paths := make([]string, 0, len(raws))
	for p := range raws {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// modImporter serves module-internal packages from the already-checked set
// and everything else from GOROOT source.
type modImporter struct {
	std  types.ImporterFrom
	pkgs map[string]*types.Package
}

func (m *modImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.std.ImportFrom(path, "", 0)
}

func checkAll(fset *token.FileSet, modPath string, order []string, raws map[string]*rawPkg) (*Module, error) {
	// The source importer would otherwise try to run cgo on packages like
	// net; the pure-Go variants type-check identically for analysis.
	build.Default.CgoEnabled = false
	imp := &modImporter{
		std:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*types.Package),
	}
	mod := &Module{Fset: fset, Path: modPath}
	var typeErrs []error
	for _, path := range order {
		rp := raws[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		pkg, _ := conf.Check(path, fset, rp.files, info)
		imp.pkgs[path] = pkg
		mod.Pkgs = append(mod.Pkgs, &Package{
			Path: path, Dir: rp.dir, Files: rp.files, Pkg: pkg, Info: info,
		})
	}
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for i, e := range typeErrs {
			if i == 10 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(typeErrs)-10))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type errors:\n  %s", strings.Join(msgs, "\n  "))
	}
	return mod, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if p := strings.TrimSpace(rest); p != "" {
				return strings.Trim(p, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}
