package lint

import (
	"go/ast"
	"go/types"
)

// Syncerr forbids silently discarding the error of a Close or Sync call in
// the durability-bearing packages: the module root package (checkpoint and
// WAL plumbing), internal/wal, internal/service (tenant shutdown and
// recovery), and the cmd/jetstream and cmd/jetstreamd binaries. A dropped
// fsync or close
// error is a dropped durability guarantee — the kernel reports a failed
// flush exactly once, through that return value, and a caller that ignores
// it will happily acknowledge batches that never reached stable storage.
//
// Flagged forms are the ones that discard the value invisibly: a bare
// expression statement, `defer f.Close()`, and `go f.Close()`. An explicit
// `_ = f.Close()` assignment is allowed: it is a visible, greppable decision
// that the error is intentionally unrecoverable at that point (cleanup on an
// already-failing path). Test files are exempt.
var Syncerr = &Analyzer{
	Name: "syncerr",
	Doc:  "forbid discarding Close/Sync errors in the durability-bearing packages",
	Run:  runSyncerr,
}

func runSyncerr(pass *Pass) {
	targets := map[string]bool{
		pass.Mod.Path:                       true,
		pass.Mod.Path + "/internal/wal":     true,
		pass.Mod.Path + "/internal/service": true,
		pass.Mod.Path + "/cmd/jetstream":    true,
		pass.Mod.Path + "/cmd/jetstreamd":   true,
	}
	for _, pkg := range pass.Mod.Pkgs {
		if !targets[pkg.Path] {
			continue
		}
		for _, f := range pkg.Files {
			if pass.IsTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
						checkSyncErrCall(pass, pkg, call, "")
					}
				case *ast.DeferStmt:
					checkSyncErrCall(pass, pkg, st.Call, "defer ")
				case *ast.GoStmt:
					checkSyncErrCall(pass, pkg, st.Call, "go ")
				}
				return true
			})
		}
	}
}

// checkSyncErrCall reports call when it invokes a Close or Sync returning
// exactly one error that the enclosing statement form discards.
func checkSyncErrCall(pass *Pass, pkg *Package, call *ast.CallExpr, form string) {
	fn, ok := callee(pkg.Info, call).(*types.Func)
	if !ok {
		return
	}
	name := fn.Name()
	if name != "Close" && name != "Sync" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
		return
	}
	pass.Reportf(call.Pos(), "%s%s discards its error; a dropped close/sync error is a dropped durability guarantee — check it or assign it to _ explicitly", form, name)
}
