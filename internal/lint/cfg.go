// Intra-procedural control-flow graphs over go/ast function bodies.
//
// BuildCFG lowers one function body into basic blocks connected by edges,
// covering the full statement grammar the analyzers care about: if/else,
// for (all three clause shapes), range, switch (with fallthrough and
// implicit default), type switch, select (each comm clause is a successor;
// no default means no bypass edge), goto with forward label resolution,
// labeled break/continue across arbitrary nesting, and defer/go statements
// (recorded in the block they execute in; the deferred call itself runs at
// function exit and is interpreted by the analyzers, not the CFG).
//
// Two conventions matter to the dataflow clients:
//
//   - Every function has one synthetic Exit block. return statements and
//     "falling off the end" edge to it. A block whose last statement is a
//     call that provably never returns (builtin panic, os.Exit, log.Fatal*,
//     runtime.Goexit) is terminated instead: it gets Panics=true and no
//     successors, so panicking branches count as function exits without
//     polluting the states merged at Exit.
//   - Conditional branches carry their condition on the edge: the true edge
//     has Cond set and Negate=false, the false edge Cond set and Negate=true.
//     Solvers use this to refine facts like "err != nil on this path"
//     (dataflow.go); edges from range/switch/select heads carry no condition.
//
// The builder is purely syntactic — no type information — so it works on
// fixtures and the real tree alike, and CFG unit tests need only a parser.
package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block // Blocks[0] is the entry; Exit is always the last entry
	Entry  *Block
	Exit   *Block // synthetic; no Nodes
}

// Block is one basic block: a maximal straight-line sequence of AST nodes.
// Nodes holds statements in execution order; branch conditions appear as
// bare ast.Expr entries at the point they are evaluated (an *ast.RangeStmt
// heads its own loop block).
type Block struct {
	Index  int
	Kind   string // "entry", "if.then", "for.head", ... for debugging/tests
	Nodes  []ast.Node
	Succs  []*Edge
	Preds  []*Edge
	Panics bool // terminated by a never-returning call; no successors
}

// Edge is one directed control-flow edge.
type Edge struct {
	From, To *Block
	Cond     ast.Expr // condition governing the branch, nil if unconditional
	Negate   bool     // edge taken when Cond evaluates to false
}

// cfgLabel tracks one label's jump targets. target serves goto; brk/cont
// are populated while the labeled loop/switch/select is being built.
type cfgLabel struct {
	target     *Block
	brk, cont  *Block
	targetUsed bool // a goto or the label statement itself referenced target
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block // nil after an unconditional jump; revived as "unreachable"
	labels map[string]*cfgLabel

	breaks    []*Block // innermost-last stacks
	continues []*Block
	falls     []*Block // fallthrough targets, one per enclosing switch
	pending   string   // label name awaiting its loop/switch statement
}

// BuildCFG constructs the CFG of body. body may be nil (declared externally
// or assembly), in which case the graph is just entry→exit.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{Exit: &Block{Kind: "exit"}}
	b := &cfgBuilder{g: g, labels: make(map[string]*cfgLabel)}
	g.Entry = b.newBlock("entry")
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(g.Exit) // implicit return at the end of the body
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge links from→to. No-op when from is nil (dead code already ended).
func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, negate bool) {
	if from == nil || from.Panics {
		return
	}
	e := &Edge{From: from, To: to, Cond: cond, Negate: negate}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// jump ends the current block with an unconditional edge to to.
func (b *cfgBuilder) jump(to *Block) {
	b.edge(b.cur, to, nil, false)
	b.cur = nil
}

// add appends a node to the current block, reviving an unreachable block if
// control already left (so analyzers can still see dead statements).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes a pending label for the loop/switch/select statement
// being built, returning its record (or nil).
func (b *cfgBuilder) takeLabel() *cfgLabel {
	if b.pending == "" {
		return nil
	}
	l := b.labels[b.pending]
	b.pending = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.EmptyStmt:

	case *ast.LabeledStmt:
		lbl := b.label(s.Label.Name)
		b.jump(lbl.target)
		b.cur = lbl.target
		b.pending = s.Label.Name
		b.stmt(s.Stmt)
		b.pending = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s)

	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isNoReturnCall(call) {
			b.cur.Panics = true
			b.cur = nil
		}

	default:
		// Assign, Decl, IncDec, Send, Defer, Go: straight-line statements.
		b.add(s)
	}
}

func (b *cfgBuilder) label(name string) *cfgLabel {
	l := b.labels[name]
	if l == nil {
		l = &cfgLabel{target: b.newBlock("label." + name)}
		b.labels[name] = l
	}
	return l
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.GOTO:
		b.jump(b.label(s.Label.Name).target)
	case token.BREAK:
		var to *Block
		if s.Label != nil {
			to = b.label(s.Label.Name).brk
		} else if n := len(b.breaks); n > 0 {
			to = b.breaks[n-1]
		}
		if to != nil {
			b.jump(to)
		} else {
			b.cur = nil // malformed input; don't crash the linter
		}
	case token.CONTINUE:
		var to *Block
		if s.Label != nil {
			to = b.label(s.Label.Name).cont
		} else if n := len(b.continues); n > 0 {
			to = b.continues[n-1]
		}
		if to != nil {
			b.jump(to)
		} else {
			b.cur = nil
		}
	case token.FALLTHROUGH:
		if n := len(b.falls); n > 0 && b.falls[n-1] != nil {
			b.jump(b.falls[n-1])
		} else {
			b.cur = nil
		}
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // labels on if are only goto targets; already positioned
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur

	then := b.newBlock("if.then")
	b.edge(head, then, s.Cond, false)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	var join *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(head, els, s.Cond, true)
		b.cur = els
		b.stmt(s.Else)
		elseEnd := b.cur
		if thenEnd == nil && elseEnd == nil {
			b.cur = nil
			return
		}
		join = b.newBlock("if.join")
		b.edge(thenEnd, join, nil, false)
		b.edge(elseEnd, join, nil, false)
	} else {
		join = b.newBlock("if.join")
		b.edge(head, join, s.Cond, true)
		b.edge(thenEnd, join, nil, false)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	lbl := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.jump(head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	head = b.cur // add may not change cur here, but keep the invariant

	body := b.newBlock("for.body")
	join := b.newBlock("for.join")
	b.edge(head, body, s.Cond, false)
	if s.Cond != nil {
		b.edge(head, join, s.Cond, true)
	}

	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head, nil, false)
		cont = post
	}
	if lbl != nil {
		lbl.brk, lbl.cont = join, cont
	}
	b.breaks = append(b.breaks, join)
	b.continues = append(b.continues, cont)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(cont)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	lbl := b.takeLabel()
	head := b.newBlock("range.head")
	b.jump(head)
	head.Nodes = append(head.Nodes, s) // carries X/Key/Value for analyzers
	body := b.newBlock("range.body")
	join := b.newBlock("range.join")
	b.edge(head, body, nil, false)
	b.edge(head, join, nil, false) // zero iterations

	if lbl != nil {
		lbl.brk, lbl.cont = join, head
	}
	b.breaks = append(b.breaks, join)
	b.continues = append(b.continues, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	b.cur = join
}

func (b *cfgBuilder) switchStmt(s *ast.SwitchStmt) {
	lbl := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	join := b.newBlock("switch.join")
	b.caseClauses(head, join, s.Body.List, true, lbl)
	b.cur = join
}

func (b *cfgBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt) {
	lbl := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	head := b.cur
	join := b.newBlock("typeswitch.join")
	b.caseClauses(head, join, s.Body.List, false, lbl)
	b.cur = join
}

// caseClauses builds the shared switch/type-switch body shape: one block per
// case, an implicit edge head→join when no default exists, fallthrough edges
// (plain switch only) to the next case body.
func (b *cfgBuilder) caseClauses(head, join *Block, clauses []ast.Stmt, allowFall bool, lbl *cfgLabel) {
	if lbl != nil {
		lbl.brk = join
	}
	var bodies []*Block
	hasDefault := false
	for _, c := range clauses {
		cc := c.(*ast.CaseClause)
		kind := "case"
		if cc.List == nil {
			kind = "default"
			hasDefault = true
		}
		blk := b.newBlock(kind)
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.edge(head, blk, nil, false)
		bodies = append(bodies, blk)
	}
	if !hasDefault {
		b.edge(head, join, nil, false)
	}
	b.breaks = append(b.breaks, join)
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		var fall *Block
		if allowFall && i+1 < len(bodies) {
			fall = bodies[i+1]
		}
		b.falls = append(b.falls, fall)
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.jump(join)
		b.falls = b.falls[:len(b.falls)-1]
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	lbl := b.takeLabel()
	head := b.cur
	if head == nil {
		head = b.newBlock("unreachable")
		b.cur = head
	}
	join := b.newBlock("select.join")
	if lbl != nil {
		lbl.brk = join
	}
	b.breaks = append(b.breaks, join)
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blk := b.newBlock(kind)
		b.edge(head, blk, nil, false)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		b.stmtList(cc.Body)
		b.jump(join)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	// select{} (no clauses) blocks forever: head keeps zero successors and
	// join is unreachable, which is exactly the semantics.
	b.cur = join
}

// isNoReturnCall recognizes, purely syntactically, calls that never return:
// the panic builtin and the conventional process-terminators. Shadowing would
// fool this; none of the checked packages shadow panic/os/log/runtime.
func isNoReturnCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln", "runtime.Goexit":
			return true
		}
	}
	return false
}

// String renders the graph compactly for golden tests and debugging:
//
//	b0 entry: [x := 0] -> b1
//	b1 for.head: [x < n] -> b2(T) b4(F)
//
// Conditional successors are tagged (T)/(F); panic-terminated blocks are
// tagged "panic". Node text is the printed source with whitespace collapsed.
func (g *CFG) String() string {
	var sb strings.Builder
	fset := token.NewFileSet() // positions are irrelevant for rendering
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			sb.WriteString(" [")
			for i, n := range blk.Nodes {
				if i > 0 {
					sb.WriteString("; ")
				}
				sb.WriteString(renderNode(fset, n))
			}
			sb.WriteString("]")
		}
		if blk.Panics {
			sb.WriteString(" panic")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, e := range blk.Succs {
				tag := ""
				if e.Cond != nil {
					if e.Negate {
						tag = "(F)"
					} else {
						tag = "(T)"
					}
				}
				fmt.Fprintf(&sb, " b%d%s", e.To.Index, tag)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func renderNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
