package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	var k Kernel
	var got []int
	k.Schedule(10, func() { got = append(got, 2) })
	k.Schedule(5, func() { got = append(got, 1) })
	k.Schedule(10, func() { got = append(got, 3) }) // same cycle: FIFO
	k.Schedule(20, func() { got = append(got, 4) })
	end := k.Run()
	if end != 20 {
		t.Errorf("end cycle = %d, want 20", end)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestKernelCascade(t *testing.T) {
	var k Kernel
	depth := 0
	var fire func()
	fire = func() {
		depth++
		if depth < 5 {
			k.After(3, fire)
		}
	}
	k.Schedule(0, fire)
	end := k.Run()
	if depth != 5 {
		t.Errorf("depth = %d, want 5", depth)
	}
	if end != 12 {
		t.Errorf("end = %d, want 12", end)
	}
}

func TestScheduleInPastClamps(t *testing.T) {
	var k Kernel
	ran := false
	k.Schedule(10, func() {
		k.Schedule(3, func() { ran = true }) // in the past: clamp to now
	})
	end := k.Run()
	if !ran || end != 10 {
		t.Errorf("ran=%v end=%d, want true/10", ran, end)
	}
}

func TestResourceSerializes(t *testing.T) {
	r := Resource{Interval: 4}
	s1 := r.Acquire(0)
	s2 := r.Acquire(0)
	s3 := r.Acquire(100)
	if s1 != 0 || s2 != 4 {
		t.Errorf("starts %d,%d, want 0,4", s1, s2)
	}
	if s3 != 100 {
		t.Errorf("idle resource start = %d, want 100", s3)
	}
	if r.Busy() != 12 {
		t.Errorf("busy = %d, want 12", r.Busy())
	}
	r.Reset()
	if r.Acquire(0) != 0 || r.Busy() != 4 {
		t.Error("reset did not clear schedule")
	}
}

func TestResourceZeroInterval(t *testing.T) {
	r := Resource{} // Interval 0 treated as 1
	if r.Acquire(0) != 0 || r.Acquire(0) != 1 {
		t.Error("zero interval should behave as 1")
	}
}

func TestBandwidth(t *testing.T) {
	b := Bandwidth{BytesPerCycle: 16}
	done := b.Transfer(0, 64)
	if done != 4 {
		t.Errorf("64B at 16B/c done = %d, want 4", done)
	}
	done = b.Transfer(0, 64) // queued behind the first
	if done != 8 {
		t.Errorf("second transfer done = %d, want 8", done)
	}
	if b.Bytes() != 128 {
		t.Errorf("bytes = %d", b.Bytes())
	}
	// Sub-cycle transfers still take one cycle.
	b2 := Bandwidth{BytesPerCycle: 100}
	if b2.Transfer(0, 1) != 1 {
		t.Error("minimum transfer duration is 1 cycle")
	}
}

func TestQuickResourceMonotone(t *testing.T) {
	// Property: successive Acquire starts are strictly increasing by at
	// least Interval, regardless of request times.
	f := func(times []uint16) bool {
		r := Resource{Interval: 3}
		var last int64 = -3
		for _, at := range times {
			s := r.Acquire(uint64(at))
			if int64(s) < last+3 {
				return false
			}
			if s < uint64(at) {
				return false
			}
			last = int64(s)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(4, 4) != 4 {
		t.Error("Max broken")
	}
}
