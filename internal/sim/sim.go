// Package sim provides a small discrete-event simulation kernel and the
// resource primitives the timing layer builds on. The paper evaluates
// JetStream on the Structural Simulation Toolkit; this package is the
// equivalent substrate here: a deterministic event calendar plus pipelined
// resource and bandwidth models used by the DRAM, NoC and engine timing
// models.
package sim

import "container/heap"

// Kernel is a discrete-event calendar. Events scheduled for the same cycle
// fire in insertion order, which keeps runs deterministic.
type Kernel struct {
	now uint64
	seq uint64
	cal calendar
}

type calEntry struct {
	at  uint64
	seq uint64
	fn  func()
}

type calendar []calEntry

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].at != c[j].at {
		return c[i].at < c[j].at
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int)       { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x interface{}) { *c = append(*c, x.(calEntry)) }
func (c *calendar) Pop() (x interface{}) {
	x = (*c)[len(*c)-1]
	*c = (*c)[:len(*c)-1]
	return x
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() uint64 { return k.now }

// Schedule queues fn to run at cycle `at` (clamped to now).
func (k *Kernel) Schedule(at uint64, fn func()) {
	if at < k.now {
		at = k.now
	}
	heap.Push(&k.cal, calEntry{at: at, seq: k.seq, fn: fn})
	k.seq++
}

// After queues fn to run delay cycles from now.
func (k *Kernel) After(delay uint64, fn func()) { k.Schedule(k.now+delay, fn) }

// Step fires the earliest pending event; it reports false when the calendar
// is empty.
func (k *Kernel) Step() bool {
	if k.cal.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.cal).(calEntry)
	k.now = e.at
	e.fn()
	return true
}

// Run drains the calendar and returns the final cycle.
func (k *Kernel) Run() uint64 {
	for k.Step() {
	}
	return k.now
}

// Pending returns the number of scheduled events.
func (k *Kernel) Pending() int { return k.cal.Len() }

// Resource models a fully pipelined unit that can accept one operation per
// `Interval` cycles. Acquire returns when the operation starts; the caller
// adds its own latency for completion.
type Resource struct {
	Interval uint64 // cycles between successive accepts (>=1)
	nextFree uint64
	busy     uint64 // total cycles the resource was occupied
}

// Acquire reserves the resource at or after `at` and returns the start cycle.
func (r *Resource) Acquire(at uint64) uint64 {
	iv := r.Interval
	if iv == 0 {
		iv = 1
	}
	start := at
	if r.nextFree > start {
		start = r.nextFree
	}
	r.nextFree = start + iv
	r.busy += iv
	return start
}

// AcquireN reserves the resource for n back-to-back operations at or after
// `at`, returning the start cycle of the first. Generation streams walking a
// whole adjacency use this instead of n Acquire calls.
func (r *Resource) AcquireN(at uint64, n int) uint64 {
	if n <= 0 {
		return at
	}
	iv := r.Interval
	if iv == 0 {
		iv = 1
	}
	start := at
	if r.nextFree > start {
		start = r.nextFree
	}
	dur := iv * uint64(n)
	r.nextFree = start + dur
	r.busy += dur
	return start
}

// NextFree returns the cycle at which the resource becomes available.
func (r *Resource) NextFree() uint64 { return r.nextFree }

// Busy returns total occupied cycles — utilization accounting.
func (r *Resource) Busy() uint64 { return r.busy }

// Reset clears the schedule but keeps the interval.
func (r *Resource) Reset() { r.nextFree, r.busy = 0, 0 }

// Bandwidth models a byte-granular shared bus: transfers serialize at
// BytesPerCycle.
type Bandwidth struct {
	BytesPerCycle float64
	nextFree      uint64
	bytes         uint64
}

// Transfer reserves the bus for n bytes at or after `at`, returning the
// cycle the transfer completes.
func (b *Bandwidth) Transfer(at uint64, n int) uint64 {
	start := at
	if b.nextFree > start {
		start = b.nextFree
	}
	dur := uint64(float64(n)/b.BytesPerCycle + 0.999999)
	if dur == 0 {
		dur = 1
	}
	b.nextFree = start + dur
	b.bytes += uint64(n)
	return b.nextFree
}

// Bytes returns the total bytes moved.
func (b *Bandwidth) Bytes() uint64 { return b.bytes }

// NextFree returns when the bus frees up.
func (b *Bandwidth) NextFree() uint64 { return b.nextFree }

// Reset clears the schedule.
func (b *Bandwidth) Reset() { b.nextFree, b.bytes = 0, 0 }

// Max returns the larger of two cycle counts; the timing models combine
// stage bounds with it constantly.
func Max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
