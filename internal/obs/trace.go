package obs

import "sync"

// Kind identifies what a TraceEvent describes.
type Kind uint8

const (
	// KindBatchStart marks the start of a streaming batch. A carries the
	// batch index, B the update count.
	KindBatchStart Kind = iota
	// KindBatchEnd marks the end of a batch. A carries the batch index, B
	// the events processed in the batch, F the batch latency in seconds
	// when the caller timed it (0 otherwise).
	KindBatchEnd
	// KindPhaseStart marks a scheduler phase beginning. A carries the
	// cumulative phase index.
	KindPhaseStart
	// KindPhaseEnd marks a scheduler phase completing. A carries the
	// cumulative phase index, B the events processed during the phase.
	KindPhaseEnd
	// KindWorkerDrain reports one worker finishing its share of a parallel
	// phase. Worker is the PE id; A carries events processed, B events
	// forwarded to other workers.
	KindWorkerDrain
	// KindWorkerMail reports a cross-worker mail delivery. Worker is the
	// sending PE; A the destination PE, B the event count.
	KindWorkerMail
	// KindWatchdog reports a divergence-watchdog check that actually sampled
	// state. A carries the batch index, B is 1, F the observed divergence.
	KindWatchdog
	// KindFallback reports a cold-start fallback recomputation. A carries
	// the cumulative fallback count.
	KindFallback
	// KindRetry reports a host DMA transfer retry. A carries the batch
	// index, B the attempt number.
	KindRetry
)

var kindNames = [...]string{
	"batch-start", "batch-end", "phase-start", "phase-end",
	"worker-drain", "worker-mail", "watchdog", "fallback", "retry",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// TraceEvent is one instrumentation event. It is a plain value struct so
// passing it through the Tracer interface does not allocate; the meaning of
// A, B, and F depends on Kind (see the Kind constants). Seq is a per-source
// monotonic sequence number; Worker is the PE id where that applies, -1
// otherwise.
type TraceEvent struct {
	Kind   Kind
	Seq    uint64
	Worker int
	A, B   uint64
	F      float64
}

// Tracer receives instrumentation events. Implementations must be safe for
// concurrent use: parallel workers trace without synchronization. A Tracer
// should return quickly — it runs on the engine's hot path boundaries.
type Tracer interface {
	Trace(TraceEvent)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(TraceEvent)

// Trace calls f(e).
func (f TracerFunc) Trace(e TraceEvent) { f(e) }

// Nop is a Tracer that discards every event. Instrumented code may hold it
// instead of a nil check; the call devirtualizes to nothing.
var Nop Tracer = nopTracer{}

type nopTracer struct{}

func (nopTracer) Trace(TraceEvent) {}

// Collector is a Tracer that records every event, for tests.
type Collector struct {
	mu     sync.Mutex
	events []TraceEvent
}

// Trace appends e.
func (c *Collector) Trace(e TraceEvent) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (c *Collector) Events() []TraceEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TraceEvent(nil), c.events...)
}

// Count returns how many events of kind k were recorded.
func (c *Collector) Count(k Kind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}
