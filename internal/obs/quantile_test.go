package obs

import "testing"

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", got)
	}
	// 90 fast observations (value 3 -> bucket upper 3), 10 slow (value 1000
	// -> bucket upper 1023): p50 must report the fast bucket, p99 the slow.
	for i := 0; i < 90; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("p50 = %d, want 3", got)
	}
	if got := s.Quantile(0.99); got != 1023 {
		t.Fatalf("p99 = %d, want 1023", got)
	}
	if got := s.Quantile(0); got != 3 {
		t.Fatalf("p0 = %d, want 3 (first non-empty bucket)", got)
	}
	if got := s.Quantile(1); got != 1023 {
		t.Fatalf("p100 = %d, want 1023", got)
	}
	if got := s.Quantile(2); got != 1023 {
		t.Fatalf("clamped q>1 = %d, want 1023", got)
	}
}
