// Package obs is the observability substrate: a metrics registry whose hot
// paths (Counter.Add, Gauge.Set, Max.Observe, Histogram.Observe) perform no
// allocation and no locking — one atomic operation each — plus a pluggable
// Tracer for event-level instrumentation and exporters in Prometheus text and
// expvar form.
//
// The paper's whole evaluation is counting (events processed vs. coalesced,
// traffic per channel, queue occupancy), but a flat per-batch counter
// snapshot cannot answer the operational questions a long-running stream
// raises: which worker is hot, which DRAM channel saturates, how batch
// latency is distributed. This package holds the time-resolved, labeled view;
// internal/stats remains the exact per-operation ledger the figures are
// derived from.
//
// Registration (Registry.Counter and friends) takes a lock and may allocate;
// it happens at setup or phase boundaries. The returned handles are the hot
// path: they are plain atomics, safe for concurrent use, and safe to read
// (Load, Snapshot) while writers are active — which is what lets an HTTP
// scrape observe a live engine without stopping it.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if n != 0 {
		c.v.Add(n)
	}
}

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue occupancy, temperature).
type Gauge struct {
	v atomic.Int64
}

// Set stores x.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max is a running-maximum gauge: Observe keeps the largest value seen.
// High-water marks (peak queue occupancy, largest shard backlog) use it.
type Max struct {
	v atomic.Uint64
}

// Observe raises the maximum to x if x exceeds it.
func (m *Max) Observe(x uint64) {
	for {
		cur := m.v.Load()
		if x <= cur || m.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Load returns the maximum observed so far.
func (m *Max) Load() uint64 { return m.v.Load() }

// histBuckets is the fixed bucket count of a log-2 histogram: one bucket per
// possible bits.Len64 result (0 through 64).
const histBuckets = 65

// Histogram counts observations in fixed log-2 buckets: bucket i holds the
// values v with bits.Len64(v) == i, i.e. bucket 0 holds exactly 0 and bucket
// i >= 1 holds [2^(i-1), 2^i - 1]. The geometry is fixed so Observe is one
// bit scan and two atomic adds — no configuration, no allocation, and any
// uint64 (cycle counts, nanoseconds, event counts) maps to a bucket.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket is one histogram bucket in a snapshot: Count observations with
// value <= Upper (and greater than the previous bucket's Upper).
type Bucket struct {
	Upper uint64
	Count uint64
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// non-cumulative and trimmed after the last non-empty one.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets []Bucket
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) of the
// observations: the inclusive upper edge of the log-2 bucket the quantile
// falls in — within 2x of the true value, which is what a latency p50/p99
// report needs. Returns 0 for an empty snapshot; q outside [0,1] is clamped.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	total := uint64(0)
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the observation at the quantile.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	seen := uint64(0)
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Upper
		}
	}
	return s.Buckets[len(s.Buckets)-1].Upper
}

// Snapshot copies the histogram. Taken while writers are active it is a
// consistent-enough view: each bucket is read atomically, and Count is read
// first so Count <= sum of bucket counts can transiently hold, never the
// reverse claim of observations that do not exist.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	last := -1
	var counts [histBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		s.Buckets = append(s.Buckets, Bucket{Upper: BucketUpper(i), Count: counts[i]})
	}
	return s
}
