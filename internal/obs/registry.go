package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name dimension, e.g. {Key: "worker", Value: "3"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind tags a registry entry for export.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindMax
	kindHistogram
	kindFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type entry struct {
	name   string
	labels []Label
	kind   metricKind
	metric any           // *Counter, *Gauge, *Max, *Histogram
	load   func() uint64 // kindFunc only
}

// Registry is a named collection of metrics. Registration (Counter, Gauge,
// Max, Histogram, CounterFunc) is get-or-create keyed by name+labels, takes
// the registry lock and may allocate; the returned handles are lock-free.
// Export (WritePrometheus, Samples, Handler, Var) walks the registry under
// the lock but reads every value atomically, so it is safe during live runs.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byKey   map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*entry)}
}

func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup returns the entry for name+labels, creating it with mk on first use.
// Registering the same name+labels with a different kind is a programming
// error and panics.
func (r *Registry) lookup(name string, labels []Label, kind metricKind, mk func() any) *entry {
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byKey[k]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind.promType(), e.kind.promType()))
		}
		return e
	}
	e := &entry{name: name, labels: append([]Label(nil), labels...), kind: kind, metric: mk()}
	r.byKey[k] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, kindCounter, func() any { return &Counter{} }).metric.(*Counter)
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, kindGauge, func() any { return &Gauge{} }).metric.(*Gauge)
}

// Max returns the running-maximum gauge registered under name+labels.
func (r *Registry) Max(name string, labels ...Label) *Max {
	return r.lookup(name, labels, kindMax, func() any { return &Max{} }).metric.(*Max)
}

// Histogram returns the log-2 histogram registered under name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, labels, kindHistogram, func() any { return &Histogram{} }).metric.(*Histogram)
}

// CounterFunc registers a counter whose value is read from load at export
// time — for monotonic values that already live elsewhere (the NoC transfer
// matrix), so the hot path is not charged twice. load must be safe to call
// concurrently. Re-registering the same name+labels replaces the function.
func (r *Registry) CounterFunc(name string, load func() uint64, labels ...Label) {
	e := r.lookup(name, labels, kindFunc, func() any { return nil })
	r.mu.Lock()
	e.load = load
	r.mu.Unlock()
}

// Sample is one exported value. Histograms expand into name_count and
// name_sum samples (buckets are exported only in Prometheus form).
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// snapshot copies the entry list so value reads happen outside the lock.
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*entry(nil), r.entries...)
}

// Samples returns a flat snapshot of every metric.
func (r *Registry) Samples() []Sample {
	var out []Sample
	for _, e := range r.snapshot() {
		switch e.kind {
		case kindCounter:
			out = append(out, Sample{e.name, e.labels, float64(e.metric.(*Counter).Load())})
		case kindGauge:
			out = append(out, Sample{e.name, e.labels, float64(e.metric.(*Gauge).Load())})
		case kindMax:
			out = append(out, Sample{e.name, e.labels, float64(e.metric.(*Max).Load())})
		case kindFunc:
			if e.load != nil {
				out = append(out, Sample{e.name, e.labels, float64(e.load())})
			}
		case kindHistogram:
			h := e.metric.(*Histogram)
			out = append(out, Sample{e.name + "_count", e.labels, float64(h.Count())})
			out = append(out, Sample{e.name + "_sum", e.labels, float64(h.Sum())})
		}
	}
	return out
}

// Get returns the sample for name+labels, or false. Intended for tests and
// snapshot assembly, not hot paths.
func (r *Registry) Get(name string, labels ...Label) (float64, bool) {
	want := key(name, labels)
	for _, s := range r.Samples() {
		if key(s.Name, s.Labels) == want {
			return s.Value, true
		}
	}
	return 0, false
}

func promLabels(w io.Writer, labels []Label, extra ...Label) {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return
	}
	io.WriteString(w, "{")
	for i, l := range all {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "%s=%q", l.Key, l.Value)
	}
	io.WriteString(w, "}")
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), grouping series into families with one TYPE line
// each. Histograms emit cumulative _bucket series with le labels plus _sum
// and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	entries := r.snapshot()
	typed := make(map[string]bool, len(entries))
	for _, e := range entries {
		if !typed[e.name] {
			typed[e.name] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind.promType())
			// Emit the whole family together (Prometheus requires series of
			// one family to be contiguous).
			for _, f := range entries {
				if f.name != e.name {
					continue
				}
				writePromEntry(w, f)
			}
		}
	}
}

func writePromEntry(w io.Writer, e *entry) {
	switch e.kind {
	case kindCounter:
		writePromLine(w, e.name, e.labels, float64(e.metric.(*Counter).Load()))
	case kindGauge:
		writePromLine(w, e.name, e.labels, float64(e.metric.(*Gauge).Load()))
	case kindMax:
		writePromLine(w, e.name, e.labels, float64(e.metric.(*Max).Load()))
	case kindFunc:
		if e.load != nil {
			writePromLine(w, e.name, e.labels, float64(e.load()))
		}
	case kindHistogram:
		s := e.metric.(*Histogram).Snapshot()
		cum := uint64(0)
		for _, b := range s.Buckets {
			cum += b.Count
			io.WriteString(w, e.name+"_bucket")
			promLabels(w, e.labels, L("le", strconv.FormatUint(b.Upper, 10)))
			fmt.Fprintf(w, " %d\n", cum)
		}
		io.WriteString(w, e.name+"_bucket")
		promLabels(w, e.labels, L("le", "+Inf"))
		fmt.Fprintf(w, " %d\n", s.Count)
		writePromLine(w, e.name+"_sum", e.labels, float64(s.Sum))
		writePromLine(w, e.name+"_count", e.labels, float64(s.Count))
	}
}

func writePromLine(w io.Writer, name string, labels []Label, v float64) {
	io.WriteString(w, name)
	promLabels(w, labels)
	fmt.Fprintf(w, " %s\n", strconv.FormatFloat(v, 'g', -1, 64))
}

// Handler returns an http.Handler serving the Prometheus text format — the
// scrape endpoint a long-running stream mounts at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Var adapts the registry to expvar.Var: String renders every sample as one
// JSON object keyed by "name{label=value,...}", sorted, so the registry can
// be published under a single expvar name.
func (r *Registry) Var() expvar.Var { return registryVar{r} }

type registryVar struct{ r *Registry }

func (v registryVar) String() string {
	samples := v.r.Samples()
	keys := make([]string, len(samples))
	byKey := make(map[string]float64, len(samples))
	for i, s := range samples {
		var b strings.Builder
		b.WriteString(s.Name)
		if len(s.Labels) > 0 {
			b.WriteString("{")
			for j, l := range s.Labels {
				if j > 0 {
					b.WriteString(",")
				}
				b.WriteString(l.Key + "=" + l.Value)
			}
			b.WriteString("}")
		}
		keys[i] = b.String()
		byKey[keys[i]] = s.Value
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q: %s", k, strconv.FormatFloat(byKey[k], 'g', -1, 64))
	}
	b.WriteString("}")
	return b.String()
}
