package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketInvariant checks the log-2 bucket geometry: every
// observed value lands in exactly the bucket whose range contains it, bucket
// counts sum to Count, and bucket upper bounds are strictly increasing with
// bucket i covering (BucketUpper(i-1), BucketUpper(i)].
func TestHistogramBucketInvariant(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	values := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, math.MaxUint64}
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Uint64()>>uint(rng.Intn(64)))
	}
	var sum uint64
	for _, v := range values {
		h.Observe(v)
		sum += v
	}

	if h.Count() != uint64(len(values)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(values))
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
	}

	s := h.Snapshot()
	if s.Count != h.Count() || s.Sum != h.Sum() {
		t.Fatalf("snapshot count/sum = %d/%d, want %d/%d", s.Count, s.Sum, h.Count(), h.Sum())
	}

	// Bucket counts sum to Count.
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}

	// Upper bounds strictly increase and match BucketUpper geometry.
	for i := 1; i < len(s.Buckets); i++ {
		if s.Buckets[i].Upper <= s.Buckets[i-1].Upper {
			t.Fatalf("bucket %d upper %d <= previous %d", i, s.Buckets[i].Upper, s.Buckets[i-1].Upper)
		}
	}
	for i, b := range s.Buckets {
		if want := BucketUpper(i); b.Upper != want {
			t.Fatalf("bucket %d upper = %d, want %d", i, b.Upper, want)
		}
	}

	// Recount per bucket from raw values: value v belongs to bucket
	// bits.Len64(v), i.e. the first bucket whose Upper >= v.
	var want [histBuckets]uint64
	for _, v := range values {
		want[bits.Len64(v)]++
	}
	for i, b := range s.Buckets {
		if b.Count != want[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, b.Count, want[i])
		}
	}
	// Trimmed tail really is empty.
	for i := len(s.Buckets); i < histBuckets; i++ {
		if want[i] != 0 {
			t.Fatalf("bucket %d trimmed but has %d observations", i, want[i])
		}
	}

	// Range membership: each bucket's range is (BucketUpper(i-1), BucketUpper(i)].
	for _, v := range values {
		i := bits.Len64(v)
		if v > BucketUpper(i) {
			t.Fatalf("value %d above its bucket %d upper %d", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) && v != 0 {
			t.Fatalf("value %d not above bucket %d lower bound %d", v, i, BucketUpper(i-1))
		}
	}
}

func TestBucketUpperEdges(t *testing.T) {
	cases := map[int]uint64{
		-1: 0, 0: 0, 1: 1, 2: 3, 3: 7, 10: 1023,
		63: 1<<63 - 1, 64: math.MaxUint64, 65: math.MaxUint64,
	}
	for i, want := range cases {
		if got := BucketUpper(i); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestMaxObserve(t *testing.T) {
	var m Max
	for _, v := range []uint64{3, 1, 7, 7, 2} {
		m.Observe(v)
	}
	if m.Load() != 7 {
		t.Fatalf("Max = %d, want 7", m.Load())
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Observe(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if m.Load() != 7999 {
		t.Fatalf("Max after concurrent observes = %d, want 7999", m.Load())
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("worker", "0"))
	b := r.Counter("x_total", L("worker", "0"))
	c := r.Counter("x_total", L("worker", "1"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	a.Add(5)
	if v, ok := r.Get("x_total", L("worker", "0")); !ok || v != 5 {
		t.Fatalf("Get = %v,%v want 5,true", v, ok)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different kind did not panic")
		}
	}()
	r.Gauge("x_total", L("worker", "0"))
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("js_events_total", L("worker", "0")).Add(10)
	r.Counter("js_events_total", L("worker", "1")).Add(20)
	r.Gauge("js_queue_live").Set(42)
	h := r.Histogram("js_latency_ns")
	h.Observe(1) // bucket 1 (le 1)
	h.Observe(3) // bucket 2 (le 3)
	h.Observe(3)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		"# TYPE js_events_total counter",
		`js_events_total{worker="0"} 10`,
		`js_events_total{worker="1"} 20`,
		"# TYPE js_queue_live gauge",
		"js_queue_live 42",
		"# TYPE js_latency_ns histogram",
		`js_latency_ns_bucket{le="1"} 1`,
		`js_latency_ns_bucket{le="3"} 3`, // cumulative
		`js_latency_ns_bucket{le="+Inf"} 3`,
		"js_latency_ns_sum 7",
		"js_latency_ns_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prometheus output missing %q\n%s", want, body)
		}
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	// One TYPE line per family even with multiple series.
	if n := strings.Count(body, "# TYPE js_events_total"); n != 1 {
		t.Errorf("js_events_total TYPE lines = %d, want 1", n)
	}
}

func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	var backing uint64 = 9
	r.CounterFunc("js_external_total", func() uint64 { return backing }, L("src", "0"), L("dst", "1"))
	if v, ok := r.Get("js_external_total", L("src", "0"), L("dst", "1")); !ok || v != 9 {
		t.Fatalf("Get = %v,%v want 9,true", v, ok)
	}
	backing = 11
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `js_external_total{src="0",dst="1"} 11`) {
		t.Fatalf("CounterFunc not re-read at export:\n%s", sb.String())
	}
}

func TestExpvarVar(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(1)
	r.Gauge("b", L("k", "v")).Set(-2)
	var m map[string]float64
	if err := json.Unmarshal([]byte(r.Var().String()), &m); err != nil {
		t.Fatalf("expvar output is not valid JSON: %v\n%s", err, r.Var().String())
	}
	if m["a_total"] != 1 || m["b{k=v}"] != -2 {
		t.Fatalf("expvar map = %v", m)
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Trace(TraceEvent{Kind: KindBatchStart, A: 0})
	c.Trace(TraceEvent{Kind: KindBatchEnd, A: 0, B: 12})
	c.Trace(TraceEvent{Kind: KindBatchStart, A: 1})
	if c.Count(KindBatchStart) != 2 || c.Count(KindBatchEnd) != 1 {
		t.Fatalf("counts = %d/%d", c.Count(KindBatchStart), c.Count(KindBatchEnd))
	}
	if KindWorkerDrain.String() != "worker-drain" || Kind(200).String() != "unknown" {
		t.Fatal("Kind.String mismatch")
	}
	Nop.Trace(TraceEvent{}) // must not panic
}
