// Package stats collects work and traffic counters for the functional and
// timing layers. Every figure in the JetStream evaluation that is not a raw
// execution time (Figs 9, 10, 11) is derived from these counters, so they are
// kept deliberately explicit rather than folded into engine-local variables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counters accumulates work counts for one engine run (an initial evaluation
// or one streaming batch). The zero value is ready to use.
type Counters struct {
	// Functional work.
	EventsProcessed  uint64 // events popped from the queue and applied
	EventsGenerated  uint64 // events produced by propagation
	EventsCoalesced  uint64 // insertions merged into an existing queue slot
	VertexReads      uint64 // vertex-state reads by the apply units
	VertexWrites     uint64 // vertex-state writes by the apply units
	EdgeReads        uint64 // edges fetched by the generation streams
	VerticesReset    uint64 // vertices reset to Identity during delete recovery
	RequestsIssued   uint64 // reapproximation request events created
	DeletesDiscarded uint64 // delete events pruned by VAP/DAP before reset
	Rounds           uint64 // queue drain rounds
	Phases           uint64 // scheduler phases (delete, reapprox, compute, ...)

	// Off-chip traffic (filled by the timing layer).
	BytesTransferred uint64 // bytes moved from DRAM into on-chip storage
	BytesUsed        uint64 // bytes of that traffic actually consumed
	DRAMAccesses     uint64 // 64-byte line transfers
	RowHits          uint64 // DRAM row-buffer hits
	SpillBytes       uint64 // cross-slice / overflow events written off-chip

	// Resilience (ingest validation, fault injection, recovery).
	UpdatesDropped     uint64 // invalid updates dropped by the Repair ingest policy
	BatchesRepaired    uint64 // batches with at least one update dropped
	FaultsInjected     uint64 // corruptions introduced by the fault injector
	TransfersRetried   uint64 // DMA transfer attempts retried after a fault
	TransfersAborted   uint64 // DMA transfers abandoned after exhausting retries
	ColdStartFallbacks uint64 // watchdog/restore cold-start recomputations

	// Timing results.
	Cycles uint64 // accelerator cycles at the configured clock
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.EventsProcessed += o.EventsProcessed
	c.EventsGenerated += o.EventsGenerated
	c.EventsCoalesced += o.EventsCoalesced
	c.VertexReads += o.VertexReads
	c.VertexWrites += o.VertexWrites
	c.EdgeReads += o.EdgeReads
	c.VerticesReset += o.VerticesReset
	c.RequestsIssued += o.RequestsIssued
	c.DeletesDiscarded += o.DeletesDiscarded
	c.Rounds += o.Rounds
	c.Phases += o.Phases
	c.BytesTransferred += o.BytesTransferred
	c.BytesUsed += o.BytesUsed
	c.DRAMAccesses += o.DRAMAccesses
	c.RowHits += o.RowHits
	c.SpillBytes += o.SpillBytes
	c.UpdatesDropped += o.UpdatesDropped
	c.BatchesRepaired += o.BatchesRepaired
	c.FaultsInjected += o.FaultsInjected
	c.TransfersRetried += o.TransfersRetried
	c.TransfersAborted += o.TransfersAborted
	c.ColdStartFallbacks += o.ColdStartFallbacks
	c.Cycles += o.Cycles
}

// Sub subtracts o from c field by field. Callers snapshotting cumulative
// counters use it to compute per-operation deltas.
func (c *Counters) Sub(o *Counters) {
	c.EventsProcessed -= o.EventsProcessed
	c.EventsGenerated -= o.EventsGenerated
	c.EventsCoalesced -= o.EventsCoalesced
	c.VertexReads -= o.VertexReads
	c.VertexWrites -= o.VertexWrites
	c.EdgeReads -= o.EdgeReads
	c.VerticesReset -= o.VerticesReset
	c.RequestsIssued -= o.RequestsIssued
	c.DeletesDiscarded -= o.DeletesDiscarded
	c.Rounds -= o.Rounds
	c.Phases -= o.Phases
	c.BytesTransferred -= o.BytesTransferred
	c.BytesUsed -= o.BytesUsed
	c.DRAMAccesses -= o.DRAMAccesses
	c.RowHits -= o.RowHits
	c.SpillBytes -= o.SpillBytes
	c.UpdatesDropped -= o.UpdatesDropped
	c.BatchesRepaired -= o.BatchesRepaired
	c.FaultsInjected -= o.FaultsInjected
	c.TransfersRetried -= o.TransfersRetried
	c.TransfersAborted -= o.TransfersAborted
	c.ColdStartFallbacks -= o.ColdStartFallbacks
	c.Cycles -= o.Cycles
}

// Reset zeroes every counter.
func (c *Counters) Reset() { *c = Counters{} }

// VertexAccesses is the Fig 9 numerator: total vertex-state touches.
func (c *Counters) VertexAccesses() uint64 { return c.VertexReads + c.VertexWrites }

// EventsUnaccounted is the queue conservation residual: at quiescence every
// generated event has either been processed or coalesced into one that was,
// so the residual must be zero — at any parallelism. The quiescence tests
// assert it; a nonzero value means events were lost or double-counted
// somewhere between emission and retirement.
func (c *Counters) EventsUnaccounted() int64 {
	return int64(c.EventsGenerated) - int64(c.EventsProcessed) - int64(c.EventsCoalesced)
}

// MemoryUtilization is the Fig 11 metric: bytes consumed by the compute
// engine divided by bytes transferred from off-chip memory. Returns 0 when no
// traffic occurred.
func (c *Counters) MemoryUtilization() float64 {
	if c.BytesTransferred == 0 {
		return 0
	}
	u := float64(c.BytesUsed) / float64(c.BytesTransferred)
	if u > 1 {
		u = 1
	}
	return u
}

// String renders the counters as a compact single-line summary.
func (c *Counters) String() string {
	return fmt.Sprintf("events=%d gen=%d coalesced=%d vtx=%d/%d edges=%d resets=%d rounds=%d cycles=%d",
		c.EventsProcessed, c.EventsGenerated, c.EventsCoalesced,
		c.VertexReads, c.VertexWrites, c.EdgeReads, c.VerticesReset, c.Rounds, c.Cycles)
}

// Table renders a two-column table of every nonzero counter, for reports.
func (c *Counters) Table() string {
	rows := []struct {
		k string
		v uint64
	}{
		{"events processed", c.EventsProcessed},
		{"events generated", c.EventsGenerated},
		{"events coalesced", c.EventsCoalesced},
		{"vertex reads", c.VertexReads},
		{"vertex writes", c.VertexWrites},
		{"edge reads", c.EdgeReads},
		{"vertices reset", c.VerticesReset},
		{"requests issued", c.RequestsIssued},
		{"deletes discarded", c.DeletesDiscarded},
		{"drain rounds", c.Rounds},
		{"phases", c.Phases},
		{"bytes transferred", c.BytesTransferred},
		{"bytes used", c.BytesUsed},
		{"DRAM accesses", c.DRAMAccesses},
		{"row hits", c.RowHits},
		{"spill bytes", c.SpillBytes},
		{"updates dropped", c.UpdatesDropped},
		{"batches repaired", c.BatchesRepaired},
		{"faults injected", c.FaultsInjected},
		{"transfers retried", c.TransfersRetried},
		{"transfers aborted", c.TransfersAborted},
		{"cold-start fallbacks", c.ColdStartFallbacks},
		{"cycles", c.Cycles},
	}
	var b strings.Builder
	for _, r := range rows {
		if r.v != 0 {
			fmt.Fprintf(&b, "%-20s %12d\n", r.k, r.v)
		}
	}
	return b.String()
}

// Distribution summarizes a set of samples; used by reports on degree
// distributions and per-batch timings.
type Distribution struct {
	Min, Max, Mean, P50, P95 float64
	N                        int
}

// Summarize computes a Distribution over xs (xs is not modified).
func Summarize(xs []float64) Distribution {
	if len(xs) == 0 {
		return Distribution{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, x := range s {
		sum += x
	}
	idx := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return Distribution{
		Min: s[0], Max: s[len(s)-1], Mean: sum / float64(len(s)),
		P50: idx(0.5), P95: idx(0.95), N: len(s),
	}
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
// It is the aggregation the paper uses for speedup summaries (Table 3).
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}
