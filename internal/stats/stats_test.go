package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func filled() *Counters {
	return &Counters{
		EventsProcessed: 1, EventsGenerated: 2, EventsCoalesced: 3,
		VertexReads: 4, VertexWrites: 5, EdgeReads: 6, VerticesReset: 7,
		RequestsIssued: 8, DeletesDiscarded: 9, Rounds: 10, Phases: 11,
		BytesTransferred: 12, BytesUsed: 6, DRAMAccesses: 14, RowHits: 15,
		SpillBytes: 16, Cycles: 17,
	}
}

func TestAddAndReset(t *testing.T) {
	c := filled()
	c.Add(filled())
	if c.EventsProcessed != 2 || c.Cycles != 34 || c.SpillBytes != 32 {
		t.Errorf("Add broken: %+v", c)
	}
	c.Reset()
	if *c != (Counters{}) {
		t.Errorf("Reset left %+v", c)
	}
}

func TestVertexAccesses(t *testing.T) {
	c := filled()
	if c.VertexAccesses() != 9 {
		t.Errorf("VertexAccesses = %d, want 9", c.VertexAccesses())
	}
}

func TestMemoryUtilization(t *testing.T) {
	var c Counters
	if c.MemoryUtilization() != 0 {
		t.Error("zero traffic should report 0")
	}
	c.BytesTransferred = 100
	c.BytesUsed = 50
	if u := c.MemoryUtilization(); u != 0.5 {
		t.Errorf("util = %v", u)
	}
	c.BytesUsed = 200 // clamped
	if u := c.MemoryUtilization(); u != 1 {
		t.Errorf("util = %v, want clamp to 1", u)
	}
}

func TestStringAndTable(t *testing.T) {
	c := filled()
	if s := c.String(); !strings.Contains(s, "events=1") {
		t.Errorf("String = %q", s)
	}
	tab := c.Table()
	for _, want := range []string{"events processed", "vertices reset", "cycles"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Table missing %q", want)
		}
	}
	// Zero counters are omitted.
	empty := (&Counters{Cycles: 5}).Table()
	if strings.Contains(empty, "events processed") {
		t.Error("Table should omit zero rows")
	}
}

func TestSummarize(t *testing.T) {
	if d := Summarize(nil); d.N != 0 {
		t.Error("empty summarize")
	}
	d := Summarize([]float64{3, 1, 2, 4, 5})
	if d.Min != 1 || d.Max != 5 || d.Mean != 3 || d.P50 != 3 || d.N != 5 {
		t.Errorf("Summarize = %+v", d)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean(nil); g != 0 {
		t.Errorf("empty geomean = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Errorf("non-positive geomean = %v", g)
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	// Non-positive entries are ignored, matching speedup-table semantics.
	if g := GeoMean([]float64{2, 8, 0}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean with zero = %v, want 4", g)
	}
}

func TestQuickGeoMeanBounds(t *testing.T) {
	// Property: geomean lies between min and max of the positive inputs.
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && x < 1e100 {
				pos = append(pos, x)
			}
		}
		if len(pos) == 0 {
			return true
		}
		g := GeoMean(pos)
		min, max := pos[0], pos[0]
		for _, x := range pos {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
