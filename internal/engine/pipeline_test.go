package engine

import (
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
	"jetstream/internal/obs"
	"jetstream/internal/stats"
)

// Tests for the functional/timing pipeline overlap (pipeline.go). The whole
// point of the decorator is that it changes wall-clock behaviour only: every
// simulated quantity — cycles, traffic counters, per-worker attributions —
// must be bitwise-identical with overlap on or off, across both timing
// fidelities, including under the race detector (which these tests exist to
// drive over the handoff).

func overlapConfig(detailed bool) Config {
	cfg := DefaultConfig()
	cfg.Timing = true
	cfg.DetailedTiming = detailed
	cfg.PipelineOverlap = true
	return cfg
}

// TestPipelineOverlapBitwiseCycles pins the determinism contract on a real
// workload at both timing fidelities: same graph, same kernel, overlap on vs
// off, identical cycle totals and identical traffic counters.
func TestPipelineOverlapBitwiseCycles(t *testing.T) {
	for _, detailed := range []bool{false, true} {
		name := map[bool]string{false: "batch", true: "detailed"}[detailed]
		t.Run(name, func(t *testing.T) {
			g := graph.RMAT(graph.RMATConfig{Vertices: 500, Edges: 4000, Seed: 5})
			run := func(overlap bool) (uint64, stats.Counters, []float64) {
				cfg := overlapConfig(detailed)
				cfg.PipelineOverlap = overlap
				st := &stats.Counters{}
				e := New(g, algo.NewSSSP(0), cfg, st)
				e.RunToConvergence()
				cy := e.Cycles() // joins the pipeline; st is settled after
				return cy, *st, e.State()
			}
			offCy, offSt, offState := run(false)
			onCy, onSt, onState := run(true)
			if offCy == 0 {
				t.Fatal("timing model produced zero cycles")
			}
			if onCy != offCy {
				t.Fatalf("overlap changed cycles: %d vs %d", onCy, offCy)
			}
			if onSt != offSt {
				t.Fatalf("overlap changed counters:\n  on:  %+v\n  off: %+v", onSt, offSt)
			}
			if d := algo.MaxAbsDiff(onState, offState); d != 0 {
				t.Fatalf("overlap changed functional state by %v", d)
			}
		})
	}
}

// TestPipelineOverlapInterleavedReads reads cycles mid-run (every cycle read
// joins and restarts the pipeline) and requires the running totals to track
// the non-overlapped engine exactly — the host's per-batch Cycles() pattern.
func TestPipelineOverlapInterleavedReads(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2400, Seed: 9})
	mk := func(overlap bool) *Engine {
		cfg := overlapConfig(false)
		cfg.PipelineOverlap = overlap
		return New(g, algo.NewBFS(0), cfg, nil)
	}
	on, off := mk(true), mk(false)
	check := func(stage string) {
		t.Helper()
		if oc, fc := on.Cycles(), off.Cycles(); oc != fc {
			t.Fatalf("%s: mid-run cycles diverge: %d vs %d", stage, oc, fc)
		}
	}
	on.SeedInitialEvents()
	off.SeedInitialEvents()
	check("after seed")
	on.RunPhase(on.ComputeHandler())
	off.RunPhase(off.ComputeHandler())
	check("after compute phase")
	// Cycles() joined the pipeline; further charges must restart it cleanly.
	on.ChargeSpill(64)
	off.ChargeSpill(64)
	on.ChargeStreamRead(32)
	off.ChargeStreamRead(32)
	check("after post-join charges")
}

// TestPipelineFlushIdempotent checks the join is safe to call repeatedly and
// from every read path (Cycles, SyncTiming, FlushObs, Channels), and that the
// consumer goroutine restarts cleanly after each join.
func TestPipelineFlushIdempotent(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1200, Seed: 3})
	e := New(g, algo.NewSSSP(0), overlapConfig(false), nil)
	e.SetObs(NewObs(obs.NewRegistry(), nil))
	e.RunToConvergence()
	c1 := e.Cycles()
	e.SyncTiming()
	e.SyncTiming()
	e.FlushObs()
	_ = e.Channels()
	if c2 := e.Cycles(); c2 != c1 {
		t.Fatalf("idle flushes changed cycles: %d vs %d", c2, c1)
	}
	// Restart after join: more work must still be simulated.
	e.ChargeSpill(10)
	if c3 := e.Cycles(); c3 <= c1 {
		t.Fatalf("post-flush charge did not accumulate: %d vs %d", c3, c1)
	}
	p, ok := e.tm.(*pipelined)
	if !ok {
		t.Fatal("PipelineOverlap config did not install the pipelined model")
	}
	if p.flushes.Load() == 0 || p.handoffs.Load() == 0 {
		t.Fatalf("telemetry silent: %d flushes, %d handoffs", p.flushes.Load(), p.handoffs.Load())
	}
}

// TestPipelineObserveMetrics checks the handoff telemetry and the wrapped
// model's series both reach the registry through the decorator.
func TestPipelineObserveMetrics(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1600, Seed: 7})
	e := New(g, algo.NewSSSP(0), overlapConfig(false), nil)
	ob := NewObs(obs.NewRegistry(), nil)
	e.SetObs(ob)
	e.RunToConvergence()
	e.FlushObs()
	if v, ok := ob.Reg.Get("jetstream_pipeline_handoffs_total"); !ok || v == 0 {
		t.Fatalf("jetstream_pipeline_handoffs_total = %v, %v; want > 0", v, ok)
	}
	if _, ok := ob.Reg.Get("jetstream_pipeline_flushes_total"); !ok {
		t.Fatal("jetstream_pipeline_flushes_total not registered")
	}
	// The wrapped batch model exports DRAM series; the decorator must forward
	// the Observe call rather than swallow it.
	if _, ok := ob.Reg.Get("jetstream_dram_channel_accesses_total", obs.L("channel", "0")); !ok {
		t.Fatal("wrapped model's DRAM series not forwarded through the pipeline decorator")
	}
	// Representation-mix gauges are published at flush boundaries.
	if _, ok := ob.Reg.Get("jetstream_graph_inline_vertices", obs.L("dir", "out")); !ok {
		t.Fatal("jetstream_graph_inline_vertices gauge not registered")
	}
}
