package engine

import (
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/stats"
)

func parallelConfig(p int) Config {
	cfg := DefaultConfig()
	cfg.Timing = false
	cfg.Parallelism = p
	return cfg
}

// TestParallelStaticMatchesSequential is the engine-level differential: a
// from-scratch convergence at parallelism 8 against the same run at 1 —
// bitwise for selective kernels, within the truncation bound for
// accumulative ones.
func TestParallelStaticMatchesSequential(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			a := makeAlg(t, name)
			g := testGraphFor(a, 42)
			seq := New(g, a, parallelConfig(1), nil)
			seq.RunToConvergence()
			par := New(g, makeAlg(t, name), parallelConfig(8), nil)
			par.RunToConvergence()
			d := algo.MaxAbsDiff(seq.State(), par.State())
			if a.Class() == algo.Selective {
				if d != 0 {
					t.Errorf("selective parallel state differs from sequential by %v", d)
				}
			} else if tol := tolFor(a, g); d > tol {
				t.Errorf("accumulative parallel state differs by %v > %v", d, tol)
			}
		})
	}
}

// TestParallelismGates verifies every condition that must force the
// sequential path: an explicit 1, the timing model, slicing, a trace hook,
// and the vertex-count clamp.
func TestParallelismGates(t *testing.T) {
	a := algo.NewSSSP(0)
	g := testGraphFor(a, 3)

	if e := New(g, a, parallelConfig(1), nil); e.parallelism() != 1 {
		t.Error("Parallelism 1 did not gate to sequential")
	}
	if e := New(g, a, parallelConfig(8), nil); e.parallelism() != 8 {
		t.Errorf("plain functional config: parallelism %d, want 8", e.parallelism())
	}

	timed := parallelConfig(8)
	timed.Timing = true
	if e := New(g, a, timed, nil); e.parallelism() != 1 {
		t.Error("timing model did not gate to sequential")
	}

	if e := New(g, a, parallelConfig(8), nil, WithPartition(2)); e.parallelism() != 1 {
		t.Error("slicing did not gate to sequential")
	}

	e := New(g, a, parallelConfig(8), nil)
	e.SetTrace(func(event.Event) {})
	if e.parallelism() != 1 {
		t.Error("trace hook did not gate to sequential")
	}
	e.SetTrace(nil)
	if e.parallelism() != 8 {
		t.Error("removing the trace hook did not restore parallelism")
	}

	tiny := graph.MustBuild(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}})
	if got := New(tiny, a, parallelConfig(8), nil).parallelism(); got != 3 {
		t.Errorf("vertex clamp: parallelism %d on a 3-vertex graph, want 3", got)
	}
}

// TestParallelOwnershipCoversAllVertices checks the cached partition is a
// total disjoint assignment and is invalidated when worker count changes.
func TestParallelOwnershipCoversAllVertices(t *testing.T) {
	a := algo.NewSSSP(0)
	g := testGraphFor(a, 5)
	e := New(g, a, parallelConfig(4), nil)
	owner := e.ownership(4)
	if len(owner) != g.NumVertices() {
		t.Fatalf("ownership covers %d vertices, want %d", len(owner), g.NumVertices())
	}
	counts := make([]int, 4)
	for v, o := range owner {
		if o < 0 || o >= 4 {
			t.Fatalf("vertex %d owned by %d, want [0,4)", v, o)
		}
		counts[o]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("worker %d owns no vertices", i)
		}
	}
	again := e.ownership(4)
	if &again[0] != &owner[0] {
		t.Error("same worker count recomputed the ownership map")
	}
	if reK := e.ownership(2); len(reK) != g.NumVertices() {
		t.Error("re-keyed ownership incomplete")
	} else if e.ownerK != 2 {
		t.Errorf("ownerK = %d after re-key, want 2", e.ownerK)
	}
}

// TestParallelCountersConserveEvents: at quiescence the conservation law
// holds exactly at any parallelism, and the compute-phase identity
// VertexReads == EventsProcessed survives the per-worker merge.
func TestParallelCountersConserveEvents(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		a := algo.NewSSSP(0)
		g := testGraphFor(a, 42)
		st := &stats.Counters{}
		e := New(g, a, parallelConfig(p), st)
		e.RunToConvergence()
		if r := st.EventsUnaccounted(); r != 0 {
			t.Errorf("p=%d: %d events unaccounted (generated %d, processed %d, coalesced %d)",
				p, r, st.EventsGenerated, st.EventsProcessed, st.EventsCoalesced)
		}
		if st.VertexReads != st.EventsProcessed {
			t.Errorf("p=%d: VertexReads %d != EventsProcessed %d", p, st.VertexReads, st.EventsProcessed)
		}
		if st.Phases == 0 || st.Rounds == 0 {
			t.Errorf("p=%d: phases/rounds not counted (%d/%d)", p, st.Phases, st.Rounds)
		}
	}
}

// TestParallelDependencyTracking: DAP dependency fields must be maintained
// by the owning workers and remain consistent with the converged state —
// every reached vertex records a source whose state plus edge weight
// reproduces it.
func TestParallelDependencyTracking(t *testing.T) {
	a := algo.NewSSSP(0)
	g := testGraphFor(a, 8)
	e := New(g, a, parallelConfig(8), nil, WithDependencyTracking())
	e.RunToConvergence()
	dep := e.Dep()
	state := e.State()
	for v := range state {
		if v == 0 || state[v] == a.Identity() {
			continue
		}
		src := dep[v]
		if src == event.NoSource {
			t.Fatalf("reached vertex %d has no dependency source", v)
		}
		w, ok := g.HasEdge(src, uint32(v))
		if !ok {
			t.Fatalf("vertex %d depends on %d but no such edge exists", v, src)
		}
		if got := state[src] + w; got != state[v] {
			t.Errorf("vertex %d: dep %d gives %v, state is %v", v, src, got, state[v])
		}
	}
}
