package engine

import (
	"strconv"

	"jetstream/internal/mem"
	"jetstream/internal/noc"
	"jetstream/internal/obs"
	"jetstream/internal/stats"
)

// Obs bundles the engine's observability sinks: a metrics registry for the
// labeled per-worker / per-component series and a Tracer for event-level
// hooks. It is attached with Engine.SetObs and shared by the core scheduler
// and the host session so the whole pipeline exports into one registry.
//
// Attribution contract: per-worker counters are published at phase and batch
// boundaries (never per event), so the hot path pays nothing. The engine
// keeps a published-baseline copy of its stats sink; FlushObs attributes the
// un-published residual — work done on the sequential path — to worker 0,
// while the parallel merge attributes each worker's private counters to its
// own series. At every flush boundary the per-worker sums therefore equal
// the global stats.Counters deltas exactly (the conservation law the metrics
// tests assert).
type Obs struct {
	Reg *obs.Registry
	Tr  obs.Tracer

	phaseSeq uint64
	workers  []*workerObs

	queueLive *obs.Gauge
	queueHigh *obs.Max

	// Degree-adaptive adjacency representation mix (see graph.CSR
	// RepresentationMix), refreshed at every flush boundary.
	inlineOut *obs.Gauge
	inlineIn  *obs.Gauge

	pairs  *noc.Matrix
	pairsK int
}

// workerObs holds one worker's registered series.
type workerObs struct {
	processed *obs.Counter
	coalesced *obs.Counter
	generated *obs.Counter
	forwarded *obs.Counter
	rounds    *obs.Counter
	idleSpins *obs.Counter
	shardHigh *obs.Max
}

// NewObs builds an Obs over reg and tr. tr may be nil (no tracing).
func NewObs(reg *obs.Registry, tr obs.Tracer) *Obs {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if tr == nil {
		tr = obs.Nop
	}
	return &Obs{
		Reg:       reg,
		Tr:        tr,
		queueLive: reg.Gauge("jetstream_queue_live_events"),
		queueHigh: reg.Max("jetstream_queue_highwater"),
		inlineOut: reg.Gauge("jetstream_graph_inline_vertices", obs.L("dir", "out")),
		inlineIn:  reg.Gauge("jetstream_graph_inline_vertices", obs.L("dir", "in")),
	}
}

// nextSeq returns a monotonic sequence number for trace events emitted from
// the engine thread.
func (o *Obs) nextSeq() uint64 {
	o.phaseSeq++
	return o.phaseSeq
}

// worker returns worker i's series, registering them on first use. Called
// only from the engine thread (flush and merge points), never from workers.
func (o *Obs) worker(i int) *workerObs {
	for len(o.workers) <= i {
		id := strconv.Itoa(len(o.workers))
		l := obs.L("worker", id)
		o.workers = append(o.workers, &workerObs{
			processed: o.Reg.Counter("jetstream_worker_events_processed_total", l),
			coalesced: o.Reg.Counter("jetstream_worker_events_coalesced_total", l),
			generated: o.Reg.Counter("jetstream_worker_events_generated_total", l),
			forwarded: o.Reg.Counter("jetstream_worker_events_forwarded_total", l),
			rounds:    o.Reg.Counter("jetstream_worker_rounds_total", l),
			idleSpins: o.Reg.Counter("jetstream_worker_idle_spins_total", l),
			shardHigh: o.Reg.Max("jetstream_worker_shard_highwater", l),
		})
	}
	return o.workers[i]
}

// pairMatrix returns the k-port NoC transfer matrix, creating it and
// registering a per-pair series on first use.
func (o *Obs) pairMatrix(k int) *noc.Matrix {
	if o.pairs == nil || o.pairsK != k {
		o.pairs = noc.NewMatrix(k)
		o.pairsK = k
		m := o.pairs
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i == j {
					continue
				}
				src, dst := i, j
				o.Reg.CounterFunc("jetstream_noc_pair_events_total",
					func() uint64 { return m.Load(src, dst) },
					obs.L("src", strconv.Itoa(src)), obs.L("dst", strconv.Itoa(dst)))
			}
		}
	}
	return o.pairs
}

// WorkerStats is one worker's published totals, for structured snapshots.
type WorkerStats struct {
	Processed      uint64
	Coalesced      uint64
	Generated      uint64
	Forwarded      uint64
	Rounds         uint64
	IdleSpins      uint64
	ShardHighWater uint64
}

// WorkerSnapshots returns the published per-worker totals.
func (o *Obs) WorkerSnapshots() []WorkerStats {
	out := make([]WorkerStats, len(o.workers))
	for i, w := range o.workers {
		out[i] = WorkerStats{
			Processed:      w.processed.Load(),
			Coalesced:      w.coalesced.Load(),
			Generated:      w.generated.Load(),
			Forwarded:      w.forwarded.Load(),
			Rounds:         w.rounds.Load(),
			IdleSpins:      w.idleSpins.Load(),
			ShardHighWater: w.shardHigh.Load(),
		}
	}
	return out
}

// PairSnapshot returns the NoC transfer matrix as (port count, row-major
// cells); k is 0 when no parallel phase has run.
func (o *Obs) PairSnapshot() (int, []uint64) {
	if o.pairs == nil {
		return 0, nil
	}
	return o.pairsK, o.pairs.Snapshot()
}

// QueuePeak returns the published queue high-water mark.
func (o *Obs) QueuePeak() uint64 { return o.queueHigh.Load() }

// SetObs attaches the observability sinks (nil detaches). The engine baselines
// its stats sink so FlushObs attributes only work done after attachment.
func (e *Engine) SetObs(o *Obs) {
	e.ob = o
	if o == nil {
		e.q.SetObs(nil, nil)
		return
	}
	e.obPub = *e.st
	e.q.SetObs(o.queueLive, o.queueHigh)
	if m, ok := e.tm.(interface{ Observe(*obs.Registry) }); ok && e.tm != nil {
		m.Observe(o.Reg)
	}
}

// Obs returns the attached observability sinks (nil when uninstrumented).
func (e *Engine) Obs() *Obs { return e.ob }

// Channels returns the cycle model's per-channel DRAM traffic, or nil when
// timing is off.
func (e *Engine) Channels() []mem.ChannelCounts {
	if c, ok := e.tm.(interface{ Channels() []mem.ChannelCounts }); ok {
		return c.Channels()
	}
	return nil
}

// FlushObs publishes the stats-sink delta accumulated since the last flush.
// Sequential-path work has no worker identity, so the residual is attributed
// to worker 0 — the parallel merge has already attributed and baselined each
// worker's share, so nothing is counted twice. Call at operation boundaries
// (end of batch, end of initial run).
func (e *Engine) FlushObs() {
	// Join the timing pipeline first: the whole-struct copy below reads the
	// traffic counters its consumer writes, and flush boundaries are where
	// overlap must end anyway.
	e.SyncTiming()
	if e.ob == nil {
		return
	}
	d := *e.st
	d.Sub(&e.obPub)
	w := e.ob.worker(0)
	w.processed.Add(d.EventsProcessed)
	w.coalesced.Add(d.EventsCoalesced)
	w.generated.Add(d.EventsGenerated)
	w.rounds.Add(d.Rounds)
	e.obPub = *e.st
	e.ob.queueLive.Set(int64(e.q.Len()))
	e.ob.queueHigh.Observe(uint64(e.q.HighWater()))
	out, in, _ := e.csr.RepresentationMix()
	e.ob.inlineOut.Set(int64(out))
	e.ob.inlineIn.Set(int64(in))
}

// publishWorker attributes one parallel worker's phase counters to its
// series, advancing the published baseline so FlushObs does not re-attribute
// them to worker 0.
func (e *Engine) publishWorker(id int, st *stats.Counters, forwarded uint64, sent []uint64, shardHigh int, idle uint64) {
	o := e.ob
	e.obPub.Add(st)
	w := o.worker(id)
	w.processed.Add(st.EventsProcessed)
	w.coalesced.Add(st.EventsCoalesced)
	w.generated.Add(st.EventsGenerated)
	w.forwarded.Add(forwarded)
	w.rounds.Add(st.Rounds)
	w.idleSpins.Add(idle)
	w.shardHigh.Observe(uint64(shardHigh))
	if len(sent) > 0 {
		m := o.pairMatrix(len(sent))
		for d, n := range sent {
			if n > 0 {
				m.Add(id, d, n)
			}
		}
	}
	o.Tr.Trace(obs.TraceEvent{Kind: obs.KindWorkerDrain, Seq: o.nextSeq(), Worker: id,
		A: st.EventsProcessed, B: forwarded})
}
