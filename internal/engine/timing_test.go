package engine

import (
	"testing"

	"jetstream/internal/graph"
	"jetstream/internal/stats"
)

func fastModel() (*Timing, *stats.Counters) {
	st := &stats.Counters{}
	cfg := DefaultConfig()
	return NewTiming(cfg, st), st
}

func seq(n int, stride graph.VertexID) []graph.VertexID {
	out := make([]graph.VertexID, n)
	for i := range out {
		out[i] = graph.VertexID(i) * stride
	}
	return out
}

func TestTimingEmptyBatchFree(t *testing.T) {
	tm, _ := fastModel()
	tm.Batch(nil, 0, nil, nil)
	if tm.Cycles() != 0 {
		t.Errorf("empty batch cost %d cycles", tm.Cycles())
	}
}

func TestTimingChargesBatch(t *testing.T) {
	tm, st := fastModel()
	tm.Batch(seq(64, 1), 32, []EdgeFetch{{Offset: 0, Count: 100}}, seq(100, 1))
	if tm.Cycles() == 0 {
		t.Fatal("batch cost nothing")
	}
	if st.BytesTransferred == 0 || st.BytesUsed == 0 {
		t.Error("no traffic accounted")
	}
	if st.BytesUsed > st.BytesTransferred {
		t.Errorf("used %d > transferred %d", st.BytesUsed, st.BytesTransferred)
	}
}

func TestTimingSpatialLocalityMatters(t *testing.T) {
	// Dense, page-local vertex batches (what row-ordered draining produces)
	// must be cheaper per event than scattered ones: they share DRAM lines.
	dense, _ := fastModel()
	scattered, _ := fastModel()
	n := 512
	dense.Batch(seq(n, 1), 0, nil, nil)       // 8 vertices per 64B line
	scattered.Batch(seq(n, 997), 0, nil, nil) // one line each
	if dense.Cycles() >= scattered.Cycles() {
		t.Errorf("dense batch (%d cycles) not cheaper than scattered (%d)", dense.Cycles(), scattered.Cycles())
	}
}

func TestTimingEdgeCacheHelps(t *testing.T) {
	// Re-fetching the same adjacency must be cheaper than fetching fresh
	// ones: the per-PE edge cache absorbs the lines.
	tm, _ := fastModel()
	f := []EdgeFetch{{Offset: 0, Count: 8}}
	tm.Batch(seq(1, 1), 0, f, nil)
	cold := tm.Cycles()
	tm.Batch(seq(1, 1), 0, f, nil)
	warmDelta := tm.Cycles() - cold
	tm2, _ := fastModel()
	tm2.Batch(seq(1, 1), 0, []EdgeFetch{{Offset: 1 << 16, Count: 8}}, nil)
	tm2.Batch(seq(1, 1), 0, []EdgeFetch{{Offset: 1 << 18, Count: 8}}, nil)
	coldDelta := tm2.Cycles() - 0
	if warmDelta >= coldDelta {
		t.Errorf("warm refetch (%d cycles) not cheaper than cold fetches (%d)", warmDelta, coldDelta)
	}
}

func TestTimingSpillAndStreamRead(t *testing.T) {
	tm, st := fastModel()
	tm.Spill(0)
	tm.StreamRead(0)
	if tm.Cycles() != 0 {
		t.Error("zero-length transfers charged")
	}
	tm.Spill(128)
	if st.SpillBytes == 0 || tm.Cycles() == 0 {
		t.Error("spill not charged")
	}
	c := tm.Cycles()
	tm.StreamRead(1000)
	if tm.Cycles() <= c {
		t.Error("stream read not charged")
	}
	c = tm.Cycles()
	tm.RoundOverhead()
	if tm.Cycles() != c+uint64(DefaultConfig().RoundOverheadCycles) {
		t.Error("round overhead wrong")
	}
}

func TestTimingMoreEventsCostMore(t *testing.T) {
	small, _ := fastModel()
	big, _ := fastModel()
	small.Batch(seq(32, 1), 0, []EdgeFetch{{Count: 64}}, seq(64, 1))
	big.Batch(seq(512, 1), 0, []EdgeFetch{{Count: 4096}}, seq(4096, 1))
	if big.Cycles() <= small.Cycles() {
		t.Errorf("16x work (%d cycles) not costlier than base (%d)", big.Cycles(), small.Cycles())
	}
}

func TestTimingMonotoneAcrossBatches(t *testing.T) {
	tm, _ := fastModel()
	var last uint64
	for i := 0; i < 10; i++ {
		tm.Batch(seq(16, 1), 4, []EdgeFetch{{Offset: uint64(i * 100), Count: 20}}, seq(20, 3))
		if tm.Cycles() < last {
			t.Fatalf("cycles went backwards at batch %d", i)
		}
		last = tm.Cycles()
	}
}
