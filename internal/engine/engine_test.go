package engine

import (
	"math"
	"testing"
	"testing/quick"

	"jetstream/internal/algo"
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/stats"
)

func testConfig(timing bool) Config {
	cfg := DefaultConfig()
	cfg.Timing = timing
	return cfg
}

// tolFor is the acceptable deviation from the reference solver: selective
// kernels converge to the exact fixpoint under any processing order, while
// accumulative kernels carry the epsilon-truncation reordering bound (each
// suppressed sub-epsilon delta moves the sum by at most Epsilon, and the set
// of suppressions depends on processing order — so the parallel default
// deviates by O(Epsilon * edges)).
func tolFor(a algo.Algorithm, g *graph.CSR) float64 {
	if a.Class() == algo.Accumulative {
		if t := a.Epsilon() * 10 * float64(g.NumEdges()); t > 1e-6 {
			return t
		}
	}
	return 1e-6
}

func makeAlg(t *testing.T, name string) algo.Algorithm {
	t.Helper()
	a, err := algo.New(name, 0, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testGraphFor(a algo.Algorithm, seed int64) *graph.CSR {
	g := graph.RMAT(graph.RMATConfig{Vertices: 400, Edges: 3000, Seed: seed})
	if algo.NeedsSymmetric(a) {
		g = graph.Symmetrize(g)
	}
	return g
}

func TestStaticConvergenceMatchesReference(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			a := makeAlg(t, name)
			g := testGraphFor(a, 42)
			e := New(g, a, testConfig(false), nil)
			e.RunToConvergence()
			ref := algo.Reference(a, g)
			if d := algo.MaxAbsDiff(e.State(), ref); d > tolFor(a, g) {
				t.Errorf("%s: max diff vs reference = %v", name, d)
			}
		})
	}
}

func TestStaticConvergenceOnWebGraph(t *testing.T) {
	// The narrow long-path topology exercises deep propagation chains.
	g := graph.WebCrawl(graph.WebCrawlConfig{Vertices: 800, AvgDegree: 5, Seed: 7})
	for _, name := range []string{"sssp", "bfs", "sswp", "pagerank"} {
		a := makeAlg(t, name)
		e := New(g, a, testConfig(false), nil)
		e.RunToConvergence()
		if d := algo.MaxAbsDiff(e.State(), algo.Reference(a, g)); d > tolFor(a, g) {
			t.Errorf("%s: max diff = %v", name, d)
		}
	}
}

func TestConvergenceWithUnreachableVertices(t *testing.T) {
	// Vertices never reached must stay at Identity.
	g := graph.MustBuild(4, []graph.Edge{{Src: 0, Dst: 1, Weight: 2}})
	a := algo.NewSSSP(0)
	e := New(g, a, testConfig(false), nil)
	e.RunToConvergence()
	if e.State()[1] != 2 {
		t.Errorf("state[1]=%v, want 2", e.State()[1])
	}
	if !math.IsInf(e.State()[2], 1) || !math.IsInf(e.State()[3], 1) {
		t.Errorf("unreachable states %v must stay +Inf", e.State()[2:])
	}
}

func TestTimingProducesCycles(t *testing.T) {
	a := makeAlg(t, "sssp")
	g := testGraphFor(a, 1)
	st := &stats.Counters{}
	e := New(g, a, testConfig(true), st)
	e.RunToConvergence()
	if e.Cycles() == 0 {
		t.Fatal("timing enabled but zero cycles")
	}
	if st.BytesTransferred == 0 || st.BytesUsed == 0 {
		t.Fatal("no traffic accounted")
	}
	if st.BytesUsed > st.BytesTransferred {
		t.Errorf("used %d > transferred %d", st.BytesUsed, st.BytesTransferred)
	}
	// Timing must not change results.
	e2 := New(g, a, testConfig(false), nil)
	e2.RunToConvergence()
	if d := algo.MaxAbsDiff(e.State(), e2.State()); d != 0 {
		t.Errorf("timing changed results by %v", d)
	}
}

func TestTimingDeterministic(t *testing.T) {
	a := makeAlg(t, "bfs")
	g := testGraphFor(a, 2)
	run := func() uint64 {
		e := New(g, a, testConfig(true), nil)
		e.RunToConvergence()
		return e.Cycles()
	}
	if run() != run() {
		t.Error("cycle counts differ between identical runs")
	}
}

func TestPartitionedRunMatchesUnpartitioned(t *testing.T) {
	for _, name := range []string{"sssp", "cc", "pagerank"} {
		a := makeAlg(t, name)
		g := testGraphFor(a, 3)
		plain := New(g, a, testConfig(false), nil)
		plain.RunToConvergence()
		st := &stats.Counters{}
		cfgT := testConfig(true)
		sliced := New(g, a, cfgT, st, WithPartition(4))
		sliced.RunToConvergence()
		// Accumulative kernels truncate deltas below epsilon; different
		// coalescing orders truncate different deltas, so two correct runs
		// may differ by up to ~eps*E/(1-damping) ≈ 2e-6 here.
		if d := algo.MaxAbsDiff(plain.State(), sliced.State()); d > 1e-5 {
			t.Errorf("%s: sliced run differs by %v", name, d)
		}
		if st.SpillBytes == 0 {
			t.Errorf("%s: slicing produced no spill traffic", name)
		}
	}
}

func TestDependencyTracking(t *testing.T) {
	// A path graph has an unambiguous dependency tree: each vertex depends
	// on its predecessor.
	g := graph.MustBuild(5, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 4, Weight: 1},
	})
	e := New(g, algo.NewSSSP(0), testConfig(false), nil, WithDependencyTracking())
	e.RunToConvergence()
	dep := e.Dep()
	if dep == nil {
		t.Fatal("dependency tracking not enabled")
	}
	for v := 1; v < 5; v++ {
		if dep[v] != graph.VertexID(v-1) {
			t.Errorf("dep[%d]=%d, want %d", v, dep[v], v-1)
		}
	}
	// The root was set by the initial event, which has no source.
	if dep[0] != event.NoSource {
		t.Errorf("dep[root]=%d, want NoSource", dep[0])
	}
}

func TestRequestFlagForcesPropagation(t *testing.T) {
	// A converged vertex that receives a request event must re-propagate
	// its state even though it does not change (§3.5).
	g := graph.MustBuild(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 5}, {Src: 1, Dst: 2, Weight: 5}})
	a := algo.NewSSSP(0)
	e := New(g, a, testConfig(false), nil)
	e.RunToConvergence()
	// Corrupt vertex 2 upward (as a delete-reset would) and request from 1.
	e.State()[2] = a.Identity()
	e.Emit(event.Event{Target: 1, Value: a.Identity(), Source: event.NoSource, Flags: event.FlagRequest})
	e.RunPhase(e.ComputeHandler())
	if e.State()[2] != 10 {
		t.Errorf("state[2]=%v after request, want 10", e.State()[2])
	}
}

func TestSetGraphSwapsVersion(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	a := algo.NewSSSP(0)
	e := New(g, a, testConfig(false), nil)
	e.RunToConvergence()
	ng := g.MustApply(graph.Batch{Inserts: []graph.Edge{{Src: 1, Dst: 2, Weight: 4}}})
	e.SetGraph(ng, nil)
	// Incremental: seed the inserted edge's event by hand.
	e.Emit(event.New(2, e.State()[1]+4))
	e.RunPhase(e.ComputeHandler())
	if e.State()[2] != 5 {
		t.Errorf("state[2]=%v, want 5", e.State()[2])
	}
}

func TestSetGraphPanicsOnResize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on vertex-count change")
		}
	}()
	g := graph.MustBuild(3, nil)
	e := New(g, algo.NewSSSP(0), testConfig(false), nil)
	e.SetGraph(graph.MustBuild(4, nil), nil)
}

func TestMaskedViewStopsPropagation(t *testing.T) {
	g := graph.MustBuild(3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}})
	a := algo.NewSSSP(0)
	e := New(g, a, testConfig(false), nil)
	v := graph.NewView(g)
	v.Mask(1)
	e.SetGraph(g, v)
	e.SeedInitialEvents()
	e.RunPhase(e.ComputeHandler())
	if e.State()[1] != 1 {
		t.Errorf("state[1]=%v, want 1", e.State()[1])
	}
	if !math.IsInf(e.State()[2], 1) {
		t.Errorf("state[2]=%v; masked vertex must not propagate", e.State()[2])
	}
}

func TestWorkCountersPopulated(t *testing.T) {
	a := makeAlg(t, "sssp")
	g := testGraphFor(a, 5)
	st := &stats.Counters{}
	e := New(g, a, testConfig(false), st)
	e.RunToConvergence()
	if st.EventsProcessed == 0 || st.EventsGenerated == 0 || st.VertexReads == 0 ||
		st.VertexWrites == 0 || st.EdgeReads == 0 || st.Rounds == 0 || st.Phases != 1 {
		t.Errorf("counters not populated: %+v", st)
	}
	// Every processed event read exactly one vertex.
	if st.VertexReads != st.EventsProcessed {
		t.Errorf("vertex reads %d != events processed %d", st.VertexReads, st.EventsProcessed)
	}
}

func TestSliceCapacityShrinksWithEventSize(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EventMode = event.ModeGraphPulse
	gp := cfg.SliceCapacity()
	cfg.EventMode = event.ModeJetStreamDAP
	dap := cfg.SliceCapacity()
	if dap >= gp {
		t.Errorf("DAP capacity %d should be below GraphPulse %d", dap, gp)
	}
}

func TestQuickStaticSSSPMatchesDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.ErdosRenyi(80, 400, 16, seed)
		a := algo.NewSSSP(0)
		e := New(g, a, testConfig(false), nil)
		e.RunToConvergence()
		return algo.MaxAbsDiff(e.State(), algo.Dijkstra(g, 0)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStaticPageRankMatchesPower(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.ErdosRenyi(60, 300, 8, seed)
		a := algo.NewPageRank(1e-11)
		e := New(g, a, testConfig(false), nil)
		e.RunToConvergence()
		return algo.MaxAbsDiff(e.State(), algo.PageRankRef(g, 0.15, 1e-13)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
