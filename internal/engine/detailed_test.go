package engine

import (
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
	"jetstream/internal/stats"
)

func detailedConfig() Config {
	cfg := DefaultConfig()
	cfg.Timing = true
	cfg.DetailedTiming = true
	return cfg
}

func TestDetailedProducesCyclesAndSameResults(t *testing.T) {
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 400, Edges: 3000, Seed: 1})
	det := New(g, a, detailedConfig(), nil)
	det.RunToConvergence()
	if det.Cycles() == 0 {
		t.Fatal("detailed model produced zero cycles")
	}
	fast := New(g, a, testConfig(true), nil)
	fast.RunToConvergence()
	if d := algo.MaxAbsDiff(det.State(), fast.State()); d != 0 {
		t.Errorf("timing mode changed results by %v", d)
	}
}

func TestDetailedDeterministic(t *testing.T) {
	a := algo.NewBFS(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2400, Seed: 2})
	run := func() uint64 {
		e := New(g, a, detailedConfig(), nil)
		e.RunToConvergence()
		return e.Cycles()
	}
	if run() != run() {
		t.Error("detailed cycles differ between identical runs")
	}
}

func TestDetailedWithinFactorOfFast(t *testing.T) {
	// The two fidelity levels model the same hardware; their totals must
	// agree to within a small factor on a balanced workload.
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 2000, Edges: 16000, Seed: 3})
	det := New(g, a, detailedConfig(), nil)
	det.RunToConvergence()
	fast := New(g, a, testConfig(true), nil)
	fast.RunToConvergence()
	lo, hi := fast.Cycles()/4, fast.Cycles()*6
	if det.Cycles() < lo || det.Cycles() > hi {
		t.Errorf("detailed %d cycles vs fast %d: outside [%d, %d]", det.Cycles(), fast.Cycles(), lo, hi)
	}
}

func TestDetailedResolvesBinContention(t *testing.T) {
	// Drive the model directly: the same number of generated events aimed at
	// one queue bin must take longer than events spread across all bins,
	// because crossbar output ports and coalescer pipelines serialize.
	mk := func(targets []graph.VertexID) uint64 {
		d := NewDetailed(detailedConfig(), &stats.Counters{})
		d.Batch([]graph.VertexID{0}, 1, []EdgeFetch{{Offset: 0, Count: len(targets)}}, targets)
		return d.Cycles()
	}
	const n = 256
	hot := make([]graph.VertexID, n)
	for i := range hot {
		hot[i] = 16 * graph.VertexID(i) // all map to bin 0
	}
	spread := make([]graph.VertexID, n)
	for i := range spread {
		spread[i] = graph.VertexID(i) // round-robin over the 16 bins
	}
	if h, s := mk(hot), mk(spread); h <= s {
		t.Errorf("hot-bin batch (%d cycles) not slower than spread batch (%d)", h, s)
	}
}

func TestDetailedApplyUnitContention(t *testing.T) {
	// More events than engines must serialize on the apply pipelines.
	small := NewDetailed(detailedConfig(), &stats.Counters{})
	big := NewDetailed(detailedConfig(), &stats.Counters{})
	few := make([]graph.VertexID, 8)
	many := make([]graph.VertexID, 512)
	for i := range few {
		few[i] = graph.VertexID(i)
	}
	for i := range many {
		many[i] = graph.VertexID(i)
	}
	small.Batch(few, 0, nil, nil)
	big.Batch(many, 0, nil, nil)
	if big.Cycles() <= small.Cycles() {
		t.Errorf("512-event batch (%d) not slower than 8-event batch (%d)", big.Cycles(), small.Cycles())
	}
}

func TestDetailedSpillAndStreamRead(t *testing.T) {
	st := &stats.Counters{}
	d := NewDetailed(detailedConfig(), st)
	d.Spill(100)
	if st.SpillBytes == 0 || d.Cycles() == 0 {
		t.Error("spill not charged")
	}
	before := d.Cycles()
	d.StreamRead(500)
	if d.Cycles() <= before {
		t.Error("stream read not charged")
	}
	d.RoundOverhead()
	if d.Cycles() <= before {
		t.Error("round overhead not charged")
	}
	// Empty operations are free.
	c := d.Cycles()
	d.Spill(0)
	d.StreamRead(0)
	d.Batch(nil, 0, nil, nil)
	if d.Cycles() != c {
		t.Error("empty operations charged cycles")
	}
}
