package engine

import (
	"math"

	"jetstream/internal/algo"
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/obs"
	"jetstream/internal/queue"
	"jetstream/internal/stats"
)

// GraphView is the engine's read interface to the active graph version. Both
// *graph.CSR and *graph.View satisfy it; the latter is the "intermediate
// graph" of accumulative deletion (paper Fig 5) where mutated vertices are
// temporary sinks.
type GraphView interface {
	NumVertices() int
	OutDegree(u graph.VertexID) int
	OutWeightSum(u graph.VertexID) float64
	OutEdges(u graph.VertexID, fn func(dst graph.VertexID, w graph.Weight))
}

// Handler processes one event during a phase. Handlers use the engine's
// ReadVertex/WriteVertex/EmitAlongEdges helpers so that work counting and
// timing see every access.
type Handler func(ev event.Event)

// Engine executes event-driven phases over a graph: the GraphPulse compute
// loop plus the plumbing (queue, slicing, timing hooks) that JetStream's
// streaming phases in internal/core reuse.
type Engine struct {
	cfg Config
	alg algo.Algorithm

	csr  *graph.CSR // backing CSR of the active view (for edge offsets)
	view GraphView

	// state and dep are materialized lazily on first use (see materialize):
	// constructing an Engine is O(1) in the vertex count, so a service can
	// hold thousands of idle standing queries without paying O(V) each.
	state   []float64
	dep     []graph.VertexID // dependency field per vertex (DAP, §5.2); nil unless tracking
	wantDep bool             // WithDependencyTracking requested; dep allocated at materialize

	q  *queue.Coalescing
	st *stats.Counters
	tm CycleModel

	part    *graph.Partition
	active  int
	pending [][]event.Event

	// Ownership cache for the parallel compute path: vertex -> worker for
	// ownerK workers (see parallel.go).
	owner  []int32
	ownerK int

	// trace observes every event the sequential path processes, in order
	// (golden-trace tests). Non-nil trace forces sequential execution.
	trace func(event.Event)

	// ob holds the attached observability sinks (nil when uninstrumented);
	// obPub is the portion of st already attributed to per-worker series
	// (see observe.go for the attribution contract).
	ob    *Obs
	obPub stats.Counters

	// Per-row-batch recording for the timing layer.
	batchTouched []graph.VertexID
	batchWritten int
	batchFetches []EdgeFetch
	batchGenT    []graph.VertexID
}

// Option configures an Engine.
type Option func(*Engine)

// WithDependencyTracking enables the per-vertex dependency field used by
// the DAP optimization; the field itself is allocated with the state at
// first use.
func WithDependencyTracking() Option {
	return func(e *Engine) { e.wantDep = true }
}

// WithPartition slices the vertex space into k parts processed one at a
// time, spilling cross-slice events off-chip (paper §4.7). k <= 1 disables
// slicing.
func WithPartition(k int) Option {
	return func(e *Engine) {
		if k <= 1 {
			return
		}
		e.part = graph.PartitionGraph(e.csr, k)
		e.pending = make([][]event.Event, k)
	}
}

// New builds an engine over g running alg. The stats sink st may be nil.
func New(g *graph.CSR, alg algo.Algorithm, cfg Config, st *stats.Counters, opts ...Option) *Engine {
	if st == nil {
		st = &stats.Counters{}
	}
	e := &Engine{
		cfg:  cfg,
		alg:  alg,
		csr:  g,
		view: g,
		st:   st,
	}
	e.q = queue.New(g.NumVertices(), cfg.Queue, queue.ReduceCoalesce(alg.Reduce), st)
	if cfg.Timing {
		if cfg.DetailedTiming {
			e.tm = NewDetailed(cfg, st)
		} else {
			e.tm = NewTiming(cfg, st)
		}
		if cfg.PipelineOverlap {
			e.tm = newPipelined(e.tm)
		}
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// materialize allocates the per-vertex state (and, when requested, the
// dependency field) on first touch, filled with the kernel's identity. Every
// path that reads or writes vertex state goes through it, so an Engine that
// never runs never allocates O(V).
func (e *Engine) materialize() {
	if e.state != nil {
		return
	}
	n := e.csr.NumVertices()
	id := e.alg.Identity()
	e.state = make([]float64, n)
	for i := range e.state {
		e.state[i] = id
	}
	if e.wantDep {
		e.dep = make([]graph.VertexID, n)
		for i := range e.dep {
			e.dep[i] = event.NoSource
		}
	}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Algorithm returns the running kernel.
func (e *Engine) Algorithm() algo.Algorithm { return e.alg }

// Stats returns the counter sink.
func (e *Engine) Stats() *stats.Counters { return e.st }

// Queue exposes the event queue to the streaming phases.
func (e *Engine) Queue() *queue.Coalescing { return e.q }

// Timing returns the cycle model (nil when timing is disabled).
func (e *Engine) Timing() CycleModel { return e.tm }

// CSR returns the CSR backing the active view.
func (e *Engine) CSR() *graph.CSR { return e.csr }

// State returns the live vertex-state slice (not a copy).
func (e *Engine) State() []float64 {
	e.materialize()
	return e.state
}

// Dep returns the dependency fields (nil unless DAP tracking is on).
func (e *Engine) Dep() []graph.VertexID {
	e.materialize()
	return e.dep
}

// Cycles returns accumulated cycles (0 with timing off). With pipeline
// overlap on this joins the in-flight timing simulation first, so the count
// is always exact.
func (e *Engine) Cycles() uint64 {
	if e.tm == nil {
		return 0
	}
	return e.tm.Cycles()
}

// SyncTiming joins any in-flight pipelined timing simulation, making the
// stats sink's traffic counters (BytesUsed, SpillBytes, DRAM tallies) safe to
// read from the caller's goroutine. A no-op unless PipelineOverlap is on and
// charges are queued. Callers that copy the whole stats struct must call this
// (or Cycles, which flushes too) first.
func (e *Engine) SyncTiming() {
	if f, ok := e.tm.(interface{ Flush() }); ok {
		f.Flush()
	}
}

// SetGraph switches the engine to a new graph version (the host's CSR
// pointer swap, §4.7). Vertex count must be unchanged; vertex state is
// retained — that is the whole point of streaming evaluation.
func (e *Engine) SetGraph(csr *graph.CSR, view GraphView) {
	if csr.NumVertices() != e.csr.NumVertices() {
		panic("engine: graph version changed vertex count")
	}
	e.csr = csr
	if view == nil {
		e.view = csr
	} else {
		e.view = view
	}
}

// View returns the active graph view.
func (e *Engine) View() GraphView { return e.view }

// ReadVertex reads v's state through the scratchpad, counting the access.
func (e *Engine) ReadVertex(v graph.VertexID) float64 {
	e.materialize()
	e.st.VertexReads++
	e.batchTouched = append(e.batchTouched, v)
	return e.state[v]
}

// PeekVertex reads v's state without charging an access — for decisions the
// hardware makes on data already in the event payload or scratchpad.
func (e *Engine) PeekVertex(v graph.VertexID) float64 {
	e.materialize()
	return e.state[v]
}

// WriteVertex updates v's state, counting the write-back.
func (e *Engine) WriteVertex(v graph.VertexID, x float64) {
	e.materialize()
	e.st.VertexWrites++
	e.batchWritten++
	e.state[v] = x
}

// SetDep records v's dependency source (no-op unless tracking).
func (e *Engine) SetDep(v, src graph.VertexID) {
	if !e.wantDep {
		return
	}
	e.materialize()
	e.dep[v] = src
}

// Emit inserts ev into the event queue, or spills it to the pending list of
// its slice when slicing is active and ev targets an inactive slice.
func (e *Engine) Emit(ev event.Event) {
	e.st.EventsGenerated++
	e.batchGenT = append(e.batchGenT, ev.Target)
	if e.part != nil {
		if s := e.part.SliceOf(ev.Target); s != e.active {
			e.pending[s] = append(e.pending[s], ev)
			return
		}
	}
	e.q.Insert(ev)
}

// EmitAlongEdges walks u's out-adjacency in the active view, charging the
// edge fetch, and emits the event mk returns for each edge (or none when mk
// reports false). This is the generation-stream primitive all phases build
// on.
func (e *Engine) EmitAlongEdges(u graph.VertexID, mk func(dst graph.VertexID, w graph.Weight) (event.Event, bool)) {
	deg := e.view.OutDegree(u)
	if deg == 0 {
		return
	}
	e.st.EdgeReads += uint64(deg)
	e.batchFetches = append(e.batchFetches, EdgeFetch{Offset: e.csr.EdgeOffset(u), Count: deg})
	e.view.OutEdges(u, func(dst graph.VertexID, w graph.Weight) {
		if ev, ok := mk(dst, w); ok {
			e.Emit(ev)
		}
	})
}

// PropagateValue sends x from u along every out-edge using the algorithm's
// Propagate, tagging events with source u and the given flags. Accumulative
// deltas below Epsilon are suppressed at generation (termination).
func (e *Engine) PropagateValue(u graph.VertexID, x float64, flags event.Flags) {
	deg := e.view.OutDegree(u)
	wsum := e.view.OutWeightSum(u)
	eps := e.alg.Epsilon()
	acc := e.alg.Class() == algo.Accumulative
	e.EmitAlongEdges(u, func(dst graph.VertexID, w graph.Weight) (event.Event, bool) {
		val := e.alg.Propagate(u, x, w, deg, wsum)
		if acc && math.Abs(val) <= eps {
			return event.Event{}, false
		}
		return event.Event{Target: dst, Value: val, Source: u, Flags: flags}, true
	})
}

// ComputeHandler returns the regular computation phase of Algorithm 1, with
// JetStream's two extensions folded in: a vertex receiving a request-flagged
// event propagates even when its state does not change (§3.5), and under
// dependency tracking a state change records the contributing source (§5.2).
func (e *Engine) ComputeHandler() Handler {
	if e.alg.Class() == algo.Accumulative {
		return func(ev event.Event) {
			v := ev.Target
			old := e.ReadVertex(v)
			e.WriteVertex(v, e.alg.Reduce(old, ev.Value))
			// Forward the (coalesced) incoming delta, transformed per edge.
			e.PropagateValue(v, ev.Value, 0)
		}
	}
	return func(ev event.Event) {
		v := ev.Target
		old := e.ReadVertex(v)
		nw := e.alg.Reduce(old, ev.Value)
		changed := nw != old
		if changed {
			e.WriteVertex(v, nw)
			e.SetDep(v, ev.Source)
		}
		if changed || ev.IsRequest() {
			e.PropagateValue(v, nw, 0)
		}
	}
}

// RunPhase drains the queue to empty under h, handling drain rounds, slice
// swaps and timing. It is one scheduler phase (§4.3).
func (e *Engine) RunPhase(h Handler) {
	e.st.Phases++
	var seq, p0 uint64
	if e.ob != nil {
		seq = e.ob.nextSeq()
		p0 = e.st.EventsProcessed
		e.ob.Tr.Trace(obs.TraceEvent{Kind: obs.KindPhaseStart, Seq: seq, Worker: -1, A: e.st.Phases})
	}
	for {
		for !e.q.Empty() {
			e.q.DrainRound(func(batch []event.Event) {
				e.batchTouched = e.batchTouched[:0]
				e.batchWritten = 0
				e.batchFetches = e.batchFetches[:0]
				e.batchGenT = e.batchGenT[:0]
				for _, ev := range batch {
					e.st.EventsProcessed++
					if e.trace != nil {
						e.trace(ev)
					}
					h(ev)
				}
				if e.tm != nil {
					e.tm.Batch(e.batchTouched, e.batchWritten, e.batchFetches, e.batchGenT)
				}
			})
			if e.tm != nil {
				e.tm.RoundOverhead()
			}
		}
		if !e.loadNextSlice() {
			break
		}
	}
	if e.ob != nil {
		e.ob.Tr.Trace(obs.TraceEvent{Kind: obs.KindPhaseEnd, Seq: seq, Worker: -1,
			A: e.st.Phases, B: e.st.EventsProcessed - p0})
	}
}

// loadNextSlice swaps in the next slice with pending cross-slice events,
// charging the off-chip spill traffic. Returns false when nothing is
// pending anywhere.
func (e *Engine) loadNextSlice() bool {
	if e.part == nil {
		return false
	}
	for i := 1; i <= e.part.K; i++ {
		s := (e.active + i) % e.part.K
		if len(e.pending[s]) == 0 {
			continue
		}
		evs := e.pending[s]
		e.pending[s] = nil
		e.active = s
		if e.tm != nil {
			e.tm.Spill(2 * len(evs)) // written at emit time, read back now
		}
		for _, ev := range evs {
			e.q.Insert(ev)
		}
		return true
	}
	return false
}

// ChargeSetup charges phase-setup work performed outside a drain round (the
// Stream Reader and Impact Buffer activity between phases, §4.5). touched
// lists vertex states read and fetches lists adjacency ranges scanned; the
// events emitted since the last charge are taken from the engine's own
// recording.
func (e *Engine) ChargeSetup(touched []graph.VertexID, fetches []EdgeFetch) {
	if e.tm != nil {
		e.tm.Batch(touched, 0, fetches, e.batchGenT)
	}
	e.batchGenT = e.batchGenT[:0]
}

// ChargeStreamRead charges the Stream Reader's sequential scan of n edge
// updates from the host-written batch in memory.
func (e *Engine) ChargeStreamRead(n int) {
	if e.tm != nil {
		e.tm.StreamRead(n)
	}
}

// ChargeSpill charges an off-chip round trip of n event records (the Impact
// Buffer writing its list out and reading it back, §4.5).
func (e *Engine) ChargeSpill(n int) {
	if e.tm != nil {
		e.tm.Spill(n)
	}
}

// Repartition recomputes the slice assignment against the current graph
// version. §4.7: "the partitions may not remain optimal as the graph
// continues to evolve. To reduce the fraction of edge-cuts, we can
// periodically re-partition the graphs... without affecting the JetStream
// workflow." It must be called between phases (no pending cross-slice
// events); it returns the new edge cut, or -1 when slicing is off.
func (e *Engine) Repartition() int {
	if e.part == nil {
		return -1
	}
	for s := range e.pending {
		if len(e.pending[s]) != 0 {
			panic("engine: Repartition with pending cross-slice events")
		}
	}
	e.part = graph.PartitionGraph(e.csr, e.part.K)
	e.active = 0
	e.owner = nil // parallel ownership follows the same evolution cadence
	return e.part.Cut
}

// SetTrace installs fn as the processed-event observer (nil to remove). While
// a trace is installed the engine runs sequentially, so the observed order is
// the deterministic drain order.
func (e *Engine) SetTrace(fn func(event.Event)) { e.trace = fn }

// EdgeCut returns the current partition's cross-slice edge count (-1 when
// slicing is off).
func (e *Engine) EdgeCut() int {
	if e.part == nil {
		return -1
	}
	return e.part.Cut
}

// SeedInitialEvents loads the algorithm's initial events through the
// Initializer (step 0 of §4.6.1), charging the sequential memory scan.
func (e *Engine) SeedInitialEvents() {
	evs := e.alg.InitialEvents(e.csr)
	if e.tm != nil {
		e.tm.StreamRead(len(evs))
	}
	for _, ev := range evs {
		e.Emit(ev)
	}
}

// ResetState returns every vertex to Identity and clears dependencies; used
// for cold starts.
func (e *Engine) ResetState() {
	e.materialize()
	for i := range e.state {
		e.state[i] = e.alg.Identity()
	}
	for i := range e.dep {
		e.dep[i] = event.NoSource
	}
}

// RunToConvergence performs a full static evaluation from scratch — the
// GraphPulse baseline (and JetStream's initial evaluation).
func (e *Engine) RunToConvergence() {
	e.ResetState()
	e.SeedInitialEvents()
	e.RunCompute()
}
