// Package engine implements the GraphPulse event-driven accelerator model
// (paper §3.1, §4.1–§4.4): the coalescing-queue compute loop that both the
// static baseline and JetStream's streaming phases execute, plus the
// cycle-approximate timing layer that replays the engine's real access
// streams through the DRAM/cache/NoC models.
package engine

import (
	"jetstream/internal/event"
	"jetstream/internal/mem"
	"jetstream/internal/queue"
)

// Config describes the accelerator, following the paper's Table 1 and §4.
type Config struct {
	// Processors is the number of event processing engines (8).
	Processors int
	// GenStreams is the number of event generation streams per processor (4,
	// for 32 total sharing the crossbar inputs).
	GenStreams int
	// ClockHz converts cycles to time (1 GHz).
	ClockHz float64
	// ApplyCycles is the pipeline occupancy of one vertex update.
	ApplyCycles int
	// RoundOverheadCycles is the scheduler's per-drain-round bookkeeping.
	RoundOverheadCycles int

	// QueueBytes is the on-chip event queue capacity (64 MB eDRAM). With
	// one slot per vertex this bounds the vertices per graph slice; larger
	// JetStream/DAP events shrink that bound (paper §4.2, §6.1).
	QueueBytes int
	// Queue is the bin/row geometry.
	Queue queue.Config

	// VertexBytes is the state footprint per vertex (8; +4 under DAP for
	// the dependency field, §5.2).
	VertexBytes int
	// EdgeBytes is the CSR edge record footprint (destination + weight).
	EdgeBytes int

	// EdgeCacheBytes is the per-processor edge cache (1 KB).
	EdgeCacheBytes int
	// ScratchpadBytes is the per-processor vertex scratchpad (2 KB).
	ScratchpadBytes int

	DRAM mem.DRAMConfig

	// EventMode selects the event payload layout (GraphPulse, JetStream,
	// JetStream+DAP), which sets the on-chip footprint per queue slot.
	EventMode event.Mode

	// Parallelism shards the functional compute phases across this many
	// worker goroutines — one per simulated PE, multiplexed by the Go
	// scheduler onto at most GOMAXPROCS cores. It defaults to Processors
	// (the paper's 8 PEs). Parallel execution engages only with the timing
	// model off: with timing on the engine stays sequential, because the
	// cycle model reconstructs the hardware's parallelism from the
	// deterministic event trace. 1 reproduces the sequential engine bit for
	// bit; for selective (monotonic) kernels every parallelism converges to
	// the identical fixpoint, while accumulative kernels agree within the
	// epsilon-truncation bound (see core.Tolerance).
	Parallelism int

	// Timing enables the cycle model; with it off the engine is a pure
	// functional executor (tests of algorithmic behaviour run this way).
	Timing bool
	// DetailedTiming selects the per-event pipeline model (contended apply
	// units, generation streams, crossbar ports and coalescer pipelines)
	// instead of the batch-level throughput model. Slower to simulate,
	// resolves port-contention effects. Requires Timing.
	DetailedTiming bool
	// PipelineOverlap runs the timing simulation on a consumer goroutine fed
	// by a bounded FIFO of copied charge records, overlapping the functional
	// compute of row batch k+1 with the cycle simulation of row batch k (see
	// pipeline.go). Pure wall-clock optimization: the simulated cycle counts
	// are bitwise-identical with it on or off. No effect unless Timing is on.
	PipelineOverlap bool
}

// DefaultConfig returns the paper's Table 1 accelerator: 8 processors at
// 1 GHz, 64 MB on-chip queue memory, 4 DDR3 channels.
func DefaultConfig() Config {
	return Config{
		Processors:          8,
		GenStreams:          4,
		ClockHz:             1e9,
		ApplyCycles:         4,
		RoundOverheadCycles: 32,
		QueueBytes:          64 << 20,
		Queue:               queue.DefaultConfig(),
		VertexBytes:         8,
		EdgeBytes:           8,
		EdgeCacheBytes:      1 << 10,
		ScratchpadBytes:     2 << 10,
		DRAM:                mem.DefaultDRAMConfig(),
		EventMode:           event.ModeJetStream,
		Parallelism:         8,
		Timing:              true,
	}
}

// SliceCapacity returns how many vertices fit in the event queue for this
// configuration: one slot per vertex, slot size = event size. Graphs larger
// than this are partitioned (paper §4.7); JetStream's bigger events mean
// fewer vertices per slice than GraphPulse (§6.1: 6 vs 3 slices on Twitter).
func (c Config) SliceCapacity() int {
	return c.QueueBytes / event.Size(c.EventMode)
}

// CyclesToSeconds converts a cycle count at the configured clock.
func (c Config) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / c.ClockHz
}
