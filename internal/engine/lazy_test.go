package engine

import (
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
)

func lazyTestGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.Build(64, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2},
		{Src: 2, Dst: 3, Weight: 3}, {Src: 0, Dst: 4, Weight: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestLazyConstruction pins the tenancy contract: building an Engine
// allocates no per-vertex arrays; the first state touch does. A service
// holding thousands of idle standing queries depends on this.
func TestLazyConstruction(t *testing.T) {
	g := lazyTestGraph(t)
	e := New(g, algo.NewSSSP(0), testConfig(false), nil, WithDependencyTracking())
	if e.state != nil {
		t.Fatal("state allocated at construction")
	}
	if e.dep != nil {
		t.Fatal("dep allocated at construction")
	}
	if !e.wantDep {
		t.Fatal("WithDependencyTracking did not request tracking")
	}

	// Pre-materialization operations that must not allocate state: graph
	// swaps (the vertex-count check reads the CSR, not the state).
	e.SetGraph(g, nil)
	if e.state != nil {
		t.Fatal("SetGraph materialized state")
	}

	// First touch materializes both arrays, identity-filled.
	st := e.State()
	if len(st) != g.NumVertices() {
		t.Fatalf("state length %d, want %d", len(st), g.NumVertices())
	}
	id := algo.NewSSSP(0).Identity()
	for v, x := range st {
		if x != id {
			t.Fatalf("state[%d] = %v, want identity %v", v, x, id)
		}
	}
	if e.dep == nil {
		t.Fatal("dep not materialized with state")
	}
}

// TestLazyMatchesEager checks a lazily-materialized engine converges to the
// same fixpoint as one driven immediately — materialization must be
// invisible to results.
func TestLazyMatchesEager(t *testing.T) {
	g := lazyTestGraph(t)

	lazy := New(g, algo.NewSSSP(0), testConfig(false), nil)
	// Idle period: accessors that must not disturb the eventual run.
	_ = lazy.Queue().Len()
	_ = lazy.Queue().Rows()
	if lazy.Queue().HighWater() != 0 {
		t.Fatal("idle queue has a high-water mark")
	}
	lazy.RunToConvergence()

	eager := New(g, algo.NewSSSP(0), testConfig(false), nil)
	eager.RunToConvergence()

	ls, es := lazy.State(), eager.State()
	for v := range es {
		if ls[v] != es[v] {
			t.Fatalf("state[%d]: lazy %v, eager %v", v, ls[v], es[v])
		}
	}
}
