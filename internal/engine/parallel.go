package engine

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"jetstream/internal/algo"
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/obs"
	"jetstream/internal/pad"
	"jetstream/internal/queue"
	"jetstream/internal/stats"
)

// This file is the parallel multi-PE execution path of the functional engine.
// The paper's accelerator runs 8 event-processing PEs concurrently over a
// partitioned vertex space (Table 1); here each PE is one worker goroutine
// that owns a disjoint vertex set (the BFS-grown partition of
// internal/graph/partition.go), drains a private coalescing shard
// (queue.Shard), and routes cross-partition propagations through per-pair
// channels that mirror the internal/noc crossbar fabric.
//
// Correctness rests on three properties:
//
//   - Ownership: a vertex's state (and DAP dependency field) is read and
//     written only by its owning worker, so the shared state slice needs no
//     locks. Handlers never read another vertex's state — contributions
//     arrive in the event payload, exactly as in the hardware.
//   - Reordering: Reduce is commutative and associative (paper §3.1), so any
//     interleaving converges to the same fixpoint — identical bits for
//     selective kernels, within the epsilon-truncation bound for
//     accumulative ones.
//   - Quiescence: termination uses a distributed outstanding-event count
//     instead of the sequential empty-queue check. Every live event record
//     (queue slot, overflow entry, staged or in-flight cross event) holds
//     one token on a shared counter; tokens are acquired before the record
//     becomes visible and released only after it is retired (processed, or
//     merged into an already-counted slot). A worker observing zero may
//     therefore exit: nothing is live anywhere and no live record can mint
//     new work.

// chanCap bounds each per-pair channel. Sends are non-blocking (full
// channels park events in the sender's staging buffer, retried next loop),
// so the capacity only tunes batching, never correctness.
const chanCap = 64

// parallelRun is the shared context of one parallel compute phase.
type parallelRun struct {
	alg      algo.Algorithm
	acc      bool
	eps      float64
	view     GraphView
	state    []float64
	dep      []graph.VertexID
	sq       *queue.Sharded
	trackDep bool

	// outstanding is the quiescence barrier: live event records not yet
	// retired. Workers exit when they observe zero. Every worker hammers this
	// counter once per row batch, so it gets a cache line to itself — without
	// the fences its line also holds the read-mostly fields above, and every
	// Add would invalidate the view/state headers in all other workers'
	// caches.
	_           pad.Line
	outstanding atomic.Int64
	_           pad.Line

	// mail[i][j] carries event batches from worker i to worker j (i != j).
	mail [][]chan []event.Event
}

// peWorker is one simulated processing engine.
//
// The stats block and the per-batch tallies below the first pad line are
// written by this worker on every processed event. Workers are allocated
// back-to-back at phase start, so without the cache-line fences one worker's
// counter increments would sit on the same line as a neighbor's and the
// per-event stores would ping-pong ownership between cores — the classic
// false-sharing tax on exactly the path BenchmarkParallelism measures.
type peWorker struct {
	id      int
	run     *parallelRun
	shard   *queue.Shard
	staging [][]event.Event      // cross-partition events not yet sent, per destination
	inbox   []chan []event.Event // mail[*][id], nil at index id
	outbox  []chan []event.Event // mail[id][*], nil at index id

	_  pad.Line       // fence: per-event single-writer region below
	st stats.Counters // merged into the engine's sink at phase end

	// Per-batch token bookkeeping (see quiescence comment above).
	newLive int64 // records that became live while processing the current batch

	// Observability tallies, published into the engine's Obs at phase end.
	// tr is nil when the engine is uninstrumented; it must be called only
	// with concurrency-safe tracers (the Tracer contract).
	tr        obs.Tracer
	trSeq     uint64
	sent      []uint64 // per-destination cross-partition events staged
	forwarded uint64   // total cross-partition events staged
	idleSpins uint64   // loop iterations that found no work

	_ pad.Line // fence: nothing after the hot region shares its last line
}

// parallelism returns the effective worker count for the next compute phase:
// the configured Parallelism, clamped to the vertex count, and 1 (sequential)
// whenever a sequential-only feature is active — the timing model (which
// reconstructs hardware parallelism from the deterministic trace), graph
// slicing (§4.7 processes one slice at a time by design), or a trace hook.
func (e *Engine) parallelism() int {
	p := e.cfg.Parallelism
	if p <= 1 || e.cfg.Timing || e.part != nil || e.trace != nil {
		return 1
	}
	if n := e.csr.NumVertices(); p > n {
		p = n
	}
	if p <= 1 {
		return 1
	}
	return p
}

// RunCompute runs the regular computation phase (Algorithm 1 with
// JetStream's request/dependency extensions) to quiescence, sharded across
// Parallelism workers when the configuration allows it and sequentially
// otherwise. Parallelism 1 is byte-for-byte the sequential engine.
func (e *Engine) RunCompute() {
	e.materialize()
	if p := e.parallelism(); p > 1 {
		e.runComputeParallel(p)
		return
	}
	e.RunPhase(e.ComputeHandler())
}

// ownership returns the cached vertex -> worker assignment for p workers,
// computing it from the BFS-grown partitioner on first use. The assignment
// is kept across graph versions (ownership only needs disjointness; the
// vertex count never changes) and refreshed by Repartition, mirroring §4.7's
// periodic re-partitioning.
func (e *Engine) ownership(p int) []int32 {
	if e.owner == nil || e.ownerK != p {
		part := graph.PartitionGraph(e.csr, p)
		e.owner = make([]int32, e.csr.NumVertices())
		for v := range e.owner {
			e.owner[v] = int32(part.SliceOf(graph.VertexID(v)))
		}
		e.ownerK = p
	}
	return e.owner
}

func (e *Engine) runComputeParallel(p int) {
	e.st.Phases++
	var phaseSeq, p0 uint64
	if e.ob != nil {
		phaseSeq = e.ob.nextSeq()
		p0 = e.st.EventsProcessed
		e.ob.Tr.Trace(obs.TraceEvent{Kind: obs.KindPhaseStart, Seq: phaseSeq, Worker: -1, A: e.st.Phases})
	}
	run := &parallelRun{
		alg:      e.alg,
		acc:      e.alg.Class() == algo.Accumulative,
		eps:      e.alg.Epsilon(),
		view:     e.view,
		state:    e.state,
		dep:      e.dep,
		trackDep: e.dep != nil,
	}
	owner := e.ownership(p)
	run.sq = queue.NewSharded(p, owner, e.cfg.Queue, queue.ReduceCoalesce(e.alg.Reduce), e.q.CoalescingEnabled())

	// Move the phase's seed events (already counted as generated when they
	// were emitted) from the sequential queue into the shards. Workers have
	// not started, so token ordering is not yet a concern. Seed coalesces are
	// attributed to the destination shard's owner — that is where the merge
	// happens in the hardware.
	live := int64(0)
	var seedCo []uint64
	if e.ob != nil {
		seedCo = make([]uint64, p)
	}
	for _, ev := range e.q.TakeAll() {
		d := run.sq.Owner(ev.Target)
		if run.sq.Shard(d).Insert(ev) {
			e.st.EventsCoalesced++
			if seedCo != nil {
				seedCo[d]++
			}
		} else {
			live++
		}
	}
	if e.ob != nil {
		for i, n := range seedCo {
			if n > 0 {
				e.ob.worker(i).coalesced.Add(n)
				e.obPub.EventsCoalesced += n
			}
		}
	}
	run.outstanding.Store(live)
	if live == 0 {
		if e.ob != nil {
			e.ob.Tr.Trace(obs.TraceEvent{Kind: obs.KindPhaseEnd, Seq: phaseSeq, Worker: -1,
				A: e.st.Phases, B: e.st.EventsProcessed - p0})
		}
		return
	}

	run.mail = make([][]chan []event.Event, p)
	for i := 0; i < p; i++ {
		run.mail[i] = make([]chan []event.Event, p)
		for j := 0; j < p; j++ {
			if i != j {
				run.mail[i][j] = make(chan []event.Event, chanCap)
			}
		}
	}
	workers := make([]*peWorker, p)
	for i := 0; i < p; i++ {
		w := &peWorker{
			id:      i,
			run:     run,
			shard:   run.sq.Shard(i),
			staging: make([][]event.Event, p),
			inbox:   make([]chan []event.Event, p),
			outbox:  run.mail[i],
			sent:    make([]uint64, p),
		}
		if e.ob != nil {
			w.tr = e.ob.Tr
		}
		for j := 0; j < p; j++ {
			if j != i {
				w.inbox[j] = run.mail[j][i]
			}
		}
		workers[i] = w
	}

	var wg sync.WaitGroup
	wg.Add(p)
	for _, w := range workers {
		go func(w *peWorker) {
			defer wg.Done()
			w.loop()
		}(w)
	}
	wg.Wait()

	// Merge the per-worker counters into the engine's sink (the per-worker
	// accumulation that keeps internal/stats correct without contended
	// atomics on the hot path), then publish each worker's share into its
	// labeled series and the NoC transfer matrix.
	for _, w := range workers {
		e.st.Add(&w.st)
	}
	if e.ob != nil {
		for i, w := range workers {
			e.publishWorker(i, &w.st, w.forwarded, w.sent, w.shard.HighWater(), w.idleSpins)
		}
		e.ob.Tr.Trace(obs.TraceEvent{Kind: obs.KindPhaseEnd, Seq: phaseSeq, Worker: -1,
			A: e.st.Phases, B: e.st.EventsProcessed - p0})
	}
}

// loop is the worker's scheduler: drain inbound cross-partition events,
// process local rows, flush outbound staging, and exit at global quiescence.
//
//jetlint:hotpath
func (w *peWorker) loop() {
	for {
		progress := w.drainInbox()
		if !w.shard.Empty() {
			w.drainRounds()
			w.flushStaging()
			continue
		}
		if w.flushStaging() || progress {
			continue
		}
		if w.run.outstanding.Load() == 0 {
			return
		}
		w.idleSpins++
		runtime.Gosched()
	}
}

// drainRounds processes the shard until it is momentarily empty,
// interleaving inbox drains so inbound events join the current cascade.
func (w *peWorker) drainRounds() {
	for !w.shard.Empty() {
		n := w.shard.DrainRound(func(batch []event.Event) {
			w.newLive = 0
			for _, ev := range batch {
				w.process(ev)
			}
			// One atomic per row batch: retire the batch's tokens and
			// acquire tokens for every record it made live. The swap
			// happens after the children exist (so the counter can never
			// dip to zero while work remains) and before staged events are
			// sent (staged records are counted, merely not yet visible).
			if delta := w.newLive - int64(len(batch)); delta != 0 {
				w.run.outstanding.Add(delta)
			}
		})
		if n > 0 {
			w.st.Rounds++
		}
		w.flushStaging()
		w.drainInbox()
	}
}

// process applies one event — the parallel twin of Engine.ComputeHandler,
// using per-worker counters and ownership-routed emission.
func (w *peWorker) process(ev event.Event) {
	r := w.run
	v := ev.Target
	w.st.EventsProcessed++
	w.st.VertexReads++
	old := r.state[v]
	if r.acc {
		r.state[v] = r.alg.Reduce(old, ev.Value)
		w.st.VertexWrites++
		w.propagate(v, ev.Value)
		return
	}
	nw := r.alg.Reduce(old, ev.Value)
	changed := nw != old
	if changed {
		r.state[v] = nw
		w.st.VertexWrites++
		if r.trackDep {
			r.dep[v] = ev.Source
		}
	}
	if changed || ev.IsRequest() {
		w.propagate(v, nw)
	}
}

// propagate sends x from u along every out-edge in the active view — the
// parallel twin of Engine.PropagateValue.
func (w *peWorker) propagate(u graph.VertexID, x float64) {
	r := w.run
	deg := r.view.OutDegree(u)
	if deg == 0 {
		return
	}
	wsum := r.view.OutWeightSum(u)
	r.view.OutEdges(u, func(dst graph.VertexID, wt graph.Weight) {
		val := r.alg.Propagate(u, x, wt, deg, wsum)
		if r.acc && math.Abs(val) <= r.eps {
			return
		}
		w.emit(event.Event{Target: dst, Value: val, Source: u})
	})
	w.st.EdgeReads += uint64(deg)
}

// emit routes ev to its owner: the local shard directly, other workers via
// the staged per-pair channels.
func (w *peWorker) emit(ev event.Event) {
	w.st.EventsGenerated++
	r := w.run
	d := r.sq.Owner(ev.Target)
	if d == w.id {
		if w.shard.Insert(ev) {
			w.st.EventsCoalesced++
		} else {
			w.newLive++
		}
		return
	}
	w.staging[d] = append(w.staging[d], ev)
	w.newLive++
	w.sent[d]++
	w.forwarded++
}

// flushStaging attempts a non-blocking send of every staged batch. Full
// channels keep their batch staged for the next attempt, which cannot
// deadlock: every worker drains its inbox on every loop iteration.
func (w *peWorker) flushStaging() bool {
	sent := false
	for d, evs := range w.staging {
		if len(evs) == 0 {
			continue
		}
		select {
		case w.outbox[d] <- evs:
			w.staging[d] = nil
			sent = true
			if w.tr != nil {
				w.trSeq++
				w.tr.Trace(obs.TraceEvent{Kind: obs.KindWorkerMail, Seq: w.trSeq,
					Worker: w.id, A: uint64(d), B: uint64(len(evs))})
			}
		default:
		}
	}
	return sent
}

// drainInbox receives every currently available inbound batch and inserts it
// into the local shard, releasing the tokens of records that coalesced away.
func (w *peWorker) drainInbox() bool {
	got := false
	for _, ch := range w.inbox {
		if ch == nil {
			continue
		}
		for {
			select {
			case evs := <-ch:
				got = true
				merged := int64(0)
				for _, ev := range evs {
					if w.shard.Insert(ev) {
						w.st.EventsCoalesced++
						merged++
					}
				}
				if merged > 0 {
					w.run.outstanding.Add(-merged)
				}
				continue
			default:
			}
			break
		}
	}
	return got
}
