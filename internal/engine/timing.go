package engine

import (
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/mem"
	"jetstream/internal/noc"
	"jetstream/internal/obs"
	"jetstream/internal/sim"
	"jetstream/internal/stats"
)

// Address-space layout for the accelerator's dedicated DRAM. Distinct
// regions keep vertex streams, edge streams and spill traffic from aliasing
// in the row-buffer model.
const (
	vertexBase uint64 = 0x0000_0000
	edgeBase   uint64 = 0x4000_0000
	spillBase  uint64 = 0xC000_0000
)

// CycleModel is the engine's timing interface: the functional engine reports
// its work (drain-round batches, setup scans, spills) and the model advances
// a cycle counter. Two implementations exist — Timing (batch-level
// throughput bounds) and Detailed (per-event pipeline with contended
// resources).
type CycleModel interface {
	// Batch charges one row batch: the vertices touched (ascending), how
	// many were written back, the adjacency ranges fetched, and the targets
	// of every generated event (used for crossbar/bin contention; length =
	// events generated).
	Batch(touched []graph.VertexID, written int, fetches []EdgeFetch, genTargets []graph.VertexID)
	// RoundOverhead charges the scheduler's end-of-round synchronization.
	RoundOverhead()
	// Spill charges an off-chip round trip of n event records.
	Spill(n int)
	// StreamRead charges the Stream Reader's sequential scan of n updates.
	StreamRead(n int)
	// Cycles returns the accumulated cycle count.
	Cycles() uint64
}

// Timing is the batch-level cycle model. The functional engine reports each drain-round
// row batch (the exact vertices touched, edge ranges fetched and events
// generated) and Timing replays those accesses through the DRAM, per-PE edge
// caches and the generation-to-queue crossbar, advancing a cycle counter.
// This is the stand-in for the paper's SST+DRAMSim2 simulation: absolute
// cycles are approximate, but the relative costs that drive every figure
// (work counts, spatial locality, row-buffer behaviour) come from the real
// access streams.
type Timing struct {
	cfg  Config
	st   *stats.Counters
	dram *mem.DRAM
	ec   []*mem.Cache // per-PE edge caches
	xbar *noc.Crossbar

	cycles   uint64
	spillPtr uint64
	batchSeq int
}

// NewTiming builds the cycle model for cfg; st receives traffic counters.
func NewTiming(cfg Config, st *stats.Counters) *Timing {
	t := &Timing{
		cfg:  cfg,
		st:   st,
		dram: mem.NewDRAM(cfg.DRAM, st),
		xbar: noc.New(16, 16),
	}
	for i := 0; i < cfg.Processors; i++ {
		t.ec = append(t.ec, mem.NewCache(cfg.EdgeCacheBytes, 2, 64))
	}
	return t
}

// Cycles returns the accumulated cycle count.
func (t *Timing) Cycles() uint64 { return t.cycles }

// Observe registers the model's per-channel DRAM traffic series on reg.
func (t *Timing) Observe(reg *obs.Registry) { t.dram.Observe(reg) }

// Channels returns the per-channel DRAM traffic tallies.
func (t *Timing) Channels() []mem.ChannelCounts { return t.dram.ChannelCounts() }

// EdgeFetch describes one vertex's adjacency read: the CSR offset of the
// first edge and the number of edges.
type EdgeFetch struct {
	Offset uint64
	Count  int
}

// Batch charges one drain-round row batch (see CycleModel.Batch).
func (t *Timing) Batch(touched []graph.VertexID, written int, fetches []EdgeFetch, genTargets []graph.VertexID) {
	generated := len(genTargets)
	if len(touched) == 0 && len(fetches) == 0 && generated == 0 {
		return
	}
	start := t.cycles
	memDone := start

	// Vertex prefetch: the scratchpad prefetcher reads the distinct state
	// lines for the batch; rows group page-local vertices so these are
	// mostly sequential (paper §4.4).
	vb := uint64(t.cfg.VertexBytes)
	lastLine := ^uint64(0)
	lines := 0
	for _, v := range touched {
		addr := vertexBase + uint64(v)*vb
		if line := addr / 64; line != lastLine {
			lastLine = line
			lines++
			if done := t.dram.Access(start, addr); done > memDone {
				memDone = done
			}
		}
	}
	// Write-back of dirty lines (write-combined through the scratchpad).
	wbLines := (written*int(vb) + 63) / 64
	for i := 0; i < wbLines; i++ {
		addr := vertexBase + uint64(touched[0])*vb + uint64(i*64)
		if done := t.dram.Access(start, addr); done > memDone {
			memDone = done
		}
	}

	// Edge streams: each fetch goes through its processor's edge cache;
	// misses stream from DRAM (contiguous edge arrays, §4.4).
	eb := uint64(t.cfg.EdgeBytes)
	totalEdges := 0
	for i, f := range fetches {
		totalEdges += f.Count
		pe := (t.batchSeq + i) % t.cfg.Processors
		lo := edgeBase + f.Offset*eb
		hi := lo + uint64(f.Count)*eb
		for line := lo / 64; line <= (hi-1)/64 && f.Count > 0; line++ {
			if !t.ec[pe].Access(line * 64) {
				if done := t.dram.Access(start, line*64); done > memDone {
					memDone = done
				}
			}
		}
	}
	t.batchSeq++

	// Pipeline bounds: apply throughput over the PEs, generation throughput
	// over the streams, crossbar insertion.
	pe := uint64(t.cfg.Processors)
	applyC := (uint64(len(touched))*uint64(t.cfg.ApplyCycles) + pe - 1) / pe
	streams := uint64(t.cfg.Processors * t.cfg.GenStreams)
	genC := (uint64(totalEdges) + streams - 1) / streams
	flits := uint64(generated) * uint64((event.Size(t.cfg.EventMode)+7)/8)
	insC := t.xbar.SpreadCycles(flits)
	pipeDone := start + applyC + genC + insC

	t.cycles = sim.Max(memDone, pipeDone)

	// Useful-byte accounting for Fig 11: state actually consumed/produced
	// plus edges actually walked.
	t.st.BytesUsed += uint64(len(touched)+written)*vb + uint64(totalEdges)*eb
}

// RoundOverhead charges the scheduler's end-of-round synchronization (the
// scheduler waits for all processors to idle before a new round, §4.3).
func (t *Timing) RoundOverhead() {
	t.cycles += uint64(t.cfg.RoundOverheadCycles)
}

// Spill charges an off-chip block transfer of n event records (cross-slice
// events or the DAP overflow buffer, §4.7/§5.2), in the given direction.
func (t *Timing) Spill(n int) {
	if n == 0 {
		return
	}
	bytes := uint64(n * event.Size(t.cfg.EventMode))
	start := t.cycles
	memDone := start
	for off := uint64(0); off < bytes; off += 64 {
		if done := t.dram.Access(start, spillBase+(t.spillPtr+off)%(1<<28)); done > memDone {
			memDone = done
		}
	}
	t.spillPtr = (t.spillPtr + bytes) % (1 << 28)
	t.st.SpillBytes += bytes
	t.st.BytesUsed += bytes // spilled events are fully consumed on re-read
	t.cycles = memDone
}

// StreamRead charges the Stream Reader module's sequential scan of a batch
// of n edge updates from memory (§4.5).
func (t *Timing) StreamRead(n int) {
	if n == 0 {
		return
	}
	const updBytes = 12 // <source, destination, weight>
	bytes := uint64(n * updBytes)
	start := t.cycles
	memDone := start
	for off := uint64(0); off < bytes; off += 64 {
		if done := t.dram.Access(start, spillBase+(1<<27)+off%(1<<26)); done > memDone {
			memDone = done
		}
	}
	t.st.BytesUsed += bytes
	t.cycles = memDone
}
