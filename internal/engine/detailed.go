package engine

import (
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/mem"
	"jetstream/internal/obs"
	"jetstream/internal/sim"
	"jetstream/internal/stats"
)

// Detailed is the per-event pipeline cycle model: instead of bounding each
// drain-round batch by aggregate throughputs, it walks every event through
// the §4.6 dataflow with individually contended resources —
//
//	vertex prefetch (DRAM) → apply unit (one of 8 PEs) → edge fetch
//	(per-PE cache / DRAM) → generation stream (one of 32) → crossbar
//	output port (one of 16) → queue-bin coalescer (one of 16)
//
// — so hot spots the batch model averages away become visible: a hub whose
// response floods one queue bin serializes on that bin's port, an unlucky
// PE assignment stalls its FIFO, and so on. It implements CycleModel and is
// selected with Config.DetailedTiming.
type Detailed struct {
	cfg Config
	st  *stats.Counters

	dram *mem.DRAM
	ec   []*mem.Cache

	pe    []sim.Resource // apply pipelines, one per processing engine
	gen   []sim.Resource // generation streams (Processors * GenStreams)
	xport []sim.Resource // crossbar output ports
	bins  []sim.Resource // queue-bin coalescer pipelines

	cycles   uint64
	spillPtr uint64
	batchSeq int

	applyDone []uint64 // scratch, reused across batches
	fetchDone []uint64
}

// Coalescer latency: reading the mapped slot, reducing, writing back (§4.2
// describes a multi-cycle pipeline accepting one event per cycle).
const coalesceLatency = 3

// NewDetailed builds the per-event pipeline model for cfg.
func NewDetailed(cfg Config, st *stats.Counters) *Detailed {
	t := &Detailed{
		cfg:  cfg,
		st:   st,
		dram: mem.NewDRAM(cfg.DRAM, st),
	}
	for i := 0; i < cfg.Processors; i++ {
		t.ec = append(t.ec, mem.NewCache(cfg.EdgeCacheBytes, 2, 64))
		t.pe = append(t.pe, sim.Resource{Interval: uint64(cfg.ApplyCycles)})
	}
	for i := 0; i < cfg.Processors*cfg.GenStreams; i++ {
		t.gen = append(t.gen, sim.Resource{Interval: 1})
	}
	for i := 0; i < 16; i++ {
		t.xport = append(t.xport, sim.Resource{Interval: 1})
		t.bins = append(t.bins, sim.Resource{Interval: 1})
	}
	return t
}

// Cycles returns the accumulated cycle count.
func (t *Detailed) Cycles() uint64 { return t.cycles }

// Observe registers the model's per-channel DRAM traffic series on reg.
func (t *Detailed) Observe(reg *obs.Registry) { t.dram.Observe(reg) }

// Channels returns the per-channel DRAM traffic tallies.
func (t *Detailed) Channels() []mem.ChannelCounts { return t.dram.ChannelCounts() }

// Batch walks one row batch through the pipeline (see CycleModel.Batch).
func (t *Detailed) Batch(touched []graph.VertexID, written int, fetches []EdgeFetch, genTargets []graph.VertexID) {
	if len(touched) == 0 && len(fetches) == 0 && len(genTargets) == 0 {
		return
	}
	start := t.cycles
	end := start
	vb := uint64(t.cfg.VertexBytes)
	eb := uint64(t.cfg.EdgeBytes)

	// Stage 1+2 — vertex prefetch and apply. The prefetcher issues one DRAM
	// line read per distinct state line; each event's apply waits for its
	// line and for its processing engine's pipeline slot (events in a row
	// batch go to the same engine group, §4.3 — modeled as round-robin).
	t.applyDone = t.applyDone[:0]
	lastLine := ^uint64(0)
	lineReady := start
	for i, v := range touched {
		addr := vertexBase + uint64(v)*vb
		if line := addr / 64; line != lastLine {
			lastLine = line
			lineReady = t.dram.Access(start, addr)
		}
		peIdx := (t.batchSeq + i) % len(t.pe)
		at := lineReady
		if at < start {
			at = start
		}
		done := t.pe[peIdx].Acquire(at) + uint64(t.cfg.ApplyCycles)
		t.applyDone = append(t.applyDone, done)
		if done > end {
			end = done
		}
	}
	// Dirty-line write-back trails the batch (write-combined).
	wbLines := (written*int(vb) + 63) / 64
	for i := 0; i < wbLines && len(touched) > 0; i++ {
		addr := vertexBase + uint64(touched[0])*vb + uint64(i*64)
		if done := t.dram.Access(start, addr); done > end {
			end = done
		}
	}

	// Stage 3+4 — edge fetch and generation. The j-th adjacency fetch is
	// gated by the apply that produced it; the engine reports fetches in
	// apply order, so map them proportionally onto the apply completions.
	t.fetchDone = t.fetchDone[:0]
	totalEdges := 0
	for j, f := range fetches {
		gate := start
		if n := len(t.applyDone); n > 0 {
			idx := j
			if len(fetches) > 1 {
				idx = j * (n - 1) / (len(fetches) - 1)
			}
			if idx >= n {
				idx = n - 1
			}
			gate = t.applyDone[idx]
		}
		peIdx := (t.batchSeq + j) % len(t.ec)
		edgesReady := gate
		lo := edgeBase + f.Offset*eb
		hi := lo + uint64(f.Count)*eb
		for line := lo / 64; line <= (hi-1)/64 && f.Count > 0; line++ {
			if !t.ec[peIdx].Access(line * 64) {
				if done := t.dram.Access(gate, line*64); done > edgesReady {
					edgesReady = done
				}
			}
		}
		stream := (t.batchSeq + j) % len(t.gen)
		done := t.gen[stream].AcquireN(edgesReady, f.Count) + uint64(f.Count)
		t.fetchDone = append(t.fetchDone, done)
		totalEdges += f.Count
		if done > end {
			end = done
		}
	}
	t.batchSeq++

	// Stage 5+6 — crossbar routing and queue insertion. Each generated event
	// crosses the 16x16 switch to its target's bin port and enters that
	// bin's coalescer; both serialize per port. Event targets map to bins by
	// vertex index (§4.2), so a hub response aimed at one page of vertices
	// piles onto few bins — the contention this model resolves.
	flits := uint64((event.Size(t.cfg.EventMode) + 7) / 8)
	for k, tgt := range genTargets {
		ready := start
		if n := len(t.fetchDone); n > 0 {
			idx := 0
			if len(genTargets) > 1 {
				idx = k * (n - 1) / (len(genTargets) - 1)
			}
			ready = t.fetchDone[idx]
		} else if n := len(t.applyDone); n > 0 {
			ready = t.applyDone[n-1]
		}
		bin := int(tgt) % 16
		xDone := t.xport[bin].AcquireN(ready, int(flits)) + flits
		insDone := t.bins[bin].Acquire(xDone) + coalesceLatency
		if insDone > end {
			end = insDone
		}
	}

	if end > t.cycles {
		t.cycles = end
	}
	t.st.BytesUsed += uint64(len(touched)+written)*vb + uint64(totalEdges)*eb
}

// RoundOverhead charges the scheduler's end-of-round synchronization.
func (t *Detailed) RoundOverhead() {
	t.cycles += uint64(t.cfg.RoundOverheadCycles)
}

// Spill charges an off-chip round trip of n event records.
func (t *Detailed) Spill(n int) {
	if n == 0 {
		return
	}
	bytes := uint64(n * event.Size(t.cfg.EventMode))
	start := t.cycles
	memDone := start
	for off := uint64(0); off < bytes; off += 64 {
		if done := t.dram.Access(start, spillBase+(t.spillPtr+off)%(1<<28)); done > memDone {
			memDone = done
		}
	}
	t.spillPtr = (t.spillPtr + bytes) % (1 << 28)
	t.st.SpillBytes += bytes
	t.st.BytesUsed += bytes
	t.cycles = memDone
}

// StreamRead charges the Stream Reader's sequential batch scan.
func (t *Detailed) StreamRead(n int) {
	if n == 0 {
		return
	}
	const updBytes = 12
	bytes := uint64(n * updBytes)
	start := t.cycles
	memDone := start
	for off := uint64(0); off < bytes; off += 64 {
		if done := t.dram.Access(start, spillBase+(1<<27)+off%(1<<26)); done > memDone {
			memDone = done
		}
	}
	t.st.BytesUsed += bytes
	t.cycles = memDone
}
