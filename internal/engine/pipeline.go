package engine

import (
	"sync"
	"sync/atomic"

	"jetstream/internal/graph"
	"jetstream/internal/mem"
	"jetstream/internal/obs"
)

// This file implements functional/timing pipeline overlap: a CycleModel
// decorator that replays the functional engine's charge stream against the
// wrapped model on a consumer goroutine, so the (expensive, detailed) timing
// simulation of row batch k drains while the functional engine is already
// processing row batch k+1 — and, across System batches, while the next
// batch's functional phases run, up to the next cycle read.
//
// Determinism contract: charges are handed off over a FIFO channel and the
// consumer applies them strictly in order, so the wrapped model observes the
// exact byte-for-byte sequence it would have seen inline — Cycles() with
// overlap on equals Cycles() with overlap off, always. The overlap changes
// wall-clock time, never the simulated timeline.
//
// Memory contract: the engine reuses its per-row-batch recording slices, so
// Batch must copy its arguments before returning. Copies land in two
// preallocated slots recycled through a free channel — the two-slot handoff:
// the producer can run at most two row batches ahead of the simulator, which
// bounds memory and keeps the copy buffers cache-warm. A producer finding
// both slots in flight counts a stall and blocks (backpressure, not
// drop — every charge is replayed).
//
// Concurrency contract: the timing model only exists on the sequential
// engine path (parallelism() returns 1 when timing is on), so there is
// exactly one producer. The consumer writes only the wrapped model's state
// and the memory-traffic stats fields (BytesUsed, SpillBytes, and the DRAM
// counters) — fields the functional path never touches — and every read of
// those fields (Cycles, Channels, FlushObs) joins the consumer first via
// Flush, which also gives the happens-before edge that makes the counter
// values visible.

// pipeSlotCount is the handoff depth: how many row batches the functional
// engine may run ahead of the timing simulation.
const pipeSlotCount = 2

type pipeOpKind uint8

const (
	pipeOpBatch pipeOpKind = iota
	pipeOpRound
	pipeOpSpill
	pipeOpStream
	pipeOpStop
)

// pipeOp is one replayed charge. Batch ops carry a slot; the small ops carry
// only their count and ride the same FIFO so ordering is preserved.
type pipeOp struct {
	kind pipeOpKind
	slot *pipeSlot
	n    int
}

// pipeSlot is one copied row-batch charge.
type pipeSlot struct {
	touched []graph.VertexID
	fetches []EdgeFetch
	genT    []graph.VertexID
	written int
}

// pipelined decorates a CycleModel with the overlap machinery.
type pipelined struct {
	inner CycleModel

	ops  chan pipeOp
	free chan *pipeSlot
	wg   sync.WaitGroup
	live bool // consumer goroutine running; producer-side state

	// Handoff telemetry, exported through Observe. Atomics because a metrics
	// scrape may pull them while the producer is mid-phase.
	handoffs atomic.Uint64 // row batches handed to the consumer
	stalls   atomic.Uint64 // handoffs that found both slots in flight
	flushes  atomic.Uint64 // consumer joins (cycle reads, stat flushes)
	depth    *obs.Gauge    // queued ops at last handoff; nil when unobserved
}

// newPipelined wraps inner. The slots start on the free list; the consumer
// goroutine is spawned lazily on first charge and exits at every flush, so an
// idle engine holds no goroutine.
func newPipelined(inner CycleModel) *pipelined {
	p := &pipelined{
		inner: inner,
		ops:   make(chan pipeOp, pipeSlotCount*2),
		free:  make(chan *pipeSlot, pipeSlotCount),
	}
	for i := 0; i < pipeSlotCount; i++ {
		p.free <- &pipeSlot{}
	}
	return p
}

// consume replays charges in FIFO order until the stop op.
func (p *pipelined) consume() {
	defer p.wg.Done()
	for op := range p.ops {
		switch op.kind {
		case pipeOpBatch:
			s := op.slot
			p.inner.Batch(s.touched, s.written, s.fetches, s.genT)
			p.free <- s
		case pipeOpRound:
			p.inner.RoundOverhead()
		case pipeOpSpill:
			p.inner.Spill(op.n)
		case pipeOpStream:
			p.inner.StreamRead(op.n)
		case pipeOpStop:
			return
		}
	}
}

// start spawns the consumer if it is not running. Producer-side only.
func (p *pipelined) start() {
	if p.live {
		return
	}
	p.live = true
	p.wg.Add(1)
	go p.consume()
}

// Flush joins the consumer: every queued charge is applied to the wrapped
// model and the goroutine exits. After Flush the wrapped model's cycle count
// and traffic counters are exact and safe to read from the caller's
// goroutine. Idempotent; cheap when nothing is queued.
func (p *pipelined) Flush() {
	if !p.live {
		return
	}
	p.ops <- pipeOp{kind: pipeOpStop}
	p.wg.Wait()
	p.live = false
	p.flushes.Add(1)
}

// Batch copies the engine's (reused) recording slices into a handoff slot
// and queues the charge. This is the pipeline handoff the benchmarks pin at
// zero allocations: slot buffers are recycled, so steady state is three
// copies and two channel operations per row batch.
//
//jetlint:hotpath
func (p *pipelined) Batch(touched []graph.VertexID, written int, fetches []EdgeFetch, genTargets []graph.VertexID) {
	p.start()
	var s *pipeSlot
	select {
	case s = <-p.free:
	default:
		// Both slots in flight: the simulator is more than two row batches
		// behind. Block until it retires one — backpressure, not loss.
		p.stalls.Add(1)
		s = <-p.free
	}
	tb := s.touched[:0]
	tb = append(tb, touched...)
	s.touched = tb
	fb := s.fetches[:0]
	fb = append(fb, fetches...)
	s.fetches = fb
	gb := s.genT[:0]
	gb = append(gb, genTargets...)
	s.genT = gb
	s.written = written
	p.handoffs.Add(1)
	if p.depth != nil {
		p.depth.Set(int64(len(p.ops)))
	}
	p.ops <- pipeOp{kind: pipeOpBatch, slot: s}
}

// RoundOverhead queues the scheduler's end-of-round charge.
//
//jetlint:hotpath
func (p *pipelined) RoundOverhead() {
	p.start()
	p.ops <- pipeOp{kind: pipeOpRound}
}

// Spill queues an off-chip round-trip charge.
func (p *pipelined) Spill(n int) {
	p.start()
	p.ops <- pipeOp{kind: pipeOpSpill, n: n}
}

// StreamRead queues a Stream Reader scan charge.
func (p *pipelined) StreamRead(n int) {
	p.start()
	p.ops <- pipeOp{kind: pipeOpStream, n: n}
}

// Cycles joins the pipeline and returns the wrapped model's exact count.
func (p *pipelined) Cycles() uint64 {
	p.Flush()
	return p.inner.Cycles()
}

// Observe registers the handoff telemetry and forwards to the wrapped model
// when it exports series of its own.
func (p *pipelined) Observe(reg *obs.Registry) {
	p.Flush()
	reg.CounterFunc("jetstream_pipeline_handoffs_total", p.handoffs.Load)
	reg.CounterFunc("jetstream_pipeline_stalls_total", p.stalls.Load)
	reg.CounterFunc("jetstream_pipeline_flushes_total", p.flushes.Load)
	p.depth = reg.Gauge("jetstream_pipeline_depth")
	if m, ok := p.inner.(interface{ Observe(*obs.Registry) }); ok {
		m.Observe(reg)
	}
}

// Channels joins the pipeline and forwards the wrapped model's per-channel
// DRAM tallies.
func (p *pipelined) Channels() []mem.ChannelCounts {
	p.Flush()
	if c, ok := p.inner.(interface{ Channels() []mem.ChannelCounts }); ok {
		return c.Channels()
	}
	return nil
}
