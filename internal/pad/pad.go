// Package pad centralizes the cache-line geometry the hot-path data
// structures are laid out against. Sharded queues, per-worker stats blocks,
// and the inline adjacency records all want the same two guarantees:
//
//   - a record that is mutated by one goroutine never shares a cache line
//     with a record mutated by another (no false sharing), and
//   - a record that is read as a unit never straddles a line boundary
//     (one miss resolves the whole record).
//
// Both are enforced at compile time at each use site with the
// constant-underflow idiom:
//
//	const _ = uint(pad.LineSize - unsafe.Sizeof(T{})) // T is ≤ one line
//	const _ = uint(unsafe.Sizeof(T{}) - pad.LineSize) // …and exactly one line
//
// unsafe.Sizeof of a concrete type is an untyped constant, so an oversized
// struct makes the subtraction negative and the uint conversion a compile
// error — the assertion costs nothing at runtime and cannot be skipped.
package pad

// LineSize is the cache-line size the layout targets. 64 bytes is the line
// size of every x86-64 and almost every arm64 part the simulator runs on;
// a platform with 128-byte lines wastes half a line of padding but keeps
// every correctness property (padding is conservative in that direction).
const LineSize = 64

// Line is one cache line of dead bytes. Embed it (as a blank field) between
// a struct's shared-read prefix and its mutated-by-one-owner region, and
// again after that region, so any line that holds the hot fields holds
// nothing another core writes.
type Line [LineSize]byte
