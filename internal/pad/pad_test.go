package pad_test

import (
	"testing"
	"unsafe"

	"jetstream/internal/pad"
)

// The assertion idiom documented in the package comment must actually be a
// compile-time constant expression. These consts are the self-test: if
// unsafe.Sizeof stopped being constant-foldable, or Line drifted from
// LineSize, the package (and every use site) would stop compiling.
const (
	_ = uint(pad.LineSize - unsafe.Sizeof(pad.Line{}))
	_ = uint(unsafe.Sizeof(pad.Line{}) - pad.LineSize)
)

func TestLineGeometry(t *testing.T) {
	if got := unsafe.Sizeof(pad.Line{}); got != pad.LineSize {
		t.Fatalf("Line is %d bytes, want %d", got, pad.LineSize)
	}
	if pad.LineSize&(pad.LineSize-1) != 0 {
		t.Fatalf("LineSize %d is not a power of two", pad.LineSize)
	}
	// Alignment of the padded composites must divide LineSize, or an embedded
	// Line could itself start mid-line.
	if a := unsafe.Alignof(pad.Line{}); pad.LineSize%a != 0 {
		t.Fatalf("Line alignment %d does not divide LineSize", a)
	}
}
