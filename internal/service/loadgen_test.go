package service

import (
	"net/http/httptest"
	"testing"
)

// TestLoadgenBitwise is the headline concurrency check: 32 tenants × 4
// racing clients per tenant against one in-process server, every tenant's
// final state bitwise-identical to its single-threaded reference run. Run
// with -race this doubles as the data-race regression for the whole service
// layer.
func TestLoadgenBitwise(t *testing.T) {
	svc := New(Options{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	rep, err := RunLoadgen(LoadgenConfig{
		BaseURL:   srv.URL,
		Tenants:   32,
		Clients:   4,
		Batches:   6,
		BatchSize: 24,
		Vertices:  128,
		Edges:     512,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	if len(rep.Mismatched) != 0 {
		t.Fatalf("tenants diverged from reference: %v", rep.Mismatched)
	}
	if want := uint64(32 * 6); rep.BatchesTotal != want {
		t.Fatalf("batches_total = %d, want %d", rep.BatchesTotal, want)
	}
	stats := svc.Stats()
	if stats.BatchesTotal != rep.BatchesTotal {
		t.Fatalf("service counted %d batches, loadgen sent %d", stats.BatchesTotal, rep.BatchesTotal)
	}
	if stats.Tenants != 32 {
		t.Fatalf("service hosts %d tenants, want 32", stats.Tenants)
	}
	if err := svc.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
