package service

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jetstream"
	"jetstream/internal/stream"
)

// refTenant pairs a tenant declaration with a private single-threaded
// reference System and a generator, so tests can draw the next valid batch
// and know the exact state the server must reach.
type refTenant struct {
	req CreateRequest
	sys *jetstream.System
	gen *stream.Generator
}

func newRefTenant(t *testing.T, req CreateRequest, seed int64) *refTenant {
	t.Helper()
	alg, err := jetstream.NewAlgorithm(req.Algorithm)
	if err != nil {
		t.Fatalf("algorithm: %v", err)
	}
	g, err := req.Graph.Build()
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	// The reference strips the WAL: same computation, no durability.
	cfg := req.Config
	cfg.WALDir, cfg.WALSync, cfg.WALSyncInterval = "", "", 0
	sys, err := jetstream.New(g, alg, cfg.Options()...)
	if err != nil {
		t.Fatalf("reference system: %v", err)
	}
	sys.RunInitial()
	return &refTenant{
		req: req,
		sys: sys,
		gen: stream.NewGenerator(stream.Config{
			BatchSize:  16,
			InsertFrac: 1,
			Symmetric:  req.Graph.Symmetrize,
			Seed:       seed,
		}),
	}
}

// nextBatch draws the next insert-only batch, applies it to the reference,
// and returns the wire form for the server.
func (r *refTenant) nextBatch(t *testing.T) WireBatch {
	t.Helper()
	b := r.gen.Next(r.sys.Graph())
	if _, err := r.sys.ApplyBatch(b); err != nil {
		t.Fatalf("reference apply: %v", err)
	}
	wb := WireBatch{Inserts: make([]WireEdge, len(b.Inserts))}
	for i, e := range b.Inserts {
		wb.Inserts[i] = WireEdge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
	}
	return wb
}

func (r *refTenant) state() []float64 {
	s := r.sys.State()
	out := make([]float64, len(s))
	copy(out, s)
	return out
}

func mustBitwise(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vertices, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: vertex %d = %v (bits %x), want %v (bits %x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// httpJSON round-trips one request against the test server.
func httpJSON(t *testing.T, srv *httptest.Server, method, path string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode, resp.Header
}

func erRequest(name, algoName string, symmetrize bool) CreateRequest {
	spec := jetstream.AlgorithmSpec{Name: algoName}
	return CreateRequest{
		Name:      name,
		Graph:     GraphSpec{Gen: "er", Vertices: 128, Edges: 512, Seed: 11, Symmetrize: symmetrize},
		Algorithm: spec,
		Config:    jetstream.Config{},
	}
}

// TestTenantLifecycle walks the whole arc over HTTP: create, ingest, metrics,
// state, graceful shutdown (writing a checkpoint), recovery in a fresh
// Service, and continued ingest — with the state bitwise-identical to a
// single-threaded reference at every observation point.
func TestTenantLifecycle(t *testing.T) {
	dir := t.TempDir()
	svc := New(Options{DataDir: dir})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	req := erRequest("alpha", "sssp", false)
	ref := newRefTenant(t, req, 99)

	var info TenantInfo
	if code, _ := httpJSON(t, srv, "POST", "/v1/tenants", req, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if info.Started {
		t.Fatal("tenant reports started before any batch")
	}

	const k1 = 3
	for i := 0; i < k1; i++ {
		var br BatchResponse
		if code, _ := httpJSON(t, srv, "POST", "/v1/tenants/alpha/batch", ref.nextBatch(t), &br); code != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, code)
		}
		if br.Batches != uint64(i+1) {
			t.Fatalf("batch %d: server counts %d", i, br.Batches)
		}
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/tenants/alpha/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(blob), "jetstream") {
		t.Fatalf("tenant metrics: status %d, body %q", resp.StatusCode, blob)
	}

	var st StateResponse
	if code, _ := httpJSON(t, srv, "GET", "/v1/tenants/alpha/state", nil, &st); code != http.StatusOK {
		t.Fatalf("state: status %d", code)
	}
	got, err := DecodeState(st.State, st.CRC64)
	if err != nil {
		t.Fatalf("decode state: %v", err)
	}
	mustBitwise(t, got, ref.state(), "state after k1")

	if err := svc.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "alpha", shutdownCkptName)); err != nil {
		t.Fatalf("shutdown checkpoint: %v", err)
	}

	svc2 := New(Options{DataDir: dir})
	n, err := svc2.Recover()
	if err != nil || n != 1 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	state2, batches, err := svc2.State("alpha")
	if err != nil {
		t.Fatalf("state after recover: %v", err)
	}
	if batches != k1 {
		t.Fatalf("recovered batches = %d, want %d", batches, k1)
	}
	mustBitwise(t, state2, ref.state(), "state after recover")

	for i := 0; i < 2; i++ {
		if _, err := svc2.Ingest("alpha", ref.nextBatch(t).Batch()); err != nil {
			t.Fatalf("continued batch %d: %v", i, err)
		}
	}
	final, _, err := svc2.State("alpha")
	if err != nil {
		t.Fatalf("final state: %v", err)
	}
	mustBitwise(t, final, ref.state(), "state after continued ingest")
	if err := svc2.Shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// TestWALKillRestart simulates a crash: tenants journal through a WAL with
// per-batch sync, the first Service is abandoned without Shutdown, and a
// second Service over the same data directory must recover every tenant to
// its last acknowledged batch — including a declared-but-never-run tenant
// rebuilt from its manifest.
func TestWALKillRestart(t *testing.T) {
	dir := t.TempDir()
	svcA := New(Options{DataDir: dir})

	walCfg := jetstream.Config{WALDir: "wal", WALSync: "batch"}
	reqs := []CreateRequest{
		{Name: "w0", Graph: GraphSpec{Gen: "er", Vertices: 96, Edges: 384, Seed: 3}, Algorithm: jetstream.AlgorithmSpec{Name: "sssp"}, Config: walCfg},
		{Name: "w1", Graph: GraphSpec{Gen: "er", Vertices: 96, Edges: 384, Seed: 4, Symmetrize: true}, Algorithm: jetstream.AlgorithmSpec{Name: "cc"}, Config: walCfg},
		{Name: "w2", Graph: GraphSpec{Gen: "er", Vertices: 96, Edges: 384, Seed: 5}, Algorithm: jetstream.AlgorithmSpec{Name: "bfs"}, Config: walCfg},
	}
	refs := make(map[string]*refTenant)
	for i, req := range reqs {
		if _, err := svcA.Create(req); err != nil {
			t.Fatalf("create %s: %v", req.Name, err)
		}
		refs[req.Name] = newRefTenant(t, req, int64(100+i))
	}

	// w0 and w1 ingest; w2 stays dormant (no snapshot exists yet).
	const k1 = 3
	for _, name := range []string{"w0", "w1"} {
		for i := 0; i < k1; i++ {
			if _, err := svcA.Ingest(name, refs[name].nextBatch(t).Batch()); err != nil {
				t.Fatalf("%s batch %d: %v", name, i, err)
			}
		}
	}
	// Kill: svcA is abandoned here — no Shutdown, no Sync. Every acked batch
	// was synced by the per-batch WAL policy, so it must survive.

	svcB := New(Options{DataDir: dir})
	n, err := svcB.Recover()
	if err != nil || n != len(reqs) {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	for _, name := range []string{"w0", "w1"} {
		state, batches, serr := svcB.State(name)
		if serr != nil {
			t.Fatalf("%s state: %v", name, serr)
		}
		if batches != k1 {
			t.Fatalf("%s recovered %d batches, want %d", name, batches, k1)
		}
		mustBitwise(t, state, refs[name].state(), name+" after crash recovery")
	}
	// The dormant tenant rebuilds from its manifest at initial state.
	state, batches, err := svcB.State("w2")
	if err != nil {
		t.Fatalf("w2 state: %v", err)
	}
	if batches != 0 {
		t.Fatalf("w2 recovered %d batches, want 0", batches)
	}
	mustBitwise(t, state, refs["w2"].state(), "w2 after crash recovery")

	// All three continue ingesting on the recovered Service.
	for _, name := range []string{"w0", "w1", "w2"} {
		for i := 0; i < 2; i++ {
			if _, err := svcB.Ingest(name, refs[name].nextBatch(t).Batch()); err != nil {
				t.Fatalf("%s continued batch %d: %v", name, i, err)
			}
		}
		final, _, serr := svcB.State(name)
		if serr != nil {
			t.Fatalf("%s final state: %v", name, serr)
		}
		mustBitwise(t, final, refs[name].state(), name+" final")
	}
	if err := svcB.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestBackpressure drives the admission queue to saturation and checks the
// 429 + Retry-After contract, then that the tenant accepts work again once
// the queue drains.
func TestBackpressure(t *testing.T) {
	svc := New(Options{QueueDepth: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	req := erRequest("busy", "sssp", false)
	ref := newRefTenant(t, req, 7)
	if _, err := svc.Create(req); err != nil {
		t.Fatalf("create: %v", err)
	}

	// Occupy the single admission slot directly: equivalent to a batch
	// mid-apply, without racing a real one.
	tn, err := svc.get("busy")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	tn.sem <- struct{}{}

	batch := ref.nextBatch(t)
	code, hdr := httpJSON(t, srv, "POST", "/v1/tenants/busy/batch", batch, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := svc.Stats().Throttled; got != 1 {
		t.Fatalf("throttled counter = %d, want 1", got)
	}

	<-tn.sem
	if code, _ := httpJSON(t, srv, "POST", "/v1/tenants/busy/batch", batch, nil); code != http.StatusOK {
		t.Fatalf("drained ingest: status %d, want 200", code)
	}
	state, _, err := svc.State("busy")
	if err != nil {
		t.Fatalf("state: %v", err)
	}
	mustBitwise(t, state, ref.state(), "state after backpressure retry")
}

// edgeListRequest declares a tiny explicit graph so validity of individual
// updates is obvious: edges 0->1->2 over 4 vertices.
func edgeListRequest(name string, cfg jetstream.Config) CreateRequest {
	return CreateRequest{
		Name: name,
		Graph: GraphSpec{
			Vertices: 4,
			EdgeList: []WireEdge{{Src: 0, Dst: 1, Weight: 2}, {Src: 1, Dst: 2, Weight: 3}},
		},
		Algorithm: jetstream.AlgorithmSpec{Name: "sssp"},
		Config:    cfg,
	}
}

// TestMalformedBatch exercises the 400 path: Strict rejects the batch with
// its issue list and applies nothing; Repair applies the valid part and
// reports the drops.
func TestMalformedBatch(t *testing.T) {
	svc := New(Options{})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	for _, req := range []CreateRequest{
		edgeListRequest("strict", jetstream.Config{}),
		edgeListRequest("repair", jetstream.Config{Ingest: "repair"}),
	} {
		if code, _ := httpJSON(t, srv, "POST", "/v1/tenants", req, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", req.Name, code)
		}
	}

	// One valid insert (0->2) and one naming a vertex outside the graph.
	bad := WireBatch{Inserts: []WireEdge{
		{Src: 0, Dst: 2, Weight: 1},
		{Src: 99, Dst: 0, Weight: 1},
	}}

	resp, err := srv.Client().Post(srv.URL+"/v1/tenants/strict/batch", "application/json",
		bytes.NewReader(mustMarshal(t, bad)))
	if err != nil {
		t.Fatalf("strict post: %v", err)
	}
	var eresp ErrorResponse
	jerr := json.NewDecoder(resp.Body).Decode(&eresp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || jerr != nil {
		t.Fatalf("strict: status %d decode %v, want 400", resp.StatusCode, jerr)
	}
	if len(eresp.Issues) != 1 {
		t.Fatalf("strict: %d issues, want 1 (%q)", len(eresp.Issues), eresp.Error)
	}
	var info TenantInfo
	if code, _ := httpJSON(t, srv, "GET", "/v1/tenants/strict", nil, &info); code != http.StatusOK || info.Batches != 0 {
		t.Fatalf("strict after reject: status %d batches %d, want 200/0", code, info.Batches)
	}

	var br BatchResponse
	if code, _ := httpJSON(t, srv, "POST", "/v1/tenants/repair/batch", bad, &br); code != http.StatusOK {
		t.Fatalf("repair: status %d, want 200", code)
	}
	if br.Repaired != 1 || len(br.Issues) != 1 || br.Batches != 1 {
		t.Fatalf("repair: repaired=%d issues=%d batches=%d, want 1/1/1", br.Repaired, len(br.Issues), br.Batches)
	}

	// Malformed JSON body.
	resp, err = srv.Client().Post(srv.URL+"/v1/tenants/strict/batch", "application/json",
		strings.NewReader(`{"inserts": [{"src": "zero"}]}`))
	if err != nil {
		t.Fatalf("bad json post: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad json: status %d, want 400", resp.StatusCode)
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return blob
}

// TestCreateErrors covers the declarative rejection paths: bad names, bad
// algorithms, bad configs, escapes, duplicates, limits, and 404s.
func TestCreateErrors(t *testing.T) {
	svc := New(Options{MaxTenants: 1})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post := func(body string) int {
		resp, err := srv.Client().Post(srv.URL+"/v1/tenants", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad-name", `{"name":"a/b","graph":{"gen":"er","vertices":8,"edges":8},"algorithm":{"name":"sssp"}}`, 400},
		{"unknown-algorithm", `{"name":"t","graph":{"gen":"er","vertices":8,"edges":8},"algorithm":{"name":"dijkstra"}}`, 400},
		{"unknown-generator", `{"name":"t","graph":{"gen":"torus","vertices":8},"algorithm":{"name":"sssp"}}`, 400},
		{"bad-config", `{"name":"t","graph":{"gen":"er","vertices":8,"edges":8},"algorithm":{"name":"sssp"},"config":{"opt":"turbo"}}`, 400},
		{"wal-without-datadir", `{"name":"t","graph":{"gen":"er","vertices":8,"edges":8},"algorithm":{"name":"sssp"},"config":{"wal_dir":"wal"}}`, 400},
		{"unknown-body-field", `{"name":"t","graph":{"gen":"er","vertices":8,"edges":8},"algorithm":{"name":"sssp"},"surprise":1}`, 400},
		{"too-many-vertices", `{"name":"t","graph":{"gen":"er","vertices":99999999,"edges":8},"algorithm":{"name":"sssp"}}`, 400},
	}
	for _, c := range cases {
		if got := post(c.body); got != c.want {
			t.Errorf("%s: status %d, want %d", c.name, got, c.want)
		}
	}

	ok := `{"name":"only","graph":{"gen":"er","vertices":8,"edges":8},"algorithm":{"name":"sssp"}}`
	if got := post(ok); got != http.StatusCreated {
		t.Fatalf("valid create: status %d", got)
	}
	if got := post(ok); got != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", got)
	}
	second := `{"name":"second","graph":{"gen":"er","vertices":8,"edges":8},"algorithm":{"name":"sssp"}}`
	if got := post(second); got != http.StatusTooManyRequests {
		t.Errorf("tenant limit: status %d, want 429", got)
	}

	if code, _ := httpJSON(t, srv, "GET", "/v1/tenants/ghost/state", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown tenant: status %d, want 404", code)
	}

	// WAL escape attempts go through a DataDir-enabled service.
	dsvc := New(Options{DataDir: t.TempDir()})
	for _, walDir := range []string{"../out", "/abs"} {
		req := erRequest("esc", "sssp", false)
		req.Config.WALDir = walDir
		if _, err := dsvc.Create(req); err == nil {
			t.Errorf("wal_dir %q accepted, want rejection", walDir)
		}
	}

	// Delete frees the name and the tenant's durable directory.
	req := erRequest("gone", "sssp", false)
	if _, err := dsvc.Create(req); err != nil {
		t.Fatalf("create gone: %v", err)
	}
	if err := dsvc.Delete("gone"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, _, err := dsvc.State("gone"); err == nil {
		t.Fatal("deleted tenant still serves state")
	}
	if _, err := dsvc.Create(req); err != nil {
		t.Fatalf("recreate after delete: %v", err)
	}
}
