package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"jetstream"
	"jetstream/internal/stream"
)

// LoadgenConfig parameterizes a load-generation run against a live service.
type LoadgenConfig struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenants is the number of tenants to create (default 32).
	Tenants int
	// Clients is the number of concurrent clients per tenant sharing that
	// tenant's batch sequence (default 4).
	Clients int
	// Batches is the number of update batches per tenant (default 8).
	Batches int
	// BatchSize is the number of edge updates per batch (default 32).
	BatchSize int
	// Vertices and Edges size each tenant's initial graph (defaults 256,
	// 1024).
	Vertices, Edges int
	// Seed makes the whole run reproducible.
	Seed int64
	// TenantPrefix namespaces tenant names (default "loadgen-") so runs can
	// share a server.
	TenantPrefix string
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client
}

func (c LoadgenConfig) withDefaults() LoadgenConfig {
	if c.Tenants <= 0 {
		c.Tenants = 32
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Batches <= 0 {
		c.Batches = 8
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Vertices <= 0 {
		c.Vertices = 256
	}
	if c.Edges <= 0 {
		c.Edges = 1024
	}
	if c.TenantPrefix == "" {
		c.TenantPrefix = "loadgen-"
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// LoadgenReport summarizes a run. Mismatched is the list of tenants whose
// final server-side state was not bitwise-identical to the single-threaded
// reference — always empty on a correct service.
type LoadgenReport struct {
	Tenants       int      `json:"tenants"`
	Clients       int      `json:"clients"`
	BatchesTotal  uint64   `json:"batches_total"`
	WallSeconds   float64  `json:"wall_seconds"`
	BatchesPerSec float64  `json:"batches_per_sec"`
	Retries429    uint64   `json:"retries_429"`
	IngestP50Ns   uint64   `json:"ingest_p50_ns"`
	IngestP99Ns   uint64   `json:"ingest_p99_ns"`
	Throttled     uint64   `json:"throttled_total"`
	Mismatched    []string `json:"mismatched,omitempty"`
}

// loadgenAlgos is the per-tenant algorithm rotation. All four kernels are
// selective (monotonic min/max reductions), which is what makes the bitwise
// check sound: insert-only disjoint batches commute under a selective kernel,
// so any interleaving of racing clients must land on the reference state
// exactly — at any engine parallelism.
var loadgenAlgos = []jetstream.AlgorithmSpec{
	{Name: "sssp", Root: 0},
	{Name: "sswp", Root: 0},
	{Name: "bfs", Root: 0},
	{Name: "cc"},
}

// loadgenTenant is one tenant's prepared workload: its declaration, the
// pre-drawn batch sequence, and the reference final state from applying that
// sequence on a private single-threaded System.
type loadgenTenant struct {
	req      CreateRequest
	batches  []WireBatch
	refState []float64
}

// prepareTenant builds tenant i's declaration, draws its insert-only batch
// sequence against an evolving local reference, and records the reference
// final state. Insert-only matters: the generator draws each batch valid
// against the graph after all earlier batches, so inserts are pairwise
// disjoint across batches and the sequence commutes; deletions would not
// (a reordered delete could precede the insert it names).
func prepareTenant(cfg LoadgenConfig, i int) (loadgenTenant, error) {
	spec := loadgenAlgos[i%len(loadgenAlgos)]
	symmetric := spec.Name == "cc"
	req := CreateRequest{
		Name: fmt.Sprintf("%s%03d", cfg.TenantPrefix, i),
		Graph: GraphSpec{
			Gen:        "er",
			Vertices:   cfg.Vertices,
			Edges:      cfg.Edges,
			Seed:       cfg.Seed + int64(i),
			Symmetrize: symmetric,
		},
		Algorithm: spec,
		// Zero Config: serving defaults (timing off, strict ingest, default
		// engine parallelism).
		Config: jetstream.Config{},
	}

	alg, err := jetstream.NewAlgorithm(req.Algorithm)
	if err != nil {
		return loadgenTenant{}, err
	}
	g, err := req.Graph.Build()
	if err != nil {
		return loadgenTenant{}, err
	}
	ref, err := jetstream.New(g, alg, req.Config.Options()...)
	if err != nil {
		return loadgenTenant{}, err
	}
	ref.RunInitial()

	gen := stream.NewGenerator(stream.Config{
		BatchSize:  cfg.BatchSize,
		InsertFrac: 1,
		Symmetric:  symmetric,
		Seed:       cfg.Seed ^ int64(i)<<17,
	})
	t := loadgenTenant{req: req, batches: make([]WireBatch, 0, cfg.Batches)}
	for b := 0; b < cfg.Batches; b++ {
		batch := gen.Next(ref.Graph())
		if _, err := ref.ApplyBatch(batch); err != nil {
			return loadgenTenant{}, fmt.Errorf("reference %s batch %d: %w", req.Name, b, err)
		}
		wb := WireBatch{Inserts: make([]WireEdge, len(batch.Inserts))}
		for j, e := range batch.Inserts {
			wb.Inserts[j] = WireEdge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
		}
		t.batches = append(t.batches, wb)
	}
	t.refState = ref.State()
	return t, nil
}

// lgClient is a minimal JSON client for the service API.
type lgClient struct {
	base string
	hc   *http.Client
}

// do posts (or gets, body nil) and decodes into out. It returns the HTTP
// status so callers can branch on backpressure.
func (c *lgClient) do(method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	// A response-body close error carries no durability meaning; discard it
	// visibly.
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 400 {
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, fmt.Errorf("%s %s: %d: %s", method, path, resp.StatusCode, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// RunLoadgen drives a live service over HTTP: it creates cfg.Tenants tenants,
// hammers each with cfg.Clients concurrent clients racing through the
// tenant's pre-drawn batch sequence (retrying on 429 backpressure), then
// fetches every tenant's final state and verifies it is bitwise-identical to
// a single-threaded reference run of the same sequence.
func RunLoadgen(cfg LoadgenConfig) (LoadgenReport, error) {
	cfg = cfg.withDefaults()
	client := &lgClient{base: cfg.BaseURL, hc: cfg.Client}

	tenants := make([]loadgenTenant, cfg.Tenants)
	for i := range tenants {
		t, err := prepareTenant(cfg, i)
		if err != nil {
			return LoadgenReport{}, err
		}
		tenants[i] = t
		if _, err := client.do("POST", "/v1/tenants", t.req, nil); err != nil {
			return LoadgenReport{}, fmt.Errorf("create %s: %w", t.req.Name, err)
		}
	}

	var retries atomic.Uint64
	var firstErr atomic.Value // error
	start := time.Now()
	var wg sync.WaitGroup
	for i := range tenants {
		t := &tenants[i]
		var next atomic.Int64
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					idx := next.Add(1) - 1
					if idx >= int64(len(t.batches)) {
						return
					}
					// Each batch is sent until accepted; 429 means the
					// tenant's admission queue is full — back off and retry.
					for attempt := 0; ; attempt++ {
						code, err := client.do("POST", "/v1/tenants/"+t.req.Name+"/batch", t.batches[idx], nil)
						if err == nil {
							break
						}
						if code != http.StatusTooManyRequests {
							firstErr.CompareAndSwap(nil, error(fmt.Errorf("%s batch %d: %w", t.req.Name, idx, err)))
							return
						}
						retries.Add(1)
						backoff := time.Millisecond << min(attempt, 6)
						time.Sleep(backoff)
					}
				}
			}()
		}
	}
	wg.Wait()
	wall := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return LoadgenReport{}, err
	}

	report := LoadgenReport{
		Tenants:      cfg.Tenants,
		Clients:      cfg.Clients,
		BatchesTotal: uint64(cfg.Tenants * cfg.Batches),
		WallSeconds:  wall.Seconds(),
		Retries429:   retries.Load(),
	}
	if wall > 0 {
		report.BatchesPerSec = float64(report.BatchesTotal) / wall.Seconds()
	}

	for i := range tenants {
		t := &tenants[i]
		var st StateResponse
		if _, err := client.do("GET", "/v1/tenants/"+t.req.Name+"/state", nil, &st); err != nil {
			return report, fmt.Errorf("state %s: %w", t.req.Name, err)
		}
		got, err := DecodeState(st.State, st.CRC64)
		if err != nil {
			return report, fmt.Errorf("state %s: %w", t.req.Name, err)
		}
		if !bitwiseEqual(got, t.refState) {
			report.Mismatched = append(report.Mismatched, t.req.Name)
		}
	}

	var stats StatsResponse
	if _, err := client.do("GET", "/v1/stats", nil, &stats); err == nil {
		report.IngestP50Ns = stats.IngestP50Ns
		report.IngestP99Ns = stats.IngestP99Ns
		report.Throttled = stats.Throttled
	}
	return report, nil
}

// bitwiseEqual compares two state vectors bit-for-bit (NaN-safe, ±Inf-exact;
// plain == would declare NaN != NaN and miss signed-zero differences).
func bitwiseEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
