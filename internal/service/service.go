package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"jetstream"
	"jetstream/internal/obs"
	"jetstream/internal/wal"
)

// Typed service errors; the HTTP layer maps them to status codes.
var (
	// ErrNotFound: the named tenant does not exist (404).
	ErrNotFound = errors.New("service: tenant not found")
	// ErrExists: create collided with a live tenant of the same name (409).
	ErrExists = errors.New("service: tenant already exists")
	// ErrBusy: the tenant's admission queue is full — back off and retry
	// (429 + Retry-After).
	ErrBusy = errors.New("service: tenant ingest queue full")
	// ErrTenantLimit: the registry is at MaxTenants (429).
	ErrTenantLimit = errors.New("service: tenant limit reached")
	// ErrClosed: the service is shutting down (503).
	ErrClosed = errors.New("service: shutting down")
	// ErrInvalid wraps every malformed declaration or batch (400).
	ErrInvalid = errors.New("service: invalid request")
)

// nameRE bounds tenant names to path- and metric-safe tokens.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// Options configures a Service.
type Options struct {
	// DataDir is the root for per-tenant durable state (manifests, WALs,
	// shutdown checkpoints). Empty disables durability: tenants are
	// memory-only and cannot use Config.WALDir.
	DataDir string
	// MaxTenants caps the registry (default 1024).
	MaxTenants int
	// QueueDepth bounds each tenant's admission queue: at most QueueDepth
	// batches may be queued or applying per tenant before ingest returns
	// ErrBusy (default 8).
	QueueDepth int
	// MaxVertices caps a declared graph's vertex count (default 1<<22), so a
	// single create request cannot exhaust the host.
	MaxVertices int
}

func (o Options) withDefaults() Options {
	if o.MaxTenants <= 0 {
		o.MaxTenants = 1024
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.MaxVertices <= 0 {
		o.MaxVertices = 1 << 22
	}
	return o
}

// Tenant is one hosted standing query: a System plus the locking and
// admission state that lets many tenants share a process safely.
type Tenant struct {
	name string
	dir  string // per-tenant durable directory; "" without DataDir
	req  CreateRequest

	// sem is the bounded admission queue: a token is held from ingress
	// until the batch is applied, so at most cap(sem) batches are in flight
	// or waiting per tenant and the excess is throttled, not queued.
	sem chan struct{}

	// mu serializes every System operation for this tenant. Batches are
	// therefore ordered per tenant while distinct tenants proceed in
	// parallel; the System's own ErrConcurrentApply guard stays a tripwire,
	// never the working lock.
	mu      sync.Mutex
	sys     *jetstream.System
	started bool // RunInitial has run (deferred to first use)
	closed  bool
}

// Service is the tenant registry.
type Service struct {
	opts Options

	mu      sync.RWMutex
	tenants map[string]*Tenant
	closed  bool

	// Aggregate service metrics, exported at /metrics alongside the
	// per-tenant registries.
	reg        *obs.Registry
	tenantsG   *obs.Gauge
	batchesC   *obs.Counter
	throttledC *obs.Counter
	rejectedC  *obs.Counter
	recoveredC *obs.Counter
	latency    *obs.Histogram
}

// New builds an empty Service. Call Recover to resurrect tenants from a
// previous process's DataDir.
func New(opts Options) *Service {
	s := &Service{
		opts:    opts.withDefaults(),
		tenants: make(map[string]*Tenant),
		reg:     obs.NewRegistry(),
	}
	s.tenantsG = s.reg.Gauge("jetstreamd_tenants")
	s.batchesC = s.reg.Counter("jetstreamd_batches_total")
	s.throttledC = s.reg.Counter("jetstreamd_throttled_total")
	s.rejectedC = s.reg.Counter("jetstreamd_rejected_batches_total")
	s.recoveredC = s.reg.Counter("jetstreamd_recovered_tenants_total")
	s.latency = s.reg.Histogram("jetstreamd_ingest_latency_ns")
	return s
}

// Registry exposes the aggregate metrics registry (for /metrics).
func (s *Service) Registry() *obs.Registry { return s.reg }

// manifestName is the per-tenant declaration file inside DataDir/<name>.
const manifestName = "manifest.json"

// shutdownCkptName is the checkpoint a graceful shutdown writes for tenants
// without a WAL (WAL tenants already own a snapshot+log pair).
const shutdownCkptName = "shutdown.ckpt"

// tenantWALDir resolves a tenant-declared WAL directory under the tenant's
// data directory. The declared path must be relative and stay inside it.
func tenantWALDir(dir, declared string) (string, error) {
	if filepath.IsAbs(declared) {
		return "", fmt.Errorf("%w: wal_dir must be relative to the tenant data directory", ErrInvalid)
	}
	clean := filepath.Clean(declared)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("%w: wal_dir escapes the tenant data directory", ErrInvalid)
	}
	return filepath.Join(dir, clean), nil
}

// validate checks a create request without building anything.
func (s *Service) validate(req CreateRequest) error {
	if !nameRE.MatchString(req.Name) {
		return fmt.Errorf("%w: tenant name %q (want %s)", ErrInvalid, req.Name, nameRE)
	}
	if req.Graph.Vertices > s.opts.MaxVertices {
		return fmt.Errorf("%w: %d vertices exceeds the limit %d", ErrInvalid, req.Graph.Vertices, s.opts.MaxVertices)
	}
	if err := req.Config.Validate(); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	if req.Config.WALDir != "" && s.opts.DataDir == "" {
		return fmt.Errorf("%w: wal_dir requires the service to run with a data directory", ErrInvalid)
	}
	if _, err := jetstream.NewAlgorithm(req.Algorithm); err != nil {
		return fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	return nil
}

// buildSystem constructs the tenant's System from its declaration, resolving
// the WAL directory under dir ("" for memory-only tenants).
func buildSystem(req CreateRequest, dir string) (*jetstream.System, error) {
	alg, err := jetstream.NewAlgorithm(req.Algorithm)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	g, err := req.Graph.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	cfg := req.Config
	if cfg.WALDir != "" {
		resolved, werr := tenantWALDir(dir, cfg.WALDir)
		if werr != nil {
			return nil, werr
		}
		cfg.WALDir = resolved
	}
	sys, err := jetstream.New(g, alg, cfg.Options()...)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalid, err)
	}
	return sys, nil
}

// Create declares a new tenant. The System is constructed immediately (so a
// bad declaration fails the request) but stays dormant — no initial
// evaluation, no O(V) engine state — until its first batch or state read.
func (s *Service) Create(req CreateRequest) (*Tenant, error) {
	if err := s.validate(req); err != nil {
		return nil, err
	}

	// Reserve the name under the registry lock, then build outside it so a
	// large tenant construction cannot stall unrelated tenants.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if _, ok := s.tenants[req.Name]; ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, req.Name)
	}
	if len(s.tenants) >= s.opts.MaxTenants {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w (%d)", ErrTenantLimit, s.opts.MaxTenants)
	}
	t := &Tenant{
		name: req.Name,
		req:  req,
		sem:  make(chan struct{}, s.opts.QueueDepth),
	}
	if s.opts.DataDir != "" {
		t.dir = filepath.Join(s.opts.DataDir, req.Name)
	}
	s.tenants[req.Name] = t
	s.tenantsG.Set(int64(len(s.tenants)))
	s.mu.Unlock()

	undo := func() {
		s.mu.Lock()
		delete(s.tenants, req.Name)
		s.tenantsG.Set(int64(len(s.tenants)))
		s.mu.Unlock()
	}
	if t.dir != "" {
		if err := s.writeManifest(t); err != nil {
			undo()
			return nil, err
		}
	}
	sys, err := buildSystem(req, t.dir)
	if err != nil {
		if t.dir != "" {
			_ = os.RemoveAll(t.dir)
		}
		undo()
		return nil, err
	}
	t.sys = sys
	return t, nil
}

// writeManifest persists the tenant declaration atomically.
func (s *Service) writeManifest(t *Tenant) error {
	if err := os.MkdirAll(t.dir, 0o755); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	blob, err := json.MarshalIndent(t.req, "", "  ")
	if err != nil {
		return fmt.Errorf("service: manifest: %w", err)
	}
	err = wal.WriteFileAtomic(nil, filepath.Join(t.dir, manifestName), func(w io.Writer) error {
		_, werr := w.Write(blob)
		return werr
	})
	if err != nil {
		return fmt.Errorf("service: manifest: %w", err)
	}
	return nil
}

// get returns the live tenant or ErrNotFound.
func (s *Service) get(name string) (*Tenant, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	t, ok := s.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return t, nil
}

// Names lists live tenants in sorted order.
func (s *Service) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// startLocked runs the deferred initial evaluation. Caller holds t.mu.
func (t *Tenant) startLocked() {
	if !t.started {
		t.sys.RunInitial()
		t.started = true
	}
}

// Ingest applies one batch to the named tenant. Admission is bounded: when
// QueueDepth batches are already queued or applying for this tenant, it
// fails fast with ErrBusy instead of queueing unboundedly — the caller's
// backpressure signal. Malformed batches surface the System's own
// *jetstream.BatchError (Strict) or repair report.
func (s *Service) Ingest(name string, b jetstream.Batch) (jetstream.Result, error) {
	t, err := s.get(name)
	if err != nil {
		return jetstream.Result{}, err
	}
	select {
	case t.sem <- struct{}{}:
	default:
		s.throttledC.Inc()
		return jetstream.Result{}, fmt.Errorf("%w: %q has %d batches in flight", ErrBusy, name, cap(t.sem))
	}
	defer func() { <-t.sem }()

	start := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return jetstream.Result{}, ErrClosed
	}
	t.startLocked()
	res, err := t.sys.ApplyBatch(b)
	if err != nil {
		s.rejectedC.Inc()
		return jetstream.Result{}, err
	}
	s.batchesC.Inc()
	s.latency.Observe(uint64(time.Since(start).Nanoseconds()))
	return res, nil
}

// State returns the tenant's converged per-vertex state (running the initial
// evaluation first if the tenant is still dormant) and its batch count.
func (s *Service) State(name string) ([]float64, uint64, error) {
	t, err := s.get(name)
	if err != nil {
		return nil, 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, 0, ErrClosed
	}
	t.startLocked()
	return t.sys.State(), t.sys.Batches(), nil
}

// Info describes the tenant.
func (s *Service) Info(name string) (TenantInfo, error) {
	t, err := s.get(name)
	if err != nil {
		return TenantInfo{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g := t.sys.Graph()
	return TenantInfo{
		Name:      t.name,
		Algorithm: t.req.Algorithm,
		Config:    t.req.Config,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		Batches:   t.sys.Batches(),
		Started:   t.started,
		WALSize:   t.sys.WALSize(),
	}, nil
}

// Metrics returns the tenant's own metrics registry handler source; the HTTP
// layer mounts it at /v1/tenants/{name}/metrics.
func (s *Service) tenant(name string) (*Tenant, error) { return s.get(name) }

// Delete closes the tenant, removes it from the registry, and deletes its
// durable directory. Deleting is final: the WAL and manifest go with it.
func (s *Service) Delete(name string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	t, ok := s.tenants[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.tenants, name)
	s.tenantsG.Set(int64(len(s.tenants)))
	s.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	if err := t.sys.Close(); err != nil {
		return fmt.Errorf("service: delete %q: %w", name, err)
	}
	if t.dir != "" {
		if err := os.RemoveAll(t.dir); err != nil {
			return fmt.Errorf("service: delete %q: %w", name, err)
		}
	}
	return nil
}

// Shutdown drains and closes every tenant gracefully: new requests are
// refused, then each tenant is checkpointed-or-synced — WAL tenants fsync
// their log (their snapshot+log pair is already durable); non-WAL tenants
// with a data directory write a shutdown checkpoint so recovery restores
// their exact state; memory-only tenants just close. The first error is
// returned but every tenant is still processed.
func (s *Service) Shutdown() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	tenants := make([]*Tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		tenants = append(tenants, t)
	}
	s.mu.Unlock()

	var first error
	for _, t := range tenants {
		t.mu.Lock()
		t.closed = true
		err := s.persistLocked(t)
		if cerr := t.sys.Close(); err == nil {
			err = cerr
		}
		t.mu.Unlock()
		if err != nil && first == nil {
			first = fmt.Errorf("service: shutdown %q: %w", t.name, err)
		}
	}
	return first
}

// persistLocked makes a tenant's state durable at shutdown. Caller holds
// t.mu.
func (s *Service) persistLocked(t *Tenant) error {
	switch {
	case t.req.Config.WALDir != "":
		// Journaled per batch; just make sure the tail is on disk.
		return t.sys.Sync()
	case t.dir != "" && t.started:
		return wal.WriteFileAtomic(nil, filepath.Join(t.dir, shutdownCkptName), t.sys.Checkpoint)
	default:
		return nil
	}
}

// Recover scans DataDir for tenant manifests and resurrects each: WAL-backed
// tenants through RecoverFromDir (snapshot + durable log tail), checkpointed
// tenants through Restore, and declared-but-never-run tenants by rebuilding
// from the manifest. Returns how many tenants were brought back. Call before
// serving.
func (s *Service) Recover() (int, error) {
	if s.opts.DataDir == "" {
		return 0, nil
	}
	entries, err := os.ReadDir(s.opts.DataDir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("service: recover: %w", err)
	}
	n := 0
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		if err := s.recoverTenant(ent.Name()); err != nil {
			return n, err
		}
		n++
		s.recoveredC.Inc()
	}
	return n, nil
}

// recoverTenant resurrects one tenant directory.
func (s *Service) recoverTenant(name string) error {
	dir := filepath.Join(s.opts.DataDir, name)
	blob, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("service: recover %q: %w", name, err)
	}
	var req CreateRequest
	if err := json.Unmarshal(blob, &req); err != nil {
		return fmt.Errorf("service: recover %q: manifest: %w", name, err)
	}
	if req.Name != name {
		return fmt.Errorf("service: recover %q: manifest names %q", name, req.Name)
	}

	t := &Tenant{name: name, dir: dir, req: req, sem: make(chan struct{}, s.opts.QueueDepth)}
	switch {
	case req.Config.WALDir != "":
		walDir, werr := tenantWALDir(dir, req.Config.WALDir)
		if werr != nil {
			return fmt.Errorf("service: recover %q: %w", name, werr)
		}
		if _, serr := os.Stat(filepath.Join(walDir, jetstream.SnapshotName)); serr == nil {
			pol, perr := jetstream.ParseWALSyncPolicy(req.Config.WALSync)
			if perr != nil {
				return fmt.Errorf("service: recover %q: %w", name, perr)
			}
			sys, rerr := jetstream.RecoverFromDir(walDir, jetstream.WithWALOptions(walDir, jetstream.WALOptions{
				Sync: pol, Interval: req.Config.WALSyncInterval,
			}))
			if rerr != nil {
				return fmt.Errorf("service: recover %q: %w", name, rerr)
			}
			t.sys, t.started = sys, true
		} else {
			// Declared with a WAL but never journaled a batch (the snapshot
			// lands with the first one): rebuild from the manifest. A stale
			// empty log file would make the fresh attach refuse, so clear it.
			_ = os.Remove(filepath.Join(walDir, wal.LogName))
			sys, berr := buildSystem(req, dir)
			if berr != nil {
				return fmt.Errorf("service: recover %q: %w", name, berr)
			}
			t.sys = sys
		}
	default:
		if ckpt, oerr := os.Open(filepath.Join(dir, shutdownCkptName)); oerr == nil {
			sys, rerr := jetstream.Restore(ckpt)
			cerr := ckpt.Close()
			if rerr != nil {
				return fmt.Errorf("service: recover %q: %w", name, rerr)
			}
			if cerr != nil {
				return fmt.Errorf("service: recover %q: %w", name, cerr)
			}
			t.sys, t.started = sys, true
		} else {
			sys, berr := buildSystem(req, dir)
			if berr != nil {
				return fmt.Errorf("service: recover %q: %w", name, berr)
			}
			t.sys = sys
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.tenants[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	s.tenants[name] = t
	s.tenantsG.Set(int64(len(s.tenants)))
	return nil
}

// Stats snapshots the aggregate service counters.
func (s *Service) Stats() StatsResponse {
	s.mu.RLock()
	tenants := len(s.tenants)
	s.mu.RUnlock()
	lat := s.latency.Snapshot()
	return StatsResponse{
		Tenants:        tenants,
		BatchesTotal:   s.batchesC.Load(),
		Throttled:      s.throttledC.Load(),
		RejectedTotal:  s.rejectedC.Load(),
		RecoveredTotal: s.recoveredC.Load(),
		IngestP50Ns:    lat.Quantile(0.50),
		IngestP99Ns:    lat.Quantile(0.99),
	}
}
