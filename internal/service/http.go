package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"jetstream"
)

// Handler builds the service's HTTP surface:
//
//	POST   /v1/tenants                 create a tenant (CreateRequest body)
//	GET    /v1/tenants                 list tenant names
//	GET    /v1/tenants/{name}          describe one tenant (TenantInfo)
//	DELETE /v1/tenants/{name}          delete a tenant and its durable state
//	POST   /v1/tenants/{name}/batch    apply one batch (WireBatch body)
//	GET    /v1/tenants/{name}/state    converged state (StateResponse)
//	GET    /v1/tenants/{name}/metrics  the tenant's own metrics registry
//	GET    /v1/stats                   aggregate StatsResponse
//	GET    /metrics                    aggregate service metrics
//	GET    /healthz                    liveness probe
//
// Every non-2xx response is a JSON ErrorResponse. A full admission queue
// answers 429 with a Retry-After hint so well-behaved clients back off.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", s.handleCreate)
	mux.HandleFunc("GET /v1/tenants", s.handleList)
	mux.HandleFunc("GET /v1/tenants/{name}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/tenants/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/tenants/{name}/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/tenants/{name}/state", s.handleState)
	mux.HandleFunc("GET /v1/tenants/{name}/metrics", s.handleTenantMetrics)
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps service and ingest errors onto HTTP statuses. Batch
// validation failures carry their per-update issue list so the client can
// see exactly which updates were invalid.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	var resp ErrorResponse
	resp.Error = err.Error()
	var be *jetstream.BatchError
	switch {
	case errors.As(err, &be):
		code = http.StatusBadRequest
		resp.Issues = be.Issues
	case errors.Is(err, ErrInvalid):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrExists):
		code = http.StatusConflict
	case errors.Is(err, ErrBusy), errors.Is(err, ErrTenantLimit):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// decodeBody strictly decodes a JSON request body into v.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: body: %w", ErrInvalid, err)
	}
	return nil
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if _, err := s.Create(req); err != nil {
		writeError(w, err)
		return
	}
	info, err := s.Info(req.Name)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"tenants": s.Names()})
}

func (s *Service) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := s.Info(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := s.Delete(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var wb WireBatch
	if err := decodeBody(r, &wb); err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")
	res, err := s.Ingest(name, wb.Batch())
	if err != nil {
		writeError(w, err)
		return
	}
	t, err := s.get(name)
	if err != nil {
		writeError(w, err)
		return
	}
	t.mu.Lock()
	batches := t.sys.Batches()
	t.mu.Unlock()
	writeJSON(w, http.StatusOK, BatchResponse{
		Batches:  batches,
		Cycles:   res.Cycles,
		Events:   res.Stats.EventsProcessed,
		Repaired: res.Repaired,
		Expired:  res.Expired,
		Issues:   res.Issues,
	})
}

func (s *Service) handleState(w http.ResponseWriter, r *http.Request) {
	state, batches, err := s.State(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	b64, crc := EncodeState(state)
	writeJSON(w, http.StatusOK, StateResponse{
		Vertices: len(state),
		Batches:  batches,
		State:    b64,
		CRC64:    crc,
	})
}

func (s *Service) handleTenantMetrics(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r.PathValue("name"))
	if err != nil {
		writeError(w, err)
		return
	}
	t.mu.Lock()
	h := t.sys.MetricsHandler()
	t.mu.Unlock()
	h.ServeHTTP(w, r)
}
