// Package service hosts many independent jetstream Systems — tenants —
// behind one HTTP surface: a registry with per-tenant locking (batches are
// serialized per tenant, concurrent across tenants), bounded admission with
// backpressure, per-tenant and aggregate metrics, durable manifests with
// startup recovery, and a graceful shutdown that checkpoints-or-syncs every
// tenant. Everything a tenant is — graph, algorithm, configuration — arrives
// as data (jetstream.Config, jetstream.AlgorithmSpec), never as code.
package service

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"math"

	"jetstream"
)

// WireEdge is one directed weighted edge on the wire.
type WireEdge struct {
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float64 `json:"weight,omitempty"`
}

// WireBatch is one streaming update batch on the wire.
type WireBatch struct {
	Inserts []WireEdge `json:"inserts,omitempty"`
	Deletes []WireEdge `json:"deletes,omitempty"`
}

// Batch lowers the wire form to the engine's batch type. A delete with
// weight 0 is legal: ApplyBatch normalizes delete weights to the stored edge
// weight during sanitization.
func (b WireBatch) Batch() jetstream.Batch {
	out := jetstream.Batch{}
	if len(b.Inserts) > 0 {
		out.Inserts = make([]jetstream.Edge, len(b.Inserts))
		for i, e := range b.Inserts {
			out.Inserts[i] = jetstream.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
		}
	}
	if len(b.Deletes) > 0 {
		out.Deletes = make([]jetstream.Edge, len(b.Deletes))
		for i, e := range b.Deletes {
			out.Deletes[i] = jetstream.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
		}
	}
	return out
}

// GraphSpec declares a tenant's initial graph: either a generator by name
// ("rmat", "webcrawl", "grid", "er") with its parameters, or an explicit
// edge list (Gen empty). Generators are deterministic in Seed, so a spec in
// a manifest rebuilds the identical graph at recovery.
type GraphSpec struct {
	// Gen names the generator; empty means EdgeList is the graph.
	Gen string `json:"gen,omitempty"`
	// Vertices is the vertex count (generators and edge lists alike).
	Vertices int `json:"vertices,omitempty"`
	// Edges is the generated edge count (generators only).
	Edges int `json:"edges,omitempty"`
	// MaxWeight bounds generated weights; 0 selects 64.
	MaxWeight float64 `json:"max_weight,omitempty"`
	// Seed drives the generator.
	Seed int64 `json:"seed,omitempty"`
	// EdgeList is the explicit graph when Gen is empty.
	EdgeList []WireEdge `json:"edge_list,omitempty"`
	// Symmetrize mirrors every edge after construction (required by cc/wcc).
	Symmetrize bool `json:"symmetrize,omitempty"`
}

// Build materializes the declared graph.
func (gs GraphSpec) Build() (*jetstream.Graph, error) {
	if gs.Vertices <= 0 {
		return nil, fmt.Errorf("graph: vertices must be positive, got %d", gs.Vertices)
	}
	maxW := gs.MaxWeight
	if maxW <= 0 {
		maxW = 64
	}
	var g *jetstream.Graph
	switch gs.Gen {
	case "":
		edges := make([]jetstream.Edge, len(gs.EdgeList))
		for i, e := range gs.EdgeList {
			edges[i] = jetstream.Edge{Src: e.Src, Dst: e.Dst, Weight: e.Weight}
		}
		built, err := jetstream.BuildGraph(gs.Vertices, edges)
		if err != nil {
			return nil, fmt.Errorf("graph: %w", err)
		}
		g = built
	case "rmat":
		g = jetstream.RMAT(jetstream.RMATConfig{
			Vertices: gs.Vertices, Edges: gs.Edges, MaxWeight: maxW, Seed: gs.Seed,
		})
	case "webcrawl":
		avg := 4.0
		if gs.Edges > 0 {
			avg = float64(gs.Edges) / float64(gs.Vertices)
		}
		g = jetstream.WebCrawl(jetstream.WebCrawlConfig{
			Vertices: gs.Vertices, AvgDegree: avg, Seed: gs.Seed,
		})
	case "grid":
		side := 1
		for side*side < gs.Vertices {
			side++
		}
		g = jetstream.Grid(jetstream.GridConfig{Rows: side, Cols: side, Diagonal: 0.15, Seed: gs.Seed})
	case "er":
		g = jetstream.ErdosRenyi(gs.Vertices, gs.Edges, maxW, gs.Seed)
	default:
		return nil, fmt.Errorf("graph: unknown generator %q (want rmat, webcrawl, grid, er, or an edge_list)", gs.Gen)
	}
	if gs.Symmetrize {
		g = jetstream.Symmetrize(g)
	}
	return g, nil
}

// CreateRequest is the create-tenant body: a name plus the three data
// declarations that fully determine a System. It doubles as the on-disk
// manifest, so recovery rebuilds tenants from exactly what was declared.
type CreateRequest struct {
	Name      string                  `json:"name"`
	Graph     GraphSpec               `json:"graph"`
	Algorithm jetstream.AlgorithmSpec `json:"algorithm"`
	Config    jetstream.Config        `json:"config"`
}

// TenantInfo is the wire description of a live tenant.
type TenantInfo struct {
	Name      string                  `json:"name"`
	Algorithm jetstream.AlgorithmSpec `json:"algorithm"`
	Config    jetstream.Config        `json:"config"`
	Vertices  int                     `json:"vertices"`
	Edges     int                     `json:"edges"`
	Batches   uint64                  `json:"batches"`
	Started   bool                    `json:"started"`
	WALSize   int64                   `json:"wal_size,omitempty"`
}

// BatchResponse reports one applied batch.
type BatchResponse struct {
	Batches  uint64                 `json:"batches"`
	Cycles   uint64                 `json:"cycles"`
	Events   uint64                 `json:"events"`
	Repaired uint64                 `json:"repaired,omitempty"`
	Expired  uint64                 `json:"expired,omitempty"`
	Issues   []jetstream.BatchIssue `json:"issues,omitempty"`
}

// StateResponse carries a tenant's converged per-vertex state. JSON numbers
// cannot encode ±Inf (the identity of the distance kernels), so the state
// travels as base64-encoded little-endian IEEE-754 bits with a CRC64-ECMA
// checksum (hex) for end-to-end integrity and cheap bitwise comparison.
type StateResponse struct {
	Vertices int    `json:"vertices"`
	Batches  uint64 `json:"batches"`
	State    string `json:"state_b64"`
	CRC64    string `json:"state_crc64"`
}

var stateCRC = crc64.MakeTable(crc64.ECMA)

// EncodeState packs per-vertex state into the wire form.
func EncodeState(state []float64) (b64, crcHex string) {
	buf := make([]byte, 8*len(state))
	for i, v := range state {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return base64.StdEncoding.EncodeToString(buf),
		fmt.Sprintf("%016x", crc64.Checksum(buf, stateCRC))
}

// DecodeState unpacks the wire form, verifying the checksum.
func DecodeState(b64, crcHex string) ([]float64, error) {
	buf, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, fmt.Errorf("state: %w", err)
	}
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("state: %d bytes is not a float64 array", len(buf))
	}
	if got := fmt.Sprintf("%016x", crc64.Checksum(buf, stateCRC)); got != crcHex {
		return nil, fmt.Errorf("state: checksum mismatch (got %s, declared %s)", got, crcHex)
	}
	state := make([]float64, len(buf)/8)
	for i := range state {
		state[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return state, nil
}

// StatsResponse is the service-level aggregate snapshot.
type StatsResponse struct {
	Tenants        int    `json:"tenants"`
	BatchesTotal   uint64 `json:"batches_total"`
	Throttled      uint64 `json:"throttled_total"`
	RejectedTotal  uint64 `json:"rejected_batches_total"`
	RecoveredTotal uint64 `json:"recovered_tenants_total"`
	IngestP50Ns    uint64 `json:"ingest_p50_ns"`
	IngestP99Ns    uint64 `json:"ingest_p99_ns"`
}

// ErrorResponse is the JSON error body every non-2xx response carries.
type ErrorResponse struct {
	Error  string                 `json:"error"`
	Issues []jetstream.BatchIssue `json:"issues,omitempty"`
}
