// Package stream generates streaming-update workloads: batched edge
// insertions and deletions against an evolving graph, following the paper's
// experimental setup ("batches of 100K edge updates. Each batch contains 70%
// insertions and 30% deletions of edges", §6.2).
package stream

import (
	"math/rand"

	"jetstream/internal/graph"
)

// Config parameterizes a batch generator.
type Config struct {
	// BatchSize is the number of edge updates per batch.
	BatchSize int
	// InsertFrac is the fraction of updates that are insertions (0.7 in the
	// paper's baseline; Fig 14 sweeps it).
	InsertFrac float64
	// MaxWeight bounds inserted edge weights (uniform in [1, MaxWeight]).
	MaxWeight float64
	// Symmetric mirrors every update so the graph stays undirected (needed
	// for Connected Components). The mirrored directions count toward
	// BatchSize.
	Symmetric bool
	// Locality, when > 0, draws most inserted edges near their source in
	// vertex-id (crawl) order — the realistic update pattern for the
	// web-crawl topology class, where new links are overwhelmingly
	// site-local. Uniform random insertions into a long-diameter graph act
	// as global shortcuts that restructure the whole result, which no real
	// crawl delta does.
	Locality int
	Seed     int64
}

// Generator draws successive batches against the current graph version.
// Batches are deterministic for a given seed and sequence of graphs.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator returns a generator for cfg, drawing from a private generator
// seeded with cfg.Seed.
func NewGenerator(cfg Config) *Generator {
	return NewGeneratorWithRand(cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// NewGeneratorWithRand returns a generator drawing from rng, which must be
// explicitly seeded by the caller. Use this to share one random stream across
// several components (generator, fault injector) so a single seed reproduces
// the whole run.
func NewGeneratorWithRand(cfg Config, rng *rand.Rand) *Generator {
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 64
	}
	return &Generator{cfg: cfg, rng: rng}
}

// Next draws a batch valid against g: deletions name existing edges,
// insertions name absent pairs, and no (src,dst) pair appears twice.
func (gen *Generator) Next(g *graph.CSR) graph.Batch {
	if gen.cfg.Symmetric {
		return gen.nextSymmetric(g)
	}
	n := g.NumVertices()
	e := g.NumEdges()
	wantIns := int(float64(gen.cfg.BatchSize)*gen.cfg.InsertFrac + 0.5)
	wantDel := gen.cfg.BatchSize - wantIns
	if wantDel > e/2 {
		wantDel = e / 2 // never drain the graph
	}

	type key struct{ u, v graph.VertexID }
	used := make(map[key]bool, gen.cfg.BatchSize)
	var b graph.Batch

	for tries := 0; len(b.Deletes) < wantDel && tries < wantDel*64; tries++ {
		ed := g.EdgeAt(gen.rng.Intn(e))
		k := key{ed.Src, ed.Dst}
		if used[k] {
			continue
		}
		used[k] = true
		b.Deletes = append(b.Deletes, ed)
	}
	for tries := 0; len(b.Inserts) < wantIns && tries < wantIns*64; tries++ {
		u := graph.VertexID(gen.rng.Intn(n))
		v := gen.insertTarget(u, n)
		if v == u {
			continue
		}
		k := key{u, v}
		if used[k] {
			continue
		}
		if _, ok := g.HasEdge(u, v); ok {
			continue
		}
		used[k] = true
		b.Inserts = append(b.Inserts, graph.Edge{Src: u, Dst: v, Weight: 1 + gen.rng.Float64()*(gen.cfg.MaxWeight-1)})
	}
	return b
}

// insertTarget picks the destination for an inserted edge from u: uniform by
// default, or mostly crawl-local when Locality is set.
func (gen *Generator) insertTarget(u graph.VertexID, n int) graph.VertexID {
	if gen.cfg.Locality <= 0 || gen.rng.Float64() < 0.15 {
		return graph.VertexID(gen.rng.Intn(n))
	}
	off := 1 + gen.rng.Intn(2*gen.cfg.Locality)
	v := int(u) - gen.cfg.Locality + off
	if v < 0 || v >= n {
		return graph.VertexID(gen.rng.Intn(n))
	}
	return graph.VertexID(v)
}

// nextSymmetric draws undirected updates: each logical update contributes
// both directions, keeping a symmetrized graph symmetric.
func (gen *Generator) nextSymmetric(g *graph.CSR) graph.Batch {
	n := g.NumVertices()
	e := g.NumEdges()
	pairs := gen.cfg.BatchSize / 2
	wantIns := int(float64(pairs)*gen.cfg.InsertFrac + 0.5)
	wantDel := pairs - wantIns
	if wantDel > e/4 {
		wantDel = e / 4
	}

	type key struct{ u, v graph.VertexID }
	norm := func(u, v graph.VertexID) key {
		if u > v {
			u, v = v, u
		}
		return key{u, v}
	}
	used := make(map[key]bool, pairs)
	var b graph.Batch

	for tries := 0; len(b.Deletes) < 2*wantDel && tries < wantDel*128; tries++ {
		ed := g.EdgeAt(gen.rng.Intn(e))
		k := norm(ed.Src, ed.Dst)
		if used[k] {
			continue
		}
		// Both directions must exist (symmetric graph invariant).
		w2, ok := g.HasEdge(ed.Dst, ed.Src)
		if !ok {
			continue
		}
		used[k] = true
		b.Deletes = append(b.Deletes,
			graph.Edge{Src: ed.Src, Dst: ed.Dst, Weight: ed.Weight},
			graph.Edge{Src: ed.Dst, Dst: ed.Src, Weight: w2})
	}
	for tries := 0; len(b.Inserts) < 2*wantIns && tries < wantIns*128; tries++ {
		u := graph.VertexID(gen.rng.Intn(n))
		v := graph.VertexID(gen.rng.Intn(n))
		if u == v {
			continue
		}
		k := norm(u, v)
		if used[k] {
			continue
		}
		if _, ok := g.HasEdge(u, v); ok {
			continue
		}
		if _, ok := g.HasEdge(v, u); ok {
			continue
		}
		used[k] = true
		w := 1 + gen.rng.Float64()*(gen.cfg.MaxWeight-1)
		b.Inserts = append(b.Inserts,
			graph.Edge{Src: u, Dst: v, Weight: w},
			graph.Edge{Src: v, Dst: u, Weight: w})
	}
	return b
}
