package stream

import (
	"fmt"
	"math/rand"

	"jetstream/internal/graph"
)

// ShapeKind selects an adversarial stream shape: a workload engineered to
// stress one corner of the infinite-window machinery rather than to look like
// a realistic crawl delta. Each shape is deterministic for a given seed and
// valid by construction (deletions name existing edges, insertions absent
// pairs, no pair twice per batch), so every shape can drive both a windowed
// system and its rebuild oracle from the same replayed stream.
type ShapeKind int

const (
	// HubChurn concentrates the whole batch on a few hub vertices: their
	// adjacency is torn down and rebuilt every batch, so the same (src,dst)
	// pairs are deleted, re-inserted and re-aged over and over — the
	// worst case for stale bucket entries in the window ring.
	HubChurn ShapeKind = iota
	// FlashCrowd inserts a dense burst around one focus vertex per period and
	// then goes quiet, so entire neighborhoods enter the window together and
	// expire together TTL batches later.
	FlashCrowd
	// DeleteStorm picks victim vertices and strips their entire adjacency —
	// the shape that reaches the remove-a-vertex's-last-edge path in the
	// sparse drain bitmap and leaves maximal stale entries behind.
	DeleteStorm
	// ExpiryAvalanche alternates heavy-insert batches with near-empty ones on
	// a fixed period, so when the heavy epoch reaches the window boundary a
	// large fraction of the graph expires in a single batch.
	ExpiryAvalanche
)

// String names the shape the way CI job names and bench labels spell it.
func (k ShapeKind) String() string {
	switch k {
	case HubChurn:
		return "hubchurn"
	case FlashCrowd:
		return "flashcrowd"
	case DeleteStorm:
		return "deletestorm"
	case ExpiryAvalanche:
		return "avalanche"
	default:
		return fmt.Sprintf("shape(%d)", int(k))
	}
}

// Shapes lists every adversarial shape, in a stable order for test matrices.
func Shapes() []ShapeKind {
	return []ShapeKind{HubChurn, FlashCrowd, DeleteStorm, ExpiryAvalanche}
}

// ShapeConfig parameterizes an adversarial generator.
type ShapeConfig struct {
	Kind ShapeKind
	// BatchSize bounds the number of edge updates per batch (mirrored
	// directions count, as in Config).
	BatchSize int
	// MaxWeight bounds inserted edge weights (uniform in [1, MaxWeight];
	// default 64).
	MaxWeight float64
	// Symmetric mirrors every update so the graph stays undirected.
	Symmetric bool
	// Period sets the burst cadence for FlashCrowd and ExpiryAvalanche in
	// batches (default 3); align it with the window TTL to land a burst's
	// expiry on top of the next burst's arrival.
	Period int
	Seed   int64
}

// ShapeGen draws successive adversarial batches against the current graph
// version. Like Generator, it is deterministic for a given seed and sequence
// of graphs, so recording its output and replaying the trace reproduces the
// run exactly.
type ShapeGen struct {
	cfg   ShapeConfig
	rng   *rand.Rand
	batch int // 0-based index of the next batch drawn
}

// NewShape returns an adversarial generator for cfg.
func NewShape(cfg ShapeConfig) *ShapeGen {
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 64
	}
	if cfg.Period <= 0 {
		cfg.Period = 3
	}
	return &ShapeGen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next draws the next batch valid against g.
func (s *ShapeGen) Next(g *graph.CSR) graph.Batch {
	k := s.batch
	s.batch++
	switch s.cfg.Kind {
	case HubChurn:
		return s.hubChurn(g)
	case FlashCrowd:
		if k%s.cfg.Period != 0 {
			return s.trickle(g, 2)
		}
		return s.burst(g, graph.VertexID(s.rng.Intn(g.NumVertices())))
	case DeleteStorm:
		return s.deleteStorm(g)
	case ExpiryAvalanche:
		if k%s.cfg.Period != 0 {
			return s.trickle(g, 1)
		}
		return s.burst(g, graph.VertexID(s.rng.Intn(g.NumVertices())))
	default:
		return graph.Batch{}
	}
}

// budget is the per-batch update budget in logical updates (halved when
// mirroring, since each logical update emits both directions).
func (s *ShapeGen) budget() int {
	if s.cfg.Symmetric {
		return s.cfg.BatchSize / 2
	}
	return s.cfg.BatchSize
}

func (s *ShapeGen) weight() float64 {
	return 1 + s.rng.Float64()*(s.cfg.MaxWeight-1)
}

// emitter accumulates a valid batch: it tracks the pairs already used so no
// (src,dst) appears twice, and mirrors automatically under Symmetric.
type emitter struct {
	g    *graph.CSR
	sym  bool
	used map[Key]bool
	b    graph.Batch
}

// Key identifies an edge by endpoints, exported so trace and shape consumers
// can share pair-set bookkeeping.
type Key struct{ U, V graph.VertexID }

func newEmitter(g *graph.CSR, sym bool, hint int) *emitter {
	return &emitter{g: g, sym: sym, used: make(map[Key]bool, hint)}
}

func (e *emitter) norm(u, v graph.VertexID) Key {
	if e.sym && u > v {
		u, v = v, u
	}
	return Key{u, v}
}

// del emits a deletion of (u,v) (both directions under Symmetric) if the edge
// exists and the pair is unused; it reports whether it emitted.
func (e *emitter) del(u, v graph.VertexID) bool {
	k := e.norm(u, v)
	if e.used[k] {
		return false
	}
	w, ok := e.g.HasEdge(u, v)
	if !ok {
		return false
	}
	if e.sym {
		w2, ok2 := e.g.HasEdge(v, u)
		if !ok2 {
			return false
		}
		e.used[k] = true
		e.b.Deletes = append(e.b.Deletes,
			graph.Edge{Src: u, Dst: v, Weight: w},
			graph.Edge{Src: v, Dst: u, Weight: w2})
		return true
	}
	e.used[k] = true
	e.b.Deletes = append(e.b.Deletes, graph.Edge{Src: u, Dst: v, Weight: w})
	return true
}

// ins emits an insertion of (u,v) with weight w (mirrored under Symmetric) if
// the pair is absent and unused; it reports whether it emitted.
func (e *emitter) ins(u, v graph.VertexID, w float64) bool {
	if u == v {
		return false
	}
	k := e.norm(u, v)
	if e.used[k] {
		return false
	}
	if _, ok := e.g.HasEdge(u, v); ok {
		return false
	}
	if e.sym {
		if _, ok := e.g.HasEdge(v, u); ok {
			return false
		}
		e.used[k] = true
		e.b.Inserts = append(e.b.Inserts,
			graph.Edge{Src: u, Dst: v, Weight: w},
			graph.Edge{Src: v, Dst: u, Weight: w})
		return true
	}
	e.used[k] = true
	e.b.Inserts = append(e.b.Inserts, graph.Edge{Src: u, Dst: v, Weight: w})
	return true
}

func (e *emitter) size() int { return e.b.Size() }

// hubChurn tears down and rebuilds the adjacency of a few hubs: half the
// budget deletes the hubs' current out-edges, half re-inserts fresh spokes —
// frequently the very pairs just deleted, exercising the same-batch
// delete+insert (age refresh) idiom.
func (s *ShapeGen) hubChurn(g *graph.CSR) graph.Batch {
	n := g.NumVertices()
	hubs := 3
	if hubs > n {
		hubs = n
	}
	em := newEmitter(g, s.cfg.Symmetric, s.cfg.BatchSize)
	budget := s.budget()
	var torn []Key
	for h := 0; h < hubs && em.size() < s.cfg.BatchSize; h++ {
		hub := graph.VertexID(s.rng.Intn(n))
		g.OutEdges(hub, func(v graph.VertexID, _ graph.Weight) {
			if len(torn) < budget/2 && em.del(hub, v) {
				torn = append(torn, Key{hub, v})
			}
		})
	}
	// Rebuild: half of the re-inserts refresh a just-torn pair, half open new
	// spokes from the same hubs.
	for _, k := range torn {
		if em.size() >= s.cfg.BatchSize {
			break
		}
		if s.rng.Float64() < 0.5 {
			em.ins(k.U, k.V, s.weight())
		} else {
			em.ins(k.U, graph.VertexID(s.rng.Intn(n)), s.weight())
		}
	}
	for tries := 0; em.size() < s.cfg.BatchSize && tries < budget*16; tries++ {
		em.ins(graph.VertexID(s.rng.Intn(n)), graph.VertexID(s.rng.Intn(n)), s.weight())
	}
	return em.b
}

// burst floods the neighborhood of focus with fresh spokes (both spoke and
// spoke-to-spoke edges), so the whole clump shares one insertion epoch.
func (s *ShapeGen) burst(g *graph.CSR, focus graph.VertexID) graph.Batch {
	n := g.NumVertices()
	em := newEmitter(g, s.cfg.Symmetric, s.cfg.BatchSize)
	budget := s.budget()
	for tries := 0; em.size() < s.cfg.BatchSize && tries < budget*16; tries++ {
		v := graph.VertexID(s.rng.Intn(n))
		if s.rng.Float64() < 0.7 {
			em.ins(focus, v, s.weight())
		} else {
			u := graph.VertexID(s.rng.Intn(n))
			em.ins(u, v, s.weight())
		}
	}
	return em.b
}

// trickle emits a handful of background insertions so quiet batches still
// advance the stream without materially growing the graph.
func (s *ShapeGen) trickle(g *graph.CSR, updates int) graph.Batch {
	n := g.NumVertices()
	em := newEmitter(g, s.cfg.Symmetric, updates)
	for tries := 0; len(em.b.Inserts) < updates && tries < updates*64; tries++ {
		em.ins(graph.VertexID(s.rng.Intn(n)), graph.VertexID(s.rng.Intn(n)), s.weight())
	}
	return em.b
}

// deleteStorm strips victim vertices bare: every out-edge (and, under
// Symmetric, its mirror) of each victim goes, until the budget runs out. A
// sliver of the budget re-inserts elsewhere so the graph never fully drains
// over a long storm.
func (s *ShapeGen) deleteStorm(g *graph.CSR) graph.Batch {
	n := g.NumVertices()
	em := newEmitter(g, s.cfg.Symmetric, s.cfg.BatchSize)
	budget := s.budget()
	delBudget := budget * 3 / 4
	for tries := 0; len(em.b.Deletes) < delBudget && tries < budget*8; tries++ {
		victim := graph.VertexID(s.rng.Intn(n))
		g.OutEdges(victim, func(v graph.VertexID, _ graph.Weight) {
			if len(em.b.Deletes) < delBudget {
				em.del(victim, v)
			}
		})
	}
	for tries := 0; em.size() < s.cfg.BatchSize && tries < budget*16; tries++ {
		em.ins(graph.VertexID(s.rng.Intn(n)), graph.VertexID(s.rng.Intn(n)), s.weight())
	}
	return em.b
}
