package stream

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"

	"jetstream/internal/graph"
)

// Trace is a recorded update stream: the exact batch sequence a generator (or
// a live feed) produced, detached from the generator that made it. Recording
// a run and replaying its trace reproduces the run bit for bit — the
// reproducibility contract the differential suites and bug reports rely on —
// and a trace survives serialization, so a failing stream can be checked in
// as bytes.
type Trace struct {
	Batches []graph.Batch
}

// Record appends a copy of b to the trace (the caller may go on mutating its
// slices).
func (t *Trace) Record(b graph.Batch) {
	var c graph.Batch
	if len(b.Inserts) > 0 {
		c.Inserts = append([]graph.Edge(nil), b.Inserts...)
	}
	if len(b.Deletes) > 0 {
		c.Deletes = append([]graph.Edge(nil), b.Deletes...)
	}
	t.Batches = append(t.Batches, c)
}

// RecordFrom drains n batches from next (a Generator.Next, ShapeGen.Next or
// equivalent closure) against the evolving graph g, recording each batch and
// applying it so successive draws see the post-batch graph. It returns the
// final graph version.
func RecordFrom(g *graph.CSR, n int, next func(*graph.CSR) graph.Batch) (*Trace, *graph.CSR) {
	t := &Trace{}
	for i := 0; i < n; i++ {
		b := next(g)
		t.Record(b)
		g = g.MustApply(b)
	}
	return t, g
}

// Trace wire format: magic, batch count, then each batch in the canonical
// graph codec, closed by a CRC64-ECMA of everything before it. The checksum
// makes silent truncation or corruption of a checked-in trace a loud decode
// error instead of a quietly different replay.
var traceMagic = [8]byte{'J', 'S', 'T', 'R', 'C', '0', '0', '1'}

var traceCRC = crc64.MakeTable(crc64.ECMA)

// ErrCorruptTrace is wrapped by Decode errors: the bytes are not a complete,
// checksum-valid trace.
var ErrCorruptTrace = fmt.Errorf("stream: corrupt trace")

// Encode serializes the trace.
func (t *Trace) Encode() []byte {
	out := append([]byte(nil), traceMagic[:]...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(t.Batches)))
	out = append(out, n[:]...)
	for _, b := range t.Batches {
		out = graph.AppendBatch(out, b)
	}
	var crc [8]byte
	binary.LittleEndian.PutUint64(crc[:], crc64.Checksum(out, traceCRC))
	return append(out, crc[:]...)
}

// DecodeTrace parses an encoded trace, rejecting damage (bad magic, torn
// batches, checksum mismatch) with an error wrapping ErrCorruptTrace.
func DecodeTrace(data []byte) (*Trace, error) {
	const hdr = len(traceMagic) + 4
	if len(data) < hdr+8 {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorruptTrace, len(data), hdr+8)
	}
	if string(data[:len(traceMagic)]) != string(traceMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptTrace)
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, traceCRC) != binary.LittleEndian.Uint64(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptTrace)
	}
	count := binary.LittleEndian.Uint32(data[len(traceMagic):])
	t := &Trace{}
	off := hdr
	for i := uint32(0); i < count; i++ {
		b, n, err := graph.DecodeBatch(body[off:])
		if err != nil {
			return nil, fmt.Errorf("%w: batch %d: %v", ErrCorruptTrace, i, err)
		}
		t.Batches = append(t.Batches, b)
		off += n
	}
	if off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes after %d batches", ErrCorruptTrace, len(body)-off, count)
	}
	return t, nil
}

// Replayer feeds a trace back with the same Next(g) signature the generators
// expose, so any consumer of a Generator can consume a recording instead.
// Past the end it returns empty batches.
type Replayer struct {
	t   *Trace
	pos int
}

// NewReplayer returns a replayer over t from the first batch.
func NewReplayer(t *Trace) *Replayer { return &Replayer{t: t} }

// Next returns the next recorded batch. The graph argument is ignored — a
// trace replays verbatim — and exists to match the generator signature.
func (r *Replayer) Next(*graph.CSR) graph.Batch {
	if r.pos >= len(r.t.Batches) {
		return graph.Batch{}
	}
	b := r.t.Batches[r.pos]
	r.pos++
	return b
}

// Remaining reports how many recorded batches are left to replay.
func (r *Replayer) Remaining() int { return len(r.t.Batches) - r.pos }
