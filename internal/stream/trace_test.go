package stream

import (
	"math/rand"
	"testing"

	"jetstream/internal/graph"
)

func TestBatchValidity(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2500, Seed: 1})
	gen := NewGenerator(Config{BatchSize: 100, InsertFrac: 0.7, Seed: 2})
	for i := 0; i < 10; i++ {
		b := gen.Next(g)
		ng, err := g.Apply(b)
		if err != nil {
			t.Fatalf("batch %d invalid: %v", i, err)
		}
		if len(b.Inserts) == 0 || len(b.Deletes) == 0 {
			t.Fatalf("batch %d degenerate: %d ins, %d del", i, len(b.Inserts), len(b.Deletes))
		}
		// ~70:30 split.
		frac := float64(len(b.Inserts)) / float64(b.Size())
		if frac < 0.6 || frac > 0.8 {
			t.Errorf("batch %d insert fraction %.2f, want ~0.7", i, frac)
		}
		g = ng
	}
}

func TestBatchDeterminism(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1500, Seed: 3})
	a := NewGenerator(Config{BatchSize: 50, InsertFrac: 0.5, Seed: 9}).Next(g)
	b := NewGenerator(Config{BatchSize: 50, InsertFrac: 0.5, Seed: 9}).Next(g)
	if len(a.Inserts) != len(b.Inserts) || len(a.Deletes) != len(b.Deletes) {
		t.Fatal("nondeterministic batch sizes")
	}
	for i := range a.Inserts {
		if a.Inserts[i] != b.Inserts[i] {
			t.Fatal("nondeterministic inserts")
		}
	}
}

func TestSymmetricBatchesKeepGraphSymmetric(t *testing.T) {
	g := graph.Symmetrize(graph.RMAT(graph.RMATConfig{Vertices: 150, Edges: 900, Seed: 5}))
	gen := NewGenerator(Config{BatchSize: 60, InsertFrac: 0.5, Symmetric: true, Seed: 6})
	for i := 0; i < 6; i++ {
		b := gen.Next(g)
		ng, err := g.Apply(b)
		if err != nil {
			t.Fatalf("batch %d invalid: %v", i, err)
		}
		for _, e := range ng.Edges() {
			if _, ok := ng.HasEdge(e.Dst, e.Src); !ok {
				t.Fatalf("batch %d broke symmetry at (%d,%d)", i, e.Src, e.Dst)
			}
		}
		g = ng
	}
}

func TestInsertOnlyAndDeleteOnly(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1500, Seed: 7})
	ins := NewGenerator(Config{BatchSize: 40, InsertFrac: 1, Seed: 8}).Next(g)
	if len(ins.Deletes) != 0 || len(ins.Inserts) != 40 {
		t.Errorf("insert-only: %d ins %d del", len(ins.Inserts), len(ins.Deletes))
	}
	del := NewGenerator(Config{BatchSize: 40, InsertFrac: 0, Seed: 8}).Next(g)
	if len(del.Inserts) != 0 || len(del.Deletes) != 40 {
		t.Errorf("delete-only: %d ins %d del", len(del.Inserts), len(del.Deletes))
	}
}

func TestDeleteCapPreservesGraph(t *testing.T) {
	// A tiny graph cannot satisfy a huge delete request; the generator must
	// cap deletions rather than drain the graph.
	g := graph.MustBuild(4, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 3, Weight: 1}, {Src: 3, Dst: 0, Weight: 1}})
	b := NewGenerator(Config{BatchSize: 100, InsertFrac: 0, Seed: 10}).Next(g)
	if len(b.Deletes) > 2 {
		t.Errorf("deleted %d of 4 edges; cap is half", len(b.Deletes))
	}
}

func TestInjectedRandMatchesSeededConstructor(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1500, Seed: 3})
	cfg := Config{BatchSize: 50, InsertFrac: 0.5, Seed: 9}
	a := NewGenerator(cfg).Next(g)
	b := NewGeneratorWithRand(cfg, rand.New(rand.NewSource(cfg.Seed))).Next(g)
	if len(a.Inserts) != len(b.Inserts) || len(a.Deletes) != len(b.Deletes) {
		t.Fatal("injected rng diverged from seeded constructor")
	}
	for i := range a.Inserts {
		if a.Inserts[i] != b.Inserts[i] {
			t.Fatal("injected rng produced different inserts")
		}
	}
	for i := range a.Deletes {
		if a.Deletes[i] != b.Deletes[i] {
			t.Fatal("injected rng produced different deletes")
		}
	}
}
