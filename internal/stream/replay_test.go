package stream

import (
	"errors"
	"math/rand"
	"testing"

	"jetstream/internal/graph"
)

func batchesEqual(a, b graph.Batch) bool {
	if len(a.Inserts) != len(b.Inserts) || len(a.Deletes) != len(b.Deletes) {
		return false
	}
	for i := range a.Inserts {
		if a.Inserts[i] != b.Inserts[i] {
			return false
		}
	}
	for i := range a.Deletes {
		if a.Deletes[i] != b.Deletes[i] {
			return false
		}
	}
	return true
}

// TestSeededTraceRoundTrip is the reproducibility contract end to end: a
// seeded generator's stream, recorded against the evolving graph, must survive
// encode → decode → replay bit for bit, and the replayed stream must be the
// very stream a second generator with the same seed draws. This covers the
// injected-rng constructor too, since NewGenerator is defined in terms of it.
func TestSeededTraceRoundTrip(t *testing.T) {
	base := graph.RMAT(graph.RMATConfig{Vertices: 250, Edges: 2000, Seed: 11})
	cfg := Config{BatchSize: 80, InsertFrac: 0.6, Seed: 42}

	trace, _ := RecordFrom(base, 8, NewGenerator(cfg).Next)

	decoded, err := DecodeTrace(trace.Encode())
	if err != nil {
		t.Fatalf("decode recorded trace: %v", err)
	}
	if len(decoded.Batches) != len(trace.Batches) {
		t.Fatalf("decoded %d batches, recorded %d", len(decoded.Batches), len(trace.Batches))
	}
	for i := range trace.Batches {
		if !batchesEqual(decoded.Batches[i], trace.Batches[i]) {
			t.Fatalf("batch %d changed across encode/decode", i)
		}
	}

	// Replaying the decoded trace must match a fresh same-seed generator
	// drawing against the same evolving graph — including through the
	// injected-rng constructor path.
	rep := NewReplayer(decoded)
	gen := NewGeneratorWithRand(cfg, rand.New(rand.NewSource(cfg.Seed)))
	g := base
	for i := 0; i < len(decoded.Batches); i++ {
		want := gen.Next(g)
		got := rep.Next(g)
		if !batchesEqual(got, want) {
			t.Fatalf("batch %d: replay diverged from same-seed generator", i)
		}
		g = g.MustApply(want)
	}
	if rep.Remaining() != 0 {
		t.Fatalf("replayer has %d batches left", rep.Remaining())
	}
	if got := rep.Next(g); got.Size() != 0 {
		t.Fatal("exhausted replayer returned a non-empty batch")
	}
}

func TestDecodeTraceRejectsDamage(t *testing.T) {
	base := graph.RMAT(graph.RMATConfig{Vertices: 100, Edges: 600, Seed: 13})
	trace, _ := RecordFrom(base, 3, NewGenerator(Config{BatchSize: 30, InsertFrac: 0.5, Seed: 7}).Next)
	enc := trace.Encode()

	cases := map[string][]byte{
		"empty":      {},
		"bad magic":  append([]byte("NOTATRACE"), enc[9:]...),
		"truncated":  enc[:len(enc)-9],
		"bit flip":   func() []byte { d := append([]byte(nil), enc...); d[len(d)/2] ^= 0x40; return d }(),
		"trailing":   func() []byte { d := append([]byte(nil), enc[:len(enc)-8]...); return append(append(d, 0), enc[len(enc)-8:]...) }(),
		"over count": func() []byte { d := append([]byte(nil), enc...); d[8]++; return d }(),
	}
	for name, data := range cases {
		if _, err := DecodeTrace(data); !errors.Is(err, ErrCorruptTrace) {
			t.Errorf("%s: got %v, want ErrCorruptTrace", name, err)
		}
	}
}

// TestShapeBatchesValid pins the valid-by-construction contract for every
// adversarial shape, directed and symmetric: each drawn batch must Apply
// cleanly and, under Symmetric, keep the graph symmetric.
func TestShapeBatchesValid(t *testing.T) {
	for _, kind := range Shapes() {
		for _, sym := range []bool{false, true} {
			name := kind.String()
			if sym {
				name += "/symmetric"
			}
			t.Run(name, func(t *testing.T) {
				g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1600, Seed: 21})
				if sym {
					g = graph.Symmetrize(g)
				}
				gen := NewShape(ShapeConfig{Kind: kind, BatchSize: 60, Symmetric: sym, Period: 3, Seed: 31})
				for i := 0; i < 9; i++ {
					b := gen.Next(g)
					ng, err := g.Apply(b)
					if err != nil {
						t.Fatalf("batch %d invalid: %v", i, err)
					}
					if sym {
						for _, e := range ng.Edges() {
							if _, ok := ng.HasEdge(e.Dst, e.Src); !ok {
								t.Fatalf("batch %d broke symmetry at (%d,%d)", i, e.Src, e.Dst)
							}
						}
					}
					g = ng
				}
			})
		}
	}
}

// TestShapeDeterminism: same seed, same graphs, same batches.
func TestShapeDeterminism(t *testing.T) {
	for _, kind := range Shapes() {
		base := graph.RMAT(graph.RMATConfig{Vertices: 150, Edges: 1200, Seed: 17})
		ta, _ := RecordFrom(base, 6, NewShape(ShapeConfig{Kind: kind, BatchSize: 50, Seed: 23}).Next)
		tb, _ := RecordFrom(base, 6, NewShape(ShapeConfig{Kind: kind, BatchSize: 50, Seed: 23}).Next)
		for i := range ta.Batches {
			if !batchesEqual(ta.Batches[i], tb.Batches[i]) {
				t.Fatalf("%s: batch %d nondeterministic", kind, i)
			}
		}
	}
}

// TestDeleteStormStripsVertices: the storm must actually reach the
// last-edge-removal corner — some vertex with edges before the batch has none
// after it.
func TestDeleteStormStripsVertices(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 80, Edges: 400, Seed: 29})
	gen := NewShape(ShapeConfig{Kind: DeleteStorm, BatchSize: 120, Seed: 37})
	stripped := false
	for i := 0; i < 8 && !stripped; i++ {
		b := gen.Next(g)
		ng := g.MustApply(b)
		for v := 0; v < g.NumVertices(); v++ {
			if g.OutDegree(graph.VertexID(v)) > 0 && ng.OutDegree(graph.VertexID(v)) == 0 {
				stripped = true
				break
			}
		}
		g = ng
	}
	if !stripped {
		t.Fatal("delete storm never removed a vertex's last out-edge")
	}
}
