package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is the write handle the log needs from its filesystem: ordered
// appends, a durability barrier, and release. *os.File satisfies it.
type File interface {
	io.Writer
	// Sync flushes the file's dirty pages to stable storage.
	Sync() error
	Close() error
}

// FS abstracts the few filesystem operations the durability layer performs,
// so tests can interpose deterministic disk faults (internal/fault.Disk)
// under the exact code paths production runs. The zero-configuration
// implementation is OSFS.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// OpenAppend opens path for appending, creating it when absent.
	OpenAppend(path string) (File, error)
	// Create opens path truncated for writing (temp files for atomic
	// replacement).
	Create(path string) (File, error)
	// ReadFile returns the full contents of path.
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir flushes the directory entry metadata for dir, making a
	// preceding Rename durable.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) OpenAppend(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open append: %w", err)
	}
	return f, nil
}

func (OSFS) Create(path string) (File, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return f, nil
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: sync dir close: %w", cerr)
	}
	return nil
}

// WriteFileAtomic durably replaces path with the bytes write produces: the
// content goes to a temp file in the same directory, is fsynced, and is
// renamed over path, so a crash at any byte offset leaves either the old
// complete file or the new complete file — never a torn mix. The directory
// entry is fsynced after the rename to make the replacement itself durable.
func WriteFileAtomic(fs FS, path string, write func(io.Writer) error) error {
	if fs == nil {
		fs = OSFS{}
	}
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if err := write(f); err != nil {
		_ = f.Close() // best-effort cleanup; the write error is authoritative
		_ = fs.Remove(tmp)
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fs.Remove(tmp)
		return fmt.Errorf("wal: atomic write %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("wal: atomic write %s: close: %w", path, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("wal: atomic write %s: rename: %w", path, err)
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("wal: atomic write %s: %w", path, err)
	}
	return nil
}
