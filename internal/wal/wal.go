// Package wal implements the durable write-ahead delta log behind the
// module's crash-consistency story. Each applied batch's edge delta is
// journaled as one length-prefixed, CRC64-framed record before the engine
// mutates any state, so the durable history is always at or ahead of the
// in-memory state; a checkpoint then becomes incremental — a full snapshot
// plus a log position — and recovery replays the log tail on top of the
// restored snapshot.
//
// Failure semantics mirror the checkpoint layer's: a torn tail (the bytes a
// crash cut mid-append) is detected by checksum, truncated, and the durable
// prefix before it recovered cleanly; damage in the middle of the log —
// which means committed history is gone — refuses with ErrCorrupt rather
// than silently diverging. The sync policy selects how much recent history a
// crash may cost: per-batch fsync (nothing), interval fsync (up to the
// interval), or none (whatever the OS had not flushed).
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"jetstream/internal/graph"
	"jetstream/internal/obs"
)

// LogName is the log's filename inside its directory.
const LogName = "wal.log"

// SyncPolicy selects when Append calls fsync.
type SyncPolicy int

const (
	// SyncEveryBatch fsyncs after every appended record: a crash loses
	// nothing that Append acknowledged. The safest and slowest policy.
	SyncEveryBatch SyncPolicy = iota
	// SyncInterval fsyncs after every Options.Interval appended records: a
	// crash loses at most the unsynced interval.
	SyncInterval
	// SyncNone never fsyncs from Append; durability rides on the OS page
	// cache until Sync or Close is called explicitly.
	SyncNone
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncEveryBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("SyncPolicy(%d)", int(p))
	}
}

// ParseSyncPolicy resolves the command-line spellings of the policies.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch", "":
		return SyncEveryBatch, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want batch, interval, or none)", s)
	}
}

// Options configures a Log.
type Options struct {
	// Sync selects the fsync cadence (default SyncEveryBatch).
	Sync SyncPolicy
	// Interval is the record count between fsyncs under SyncInterval;
	// values < 1 behave as 1.
	Interval int
	// FS overrides the filesystem (nil = the real one). Tests interpose
	// fault.Disk here to model crashes, short writes, bit rot, and ENOSPC.
	FS FS
}

// ErrSequence is wrapped by Append when the caller's sequence number does
// not extend the log contiguously — a sign two writers share a directory or
// the caller skipped recovery.
var ErrSequence = errors.New("wal: non-contiguous sequence")

// Log is an append-only write-ahead delta log bound to one directory. It is
// not safe for concurrent use; the owning System serializes access the same
// way it serializes ApplyBatch.
type Log struct {
	dir     string
	opts    Options
	fs      FS
	f       File
	size    int64
	lastSeq uint64 // sequence floor: the next Append must carry lastSeq+1
	started bool   // false until the floor is pinned by a record or SetFloor
	pending int    // records appended since the last fsync

	// broken latches the first append-path write failure: the file tail may
	// hold a torn record, and appending anything after it would turn a clean
	// torn tail into unrecoverable mid-log corruption. Every subsequent
	// Append or Sync fails with the original error until the log is
	// reopened (Open truncates the torn tail away).
	broken error

	// tornRepairs counts torn-tail truncations Open performed before
	// Instrument could register the counter.
	tornRepairs uint64

	// buf is the reusable record-encoding scratch.
	buf []byte

	// Observability; nil-checked so an uninstrumented log costs nothing.
	syncLat     *obs.Histogram
	appends     *obs.Counter
	appendBytes *obs.Counter
	syncs       *obs.Counter
	compactions *obs.Counter
	truncations *obs.Counter
}

// Open opens (creating if needed) the log in dir, scans it, repairs a torn
// tail by truncating the file to its intact prefix, and positions the log
// for appending. Mid-log corruption fails with an error wrapping ErrCorrupt.
// The returned log's LastSeq tells the caller where the durable history
// ends.
func Open(dir string, opts Options) (*Log, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if opts.Interval < 1 {
		opts.Interval = 1
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	l := &Log{dir: dir, opts: opts, fs: fs}
	path := l.path()
	data, err := fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	if len(data) > 0 {
		st, err := Scan(data)
		if err != nil {
			return nil, fmt.Errorf("wal: open %s: %w", path, err)
		}
		if st.Truncated {
			if err := fs.Truncate(path, st.ValidSize); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
			}
			l.tornRepairs++
		}
		l.size = st.ValidSize
		if st.Replayed > 0 {
			l.lastSeq = st.LastSeq
			l.started = true
		}
	}
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l.f = f
	return l, nil
}

// SetFloor pins the sequence floor of an empty log: the next Append must
// carry seq+1. A System attaching a fresh log after restoring a snapshot at
// batch seq uses it so a skipped or doubled batch number is caught at append
// time rather than at the next recovery.
func (l *Log) SetFloor(seq uint64) {
	if !l.started {
		l.lastSeq = seq
		l.started = true
	}
}

func (l *Log) path() string { return filepath.Join(l.dir, LogName) }

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the sequence number of the last record in the log (or the
// floor set by SetFloor); 0 when the log is empty and unpinned.
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Size returns the log's current byte length.
func (l *Log) Size() int64 { return l.size }

// Instrument registers the log's series on reg: the fsync latency histogram
// and the append/sync/compaction/truncation counters.
func (l *Log) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.syncLat = reg.Histogram("jetstream_wal_sync_latency_ns")
	l.appends = reg.Counter("jetstream_wal_appends_total")
	l.appendBytes = reg.Counter("jetstream_wal_append_bytes_total")
	l.syncs = reg.Counter("jetstream_wal_syncs_total")
	l.compactions = reg.Counter("jetstream_wal_compactions_total")
	l.truncations = reg.Counter("jetstream_wal_truncations_total")
	if l.tornRepairs > 0 {
		l.truncations.Add(l.tornRepairs)
		l.tornRepairs = 0
	}
}

// Append journals one batch under the given sequence number, which must
// extend the log contiguously (lastSeq+1, or anything for an empty log —
// the first record after a snapshot carries snapshotSeq+1). The write and
// any policy-triggered fsync complete before Append returns; on error
// nothing is considered durable and the caller must treat the batch as
// unjournaled.
func (l *Log) Append(seq uint64, b graph.Batch) error {
	if l.f == nil {
		return fmt.Errorf("wal: append to closed log")
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log broken by earlier write failure: %w", l.broken)
	}
	if l.started && seq != l.lastSeq+1 {
		return fmt.Errorf("%w: append sequence %d after %d", ErrSequence, seq, l.lastSeq)
	}
	l.buf = appendRecord(l.buf[:0], seq, b)
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err != nil {
		l.broken = err
		return fmt.Errorf("wal: append seq %d: %w", seq, err)
	}
	l.lastSeq = seq
	l.started = true
	l.pending++
	if l.appends != nil {
		l.appends.Inc()
		l.appendBytes.Add(uint64(len(l.buf)))
	}
	switch l.opts.Sync {
	case SyncEveryBatch:
		return l.Sync()
	case SyncInterval:
		if l.pending >= l.opts.Interval {
			return l.Sync()
		}
	}
	return nil
}

// Sync flushes appended records to stable storage — the cheap per-batch
// durability point: O(delta since the last sync), never O(V+E).
func (l *Log) Sync() error {
	if l.f == nil {
		return fmt.Errorf("wal: sync on closed log")
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log broken by earlier write failure: %w", l.broken)
	}
	if l.pending == 0 {
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.pending = 0
	if l.syncs != nil {
		l.syncs.Inc()
		l.syncLat.Observe(uint64(time.Since(start).Nanoseconds()))
	}
	return nil
}

// CompactTo truncates the log prefix covered by a snapshot at sequence seq:
// records with Seq <= seq are dropped, the survivors are rewritten to a temp
// file, fsynced, and renamed over the log — atomic, so a crash at any point
// leaves either the old complete log or the new one. Call it after the
// snapshot itself is durably in place: the snapshot-then-compact order means
// a crash between the two steps only leaves already-covered records, which
// replay skips.
func (l *Log) CompactTo(seq uint64) error {
	if l.f == nil {
		return fmt.Errorf("wal: compact on closed log")
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log broken by earlier write failure: %w", l.broken)
	}
	// The append handle is flushed and released first so the rewrite sees
	// every record and the rename does not race an open writer.
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		l.f = nil
		return fmt.Errorf("wal: compact: close append handle: %w", err)
	}
	l.f = nil

	data, err := l.fs.ReadFile(l.path())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("wal: compact: read log: %w", err)
	}
	var kept []byte
	if _, err := Replay(data, seq, func(r Record) error {
		kept = append(kept, data[r.Off:r.Off+int64(r.Size)]...)
		return nil
	}); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	if err := WriteFileAtomic(l.fs, l.path(), func(w io.Writer) error {
		if len(kept) == 0 {
			return nil
		}
		_, werr := w.Write(kept)
		return werr
	}); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	// The sequence floor is unchanged: compaction only drops the prefix a
	// snapshot already covers, so the next append is still lastSeq+1.
	l.size = int64(len(kept))
	f, err := l.fs.OpenAppend(l.path())
	if err != nil {
		return fmt.Errorf("wal: compact: reopen: %w", err)
	}
	l.f = f
	if l.compactions != nil {
		l.compactions.Inc()
	}
	return nil
}

// Close flushes pending records and releases the log. A Close error means
// the tail's durability is unknown; recovery will still see every record
// that reached stable storage.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	serr := l.Sync()
	cerr := l.f.Close()
	l.f = nil
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return fmt.Errorf("wal: close: %w", cerr)
	}
	return nil
}

// RecordOverhead is the per-record framing cost in bytes beyond the encoded
// batch payload.
const RecordOverhead = recHeaderSize + recTrailerSize

// AppendedSize returns the exact number of log bytes one batch occupies —
// used by tests and capacity planning.
func AppendedSize(b graph.Batch) int { return recordSize(b) }
