package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"jetstream/internal/graph"
)

// testBatch returns a small deterministic batch keyed by i.
func testBatch(i int) graph.Batch {
	return graph.Batch{
		Inserts: []graph.Edge{
			{Src: uint32(i), Dst: uint32(i + 1), Weight: float64(i) + 0.5},
			{Src: uint32(i + 2), Dst: uint32(i), Weight: 1},
		},
		Deletes: []graph.Edge{{Src: uint32(i + 1), Dst: uint32(i + 3), Weight: 2}},
	}
}

func batchesEqual(a, b graph.Batch) bool {
	if len(a.Inserts) != len(b.Inserts) || len(a.Deletes) != len(b.Deletes) {
		return false
	}
	for i := range a.Inserts {
		if a.Inserts[i] != b.Inserts[i] {
			return false
		}
	}
	for i := range a.Deletes {
		if a.Deletes[i] != b.Deletes[i] {
			return false
		}
	}
	return true
}

func appendN(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i <= to; i++ {
		if err := l.Append(uint64(i), testBatch(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 8)
	if got := l.LastSeq(); got != 8 {
		t.Fatalf("LastSeq = %d, want 8", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	st, err := Replay(data, 0, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 8 || st.Truncated || st.LastSeq != 8 {
		t.Fatalf("stats = %+v", st)
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || !batchesEqual(r.Batch, testBatch(i+1)) {
			t.Fatalf("record %d: seq %d batch mismatch", i, r.Seq)
		}
	}

	// Replay after a snapshot position skips the covered prefix.
	st, err = Replay(data, 5, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 3 || st.Skipped != 5 {
		t.Fatalf("partial replay stats = %+v", st)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	if l2.LastSeq() != 3 {
		t.Fatalf("LastSeq after reopen = %d, want 3", l2.LastSeq())
	}
	if err := l2.Append(5, testBatch(5)); !errors.Is(err, ErrSequence) {
		t.Fatalf("gap append error = %v, want ErrSequence", err)
	}
	appendN(t, l2, 4, 4)
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for cut := 1; cut <= 24; cut += 7 {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 1, 4)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, LogName)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = l2.Close() }()
			if l2.LastSeq() != 3 {
				t.Fatalf("LastSeq after torn tail = %d, want 3", l2.LastSeq())
			}
			// The torn bytes are gone from disk: the repaired file replays clean.
			repaired, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			st, err := Replay(repaired, 0, nil)
			if err != nil || st.Truncated || st.Replayed != 3 {
				t.Fatalf("repaired replay: %+v, %v", st, err)
			}
			// Appending after the repair extends the intact prefix.
			appendN(t, l2, 4, 4)
		})
	}
}

func TestMidLogCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, LogName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage a byte inside the first record: intact records follow, so this
	// is unrecoverable history loss, not a torn tail.
	data[20] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Replay(data, 0, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay error = %v, want ErrCorrupt", err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open error = %v, want ErrCorrupt", err)
	}
}

func TestReplayRejectsGapAndLateStart(t *testing.T) {
	var data []byte
	data = appendRecord(data, 1, testBatch(1))
	data = appendRecord(data, 3, testBatch(3)) // gap: 2 missing
	if _, err := Replay(data, 0, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("gap error = %v, want ErrCorrupt", err)
	}

	late := appendRecord(nil, 7, testBatch(7))
	if _, err := Replay(late, 2, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("late-start error = %v, want ErrCorrupt", err)
	}
	// Scan has no start constraint: a compacted log beginning at 7 is fine.
	if st, err := Scan(late); err != nil || st.Replayed != 1 || st.LastSeq != 7 {
		t.Fatalf("Scan = %+v, %v", st, err)
	}
}

func TestSetFloorPinsEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l.Close() }()
	l.SetFloor(5)
	if err := l.Append(7, testBatch(7)); !errors.Is(err, ErrSequence) {
		t.Fatalf("append past floor = %v, want ErrSequence", err)
	}
	if err := l.Append(6, testBatch(6)); err != nil {
		t.Fatal(err)
	}
}

func TestCompactTo(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 10)
	before := l.Size()
	if err := l.CompactTo(6); err != nil {
		t.Fatal(err)
	}
	if l.Size() >= before {
		t.Fatalf("size after compact = %d, want < %d", l.Size(), before)
	}
	// The floor is unchanged: appends continue from 10.
	appendN(t, l, 11, 12)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	st, err := Replay(data, 6, func(r Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 6 || st.Skipped != 0 {
		t.Fatalf("post-compact stats = %+v", st)
	}
	for i, s := range seqs {
		if s != uint64(7+i) {
			t.Fatalf("seqs = %v", seqs)
		}
	}
}

func TestCompactToAll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 5)
	if err := l.CompactTo(5); err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("size = %d, want 0", l.Size())
	}
	appendN(t, l, 6, 6)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// countingFS counts fsync calls to verify the sync policies.
type countingFS struct {
	FS
	syncs int
}

type countingFile struct {
	File
	fs *countingFS
}

func (c *countingFS) OpenAppend(path string) (File, error) {
	f, err := c.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &countingFile{File: f, fs: c}, nil
}

func (f *countingFile) Sync() error {
	f.fs.syncs++
	return f.File.Sync()
}

func TestSyncPolicies(t *testing.T) {
	cases := []struct {
		name    string
		opts    Options
		appends int
		want    int // fsyncs during the appends (before Close)
	}{
		{"batch", Options{Sync: SyncEveryBatch}, 6, 6},
		{"interval", Options{Sync: SyncInterval, Interval: 3}, 6, 2},
		{"none", Options{Sync: SyncNone}, 6, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := &countingFS{FS: OSFS{}}
			tc.opts.FS = fs
			l, err := Open(t.TempDir(), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 1, tc.appends)
			if fs.syncs != tc.want {
				t.Fatalf("syncs during appends = %d, want %d", fs.syncs, tc.want)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			// Close flushes whatever was pending, exactly once when needed.
			if tc.want == tc.appends && fs.syncs != tc.want {
				t.Fatalf("Close re-synced a clean log: %d", fs.syncs)
			}
		})
	}
}

// failFS fails every write after the first n bytes, modeling a write error
// that leaves a torn record in the file.
type failFS struct {
	FS
	budget int
}

type failFile struct {
	File
	fs *failFS
}

func (f *failFS) OpenAppend(path string) (File, error) {
	inner, err := f.FS.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &failFile{File: inner, fs: f}, nil
}

func (f *failFile) Write(p []byte) (int, error) {
	if f.fs.budget <= 0 {
		return 0, errors.New("failfs: write refused")
	}
	if len(p) <= f.fs.budget {
		f.fs.budget -= len(p)
		return f.File.Write(p)
	}
	n, _ := f.File.Write(p[:f.fs.budget])
	f.fs.budget = 0
	return n, errors.New("failfs: short write")
}

func TestBrokenLogLatchesAfterWriteFailure(t *testing.T) {
	dir := t.TempDir()
	full := recordSize(testBatch(1))
	fs := &failFS{FS: OSFS{}, budget: full + 10} // record 1 fits, record 2 tears
	l, err := Open(dir, Options{Sync: SyncNone, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, testBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, testBatch(2)); err == nil {
		t.Fatal("torn append did not error")
	}
	// Everything after the torn write must refuse: another append here would
	// bury the tear mid-log and make recovery impossible.
	if err := l.Append(3, testBatch(3)); err == nil {
		t.Fatal("append on broken log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync on broken log succeeded")
	}
	if err := l.CompactTo(1); err == nil {
		t.Fatal("compact on broken log succeeded")
	}

	// Reopening repairs the torn tail and the log is usable again.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	if l2.LastSeq() != 1 {
		t.Fatalf("LastSeq after repair = %d, want 1", l2.LastSeq())
	}
	appendN(t, l2, 2, 2)
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	for _, content := range []string{"first", "second longer content"} {
		if err := WriteFileAtomic(nil, path, func(w io.Writer) error {
			_, err := w.Write([]byte(content))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
		if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("temp file left behind: %v", err)
		}
	}
}

func TestClosedLogRefusesUse(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(1, testBatch(1)); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if err := l.Sync(); err == nil {
		t.Fatal("sync on closed log succeeded")
	}
}

func TestAppendedSizeMatchesBytesOnDisk(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 1; i <= 5; i++ {
		want += int64(AppendedSize(testBatch(i)))
		if err := l.Append(uint64(i), testBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Size() != want {
		t.Fatalf("Size = %d, want %d", l.Size(), want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, LogName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != want {
		t.Fatalf("file size = %d, want %d", fi.Size(), want)
	}
}
