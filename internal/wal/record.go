package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"

	"jetstream/internal/graph"
)

// Record framing. Each appended batch becomes one self-checking frame:
//
//	magic   [4]byte "JSWR"
//	seq     u64     monotonic batch sequence number (== graph version)
//	plen    u32     payload length in bytes
//	payload plen    canonical batch encoding (graph.AppendBatch)
//	crc     u64     CRC64/ECMA over everything above (magic through payload)
//
// The CRC covers the header too, so a bit flip anywhere in the frame —
// sequence number, length field, payload — is detected. The magic makes
// frames findable by scanning, which is how recovery distinguishes a torn
// tail (nothing valid follows the damage) from mid-log corruption (an intact
// frame follows it).
var recMagic = [4]byte{'J', 'S', 'W', 'R'}

const (
	recHeaderSize  = 4 + 8 + 4 // magic + seq + plen
	recTrailerSize = 8         // crc
	// minRecordSize is the smallest legal frame: an empty batch still
	// carries its two u32 counts.
	minRecordSize = recHeaderSize + 8 + recTrailerSize
	// maxPayload bounds a single record's payload; a plen beyond it is
	// corruption, not a real batch.
	maxPayload = 1 << 32
)

var recCRC = crc64.MakeTable(crc64.ECMA)

// ErrCorrupt is wrapped by recovery errors caused by damage in the middle of
// the log: an unreadable record with intact records after it, or a sequence
// discontinuity. Unlike a torn tail — which replay repairs by truncation —
// mid-log corruption means committed history is lost, and the only safe
// response is to refuse and surface the error.
var ErrCorrupt = errors.New("wal: corrupt log")

// Record is one decoded log entry.
type Record struct {
	// Seq is the batch sequence number: the graph version the batch
	// produced when it was first applied.
	Seq uint64
	// Off and Size locate the record's frame in the log file.
	Off  int64
	Size int
	// Batch is the decoded edge delta.
	Batch graph.Batch
}

// appendRecord appends the frame for (seq, b) to dst.
func appendRecord(dst []byte, seq uint64, b graph.Batch) []byte {
	start := len(dst)
	dst = append(dst, recMagic[:]...)
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], seq)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(graph.EncodedBatchSize(b)))
	dst = append(dst, hdr[:]...)
	dst = graph.AppendBatch(dst, b)
	var crc [8]byte
	binary.LittleEndian.PutUint64(crc[:], crc64.Checksum(dst[start:], recCRC))
	return append(dst, crc[:]...)
}

// recordSize returns the encoded frame size for batch b.
func recordSize(b graph.Batch) int {
	return recHeaderSize + graph.EncodedBatchSize(b) + recTrailerSize
}

// decodeRecord tries to decode one frame at the front of data. It returns
// ok=false when the bytes do not form a complete, checksum-valid frame —
// the caller decides whether that is a torn tail or corruption.
func decodeRecord(data []byte, off int64) (Record, bool) {
	if len(data) < minRecordSize || [4]byte(data[0:4]) != recMagic {
		return Record{}, false
	}
	seq := binary.LittleEndian.Uint64(data[4:])
	plen := binary.LittleEndian.Uint32(data[12:])
	if uint64(plen) > maxPayload {
		return Record{}, false
	}
	total := recHeaderSize + int(plen) + recTrailerSize
	if total > len(data) {
		return Record{}, false
	}
	body := data[:recHeaderSize+int(plen)]
	want := binary.LittleEndian.Uint64(data[recHeaderSize+int(plen):])
	if crc64.Checksum(body, recCRC) != want {
		return Record{}, false
	}
	b, n, err := graph.DecodeBatch(data[recHeaderSize : recHeaderSize+int(plen)])
	if err != nil || n != int(plen) {
		// The checksum passed but the payload is not a batch: a frame this
		// writer never produced.
		return Record{}, false
	}
	return Record{Seq: seq, Off: off, Size: total, Batch: b}, true
}

// anyIntactRecordAfter reports whether a checksum-valid frame starts at any
// byte offset > from. A CRC64-validated frame cannot plausibly arise from a
// torn partial write, so finding one past a decode failure proves the
// failure is in-place damage to committed history, not a torn tail.
func anyIntactRecordAfter(data []byte, from int) bool {
	for off := from + 1; off+minRecordSize <= len(data); off++ {
		if data[off] != recMagic[0] {
			continue
		}
		if _, ok := decodeRecord(data[off:], int64(off)); ok {
			return true
		}
	}
	return false
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Replayed counts records delivered to the callback.
	Replayed int
	// Skipped counts intact records at or below the starting sequence
	// (already covered by the snapshot the caller restored).
	Skipped int
	// ValidSize is the byte length of the intact log prefix; bytes past it
	// are a torn tail and must be truncated before appending resumes.
	ValidSize int64
	// Truncated reports whether a torn tail was found (ValidSize < input).
	Truncated bool
	// LastSeq is the sequence number of the last intact record, or the
	// caller's `after` when the log held none beyond it.
	LastSeq uint64
}

// Replay walks the framed records in data in order and calls fn for every
// intact record with Seq > after. Decoding stops cleanly at the first
// unreadable record when nothing intact follows it (a torn tail from a crash
// mid-append — the durable prefix is simply shorter); if an intact record
// does follow the damage, or the sequence numbers are discontiguous, Replay
// refuses with an error wrapping ErrCorrupt. The log's first record must sit
// at or below after+1: a log that starts past the snapshot's position has
// lost committed history, which is also corruption. A non-nil error from fn
// aborts the walk and is returned verbatim.
func Replay(data []byte, after uint64, fn func(Record) error) (ReplayStats, error) {
	return walk(data, after, true, fn)
}

// Scan validates data's framing without knowing a snapshot position: record
// integrity, torn-tail detection, and sequence contiguity between records,
// but no constraint on where the log starts (a compacted log legitimately
// begins at an arbitrary sequence). Open uses it to find the append point.
func Scan(data []byte) (ReplayStats, error) {
	return walk(data, ^uint64(0), false, nil)
}

func walk(data []byte, after uint64, checkStart bool, fn func(Record) error) (ReplayStats, error) {
	st := ReplayStats{LastSeq: after}
	if !checkStart {
		st.LastSeq = 0
	}
	off := 0
	prev := uint64(0)
	first := true
	for off < len(data) {
		rec, ok := decodeRecord(data[off:], int64(off))
		if !ok {
			if anyIntactRecordAfter(data, off) {
				return st, fmt.Errorf("%w: unreadable record at byte %d with intact records after it", ErrCorrupt, off)
			}
			st.ValidSize = int64(off)
			st.Truncated = true
			return st, nil
		}
		if !first && rec.Seq != prev+1 {
			return st, fmt.Errorf("%w: sequence %d follows %d at byte %d", ErrCorrupt, rec.Seq, prev, off)
		}
		if first && checkStart && rec.Seq > after+1 {
			return st, fmt.Errorf("%w: log starts at sequence %d but the snapshot covers only %d", ErrCorrupt, rec.Seq, after)
		}
		first = false
		prev = rec.Seq
		switch {
		case checkStart && rec.Seq > after:
			if fn != nil {
				if err := fn(rec); err != nil {
					return st, err
				}
			}
			st.Replayed++
			st.LastSeq = rec.Seq
		case checkStart:
			st.Skipped++
		default:
			st.Replayed++
			st.LastSeq = rec.Seq
		}
		off += rec.Size
	}
	st.ValidSize = int64(off)
	return st, nil
}
