package sw

import (
	"fmt"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
)

// KickStarter re-implements the trimming-based incremental computation of
// Vora et al. for monotonic (selective) algorithms, the paper's software
// comparator for SSSP/SSWP/BFS/CC. It is a synchronous (BSP) system:
//
//   - Deletions conservatively tag the target of *every* deleted edge (the
//     batch is processed concurrently, so targets cannot cheaply be proven
//     safe individually) — this is why its trimmed-set sizes track the
//     deletion count in Fig 10, usually exceeding JetStream's source-exact
//     DAP resets.
//   - Tagged vertices are re-approximated by re-reading their whole
//     in-neighborhoods (the random-read storm §3.4 calls out); vertices
//     whose value actually regresses cascade the trimming to their recorded
//     dependence children.
//   - Reevaluation runs BSP push iterations with atomic relaxations and a
//     synchronization barrier per iteration.
//
// The implementation is operationally real — tests validate its results
// against the reference solvers after every batch — and its operation counts
// feed the CPU cost model.
type KickStarter struct {
	cpu CPUConfig
	alg algo.Algorithm
	g   *graph.CSR

	value []float64
	// parent records, per vertex, the contributor whose push set the current
	// value — the dependence-tree edge. Deletion tagging walks this tree.
	// (A pure value-match closure would be sound too, but floods equal-value
	// plateaus — whole components for CC; dependence levels, the other
	// classic choice, go stale on bottleneck-valued algorithms like SSWP
	// where a support's value can change without re-triggering dependents.)
	parent []graph.VertexID

	cost  Cost
	total Cost

	// LastResets is the number of vertices reset by the latest batch
	// (Fig 10's metric).
	LastResets int
}

// NewKickStarter builds the framework for a selective algorithm.
func NewKickStarter(g *graph.CSR, a algo.Algorithm, cpu CPUConfig) (*KickStarter, error) {
	if a.Class() != algo.Selective {
		return nil, fmt.Errorf("sw: KickStarter supports selective algorithms, not %s", a.Name())
	}
	k := &KickStarter{cpu: cpu, alg: a, g: g}
	k.value = make([]float64, g.NumVertices())
	k.parent = make([]graph.VertexID, g.NumVertices())
	return k, nil
}

// noParent marks vertices whose value has no recorded contributor (Identity
// or an initial-event seed).
const noParent = graph.VertexID(1<<32 - 1)

// Graph returns the current graph version.
func (k *KickStarter) Graph() *graph.CSR { return k.g }

// Values returns the live result vector.
func (k *KickStarter) Values() []float64 { return k.value }

// TotalCost returns accumulated operation counts.
func (k *KickStarter) TotalCost() Cost { return k.total }

// RunInitial computes the query from scratch with BSP push iterations.
// Returns the estimated wall-clock seconds.
func (k *KickStarter) RunInitial() float64 {
	k.cost = Cost{Batches: 1}
	for v := range k.value {
		k.value[v] = k.alg.Identity()
		k.parent[v] = noParent
	}
	var frontier []graph.VertexID
	for v := 0; v < k.g.NumVertices(); v++ {
		if seed, ok := k.alg.InitialEventFor(graph.VertexID(v), k.g); ok {
			k.value[v] = seed
			frontier = append(frontier, graph.VertexID(v))
		}
	}
	k.cost.SeqLines += uint64(k.g.NumVertices() / 8)
	k.bsp(frontier)
	sec := k.cost.Seconds(k.cpu)
	k.total.Add(k.cost)
	return sec
}

// ApplyBatch incrementally updates the results for g+b and returns the
// estimated seconds for the batch.
func (k *KickStarter) ApplyBatch(b graph.Batch) (float64, error) {
	ng, err := k.g.Apply(b)
	if err != nil {
		return 0, err
	}
	k.cost = Cost{Batches: 1}

	// --- Value-aware trimming. ---------------------------------------------
	// Every deletion target is tagged unconditionally: the batch is
	// processed concurrently and a target cannot cheaply be proven safe up
	// front, so KickStarter conservatively trims all of them (its Fig 10
	// reset counts track the deletion count). Each tagged vertex is
	// re-approximated from *safe* in-neighbors — vertices not currently
	// awaiting re-approximation; such contributions are achievable in the
	// new graph, so trimmed values never over-progress. Only a vertex whose
	// value actually regresses cascades the tag to its recorded dependence
	// children.
	tagged := make(map[graph.VertexID]bool)
	inWork := make(map[graph.VertexID]bool)
	orig := make(map[graph.VertexID]float64)
	var work, discovery []graph.VertexID

	push := func(v graph.VertexID) {
		if inWork[v] {
			return
		}
		if !tagged[v] {
			tagged[v] = true
			orig[v] = k.value[v]
			discovery = append(discovery, v)
		}
		inWork[v] = true
		work = append(work, v)
	}

	for _, de := range b.Deletes {
		k.cost.RandomReads += 2 // read endpoint states
		k.cost.Ops++
		push(de.Dst)
	}

	// Trimming runs against the new structure: deleted edges must not
	// contribute to re-approximations.
	k.g = ng

	guard := 50*k.g.NumVertices() + 100
	for len(work) > 0 && guard > 0 {
		guard--
		v := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[v] = false
		prev := k.value[v]

		best := k.alg.Identity()
		par := noParent
		if seed, ok := k.alg.InitialEventFor(v, k.g); ok {
			best = seed
		}
		// Two irregular reads per in-neighbor: value plus degree/weight
		// metadata (the random-read storm §3.4 calls out).
		k.cost.RandomReads += 2*uint64(k.g.InDegree(v)) + 1
		k.g.InEdges(v, func(u graph.VertexID, w graph.Weight) {
			k.cost.Ops++
			if inWork[u] {
				return // unsafe: u may still depend on a deleted edge
			}
			cand := k.alg.Propagate(u, k.value[u], w, k.g.OutDegree(u), k.g.OutWeightSum(u))
			if r := k.alg.Reduce(best, cand); r != best {
				best = r
				par = u
			}
		})
		if best == prev {
			k.parent[v] = par
			continue // value survives via an alternate support
		}
		k.value[v] = best
		k.parent[v] = par
		k.cost.Atomics++
		if k.alg.Reduce(prev, best) == prev {
			// Regressed: recorded dependence children must be re-examined.
			k.cost.RandomReads += 2 * uint64(k.g.OutDegree(v))
			k.g.OutEdges(v, func(w graph.VertexID, _ graph.Weight) {
				k.cost.Ops++
				if k.parent[w] == v {
					push(w)
				}
			})
		}
	}
	if guard == 0 {
		// Pathological oscillation: fall back to the sound full reset of
		// every tagged vertex.
		for v := range tagged {
			k.value[v] = k.alg.Identity()
			k.parent[v] = noParent
		}
	}
	k.LastResets = len(tagged)

	// --- Final safe approximation + BSP reevaluation. -----------------------
	// Vertices whose value changed get one full pull over their current
	// in-neighborhood (all values are safe now — interior vertices may have
	// skipped in-work neighbors during trimming), then synchronous push
	// iterations propagate the remaining corrections with a barrier per
	// round.
	var frontier []graph.VertexID
	for _, v := range discovery { // discovery order keeps runs deterministic
		if k.value[v] != orig[v] || guard == 0 {
			k.pull(v)
			frontier = append(frontier, v)
		}
	}
	for _, e := range b.Inserts {
		k.cost.RandomReads += 2
		k.cost.Atomics++
		cand := k.alg.Propagate(e.Src, k.value[e.Src], e.Weight,
			ng.OutDegree(e.Src), ng.OutWeightSum(e.Src))
		if k.improve(e.Dst, cand, e.Src) {
			frontier = append(frontier, e.Dst)
		}
	}
	k.bsp(frontier)

	sec := k.cost.Seconds(k.cpu)
	k.total.Add(k.cost)
	return sec, nil
}

// pull rebuilds v's value from its full current in-neighborhood and its
// initial event; used for the final safe approximation.
func (k *KickStarter) pull(v graph.VertexID) {
	best := k.alg.Identity()
	par := noParent
	if seed, ok := k.alg.InitialEventFor(v, k.g); ok {
		best = seed
	}
	k.cost.RandomReads += 2*uint64(k.g.InDegree(v)) + 1
	k.g.InEdges(v, func(u graph.VertexID, w graph.Weight) {
		k.cost.Ops++
		cand := k.alg.Propagate(u, k.value[u], w, k.g.OutDegree(u), k.g.OutWeightSum(u))
		if r := k.alg.Reduce(best, cand); r != best {
			best = r
			par = u
		}
	})
	k.value[v] = best
	k.parent[v] = par
	k.cost.Atomics++
}

// improve applies a candidate contribution to w; reports whether it won,
// recording the contributor as w's dependence parent.
func (k *KickStarter) improve(w graph.VertexID, cand float64, from graph.VertexID) bool {
	if r := k.alg.Reduce(k.value[w], cand); r != k.value[w] {
		k.value[w] = r
		k.parent[w] = from
		return true
	}
	return false
}

// bsp runs synchronous push iterations until the frontier drains, one
// barrier per iteration.
func (k *KickStarter) bsp(frontier []graph.VertexID) {
	inNext := make(map[graph.VertexID]bool)
	for len(frontier) > 0 {
		k.cost.Barriers++
		var next []graph.VertexID
		for _, v := range frontier {
			deg := k.g.OutDegree(v)
			wsum := k.g.OutWeightSum(v)
			// Each relaxation reads the target's value before the atomic
			// update: two irregular accesses per out-edge.
			k.cost.RandomReads += 2*uint64(deg) + 1
			k.g.OutEdges(v, func(w graph.VertexID, ew graph.Weight) {
				k.cost.Atomics++
				cand := k.alg.Propagate(v, k.value[v], ew, deg, wsum)
				if k.improve(w, cand, v) && !inNext[w] {
					inNext[w] = true
					next = append(next, w)
				}
			})
		}
		frontier = next
		for w := range inNext {
			delete(inNext, w)
		}
	}
}
