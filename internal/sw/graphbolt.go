package sw

import (
	"fmt"
	"math"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
)

// GraphBolt re-implements the dependency-driven synchronous refinement of
// Mariappan & Vora for accumulative algorithms, the paper's software
// comparator for incremental PageRank and Adsorption. It is a BSP system
// that, after a batch of mutations, iteratively *pulls* fresh aggregation
// values for the affected vertex set — re-reading every in-neighbor of every
// affected vertex each iteration — and expands the set along out-edges until
// the values stabilize. It additionally maintains per-iteration dependency
// metadata spanning the whole vertex set, which is the fixed per-batch cost
// that dominates at small batch sizes (paper Fig 13's flat GraphBolt curve).
type GraphBolt struct {
	cpu CPUConfig
	alg algo.Algorithm
	g   *graph.CSR

	value []float64
	tol   float64

	cost  Cost
	total Cost

	// LastIterations is the refinement iteration count of the latest batch.
	LastIterations int
}

// NewGraphBolt builds the framework for an accumulative algorithm.
func NewGraphBolt(g *graph.CSR, a algo.Algorithm, cpu CPUConfig) (*GraphBolt, error) {
	if a.Class() != algo.Accumulative {
		return nil, fmt.Errorf("sw: GraphBolt supports accumulative algorithms, not %s", a.Name())
	}
	tol := a.Epsilon()
	if tol <= 0 {
		tol = 1e-9
	}
	return &GraphBolt{
		cpu:   cpu,
		alg:   a,
		g:     g,
		value: make([]float64, g.NumVertices()),
		tol:   tol,
	}, nil
}

// Graph returns the current graph version.
func (gb *GraphBolt) Graph() *graph.CSR { return gb.g }

// Values returns the live result vector.
func (gb *GraphBolt) Values() []float64 { return gb.value }

// TotalCost returns accumulated operation counts.
func (gb *GraphBolt) TotalCost() Cost { return gb.total }

// pullValue recomputes v's aggregation from its full in-neighborhood:
// value(v) = seed(v) + sum over in-edges of the neighbor's contribution.
func (gb *GraphBolt) pullValue(v graph.VertexID) float64 {
	seed, _ := gb.alg.InitialEventFor(v, gb.g)
	sum := seed
	// Value plus degree/weight metadata per in-neighbor: two irregular reads.
	gb.cost.RandomReads += 2*uint64(gb.g.InDegree(v)) + 1
	gb.g.InEdges(v, func(u graph.VertexID, w graph.Weight) {
		gb.cost.Ops++
		sum += gb.alg.Propagate(u, gb.value[u], w, gb.g.OutDegree(u), gb.g.OutWeightSum(u))
	})
	return sum
}

// RunInitial computes the query from scratch with synchronous pull
// iterations; returns estimated seconds.
func (gb *GraphBolt) RunInitial() float64 {
	gb.cost = Cost{Batches: 1}
	for v := range gb.value {
		gb.value[v] = gb.alg.Identity()
	}
	n := gb.g.NumVertices()
	next := make([]float64, n)
	for iter := 0; iter < 10000; iter++ {
		gb.cost.Barriers++
		gb.cost.SeqLines += uint64(n) / 8 // iteration frontier metadata
		delta := 0.0
		for v := 0; v < n; v++ {
			next[v] = gb.pullValue(graph.VertexID(v))
			if d := math.Abs(next[v] - gb.value[v]); d > delta {
				delta = d
			}
		}
		copy(gb.value, next)
		if delta < gb.tol {
			break
		}
	}
	sec := gb.cost.Seconds(gb.cpu)
	gb.total.Add(gb.cost)
	return sec
}

// ApplyBatch incrementally refines the results for g+b; returns estimated
// seconds.
func (gb *GraphBolt) ApplyBatch(b graph.Batch) (float64, error) {
	ng, err := gb.g.Apply(b)
	if err != nil {
		return 0, err
	}
	gb.cost = Cost{Batches: 1}

	// Dependency-structure maintenance: GraphBolt refreshes per-iteration
	// aggregation metadata across the vertex and edge space when the graph
	// mutates — a cost proportional to the graph, not the batch.
	gb.cost.SeqLines += uint64(gb.g.NumVertices()+gb.g.NumEdges()) / 8

	// Seed the affected set: endpoints of every mutation, plus all
	// out-neighbors of degree-changed vertices (their per-edge contribution
	// scaling changed).
	affected := make(map[graph.VertexID]bool)
	dirtySrc := make(map[graph.VertexID]bool)
	for _, e := range b.Deletes {
		affected[e.Dst] = true
		dirtySrc[e.Src] = true
	}
	for _, e := range b.Inserts {
		affected[e.Dst] = true
		dirtySrc[e.Src] = true
	}
	gb.g = ng
	for u := range dirtySrc {
		gb.cost.RandomReads += uint64(ng.OutDegree(u))
		ng.OutEdges(u, func(w graph.VertexID, _ graph.Weight) {
			affected[w] = true
		})
	}

	// Synchronous refinement: pull-recompute the affected set; vertices
	// whose value moves beyond tolerance push their out-neighbors into the
	// next iteration's set.
	next := make(map[graph.VertexID]float64, len(affected))
	gb.LastIterations = 0
	for iter := 0; iter < 10000 && len(affected) > 0; iter++ {
		gb.LastIterations++
		gb.cost.Barriers++
		// Each refinement pass walks the stored per-iteration dependency
		// structures, which span the vertex and edge space.
		gb.cost.SeqLines += uint64(gb.g.NumVertices()+gb.g.NumEdges()) / 8
		for v := range affected {
			next[v] = gb.pullValue(v)
		}
		expand := make(map[graph.VertexID]bool)
		for v, nv := range next {
			moved := math.Abs(nv-gb.value[v]) > gb.tol
			gb.value[v] = nv
			gb.cost.Atomics++
			if moved {
				gb.cost.RandomReads += uint64(gb.g.OutDegree(v))
				gb.g.OutEdges(v, func(w graph.VertexID, _ graph.Weight) {
					expand[w] = true
				})
			}
		}
		for v := range next {
			delete(next, v)
		}
		affected = expand
	}

	sec := gb.cost.Seconds(gb.cpu)
	gb.total.Add(gb.cost)
	return sec, nil
}
