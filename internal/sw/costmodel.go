// Package sw implements the software streaming-graph comparators of the
// evaluation: KickStarter (trimming-based incremental computation for
// monotonic algorithms, Vora et al. ASPLOS'17) and GraphBolt
// (dependency-driven synchronous refinement for accumulative algorithms,
// Mariappan & Vora EuroSys'19), together with the CPU cost model that
// converts their measured operation counts into wall-clock estimates for the
// paper's 36-core Xeon configuration (Table 1).
//
// Both baselines are *operationally* faithful: they compute real results
// (tests validate them against the reference solvers) and their operation
// counts — random reads, atomics, per-iteration barriers — are measured, not
// assumed. Only the conversion constants below are calibrated; every trend
// (batch size, composition, per-graph variation) emerges from the
// algorithms' actual behaviour.
package sw

// CPUConfig describes the software platform (paper Table 1: 36-core Intel
// Core i9 @ 3 GHz, 24 MB L2, 4 DDR4-19 GB/s channels) plus the per-operation
// cost constants of the model.
type CPUConfig struct {
	Cores int

	// Costs in nanoseconds. Parallel work divides by Cores; barriers and
	// per-batch overheads do not.
	RandomReadNs float64 // DRAM-bound irregular access (vertex/edge lookups)
	SeqLineNs    float64 // streaming access per 64-byte line
	CachedNs     float64 // L2-resident access
	AtomicNs     float64 // atomic CAS/min on shared state
	OpNs         float64 // simple ALU operation

	BarrierNs       float64 // per BSP-iteration synchronization barrier
	BatchOverheadNs float64 // per-batch fixed framework cost (snapshotting,
	// frontier allocation, dependence-structure maintenance entry)
}

// DefaultCPUConfig returns the calibrated model. The constants are ordinary
// microarchitectural magnitudes (≈70 ns DRAM access, ≈15 µs barrier on 36
// threads); they were fixed once so that the 100 K-batch speedups land in
// the bands Table 3 reports, and are never tuned per experiment.
func DefaultCPUConfig() CPUConfig {
	return CPUConfig{
		Cores: 36,
		// Unloaded DRAM latency is ~70ns; under 36 threads of dependent
		// pointer-chasing on four channels (bank conflicts, TLB misses,
		// queueing) the effective per-access cost roughly doubles.
		RandomReadNs:    140,
		SeqLineNs:       4,
		CachedNs:        1.5,
		AtomicNs:        25,
		OpNs:            0.6,
		BarrierNs:       15_000,
		BatchOverheadNs: 150_000,
	}
}

// ScaleSerial divides the serial (non-parallelizable) constants — barriers
// and per-batch framework overhead — by f. The experiment harness runs
// ~100x-scaled workloads; at paper scale those serial costs amortize over
// proportionally more parallel work, so the harness scales them by the same
// factor to keep the hardware/software ratio comparable across scales.
func (c CPUConfig) ScaleSerial(f float64) CPUConfig {
	c.BarrierNs /= f
	c.BatchOverheadNs /= f
	return c
}

// Cost accumulates operation counts for one batch (or one initial run).
type Cost struct {
	RandomReads uint64
	SeqLines    uint64
	Cached      uint64
	Atomics     uint64
	Ops         uint64
	Barriers    uint64
	Batches     uint64
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.RandomReads += o.RandomReads
	c.SeqLines += o.SeqLines
	c.Cached += o.Cached
	c.Atomics += o.Atomics
	c.Ops += o.Ops
	c.Barriers += o.Barriers
	c.Batches += o.Batches
}

// Seconds converts the counts to an estimated wall-clock time under cfg.
func (c Cost) Seconds(cfg CPUConfig) float64 {
	parallel := float64(c.RandomReads)*cfg.RandomReadNs +
		float64(c.SeqLines)*cfg.SeqLineNs +
		float64(c.Cached)*cfg.CachedNs +
		float64(c.Atomics)*cfg.AtomicNs +
		float64(c.Ops)*cfg.OpNs
	serial := float64(c.Barriers)*cfg.BarrierNs +
		float64(c.Batches)*cfg.BatchOverheadNs
	return (parallel/float64(cfg.Cores) + serial) / 1e9
}
