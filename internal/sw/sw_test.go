package sw

import (
	"testing"
	"testing/quick"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
	"jetstream/internal/stream"
)

func TestCostModelSeconds(t *testing.T) {
	cfg := DefaultCPUConfig()
	var c Cost
	if c.Seconds(cfg) != 0 {
		t.Error("empty cost should be 0 seconds")
	}
	c.RandomReads = 36_000_000 // 36M * 140ns / 36 cores = 140 ms
	got := c.Seconds(cfg)
	if got < 0.139 || got > 0.141 {
		t.Errorf("seconds = %v, want ~0.140", got)
	}
	// Barriers are serial: they do not divide by cores.
	c2 := Cost{Barriers: 1000}
	if s := c2.Seconds(cfg); s < 0.0149 || s > 0.0151 {
		t.Errorf("barrier seconds = %v, want ~0.015", s)
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{RandomReads: 1, SeqLines: 2, Cached: 3, Atomics: 4, Ops: 5, Barriers: 6, Batches: 7}
	b := a
	b.Add(a)
	if b.RandomReads != 2 || b.SeqLines != 4 || b.Cached != 6 || b.Atomics != 8 ||
		b.Ops != 10 || b.Barriers != 12 || b.Batches != 14 {
		t.Errorf("Add broken: %+v", b)
	}
}

func TestKickStarterInitialMatchesReference(t *testing.T) {
	for _, name := range []string{"sssp", "sswp", "bfs", "cc"} {
		a, _ := algo.New(name, 0, 0)
		g := graph.RMAT(graph.RMATConfig{Vertices: 300, Edges: 2400, Seed: 3})
		if algo.NeedsSymmetric(a) {
			g = graph.Symmetrize(g)
		}
		k, err := NewKickStarter(g, a, DefaultCPUConfig())
		if err != nil {
			t.Fatal(err)
		}
		sec := k.RunInitial()
		if sec <= 0 {
			t.Errorf("%s: non-positive initial time %v", name, sec)
		}
		if d := algo.MaxAbsDiff(k.Values(), algo.Reference(a, g)); d != 0 {
			t.Errorf("%s: initial run differs from reference by %v", name, d)
		}
	}
}

func TestKickStarterStreamingMatchesReference(t *testing.T) {
	for _, name := range []string{"sssp", "sswp", "bfs", "cc"} {
		t.Run(name, func(t *testing.T) {
			a, _ := algo.New(name, 0, 0)
			g := graph.RMAT(graph.RMATConfig{Vertices: 250, Edges: 2000, Seed: 5})
			sym := algo.NeedsSymmetric(a)
			if sym {
				g = graph.Symmetrize(g)
			}
			k, _ := NewKickStarter(g, a, DefaultCPUConfig())
			k.RunInitial()
			gen := stream.NewGenerator(stream.Config{BatchSize: 50, InsertFrac: 0.5, Symmetric: sym, Seed: 7})
			for i := 0; i < 8; i++ {
				sec, err := k.ApplyBatch(gen.Next(k.Graph()))
				if err != nil {
					t.Fatal(err)
				}
				if sec <= 0 {
					t.Fatal("non-positive batch time")
				}
				if d := algo.MaxAbsDiff(k.Values(), algo.Reference(a, k.Graph())); d != 0 {
					t.Fatalf("batch %d: diverged by %v", i, d)
				}
			}
		})
	}
}

func TestKickStarterRejectsAccumulative(t *testing.T) {
	g := graph.MustBuild(2, nil)
	if _, err := NewKickStarter(g, algo.NewPageRank(0), DefaultCPUConfig()); err == nil {
		t.Error("accumulative algorithm accepted")
	}
}

func TestKickStarterCountsResets(t *testing.T) {
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 400, Edges: 3200, Seed: 9})
	k, _ := NewKickStarter(g, a, DefaultCPUConfig())
	k.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0, Seed: 11})
	if _, err := k.ApplyBatch(gen.Next(k.Graph())); err != nil {
		t.Fatal(err)
	}
	if k.LastResets == 0 {
		t.Error("delete-only batch reset no vertices")
	}
	if k.TotalCost().Barriers == 0 || k.TotalCost().RandomReads == 0 {
		t.Error("cost counters not populated")
	}
}

func TestGraphBoltInitialMatchesReference(t *testing.T) {
	for _, name := range []string{"pagerank", "adsorption"} {
		a, _ := algo.New(name, 0, 1e-10)
		g := graph.RMAT(graph.RMATConfig{Vertices: 250, Edges: 2000, Seed: 13})
		gb, err := NewGraphBolt(g, a, DefaultCPUConfig())
		if err != nil {
			t.Fatal(err)
		}
		gb.RunInitial()
		if d := algo.MaxAbsDiff(gb.Values(), algo.Reference(a, g)); d > 1e-7 {
			t.Errorf("%s: initial run differs by %v", name, d)
		}
	}
}

func TestGraphBoltStreamingMatchesReference(t *testing.T) {
	for _, name := range []string{"pagerank", "adsorption"} {
		t.Run(name, func(t *testing.T) {
			a, _ := algo.New(name, 0, 1e-10)
			g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1600, Seed: 15})
			gb, _ := NewGraphBolt(g, a, DefaultCPUConfig())
			gb.RunInitial()
			gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.6, Seed: 17})
			for i := 0; i < 6; i++ {
				sec, err := gb.ApplyBatch(gen.Next(gb.Graph()))
				if err != nil {
					t.Fatal(err)
				}
				if sec <= 0 {
					t.Fatal("non-positive batch time")
				}
				tol := a.Epsilon() * 10 * float64(gb.Graph().NumEdges()) * float64(i+1)
				if d := algo.MaxAbsDiff(gb.Values(), algo.Reference(a, gb.Graph())); d > tol {
					t.Fatalf("batch %d: diverged by %v (tol %v)", i, d, tol)
				}
			}
		})
	}
}

func TestGraphBoltRejectsSelective(t *testing.T) {
	g := graph.MustBuild(2, nil)
	if _, err := NewGraphBolt(g, algo.NewSSSP(0), DefaultCPUConfig()); err == nil {
		t.Error("selective algorithm accepted")
	}
}

func TestGraphBoltIterationsTracked(t *testing.T) {
	a := algo.NewPageRank(1e-9)
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1600, Seed: 19})
	gb, _ := NewGraphBolt(g, a, DefaultCPUConfig())
	gb.RunInitial()
	gen := stream.NewGenerator(stream.Config{BatchSize: 30, InsertFrac: 0.5, Seed: 21})
	if _, err := gb.ApplyBatch(gen.Next(gb.Graph())); err != nil {
		t.Fatal(err)
	}
	if gb.LastIterations == 0 {
		t.Error("no refinement iterations recorded")
	}
}

func TestSmallBatchesHaveFloorCost(t *testing.T) {
	// The Fig 13 mechanism: software per-batch time flattens as batches
	// shrink because barriers and per-batch overheads do not scale down.
	a := algo.NewSSSP(0)
	g := graph.RMAT(graph.RMATConfig{Vertices: 2000, Edges: 16000, Seed: 23})
	timeFor := func(size int) float64 {
		k, _ := NewKickStarter(g, a, DefaultCPUConfig())
		k.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: size, InsertFrac: 0.7, Seed: 25})
		sec, err := k.ApplyBatch(gen.Next(k.Graph()))
		if err != nil {
			t.Fatal(err)
		}
		return sec
	}
	big, small := timeFor(1000), timeFor(10)
	if small <= 0 {
		t.Fatal("zero cost for small batch")
	}
	// A 100x smaller batch must cost much more than 1/100th the time.
	if small*20 < big {
		t.Errorf("small batch %.3gs vs big %.3gs: no fixed-cost floor", small, big)
	}
}

func TestQuickKickStarterAlwaysExact(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.ErdosRenyi(70, 350, 16, seed)
		k, _ := NewKickStarter(g, algo.NewSSSP(0), DefaultCPUConfig())
		k.RunInitial()
		gen := stream.NewGenerator(stream.Config{BatchSize: 20, InsertFrac: 0.4, Seed: seed ^ 0x77})
		for i := 0; i < 3; i++ {
			if _, err := k.ApplyBatch(gen.Next(k.Graph())); err != nil {
				return false
			}
			if algo.MaxAbsDiff(k.Values(), algo.Dijkstra(k.Graph(), 0)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
