package graph

import (
	"fmt"
	"sort"
)

// Build constructs a CSR over n vertices from an edge list. Duplicate (src,
// dst) pairs are an error: the streaming model treats the pair as the edge's
// identity (a weight change is a delete followed by an insert, paper §2.1).
// Self-loops are permitted; endpoints must be < n.
func Build(n int, edges []Edge) (*CSR, error) {
	for _, e := range edges {
		if int(e.Src) >= n || int(e.Dst) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for %d vertices", e.Src, e.Dst, n)
		}
	}
	es := append([]Edge(nil), edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
	for i := 1; i < len(es); i++ {
		if es[i].Src == es[i-1].Src && es[i].Dst == es[i-1].Dst {
			return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", es[i].Src, es[i].Dst)
		}
	}
	return buildSorted(n, es), nil
}

// MustBuild is Build for known-good inputs (generators, tests).
func MustBuild(n int, edges []Edge) *CSR {
	g, err := Build(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// buildSorted builds from edges already sorted by (src, dst) and deduplicated.
func buildSorted(n int, es []Edge) *CSR {
	g := &CSR{
		n:            n,
		outPtr:       make([]uint64, n+1),
		outDst:       make([]VertexID, len(es)),
		outW:         make([]Weight, len(es)),
		inPtr:        make([]uint64, n+1),
		inSrc:        make([]VertexID, len(es)),
		inW:          make([]Weight, len(es)),
		outWeightSum: make([]float64, n),
	}
	for _, e := range es {
		g.outPtr[e.Src+1]++
		g.inPtr[e.Dst+1]++
		g.outWeightSum[e.Src] += e.Weight
	}
	for v := 0; v < n; v++ {
		g.outPtr[v+1] += g.outPtr[v]
		g.inPtr[v+1] += g.inPtr[v]
	}
	for i, e := range es {
		g.outDst[i] = e.Dst
		g.outW[i] = e.Weight
	}
	// Fill the in-index with a counting pass; a per-vertex cursor tracks the
	// next free slot. Sources arrive in sorted order because es is sorted by
	// src, so each in-adjacency ends up sorted by source automatically.
	cursor := make([]uint64, n)
	copy(cursor, g.inPtr[:n])
	for _, e := range es {
		i := cursor[e.Dst]
		g.inSrc[i] = e.Src
		g.inW[i] = e.Weight
		cursor[e.Dst]++
	}
	// Symmetry count: the edge set is closed under reversal iff every vertex's
	// out-neighbor list equals its in-neighbor list — both are sorted here
	// (es is sorted by src then dst, and the in-index fill above preserves
	// source order), so an elementwise compare decides it in O(V+E). The full
	// per-vertex count (not just a bit) lets the delta mutation layer maintain
	// symmetry incrementally: a batch only changes the asymmetric-vertex count
	// at the vertices it touches.
	g.m = len(es)
	for v := 0; v < n; v++ {
		lo, hi := g.outPtr[v], g.outPtr[v+1]
		ilo, ihi := g.inPtr[v], g.inPtr[v+1]
		if !segIDsEqual(g.outDst[lo:hi], g.inSrc[ilo:ihi]) {
			g.asymCount++
		}
	}
	return g
}

// Symmetrize returns a graph with every edge mirrored (u,v) and (v,u) with
// the same weight. Connected Components interprets the graph as undirected;
// the engines propagate along out-edges only, so CC workloads are symmetrized
// first. Existing reverse edges keep their weight.
func Symmetrize(g *CSR) *CSR {
	type key struct{ u, v VertexID }
	set := make(map[key]Weight, g.NumEdges()*2)
	for _, e := range g.Edges() {
		set[key{e.Src, e.Dst}] = e.Weight
	}
	for _, e := range g.Edges() {
		if _, ok := set[key{e.Dst, e.Src}]; !ok {
			set[key{e.Dst, e.Src}] = e.Weight
		}
	}
	es := make([]Edge, 0, len(set))
	for k, w := range set {
		es = append(es, Edge{k.u, k.v, w})
	}
	// The set is deduplicated by construction and every endpoint comes from
	// an existing CSR, so build directly from the sorted list — no error (or
	// panic) path exists.
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
	return buildSorted(g.NumVertices(), es)
}

// SymmetrizeEdges mirrors a raw edge list without building a CSR; the
// streaming layer uses it to keep update batches consistent with a
// symmetrized base graph.
func SymmetrizeEdges(edges []Edge) []Edge {
	type key struct{ u, v VertexID }
	set := make(map[key]Weight, len(edges)*2)
	for _, e := range edges {
		set[key{e.Src, e.Dst}] = e.Weight
	}
	for _, e := range edges {
		if _, ok := set[key{e.Dst, e.Src}]; !ok {
			set[key{e.Dst, e.Src}] = e.Weight
		}
	}
	out := make([]Edge, 0, len(set))
	for k, w := range set {
		out = append(out, Edge{k.u, k.v, w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}
