package graph

import (
	"fmt"
	"math"
	"strings"
)

// IngestPolicy selects how the public streaming boundaries (System.ApplyBatch,
// host.Session.Stream) treat a batch that fails validation. The streaming
// model treats the update feed as untrusted and unending: a poisoned batch
// must degrade gracefully, never crash the standing query mid-stream.
type IngestPolicy int

const (
	// Strict rejects a batch containing any invalid update with a typed
	// *BatchError and leaves the query state untouched. This is the default.
	Strict IngestPolicy = iota
	// Repair drops the invalid updates, applies the surviving ones, and
	// reports the drops through stats.Counters (UpdatesDropped,
	// BatchesRepaired).
	Repair
)

func (p IngestPolicy) String() string {
	switch p {
	case Strict:
		return "strict"
	case Repair:
		return "repair"
	default:
		return fmt.Sprintf("IngestPolicy(%d)", int(p))
	}
}

// IssueKind classifies one invalid update within a batch.
type IssueKind int

const (
	// IssueOutOfRange marks an endpoint >= the graph's vertex count.
	IssueOutOfRange IssueKind = iota
	// IssueBadWeight marks an insert whose weight is NaN, infinite or
	// non-positive.
	IssueBadWeight
	// IssueDuplicate marks a repeated (src,dst) pair within the inserts or
	// within the deletes of one batch.
	IssueDuplicate
	// IssueMissingDelete marks a delete naming an edge absent from the graph.
	IssueMissingDelete
	// IssueExistingInsert marks an insert of an edge already present (and not
	// deleted by the same batch — delete+insert of one pair is the paper's
	// weight-modification idiom and stays legal).
	IssueExistingInsert
)

func (k IssueKind) String() string {
	switch k {
	case IssueOutOfRange:
		return "out-of-range endpoint"
	case IssueBadWeight:
		return "bad weight"
	case IssueDuplicate:
		return "duplicate pair"
	case IssueMissingDelete:
		return "delete of absent edge"
	case IssueExistingInsert:
		return "insert of present edge"
	default:
		return fmt.Sprintf("IssueKind(%d)", int(k))
	}
}

// BatchIssue describes one invalid update found during validation.
type BatchIssue struct {
	Kind   IssueKind
	Edge   Edge
	Delete bool // the offending update was a delete
}

func (i BatchIssue) String() string {
	op := "insert"
	if i.Delete {
		op = "delete"
	}
	return fmt.Sprintf("%s (%d,%d,w=%g): %s", op, i.Edge.Src, i.Edge.Dst, i.Edge.Weight, i.Kind)
}

// BatchError is the typed rejection returned by the Strict ingest policy.
type BatchError struct {
	Issues []BatchIssue
}

func (e *BatchError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph: batch rejected: %d invalid update(s)", len(e.Issues))
	for i, is := range e.Issues {
		if i == 4 {
			fmt.Fprintf(&b, "; ... %d more", len(e.Issues)-i)
			break
		}
		fmt.Fprintf(&b, "; %s", is)
	}
	return b.String()
}

// SanitizeBatch audits b against g and returns a copy containing only the
// valid updates, plus the list of issues found. The returned batch always
// applies cleanly to g (the Repair ingest policy feeds it straight to the
// engine). Delete weights are normalized to the stored edge weight — the
// (src,dst) pair is the edge's identity (paper §2.1), and the carried weight
// feeds the VAP contribution computation, so a stale or corrupted delete
// weight must not poison recovery. b itself is never modified.
func (g *CSR) SanitizeBatch(b Batch) (Batch, []BatchIssue) {
	var issues []BatchIssue
	var out Batch

	type key struct{ u, v VertexID }
	keptDel := make(map[key]bool, len(b.Deletes))
	for _, e := range b.Deletes {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			issues = append(issues, BatchIssue{IssueOutOfRange, e, true})
			continue
		}
		k := key{e.Src, e.Dst}
		if keptDel[k] {
			issues = append(issues, BatchIssue{IssueDuplicate, e, true})
			continue
		}
		w, ok := g.HasEdge(e.Src, e.Dst)
		if !ok {
			issues = append(issues, BatchIssue{IssueMissingDelete, e, true})
			continue
		}
		keptDel[k] = true
		out.Deletes = append(out.Deletes, Edge{Src: e.Src, Dst: e.Dst, Weight: w})
	}

	keptIns := make(map[key]bool, len(b.Inserts))
	for _, e := range b.Inserts {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			issues = append(issues, BatchIssue{IssueOutOfRange, e, false})
			continue
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight <= 0 {
			issues = append(issues, BatchIssue{IssueBadWeight, e, false})
			continue
		}
		k := key{e.Src, e.Dst}
		if keptIns[k] {
			issues = append(issues, BatchIssue{IssueDuplicate, e, false})
			continue
		}
		if _, ok := g.HasEdge(e.Src, e.Dst); ok && !keptDel[k] {
			issues = append(issues, BatchIssue{IssueExistingInsert, e, false})
			continue
		}
		keptIns[k] = true
		out.Inserts = append(out.Inserts, e)
	}
	return out, issues
}

// ValidateBatch checks b against g and returns a *BatchError listing every
// invalid update, or nil when the batch is clean. It performs the same audit
// as SanitizeBatch without constructing the repaired copy's semantics: the
// Strict ingest policy uses it to reject a poisoned batch with the state
// untouched.
func (g *CSR) ValidateBatch(b Batch) error {
	_, issues := g.SanitizeBatch(b)
	if len(issues) == 0 {
		return nil
	}
	return &BatchError{Issues: issues}
}
