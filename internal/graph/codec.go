package graph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Canonical wire encoding of edges and batches, shared by every durable
// format in the module: the checkpoint payload (root checkpoint.go) and the
// write-ahead log records (internal/wal). One codec means a graph serialized
// by either layer deserializes identically in the other, and the fuzzers for
// both formats exercise the same decoder.
//
// An edge is 16 bytes, little-endian: u32 src, u32 dst, f64 weight. A batch
// is two u32 counts (inserts, deletes) followed by that many edges each; the
// encoding is self-delimiting, so a decoder knows exactly how many bytes a
// batch occupies.

// EdgeSize is the encoded size of one edge in bytes.
const EdgeSize = 16

// batchHeaderSize is the two u32 counts prefixing an encoded batch.
const batchHeaderSize = 8

// ErrShortCodec is wrapped by codec decode errors: the input does not contain
// a complete, internally consistent encoding. Callers distinguish "feed me
// more bytes / truncated" from other failures with errors.Is.
var ErrShortCodec = fmt.Errorf("graph: short or inconsistent encoding")

// PutEdge encodes e into dst, which must hold at least EdgeSize bytes.
func PutEdge(dst []byte, e Edge) {
	binary.LittleEndian.PutUint32(dst[0:], e.Src)
	binary.LittleEndian.PutUint32(dst[4:], e.Dst)
	binary.LittleEndian.PutUint64(dst[8:], math.Float64bits(e.Weight))
}

// GetEdge decodes the edge at the front of src, which must hold at least
// EdgeSize bytes.
func GetEdge(src []byte) Edge {
	return Edge{
		Src:    binary.LittleEndian.Uint32(src[0:]),
		Dst:    binary.LittleEndian.Uint32(src[4:]),
		Weight: math.Float64frombits(binary.LittleEndian.Uint64(src[8:])),
	}
}

// AppendBatch appends the encoding of b to dst and returns the extended
// slice.
func AppendBatch(dst []byte, b Batch) []byte {
	var hdr [batchHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(b.Inserts)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(b.Deletes)))
	dst = append(dst, hdr[:]...)
	var eb [EdgeSize]byte
	for _, e := range b.Inserts {
		PutEdge(eb[:], e)
		dst = append(dst, eb[:]...)
	}
	for _, e := range b.Deletes {
		PutEdge(eb[:], e)
		dst = append(dst, eb[:]...)
	}
	return dst
}

// EncodedBatchSize returns the exact encoded size of b in bytes.
func EncodedBatchSize(b Batch) int {
	return batchHeaderSize + EdgeSize*b.Size()
}

// DecodeBatch decodes one batch from the front of src and returns it with
// the number of bytes consumed. The counts are validated against the bytes
// actually present before anything is allocated, so arbitrary input can never
// provoke a huge allocation or a panic; a damaged or truncated encoding is
// rejected with an error wrapping ErrShortCodec.
func DecodeBatch(src []byte) (Batch, int, error) {
	if len(src) < batchHeaderSize {
		return Batch{}, 0, fmt.Errorf("%w: %d bytes, want at least %d", ErrShortCodec, len(src), batchHeaderSize)
	}
	nIns := binary.LittleEndian.Uint32(src[0:])
	nDel := binary.LittleEndian.Uint32(src[4:])
	need := uint64(batchHeaderSize) + EdgeSize*(uint64(nIns)+uint64(nDel))
	if need > uint64(len(src)) {
		return Batch{}, 0, fmt.Errorf("%w: batch of %d+%d edges needs %d bytes, have %d", ErrShortCodec, nIns, nDel, need, len(src))
	}
	b := Batch{}
	off := batchHeaderSize
	if nIns > 0 {
		b.Inserts = make([]Edge, nIns)
		for i := range b.Inserts {
			b.Inserts[i] = GetEdge(src[off:])
			off += EdgeSize
		}
	}
	if nDel > 0 {
		b.Deletes = make([]Edge, nDel)
		for i := range b.Deletes {
			b.Deletes[i] = GetEdge(src[off:])
			off += EdgeSize
		}
	}
	return b, off, nil
}
