package graph

import (
	"unsafe"

	"jetstream/internal/pad"
)

// inlineCapMax is the hard ceiling on inline neighbors per direction: the
// record below fits exactly one cache line with four id/weight pairs, so a
// low-degree vertex resolves its whole adjacency with a single line fill and
// zero pointer chases. DeltaConfig.InlineCap may choose any value in
// [0, inlineCapMax]; 0 disables the adaptive layout entirely.
const inlineCapMax = 4

// inlineSpilled marks a vertex whose adjacency lives in the slack slab — the
// record is a tombstone and the slab segment [outPtr[v], outPtr[v]+outLen[v])
// is authoritative. Any n ≤ inlineCapMax means the record itself is
// authoritative and the vertex's slab slots are dead (but still reserved:
// slackify sizes the slab identically with or without inline records, which
// is what makes inline↔slab migration an in-place copy in either direction
// and keeps EdgeOffset — the timing model's address base — layout-invariant).
const inlineSpilled = 0xFF

// inlineRec is one vertex's inline adjacency for one direction: up to
// inlineCapMax (id, weight) pairs plus the used count, padded to exactly one
// cache line so two vertices' records never share a line and one record
// never straddles two.
type inlineRec struct {
	ids [inlineCapMax]VertexID // 16 bytes
	ws  [inlineCapMax]Weight   // 32 bytes
	n   uint8                  // used count, or inlineSpilled
	_   [15]byte
}

// Compile-time: an inlineRec is exactly one cache line (see internal/pad).
const (
	_ = uint(pad.LineSize - unsafe.Sizeof(inlineRec{}))
	_ = uint(unsafe.Sizeof(inlineRec{}) - pad.LineSize)
)

// liveOut returns v's out-adjacency as stored by the live layout: the inline
// record when the vertex is inline, the slab segment otherwise. Callers must
// hold a live (unfrozen) version — frozen versions read through their undo
// snapshots in outSeg. The returned slices alias the graph's storage.
//
//jetlint:hotpath
func (g *CSR) liveOut(v VertexID) ([]VertexID, []Weight) {
	if g.outInl != nil {
		r := &g.outInl[v]
		if r.n != inlineSpilled {
			return r.ids[:r.n], r.ws[:r.n]
		}
	}
	lo := g.outPtr[v]
	hi := g.outPtr[v+1]
	if g.outLen != nil {
		hi = lo + uint64(g.outLen[v])
	}
	return g.outDst[lo:hi], g.outW[lo:hi]
}

// liveIn is the in-direction mirror of liveOut.
//
//jetlint:hotpath
func (g *CSR) liveIn(v VertexID) ([]VertexID, []Weight) {
	if g.inInl != nil {
		r := &g.inInl[v]
		if r.n != inlineSpilled {
			return r.ids[:r.n], r.ws[:r.n]
		}
	}
	lo := g.inPtr[v]
	hi := g.inPtr[v+1]
	if g.inLen != nil {
		hi = lo + uint64(g.inLen[v])
	}
	return g.inSrc[lo:hi], g.inW[lo:hi]
}

// liveOutDeg returns v's logical out-degree on the live layout. With inline
// records, outLen[v] is zero for inline vertices, so degree questions must go
// through here rather than reading outLen directly.
func (g *CSR) liveOutDeg(v VertexID) int {
	if g.outInl != nil {
		if n := g.outInl[v].n; n != inlineSpilled {
			return int(n)
		}
	}
	if g.outLen != nil {
		return int(g.outLen[v])
	}
	return int(g.outPtr[v+1] - g.outPtr[v])
}

// liveInDeg is the in-direction mirror of liveOutDeg.
func (g *CSR) liveInDeg(v VertexID) int {
	if g.inInl != nil {
		if n := g.inInl[v].n; n != inlineSpilled {
			return int(n)
		}
	}
	if g.inLen != nil {
		return int(g.inLen[v])
	}
	return int(g.inPtr[v+1] - g.inPtr[v])
}

// storeOut writes v's post-merge out-adjacency into whichever representation
// now fits: the inline record when the new degree is at most the layout's
// inline capacity, the (always-reserved) slab segment otherwise. Migration in
// either direction is a plain copy — no reallocation, no pointer movement —
// because slackify reserves every vertex's slab capacity as if it were
// spilled. The ids/ws arguments must not alias the destination (callers pass
// the merge scratch).
func (g *CSR) storeOut(v VertexID, ids []VertexID, ws []Weight) {
	if g.outInl != nil && len(ids) <= int(g.inlCap) {
		r := &g.outInl[v]
		if r.n == inlineSpilled {
			g.outInline++
		}
		r.n = uint8(copy(r.ids[:], ids))
		copy(r.ws[:], ws)
		g.outLen[v] = 0
		return
	}
	if g.outInl != nil && g.outInl[v].n != inlineSpilled {
		g.outInl[v].n = inlineSpilled
		g.outInline--
	}
	lo := g.outPtr[v]
	copy(g.outDst[lo:], ids)
	copy(g.outW[lo:], ws)
	g.outLen[v] = uint32(len(ids))
}

// storeIn is the in-direction mirror of storeOut.
func (g *CSR) storeIn(v VertexID, ids []VertexID, ws []Weight) {
	if g.inInl != nil && len(ids) <= int(g.inlCap) {
		r := &g.inInl[v]
		if r.n == inlineSpilled {
			g.inInline++
		}
		r.n = uint8(copy(r.ids[:], ids))
		copy(r.ws[:], ws)
		g.inLen[v] = 0
		return
	}
	if g.inInl != nil && g.inInl[v].n != inlineSpilled {
		g.inInl[v].n = inlineSpilled
		g.inInline--
	}
	lo := g.inPtr[v]
	copy(g.inSrc[lo:], ids)
	copy(g.inW[lo:], ws)
	g.inLen[v] = uint32(len(ids))
}

// RepresentationMix reports how many vertices are currently stored inline in
// each direction, plus the vertex count. All zeros (with n > 0) means the
// layout is uniform slab/dense. Only meaningful on a live head; the
// observability layer samples it after each batch.
func (g *CSR) RepresentationMix() (outInline, inInline, n int) {
	if g.outInl == nil {
		return 0, 0, g.n
	}
	return g.outInline, g.inInline, g.n
}

// InlineCap returns the layout's inline capacity (0 when the adaptive layout
// is off).
func (g *CSR) InlineCap() int { return int(g.inlCap) }
