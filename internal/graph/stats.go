package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a graph's structure: the numbers behind the paper's
// Table 2 workload characterization ("narrow graphs with long paths" vs
// "large, highly connected networks").
type Stats struct {
	Vertices, Edges int

	// Out-degree distribution.
	MaxOutDegree  int
	MeanOutDegree float64
	P99OutDegree  int
	// Isolated counts vertices with neither in- nor out-edges.
	Isolated int

	// EstimatedDepth is the BFS depth from the highest-out-degree vertex —
	// a cheap diameter proxy separating the two topology classes.
	EstimatedDepth int
	// ReachableFrac is the fraction of vertices reachable from that vertex.
	ReachableFrac float64
}

// ComputeStats walks g once (plus one BFS).
func ComputeStats(g *CSR) Stats {
	s := Stats{Vertices: g.NumVertices(), Edges: g.NumEdges()}
	if s.Vertices == 0 {
		return s
	}
	degs := make([]int, s.Vertices)
	root := VertexID(0)
	for v := 0; v < s.Vertices; v++ {
		d := g.OutDegree(VertexID(v))
		degs[v] = d
		if d > s.MaxOutDegree {
			s.MaxOutDegree = d
			root = VertexID(v)
		}
		if d == 0 && g.InDegree(VertexID(v)) == 0 {
			s.Isolated++
		}
	}
	s.MeanOutDegree = float64(s.Edges) / float64(s.Vertices)
	sort.Ints(degs)
	s.P99OutDegree = degs[len(degs)*99/100]

	// BFS from the hub.
	dist := make([]int, s.Vertices)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	q := []VertexID{root}
	reached := 1
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		g.OutEdges(u, func(v VertexID, _ Weight) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				if dist[v] > s.EstimatedDepth {
					s.EstimatedDepth = dist[v]
				}
				reached++
				q = append(q, v)
			}
		})
	}
	s.ReachableFrac = float64(reached) / float64(s.Vertices)
	return s
}

// String renders a compact report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vertices=%d edges=%d mean-deg=%.1f max-deg=%d p99-deg=%d isolated=%d depth≈%d reach=%.0f%%",
		s.Vertices, s.Edges, s.MeanOutDegree, s.MaxOutDegree, s.P99OutDegree,
		s.Isolated, s.EstimatedDepth, 100*s.ReachableFrac)
	return b.String()
}
