package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// randomValidBatch draws a batch valid against g: deletes name distinct
// existing edges, inserts name absent pairs, and a fraction of the deletes
// are re-inserted with a new weight (weight changes).
func randomValidBatch(rng *rand.Rand, g *CSR, updates int) Batch {
	var b Batch
	n := g.NumVertices()
	taken := make(map[[2]VertexID]bool, updates)
	delWant := updates / 3
	for tries := 0; len(b.Deletes) < delWant && tries < delWant*32 && g.NumEdges() > 0; tries++ {
		e := g.EdgeAt(rng.Intn(g.NumEdges()))
		k := [2]VertexID{e.Src, e.Dst}
		if taken[k] {
			continue
		}
		taken[k] = true
		b.Deletes = append(b.Deletes, e)
		if rng.Intn(4) == 0 { // weight change: delete + re-insert
			b.Inserts = append(b.Inserts, Edge{e.Src, e.Dst, 1 + rng.Float64()*9})
		}
	}
	for tries := 0; b.Size() < updates && tries < updates*32; tries++ {
		u := VertexID(rng.Intn(n))
		v := VertexID(rng.Intn(n))
		k := [2]VertexID{u, v}
		if u == v || taken[k] {
			continue
		}
		if _, ok := g.HasEdge(u, v); ok {
			continue
		}
		taken[k] = true
		b.Inserts = append(b.Inserts, Edge{u, v, 1 + rng.Float64()*9})
	}
	return b
}

func edgesEqual(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkSame asserts that the delta-mutated version dg and the rebuilt version
// rg expose the identical logical graph through every public accessor.
func checkSame(t *testing.T, step int, dg, rg *CSR) {
	t.Helper()
	if err := dg.Validate(); err != nil {
		t.Fatalf("step %d: delta version invalid: %v", step, err)
	}
	if !edgesEqual(dg.Edges(), rg.Edges()) {
		t.Fatalf("step %d: delta and rebuild edge lists diverge", step)
	}
	if dg.NumEdges() != rg.NumEdges() || dg.Symmetric() != rg.Symmetric() {
		t.Fatalf("step %d: aggregates diverge: E %d/%d symmetric %v/%v",
			step, dg.NumEdges(), rg.NumEdges(), dg.Symmetric(), rg.Symmetric())
	}
	for v := 0; v < dg.NumVertices(); v++ {
		id := VertexID(v)
		if dg.OutDegree(id) != rg.OutDegree(id) || dg.InDegree(id) != rg.InDegree(id) {
			t.Fatalf("step %d: degree mismatch at %d", step, v)
		}
		dw, rw := dg.OutWeightSum(id), rg.OutWeightSum(id)
		if diff := dw - rw; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("step %d: OutWeightSum(%d) = %g, want %g", step, v, dw, rw)
		}
	}
}

// deltaConfigs exercises the in-place path, the exhaustion path (no slack to
// absorb anything), and an aggressive compaction cadence.
var deltaConfigs = map[string]DeltaConfig{
	"default":       DefaultDeltaConfig(),
	"no_slack":      {SlackMin: 0, SlackFrac: 0, CompactFrac: 1},
	"tight_slack":   {SlackMin: 1, SlackFrac: 0, CompactFrac: 1},
	"fast_compact":  {SlackMin: 4, SlackFrac: 0.125, CompactFrac: 0.01},
	"huge_slack":    {SlackMin: 64, SlackFrac: 1, CompactFrac: 10},
	"prop_only":     {SlackMin: 0, SlackFrac: 0.5, CompactFrac: 0.5},
	"compact_floor": {SlackMin: 2, SlackFrac: 0, CompactFrac: 0},
}

// TestApplyDeltaMatchesApply runs randomized insert/delete sequences through
// ApplyDeltaCfg and the rebuild Apply in lockstep and requires identical
// logical graphs at every step, across slack configurations that force the
// in-place, slack-exhaustion, and compaction-boundary paths.
func TestApplyDeltaMatchesApply(t *testing.T) {
	for name, cfg := range deltaConfigs {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			base := RMAT(RMATConfig{Vertices: 300, Edges: 1800, Seed: 11})
			dg, rg := base, base
			for step := 0; step < 25; step++ {
				b := randomValidBatch(rng, rg, 40)
				nd, err := dg.ApplyDeltaCfg(b, cfg)
				if err != nil {
					t.Fatalf("step %d: ApplyDeltaCfg: %v", step, err)
				}
				nr, err := rg.Apply(b)
				if err != nil {
					t.Fatalf("step %d: Apply: %v", step, err)
				}
				checkSame(t, step, nd, nr)
				dg, rg = nd, nr
			}
		})
	}
}

// TestOldVersionsStayReadable pins the versioned pointer-swap contract: after
// a chain of delta batches, every superseded version still serves its exact
// historical edge set (the recovery engine reads the old and new graph
// versions simultaneously during a batch).
func TestOldVersionsStayReadable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := WebCrawl(WebCrawlConfig{Vertices: 200, AvgDegree: 4, Seed: 5})
	versions := []*CSR{base}
	snapshots := [][]Edge{base.Edges()}

	g := base
	for step := 0; step < 12; step++ {
		b := randomValidBatch(rng, g, 30)
		ng, err := g.ApplyDelta(b)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		g = ng
		versions = append(versions, g)
		snapshots = append(snapshots, g.Edges())
	}
	for i, v := range versions {
		if err := v.Validate(); err != nil {
			t.Fatalf("version %d invalid after later mutations: %v", i, err)
		}
		if !edgesEqual(v.Edges(), snapshots[i]) {
			t.Fatalf("version %d no longer serves its historical edge set", i)
		}
		// Spot-check the random-access readers on the frozen version.
		for k := 0; k < 20 && v.NumEdges() > 0; k++ {
			e := v.EdgeAt(rng.Intn(v.NumEdges()))
			if w, ok := v.HasEdge(e.Src, e.Dst); !ok || w != e.Weight {
				t.Fatalf("version %d: EdgeAt/HasEdge disagree on (%d,%d)", i, e.Src, e.Dst)
			}
		}
	}
}

// TestApplyDeltaWeightChange covers the delete+insert pair on one edge: the
// paper's §2.1 weight-modification encoding must land the new weight exactly
// once in both directions.
func TestApplyDeltaWeightChange(t *testing.T) {
	g := MustBuild(4, []Edge{{0, 1, 5}, {0, 2, 7}, {3, 1, 2}})
	sl, err := g.ApplyDelta(Batch{}) // slackify with an empty batch first
	if err != nil {
		t.Fatal(err)
	}
	ng, err := sl.ApplyDelta(Batch{
		Deletes: []Edge{{0, 1, 5}},
		Inserts: []Edge{{0, 1, 9}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := ng.HasEdge(0, 1); !ok || w != 9 {
		t.Fatalf("HasEdge(0,1) = %v,%v, want 9,true", w, ok)
	}
	if got := ng.OutWeightSum(0); got != 16 {
		t.Fatalf("OutWeightSum(0) = %v, want 16", got)
	}
	if w, ok := sl.HasEdge(0, 1); !ok || w != 5 {
		t.Fatalf("old version HasEdge(0,1) = %v,%v, want 5,true", w, ok)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDeltaSymmetryMaintenance checks the incremental symmetric bit
// against mirrored and one-sided updates on a slacked graph.
func TestApplyDeltaSymmetryMaintenance(t *testing.T) {
	g := Symmetrize(MustBuild(5, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}}))
	sl, err := g.ApplyDelta(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if !sl.Symmetric() {
		t.Fatal("slackified symmetric graph lost the symmetric bit")
	}
	oneSided, err := sl.ApplyDelta(Batch{Inserts: []Edge{{0, 3, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if oneSided.Symmetric() {
		t.Fatal("one-sided insert kept the symmetric bit")
	}
	restored, err := oneSided.ApplyDelta(Batch{Inserts: []Edge{{3, 0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Symmetric() {
		t.Fatal("mirroring insert did not restore the symmetric bit")
	}
	if err := restored.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestApplyDeltaValidationErrors pins that the delta path rejects exactly
// what Apply rejects, with matching messages, leaving the receiver usable.
func TestApplyDeltaValidationErrors(t *testing.T) {
	g := MustBuild(4, []Edge{{0, 1, 1}, {1, 2, 2}})
	cases := []struct {
		name string
		b    Batch
		want string
	}{
		{"duplicate delete", Batch{Deletes: []Edge{{0, 1, 1}, {0, 1, 1}}}, "duplicate delete"},
		{"missing delete", Batch{Deletes: []Edge{{2, 0, 1}}}, "delete of missing edge"},
		{"insert out of range", Batch{Inserts: []Edge{{0, 9, 1}}}, "out of range"},
		{"duplicate insert", Batch{Inserts: []Edge{{2, 3, 1}, {2, 3, 2}}}, "duplicate insert"},
		{"insert existing", Batch{Inserts: []Edge{{0, 1, 5}}}, "insert of existing edge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, errDelta := g.ApplyDelta(tc.b)
			_, errApply := g.Apply(tc.b)
			if errDelta == nil || errApply == nil {
				t.Fatalf("errors: delta=%v apply=%v, want both non-nil", errDelta, errApply)
			}
			if errDelta.Error() != errApply.Error() {
				t.Fatalf("messages diverge:\n  delta: %v\n  apply: %v", errDelta, errApply)
			}
			if !strings.Contains(errDelta.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", errDelta, tc.want)
			}
		})
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("receiver corrupted by rejected batches: %v", err)
	}
}

// TestApplyDeltaCompactionResetsEdits observes the amortization machinery
// directly: in-place batches accumulate the edit counter, and crossing the
// threshold triggers a compacting rebuild that resets it and restores slack.
func TestApplyDeltaCompactionResetsEdits(t *testing.T) {
	cfg := DeltaConfig{SlackMin: 8, SlackFrac: 0.5, CompactFrac: 0.05}
	g := RMAT(RMATConfig{Vertices: 200, Edges: 1200, Seed: 2})
	rng := rand.New(rand.NewSource(9))

	sl, err := g.ApplyDeltaCfg(Batch{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sl.ver == nil || sl.ver.edits != 0 {
		t.Fatal("slackified base must start with zero accumulated edits")
	}
	sawInPlace, sawCompact := false, false
	cur := sl
	for step := 0; step < 30; step++ {
		before := 0
		if cur.ver != nil {
			before = cur.ver.edits
		}
		b := randomValidBatch(rng, cur, 12)
		ng, err := cur.ApplyDeltaCfg(b, cfg)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		switch {
		case ng.ver.edits == before+b.Size() && b.Size() > 0:
			sawInPlace = true
		case ng.ver.edits == 0:
			sawCompact = true
		}
		cur = ng
	}
	if !sawInPlace || !sawCompact {
		t.Fatalf("wanted both paths exercised: inPlace=%v compact=%v", sawInPlace, sawCompact)
	}
}

// TestApplyDeltaOnFrozenVersion checks that mutating a superseded version is
// legal and produces an independent (rebuilt) history branch.
func TestApplyDeltaOnFrozenVersion(t *testing.T) {
	g := MustBuild(4, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}})
	sl, err := g.ApplyDelta(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sl.ApplyDelta(Batch{Inserts: []Edge{{0, 2, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	// sl is now frozen; branch a different future from it.
	branch, err := sl.ApplyDelta(Batch{Inserts: []Edge{{3, 0, 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := branch.HasEdge(0, 2); ok {
		t.Fatal("branch sees the other branch's insert")
	}
	if w, ok := branch.HasEdge(3, 0); !ok || w != 9 {
		t.Fatal("branch lost its own insert")
	}
	if err := branch.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeAtSlacked checks rank-ordered edge access against Edges() on live
// slacked and frozen versions — the stream generator's sampling contract.
func TestEdgeAtSlacked(t *testing.T) {
	g := Grid(GridConfig{Rows: 8, Cols: 8, Seed: 4})
	sl, err := g.ApplyDelta(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	ng, err := sl.ApplyDelta(Batch{Inserts: []Edge{{0, 63, 2}, {5, 40, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]*CSR{"live": ng, "frozen": sl} {
		es := v.Edges()
		if len(es) != v.NumEdges() {
			t.Fatalf("%s: Edges() length %d != NumEdges %d", name, len(es), v.NumEdges())
		}
		for i, want := range es {
			if got := v.EdgeAt(i); got != want {
				t.Fatalf("%s: EdgeAt(%d) = %+v, want %+v", name, i, got, want)
			}
		}
	}
}
