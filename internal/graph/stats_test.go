package graph

import (
	"strings"
	"testing"
)

func TestComputeStatsBasic(t *testing.T) {
	g := MustBuild(5, []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 2, Weight: 1}, {Src: 0, Dst: 3, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
	})
	s := ComputeStats(g)
	if s.Vertices != 5 || s.Edges != 4 {
		t.Fatalf("V/E = %d/%d", s.Vertices, s.Edges)
	}
	if s.MaxOutDegree != 3 {
		t.Errorf("max degree %d, want 3 (vertex 0)", s.MaxOutDegree)
	}
	if s.Isolated != 1 { // vertex 4
		t.Errorf("isolated %d, want 1", s.Isolated)
	}
	// BFS from the hub (vertex 0): reaches 0..3, depth 1 (2 via 0 directly).
	if s.ReachableFrac != 0.8 {
		t.Errorf("reach %.2f, want 0.8", s.ReachableFrac)
	}
	if s.EstimatedDepth != 1 {
		t.Errorf("depth %d, want 1", s.EstimatedDepth)
	}
	if !strings.Contains(s.String(), "vertices=5") {
		t.Errorf("String = %q", s.String())
	}
}

func TestComputeStatsSeparatesTopologyClasses(t *testing.T) {
	web := ComputeStats(WebCrawl(WebCrawlConfig{Vertices: 3000, AvgDegree: 8, Locality: 12, LongRange: 0.08, Seed: 1}))
	soc := ComputeStats(RMAT(RMATConfig{Vertices: 3000, Edges: 24000, Seed: 1}))
	if web.EstimatedDepth <= 3*soc.EstimatedDepth {
		t.Errorf("web depth %d not much larger than social depth %d", web.EstimatedDepth, soc.EstimatedDepth)
	}
	// The social graph's degree distribution is heavier-tailed.
	if float64(soc.MaxOutDegree)/soc.MeanOutDegree <= float64(web.MaxOutDegree)/web.MeanOutDegree {
		t.Errorf("social skew (%d/%.1f) not heavier than web (%d/%.1f)",
			soc.MaxOutDegree, soc.MeanOutDegree, web.MaxOutDegree, web.MeanOutDegree)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(MustBuild(0, nil))
	if s.Vertices != 0 || s.Edges != 0 {
		t.Errorf("empty stats %+v", s)
	}
}
