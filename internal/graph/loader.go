package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MaxLoaderVertices bounds the vertex space ReadEdgeList will allocate; a
// single absurd id in a malformed file must not translate into a
// multi-gigabyte CSR.
const MaxLoaderVertices = 1 << 27

// ReadEdgeList parses a whitespace-separated edge list: one "src dst
// [weight]" triple per line, '#'-prefixed comment lines ignored. Missing
// weights default to 1. The vertex count is max id + 1 unless a larger n is
// given; it must stay below MaxLoaderVertices.
func ReadEdgeList(r io.Reader, n int) (*CSR, error) {
	edges, maxID, err := parseEdges(r)
	if err != nil {
		return nil, err
	}
	if n < maxID+1 {
		n = maxID + 1
	}
	if n > MaxLoaderVertices {
		return nil, fmt.Errorf("graph: vertex id %d exceeds the loader limit (%d)", maxID, MaxLoaderVertices)
	}
	return Build(n, edges)
}

func parseEdges(r io.Reader) ([]Edge, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, 0, fmt.Errorf("graph: line %d: want 'src dst [weight]'", line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad src: %w", line, err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, 0, fmt.Errorf("graph: line %d: bad dst: %w", line, err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, 0, fmt.Errorf("graph: line %d: bad weight: %w", line, err)
			}
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, 0, fmt.Errorf("graph: line %d: non-finite weight", line)
			}
		}
		if int(src) > maxID {
			maxID = int(src)
		}
		if int(dst) > maxID {
			maxID = int(dst)
		}
		edges = append(edges, Edge{VertexID(src), VertexID(dst), w})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return edges, maxID, nil
}

// WriteEdgeList emits g in the format ReadEdgeList accepts.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# vertices=%d edges=%d\n", g.NumVertices(), g.NumEdges())
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.Src, e.Dst, e.Weight); err != nil {
			return err
		}
	}
	return bw.Flush()
}
