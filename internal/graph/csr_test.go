package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func exampleEdges() []Edge {
	// The paper's Fig 2 example graph (weights from the figure).
	return []Edge{
		{0, 1, 7}, {0, 2, 3}, // A->B, A->C
		{1, 3, 5},            // B->D
		{2, 3, 8}, {2, 4, 2}, // C->D, C->E
		{3, 4, 6}, // D->E
		{4, 1, 7}, // E->B
	}
}

func TestBuildBasic(t *testing.T) {
	g, err := Build(5, exampleEdges())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 || g.NumEdges() != 7 {
		t.Fatalf("got V=%d E=%d, want 5/7", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.OutDegree(2); d != 2 {
		t.Errorf("OutDegree(2)=%d, want 2", d)
	}
	if d := g.InDegree(3); d != 2 {
		t.Errorf("InDegree(3)=%d, want 2", d)
	}
	if d := g.InDegree(0); d != 0 {
		t.Errorf("InDegree(0)=%d, want 0", d)
	}
	w, ok := g.HasEdge(0, 2)
	if !ok || w != 3 {
		t.Errorf("HasEdge(0,2)=(%v,%v), want (3,true)", w, ok)
	}
	if _, ok := g.HasEdge(2, 0); ok {
		t.Error("HasEdge(2,0) should be false")
	}
	if s := g.OutWeightSum(0); s != 10 {
		t.Errorf("OutWeightSum(0)=%v, want 10", s)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(2, []Edge{{0, 5, 1}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := Build(3, []Edge{{0, 1, 1}, {0, 1, 2}}); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestInOutMirror(t *testing.T) {
	g := MustBuild(5, exampleEdges())
	// Every out edge of u must be visible as an in edge at its destination.
	for _, e := range g.Edges() {
		found := false
		g.InEdges(e.Dst, func(src VertexID, w Weight) {
			if src == e.Src && w == e.Weight {
				found = true
			}
		})
		if !found {
			t.Errorf("edge (%d,%d) missing from in index", e.Src, e.Dst)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := MustBuild(5, exampleEdges())
	g2 := MustBuild(5, g.Edges())
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed edge count")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyBatch(t *testing.T) {
	g := MustBuild(5, exampleEdges())
	ng, err := g.Apply(Batch{
		Inserts: []Edge{{0, 3, 9}},
		Deletes: []Edge{{0, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := ng.HasEdge(0, 2); ok {
		t.Error("deleted edge still present")
	}
	if w, ok := ng.HasEdge(0, 3); !ok || w != 9 {
		t.Errorf("inserted edge missing: (%v,%v)", w, ok)
	}
	// Original is unchanged.
	if _, ok := g.HasEdge(0, 2); !ok {
		t.Error("Apply mutated the receiver")
	}
	if ng.NumEdges() != g.NumEdges() {
		t.Errorf("edge count changed: %d -> %d", g.NumEdges(), ng.NumEdges())
	}
}

func TestApplyWeightChange(t *testing.T) {
	g := MustBuild(5, exampleEdges())
	// Weight modification = delete + insert of the same pair (§2.1).
	ng, err := g.Apply(Batch{
		Deletes: []Edge{{0, 2, 3}},
		Inserts: []Edge{{0, 2, 42}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := ng.HasEdge(0, 2); w != 42 {
		t.Errorf("weight change not applied: %v", w)
	}
}

func TestApplyErrors(t *testing.T) {
	g := MustBuild(5, exampleEdges())
	if _, err := g.Apply(Batch{Deletes: []Edge{{4, 0, 1}}}); err == nil {
		t.Error("delete of missing edge accepted")
	}
	if _, err := g.Apply(Batch{Inserts: []Edge{{0, 1, 1}}}); err == nil {
		t.Error("insert of existing edge accepted")
	}
	if _, err := g.Apply(Batch{Deletes: []Edge{{0, 1, 7}, {0, 1, 7}}}); err == nil {
		t.Error("duplicate delete accepted")
	}
	if _, err := g.Apply(Batch{Inserts: []Edge{{0, 4, 1}, {0, 4, 2}}}); err == nil {
		t.Error("duplicate insert accepted")
	}
}

func TestSymmetrize(t *testing.T) {
	g := MustBuild(3, []Edge{{0, 1, 5}, {1, 2, 7}})
	s := Symmetrize(g)
	if s.NumEdges() != 4 {
		t.Fatalf("got %d edges, want 4", s.NumEdges())
	}
	if w, ok := s.HasEdge(1, 0); !ok || w != 5 {
		t.Errorf("reverse edge (1,0) = (%v,%v)", w, ok)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Symmetrizing twice is a fixed point.
	s2 := Symmetrize(s)
	if s2.NumEdges() != s.NumEdges() {
		t.Error("Symmetrize is not idempotent")
	}
}

func TestView(t *testing.T) {
	g := MustBuild(5, exampleEdges())
	v := NewView(g)
	v.Mask(2)
	count := 0
	v.OutEdges(2, func(VertexID, Weight) { count++ })
	if count != 0 {
		t.Errorf("masked vertex propagated %d edges", count)
	}
	if v.OutDegree(2) != 0 {
		t.Error("masked vertex has nonzero OutDegree")
	}
	v.OutEdges(0, func(VertexID, Weight) { count++ })
	if count != 2 {
		t.Errorf("unmasked vertex yielded %d edges, want 2", count)
	}
	v.Unmask(2)
	if v.OutDegree(2) != 2 {
		t.Error("unmask did not restore edges")
	}
}

func TestGenerators(t *testing.T) {
	cases := []struct {
		name string
		g    *CSR
	}{
		{"rmat", RMAT(RMATConfig{Vertices: 1000, Edges: 8000, Seed: 1})},
		{"webcrawl", WebCrawl(WebCrawlConfig{Vertices: 1000, AvgDegree: 6, Seed: 2})},
		{"grid", Grid(GridConfig{Rows: 20, Cols: 20, Diagonal: 0.2, Seed: 3})},
		{"er", ErdosRenyi(500, 3000, 32, 4)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if c.g.NumEdges() == 0 {
				t.Fatal("generator produced no edges")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RMAT(RMATConfig{Vertices: 500, Edges: 4000, Seed: 7})
	b := RMAT(RMATConfig{Vertices: 500, Edges: 4000, Seed: 7})
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestWebCrawlHasLongPaths(t *testing.T) {
	// The WK/UK stand-ins must have materially larger diameters than the
	// social stand-ins — the paper's narrow/long vs wide/short split.
	web := WebCrawl(WebCrawlConfig{Vertices: 2000, AvgDegree: 6, Seed: 1})
	soc := RMAT(RMATConfig{Vertices: 2000, Edges: 12000, Seed: 1})
	if bfsDepth(web, 0) <= bfsDepth(soc, 0)*3 {
		t.Errorf("web depth %d not much larger than social depth %d",
			bfsDepth(web, 0), bfsDepth(soc, 0))
	}
}

func bfsDepth(g *CSR, root VertexID) int {
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	q := []VertexID{root}
	max := 0
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		g.OutEdges(u, func(v VertexID, _ Weight) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				if dist[v] > max {
					max = dist[v]
				}
				q = append(q, v)
			}
		})
	}
	return max
}

func TestDatasets(t *testing.T) {
	for _, d := range Datasets() {
		if _, err := DatasetByName(d.Name); err != nil {
			t.Errorf("DatasetByName(%q): %v", d.Name, err)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 200, Edges: 1500, Seed: 9})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Fatalf("round trip: got V=%d E=%d, want V=%d E=%d",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	ea, eb := g.Edges(), g2.Edges()
	for i := range ea {
		if ea[i].Src != eb[i].Src || ea[i].Dst != eb[i].Dst {
			t.Fatalf("edge %d differs after round trip", i)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	bad := []string{
		"1\n",
		"a b\n",
		"1 b\n",
		"1 2 x\n",
	}
	for _, s := range bad {
		if _, err := ReadEdgeList(strings.NewReader(s), 0); err == nil {
			t.Errorf("input %q accepted", s)
		}
	}
	// Comments and blanks are fine.
	g, err := ReadEdgeList(strings.NewReader("# header\n\n0 1\n1 2 3.5\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if w, _ := g.HasEdge(0, 1); w != 1 {
		t.Errorf("default weight = %v, want 1", w)
	}
}

func TestPartition(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 4000, Edges: 30000, Seed: 11})
	for _, k := range []int{1, 2, 4, 8} {
		p := PartitionGraph(g, k)
		if b := p.Balance(); b > 1.35 {
			t.Errorf("k=%d balance %.2f too skewed", k, b)
		}
		seen := make(map[int]bool)
		for v := 0; v < g.NumVertices(); v++ {
			s := p.SliceOf(VertexID(v))
			if s < 0 || s >= k {
				t.Fatalf("k=%d vertex %d in slice %d", k, v, s)
			}
			seen[s] = true
		}
		if len(seen) != k {
			t.Errorf("k=%d: only %d slices used", k, len(seen))
		}
	}
}

func TestPartitionCutBeatsRandom(t *testing.T) {
	g := Grid(GridConfig{Rows: 40, Cols: 40, Seed: 5})
	p := PartitionGraph(g, 4)
	// Random assignment cuts ~3/4 of edges on average; BFS growth must do
	// considerably better on a lattice.
	randCut := 0
	rng := rand.New(rand.NewSource(1))
	assign := make([]int, g.NumVertices())
	for i := range assign {
		assign[i] = rng.Intn(4)
	}
	for _, e := range g.Edges() {
		if assign[e.Src] != assign[e.Dst] {
			randCut++
		}
	}
	if p.Cut*2 >= randCut {
		t.Errorf("greedy cut %d not clearly better than random cut %d", p.Cut, randCut)
	}
}

func TestQuickApplyPreservesInvariants(t *testing.T) {
	// Property: applying a random valid batch always yields a valid CSR with
	// the expected edge membership.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ErdosRenyi(60, 240, 16, seed)
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		// Pick distinct deletions.
		delN := rng.Intn(len(edges)/2 + 1)
		perm := rng.Perm(len(edges))
		var b Batch
		deleted := make(map[[2]VertexID]bool)
		for _, i := range perm[:delN] {
			b.Deletes = append(b.Deletes, edges[i])
			deleted[[2]VertexID{edges[i].Src, edges[i].Dst}] = true
		}
		// Pick insertions that don't collide with surviving edges.
		for tries := 0; tries < 50 && len(b.Inserts) < 20; tries++ {
			u := VertexID(rng.Intn(60))
			v := VertexID(rng.Intn(60))
			if u == v {
				continue
			}
			if _, ok := g.HasEdge(u, v); ok && !deleted[[2]VertexID{u, v}] {
				continue
			}
			dup := false
			for _, e := range b.Inserts {
				if e.Src == u && e.Dst == v {
					dup = true
				}
			}
			if !dup {
				b.Inserts = append(b.Inserts, Edge{u, v, 1 + rng.Float64()*9})
			}
		}
		ng, err := g.Apply(b)
		if err != nil {
			return false
		}
		if err := ng.Validate(); err != nil {
			return false
		}
		for _, e := range b.Deletes {
			reinserted := false
			for _, ie := range b.Inserts {
				if ie.Src == e.Src && ie.Dst == e.Dst {
					reinserted = true
				}
			}
			if _, ok := ng.HasEdge(e.Src, e.Dst); ok && !reinserted {
				return false
			}
		}
		for _, e := range b.Inserts {
			if _, ok := ng.HasEdge(e.Src, e.Dst); !ok {
				return false
			}
		}
		return ng.NumEdges() == g.NumEdges()-len(b.Deletes)+len(b.Inserts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
