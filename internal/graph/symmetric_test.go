package graph

import "testing"

// TestSymmetricBit pins the cached symmetry flag computed at build time —
// the O(1) replacement for the per-edge HasEdge rescan the CC path used.
func TestSymmetricBit(t *testing.T) {
	sym := MustBuild(4, []Edge{
		{0, 1, 1}, {1, 0, 1},
		{1, 2, 5}, {2, 1, 5},
	})
	if !sym.Symmetric() {
		t.Error("mirrored edge set not reported symmetric")
	}
	asym := MustBuild(4, []Edge{{0, 1, 1}, {1, 0, 1}, {1, 2, 5}})
	if asym.Symmetric() {
		t.Error("edge (1,2) has no reverse but graph reported symmetric")
	}
	// Self-loops are their own reverse.
	loop := MustBuild(2, []Edge{{0, 0, 1}})
	if !loop.Symmetric() {
		t.Error("self-loop-only graph not reported symmetric")
	}
	empty := MustBuild(3, nil)
	if !empty.Symmetric() {
		t.Error("empty edge set not reported symmetric")
	}
	// Same degrees on both sides but different neighbors.
	twisted := MustBuild(3, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}})
	if twisted.Symmetric() {
		t.Error("directed 3-cycle reported symmetric")
	}
}

// TestSymmetricBitThroughSymmetrizeAndApply checks the flag stays correct
// across the other two construction paths: Symmetrize and streaming Apply.
func TestSymmetricBitThroughSymmetrizeAndApply(t *testing.T) {
	g := MustBuild(4, []Edge{{0, 1, 1}, {1, 2, 5}})
	if g.Symmetric() {
		t.Fatal("asymmetric base reported symmetric")
	}
	s := Symmetrize(g)
	if !s.Symmetric() {
		t.Fatal("Symmetrize result not reported symmetric")
	}

	// A mirrored insert pair keeps the flag; a lone insert clears it.
	kept, err := s.Apply(Batch{Inserts: []Edge{{2, 3, 2}, {3, 2, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if !kept.Symmetric() {
		t.Error("mirrored insert lost the symmetric bit")
	}
	broken, err := s.Apply(Batch{Inserts: []Edge{{2, 3, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if broken.Symmetric() {
		t.Error("one-sided insert kept the symmetric bit")
	}
	// Deleting one direction of a mirrored pair breaks symmetry too.
	oneway, err := s.Apply(Batch{Deletes: []Edge{{1, 0, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if oneway.Symmetric() {
		t.Error("one-sided delete kept the symmetric bit")
	}
}
