package graph

import "sort"

// Partition assigns each vertex to one of k slices. GraphPulse/JetStream
// slice graphs whose event queue footprint exceeds on-chip capacity and
// process one slice at a time, spilling cross-slice events to DRAM (§4.7).
// The paper uses PuLP; this greedy BFS-grown partitioner serves the same
// purpose — balanced slices with a reduced edge cut — without the external
// dependency.
type Partition struct {
	K     int
	Slice []int // vertex -> slice index
	Cut   int   // number of cross-slice edges
}

// PartitionGraph splits g into k balanced slices. k must be >= 1. Slices are
// grown breadth-first from the highest-degree unassigned seed so that
// communities tend to land together, which is what keeps the cut low on the
// social-network generators.
func PartitionGraph(g *CSR, k int) *Partition {
	n := g.NumVertices()
	p := &Partition{K: k, Slice: make([]int, n)}
	if k <= 1 {
		return p
	}
	target := (n + k - 1) / k
	for i := range p.Slice {
		p.Slice[i] = -1
	}
	// Seeds in decreasing total-degree order.
	order := make([]VertexID, n)
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		di := g.OutDegree(order[i]) + g.InDegree(order[i])
		dj := g.OutDegree(order[j]) + g.InDegree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	next := 0
	queue := make([]VertexID, 0, target)
	for s := 0; s < k; s++ {
		size := 0
		queue = queue[:0]
		for size < target {
			if len(queue) == 0 {
				// Find the next unassigned seed.
				for next < n && p.Slice[order[next]] != -1 {
					next++
				}
				if next == n {
					break
				}
				queue = append(queue, order[next])
			}
			v := queue[0]
			queue = queue[1:]
			if p.Slice[v] != -1 {
				continue
			}
			p.Slice[v] = s
			size++
			g.OutEdges(v, func(dst VertexID, _ Weight) {
				if p.Slice[dst] == -1 {
					queue = append(queue, dst)
				}
			})
			g.InEdges(v, func(src VertexID, _ Weight) {
				if p.Slice[src] == -1 {
					queue = append(queue, src)
				}
			})
		}
	}
	// Any stragglers (k*target >= n guarantees few) go to the last slice.
	for v := 0; v < n; v++ {
		if p.Slice[v] == -1 {
			p.Slice[v] = k - 1
		}
	}
	for u := 0; u < n; u++ {
		g.OutEdges(VertexID(u), func(dst VertexID, _ Weight) {
			if p.Slice[u] != p.Slice[dst] {
				p.Cut++
			}
		})
	}
	return p
}

// SliceOf returns v's slice.
func (p *Partition) SliceOf(v VertexID) int {
	if p.K <= 1 {
		return 0
	}
	return p.Slice[v]
}

// Balance returns max slice size / ideal size; 1.0 is perfectly balanced.
func (p *Partition) Balance() float64 {
	if p.K <= 1 {
		return 1
	}
	counts := make([]int, p.K)
	for _, s := range p.Slice {
		counts[s]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	ideal := float64(len(p.Slice)) / float64(p.K)
	return float64(max) / ideal
}
