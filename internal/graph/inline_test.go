package graph

import (
	"math/rand"
	"testing"
)

// Tests for the degree-adaptive adjacency layout (inline.go): randomized
// differentials against the dense rebuild oracle with the inline layout
// forced through every threshold, migration churn that drives vertices back
// and forth across the inline/slab boundary, and the zero-allocation pin on
// the inline read path.

// TestInlineMatchesRebuildAllCaps replays randomized mixed batches through
// ApplyDeltaCfg at every inline threshold (0 = uniform slab through 4 = the
// record capacity) in lockstep with the rebuild oracle. The logical graph
// must be bitwise-identical at every step and every threshold, and the
// adaptive layout must actually engage (inline vertices present) whenever the
// threshold is nonzero.
func TestInlineMatchesRebuildAllCaps(t *testing.T) {
	for cap := 0; cap <= inlineCapMax; cap++ {
		cfg := DeltaConfig{SlackMin: 4, SlackFrac: 0.25, CompactFrac: 0.25, InlineCap: cap}
		t.Run(map[bool]string{true: "inline", false: "slab"}[cap > 0]+string(rune('0'+cap)), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(400 + cap)))
			base := RMAT(RMATConfig{Vertices: 250, Edges: 1500, Seed: 17})
			dg, rg := base, base
			sawInline := false
			for step := 0; step < 20; step++ {
				b := randomValidBatch(rng, rg, 30)
				nd, err := dg.ApplyDeltaCfg(b, cfg)
				if err != nil {
					t.Fatalf("step %d: ApplyDeltaCfg: %v", step, err)
				}
				nr, err := rg.Apply(b)
				if err != nil {
					t.Fatalf("step %d: Apply: %v", step, err)
				}
				checkSame(t, step, nd, nr)
				out, in, n := nd.RepresentationMix()
				if cap == 0 && (out != 0 || in != 0) {
					t.Fatalf("step %d: uniform slab reports inline vertices (%d out, %d in)", step, out, in)
				}
				if out > n || in > n {
					t.Fatalf("step %d: representation mix out of range: %d/%d of %d", step, out, in, n)
				}
				if out > 0 || in > 0 {
					sawInline = true
				}
				dg, rg = nd, nr
			}
			if cap > 0 && !sawInline {
				t.Fatalf("inline cap %d never produced an inline vertex on an RMAT graph", cap)
			}
		})
	}
}

// TestInlineMigrationChurn targets the representation boundary directly: a
// small graph where designated vertices repeatedly gain edges past the inline
// cap (spilling to the slab) and lose them again (migrating back inline),
// checked against the oracle after every transition. This is the pattern the
// generic randomized tests hit only occasionally.
func TestInlineMigrationChurn(t *testing.T) {
	const n = 12
	cfg := DeltaConfig{SlackMin: 8, SlackFrac: 1, CompactFrac: 4, InlineCap: inlineCapMax}
	dg := MustBuild(n, []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2}, {Src: 2, Dst: 0, Weight: 3},
	})
	rg := dg
	step := 0
	apply := func(b Batch) {
		t.Helper()
		nd, err := dg.ApplyDeltaCfg(b, cfg)
		if err != nil {
			t.Fatalf("step %d: ApplyDeltaCfg: %v", step, err)
		}
		nr, err := rg.Apply(b)
		if err != nil {
			t.Fatalf("step %d: Apply: %v", step, err)
		}
		checkSame(t, step, nd, nr)
		dg, rg = nd, nr
		step++
	}
	// Vertex 0 oscillates: grow out-degree 1 -> 6 (inline -> spilled), shrink
	// back to 1 (spilled -> inline), three full cycles; vertex 1 mirrors the
	// pattern on its in-adjacency via inserts toward it.
	for cycle := 0; cycle < 3; cycle++ {
		var grow Batch
		for d := 2; d <= 6; d++ {
			grow.Inserts = append(grow.Inserts,
				Edge{Src: 0, Dst: VertexID(d), Weight: Weight(10*cycle + d)},
				Edge{Src: VertexID(d), Dst: 1, Weight: Weight(20*cycle + d)})
		}
		apply(grow)
		if got := dg.OutDegree(0); got != 6 {
			t.Fatalf("cycle %d: vertex 0 out-degree %d after growth, want 6", cycle, got)
		}
		var shrink Batch
		for d := 2; d <= 6; d++ {
			shrink.Deletes = append(shrink.Deletes,
				Edge{Src: 0, Dst: VertexID(d)},
				Edge{Src: VertexID(d), Dst: 1})
		}
		apply(shrink)
		if got := dg.OutDegree(0); got != 1 {
			t.Fatalf("cycle %d: vertex 0 out-degree %d after shrink, want 1", cycle, got)
		}
	}
	out, in, _ := dg.RepresentationMix()
	if out == 0 || in == 0 {
		t.Fatalf("after shrink cycles every vertex is low-degree, want inline records (mix %d out, %d in)", out, in)
	}
}

// TestInlineReadPathAllocs pins the inline read path at zero allocations: a
// full out- and in-edge sweep over a slacked adaptive graph must not allocate
// (the inline records are array-backed and the slab segments are reslices).
func TestInlineReadPathAllocs(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 400, Edges: 1200, Seed: 23})
	sl, err := g.ApplyDeltaCfg(Batch{}, DefaultDeltaConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out, _, _ := sl.RepresentationMix(); out == 0 {
		t.Fatal("adaptive layout did not engage on an RMAT graph")
	}
	var sink float64
	allocs := testing.AllocsPerRun(10, func() {
		for v := 0; v < sl.NumVertices(); v++ {
			sl.OutEdges(VertexID(v), func(dst VertexID, w Weight) { sink += float64(w) })
			sl.InEdges(VertexID(v), func(src VertexID, w Weight) { sink += float64(src) })
		}
	})
	if allocs != 0 {
		t.Fatalf("adaptive read sweep allocates %v times per run, want 0", allocs)
	}
	_ = sink
}

// FuzzDegreeMigration fuzzes the inline/slab boundary: derived batches grow a
// fuzzed vertex past the fuzzed inline cap and shrink it back under mixed
// inserts and deletes, in lockstep with the rebuild oracle. Any acceptance,
// content, or validity divergence fails.
func FuzzDegreeMigration(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(3), uint8(5))
	f.Add(uint8(3), uint8(4), uint8(1), uint8(2))
	f.Add(uint8(7), uint8(7), uint8(4), uint8(9))
	f.Fuzz(func(t *testing.T, va, vb, cap8, extra uint8) {
		const n = 10
		u := VertexID(va % n)
		w := VertexID(vb % n)
		cfg := DeltaConfig{
			SlackMin:    int(extra%4) + 1,
			SlackFrac:   0.5,
			CompactFrac: float64(extra%8) * 0.1,
			InlineCap:   int(cap8 % (inlineCapMax + 2)), // 0..5: off, 1..4, clamped
		}
		dg := MustBuild(n, []Edge{
			{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2},
			{Src: 2, Dst: 3, Weight: 3}, {Src: 3, Dst: 4, Weight: 4},
		})
		rg := dg
		// Batch 1: grow u's out-adjacency toward every other vertex (degree
		// crosses any inline cap). Batch 2: delete half of them and insert a
		// churn edge. Batch 3: delete the rest (u migrates back inline).
		var grow Batch
		for d := 0; d < n; d++ {
			grow.Inserts = append(grow.Inserts, Edge{Src: u, Dst: VertexID(d), Weight: Weight(d + 1)})
		}
		var half, rest Batch
		for i, e := range grow.Inserts {
			if i%2 == 0 {
				half.Deletes = append(half.Deletes, Edge{Src: e.Src, Dst: e.Dst})
			} else {
				rest.Deletes = append(rest.Deletes, Edge{Src: e.Src, Dst: e.Dst})
			}
		}
		half.Inserts = []Edge{{Src: w, Dst: u, Weight: Weight(extra) + 0.5}}
		for step, b := range []Batch{grow, half, rest} {
			nd, errD := dg.ApplyDeltaCfg(b, cfg)
			nr, errA := rg.Apply(b)
			if (errD == nil) != (errA == nil) {
				t.Fatalf("step %d: acceptance diverges: delta=%v apply=%v\nbatch: %+v", step, errD, errA, b)
			}
			if errD != nil {
				// Rejected identically (duplicate insert, absent delete,
				// self-loop rules...) — nothing mutated, try the next batch.
				continue
			}
			if err := nd.Validate(); err != nil {
				t.Fatalf("step %d: delta result invalid: %v\nbatch: %+v", step, err, b)
			}
			de, re := nd.Edges(), nr.Edges()
			if len(de) != len(re) {
				t.Fatalf("step %d: edge counts diverge: %d vs %d", step, len(de), len(re))
			}
			for i := range de {
				if de[i] != re[i] {
					t.Fatalf("step %d: edge %d diverges: %+v vs %+v", step, i, de[i], re[i])
				}
			}
			dg, rg = nd, nr
		}
	})
}
