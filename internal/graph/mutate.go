package graph

import (
	"fmt"
	"sort"
)

// Batch is one streaming update batch: edges to insert and edges to delete.
// Per the paper's model (§2.1), a weight modification appears as the edge in
// both lists (delete old, insert new), and a vertex addition is implied by
// the first edge that references it (the CSR is sized up front, so "addition"
// means a previously isolated vertex gains its first edge).
type Batch struct {
	Inserts []Edge
	Deletes []Edge
}

// Size returns the total number of updates in the batch.
func (b *Batch) Size() int { return len(b.Inserts) + len(b.Deletes) }

// Apply produces the next graph version G+Δ as a fresh CSR, the way the
// paper's host processor writes a new CSR and swaps the pointer (§4.7).
// Deletions must name existing edges; insertions must not duplicate
// surviving edges. The receiver is unchanged.
func (g *CSR) Apply(b Batch) (*CSR, error) {
	type key struct{ u, v VertexID }
	del := make(map[key]bool, len(b.Deletes))
	for _, e := range b.Deletes {
		k := key{e.Src, e.Dst}
		if del[k] {
			return nil, fmt.Errorf("graph: duplicate delete of (%d,%d)", e.Src, e.Dst)
		}
		if _, ok := g.HasEdge(e.Src, e.Dst); !ok {
			return nil, fmt.Errorf("graph: delete of missing edge (%d,%d)", e.Src, e.Dst)
		}
		del[k] = true
	}
	ins := append([]Edge(nil), b.Inserts...)
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].Src != ins[j].Src {
			return ins[i].Src < ins[j].Src
		}
		return ins[i].Dst < ins[j].Dst
	})
	for i, e := range ins {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			return nil, fmt.Errorf("graph: insert (%d,%d) out of range", e.Src, e.Dst)
		}
		if i > 0 && ins[i-1].Src == e.Src && ins[i-1].Dst == e.Dst {
			return nil, fmt.Errorf("graph: duplicate insert of (%d,%d)", e.Src, e.Dst)
		}
		if _, ok := g.HasEdge(e.Src, e.Dst); ok && !del[key{e.Src, e.Dst}] {
			return nil, fmt.Errorf("graph: insert of existing edge (%d,%d)", e.Src, e.Dst)
		}
	}
	// Merge the (sorted) surviving edges with the (sorted) insertions in one
	// linear pass; batches are tiny next to the graph, so rebuilding must
	// not pay an O(E log E) sort.
	es := make([]Edge, 0, g.NumEdges()+len(ins)-len(b.Deletes))
	i := 0
	for u := 0; u < g.n; u++ {
		src := VertexID(u)
		g.OutEdges(src, func(dst VertexID, w Weight) {
			for i < len(ins) && (ins[i].Src < src || (ins[i].Src == src && ins[i].Dst < dst)) {
				es = append(es, ins[i])
				i++
			}
			if !del[key{src, dst}] {
				es = append(es, Edge{src, dst, w})
			}
		})
	}
	es = append(es, ins[i:]...)
	return buildSorted(g.n, es), nil
}

// MustApply is Apply for known-valid batches.
func (g *CSR) MustApply(b Batch) *CSR {
	ng, err := g.Apply(b)
	if err != nil {
		panic(err)
	}
	return ng
}

// View is a read-only overlay over a CSR that suppresses the out-edges of a
// set of masked vertices. Accumulative deletion (paper Fig 5, Algorithm 6)
// runs a compute phase on an "intermediate" graph in which every vertex with
// a mutated out-edge becomes a complete sink; the paper notes this is cheap
// because it only adjusts edge-list pointers. View reproduces that: masking
// costs O(1) per vertex and no edge storage is copied.
type View struct {
	*CSR
	masked []bool
}

// NewView wraps g with no vertices masked.
func NewView(g *CSR) *View {
	return &View{CSR: g, masked: make([]bool, g.NumVertices())}
}

// Mask turns u into a sink: OutEdges(u) yields nothing.
func (v *View) Mask(u VertexID) { v.masked[u] = true }

// Unmask restores u's out-edges.
func (v *View) Unmask(u VertexID) { v.masked[u] = false }

// Masked reports whether u is currently a sink.
func (v *View) Masked(u VertexID) bool { return v.masked[u] }

// OutEdges yields u's out-edges unless u is masked.
func (v *View) OutEdges(u VertexID, fn func(dst VertexID, w Weight)) {
	if v.masked[u] {
		return
	}
	v.CSR.OutEdges(u, fn)
}

// OutDegree respects the mask.
func (v *View) OutDegree(u VertexID) int {
	if v.masked[u] {
		return 0
	}
	return v.CSR.OutDegree(u)
}
