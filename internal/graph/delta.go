package graph

import (
	"fmt"
	"slices"
	"sort"
)

// DeltaConfig tunes the incremental mutation layer.
type DeltaConfig struct {
	// SlackMin is the minimum number of spare slots reserved per vertex per
	// direction when a slacked layout is (re)built.
	SlackMin int
	// SlackFrac adds deg·SlackFrac spare slots on top of SlackMin, so
	// high-degree vertices absorb proportionally more churn between rebuilds.
	SlackFrac float64
	// CompactFrac bounds accumulated edits: once the number of updates applied
	// in place since the last rebuild exceeds CompactFrac·E, the next batch
	// triggers a compacting rebuild that restores fresh slack everywhere. This
	// amortizes the O(V+E) rebuild over Θ(E) cheap updates.
	CompactFrac float64
	// InlineCap enables the degree-adaptive layout: vertices with at most
	// InlineCap neighbors in a direction are stored directly in a per-vertex
	// cache-line record (inline.go) instead of the slack slab. 0 keeps the
	// uniform slab layout; values above the record capacity (4) are clamped.
	// The slab still reserves full capacity for every vertex, so flipping the
	// knob changes locality, never addresses or semantics.
	InlineCap int
}

// DefaultDeltaConfig returns the tuning used by the system hot path.
func DefaultDeltaConfig() DeltaConfig {
	return DeltaConfig{SlackMin: 4, SlackFrac: 0.125, CompactFrac: 0.25, InlineCap: inlineCapMax}
}

// outUndo snapshots one vertex's pre-mutation out-adjacency. When ApplyDelta
// mutates arrays shared with an older version, the older version keeps
// serving its original edge set through these snapshots.
type outUndo struct {
	v    VertexID
	dst  []VertexID
	w    []Weight
	wsum float64
}

// inUndo is the in-direction snapshot.
type inUndo struct {
	v   VertexID
	src []VertexID
	w   []Weight
}

// versionInfo is the delta-mutation bookkeeping hung off a CSR.
//
// On the live head of a mutation chain (frozen == false) it carries the
// config, the edits-since-rebuild counter, reusable scratch buffers, and the
// lazy EdgeAt rank index. When the head is superseded by ApplyDelta, it is
// frozen in place: its undo lists (sorted by vertex) preserve the adjacencies
// the mutation overwrote, and next links to the version that replaced it so
// reads walk forward for vertices the local undo does not cover.
type versionInfo struct {
	cfg     DeltaConfig
	frozen  bool
	undoOut []outUndo // sorted by v; pre-mutation out segments
	undoIn  []inUndo  // sorted by v; pre-mutation in segments
	next    *CSR

	edits   int // in-place updates applied since the last rebuild
	scratch *deltaScratch
	cum     []uint64 // lazy EdgeAt rank index; nil until first use
}

// lookupOut returns the frozen out-snapshot for v, or nil if v's out-adjacency
// was not touched by the batch that superseded this version.
func (vi *versionInfo) lookupOut(v VertexID) *outUndo {
	s := vi.undoOut
	i := sort.Search(len(s), func(i int) bool { return s[i].v >= v })
	if i < len(s) && s[i].v == v {
		return &s[i]
	}
	return nil
}

// lookupIn is the in-direction mirror of lookupOut.
func (vi *versionInfo) lookupIn(v VertexID) *inUndo {
	s := vi.undoIn
	i := sort.Search(len(s), func(i int) bool { return s[i].v >= v })
	if i < len(s) && s[i].v == v {
		return &s[i]
	}
	return nil
}

// csrWithVer bundles a head CSR with its versionInfo so the steady-state
// in-place path allocates exactly one object per batch (undo snapshots come
// from the scratch arenas, amortized across batches).
type csrWithVer struct {
	csr CSR
	vi  versionInfo
}

// edgeOp is one batch update tagged with its operation; a weight change is a
// (delete, insert) pair on the same edge and the tag keeps them distinct
// after sorting.
type edgeOp struct {
	e   Edge
	del bool
}

// deltaScratch holds buffers reused across batches so steady-state in-place
// application allocates only the head object; even the undo snapshots old
// versions retain come from chunked arenas whose allocations amortize away.
type deltaScratch struct {
	bySrc, byDst []edgeOp   // batch updates sorted for each direction
	ids          []VertexID // merge buffer: neighbor ids
	ws           []Weight   // merge buffer: weights
	affected     []VertexID // vertices whose adjacency changed this batch
	cumBuf       []uint64   // backing array for the live head's rank index

	del, seen map[edgeKey]bool // checkBatch sets, cleared per batch

	slab    slabArena // undo segment snapshots
	entries undoArena // undo entry lists
}

type edgeKey struct{ u, v VertexID }

// slabArena hands out paired (id, weight) snapshot buffers from shared
// chunks. Chunks are append-only: once a sub-slice is handed to a frozen
// version it is never overwritten, and a chunk is dropped for a fresh one
// when the next request does not fit — the garbage collector reclaims it
// when the last frozen version referencing it dies.
type slabArena struct {
	ids []VertexID
	ws  []Weight
}

const slabChunkMin = 1 << 15

// reserve guarantees the next n elements fit in the current chunk, so a batch
// that pre-computes its total snapshot footprint takes at most one chunk
// allocation (amortized to a fraction by the 8x over-allocation).
func (a *slabArena) reserve(n int) {
	if len(a.ids)+n > cap(a.ids) {
		c := 8 * n
		if c < slabChunkMin {
			c = slabChunkMin
		}
		a.ids = make([]VertexID, 0, c)
		a.ws = make([]Weight, 0, c)
	}
}

func (a *slabArena) alloc(n int) ([]VertexID, []Weight) {
	if len(a.ids)+n > cap(a.ids) {
		c := 8 * n
		if c < slabChunkMin {
			c = slabChunkMin
		}
		a.ids = make([]VertexID, 0, c)
		a.ws = make([]Weight, 0, c)
	}
	i := len(a.ids)
	a.ids = a.ids[:i+n]
	a.ws = a.ws[:i+n]
	return a.ids[i : i+n : i+n], a.ws[i : i+n : i+n]
}

// undoArena chunk-allocates the per-batch undo entry lists; each batch's list
// must be one contiguous run so frozen lookups can binary-search it.
type undoArena struct {
	out []outUndo
	in  []inUndo
}

const entryChunkMin = 1 << 10

func (a *undoArena) allocOut(n int) []outUndo {
	if len(a.out)+n > cap(a.out) {
		c := 8 * n
		if c < entryChunkMin {
			c = entryChunkMin
		}
		a.out = make([]outUndo, 0, c)
	}
	i := len(a.out)
	a.out = a.out[:i+n]
	return a.out[i : i : i+n]
}

func (a *undoArena) allocIn(n int) []inUndo {
	if len(a.in)+n > cap(a.in) {
		c := 8 * n
		if c < entryChunkMin {
			c = entryChunkMin
		}
		a.in = make([]inUndo, 0, c)
	}
	i := len(a.in)
	a.in = a.in[:i+n]
	return a.in[i : i : i+n]
}

// rankIndex returns the prefix-degree array for EdgeAt on a slacked live
// layout, building it on first use. Each ApplyDelta returns a fresh head with
// cum == nil, and a superseded version's cum and scratch aliases are severed
// when it is superseded (applyInPlace freezes it; rebuildSlacked detaches it),
// so a cached index can never reflect another version's degrees. The backing
// array is owned by the scratch when one is attached; a detached version
// builds a private index.
func (vi *versionInfo) rankIndex(g *CSR) []uint64 {
	if vi.cum == nil {
		var buf []uint64
		if vi.scratch != nil {
			buf = vi.scratch.cumBuf
		}
		if cap(buf) < g.n+1 {
			buf = make([]uint64, g.n+1)
			if vi.scratch != nil {
				vi.scratch.cumBuf = buf
			}
		}
		cum := buf[:g.n+1]
		cum[0] = 0
		for v := 0; v < g.n; v++ {
			// Logical degree, not outLen: inline vertices keep outLen == 0.
			cum[v+1] = cum[v] + uint64(g.liveOutDeg(VertexID(v)))
		}
		vi.cum = cum
	}
	return vi.cum
}

// ApplyDelta produces the next graph version G+Δ like Apply, but touches only
// the adjacencies of vertices the batch mutates: updates are merged into each
// affected vertex's segment within its slack gap, and outWeightSum, the edge
// count, and the symmetry count are maintained incrementally. Cost is
// O(Σ deg(affected) + |Δ| log |Δ|) per batch instead of O(V+E).
//
// The versioned pointer-swap contract is preserved: the receiver continues to
// serve its exact pre-batch edge set (the recovery engine reads the old and
// new versions simultaneously during a batch). Physically the edge arrays are
// shared along the version chain and the receiver keeps snapshots of the
// segments the mutation overwrote, so reads on superseded versions cost one
// map probe per touched vertex. ApplyDelta must not race with readers of any
// version in the chain; the single-threaded host mutation path is the
// intended writer, and engine phases only run between mutations.
//
// ApplyDelta falls back to a full compacting rebuild — restoring fresh slack
// everywhere — when the batch cannot be absorbed in place: a vertex's slack
// is exhausted, the receiver is a dense build, or accumulated edits exceed
// the configured amortization threshold. Validation errors match Apply's.
//
//jetlint:hotpath
func (g *CSR) ApplyDelta(b Batch) (*CSR, error) {
	cfg := DefaultDeltaConfig()
	if g.ver != nil {
		cfg = g.ver.cfg
	}
	return g.ApplyDeltaCfg(b, cfg)
}

// ApplyDeltaCfg is ApplyDelta with an explicit tuning; tests use tiny slack
// values to force the exhaustion and compaction paths.
func (g *CSR) ApplyDeltaCfg(b Batch, cfg DeltaConfig) (*CSR, error) {
	if g.ver != nil && g.ver.frozen {
		// A superseded version must not mutate the shared arrays again;
		// divergent histories (speculative replays, tests) rebuild.
		if err := g.checkBatch(b, nil); err != nil {
			return nil, err
		}
		return g.rebuildSlacked(b, cfg, nil)
	}
	var sc *deltaScratch
	edits := 0
	if g.ver != nil {
		sc = g.ver.scratch
		edits = g.ver.edits
	}
	if sc == nil {
		sc = &deltaScratch{}
	}
	if err := g.checkBatch(b, sc); err != nil {
		return nil, err
	}
	if g.outLen == nil || edits+b.Size() > compactThreshold(cfg, g.m) {
		return g.rebuildSlacked(b, cfg, sc)
	}
	sc.load(b)
	if !g.fitsInSlack(sc) {
		return g.rebuildSlacked(b, cfg, sc)
	}
	return g.applyInPlace(cfg, sc, edits+b.Size()), nil
}

// compactThreshold returns the edit budget before a compacting rebuild; the
// SlackMin floor keeps tiny graphs from rebuilding on every batch.
func compactThreshold(cfg DeltaConfig, m int) int {
	t := int(cfg.CompactFrac * float64(m))
	if t < cfg.SlackMin {
		t = cfg.SlackMin
	}
	return t
}

// checkBatch validates b against g with the same rules and messages as Apply.
// With a scratch it reuses the set maps across batches (cleared, not
// reallocated); a nil scratch means a fallback path where allocation is moot.
func (g *CSR) checkBatch(b Batch, sc *deltaScratch) error {
	var del, seen map[edgeKey]bool
	if sc != nil {
		if sc.del == nil {
			sc.del = make(map[edgeKey]bool, len(b.Deletes))
			sc.seen = make(map[edgeKey]bool, len(b.Inserts))
		}
		clear(sc.del)
		clear(sc.seen)
		del, seen = sc.del, sc.seen
	} else {
		del = make(map[edgeKey]bool, len(b.Deletes))
		seen = make(map[edgeKey]bool, len(b.Inserts))
	}
	for _, e := range b.Deletes {
		k := edgeKey{e.Src, e.Dst}
		if del[k] {
			return fmt.Errorf("graph: duplicate delete of (%d,%d)", e.Src, e.Dst)
		}
		if _, ok := g.HasEdge(e.Src, e.Dst); !ok {
			return fmt.Errorf("graph: delete of missing edge (%d,%d)", e.Src, e.Dst)
		}
		del[k] = true
	}
	for _, e := range b.Inserts {
		if int(e.Src) >= g.n || int(e.Dst) >= g.n {
			return fmt.Errorf("graph: insert (%d,%d) out of range", e.Src, e.Dst)
		}
		k := edgeKey{e.Src, e.Dst}
		if seen[k] {
			return fmt.Errorf("graph: duplicate insert of (%d,%d)", e.Src, e.Dst)
		}
		seen[k] = true
		if _, ok := g.HasEdge(e.Src, e.Dst); ok && !del[k] {
			return fmt.Errorf("graph: insert of existing edge (%d,%d)", e.Src, e.Dst)
		}
	}
	return nil
}

// load sorts the batch into the scratch buffers: bySrc ordered by
// (src, dst, delete-first) for the out direction, byDst by
// (dst, src, delete-first) for the in direction. Delete-before-insert on the
// same edge makes a weight-change pair merge as remove-then-add.
func (sc *deltaScratch) load(b Batch) {
	sc.bySrc = sc.bySrc[:0]
	for _, e := range b.Deletes {
		sc.bySrc = append(sc.bySrc, edgeOp{e, true})
	}
	for _, e := range b.Inserts {
		sc.bySrc = append(sc.bySrc, edgeOp{e, false})
	}
	sc.byDst = append(sc.byDst[:0], sc.bySrc...)
	// slices.SortFunc, not sort.Slice: the reflect-based swapper allocates on
	// every call, and load runs once per batch on the hot path.
	slices.SortFunc(sc.bySrc, func(x, y edgeOp) int {
		if c := cmpID(x.e.Src, y.e.Src); c != 0 {
			return c
		}
		if c := cmpID(x.e.Dst, y.e.Dst); c != 0 {
			return c
		}
		return cmpDel(x.del, y.del)
	})
	slices.SortFunc(sc.byDst, func(x, y edgeOp) int {
		if c := cmpID(x.e.Dst, y.e.Dst); c != 0 {
			return c
		}
		if c := cmpID(x.e.Src, y.e.Src); c != 0 {
			return c
		}
		return cmpDel(x.del, y.del)
	})
}

func cmpID(a, b VertexID) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpDel orders deletes before inserts on an (src,dst) tie.
func cmpDel(x, y bool) int {
	switch {
	case x && !y:
		return -1
	case !x && y:
		return 1
	}
	return 0
}

// fitsInSlack checks, per affected vertex and direction, that the post-batch
// degree fits one of the vertex's representations: the inline record (degree
// at most the layout's inline capacity) or the slab segment capacity. The
// batch is already validated, so every delete removes exactly one slot and
// every insert adds exactly one.
func (g *CSR) fitsInSlack(sc *deltaScratch) bool {
	ok := true
	inl := int(g.inlCap)
	groupBy(sc.bySrc, srcOf, func(v VertexID, ops []edgeOp) {
		deg := g.liveOutDeg(v) + netGrowth(ops)
		if deg > inl && deg > int(g.outPtr[v+1]-g.outPtr[v]) {
			ok = false
		}
	})
	if !ok {
		return false
	}
	groupBy(sc.byDst, dstOf, func(v VertexID, ops []edgeOp) {
		deg := g.liveInDeg(v) + netGrowth(ops)
		if deg > inl && deg > int(g.inPtr[v+1]-g.inPtr[v]) {
			ok = false
		}
	})
	return ok
}

func netGrowth(ops []edgeOp) int {
	net := 0
	for _, op := range ops {
		if op.del {
			net--
		} else {
			net++
		}
	}
	return net
}

func srcOf(op edgeOp) VertexID { return op.e.Src }
func dstOf(op edgeOp) VertexID { return op.e.Dst }

// countGroups returns the number of distinct keys in a sorted op slice.
func countGroups(ops []edgeOp, keyOf func(edgeOp) VertexID) int {
	n := 0
	for i := 0; i < len(ops); i++ {
		if i == 0 || keyOf(ops[i]) != keyOf(ops[i-1]) {
			n++
		}
	}
	return n
}

// groupBy walks a sorted op slice and calls fn once per distinct key with the
// contiguous group.
func groupBy(ops []edgeOp, keyOf func(edgeOp) VertexID, fn func(VertexID, []edgeOp)) {
	for i := 0; i < len(ops); {
		j := i + 1
		for j < len(ops) && keyOf(ops[j]) == keyOf(ops[i]) {
			j++
		}
		fn(keyOf(ops[i]), ops[i:j])
		i = j
	}
}

// applyInPlace mutates the shared edge arrays to the post-batch state and
// returns the new head version. The receiver is frozen with undo snapshots of
// every overwritten segment. The batch has been validated and capacity-checked.
func (g *CSR) applyInPlace(cfg DeltaConfig, sc *deltaScratch, edits int) *CSR {
	// Undo snapshots and entry lists come from the scratch arenas: the lists
	// stay contiguous (sized by a group-count pre-pass) so frozen reads can
	// binary-search them, and chunk allocations amortize across batches.
	undoOut := sc.entries.allocOut(countGroups(sc.bySrc, srcOf))
	undoIn := sc.entries.allocIn(countGroups(sc.byDst, dstOf))

	// Reserve the batch's total snapshot footprint up front so the per-vertex
	// arena allocations below never split a batch across chunk switches.
	slabN := 0
	groupBy(sc.bySrc, srcOf, func(v VertexID, _ []edgeOp) { slabN += g.liveOutDeg(v) })
	groupBy(sc.byDst, dstOf, func(v VertexID, _ []edgeOp) { slabN += g.liveInDeg(v) })
	sc.slab.reserve(slabN)

	mDelta := 0
	// Out direction: snapshot each affected vertex's segment (wherever its
	// representation keeps it), merge it with its sorted updates into scratch,
	// and store back — storeOut picks the post-merge representation and
	// migrates inline↔slab in place when the degree crosses the threshold.
	groupBy(sc.bySrc, srcOf, func(v VertexID, ops []edgeOp) {
		ids, ws := g.liveOut(v)

		snapIDs, snapWs := sc.slab.alloc(len(ids))
		copy(snapIDs, ids)
		copy(snapWs, ws)
		undoOut = append(undoOut, outUndo{v: v, dst: snapIDs, w: snapWs, wsum: g.outWeightSum[v]})

		newIDs, newWs, _ := mergeSeg(sc, ids, ws, ops, outNeighbor)
		mDelta += len(newIDs) - len(ids)
		g.storeOut(v, newIDs, newWs)
		// Recompute the sum left-to-right over the merged segment rather than
		// adding the batch's weight delta: float addition is order-dependent,
		// and summing in segment order is exactly what a full rebuild does, so
		// the two mutation paths stay bitwise identical (adsorption divides by
		// this sum — an ulp here becomes visible state divergence).
		var sum float64
		for _, w := range newWs {
			sum += w
		}
		g.outWeightSum[v] = sum
	})
	// In direction.
	groupBy(sc.byDst, dstOf, func(v VertexID, ops []edgeOp) {
		ids, ws := g.liveIn(v)

		snapIDs, snapWs := sc.slab.alloc(len(ids))
		copy(snapIDs, ids)
		copy(snapWs, ws)
		undoIn = append(undoIn, inUndo{v: v, src: snapIDs, w: snapWs})

		newIDs, newWs, _ := mergeSeg(sc, ids, ws, ops, inNeighbor)
		g.storeIn(v, newIDs, newWs)
	})

	// One allocation for the new head: its CSR and versionInfo together.
	head := &csrWithVer{}
	ng := &head.csr
	*ng = CSR{
		n: g.n, m: g.m + mDelta,
		outPtr: g.outPtr, outLen: g.outLen, outDst: g.outDst, outW: g.outW,
		inPtr: g.inPtr, inLen: g.inLen, inSrc: g.inSrc, inW: g.inW,
		outInl: g.outInl, inInl: g.inInl, inlCap: g.inlCap,
		outInline: g.outInline, inInline: g.inInline,
		outWeightSum: g.outWeightSum,
		asymCount:    g.asymCount,
		ver:          &head.vi,
	}
	head.vi = versionInfo{cfg: cfg, edits: edits, scratch: sc}

	// Freeze the receiver in place — its existing versionInfo becomes the
	// frozen record, so pre-batch reads below go through the undo snapshots
	// while post-batch reads hit the mutated arrays. The scratch and rank
	// index move on with the live head; a frozen version never touches them.
	vi := g.ver
	vi.frozen = true
	vi.undoOut = undoOut
	vi.undoIn = undoIn
	vi.next = ng
	vi.edits = 0
	vi.scratch = nil
	vi.cum = nil

	// Symmetry maintenance: only vertices whose adjacency changed can change
	// their asymmetric status; diff each one's pre/post status. The affected
	// set is the sorted union of the two undo lists' vertices.
	sc.affected = sc.affected[:0]
	for i, j := 0, 0; i < len(undoOut) || j < len(undoIn); {
		switch {
		case j >= len(undoIn) || (i < len(undoOut) && undoOut[i].v < undoIn[j].v):
			sc.affected = append(sc.affected, undoOut[i].v)
			i++
		case i >= len(undoOut) || undoIn[j].v < undoOut[i].v:
			sc.affected = append(sc.affected, undoIn[j].v)
			j++
		default: // equal
			sc.affected = append(sc.affected, undoOut[i].v)
			i++
			j++
		}
	}
	for _, v := range sc.affected {
		preOut, _ := g.outSeg(v)
		preIn, _ := g.inSeg(v)
		postOut, _ := ng.outSeg(v)
		postIn, _ := ng.inSeg(v)
		pre := !segIDsEqual(preOut, preIn)
		post := !segIDsEqual(postOut, postIn)
		if pre != post {
			if post {
				ng.asymCount++
			} else {
				ng.asymCount--
			}
		}
	}
	return ng
}

// outNeighbor and inNeighbor project an op onto the neighbor id for one merge
// direction.
func outNeighbor(op edgeOp) VertexID { return op.e.Dst }
func inNeighbor(op edgeOp) VertexID  { return op.e.Src }

// mergeSeg merges one sorted adjacency segment with its sorted batch ops into
// sc's reusable buffers, returning the merged ids/weights and the weight
// delta. Validation guarantees every delete matches an existing id and no
// insert duplicates a surviving id, so the merge is a plain two-pointer pass.
func mergeSeg(sc *deltaScratch, ids []VertexID, ws []Weight, ops []edgeOp, idOf func(edgeOp) VertexID) ([]VertexID, []Weight, float64) {
	sc.ids = sc.ids[:0]
	sc.ws = sc.ws[:0]
	var wDelta float64
	i, j := 0, 0
	for i < len(ids) || j < len(ops) {
		if j >= len(ops) {
			sc.ids = append(sc.ids, ids[i])
			sc.ws = append(sc.ws, ws[i])
			i++
			continue
		}
		id := idOf(ops[j])
		if i < len(ids) && ids[i] < id {
			sc.ids = append(sc.ids, ids[i])
			sc.ws = append(sc.ws, ws[i])
			i++
			continue
		}
		if ops[j].del {
			// Validated: the deleted id is present, so ids[i] == id here.
			wDelta -= ws[i]
			i++
			j++
			continue
		}
		sc.ids = append(sc.ids, id)
		sc.ws = append(sc.ws, ops[j].e.Weight)
		wDelta += ops[j].e.Weight
		j++
	}
	return sc.ids, sc.ws, wDelta
}

// rebuildSlacked is the compacting fallback: apply the batch logically, then
// lay the result out with fresh slack per vertex. The receiver is untouched
// (it keeps serving its pre-batch edge set without any undo machinery).
func (g *CSR) rebuildSlacked(b Batch, cfg DeltaConfig, sc *deltaScratch) (*CSR, error) {
	dense, err := g.Apply(b)
	if err != nil {
		return nil, err
	}
	if vi := g.ver; vi != nil && !vi.frozen {
		// The scratch — including the rank-index buffer — moves on with the
		// new head. Sever the superseded version's aliases: a cached cum
		// would otherwise be rebuilt in place under it with the new head's
		// degrees, and a later EdgeAt on the old version would rank through
		// the wrong layout. Detached versions build a private index instead.
		vi.cum = nil
		vi.scratch = nil
	}
	return slackify(dense, cfg, sc), nil
}

// slackify re-lays a dense CSR with per-vertex slack gaps, returning a live
// head version with zero accumulated edits. The dense input's weight-sum and
// symmetry aggregates carry over; its edge arrays are not retained.
func slackify(dense *CSR, cfg DeltaConfig, sc *deltaScratch) *CSR {
	n := dense.n
	gap := func(deg int) int {
		s := int(float64(deg) * cfg.SlackFrac)
		if s < cfg.SlackMin {
			s = cfg.SlackMin
		}
		return s
	}
	g := &CSR{
		n: n, m: dense.m,
		outPtr:       make([]uint64, n+1),
		outLen:       make([]uint32, n),
		inPtr:        make([]uint64, n+1),
		inLen:        make([]uint32, n),
		outWeightSum: dense.outWeightSum,
		asymCount:    dense.asymCount,
	}
	for v := 0; v < n; v++ {
		od := int(dense.outPtr[v+1] - dense.outPtr[v])
		id := int(dense.inPtr[v+1] - dense.inPtr[v])
		g.outPtr[v+1] = g.outPtr[v] + uint64(od+gap(od))
		g.inPtr[v+1] = g.inPtr[v] + uint64(id+gap(id))
		g.outLen[v] = uint32(od)
		g.inLen[v] = uint32(id)
	}
	g.outDst = make([]VertexID, g.outPtr[n])
	g.outW = make([]Weight, g.outPtr[n])
	g.inSrc = make([]VertexID, g.inPtr[n])
	g.inW = make([]Weight, g.inPtr[n])
	for v := 0; v < n; v++ {
		copy(g.outDst[g.outPtr[v]:], dense.outDst[dense.outPtr[v]:dense.outPtr[v+1]])
		copy(g.outW[g.outPtr[v]:], dense.outW[dense.outPtr[v]:dense.outPtr[v+1]])
		copy(g.inSrc[g.inPtr[v]:], dense.inSrc[dense.inPtr[v]:dense.inPtr[v+1]])
		copy(g.inW[g.inPtr[v]:], dense.inW[dense.inPtr[v]:dense.inPtr[v+1]])
	}
	// Degree-adaptive layout: low-degree vertices move into inline records
	// and release their slab segment (outLen 0, capacity stays reserved so a
	// later spill is an in-place copy and edge offsets never change).
	if inl := cfg.InlineCap; inl > 0 {
		if inl > inlineCapMax {
			inl = inlineCapMax
		}
		g.inlCap = uint8(inl)
		g.outInl = make([]inlineRec, n)
		g.inInl = make([]inlineRec, n)
		for v := 0; v < n; v++ {
			if od := int(g.outLen[v]); od <= inl {
				r := &g.outInl[v]
				lo := dense.outPtr[v]
				r.n = uint8(copy(r.ids[:], dense.outDst[lo:lo+uint64(od)]))
				copy(r.ws[:], dense.outW[lo:lo+uint64(od)])
				g.outLen[v] = 0
				g.outInline++
			} else {
				g.outInl[v].n = inlineSpilled
			}
			if id := int(g.inLen[v]); id <= inl {
				r := &g.inInl[v]
				lo := dense.inPtr[v]
				r.n = uint8(copy(r.ids[:], dense.inSrc[lo:lo+uint64(id)]))
				copy(r.ws[:], dense.inW[lo:lo+uint64(id)])
				g.inLen[v] = 0
				g.inInline++
			} else {
				g.inInl[v].n = inlineSpilled
			}
		}
	}
	if sc == nil {
		sc = &deltaScratch{}
	}
	g.ver = &versionInfo{cfg: cfg, scratch: sc}
	return g
}
