// Package graph provides the graph substrate JetStream operates on: a
// Compressed Sparse Row representation with both out- and in-edge indexes
// (the paper's §4.7 storage format), batch mutation producing a new CSR
// version (host-side graph versioning), synthetic workload generators that
// stand in for the paper's five real-world datasets, and an edge-cut
// partitioner used to slice graphs that exceed the on-chip queue capacity.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex. The accelerator's event payloads carry
// 32-bit vertex ids, so the substrate uses the same width.
type VertexID = uint32

// Weight is an edge attribute. Selection algorithms interpret it as a
// distance/width; accumulative algorithms as a transition weight.
type Weight = float64

// Edge is a directed, weighted edge.
type Edge struct {
	Src, Dst VertexID
	Weight   Weight
}

// CSR is an immutable compressed-sparse-row graph with both directions
// indexed. JetStream requires the in-edge index for reapproximation request
// events (paper §4.7: "JetStream requires access to the incoming edges for
// each vertex, which are stored in another CSR structure").
type CSR struct {
	n int

	outPtr []uint64
	outDst []VertexID
	outW   []Weight

	inPtr []uint64
	inSrc []VertexID
	inW   []Weight

	// outWeightSum caches the total outgoing edge weight per vertex;
	// Adsorption normalizes propagation by it.
	outWeightSum []float64

	// symmetric caches whether the edge set is closed under reversal,
	// computed once at construction (buildSorted). Undirected algorithms
	// (CC) check it instead of re-scanning every edge with HasEdge.
	symmetric bool
}

// Symmetric reports whether every edge (u,v) has a reverse edge (v,u),
// ignoring weights. Computed at construction time, so this is O(1).
func (g *CSR) Symmetric() bool { return g.symmetric }

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return g.n }

// NumEdges returns the directed edge count.
func (g *CSR) NumEdges() int { return len(g.outDst) }

// OutDegree returns the number of outgoing edges of v.
func (g *CSR) OutDegree(v VertexID) int {
	return int(g.outPtr[v+1] - g.outPtr[v])
}

// InDegree returns the number of incoming edges of v.
func (g *CSR) InDegree(v VertexID) int {
	return int(g.inPtr[v+1] - g.inPtr[v])
}

// OutWeightSum returns the sum of weights on v's outgoing edges.
func (g *CSR) OutWeightSum(v VertexID) float64 { return g.outWeightSum[v] }

// Neighbor is one endpoint+weight pair of an adjacency list.
type Neighbor struct {
	V VertexID
	W Weight
}

// OutEdges calls fn for every outgoing edge of u. It avoids allocation so the
// engines can use it on hot paths.
func (g *CSR) OutEdges(u VertexID, fn func(dst VertexID, w Weight)) {
	for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
		fn(g.outDst[i], g.outW[i])
	}
}

// InEdges calls fn for every incoming edge of v.
func (g *CSR) InEdges(v VertexID, fn func(src VertexID, w Weight)) {
	for i := g.inPtr[v]; i < g.inPtr[v+1]; i++ {
		fn(g.inSrc[i], g.inW[i])
	}
}

// OutNeighbors returns a copy of u's out-adjacency; convenience for tests.
func (g *CSR) OutNeighbors(u VertexID) []Neighbor {
	out := make([]Neighbor, 0, g.OutDegree(u))
	g.OutEdges(u, func(dst VertexID, w Weight) { out = append(out, Neighbor{dst, w}) })
	return out
}

// InNeighbors returns a copy of v's in-adjacency.
func (g *CSR) InNeighbors(v VertexID) []Neighbor {
	out := make([]Neighbor, 0, g.InDegree(v))
	g.InEdges(v, func(src VertexID, w Weight) { out = append(out, Neighbor{src, w}) })
	return out
}

// HasEdge reports whether edge (u,v) exists and, if so, its weight. Out
// adjacencies are sorted by destination so this is a binary search.
func (g *CSR) HasEdge(u, v VertexID) (Weight, bool) {
	lo, hi := g.outPtr[u], g.outPtr[u+1]
	dst := g.outDst[lo:hi]
	i := sort.Search(len(dst), func(i int) bool { return dst[i] >= v })
	if i < len(dst) && dst[i] == v {
		return g.outW[lo+uint64(i)], true
	}
	return 0, false
}

// EdgeAt returns the i-th edge in (src, dst) order without materializing the
// whole edge list; the update-stream generator samples edges with it.
func (g *CSR) EdgeAt(i int) Edge {
	if i < 0 || i >= len(g.outDst) {
		panic(fmt.Sprintf("graph: EdgeAt(%d) out of range", i))
	}
	// Find the source: the last vertex whose adjacency starts at or before i.
	u := sort.Search(g.n, func(v int) bool { return g.outPtr[v+1] > uint64(i) })
	return Edge{VertexID(u), g.outDst[i], g.outW[i]}
}

// Edges returns all edges in (src, dst) order; used by tests and mutation.
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.n; u++ {
		for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
			out = append(out, Edge{VertexID(u), g.outDst[i], g.outW[i]})
		}
	}
	return out
}

// EdgeOffset returns the index of u's adjacency in the flat edge arrays;
// the timing layer uses it to compute edge-cache addresses.
func (g *CSR) EdgeOffset(u VertexID) uint64 { return g.outPtr[u] }

// InEdgeOffset returns the index of v's in-adjacency in the flat in-edge
// arrays; the reapproximation phase charges its reads against a region
// placed after the out-edge array.
func (g *CSR) InEdgeOffset(v VertexID) uint64 { return g.inPtr[v] }

// String summarizes the graph.
func (g *CSR) String() string {
	return fmt.Sprintf("CSR{V=%d, E=%d}", g.n, g.NumEdges())
}

// Validate checks structural invariants: monotone pointers, in/out edge sets
// mirror each other, adjacencies sorted, and no out-of-range endpoints.
// Tests call it after every build and mutation.
func (g *CSR) Validate() error {
	if len(g.outPtr) != g.n+1 || len(g.inPtr) != g.n+1 {
		return fmt.Errorf("graph: pointer array length mismatch")
	}
	if g.outPtr[0] != 0 || g.inPtr[0] != 0 {
		return fmt.Errorf("graph: pointer arrays must start at 0")
	}
	if g.outPtr[g.n] != uint64(len(g.outDst)) || g.inPtr[g.n] != uint64(len(g.inSrc)) {
		return fmt.Errorf("graph: pointer arrays must end at edge count")
	}
	for v := 0; v < g.n; v++ {
		if g.outPtr[v] > g.outPtr[v+1] || g.inPtr[v] > g.inPtr[v+1] {
			return fmt.Errorf("graph: non-monotone pointers at vertex %d", v)
		}
		for i := g.outPtr[v] + 1; i < g.outPtr[v+1]; i++ {
			if g.outDst[i-1] >= g.outDst[i] {
				return fmt.Errorf("graph: out adjacency of %d not strictly sorted", v)
			}
		}
		for i := g.inPtr[v] + 1; i < g.inPtr[v+1]; i++ {
			if g.inSrc[i-1] >= g.inSrc[i] {
				return fmt.Errorf("graph: in adjacency of %d not strictly sorted", v)
			}
		}
	}
	// Mirror check: every out edge must appear as an in edge and vice versa.
	type key struct{ u, v VertexID }
	seen := make(map[key]Weight, len(g.outDst))
	for u := 0; u < g.n; u++ {
		for i := g.outPtr[u]; i < g.outPtr[u+1]; i++ {
			if int(g.outDst[i]) >= g.n {
				return fmt.Errorf("graph: edge (%d,%d) out of range", u, g.outDst[i])
			}
			seen[key{VertexID(u), g.outDst[i]}] = g.outW[i]
		}
	}
	count := 0
	for v := 0; v < g.n; v++ {
		for i := g.inPtr[v]; i < g.inPtr[v+1]; i++ {
			w, ok := seen[key{g.inSrc[i], VertexID(v)}]
			if !ok {
				return fmt.Errorf("graph: in edge (%d,%d) has no out mirror", g.inSrc[i], v)
			}
			if w != g.inW[i] {
				return fmt.Errorf("graph: weight mismatch on edge (%d,%d)", g.inSrc[i], v)
			}
			count++
		}
	}
	if count != len(g.outDst) {
		return fmt.Errorf("graph: in edge count %d != out edge count %d", count, len(g.outDst))
	}
	for v := 0; v < g.n; v++ {
		var sum float64
		for i := g.outPtr[v]; i < g.outPtr[v+1]; i++ {
			sum += g.outW[i]
		}
		if math.Abs(sum-g.outWeightSum[v]) > 1e-9 {
			return fmt.Errorf("graph: stale outWeightSum at vertex %d", v)
		}
	}
	return nil
}
