// Package graph provides the graph substrate JetStream operates on: a
// Compressed Sparse Row representation with both out- and in-edge indexes
// (the paper's §4.7 storage format), batch mutation producing a new CSR
// version (host-side graph versioning), synthetic workload generators that
// stand in for the paper's five real-world datasets, and an edge-cut
// partitioner used to slice graphs that exceed the on-chip queue capacity.
//
// Two mutation paths produce the next graph version G+Δ:
//
//   - Apply rebuilds a dense CSR from scratch — the paper's "simplest case"
//     (§4.7) where the host writes a complete new CSR and swaps the pointer.
//     Cost O(V+E) per batch regardless of batch size.
//   - ApplyDelta (delta.go) mutates only the adjacencies of the vertices a
//     batch touches, using per-vertex slack gaps in the edge arrays, and
//     preserves the versioned pointer-swap semantics by snapshotting the
//     pre-mutation adjacencies onto the superseded version. Cost
//     O(Σ deg(affected)) per batch, amortized.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex. The accelerator's event payloads carry
// 32-bit vertex ids, so the substrate uses the same width.
type VertexID = uint32

// Weight is an edge attribute. Selection algorithms interpret it as a
// distance/width; accumulative algorithms as a transition weight.
type Weight = float64

// Edge is a directed, weighted edge.
type Edge struct {
	Src, Dst VertexID
	Weight   Weight
}

// CSR is a compressed-sparse-row graph with both directions indexed.
// JetStream requires the in-edge index for reapproximation request events
// (paper §4.7: "JetStream requires access to the incoming edges for each
// vertex, which are stored in another CSR structure").
//
// A CSR built by Build/buildSorted is dense: each vertex's adjacency is the
// contiguous range [outPtr[v], outPtr[v+1]). A CSR produced by the delta
// mutation layer additionally carries per-vertex slack: outPtr[v] is the
// start of v's segment, outPtr[v+1] its capacity end, and outLen[v] the used
// count — the gap absorbs future insertions without moving other segments.
//
// Logically every CSR version is immutable: readers of any version always
// observe that version's edge set. Physically, ApplyDelta mutates the edge
// arrays shared along a version chain and preserves old versions by
// snapshotting the overwritten adjacencies (see delta.go), so reads on a
// superseded version consult the snapshot chain. A version that has never
// been superseded reads straight from its arrays.
type CSR struct {
	n int
	m int // logical directed edge count

	outPtr []uint64
	outLen []uint32 // used counts; nil for dense layouts (used == capacity)
	outDst []VertexID
	outW   []Weight

	inPtr []uint64
	inLen []uint32
	inSrc []VertexID
	inW   []Weight

	// outWeightSum caches the total outgoing edge weight per vertex;
	// Adsorption normalizes propagation by it.
	outWeightSum []float64

	// asymCount is the number of vertices whose out-neighbor id list differs
	// from their in-neighbor id list; 0 means the edge set is closed under
	// reversal. Maintained incrementally by the delta mutation layer.
	asymCount int

	// Degree-adaptive layout (inline.go): when inlCap > 0, vertices with at
	// most inlCap neighbors in a direction store them directly in the
	// per-vertex cache-line record instead of the slab, and outLen/inLen is 0
	// for them. nil/0 for dense builds and slab-only layouts.
	outInl []inlineRec
	inInl  []inlineRec
	inlCap uint8

	// outInline/inInline count vertices currently stored inline per
	// direction; the representation-mix metric reads them in O(1).
	outInline int
	inInline  int

	// ver holds delta-mutation bookkeeping: nil for plain dense builds,
	// otherwise the version's role in a mutation chain (head scratch state or
	// the undo snapshots of a superseded version). See delta.go.
	ver *versionInfo
}

// Symmetric reports whether every edge (u,v) has a reverse edge (v,u),
// ignoring weights. Maintained at construction and across delta mutation, so
// this is O(1). Undirected algorithms (CC) check it instead of re-scanning
// every edge with HasEdge.
func (g *CSR) Symmetric() bool { return g.asymCount == 0 }

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return g.n }

// NumEdges returns the directed edge count.
func (g *CSR) NumEdges() int { return g.m }

// EdgeSlots returns the physical size of the out-edge arrays — edge count
// plus slack gaps for delta-mutated versions, exactly the edge count for
// dense builds. The timing layer places the in-edge region after this many
// out-edge records so modeled addresses never alias.
func (g *CSR) EdgeSlots() int { return len(g.outDst) }

// outSeg returns v's out-adjacency (destinations and weights, sorted by
// destination) as observed by this version. A superseded version consults
// its undo snapshots before deferring to the next version in the chain.
func (g *CSR) outSeg(v VertexID) ([]VertexID, []Weight) {
	cur := g
	for {
		vi := cur.ver
		if vi == nil || !vi.frozen {
			return cur.liveOut(v)
		}
		if u := vi.lookupOut(v); u != nil {
			return u.dst, u.w
		}
		cur = vi.next
	}
}

// inSeg returns v's in-adjacency (sources and weights, sorted by source) as
// observed by this version.
func (g *CSR) inSeg(v VertexID) ([]VertexID, []Weight) {
	cur := g
	for {
		vi := cur.ver
		if vi == nil || !vi.frozen {
			return cur.liveIn(v)
		}
		if u := vi.lookupIn(v); u != nil {
			return u.src, u.w
		}
		cur = vi.next
	}
}

// OutDegree returns the number of outgoing edges of v.
func (g *CSR) OutDegree(v VertexID) int {
	ids, _ := g.outSeg(v)
	return len(ids)
}

// InDegree returns the number of incoming edges of v.
func (g *CSR) InDegree(v VertexID) int {
	ids, _ := g.inSeg(v)
	return len(ids)
}

// OutWeightSum returns the sum of weights on v's outgoing edges.
func (g *CSR) OutWeightSum(v VertexID) float64 {
	cur := g
	for {
		vi := cur.ver
		if vi == nil || !vi.frozen {
			return cur.outWeightSum[v]
		}
		if u := vi.lookupOut(v); u != nil {
			return u.wsum
		}
		cur = vi.next
	}
}

// Neighbor is one endpoint+weight pair of an adjacency list.
type Neighbor struct {
	V VertexID
	W Weight
}

// OutEdges calls fn for every outgoing edge of u. It avoids allocation so the
// engines can use it on hot paths.
func (g *CSR) OutEdges(u VertexID, fn func(dst VertexID, w Weight)) {
	ids, ws := g.outSeg(u)
	for i, dst := range ids {
		fn(dst, ws[i])
	}
}

// InEdges calls fn for every incoming edge of v.
func (g *CSR) InEdges(v VertexID, fn func(src VertexID, w Weight)) {
	ids, ws := g.inSeg(v)
	for i, src := range ids {
		fn(src, ws[i])
	}
}

// OutNeighbors returns a copy of u's out-adjacency; convenience for tests.
func (g *CSR) OutNeighbors(u VertexID) []Neighbor {
	out := make([]Neighbor, 0, g.OutDegree(u))
	g.OutEdges(u, func(dst VertexID, w Weight) { out = append(out, Neighbor{dst, w}) })
	return out
}

// InNeighbors returns a copy of v's in-adjacency.
func (g *CSR) InNeighbors(v VertexID) []Neighbor {
	out := make([]Neighbor, 0, g.InDegree(v))
	g.InEdges(v, func(src VertexID, w Weight) { out = append(out, Neighbor{src, w}) })
	return out
}

// HasEdge reports whether edge (u,v) exists and, if so, its weight. Out
// adjacencies are sorted by destination so this is a binary search.
func (g *CSR) HasEdge(u, v VertexID) (Weight, bool) {
	ids, ws := g.outSeg(u)
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= v })
	if i < len(ids) && ids[i] == v {
		return ws[i], true
	}
	return 0, false
}

// searchIn reports whether (u,v) exists as an in edge of v and, if so, its
// weight — the in-direction mirror of HasEdge, used by Validate.
func (g *CSR) searchIn(u, v VertexID) (Weight, bool) {
	ids, ws := g.inSeg(v)
	i := sort.Search(len(ids), func(i int) bool { return ids[i] >= u })
	if i < len(ids) && ids[i] == u {
		return ws[i], true
	}
	return 0, false
}

// EdgeAt returns the i-th edge in (src, dst) order without materializing the
// whole edge list; the update-stream generator samples edges with it. On
// dense layouts this is a binary search over the pointer array; slacked
// layouts rank through a lazily built per-version prefix index (one O(V)
// build per graph version, amortized over the batch's samples). The rank
// index is built on first use, so EdgeAt on a slacked version is not safe for
// concurrent callers — the single-threaded host mutation path is the only
// intended user.
func (g *CSR) EdgeAt(i int) Edge {
	if i < 0 || i >= g.m {
		panic(fmt.Sprintf("graph: EdgeAt(%d) out of range", i))
	}
	if g.outLen == nil && (g.ver == nil || !g.ver.frozen) {
		// Dense layout: pointers double as the rank index.
		u := sort.Search(g.n, func(v int) bool { return g.outPtr[v+1] > uint64(i) })
		return Edge{VertexID(u), g.outDst[i], g.outW[i]}
	}
	if g.ver != nil && !g.ver.frozen {
		cum := g.ver.rankIndex(g)
		u := sort.Search(g.n, func(v int) bool { return cum[v+1] > uint64(i) })
		// Index through the live segment rather than the slab directly: an
		// inline vertex's edges live in its record, not at outPtr[u].
		ids, ws := g.liveOut(VertexID(u))
		k := uint64(i) - cum[u]
		return Edge{VertexID(u), ids[k], ws[k]}
	}
	// Superseded version: rare path, scan the logical segments.
	for v := 0; v < g.n; v++ {
		ids, ws := g.outSeg(VertexID(v))
		if i < len(ids) {
			return Edge{VertexID(v), ids[i], ws[i]}
		}
		i -= len(ids)
	}
	panic("graph: EdgeAt rank exceeded edge count") // unreachable: i < g.m
}

// Edges returns all edges in (src, dst) order; used by tests, mutation, and
// checkpoint serialization (which canonicalizes the slack layout away by
// construction — the returned list never contains gap slots).
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for u := 0; u < g.n; u++ {
		ids, ws := g.outSeg(VertexID(u))
		for i, dst := range ids {
			out = append(out, Edge{VertexID(u), dst, ws[i]})
		}
	}
	return out
}

// EdgeOffset returns the index of u's adjacency in the flat edge arrays;
// the timing layer uses it to compute edge-cache addresses. Offsets are
// stable across in-place delta mutation (segments never move between
// compactions) and must be re-queried after a version swap.
func (g *CSR) EdgeOffset(u VertexID) uint64 { return g.outPtr[u] }

// InEdgeOffset returns the index of v's in-adjacency in the flat in-edge
// arrays; the reapproximation phase charges its reads against a region
// placed after the out-edge array.
func (g *CSR) InEdgeOffset(v VertexID) uint64 { return g.inPtr[v] }

// String summarizes the graph.
func (g *CSR) String() string {
	return fmt.Sprintf("CSR{V=%d, E=%d}", g.n, g.NumEdges())
}

// Validate checks structural invariants: monotone pointers, used counts
// within capacity, in/out edge sets mirror each other, adjacencies sorted,
// consistent cached aggregates (outWeightSum, the symmetry count), and no
// out-of-range endpoints. Tests call it after every build and mutation.
//
// The mirror check binary-searches the opposite-direction adjacency for each
// edge (O(E log d̄)) instead of materializing an O(E) map, so
// Validate-after-every-batch test loops stay cheap.
func (g *CSR) Validate() error {
	live := g.ver == nil || !g.ver.frozen
	if live {
		if err := g.validateLayout(); err != nil {
			return err
		}
	}
	outCount, inCount := 0, 0
	asym := 0
	for v := 0; v < g.n; v++ {
		ids, ws := g.outSeg(VertexID(v))
		outCount += len(ids)
		for i, dst := range ids {
			if int(dst) >= g.n {
				return fmt.Errorf("graph: edge (%d,%d) out of range", v, dst)
			}
			if i > 0 && ids[i-1] >= dst {
				return fmt.Errorf("graph: out adjacency of %d not strictly sorted", v)
			}
			w, ok := g.searchIn(VertexID(v), dst)
			if !ok {
				return fmt.Errorf("graph: out edge (%d,%d) has no in mirror", v, dst)
			}
			if w != ws[i] {
				return fmt.Errorf("graph: weight mismatch on edge (%d,%d)", v, dst)
			}
		}
		inIDs, _ := g.inSeg(VertexID(v))
		inCount += len(inIDs)
		for i, src := range inIDs {
			if int(src) >= g.n {
				return fmt.Errorf("graph: in edge (%d,%d) out of range", src, v)
			}
			if i > 0 && inIDs[i-1] >= src {
				return fmt.Errorf("graph: in adjacency of %d not strictly sorted", v)
			}
		}
		// Every out edge has an in mirror, per-vertex lists are duplicate-free
		// (strictly sorted), and the totals match below — so the in set is
		// exactly the mirror of the out set without a second search pass.
		if !segIDsEqual(ids, inIDs) {
			asym++
		}
		var sum float64
		for _, w := range ws {
			sum += w
		}
		if math.Abs(sum-g.OutWeightSum(VertexID(v))) > 1e-9 {
			return fmt.Errorf("graph: stale outWeightSum at vertex %d", v)
		}
	}
	if outCount != g.m {
		return fmt.Errorf("graph: out edge count %d != recorded count %d", outCount, g.m)
	}
	if inCount != g.m {
		return fmt.Errorf("graph: in edge count %d != out edge count %d", inCount, g.m)
	}
	if asym != g.asymCount {
		return fmt.Errorf("graph: symmetry count %d, recomputed %d", g.asymCount, asym)
	}
	return nil
}

// validateLayout checks the physical array invariants of a live version.
func (g *CSR) validateLayout() error {
	if len(g.outPtr) != g.n+1 || len(g.inPtr) != g.n+1 {
		return fmt.Errorf("graph: pointer array length mismatch")
	}
	if g.outPtr[0] != 0 || g.inPtr[0] != 0 {
		return fmt.Errorf("graph: pointer arrays must start at 0")
	}
	if g.outPtr[g.n] != uint64(len(g.outDst)) || g.inPtr[g.n] != uint64(len(g.inSrc)) {
		return fmt.Errorf("graph: pointer arrays must end at the array size")
	}
	if (g.outLen == nil) != (g.inLen == nil) {
		return fmt.Errorf("graph: slack layout must cover both directions")
	}
	for v := 0; v < g.n; v++ {
		if g.outPtr[v] > g.outPtr[v+1] || g.inPtr[v] > g.inPtr[v+1] {
			return fmt.Errorf("graph: non-monotone pointers at vertex %d", v)
		}
		if g.outLen != nil {
			if uint64(g.outLen[v]) > g.outPtr[v+1]-g.outPtr[v] {
				return fmt.Errorf("graph: out segment of %d overflows its capacity", v)
			}
			if uint64(g.inLen[v]) > g.inPtr[v+1]-g.inPtr[v] {
				return fmt.Errorf("graph: in segment of %d overflows its capacity", v)
			}
		}
	}
	if g.outLen == nil && g.m != len(g.outDst) {
		return fmt.Errorf("graph: dense layout records %d edges over %d slots", g.m, len(g.outDst))
	}
	if (g.outInl == nil) != (g.inInl == nil) {
		return fmt.Errorf("graph: adaptive layout must cover both directions")
	}
	if g.outInl != nil {
		if g.outLen == nil {
			return fmt.Errorf("graph: adaptive layout requires a slacked layout")
		}
		if g.inlCap == 0 || g.inlCap > inlineCapMax {
			return fmt.Errorf("graph: inline capacity %d out of range", g.inlCap)
		}
		if len(g.outInl) != g.n || len(g.inInl) != g.n {
			return fmt.Errorf("graph: inline record array length mismatch")
		}
		outN, inN := 0, 0
		for v := 0; v < g.n; v++ {
			on, in := g.outInl[v].n, g.inInl[v].n
			if on != inlineSpilled {
				if on > g.inlCap {
					return fmt.Errorf("graph: inline out record of %d holds %d > cap %d", v, on, g.inlCap)
				}
				if g.outLen[v] != 0 {
					return fmt.Errorf("graph: vertex %d is inline but outLen is %d", v, g.outLen[v])
				}
				outN++
			}
			if in != inlineSpilled {
				if in > g.inlCap {
					return fmt.Errorf("graph: inline in record of %d holds %d > cap %d", v, in, g.inlCap)
				}
				if g.inLen[v] != 0 {
					return fmt.Errorf("graph: vertex %d is inline but inLen is %d", v, g.inLen[v])
				}
				inN++
			}
		}
		if outN != g.outInline || inN != g.inInline {
			return fmt.Errorf("graph: inline counts (%d,%d), recomputed (%d,%d)", g.outInline, g.inInline, outN, inN)
		}
	}
	return nil
}

// segIDsEqual compares two sorted neighbor-id lists elementwise.
func segIDsEqual(a, b []VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
