package graph

import (
	"errors"
	"math"
	"testing"
)

func validateTestGraph() *CSR {
	return MustBuild(8, []Edge{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 2},
		{Src: 2, Dst: 3, Weight: 3},
		{Src: 3, Dst: 4, Weight: 4},
	})
}

func TestSanitizeBatchCatchesEachKind(t *testing.T) {
	g := validateTestGraph()
	cases := []struct {
		name string
		b    Batch
		kind IssueKind
	}{
		{"insert out of range", Batch{Inserts: []Edge{{Src: 0, Dst: 99, Weight: 1}}}, IssueOutOfRange},
		{"delete out of range", Batch{Deletes: []Edge{{Src: 99, Dst: 0}}}, IssueOutOfRange},
		{"nan weight", Batch{Inserts: []Edge{{Src: 0, Dst: 5, Weight: math.NaN()}}}, IssueBadWeight},
		{"inf weight", Batch{Inserts: []Edge{{Src: 0, Dst: 5, Weight: math.Inf(1)}}}, IssueBadWeight},
		{"non-positive weight", Batch{Inserts: []Edge{{Src: 0, Dst: 5, Weight: 0}}}, IssueBadWeight},
		{"duplicate insert", Batch{Inserts: []Edge{{Src: 0, Dst: 5, Weight: 1}, {Src: 0, Dst: 5, Weight: 2}}}, IssueDuplicate},
		{"duplicate delete", Batch{Deletes: []Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}}, IssueDuplicate},
		{"delete of absent edge", Batch{Deletes: []Edge{{Src: 4, Dst: 5}}}, IssueMissingDelete},
		{"insert of present edge", Batch{Inserts: []Edge{{Src: 0, Dst: 1, Weight: 9}}}, IssueExistingInsert},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clean, issues := g.SanitizeBatch(tc.b)
			if len(issues) != 1 {
				t.Fatalf("got %d issues, want 1: %v", len(issues), issues)
			}
			if issues[0].Kind != tc.kind {
				t.Errorf("kind %v, want %v", issues[0].Kind, tc.kind)
			}
			// The repaired batch must always apply cleanly.
			if _, err := g.Apply(clean); err != nil {
				t.Errorf("sanitized batch does not apply: %v", err)
			}
		})
	}
}

func TestSanitizeBatchNormalizesDeleteWeights(t *testing.T) {
	g := validateTestGraph()
	// A stale or corrupted delete weight must be replaced by the stored edge
	// weight so it cannot poison the value-aware recovery.
	clean, issues := g.SanitizeBatch(Batch{Deletes: []Edge{{Src: 1, Dst: 2, Weight: 777}}})
	if len(issues) != 0 {
		t.Fatalf("unexpected issues: %v", issues)
	}
	if len(clean.Deletes) != 1 || clean.Deletes[0].Weight != 2 {
		t.Errorf("delete weight not normalized: %+v", clean.Deletes)
	}
}

func TestSanitizeBatchAllowsWeightModification(t *testing.T) {
	g := validateTestGraph()
	// Delete + insert of the same pair in one batch is the paper's
	// weight-modification idiom (§2.1) and must stay legal.
	b := Batch{
		Deletes: []Edge{{Src: 0, Dst: 1}},
		Inserts: []Edge{{Src: 0, Dst: 1, Weight: 10}},
	}
	clean, issues := g.SanitizeBatch(b)
	if len(issues) != 0 {
		t.Fatalf("weight modification flagged: %v", issues)
	}
	ng, err := g.Apply(clean)
	if err != nil {
		t.Fatal(err)
	}
	if w, ok := ng.HasEdge(0, 1); !ok || w != 10 {
		t.Errorf("modified edge weight %v (present=%v), want 10", w, ok)
	}
}

func TestSanitizeBatchDoesNotMutateInput(t *testing.T) {
	g := validateTestGraph()
	b := Batch{
		Inserts: []Edge{{Src: 0, Dst: 5, Weight: 1}, {Src: 0, Dst: 99, Weight: 1}},
		Deletes: []Edge{{Src: 0, Dst: 1, Weight: 777}},
	}
	g.SanitizeBatch(b)
	if b.Deletes[0].Weight != 777 || len(b.Inserts) != 2 {
		t.Errorf("input batch was modified: %+v", b)
	}
}

func TestValidateBatchTypedError(t *testing.T) {
	g := validateTestGraph()
	if err := g.ValidateBatch(Batch{Inserts: []Edge{{Src: 0, Dst: 5, Weight: 1}}}); err != nil {
		t.Errorf("clean batch rejected: %v", err)
	}
	err := g.ValidateBatch(Batch{
		Inserts: []Edge{{Src: 0, Dst: 99, Weight: 1}, {Src: 0, Dst: 5, Weight: math.NaN()}},
	})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not *BatchError", err)
	}
	if len(be.Issues) != 2 {
		t.Errorf("got %d issues, want 2", len(be.Issues))
	}
	if be.Error() == "" {
		t.Error("empty error message")
	}
}

func TestIngestPolicyStrings(t *testing.T) {
	if Strict.String() != "strict" || Repair.String() != "repair" {
		t.Errorf("policy strings: %v, %v", Strict, Repair)
	}
	for k := IssueOutOfRange; k <= IssueExistingInsert; k++ {
		if k.String() == "" {
			t.Errorf("IssueKind(%d) has empty string", int(k))
		}
	}
}
