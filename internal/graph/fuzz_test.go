package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the text loader: arbitrary input must either
// parse into a valid CSR or return an error — never panic, never produce a
// structure that fails validation.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 3.5\n# comment\n\n2 0 1\n")
	f.Add("bad line\n")
	f.Add("0 0 0\n")
	f.Add("4294967295 0\n")
	f.Add("1 2 NaN\n")
	f.Add("0 1\n0 1\n") // duplicate edge
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid CSR: %v\ninput: %q", err, input)
		}
	})
}

// FuzzApplyBatch hardens version construction: arbitrary batches against a
// fixed graph must either apply into a valid CSR or be rejected.
func FuzzApplyBatch(f *testing.F) {
	f.Add(uint16(0), uint16(1), 1.5, uint16(2), uint16(3))
	f.Add(uint16(9), uint16(9), -1.0, uint16(0), uint16(0))
	f.Fuzz(func(t *testing.T, iu, iv uint16, w float64, du, dv uint16) {
		g := MustBuild(16, []Edge{
			{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2},
			{Src: 2, Dst: 3, Weight: 3}, {Src: 3, Dst: 0, Weight: 4},
		})
		b := Batch{
			Inserts: []Edge{{Src: VertexID(iu), Dst: VertexID(iv), Weight: w}},
			Deletes: []Edge{{Src: VertexID(du), Dst: VertexID(dv), Weight: 0}},
		}
		ng, err := g.Apply(b)
		if err != nil {
			return
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("accepted batch produced invalid CSR: %v\nbatch: %+v", err, b)
		}
	})
}
