package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the text loader: arbitrary input must either
// parse into a valid CSR or return an error — never panic, never produce a
// structure that fails validation.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 3.5\n# comment\n\n2 0 1\n")
	f.Add("bad line\n")
	f.Add("0 0 0\n")
	f.Add("4294967295 0\n")
	f.Add("1 2 NaN\n")
	f.Add("0 1\n0 1\n") // duplicate edge
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input), 0)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid CSR: %v\ninput: %q", err, input)
		}
	})
}

// FuzzApplyDelta is the differential fuzz target for the two mutation paths:
// any batch must either be rejected identically by ApplyDelta and Apply, or
// produce identical logical graphs through both — across a seed-derived
// sequence of batches so the in-place, slack-exhaustion, and compaction
// paths all get hit (the slack config is derived from the inputs too).
func FuzzApplyDelta(f *testing.F) {
	f.Add(uint16(0), uint16(5), 1.5, uint16(2), uint16(3), uint8(0))
	f.Add(uint16(1), uint16(2), 2.0, uint16(1), uint16(2), uint8(1)) // weight change pair
	f.Add(uint16(9), uint16(9), -1.0, uint16(0), uint16(0), uint8(7))
	f.Fuzz(func(t *testing.T, iu, iv uint16, w float64, du, dv uint16, slack uint8) {
		cfg := DeltaConfig{
			SlackMin:    int(slack % 8),
			SlackFrac:   float64(slack%4) * 0.25,
			CompactFrac: float64(slack%16) * 0.05,
		}
		dg := MustBuild(16, []Edge{
			{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2},
			{Src: 2, Dst: 3, Weight: 3}, {Src: 3, Dst: 0, Weight: 4},
			{Src: 0, Dst: 5, Weight: 5}, {Src: 5, Dst: 0, Weight: 6},
		})
		rg := dg
		// Three derived batches: the fuzzed one, then permutations that hit a
		// now-slacked graph so in-place application actually runs.
		batches := []Batch{
			{
				Inserts: []Edge{{Src: VertexID(iu), Dst: VertexID(iv), Weight: w}},
				Deletes: []Edge{{Src: VertexID(du), Dst: VertexID(dv), Weight: 0}},
			},
			{
				Inserts: []Edge{{Src: VertexID(iv % 16), Dst: VertexID(du % 16), Weight: 2}},
			},
			{
				Deletes: []Edge{{Src: VertexID(iu), Dst: VertexID(iv), Weight: 0}},
			},
		}
		for step, b := range batches {
			nd, errD := dg.ApplyDeltaCfg(b, cfg)
			nr, errA := rg.Apply(b)
			if (errD == nil) != (errA == nil) {
				t.Fatalf("step %d: acceptance diverges: delta=%v apply=%v\nbatch: %+v", step, errD, errA, b)
			}
			if errD != nil {
				if errD.Error() != errA.Error() {
					t.Fatalf("step %d: rejection messages diverge:\n  delta: %v\n  apply: %v", step, errD, errA)
				}
				continue
			}
			if err := nd.Validate(); err != nil {
				t.Fatalf("step %d: delta result invalid: %v\nbatch: %+v", step, err, b)
			}
			de, re := nd.Edges(), nr.Edges()
			if len(de) != len(re) {
				t.Fatalf("step %d: edge counts diverge: %d vs %d", step, len(de), len(re))
			}
			for i := range de {
				if de[i] != re[i] {
					t.Fatalf("step %d: edge %d diverges: %+v vs %+v", step, i, de[i], re[i])
				}
			}
			dg, rg = nd, nr
		}
	})
}

// FuzzApplyBatch hardens version construction: arbitrary batches against a
// fixed graph must either apply into a valid CSR or be rejected.
func FuzzApplyBatch(f *testing.F) {
	f.Add(uint16(0), uint16(1), 1.5, uint16(2), uint16(3))
	f.Add(uint16(9), uint16(9), -1.0, uint16(0), uint16(0))
	f.Fuzz(func(t *testing.T, iu, iv uint16, w float64, du, dv uint16) {
		g := MustBuild(16, []Edge{
			{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 2},
			{Src: 2, Dst: 3, Weight: 3}, {Src: 3, Dst: 0, Weight: 4},
		})
		b := Batch{
			Inserts: []Edge{{Src: VertexID(iu), Dst: VertexID(iv), Weight: w}},
			Deletes: []Edge{{Src: VertexID(du), Dst: VertexID(dv), Weight: 0}},
		}
		ng, err := g.Apply(b)
		if err != nil {
			return
		}
		if err := ng.Validate(); err != nil {
			t.Fatalf("accepted batch produced invalid CSR: %v\nbatch: %+v", err, b)
		}
	})
}
