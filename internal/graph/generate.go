package graph

import (
	"fmt"
	"math/rand"
)

// The paper evaluates on five real-world graphs (Table 2). They are not
// redistributable here, so each is replaced by a synthetic generator that
// reproduces its topology class at laptop scale:
//
//	WK, UK — "narrow graphs with long paths" (web crawls): layered DAG-like
//	         graphs with strong forward locality and occasional long-range
//	         links, giving large diameters.
//	FB, LJ, TW — "large, highly connected networks" (social): RMAT power-law
//	         graphs with heavy-tailed degree distributions and small diameter.
//
// All generators are deterministic for a given seed.

// RMATConfig parameterizes an R-MAT recursive-matrix generator.
type RMATConfig struct {
	Vertices  int
	Edges     int
	A, B, C   float64 // quadrant probabilities; D = 1-A-B-C
	MaxWeight float64 // weights drawn uniformly from [1, MaxWeight]
	Seed      int64
}

// RMAT generates a power-law graph in the style of the social-network
// datasets. Duplicate picks are rejected so exactly cfg.Edges distinct
// edges result (or as many as fit).
func RMAT(cfg RMATConfig) *CSR {
	if cfg.A == 0 && cfg.B == 0 && cfg.C == 0 {
		cfg.A, cfg.B, cfg.C = 0.57, 0.19, 0.19
	}
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	scale := 0
	for 1<<scale < cfg.Vertices {
		scale++
	}
	n := cfg.Vertices
	type key struct{ u, v VertexID }
	seen := make(map[key]bool, cfg.Edges)
	es := make([]Edge, 0, cfg.Edges)
	attempts := 0
	for len(es) < cfg.Edges && attempts < cfg.Edges*64 {
		attempts++
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < cfg.A: // upper-left
			case r < cfg.A+cfg.B:
				v |= 1 << bit
			case r < cfg.A+cfg.B+cfg.C:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		k := key{VertexID(u), VertexID(v)}
		if seen[k] {
			continue
		}
		seen[k] = true
		es = append(es, Edge{k.u, k.v, 1 + rng.Float64()*(cfg.MaxWeight-1)})
	}
	return MustBuild(n, es)
}

// WebCrawlConfig parameterizes the narrow long-path generator.
type WebCrawlConfig struct {
	Vertices  int
	AvgDegree float64
	Locality  int // max forward hop for local links; controls diameter
	LongRange float64
	MaxWeight float64
	Seed      int64
}

// WebCrawl generates a web-crawl-like graph: vertices are ordered (crawl
// order); most edges point a short distance forward (site-local links)
// producing long shortest-path chains; a small fraction are long-range.
func WebCrawl(cfg WebCrawlConfig) *CSR {
	if cfg.Locality <= 0 {
		cfg.Locality = 8
	}
	if cfg.LongRange <= 0 {
		cfg.LongRange = 0.05
	}
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Vertices
	type key struct{ u, v VertexID }
	seen := make(map[key]bool)
	es := make([]Edge, 0, int(float64(n)*cfg.AvgDegree))
	// Backbone: a path through all vertices guarantees the long-diameter
	// structure the paper attributes to WK and UK.
	for u := 0; u+1 < n; u++ {
		k := key{VertexID(u), VertexID(u + 1)}
		seen[k] = true
		es = append(es, Edge{k.u, k.v, 1 + rng.Float64()*(cfg.MaxWeight-1)})
	}
	want := int(float64(n) * cfg.AvgDegree)
	attempts := 0
	for len(es) < want && attempts < want*64 {
		attempts++
		u := rng.Intn(n)
		var v int
		if rng.Float64() < cfg.LongRange {
			// Long-range links split between backward hub links (to
			// already-crawled pages) and bounded forward skips (~2% of the
			// crawl). Backward links preserve the long forward paths that
			// make the class "narrow"; the bounded skips provide the path
			// redundancy real web graphs have, so a single deleted edge does
			// not orphan everything downstream.
			if rng.Float64() < 0.5 {
				if u == 0 {
					continue
				}
				v = rng.Intn(u)
			} else {
				reach := n / 25
				if reach < cfg.Locality*2 {
					reach = cfg.Locality * 2
				}
				v = u + cfg.Locality + rng.Intn(reach)
			}
		} else {
			v = u + 1 + rng.Intn(cfg.Locality)
		}
		if v >= n || v == u {
			continue
		}
		k := key{VertexID(u), VertexID(v)}
		if seen[k] {
			continue
		}
		seen[k] = true
		es = append(es, Edge{k.u, k.v, 1 + rng.Float64()*(cfg.MaxWeight-1)})
	}
	return MustBuild(n, es)
}

// GridConfig parameterizes a road-network-like lattice.
type GridConfig struct {
	Rows, Cols int
	Diagonal   float64 // probability of a diagonal shortcut per cell
	MaxWeight  float64
	Seed       int64
}

// Grid generates a 2D lattice with bidirectional edges and random weights —
// a road-network stand-in used by the roadnetwork example.
func Grid(cfg GridConfig) *CSR {
	if cfg.MaxWeight <= 0 {
		cfg.MaxWeight = 16
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Rows * cfg.Cols
	id := func(r, c int) VertexID { return VertexID(r*cfg.Cols + c) }
	var es []Edge
	add := func(a, b VertexID) {
		w := 1 + rng.Float64()*(cfg.MaxWeight-1)
		es = append(es, Edge{a, b, w}, Edge{b, a, w})
	}
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				add(id(r, c), id(r, c+1))
			}
			if r+1 < cfg.Rows {
				add(id(r, c), id(r+1, c))
			}
			if r+1 < cfg.Rows && c+1 < cfg.Cols && rng.Float64() < cfg.Diagonal {
				add(id(r, c), id(r+1, c+1))
			}
		}
	}
	return MustBuild(n, es)
}

// ErdosRenyi generates a uniform random graph; property tests use it for
// unstructured inputs.
func ErdosRenyi(n, m int, maxWeight float64, seed int64) *CSR {
	if maxWeight <= 0 {
		maxWeight = 64
	}
	rng := rand.New(rand.NewSource(seed))
	type key struct{ u, v VertexID }
	seen := make(map[key]bool, m)
	es := make([]Edge, 0, m)
	attempts := 0
	for len(es) < m && attempts < m*64 {
		attempts++
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		k := key{VertexID(u), VertexID(v)}
		if seen[k] {
			continue
		}
		seen[k] = true
		es = append(es, Edge{k.u, k.v, 1 + rng.Float64()*(maxWeight-1)})
	}
	return MustBuild(n, es)
}

// Dataset names mirror the paper's Table 2. Sizes are scaled down ~100×
// (the relative ordering is preserved) so the whole evaluation runs on a
// laptop; the topology class matches the original.
type Dataset struct {
	Name        string // paper's short code: WK FB LJ UK TW
	Description string
	Build       func(seed int64) *CSR
}

// Datasets returns the five Table 2 stand-ins in paper order.
func Datasets() []Dataset {
	return []Dataset{
		{"WK", "Wikipedia-like page links (narrow, long paths)", func(seed int64) *CSR {
			return WebCrawl(WebCrawlConfig{Vertices: 20000, AvgDegree: 12, Locality: 16, LongRange: 0.1, Seed: seed})
		}},
		{"FB", "Facebook-like social network (highly connected)", func(seed int64) *CSR {
			return RMAT(RMATConfig{Vertices: 18000, Edges: 280000, Seed: seed})
		}},
		{"LJ", "LiveJournal-like social network (highly connected)", func(seed int64) *CSR {
			return RMAT(RMATConfig{Vertices: 30000, Edges: 420000, Seed: seed})
		}},
		{"UK", "UK-domain-like web crawl (narrow, long paths, larger)", func(seed int64) *CSR {
			return WebCrawl(WebCrawlConfig{Vertices: 60000, AvgDegree: 16, Locality: 24, LongRange: 0.09, Seed: seed})
		}},
		{"TW", "Twitter-like follower graph (largest, heavy tail)", func(seed int64) *CSR {
			return RMAT(RMATConfig{Vertices: 80000, Edges: 1200000, A: 0.6, B: 0.18, C: 0.18, Seed: seed})
		}},
	}
}

// DatasetByName returns the Table 2 stand-in with the given code.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q (want WK, FB, LJ, UK or TW)", name)
}
