// Package event defines the lightweight messages that drive all computation
// in the GraphPulse/JetStream model. An event carries a contribution (delta)
// to a target vertex; JetStream extends the payload with flag bits for its
// delete and reapproximation-request mechanisms (paper §4.2) and, under the
// DAP optimization, with the id of the contributing source vertex (§5.2).
package event

import (
	"fmt"
	"math"
	"unsafe"

	"jetstream/internal/graph"
	"jetstream/internal/pad"
)

// Flags mark the special event kinds JetStream adds to GraphPulse.
type Flags uint8

const (
	// FlagDelete marks a delete-propagation event used during the recovery
	// phase of selective algorithms (Algorithm 4). Two delete events to the
	// same vertex may be coalesced: tagging a vertex once suffices.
	FlagDelete Flags = 1 << iota
	// FlagRequest marks a reapproximation request: the receiving vertex must
	// propagate its state to its out-neighbors even if its own state does not
	// change (Algorithm 4, Reapproximate). The payload is Identity so it
	// cannot perturb coalesced values.
	FlagRequest
)

// NoSource is the Source value of events that carry no dependency
// information (all events outside DAP mode).
const NoSource = graph.VertexID(math.MaxUint32)

// Event is the unit of work. Size on the wire depends on the engine mode —
// see Size; the in-memory record is padded to 32 bytes so exactly two events
// fill one cache line and a single record never straddles two (the coalescing
// queue's slot array and the workers' staging buffers are both dense []Event,
// where a 24-byte layout would put every third record across a line boundary).
type Event struct {
	Target graph.VertexID
	Value  float64
	Source graph.VertexID // contributing vertex under DAP; NoSource otherwise
	Flags  Flags
	_      [11]byte
}

// Compile-time: two records per cache line, no straddle (see internal/pad).
const (
	_ = uint(pad.LineSize/2 - unsafe.Sizeof(Event{}))
	_ = uint(unsafe.Sizeof(Event{}) - pad.LineSize/2)
)

// New returns a plain value-carrying event.
func New(target graph.VertexID, value float64) Event {
	return Event{Target: target, Value: value, Source: NoSource}
}

// IsDelete reports whether the delete flag is set.
func (e Event) IsDelete() bool { return e.Flags&FlagDelete != 0 }

// IsRequest reports whether the request flag is set.
func (e Event) IsRequest() bool { return e.Flags&FlagRequest != 0 }

func (e Event) String() string {
	s := fmt.Sprintf("ev{->%d val=%g", e.Target, e.Value)
	if e.Source != NoSource {
		s += fmt.Sprintf(" src=%d", e.Source)
	}
	if e.IsDelete() {
		s += " DEL"
	}
	if e.IsRequest() {
		s += " REQ"
	}
	return s + "}"
}

// Mode selects the payload layout, which determines the on-chip footprint of
// each queue slot (the paper notes JetStream's larger events reduce how many
// vertices fit per slice, §4.2/§6.1).
type Mode int

const (
	// ModeGraphPulse is the baseline: target id + value.
	ModeGraphPulse Mode = iota
	// ModeJetStream adds the flag bits (delete/request).
	ModeJetStream
	// ModeJetStreamDAP additionally carries the source vertex id.
	ModeJetStreamDAP
)

// Size returns the event size in bytes for the given mode. The baseline
// GraphPulse event is a (vertexID, payload) tuple = 8 bytes; JetStream packs
// flags into one more byte (padded to 9 in our accounting); DAP adds a 4-byte
// source id.
func Size(m Mode) int {
	switch m {
	case ModeGraphPulse:
		return 8
	case ModeJetStream:
		return 9
	case ModeJetStreamDAP:
		return 13
	default:
		panic(fmt.Sprintf("event: unknown mode %d", m))
	}
}
