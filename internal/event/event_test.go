package event

import (
	"strings"
	"testing"
)

func TestNew(t *testing.T) {
	e := New(7, 3.5)
	if e.Target != 7 || e.Value != 3.5 {
		t.Errorf("New = %+v", e)
	}
	if e.Source != NoSource {
		t.Error("New must leave Source unset")
	}
	if e.Flags != 0 {
		t.Error("New must leave Flags clear")
	}
}

func TestFlags(t *testing.T) {
	var e Event
	if e.IsDelete() || e.IsRequest() {
		t.Error("zero event has flags set")
	}
	e.Flags = FlagDelete
	if !e.IsDelete() || e.IsRequest() {
		t.Error("delete flag wrong")
	}
	e.Flags = FlagRequest
	if e.IsDelete() || !e.IsRequest() {
		t.Error("request flag wrong")
	}
	e.Flags = FlagDelete | FlagRequest
	if !e.IsDelete() || !e.IsRequest() {
		t.Error("combined flags wrong")
	}
}

func TestString(t *testing.T) {
	e := Event{Target: 3, Value: 1.5, Source: 9, Flags: FlagDelete | FlagRequest}
	s := e.String()
	for _, want := range []string{"->3", "1.5", "src=9", "DEL", "REQ"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	plain := New(3, 1.5).String()
	if strings.Contains(plain, "src=") || strings.Contains(plain, "DEL") {
		t.Errorf("plain event renders extras: %q", plain)
	}
}

func TestSizeOrdering(t *testing.T) {
	gp, js, dap := Size(ModeGraphPulse), Size(ModeJetStream), Size(ModeJetStreamDAP)
	if gp != 8 {
		t.Errorf("GraphPulse event size %d, want 8 (paper: vertex id + payload)", gp)
	}
	if !(gp < js && js < dap) {
		t.Errorf("sizes must grow: %d %d %d", gp, js, dap)
	}
	// The DAP payload adds a 4-byte source id over the JetStream event.
	if dap-js != 4 {
		t.Errorf("DAP adds %d bytes, want 4", dap-js)
	}
}

func TestSizePanicsOnUnknownMode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Size(Mode(99))
}
