package queue

import (
	"math/rand"
	"testing"

	"jetstream/internal/event"
)

// These tests pin the occupancy-bitmap invariant the sparse drain depends on:
// a row's rowOcc bit is set exactly when the row holds at least one live slot,
// and rowLive always equals the popcount of the row's slot bits. The suspected
// leak — a delete-storm batch removing a vertex's last queued event leaving
// its occupancy bit behind — was investigated and does not reproduce: drainRow
// clears every drained bit and drops rowOcc when rowLive hits zero, including
// on partial-word rows (rowSize not a multiple of 64) and reinsertion during a
// drain. The regression tests below hold that line.

// checkOccInvariant verifies rowOcc/rowLive/count against the slot words.
func checkOccInvariant(t *testing.T, o *occupancy, n int) {
	t.Helper()
	total := 0
	rows := (n + o.rowSize - 1) / o.rowSize
	for row := 0; row < rows; row++ {
		live := 0
		lo, hi := row*o.rowSize, (row+1)*o.rowSize
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			if o.words[i>>6]&(1<<(uint(i)&63)) != 0 {
				live++
			}
		}
		if int(o.rowHdr[row].live) != live {
			t.Fatalf("row %d: rowLive=%d, slot bits say %d", row, o.rowHdr[row].live, live)
		}
		occBit := o.rowOcc[row>>6]&(1<<(uint(row)&63)) != 0
		if occBit != (live > 0) {
			t.Fatalf("row %d: occupancy bit %v with %d live slots", row, occBit, live)
		}
		total += live
	}
	if o.count != total {
		t.Fatalf("count=%d, slot bits say %d", o.count, total)
	}
}

// TestOccupancyBitClearsOnLastDrain is the delete-storm regression shape:
// every queued event for a region drains in one round (a victim vertex losing
// its last edge enqueues exactly one recovery event, which then drains), and
// no occupancy bit may survive the drain.
func TestOccupancyBitClearsOnLastDrain(t *testing.T) {
	const n, rowSize = 1000, 100 // rowSize deliberately not a multiple of 64
	q := New(n, Config{RowSize: rowSize}, minCoalesce(), nil)
	rng := rand.New(rand.NewSource(41))
	// Storm: a single event on a scatter of vertices, many of them the sole
	// event of their row, including both row boundaries of a partial word.
	targets := map[int]bool{0: true, 99: true, 100: true, 999: true}
	for len(targets) < 60 {
		targets[rng.Intn(n)] = true
	}
	for v := range targets {
		q.Insert(event.New(uint32(v), float64(v)))
	}
	checkOccInvariant(t, q.occ, n)
	drained := 0
	q.DrainRound(func(b []event.Event) { drained += len(b) })
	if drained != len(targets) {
		t.Fatalf("drained %d, want %d", drained, len(targets))
	}
	if !q.Empty() {
		t.Fatalf("queue reports %d live after full drain", q.Len())
	}
	checkOccInvariant(t, q.occ, n)
	if got := q.occ.nextRow(0); got != -1 {
		t.Fatalf("occupancy bit leaked: nextRow(0)=%d after full drain", got)
	}
	// The region must be reusable: reinsert into previously-drained rows.
	q.Insert(event.New(99, 1))
	q.Insert(event.New(100, 2))
	checkOccInvariant(t, q.occ, n)
	if q.Len() != 2 {
		t.Fatalf("Len=%d after reinsert, want 2", q.Len())
	}
}

// TestOccupancyInvariantUnderChurn drives randomized insert/drain interleaving
// (including reinsertion from inside the drain callback, the recovery-phase
// pattern) and checks the bitmap invariant after every round.
func TestOccupancyInvariantUnderChurn(t *testing.T) {
	const n, rowSize = 640, 100
	q := New(n, Config{RowSize: rowSize}, minCoalesce(), nil)
	rng := rand.New(rand.NewSource(43))
	for round := 0; round < 50; round++ {
		for k := rng.Intn(40); k > 0; k-- {
			q.Insert(event.New(uint32(rng.Intn(n)), rng.Float64()))
		}
		reinserted := 0
		q.DrainRound(func(b []event.Event) {
			// Occasionally echo an event back mid-drain: same row, earlier
			// row, and later row targets all occur over the run.
			if reinserted < 5 && rng.Float64() < 0.3 {
				q.Insert(event.New(uint32(rng.Intn(n)), 1))
				reinserted++
			}
		})
		checkOccInvariant(t, q.occ, n)
	}
	// Drain to empty and confirm nothing leaked.
	q.Drain(func([]event.Event) {})
	if !q.Empty() {
		t.Fatalf("%d events left after Drain", q.Len())
	}
	checkOccInvariant(t, q.occ, n)
	if got := q.occ.nextRow(0); got != -1 {
		t.Fatalf("occupancy bit leaked: nextRow(0)=%d on empty queue", got)
	}
}

// TestShardOccupancyClearsOnLastDrain covers the dense-local-index Shard
// variant of the same drain loop.
func TestShardOccupancyClearsOnLastDrain(t *testing.T) {
	owner := make([]int32, 300)
	sq := NewSharded(2, owner, Config{RowSize: 100}, minCoalesce(), true)
	sh := sq.Shard(0)
	for _, v := range []uint32{0, 99, 100, 250} {
		sh.Insert(event.New(v, float64(v)))
	}
	drained := 0
	sh.DrainRound(func(b []event.Event) { drained += len(b) })
	if drained != 4 {
		t.Fatalf("drained %d, want 4", drained)
	}
	if !sh.Empty() {
		t.Fatalf("shard reports %d live after full drain", sh.Len())
	}
	if got := sh.occ.nextRow(0); got != -1 {
		t.Fatalf("shard occupancy bit leaked: nextRow(0)=%d", got)
	}
	sh.Insert(event.New(99, 7))
	if sh.Len() != 1 {
		t.Fatalf("shard Len=%d after reinsert, want 1", sh.Len())
	}
}
