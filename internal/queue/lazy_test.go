package queue

import (
	"testing"

	"jetstream/internal/event"
)

// TestLazyAllocation pins the dormant-queue contract: construction allocates
// no slot array; the first Insert does; the empty-queue read surface
// (Len/Empty/Rows/DrainRound/TakeAll) works either way.
func TestLazyAllocation(t *testing.T) {
	q := New(1024, Config{RowSize: 16}, sumCoalesce(), nil)
	if q.occ != nil || q.slots != nil {
		t.Fatal("queue allocated slots at construction")
	}
	if q.Len() != 0 || !q.Empty() {
		t.Fatal("dormant queue not empty")
	}
	if got := q.Rows(); got != 64 {
		t.Fatalf("Rows() = %d, want 64", got)
	}
	if evs := q.TakeAll(); len(evs) != 0 {
		t.Fatalf("TakeAll on dormant queue returned %d events", len(evs))
	}
	if n := q.DrainRound(func([]event.Event) { t.Fatal("drain callback on dormant queue") }); n != 0 {
		t.Fatalf("DrainRound on dormant queue emitted %d", n)
	}

	q.Insert(event.New(5, 10))
	if q.occ == nil {
		t.Fatal("Insert did not materialize the queue")
	}
	if q.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", q.Len())
	}
	var got []event.Event
	q.Drain(func(batch []event.Event) { got = append(got, batch...) })
	if len(got) != 1 || got[0].Target != 5 || got[0].Value != 10 {
		t.Fatalf("drained %v, want the inserted event", got)
	}
}
