// Package queue implements the on-chip coalescing event queue at the heart
// of GraphPulse and JetStream (paper §4.2). The queue keeps at most one live
// event per vertex: an insertion that finds its direct-mapped slot occupied
// is combined with the resident event by the application's Reduce operation
// (coalescing). Events are emitted row by row, where a row groups vertices
// whose states share a DRAM page, which is what gives the accelerator its
// spatial locality during vertex updates.
//
// JetStream extends the queue two ways: delete events coalesce during the
// recovery phase, and under the DAP optimization coalescing is *disabled*
// during recovery (distinct sources must not be merged), with the extra
// events parked in an overflow buffer that spills to off-chip memory in
// blocks (§5.2).
package queue

import (
	"fmt"

	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/obs"
	"jetstream/internal/stats"
)

// Coalesce combines two events destined for the same vertex.
type Coalesce func(old, incoming event.Event) event.Event

// Config sizes the queue.
type Config struct {
	// RowSize is the number of vertex slots per row. The engines process one
	// row as a batch, mirroring the drain buffer. Must be > 0.
	RowSize int
	// Bins is the number of parallel bins; it only affects reported
	// geometry (insertion bandwidth is modeled by the timing layer).
	Bins int
}

// DefaultConfig matches the paper's setup: vertex states are 8 bytes and a
// 4 KB DRAM page holds 512 of them, so a row covers 512 vertices; 16 bins
// feed the 16x16 crossbar.
func DefaultConfig() Config { return Config{RowSize: 512, Bins: 16} }

// Coalescing is the event queue for one graph slice. It is not safe for
// concurrent use; the functional engine is single-threaded by design (the
// hardware's parallelism is reconstructed by the timing layer).
type Coalescing struct {
	cfg      Config
	coalesce Coalesce
	st       *stats.Counters

	// n is the vertex-slot capacity; slots and occ are materialized on the
	// first Insert (see ensure), so an idle queue costs O(1) memory — the
	// property that lets a service construct thousands of dormant systems.
	n     int
	slots []event.Event
	occ   *occupancy
	// drain is the reusable row-batch scratch buffer; DrainRound reslices it
	// instead of allocating a fresh batch every round.
	drain []event.Event

	coalescingOn bool
	overflow     []event.Event // non-coalescing mode: extra events, FIFO

	highWater int // peak live events; sizes the on-chip memory requirement

	// Occupancy mirrors, refreshed once per drain round (not per insert, to
	// keep the hot path free of atomics). Nil when uninstrumented.
	obLive *obs.Gauge
	obHigh *obs.Max
}

// SetObs attaches occupancy mirrors: live receives the queue length and high
// the high-water mark at every drain round. Pass nils to detach.
func (q *Coalescing) SetObs(live *obs.Gauge, high *obs.Max) {
	q.obLive = live
	q.obHigh = high
	q.publishObs()
}

func (q *Coalescing) publishObs() {
	// Each sink is optional on its own: SetObs(live, nil) and SetObs(nil,
	// high) are both valid attachments.
	if q.obLive != nil {
		q.obLive.Set(int64(q.Len()))
	}
	if q.obHigh != nil {
		q.obHigh.Observe(uint64(q.highWater))
	}
}

// New creates a queue over n vertex slots. st may be nil.
func New(n int, cfg Config, fn Coalesce, st *stats.Counters) *Coalescing {
	if cfg.RowSize <= 0 {
		panic("queue: RowSize must be positive")
	}
	if st == nil {
		st = &stats.Counters{}
	}
	return &Coalescing{
		cfg:          cfg,
		coalesce:     fn,
		st:           st,
		n:            n,
		coalescingOn: true,
	}
}

// ensure materializes the slot array and occupancy bitmap on first insert.
func (q *Coalescing) ensure() {
	if q.occ != nil {
		return
	}
	q.slots = make([]event.Event, q.n)
	q.occ = newOccupancy(q.n, q.cfg.RowSize)
	q.drain = make([]event.Event, 0, q.cfg.RowSize)
}

// SetCoalescing toggles event coalescing. JetStream disables it during the
// DAP recovery phase so that delete events from distinct sources are not
// merged (§5.2); everywhere else it stays on.
func (q *Coalescing) SetCoalescing(on bool) { q.coalescingOn = on }

// CoalescingEnabled reports the current mode.
func (q *Coalescing) CoalescingEnabled() bool { return q.coalescingOn }

// Insert adds e to the queue, coalescing with any resident event for the
// same target.
func (q *Coalescing) Insert(e event.Event) {
	t := e.Target
	if int(t) >= q.n {
		panic(fmt.Sprintf("queue: target %d out of range (%d slots)", t, q.n))
	}
	q.ensure()
	if !q.occ.set(int(t)) {
		if q.coalescingOn {
			q.slots[t] = q.coalesce(q.slots[t], e)
			q.st.EventsCoalesced++
			return
		}
		q.overflow = append(q.overflow, e)
		if live := q.Len(); live > q.highWater {
			q.highWater = live
		}
		return
	}
	q.slots[t] = e
	if live := q.Len(); live > q.highWater {
		q.highWater = live
	}
}

// Len returns the number of live events (slots + overflow).
func (q *Coalescing) Len() int {
	if q.occ == nil {
		return 0
	}
	return q.occ.count + len(q.overflow)
}

// Empty reports whether no events are pending.
func (q *Coalescing) Empty() bool { return q.Len() == 0 }

// HighWater returns the peak number of simultaneously live events.
func (q *Coalescing) HighWater() int { return q.highWater }

// OverflowLen returns the number of events parked in the overflow buffer;
// the timing layer charges off-chip block transfers for them.
func (q *Coalescing) OverflowLen() int { return len(q.overflow) }

// Rows returns the number of rows covering the vertex space.
func (q *Coalescing) Rows() int {
	return (q.n + q.cfg.RowSize - 1) / q.cfg.RowSize
}

// DrainRound emits every currently pending event, one row batch at a time,
// in ascending vertex order — the queue sorts events by destination so that
// vertex-state reads within a batch hit the same DRAM page (paper §3.4).
// Events inserted by fn during the round land in later rows of the same
// round or in the next round, reproducing the asynchronous round-robin bin
// draining of the hardware. After the rows, the overflow buffer (if any) is
// drained FIFO in RowSize batches. Returns the number of events emitted.
//
// The row walk is sparse: the occupancy bitmap jumps straight to the next
// non-empty row (and, inside a row, to the next set bit), so a round over a
// handful of live events does not scan the whole vertex space. The row
// cursor only moves forward, which preserves the dense-scan ordering
// contract above — a same-row or earlier-row reinsertion waits for the next
// round even if its row still has the occupancy bit set.
//
//jetlint:hotpath
func (q *Coalescing) DrainRound(fn func(batch []event.Event)) int {
	if q.occ == nil {
		// Nothing was ever inserted; count the (empty) round for parity with
		// the materialized path.
		q.st.Rounds++
		q.publishObs()
		return 0
	}
	emitted := 0
	batch := q.drain[:0]
	for row := q.occ.nextRow(0); row >= 0; row = q.occ.nextRow(row + 1) {
		batch = batch[:0]
		q.occ.drainRow(row, func(slot int) { //jetlint:allow hotpathalloc -- the row visitor does not escape drainRow and stays on the stack
			batch = append(batch, q.slots[slot])
		})
		if len(batch) > 0 {
			emitted += len(batch)
			fn(batch)
		}
	}
	// Overflow snapshot: events appended during this round wait for the
	// next one.
	pend := q.overflow
	q.overflow = nil
	for lo := 0; lo < len(pend); lo += q.cfg.RowSize {
		hi := lo + q.cfg.RowSize
		if hi > len(pend) {
			hi = len(pend)
		}
		emitted += hi - lo
		fn(pend[lo:hi])
	}
	q.st.Rounds++
	q.publishObs()
	return emitted
}

// TakeAll removes and returns every pending event — slots in ascending
// vertex order, then the overflow FIFO — without counting a drain round.
// The parallel engine uses it to move a phase's seed events into the per-PE
// shards before the workers start.
func (q *Coalescing) TakeAll() []event.Event {
	if q.occ == nil {
		return nil
	}
	out := make([]event.Event, 0, q.Len())
	for row := q.occ.nextRow(0); row >= 0; row = q.occ.nextRow(row + 1) {
		q.occ.drainRow(row, func(slot int) {
			out = append(out, q.slots[slot])
		})
	}
	out = append(out, q.overflow...)
	q.overflow = nil
	return out
}

// Drain runs DrainRound until the queue is empty, which is the engines'
// convergence loop ("processing continues until no more events are
// available"). Returns total events emitted.
func (q *Coalescing) Drain(fn func(batch []event.Event)) int {
	total := 0
	for !q.Empty() {
		total += q.DrainRound(fn)
	}
	return total
}

// ReduceCoalesce builds the standard Coalesce for an application Reduce
// function: payloads are combined with Reduce, flags are OR-ed (so a request
// bit survives coalescing with an insertion event, §3.5), and the source id
// of the dominating payload is retained (DAP dependency tracking, §5.2).
func ReduceCoalesce(reduce func(a, b float64) float64) Coalesce {
	return func(old, in event.Event) event.Event {
		v := reduce(old.Value, in.Value)
		out := old
		out.Value = v
		out.Flags = old.Flags | in.Flags
		// Track the source whose contribution dominates. For accumulative
		// algorithms (sum) this is meaningless and unused.
		if v == in.Value && v != old.Value {
			out.Source = in.Source
		}
		return out
	}
}

// SourceOf is a helper for tests: the source a coalesced event retains.
func SourceOf(e event.Event) graph.VertexID { return e.Source }
