package queue

import (
	"math/bits"
	"unsafe"

	"jetstream/internal/pad"
)

// rowHeader is the mutable per-row bookkeeping of the occupancy bitmap,
// padded to one cache line. In the sharded queue each shard is drained by its
// owning worker, so adjacent rows' live counts are single-writer — but
// adjacent shards' header arrays are written by different workers, and
// unpadded int32 counts pack sixteen to a line, which lets the allocator
// co-locate two shards' tails on one line. One header per line removes the
// false-sharing surface entirely and makes the insert-path increment touch a
// line nothing else writes.
type rowHeader struct {
	live int32
	_    [pad.LineSize - 4]byte
}

// Compile-time: a rowHeader is exactly one cache line (see internal/pad).
const (
	_ = uint(pad.LineSize - unsafe.Sizeof(rowHeader{}))
	_ = uint(unsafe.Sizeof(rowHeader{}) - pad.LineSize)
)

// occupancy tracks which vertex slots hold a live event, word-packed so the
// drain loops skip empty regions instead of scanning every slot. A
// second-level bitmap over rows plus per-row live counts lets DrainRound jump
// straight between non-empty rows and, within a row, straight between set
// bits with TrailingZeros64 — draining k live events costs O(k) plus the
// handful of occupancy words covering them, not O(V). This is what makes
// sparse recovery phases (a few live events in a million-slot queue) cheap.
type occupancy struct {
	rowSize int
	words   []uint64    // bit per slot
	rowOcc  []uint64    // bit per row holding ≥1 live slot
	rowHdr  []rowHeader // live slots per row, one cache line per row
	count   int
}

func newOccupancy(n, rowSize int) *occupancy {
	rows := (n + rowSize - 1) / rowSize
	return &occupancy{
		rowSize: rowSize,
		words:   make([]uint64, (n+63)/64),
		rowOcc:  make([]uint64, (rows+63)/64),
		rowHdr:  make([]rowHeader, rows),
	}
}

// set marks slot i live and reports whether it was previously empty; a false
// return is the coalescing case (slot already held an event).
func (o *occupancy) set(i int) bool {
	w, b := i>>6, uint64(1)<<(uint(i)&63)
	if o.words[w]&b != 0 {
		return false
	}
	o.words[w] |= b
	o.count++
	row := i / o.rowSize
	if o.rowHdr[row].live == 0 {
		o.rowOcc[row>>6] |= 1 << (uint(row) & 63)
	}
	o.rowHdr[row].live++
	return true
}

// nextRow returns the lowest row index ≥ from with live slots, or -1 when
// every remaining row is empty.
func (o *occupancy) nextRow(from int) int {
	if from < 0 {
		from = 0
	}
	for w := from >> 6; w < len(o.rowOcc); w++ {
		word := o.rowOcc[w]
		if w == from>>6 {
			word &= ^uint64(0) << (uint(from) & 63)
		}
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// drainRow calls fn for every live slot in row in ascending order, clearing
// them as it goes.
func (o *occupancy) drainRow(row int, fn func(slot int)) {
	lo := row * o.rowSize
	hi := lo + o.rowSize
	drained := 0
	for w := lo >> 6; w < len(o.words) && w<<6 < hi; w++ {
		word := o.words[w]
		if word == 0 {
			continue
		}
		base := w << 6
		if base < lo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if hi-base < 64 {
			word &= 1<<uint(hi-base) - 1
		}
		o.words[w] &^= word
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << uint(b)
			fn(base + b)
			drained++
		}
	}
	o.count -= drained
	o.rowHdr[row].live -= int32(drained)
	if o.rowHdr[row].live == 0 {
		o.rowOcc[row>>6] &^= 1 << (uint(row) & 63)
	}
}
