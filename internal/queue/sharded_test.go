package queue

import (
	"testing"

	"jetstream/internal/event"
)

func shardMinCoalesce(old, in event.Event) event.Event {
	if in.Value < old.Value {
		old.Value = in.Value
		old.Source = in.Source
	}
	old.Flags |= in.Flags
	return old
}

// stripedOwner assigns vertex v to shard v % k.
func stripedOwner(n, k int) []int32 {
	owner := make([]int32, n)
	for v := range owner {
		owner[v] = int32(v % k)
	}
	return owner
}

func TestShardedRoutingAndLen(t *testing.T) {
	const n, k = 10, 3
	sq := NewSharded(k, stripedOwner(n, k), Config{RowSize: 4}, shardMinCoalesce, true)
	if sq.K() != k {
		t.Fatalf("K() = %d, want %d", sq.K(), k)
	}
	for v := 0; v < n; v++ {
		if got, want := sq.Owner(uint32(v)), v%k; got != want {
			t.Fatalf("Owner(%d) = %d, want %d", v, got, want)
		}
		sq.Shard(sq.Owner(uint32(v))).Insert(event.New(uint32(v), float64(v)))
	}
	if sq.Len() != n {
		t.Fatalf("Len() = %d, want %d", sq.Len(), n)
	}
	// Shard 0 owns 0,3,6,9; shard 1 owns 1,4,7; shard 2 owns 2,5,8.
	for i, want := range []int{4, 3, 3} {
		if got := sq.Shard(i).Len(); got != want {
			t.Errorf("shard %d Len = %d, want %d", i, got, want)
		}
	}
}

func TestShardCoalescesLikeSequentialQueue(t *testing.T) {
	sq := NewSharded(2, stripedOwner(8, 2), Config{RowSize: 4}, shardMinCoalesce, true)
	s := sq.Shard(0)
	if s.Insert(event.Event{Target: 4, Value: 9, Source: 1}) {
		t.Fatal("first insert reported coalesced")
	}
	if !s.Insert(event.Event{Target: 4, Value: 3, Source: 2}) {
		t.Fatal("second insert for the occupied slot not coalesced")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after coalescing, want 1", s.Len())
	}
	var got []event.Event
	s.DrainRound(func(b []event.Event) { got = append(got, b...) })
	if len(got) != 1 || got[0].Value != 3 || got[0].Source != 2 {
		t.Fatalf("coalesced event = %+v, want value 3 from source 2", got)
	}
}

func TestShardOverflowWhenCoalescingOff(t *testing.T) {
	sq := NewSharded(1, stripedOwner(4, 1), Config{RowSize: 4}, shardMinCoalesce, false)
	s := sq.Shard(0)
	s.Insert(event.New(2, 1))
	if s.Insert(event.New(2, 2)) {
		t.Fatal("non-coalescing shard reported a merge")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (slot + overflow)", s.Len())
	}
	var got []float64
	s.DrainRound(func(b []event.Event) {
		for _, e := range b {
			got = append(got, e.Value)
		}
	})
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drain order %v, want slot first then overflow FIFO", got)
	}
}

func TestShardDrainRoundAscendingLocalOrder(t *testing.T) {
	// Shard 0 of a 2-way stripe over 8 vertices owns 0,2,4,6 at local
	// indices 0..3; a drain must emit them in that (ascending) order in
	// RowSize batches.
	sq := NewSharded(2, stripedOwner(8, 2), Config{RowSize: 2}, shardMinCoalesce, true)
	s := sq.Shard(0)
	for _, v := range []uint32{6, 0, 4, 2} {
		s.Insert(event.New(v, float64(v)))
	}
	var order []uint32
	var batches int
	n := s.DrainRound(func(b []event.Event) {
		batches++
		if len(b) > 2 {
			t.Fatalf("batch of %d exceeds RowSize 2", len(b))
		}
		for _, e := range b {
			order = append(order, e.Target)
		}
	})
	if n != 4 || batches != 2 {
		t.Fatalf("emitted %d events in %d batches, want 4 in 2", n, batches)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("drain order %v not ascending", order)
		}
	}
	if !s.Empty() {
		t.Fatal("shard not empty after full drain")
	}
}

func TestShardedRejectsBadOwnership(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range owner accepted")
		}
	}()
	NewSharded(2, []int32{0, 2}, Config{RowSize: 4}, shardMinCoalesce, true)
}

func TestShardInsertOutOfRangePanics(t *testing.T) {
	sq := NewSharded(1, stripedOwner(2, 1), Config{RowSize: 4}, shardMinCoalesce, true)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range target accepted")
		}
	}()
	sq.Shard(0).Insert(event.New(7, 1))
}

// TestShardHighWater pins the peak-occupancy tracking: the high-water mark
// follows Len upward across both the slot and overflow paths, survives
// drains, and never decreases.
func TestShardHighWater(t *testing.T) {
	sq := NewSharded(1, stripedOwner(8, 1), Config{RowSize: 4}, shardMinCoalesce, false)
	s := sq.Shard(0)
	if s.HighWater() != 0 {
		t.Fatalf("fresh shard HighWater = %d, want 0", s.HighWater())
	}
	s.Insert(event.New(1, 1))
	s.Insert(event.New(2, 1))
	s.Insert(event.New(2, 2)) // overflow path: slot 2 already occupied
	if got := s.HighWater(); got != 3 {
		t.Fatalf("HighWater = %d after 3 live events, want 3", got)
	}
	s.DrainRound(func([]event.Event) {})
	if s.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", s.Len())
	}
	if got := s.HighWater(); got != 3 {
		t.Fatalf("HighWater = %d after drain, want 3 (monotonic)", got)
	}
	s.Insert(event.New(3, 1))
	if got := s.HighWater(); got != 3 {
		t.Fatalf("HighWater = %d after refill below peak, want 3", got)
	}
}
