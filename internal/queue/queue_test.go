package queue

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"jetstream/internal/event"
	"jetstream/internal/obs"
	"jetstream/internal/stats"
)

func minCoalesce() Coalesce {
	return ReduceCoalesce(func(a, b float64) float64 { return math.Min(a, b) })
}

func sumCoalesce() Coalesce {
	return ReduceCoalesce(func(a, b float64) float64 { return a + b })
}

func TestInsertAndCoalesce(t *testing.T) {
	st := &stats.Counters{}
	q := New(100, Config{RowSize: 16}, minCoalesce(), st)
	q.Insert(event.New(5, 10))
	q.Insert(event.New(5, 7))
	q.Insert(event.New(5, 12))
	if q.Len() != 1 {
		t.Fatalf("Len=%d, want 1 (coalesced)", q.Len())
	}
	if st.EventsCoalesced != 2 {
		t.Errorf("coalesced=%d, want 2", st.EventsCoalesced)
	}
	var got []event.Event
	q.DrainRound(func(b []event.Event) { got = append(got, b...) })
	if len(got) != 1 || got[0].Value != 7 {
		t.Fatalf("drained %v, want one event with value 7", got)
	}
	if !q.Empty() {
		t.Error("queue not empty after drain")
	}
}

func TestSumCoalesce(t *testing.T) {
	q := New(10, Config{RowSize: 4}, sumCoalesce(), nil)
	q.Insert(event.New(3, 1.5))
	q.Insert(event.New(3, 2.5))
	q.Insert(event.New(3, -1))
	var got []event.Event
	q.Drain(func(b []event.Event) { got = append(got, b...) })
	if len(got) != 1 || got[0].Value != 3 {
		t.Fatalf("drained %v, want single event value 3", got)
	}
}

func TestDrainOrderIsAscending(t *testing.T) {
	q := New(1000, Config{RowSize: 64}, minCoalesce(), nil)
	rng := rand.New(rand.NewSource(1))
	for _, v := range rng.Perm(1000)[:200] {
		q.Insert(event.New(uint32(v), float64(v)))
	}
	var order []uint32
	q.DrainRound(func(b []event.Event) {
		for _, e := range b {
			order = append(order, e.Target)
		}
	})
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("drain order not ascending at %d: %d then %d", i, order[i-1], order[i])
		}
	}
	if len(order) != 200 {
		t.Fatalf("drained %d events, want 200", len(order))
	}
}

func TestRowBatching(t *testing.T) {
	q := New(100, Config{RowSize: 10}, minCoalesce(), nil)
	for v := 0; v < 100; v += 5 {
		q.Insert(event.New(uint32(v), 1))
	}
	batches := 0
	q.DrainRound(func(b []event.Event) {
		batches++
		if len(b) > 10 {
			t.Errorf("batch of %d exceeds row size", len(b))
		}
		// All events in a batch must come from one row.
		row := int(b[0].Target) / 10
		for _, e := range b {
			if int(e.Target)/10 != row {
				t.Errorf("batch mixes rows %d and %d", row, int(e.Target)/10)
			}
		}
	})
	if batches != 10 {
		t.Errorf("%d batches, want 10 (one per occupied row)", batches)
	}
}

func TestInsertionsDuringRound(t *testing.T) {
	// An event inserted for a *later* row while draining must be processed
	// within the same round; one for an earlier row waits for the next round.
	q := New(100, Config{RowSize: 10}, minCoalesce(), nil)
	q.Insert(event.New(5, 1))
	first := true
	seen := map[uint32]int{}
	round := 1
	for !q.Empty() && round < 5 {
		q.DrainRound(func(b []event.Event) {
			for _, e := range b {
				seen[e.Target] = round
				if first {
					first = false
					q.Insert(event.New(50, 2)) // later row: same round
					q.Insert(event.New(2, 3))  // earlier row: next round
				}
			}
		})
		round++
	}
	if seen[5] != 1 || seen[50] != 1 {
		t.Errorf("targets 5,50 rounds = %d,%d; want 1,1", seen[5], seen[50])
	}
	if seen[2] != 2 {
		t.Errorf("target 2 round = %d; want 2", seen[2])
	}
}

func TestNonCoalescingOverflow(t *testing.T) {
	st := &stats.Counters{}
	q := New(10, Config{RowSize: 4}, minCoalesce(), st)
	q.SetCoalescing(false)
	q.Insert(event.Event{Target: 3, Value: 1, Source: 7, Flags: event.FlagDelete})
	q.Insert(event.Event{Target: 3, Value: 2, Source: 8, Flags: event.FlagDelete})
	q.Insert(event.Event{Target: 3, Value: 3, Source: 9, Flags: event.FlagDelete})
	if q.Len() != 3 {
		t.Fatalf("Len=%d, want 3 (no coalescing)", q.Len())
	}
	if q.OverflowLen() != 2 {
		t.Fatalf("overflow=%d, want 2", q.OverflowLen())
	}
	if st.EventsCoalesced != 0 {
		t.Error("events were coalesced in non-coalescing mode")
	}
	var got []event.Event
	q.Drain(func(b []event.Event) { got = append(got, b...) })
	if len(got) != 3 {
		t.Fatalf("drained %d events, want 3", len(got))
	}
	// All three sources must survive.
	sources := map[uint32]bool{}
	for _, e := range got {
		sources[e.Source] = true
	}
	for _, s := range []uint32{7, 8, 9} {
		if !sources[s] {
			t.Errorf("source %d lost", s)
		}
	}
}

func TestCoalesceRetainsDominantSource(t *testing.T) {
	q := New(10, Config{RowSize: 4}, minCoalesce(), nil)
	q.Insert(event.Event{Target: 1, Value: 9, Source: 100})
	q.Insert(event.Event{Target: 1, Value: 4, Source: 200}) // dominates
	q.Insert(event.Event{Target: 1, Value: 6, Source: 300}) // does not
	var got []event.Event
	q.Drain(func(b []event.Event) { got = append(got, b...) })
	if len(got) != 1 || got[0].Value != 4 || got[0].Source != 200 {
		t.Fatalf("got %v, want value 4 from source 200", got)
	}
}

func TestCoalesceMergesFlags(t *testing.T) {
	q := New(10, Config{RowSize: 4}, minCoalesce(), nil)
	q.Insert(event.Event{Target: 2, Value: math.Inf(1), Flags: event.FlagRequest})
	q.Insert(event.New(2, 5)) // insertion event coalesces with request (§3.5)
	var got []event.Event
	q.Drain(func(b []event.Event) { got = append(got, b...) })
	if len(got) != 1 {
		t.Fatalf("drained %d, want 1", len(got))
	}
	if !got[0].IsRequest() || got[0].Value != 5 {
		t.Errorf("got %v, want request flag with value 5", got[0])
	}
}

func TestHighWater(t *testing.T) {
	q := New(100, Config{RowSize: 10}, minCoalesce(), nil)
	for v := 0; v < 30; v++ {
		q.Insert(event.New(uint32(v), 1))
	}
	q.Drain(func([]event.Event) {})
	if q.HighWater() != 30 {
		t.Errorf("high water = %d, want 30", q.HighWater())
	}
	if q.Len() != 0 {
		t.Error("len after drain should be 0")
	}
}

func TestQuickOneLiveEventPerVertex(t *testing.T) {
	// Property: with coalescing on, Len never exceeds the number of distinct
	// targets inserted, and draining yields exactly one event per target.
	f := func(targets []uint8) bool {
		q := New(256, Config{RowSize: 32}, sumCoalesce(), nil)
		distinct := map[uint8]float64{}
		for i, tg := range targets {
			q.Insert(event.New(uint32(tg), float64(i)))
			distinct[tg] += float64(i)
		}
		if q.Len() != len(distinct) {
			return false
		}
		got := map[uint32]float64{}
		q.Drain(func(b []event.Event) {
			for _, e := range b {
				got[e.Target] += e.Value
			}
		})
		if len(got) != len(distinct) {
			return false
		}
		for tg, sum := range distinct {
			if math.Abs(got[uint32(tg)]-sum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSetObsPartialSinks is the regression test for the publishObs nil deref:
// attaching only one of the two occupancy mirrors used to panic on the drain
// round because the guard for the live gauge also gated the high-water sink.
func TestSetObsPartialSinks(t *testing.T) {
	cases := []struct {
		name string
		live *obs.Gauge
		high *obs.Max
	}{
		{"high_only", nil, &obs.Max{}},
		{"live_only", &obs.Gauge{}, nil},
		{"both", &obs.Gauge{}, &obs.Max{}},
		{"neither", nil, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := New(100, Config{RowSize: 10}, minCoalesce(), nil)
			q.Insert(event.New(7, 1))
			q.Insert(event.New(42, 2))
			q.SetObs(tc.live, tc.high)
			q.DrainRound(func([]event.Event) {}) // must not panic
			if tc.live != nil && tc.live.Load() != 0 {
				t.Errorf("live gauge = %d after full drain, want 0", tc.live.Load())
			}
			if tc.high != nil && tc.high.Load() != 2 {
				t.Errorf("high-water mirror = %d, want 2", tc.high.Load())
			}
		})
	}
}

// TestSparseDrainSkipsEmptyRows checks that a drain over a huge, almost-empty
// queue visits only the occupied rows: the callback count equals the number
// of distinct occupied rows, independent of the vertex-space size.
func TestSparseDrainSkipsEmptyRows(t *testing.T) {
	const n = 1 << 20
	q := New(n, Config{RowSize: 64}, minCoalesce(), nil)
	targets := []uint32{0, 63, 64, 500_000, n - 1} // rows 0, 0, 1, 7812, 16383
	for _, v := range targets {
		q.Insert(event.New(v, float64(v)))
	}
	batches := 0
	var got []uint32
	q.DrainRound(func(b []event.Event) {
		batches++
		for _, e := range b {
			got = append(got, e.Target)
		}
	})
	if batches != 4 {
		t.Errorf("callback ran %d times, want 4 (one per occupied row)", batches)
	}
	if len(got) != len(targets) {
		t.Fatalf("drained %d events, want %d", len(got), len(targets))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Errorf("drain order not ascending: %d then %d", got[i-1], got[i])
		}
	}
	if !q.Empty() {
		t.Error("queue not empty after drain")
	}
}

// TestSparseDrainPartialWords exercises occupancy words that straddle row
// boundaries (RowSize not a multiple of 64), where drainRow must mask both
// ends of a word.
func TestSparseDrainPartialWords(t *testing.T) {
	q := New(1000, Config{RowSize: 100}, sumCoalesce(), nil)
	ins := []uint32{0, 99, 100, 101, 163, 164, 199, 200, 999}
	for _, v := range ins {
		q.Insert(event.New(v, 1))
	}
	var got []uint32
	q.Drain(func(b []event.Event) {
		for _, e := range b {
			got = append(got, e.Target)
		}
	})
	if len(got) != len(ins) {
		t.Fatalf("drained %v, want all of %v", got, ins)
	}
	for i, v := range ins {
		if got[i] != v {
			t.Fatalf("drain[%d] = %d, want %d", i, got[i], v)
		}
	}
}

func TestPanicsOnOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-range target")
		}
	}()
	q := New(4, Config{RowSize: 2}, minCoalesce(), nil)
	q.Insert(event.New(10, 1))
}
