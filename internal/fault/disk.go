package fault

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"jetstream/internal/wal"
)

// Disk faults. Complementing the DMA-link and feed injectors, Disk models
// the storage failure modes the durability layer must survive: the process
// dying mid-write at an arbitrary byte offset (kill-after-N-bytes, which
// subsumes the short write a crash tears), silent bit rot on the write path,
// and the disk filling up. The injector is fully deterministic — every fault
// fires at an exact cumulative byte offset chosen by the test, no
// probabilities — so a crashpoint sweep can step a kill point through every
// interesting offset of a write-ahead log and assert the recovery outcome at
// each one.
//
// Disk implements wal.FS over a real directory: bytes that "survive" the
// fault land in real files, so a test recovers with the ordinary OS
// filesystem afterwards, exactly like a process restart after a crash.

// ErrDiskKilled is returned by every operation after the kill offset is
// reached: the modeled process is dead, nothing more reaches the disk.
var ErrDiskKilled = errors.New("fault: disk killed (simulated crash)")

// ErrNoSpace is returned by writes that cross the configured capacity.
// Unlike a kill, the process lives on: subsequent writes keep failing, but
// syncs, reads, and closes still work.
var ErrNoSpace = errors.New("fault: no space left on device")

// DiskConfig places deterministic faults at exact cumulative write offsets.
// Offsets count every byte written through the Disk across all files, in
// order. A negative offset disables that fault.
type DiskConfig struct {
	// KillAtByte simulates the process dying mid-write: the write that
	// would carry cumulative offset KillAtByte is truncated just before it
	// (a torn/short write lands on disk) and every later operation fails
	// with ErrDiskKilled.
	KillAtByte int64
	// FlipBitAt silently XORs FlipMask into the byte written at this
	// cumulative offset — bit rot injected on the write path.
	FlipBitAt int64
	// FlipMask is the XOR mask for FlipBitAt (0 means 0x40).
	FlipMask byte
	// FullAtByte simulates the disk filling: the write crossing this offset
	// lands partially (up to the boundary) and fails with ErrNoSpace, as do
	// all later writes.
	FullAtByte int64
}

// Disk is a deterministic faulty filesystem rooted at a real directory.
// It is safe for use from one goroutine, matching the wal.Log contract.
type Disk struct {
	root string
	cfg  DiskConfig

	mu      sync.Mutex
	written int64 // cumulative bytes accepted across all files
	killed  bool
	full    bool
}

// NewDisk returns a Disk writing through to dir.
func NewDisk(dir string, cfg DiskConfig) *Disk {
	if cfg.FlipMask == 0 {
		cfg.FlipMask = 0x40
	}
	return &Disk{root: dir, cfg: cfg}
}

// Root returns the real directory the disk writes through to, which is where
// recovery tooling (using the real filesystem) should look after a crash.
func (d *Disk) Root() string { return d.root }

// Written returns the cumulative bytes accepted so far.
func (d *Disk) Written() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.written
}

// Killed reports whether the kill offset has been reached — the harness's
// signal that the modeled process is dead and driving must stop.
func (d *Disk) Killed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.killed
}

func (d *Disk) alive() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.killed {
		return ErrDiskKilled
	}
	return nil
}

// admit decides the fate of an n-byte write: how many bytes land, and which
// error (if any) the write returns. It also applies bit flips to the
// admitted range via flip.
func (d *Disk) admit(n int) (allow int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.killed {
		return 0, ErrDiskKilled
	}
	allow = n
	if d.cfg.KillAtByte >= 0 && d.written+int64(n) > d.cfg.KillAtByte {
		allow = int(d.cfg.KillAtByte - d.written)
		d.killed = true
		err = ErrDiskKilled
	}
	if d.cfg.FullAtByte >= 0 && d.written+int64(allow) > d.cfg.FullAtByte {
		if cut := int(d.cfg.FullAtByte - d.written); cut < allow {
			allow = cut
		}
		d.full = true
	}
	if d.full && err == nil {
		err = ErrNoSpace
	}
	if allow < 0 {
		allow = 0
	}
	return allow, err
}

// flip applies the configured bit flip to p, whose first byte sits at
// cumulative offset base.
func (d *Disk) flip(p []byte, base int64) []byte {
	at := d.cfg.FlipBitAt
	if at < 0 || at < base || at >= base+int64(len(p)) {
		return p
	}
	q := append([]byte(nil), p...)
	q[at-base] ^= d.cfg.FlipMask
	return q
}

func (d *Disk) join(path string) string { return filepath.Join(d.root, filepath.Base(path)) }

// file wraps one real file with the disk's fault state.
type file struct {
	d *Disk
	f *os.File
}

func (w *file) Write(p []byte) (int, error) {
	allow, ferr := w.d.admit(len(p))
	w.d.mu.Lock()
	base := w.d.written
	w.d.mu.Unlock()
	part := w.d.flip(p[:allow], base)
	n, werr := w.f.Write(part)
	w.d.mu.Lock()
	w.d.written += int64(n)
	w.d.mu.Unlock()
	if werr != nil {
		return n, fmt.Errorf("fault: disk write: %w", werr)
	}
	if ferr != nil {
		return n, ferr
	}
	return n, nil
}

func (w *file) Sync() error {
	if err := w.d.alive(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("fault: disk sync: %w", err)
	}
	return nil
}

func (w *file) Close() error {
	// Closing always releases the real handle; a dead disk still reports
	// the kill so callers cannot mistake the tail for durable.
	err := w.f.Close()
	if kerr := w.d.alive(); kerr != nil {
		return kerr
	}
	if err != nil {
		return fmt.Errorf("fault: disk close: %w", err)
	}
	return nil
}

// MkdirAll implements wal.FS.
func (d *Disk) MkdirAll(dir string) error {
	if err := d.alive(); err != nil {
		return err
	}
	if err := os.MkdirAll(d.root, 0o755); err != nil {
		return fmt.Errorf("fault: mkdir: %w", err)
	}
	return nil
}

// OpenAppend implements wal.FS.
func (d *Disk) OpenAppend(path string) (wal.File, error) {
	if err := d.alive(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(d.join(path), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: open append: %w", err)
	}
	return &file{d: d, f: f}, nil
}

// Create implements wal.FS.
func (d *Disk) Create(path string) (wal.File, error) {
	if err := d.alive(); err != nil {
		return nil, err
	}
	f, err := os.Create(d.join(path))
	if err != nil {
		return nil, fmt.Errorf("fault: create: %w", err)
	}
	return &file{d: d, f: f}, nil
}

// ReadFile implements wal.FS.
func (d *Disk) ReadFile(path string) ([]byte, error) {
	if err := d.alive(); err != nil {
		return nil, err
	}
	return os.ReadFile(d.join(path))
}

// Rename implements wal.FS.
func (d *Disk) Rename(oldpath, newpath string) error {
	if err := d.alive(); err != nil {
		return err
	}
	if err := os.Rename(d.join(oldpath), d.join(newpath)); err != nil {
		return fmt.Errorf("fault: rename: %w", err)
	}
	return nil
}

// Remove implements wal.FS.
func (d *Disk) Remove(path string) error {
	if err := d.alive(); err != nil {
		return err
	}
	if err := os.Remove(d.join(path)); err != nil {
		return fmt.Errorf("fault: remove: %w", err)
	}
	return nil
}

// Truncate implements wal.FS.
func (d *Disk) Truncate(path string, size int64) error {
	if err := d.alive(); err != nil {
		return err
	}
	if err := os.Truncate(d.join(path), size); err != nil {
		return fmt.Errorf("fault: truncate: %w", err)
	}
	return nil
}

// SyncDir implements wal.FS.
func (d *Disk) SyncDir(dir string) error {
	if err := d.alive(); err != nil {
		return err
	}
	h, err := os.Open(d.root)
	if err != nil {
		return fmt.Errorf("fault: sync dir: %w", err)
	}
	serr := h.Sync()
	cerr := h.Close()
	if serr != nil {
		return fmt.Errorf("fault: sync dir: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("fault: sync dir close: %w", cerr)
	}
	return nil
}
