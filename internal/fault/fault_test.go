package fault

import (
	"math/rand"
	"testing"

	"jetstream/internal/graph"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in := New(Config{}); in != nil {
		t.Fatal("disabled config built a live injector")
	}
	if err := in.TransferFault(100); err != nil {
		t.Errorf("nil injector faulted: %v", err)
	}
	b := graph.Batch{Inserts: []graph.Edge{{Src: 1, Dst: 2, Weight: 3}}}
	out, n := in.CorruptBatch(b)
	if n != 0 || len(out.Inserts) != 1 || out.Inserts[0] != b.Inserts[0] {
		t.Errorf("nil injector corrupted the batch: %+v (%d)", out, n)
	}
	if in.Injected() != 0 {
		t.Error("nil injector reports injections")
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		Seed: 42, FailProb: 0.2, PartialProb: 0.2, TimeoutProb: 0.1,
		WeightFlipProb: 0.3, IDCorruptProb: 0.3, TruncateProb: 0.2,
	}
	run := func() ([]string, graph.Batch) {
		in := New(cfg)
		var faults []string
		for i := 0; i < 50; i++ {
			if err := in.TransferFault(1000); err != nil {
				faults = append(faults, err.Error())
			}
		}
		b := graph.Batch{
			Inserts: []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 3, Weight: 2}, {Src: 4, Dst: 5, Weight: 3}},
			Deletes: []graph.Edge{{Src: 6, Dst: 7, Weight: 4}},
		}
		out, _ := in.CorruptBatch(b)
		return faults, out
	}
	f1, b1 := run()
	f2, b2 := run()
	if len(f1) == 0 {
		t.Fatal("no faults injected at these rates")
	}
	if len(f1) != len(f2) {
		t.Fatalf("fault counts differ: %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Errorf("fault %d differs: %q vs %q", i, f1[i], f2[i])
		}
	}
	if len(b1.Inserts) != len(b2.Inserts) || len(b1.Deletes) != len(b2.Deletes) {
		t.Fatalf("corrupted batch shapes differ: %+v vs %+v", b1, b2)
	}
	for i := range b1.Inserts {
		if b1.Inserts[i] != b2.Inserts[i] {
			t.Errorf("insert %d differs: %+v vs %+v", i, b1.Inserts[i], b2.Inserts[i])
		}
	}
}

func TestTransferFaultKinds(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		kind Kind
	}{
		{Config{Seed: 1, FailProb: 1}, KindFail},
		{Config{Seed: 1, PartialProb: 1}, KindPartial},
		{Config{Seed: 1, TimeoutProb: 1}, KindTimeout},
	} {
		in := New(tc.cfg)
		err := in.TransferFault(512)
		te, ok := err.(*TransferError)
		if !ok {
			t.Fatalf("%v: error %T is not *TransferError", tc.kind, err)
		}
		if te.Kind != tc.kind || te.Bytes != 512 {
			t.Errorf("got %+v, want kind %v", te, tc.kind)
		}
		if !te.Transient() {
			t.Errorf("%v not transient", tc.kind)
		}
		if tc.kind == KindPartial && (te.Fraction <= 0 || te.Fraction >= 1) {
			t.Errorf("partial fraction %v out of (0,1)", te.Fraction)
		}
		if te.Error() == "" {
			t.Error("empty error string")
		}
	}
	if in := New(Config{Seed: 1, FailProb: 1}); in.TransferFault(1) == nil || in.Injected() != 1 {
		t.Error("injection not counted")
	}
}

func TestFaultRateRoughlyRespected(t *testing.T) {
	in := New(Config{Seed: 9, FailProb: 0.25})
	faults := 0
	for i := 0; i < 2000; i++ {
		if in.TransferFault(64) != nil {
			faults++
		}
	}
	if faults < 400 || faults > 600 {
		t.Errorf("%d faults in 2000 trials at p=0.25", faults)
	}
	if in.Injected() != uint64(faults) {
		t.Errorf("Injected %d != observed %d", in.Injected(), faults)
	}
}

func TestCorruptBatchLeavesInputIntact(t *testing.T) {
	in := New(Config{Seed: 3, WeightFlipProb: 1, IDCorruptProb: 1, TruncateProb: 1})
	orig := graph.Batch{
		Inserts: []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 2, Dst: 3, Weight: 2}},
		Deletes: []graph.Edge{{Src: 4, Dst: 5, Weight: 3}},
	}
	want := graph.Batch{
		Inserts: append([]graph.Edge(nil), orig.Inserts...),
		Deletes: append([]graph.Edge(nil), orig.Deletes...),
	}
	_, n := in.CorruptBatch(orig)
	if n == 0 {
		t.Fatal("nothing corrupted at rate 1")
	}
	for i := range want.Inserts {
		if orig.Inserts[i] != want.Inserts[i] {
			t.Errorf("input insert %d mutated: %+v", i, orig.Inserts[i])
		}
	}
	if orig.Deletes[0] != want.Deletes[0] {
		t.Errorf("input delete mutated: %+v", orig.Deletes[0])
	}
	if in.Injected() != uint64(n) {
		t.Errorf("Injected %d != returned %d", in.Injected(), n)
	}
}

func TestNewWithRandMatchesSeededConstructor(t *testing.T) {
	cfg := Config{Seed: 7, FailProb: 0.3, PartialProb: 0.2, TimeoutProb: 0.1}
	collect := func(in *Injector) []string {
		var faults []string
		for i := 0; i < 200; i++ {
			if err := in.TransferFault(512); err != nil {
				faults = append(faults, err.Error())
			}
		}
		return faults
	}
	a := collect(New(cfg))
	b := collect(NewWithRand(cfg, rand.New(rand.NewSource(cfg.Seed))))
	if len(a) != len(b) {
		t.Fatalf("fault counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
	if NewWithRand(Config{}, rand.New(rand.NewSource(1))) != nil {
		t.Fatal("disabled config built a live injector")
	}
}
