package fault

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"jetstream/internal/graph"
	"jetstream/internal/wal"
)

func diskBatch(i int) graph.Batch {
	return graph.Batch{Inserts: []graph.Edge{{Src: uint32(i), Dst: uint32(i + 1), Weight: 1}}}
}

// TestDiskKillSweep steps a kill point through every byte boundary of a
// three-record log and checks the invariant recovery depends on: the real
// file holds exactly the bytes written before the kill, and a scan of those
// bytes yields exactly the whole records that fit under the kill offset.
func TestDiskKillSweep(t *testing.T) {
	recSize := wal.AppendedSize(diskBatch(1))
	total := 3 * recSize
	for kill := 0; kill <= total; kill += recSize / 3 {
		dir := t.TempDir()
		d := NewDisk(dir, DiskConfig{KillAtByte: int64(kill), FlipBitAt: -1, FullAtByte: -1})
		l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone, FS: d})
		if err != nil {
			t.Fatalf("kill=%d: open: %v", kill, err)
		}
		survived := 0
		for i := 1; i <= 3; i++ {
			if err := l.Append(uint64(i), diskBatch(i)); err != nil {
				if !errors.Is(err, ErrDiskKilled) {
					t.Fatalf("kill=%d: append %d: %v", kill, i, err)
				}
				break
			}
			survived++
		}
		wantKilled := kill < total
		if d.Killed() != wantKilled {
			t.Fatalf("kill=%d: Killed = %v, want %v", kill, d.Killed(), wantKilled)
		}

		// The bytes that reached the real file are exactly the pre-kill ones.
		data, err := os.ReadFile(filepath.Join(dir, wal.LogName))
		if err != nil {
			t.Fatalf("kill=%d: %v", kill, err)
		}
		wantBytes := total
		if kill < total {
			wantBytes = kill
		}
		if len(data) != wantBytes {
			t.Fatalf("kill=%d: %d bytes on disk, want %d", kill, len(data), wantBytes)
		}

		// Recovery with the real filesystem sees the whole records only.
		st, err := wal.Scan(data)
		if err != nil {
			t.Fatalf("kill=%d: scan: %v", kill, err)
		}
		if st.Replayed != kill/recSize {
			t.Fatalf("kill=%d: %d intact records, want %d", kill, st.Replayed, kill/recSize)
		}
		if survived < st.Replayed {
			// Append counts a record as surviving only if its full write was
			// admitted; every intact on-disk record must have been admitted.
			t.Fatalf("kill=%d: %d appends succeeded but %d records on disk", kill, survived, st.Replayed)
		}
	}
}

func TestDiskKillLatchesEverything(t *testing.T) {
	dir := t.TempDir()
	d := NewDisk(dir, DiskConfig{KillAtByte: 0, FlipBitAt: -1, FullAtByte: -1})
	f, err := d.OpenAppend("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("abc")); !errors.Is(err, ErrDiskKilled) {
		t.Fatalf("write = %v, want ErrDiskKilled", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrDiskKilled) {
		t.Fatalf("sync = %v, want ErrDiskKilled", err)
	}
	if _, err := d.OpenAppend("y"); !errors.Is(err, ErrDiskKilled) {
		t.Fatalf("open = %v, want ErrDiskKilled", err)
	}
	if _, err := d.ReadFile("x"); !errors.Is(err, ErrDiskKilled) {
		t.Fatalf("read = %v, want ErrDiskKilled", err)
	}
	if err := d.Rename("x", "y"); !errors.Is(err, ErrDiskKilled) {
		t.Fatalf("rename = %v, want ErrDiskKilled", err)
	}
}

// TestDiskBitFlip injects silent bit rot on the write path and checks the
// log layer's two corruption outcomes: rot in the last record presents as a
// torn tail (truncated, earlier records recovered), rot mid-log is refused.
func TestDiskBitFlip(t *testing.T) {
	recSize := wal.AppendedSize(diskBatch(1))
	cases := []struct {
		name    string
		flipAt  int64
		records int
		midLog  bool
	}{
		{"last-record", int64(2*recSize + 8), 3, false},
		{"mid-log", int64(recSize + 8), 3, true},
		{"first-record", 4, 3, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := NewDisk(dir, DiskConfig{KillAtByte: -1, FlipBitAt: tc.flipAt, FullAtByte: -1})
			l, err := wal.Open(dir, wal.Options{FS: d})
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= tc.records; i++ {
				if err := l.Append(uint64(i), diskBatch(i)); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			data, err := os.ReadFile(filepath.Join(dir, wal.LogName))
			if err != nil {
				t.Fatal(err)
			}
			st, err := wal.Scan(data)
			if tc.midLog {
				if !errors.Is(err, wal.ErrCorrupt) {
					t.Fatalf("scan = %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !st.Truncated || st.Replayed != tc.records-1 {
				t.Fatalf("stats = %+v, want truncated with %d intact", st, tc.records-1)
			}
		})
	}
}

// TestDiskFull models ENOSPC: the write fails but the process lives, so the
// log latches broken while sync and close still succeed, and reopening after
// space is freed recovers the durable prefix.
func TestDiskFull(t *testing.T) {
	dir := t.TempDir()
	recSize := wal.AppendedSize(diskBatch(1))
	d := NewDisk(dir, DiskConfig{KillAtByte: -1, FlipBitAt: -1, FullAtByte: int64(recSize + 10)})
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone, FS: d})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, diskBatch(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, diskBatch(2)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("append on full disk = %v, want ErrNoSpace", err)
	}
	if d.Killed() {
		t.Fatal("full disk marked killed")
	}
	// The log is broken (its tail is torn) but the disk still accepts
	// metadata operations: Close releases the handle.
	if err := l.Append(3, diskBatch(3)); err == nil {
		t.Fatal("append after ENOSPC succeeded")
	}
	if err := l.Close(); err == nil {
		t.Fatal("close flushed a broken log without error")
	}

	// "Space freed": reopen with the real filesystem; the torn record is
	// truncated and batch 1 survives.
	l2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = l2.Close() }()
	if l2.LastSeq() != 1 {
		t.Fatalf("LastSeq after ENOSPC recovery = %d, want 1", l2.LastSeq())
	}
}

// TestDiskWritten checks cumulative offset accounting across files, which the
// crashpoint sweep uses to aim kills at exact log offsets.
func TestDiskWritten(t *testing.T) {
	dir := t.TempDir()
	d := NewDisk(dir, DiskConfig{KillAtByte: -1, FlipBitAt: -1, FullAtByte: -1})
	a, err := d.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := d.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(make([]byte, 50)); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if d.Written() != 150 {
		t.Fatalf("Written = %d, want 150", d.Written())
	}
}
