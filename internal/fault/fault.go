// Package fault provides a deterministic, seed-driven fault injector for the
// resilience layer. It models the two untrusted surfaces of a deployed
// accelerator: the host–device DMA link (failed, partial, or timed-out
// transfers) and the incoming update feed (bit-flipped weights, corrupted or
// shuffled vertex ids, truncated batches). Every decision is drawn from one
// seeded PRNG, so a test that observed a fault sequence can replay it exactly.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"jetstream/internal/graph"
)

// Config selects the fault rates. All probabilities are per-opportunity (per
// transfer for the link faults, per update for the feed corruptions, per
// batch for truncation) in [0,1]; zero disables that fault class.
type Config struct {
	// Seed drives the injector's PRNG; runs with equal Seed and equal call
	// sequences observe identical faults.
	Seed int64

	// DMA link faults.
	FailProb    float64 // transfer fails outright, no bytes arrive
	PartialProb float64 // transfer stops partway through
	TimeoutProb float64 // transfer exceeds its deadline

	// Update feed corruptions.
	WeightFlipProb float64 // flip one random bit of an insert's weight
	IDCorruptProb  float64 // rewrite or shuffle an update's endpoint
	TruncateProb   float64 // drop the tail of the batch
}

// Enabled reports whether any fault class has a nonzero rate.
func (c Config) Enabled() bool {
	return c.FailProb > 0 || c.PartialProb > 0 || c.TimeoutProb > 0 ||
		c.WeightFlipProb > 0 || c.IDCorruptProb > 0 || c.TruncateProb > 0
}

// Kind classifies a DMA link fault.
type Kind int

const (
	// KindFail is an outright failed transfer: no bytes arrive.
	KindFail Kind = iota
	// KindPartial is a transfer that stopped partway; Fraction reports how
	// much arrived before the cut.
	KindPartial
	// KindTimeout is a transfer that exceeded its deadline.
	KindTimeout
)

func (k Kind) String() string {
	switch k {
	case KindFail:
		return "failed"
	case KindPartial:
		return "partial"
	case KindTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// TransferError is the injected DMA link fault. All injected link faults are
// transient: the transfer left device state untouched and may be retried.
type TransferError struct {
	Kind     Kind
	Bytes    uint64  // size of the attempted transfer
	Fraction float64 // for KindPartial: fraction delivered before the cut
}

func (e *TransferError) Error() string {
	if e.Kind == KindPartial {
		return fmt.Sprintf("fault: %s transfer of %d bytes (%.0f%% delivered)",
			e.Kind, e.Bytes, 100*e.Fraction)
	}
	return fmt.Sprintf("fault: %s transfer of %d bytes", e.Kind, e.Bytes)
}

// Transient reports whether the fault may clear on retry. Every injected link
// fault is transient by construction.
func (e *TransferError) Transient() bool { return true }

// Injector draws faults from a seeded PRNG. A nil *Injector is valid and
// injects nothing, so callers can thread it through unconditionally.
type Injector struct {
	cfg      Config
	rng      *rand.Rand
	injected uint64
}

// New builds an injector for cfg, drawing from a private generator seeded
// with cfg.Seed. Returns nil when cfg injects nothing, which callers treat as
// a disabled injector.
func New(cfg Config) *Injector {
	return NewWithRand(cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// NewWithRand builds an injector drawing fault decisions from rng, which must
// be explicitly seeded by the caller. Returns nil when cfg injects nothing.
func NewWithRand(cfg Config, rng *rand.Rand) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: cfg, rng: rng}
}

// Injected returns the total number of faults introduced so far (link faults
// and feed corruptions combined).
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	return in.injected
}

// TransferFault decides the fate of one DMA transfer of the given size. It
// returns nil (transfer succeeds) or a *TransferError describing the injected
// link fault.
func (in *Injector) TransferFault(bytes uint64) error {
	if in == nil {
		return nil
	}
	r := in.rng.Float64()
	if r < in.cfg.FailProb {
		in.injected++
		return &TransferError{Kind: KindFail, Bytes: bytes}
	}
	r -= in.cfg.FailProb
	if r < in.cfg.PartialProb {
		in.injected++
		return &TransferError{Kind: KindPartial, Bytes: bytes, Fraction: 0.1 + 0.8*in.rng.Float64()}
	}
	r -= in.cfg.PartialProb
	if r < in.cfg.TimeoutProb {
		in.injected++
		return &TransferError{Kind: KindTimeout, Bytes: bytes}
	}
	return nil
}

// CorruptBatch applies feed corruptions to a copy of b and returns it along
// with the number of corruptions introduced; b itself is never modified.
// Corruptions deliberately span the detectable (NaN weights, out-of-range
// ids — caught by ingest validation) and the silent (in-range id shuffles,
// sign-preserving weight flips — only the divergence watchdog or a reference
// solve can notice those).
func (in *Injector) CorruptBatch(b graph.Batch) (graph.Batch, int) {
	if in == nil || (in.cfg.WeightFlipProb == 0 && in.cfg.IDCorruptProb == 0 && in.cfg.TruncateProb == 0) {
		return b, 0
	}
	ins := append([]graph.Edge(nil), b.Inserts...)
	del := append([]graph.Edge(nil), b.Deletes...)
	n := 0
	for i := range ins {
		if in.rng.Float64() < in.cfg.WeightFlipProb {
			bits := math.Float64bits(ins[i].Weight)
			bits ^= 1 << uint(in.rng.Intn(64))
			ins[i].Weight = math.Float64frombits(bits)
			n++
		}
		if in.rng.Float64() < in.cfg.IDCorruptProb {
			if len(ins) > 1 && in.rng.Intn(2) == 0 {
				// Shuffle destinations between two updates: both ids stay in
				// range, so the result may still validate.
				j := in.rng.Intn(len(ins))
				ins[i].Dst, ins[j].Dst = ins[j].Dst, ins[i].Dst
			} else {
				ins[i].Dst = graph.VertexID(in.rng.Uint32())
			}
			n++
		}
	}
	for i := range del {
		if in.rng.Float64() < in.cfg.IDCorruptProb {
			del[i].Src = graph.VertexID(in.rng.Uint32())
			n++
		}
	}
	if in.rng.Float64() < in.cfg.TruncateProb {
		if len(ins) > 0 {
			ins = ins[:in.rng.Intn(len(ins))]
			n++
		}
		if len(del) > 0 {
			del = del[:in.rng.Intn(len(del))]
			n++
		}
	}
	in.injected += uint64(n)
	return graph.Batch{Inserts: ins, Deletes: del}, n
}
