// Package host models the processor side of the deployment the paper
// describes (§4.1): "The accelerator is designed to work alongside a host as
// an ASIC/FPGA-based co-processor with dedicated DRAM memory... The host
// processor allocates and initializes the graph and the initial events in
// the accelerator memory as defined by the programmer via a provided API.
// The accelerator performs the graph computation independently based on
// configurations received from the host. It alerts the host when computation
// finishes so that the graph state can be read back."
//
// A Session glues the three pieces together: the version.Store that
// maintains the evolving edge list, the DMA link over which graph versions,
// update batches and results move, and the JetStream device that computes.
// The DMA accounting makes the end-to-end cost visible — the paper notes the
// reported times are processing-only and that "the end-to-end performance
// may have other overheads to receive and batch the updates" (§6.2); this
// package is where those overheads live.
package host

import (
	"fmt"
	"time"

	"jetstream/internal/algo"
	"jetstream/internal/core"
	"jetstream/internal/graph"
	"jetstream/internal/stats"
	"jetstream/internal/version"
)

// LinkConfig describes the host-device DMA link.
type LinkConfig struct {
	// GBps is the sustained transfer bandwidth (PCIe 3.0 x16 ≈ 12 GB/s).
	GBps float64
	// LatencyUS is the per-transfer setup latency in microseconds.
	LatencyUS float64
}

// DefaultLink returns a PCIe-3.0-class link.
func DefaultLink() LinkConfig { return LinkConfig{GBps: 12, LatencyUS: 5} }

// Config configures a Session.
type Config struct {
	Accel core.Config
	Link  LinkConfig
	// SwapFullCSR selects the paper's "simplest case": the host writes a
	// complete new CSR per batch and swaps the pointer. When false, only the
	// delta is shipped and the device-side CSR is assumed to be maintained
	// in place by a device-resident versioning structure (GraSU-style),
	// which shrinks DMA traffic by orders of magnitude.
	SwapFullCSR bool
}

// DefaultConfig uses the full-CSR swap, matching §4.7's simplest case.
func DefaultConfig() Config {
	return Config{Accel: core.DefaultConfig(), Link: DefaultLink(), SwapFullCSR: true}
}

// Result reports one operation end to end.
type Result struct {
	Version      int
	AccelSeconds float64 // device compute time (cycles at the device clock)
	DMASeconds   float64 // host-device transfer time for this operation
	DMABytes     uint64
	Cycles       uint64
}

// Total returns compute + transfer time.
func (r Result) Total() time.Duration {
	return time.Duration((r.AccelSeconds + r.DMASeconds) * float64(time.Second))
}

// Session is one standing query deployed on the co-processor.
type Session struct {
	cfg   Config
	store *version.Store
	alg   algo.Algorithm
	js    *core.JetStream
	st    *stats.Counters

	initialized bool
	prevCycles  uint64

	totalDMABytes uint64
	totalDMASecs  float64
}

// NewSession creates a session over the base graph. The version store is
// created internally; ShareStore sessions can be layered later.
func NewSession(base *graph.CSR, a algo.Algorithm, cfg Config) (*Session, error) {
	if algo.NeedsSymmetric(a) {
		// The session trusts the caller symmetrized the base; the version
		// store will keep whatever invariant the batches preserve.
		for _, e := range base.Edges() {
			if _, ok := base.HasEdge(e.Dst, e.Src); !ok {
				return nil, fmt.Errorf("host: %s requires a symmetric graph", a.Name())
			}
		}
	}
	st := &stats.Counters{}
	return &Session{
		cfg:   cfg,
		store: version.NewStore(base, 0),
		alg:   a,
		js:    core.New(base, a, cfg.Accel, st),
		st:    st,
	}, nil
}

// Store exposes the session's version store (e.g. to attach more queries or
// historical analysis to the same mutation history).
func (s *Session) Store() *version.Store { return s.store }

// dma charges a transfer of n bytes and returns its seconds.
func (s *Session) dma(n uint64) float64 {
	secs := s.cfg.Link.LatencyUS/1e6 + float64(n)/(s.cfg.Link.GBps*1e9)
	s.totalDMABytes += n
	s.totalDMASecs += secs
	return secs
}

// csrBytes estimates the device footprint of a CSR: both direction indexes
// (pointers + edge records) plus the vertex state array.
func csrBytes(g *graph.CSR, vertexBytes int) uint64 {
	v := uint64(g.NumVertices())
	e := uint64(g.NumEdges())
	return 2*((v+1)*8+e*8) + v*uint64(vertexBytes)
}

// updateBytes is the stream-reader record size per update (§4.5: <source,
// destination, weight>).
const updateBytes = 12

// Initialize ships the graph and initial events to device memory and runs
// the initial evaluation.
func (s *Session) Initialize() (Result, error) {
	if s.initialized {
		return Result{}, fmt.Errorf("host: session already initialized")
	}
	g, err := s.store.At(0)
	if err != nil {
		return Result{}, err
	}
	nInit := len(s.alg.InitialEvents(g))
	dmaSecs := s.dma(csrBytes(g, s.cfg.Accel.Engine.VertexBytes) + uint64(nInit)*16)

	s.js.RunInitial()
	s.initialized = true
	cyc := s.js.Cycles() - s.prevCycles
	s.prevCycles = s.js.Cycles()
	return Result{
		Version:      0,
		AccelSeconds: s.cfg.Accel.Engine.CyclesToSeconds(cyc),
		DMASeconds:   dmaSecs,
		DMABytes:     s.totalDMABytes,
		Cycles:       cyc,
	}, nil
}

// Stream appends a batch to the version store, ships it (and, in the
// full-swap configuration, the new CSR) to the device, and runs the
// incremental re-evaluation.
func (s *Session) Stream(b graph.Batch) (Result, error) {
	if !s.initialized {
		return Result{}, fmt.Errorf("host: Initialize before Stream")
	}
	v, ng, err := s.store.Append(b)
	if err != nil {
		return Result{}, err
	}
	bytes := uint64(b.Size()) * updateBytes
	if s.cfg.SwapFullCSR {
		bytes += csrBytes(ng, s.cfg.Accel.Engine.VertexBytes)
	}
	dmaSecs := s.dma(bytes)

	if err := s.js.ApplyBatch(b); err != nil {
		return Result{}, err
	}
	cyc := s.js.Cycles() - s.prevCycles
	s.prevCycles = s.js.Cycles()
	return Result{
		Version:      v,
		AccelSeconds: s.cfg.Accel.Engine.CyclesToSeconds(cyc),
		DMASeconds:   dmaSecs,
		DMABytes:     bytes,
		Cycles:       cyc,
	}, nil
}

// ReadBack transfers the converged vertex states to the host and returns a
// copy.
func (s *Session) ReadBack() ([]float64, float64) {
	state := s.js.State()
	secs := s.dma(uint64(len(state)) * 8)
	out := make([]float64, len(state))
	copy(out, state)
	return out, secs
}

// QueryAt evaluates the standing query from scratch against a historical
// version — the "graph versions available a priori" workload the related
// work targets (Chronos, GraphTau). It uses a separate cold device run and
// does not disturb the streaming state.
func (s *Session) QueryAt(v int) ([]float64, error) {
	g, err := s.store.At(v)
	if err != nil {
		return nil, err
	}
	cold := core.New(g, s.alg, s.cfg.Accel, nil)
	cold.RunInitial()
	out := make([]float64, len(cold.State()))
	copy(out, cold.State())
	return out, nil
}

// Verify cross-checks the streaming state against a from-scratch solver on
// the current version.
func (s *Session) Verify() float64 { return s.js.Verify() }

// Totals reports cumulative DMA traffic and time.
func (s *Session) Totals() (bytes uint64, seconds float64) {
	return s.totalDMABytes, s.totalDMASecs
}
