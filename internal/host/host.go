// Package host models the processor side of the deployment the paper
// describes (§4.1): "The accelerator is designed to work alongside a host as
// an ASIC/FPGA-based co-processor with dedicated DRAM memory... The host
// processor allocates and initializes the graph and the initial events in
// the accelerator memory as defined by the programmer via a provided API.
// The accelerator performs the graph computation independently based on
// configurations received from the host. It alerts the host when computation
// finishes so that the graph state can be read back."
//
// A Session glues the three pieces together: the version.Store that
// maintains the evolving edge list, the DMA link over which graph versions,
// update batches and results move, and the JetStream device that computes.
// The DMA accounting makes the end-to-end cost visible — the paper notes the
// reported times are processing-only and that "the end-to-end performance
// may have other overheads to receive and batch the updates" (§6.2); this
// package is where those overheads live.
package host

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"jetstream/internal/algo"
	"jetstream/internal/core"
	"jetstream/internal/fault"
	"jetstream/internal/graph"
	"jetstream/internal/obs"
	"jetstream/internal/stats"
	"jetstream/internal/version"
	"jetstream/internal/wal"
	"jetstream/internal/window"
)

// LinkConfig describes the host-device DMA link.
type LinkConfig struct {
	// GBps is the sustained transfer bandwidth (PCIe 3.0 x16 ≈ 12 GB/s).
	GBps float64
	// LatencyUS is the per-transfer setup latency in microseconds.
	LatencyUS float64
}

// DefaultLink returns a PCIe-3.0-class link.
func DefaultLink() LinkConfig { return LinkConfig{GBps: 12, LatencyUS: 5} }

// RetryConfig bounds the recovery of a faulted DMA transfer. Backoff and
// timeout are charged as modeled link seconds, like the transfers themselves.
type RetryConfig struct {
	// MaxRetries is how many times a faulted transfer is re-attempted before
	// the operation aborts; 0 disables retry.
	MaxRetries int
	// BackoffUS is the wait before the first retry, in microseconds; each
	// subsequent retry doubles it.
	BackoffUS float64
	// TimeoutUS is the per-transfer deadline: a hung transfer is abandoned
	// (and charged) at this point. 0 means no deadline — a hung transfer
	// costs its nominal duration.
	TimeoutUS float64
}

// DefaultRetry tolerates a few transient link faults per transfer.
func DefaultRetry() RetryConfig {
	return RetryConfig{MaxRetries: 4, BackoffUS: 50, TimeoutUS: 2000}
}

// Config configures a Session.
type Config struct {
	Accel core.Config
	Link  LinkConfig
	// SwapFullCSR selects the paper's "simplest case": the host writes a
	// complete new CSR per batch and swaps the pointer. When false, only the
	// delta is shipped and the device-side CSR is assumed to be maintained
	// in place by a device-resident versioning structure (GraSU-style),
	// which shrinks DMA traffic by orders of magnitude.
	SwapFullCSR bool

	// Ingest selects how Stream treats invalid updates (default Strict:
	// reject the batch, state untouched; Repair drops and counts them).
	Ingest graph.IngestPolicy
	// Retry bounds DMA fault recovery (zero value: no retries).
	Retry RetryConfig
	// Watchdog enables the divergence watchdog with cold-start fallback.
	Watchdog core.WatchdogConfig
	// Fault configures the deterministic fault injector on the DMA link and
	// the update feed (zero value: no injection).
	Fault fault.Config

	// WindowTTL, when > 0, bounds every edge's lifetime to that many batches:
	// each Stream call synthesizes the aging-based deletion set for the edges
	// falling out of the sliding window and commits it together with the
	// user's updates — to the version store and the device alike, so the
	// recorded history matches the device graph. Expiry is device-local aging
	// (no DMA is charged for the synthesized deletes); only the user batch is
	// journaled, and RecoverSession re-derives expiry deterministically
	// during replay.
	WindowTTL int

	// WALDir, when set, attaches a durable write-ahead delta log: every
	// sanitized batch is journaled after its DMA transfer succeeds and before
	// the version store or the device commit it, so RecoverSession can replay
	// the durable stream onto a fresh session after a crash.
	WALDir string
	// WAL configures the log's sync policy and filesystem (zero value:
	// per-batch fsync on the real filesystem).
	WAL wal.Options
}

// DefaultConfig uses the full-CSR swap, matching §4.7's simplest case.
func DefaultConfig() Config {
	return Config{Accel: core.DefaultConfig(), Link: DefaultLink(), SwapFullCSR: true, Retry: DefaultRetry()}
}

// FunctionalConfig is DefaultConfig with the cycle model off: the deployment
// shape for using the session as a fast streaming-graph engine rather than a
// hardware simulator. With timing disabled the device computes with the
// parallel multi-PE engine (Accel.Engine.Parallelism workers, default 8),
// so this is also the throughput configuration.
func FunctionalConfig() Config {
	cfg := DefaultConfig()
	cfg.Accel.Engine.Timing = false
	return cfg
}

// Result reports one operation end to end.
type Result struct {
	Version      int
	AccelSeconds float64 // device compute time (cycles at the device clock)
	DMASeconds   float64 // host-device transfer time for this operation
	DMABytes     uint64
	Cycles       uint64

	// Resilience outcomes for this operation.
	Retries    uint64  // DMA attempts retried after an injected fault
	Injected   uint64  // corruptions injected into this operation's batch
	Repaired   uint64  // invalid updates dropped by the Repair policy
	Checked    bool    // the divergence watchdog ran after this batch
	Divergence float64 // deviation the watchdog measured (when Checked)
	FellBack   bool    // the watchdog triggered a cold-start recompute

	// Expired counts the edges the sliding window aged out of the graph
	// during this batch (0 unless Config.WindowTTL is set).
	Expired uint64
}

// Total returns compute + transfer time.
func (r Result) Total() time.Duration {
	return time.Duration((r.AccelSeconds + r.DMASeconds) * float64(time.Second))
}

// Session is one standing query deployed on the co-processor.
type Session struct {
	cfg   Config
	store *version.Store
	alg   algo.Algorithm
	js    *core.JetStream
	st    *stats.Counters
	inj   *fault.Injector
	wal   *wal.Log
	win   *window.Ring

	initialized bool
	prevCycles  uint64
	batches     uint64

	totalDMABytes uint64
	totalDMASecs  float64

	// Observability (nil until Instrument): modeled end-to-end batch latency,
	// cumulative DMA retries, committed batches, and the session tracer.
	obLatency *obs.Histogram
	obRetries *obs.Counter
	obBatches *obs.Counter
	tr        obs.Tracer
	trSeq     uint64
}

// Instrument attaches observability to the session and its device: host
// series (batch latency, DMA retries, batches) register on reg, the device's
// engine series register through core.JetStream.Instrument, and trace events
// flow to tr (nil for metrics only).
func (s *Session) Instrument(reg *obs.Registry, tr obs.Tracer) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if tr == nil {
		tr = obs.Nop
	}
	s.obLatency = reg.Histogram("jetstream_host_batch_latency_ns")
	s.obRetries = reg.Counter("jetstream_host_dma_retries_total")
	s.obBatches = reg.Counter("jetstream_host_batches_total")
	s.tr = tr
	s.js.Instrument(reg, tr)
}

func (s *Session) trace(e obs.TraceEvent) {
	if s.tr == nil {
		return
	}
	s.trSeq++
	e.Seq = s.trSeq
	e.Worker = -1
	s.tr.Trace(e)
}

// NewSession creates a session over the base graph. The version store is
// created internally; ShareStore sessions can be layered later.
func NewSession(base *graph.CSR, a algo.Algorithm, cfg Config) (*Session, error) {
	if algo.NeedsSymmetric(a) && !base.Symmetric() {
		// The session trusts the caller symmetrized the base; the version
		// store will keep whatever invariant the batches preserve.
		return nil, fmt.Errorf("host: %s requires a symmetric graph", a.Name())
	}
	st := &stats.Counters{}
	s := &Session{
		cfg:   cfg,
		store: version.NewStore(base, 0),
		alg:   a,
		js:    core.New(base, a, cfg.Accel, st),
		st:    st,
		inj:   fault.New(cfg.Fault),
	}
	if cfg.WindowTTL > 0 {
		win, err := window.New(cfg.WindowTTL)
		if err != nil {
			return nil, fmt.Errorf("host: %w", err)
		}
		win.Seed(0, base.Edges())
		s.win = win
	}
	if cfg.WALDir != "" {
		l, err := wal.Open(cfg.WALDir, cfg.WAL)
		if err != nil {
			return nil, fmt.Errorf("host: %w", err)
		}
		if l.LastSeq() > 0 {
			_ = l.Close() // refusing anyway; the advisory error below wins
			return nil, fmt.Errorf("host: WAL directory %s already holds %d journaled batch(es); resume it with RecoverSession", cfg.WALDir, l.LastSeq())
		}
		l.SetFloor(0)
		s.wal = l
	}
	return s, nil
}

// Sync flushes the session's write-ahead log — the explicit durability point
// under the interval and none sync policies. Without a WAL it is a no-op.
func (s *Session) Sync() error {
	if s.wal == nil {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("host: %w", err)
	}
	return nil
}

// Close flushes and releases the write-ahead log. Batches streamed after
// Close are no longer journaled. Close is idempotent.
func (s *Session) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	if err != nil {
		return fmt.Errorf("host: %w", err)
	}
	return nil
}

// RecoverSession rebuilds a session from the write-ahead log in cfg.WALDir: a
// fresh session over base is initialized, every intact journaled batch is
// replayed directly into the version store and the device (no re-journaling,
// no re-injected faults, no re-modeled DMA — the transfers already happened),
// and the log is reattached for further journaling. A torn record at the end
// of the log is truncated away; mid-log damage fails with an error wrapping
// wal.ErrCorrupt. The replayed batch count is returned alongside the session.
func RecoverSession(base *graph.CSR, a algo.Algorithm, cfg Config) (*Session, int, error) {
	dir := cfg.WALDir
	if dir == "" {
		return nil, 0, fmt.Errorf("host: recover: no WAL directory configured")
	}
	cfg.WALDir = "" // replay must not journal into the log being replayed
	s, err := NewSession(base, a, cfg)
	if err != nil {
		return nil, 0, err
	}
	if _, err := s.Initialize(); err != nil {
		return nil, 0, fmt.Errorf("host: recover: %w", err)
	}
	fs := cfg.WAL.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	data, err := fs.ReadFile(filepath.Join(dir, wal.LogName))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("host: recover: read log: %w", err)
	}
	st, err := wal.Replay(data, 0, func(r wal.Record) error {
		// The journal holds user batches only; the window's synthesized
		// expiry deletes are deterministic in the stream prefix, so replaying
		// through the same merge re-derives them exactly.
		apply, _, merr := s.windowMerge(s.batches+1, r.Batch)
		if merr != nil {
			return fmt.Errorf("host: recover: replay batch %d: %w", r.Seq, merr)
		}
		s.store.AppendLazy(apply)
		if aerr := s.js.ApplyBatch(apply); aerr != nil {
			return fmt.Errorf("host: recover: replay batch %d: %w", r.Seq, aerr)
		}
		s.windowCommit(s.batches+1, r.Batch)
		s.batches++
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("host: recover: %w", err)
	}
	s.prevCycles = s.js.Cycles()
	l, err := wal.Open(dir, cfg.WAL)
	if err != nil {
		return nil, 0, fmt.Errorf("host: recover: %w", err)
	}
	l.SetFloor(s.batches)
	s.wal = l
	s.cfg.WALDir = dir
	return s, st.Replayed, nil
}

// Store exposes the session's version store (e.g. to attach more queries or
// historical analysis to the same mutation history).
func (s *Session) Store() *version.Store { return s.store }

// windowMerge stages the sliding-window expiry for the batch that will commit
// as epoch: it peeks (without advancing the ring) at the keys aging out,
// excludes pairs the sanitized user batch already deletes, resolves their
// stored weights, and returns the merged batch with the synthesized deletes
// ordered ahead of the user's updates. The ring is untouched, so an abort
// after this point costs nothing; windowCommit performs the mutation once the
// batch is actually in. With no window configured it returns clean unchanged.
func (s *Session) windowMerge(epoch uint64, clean graph.Batch) (graph.Batch, uint64, error) {
	if s.win == nil {
		return clean, 0, nil
	}
	var skip func(window.Key) bool
	if len(clean.Deletes) > 0 {
		userDel := make(map[window.Key]struct{}, len(clean.Deletes))
		for _, e := range clean.Deletes {
			userDel[window.Key{Src: e.Src, Dst: e.Dst}] = struct{}{}
		}
		skip = func(k window.Key) bool { _, ok := userDel[k]; return ok }
	}
	expired := s.win.Peek(epoch, skip)
	if len(expired) == 0 {
		return clean, 0, nil
	}
	g := s.js.Graph()
	dels := make([]graph.Edge, 0, len(expired)+len(clean.Deletes))
	for _, k := range expired {
		w, ok := g.HasEdge(k.Src, k.Dst)
		if !ok {
			return graph.Batch{}, 0, fmt.Errorf("host: window: expiring edge (%d,%d) absent from graph version", k.Src, k.Dst)
		}
		dels = append(dels, graph.Edge{Src: k.Src, Dst: k.Dst, Weight: w})
	}
	return graph.Batch{Deletes: append(dels, clean.Deletes...), Inserts: clean.Inserts}, uint64(len(expired)), nil
}

// windowCommit advances the ring past epoch and records the sanitized user
// batch — the mutating half of windowMerge, called only once the merged batch
// has committed to the store and the device.
func (s *Session) windowCommit(epoch uint64, clean graph.Batch) {
	if s.win == nil {
		return
	}
	s.win.Expire(epoch, nil)
	s.win.Record(epoch, clean)
}

// dma charges a transfer of n bytes and returns its seconds.
func (s *Session) dma(n uint64) float64 {
	secs := s.cfg.Link.LatencyUS/1e6 + float64(n)/(s.cfg.Link.GBps*1e9)
	s.totalDMABytes += n
	s.totalDMASecs += secs
	return secs
}

// dmaTransfer attempts a transfer of n bytes through the fault injector,
// retrying with exponential backoff up to the configured bound. It returns
// the modeled seconds (successful attempt plus any faulted attempts and
// backoff waits), the retry count, and a non-nil error when the transfer was
// abandoned — in which case no bytes arrived and device state is untouched.
func (s *Session) dmaTransfer(n uint64) (float64, uint64, error) {
	nominal := s.cfg.Link.LatencyUS/1e6 + float64(n)/(s.cfg.Link.GBps*1e9)
	backoff := s.cfg.Retry.BackoffUS / 1e6
	secs := 0.0
	var retries uint64
	for attempt := 0; ; attempt++ {
		err := s.inj.TransferFault(n)
		if err == nil {
			secs += nominal
			s.totalDMABytes += n
			s.totalDMASecs += secs
			return secs, retries, nil
		}
		// Charge the faulted attempt for the time it plausibly consumed.
		cost := nominal
		if te, ok := err.(*fault.TransferError); ok {
			switch te.Kind {
			case fault.KindPartial:
				cost = s.cfg.Link.LatencyUS/1e6 + te.Fraction*float64(n)/(s.cfg.Link.GBps*1e9)
			case fault.KindTimeout:
				if s.cfg.Retry.TimeoutUS > 0 {
					cost = s.cfg.Retry.TimeoutUS / 1e6
				}
			}
		}
		secs += cost
		if attempt >= s.cfg.Retry.MaxRetries {
			s.st.TransfersAborted++
			s.totalDMASecs += secs
			return secs, retries, fmt.Errorf("host: DMA transfer of %d bytes abandoned after %d attempt(s): %w", n, attempt+1, err)
		}
		s.st.TransfersRetried++
		retries++
		secs += backoff
		backoff *= 2
	}
}

// csrBytes estimates the device footprint of a CSR: both direction indexes
// (pointers + edge records) plus the vertex state array.
func csrBytes(g *graph.CSR, vertexBytes int) uint64 {
	return csrBytesDims(uint64(g.NumVertices()), uint64(g.NumEdges()), vertexBytes)
}

// csrBytesDims is csrBytes from the dimensions alone, so a transfer can be
// sized (and charged, and faulted) before the new CSR is materialized.
func csrBytesDims(v, e uint64, vertexBytes int) uint64 {
	return 2*((v+1)*8+e*8) + v*uint64(vertexBytes)
}

// updateBytes is the stream-reader record size per update (§4.5: <source,
// destination, weight>).
const updateBytes = 12

// Initialize ships the graph and initial events to device memory and runs
// the initial evaluation.
func (s *Session) Initialize() (Result, error) {
	if s.initialized {
		return Result{}, fmt.Errorf("host: session already initialized")
	}
	g, err := s.store.At(0)
	if err != nil {
		return Result{}, err
	}
	nInit := len(s.alg.InitialEvents(g))
	dmaSecs, retries, err := s.dmaTransfer(csrBytes(g, s.cfg.Accel.Engine.VertexBytes) + uint64(nInit)*16)
	if retries > 0 && s.obRetries != nil {
		s.obRetries.Add(retries)
	}
	if err != nil {
		// Nothing reached the device; the session stays uninitialized and
		// Initialize may be called again.
		return Result{DMASeconds: dmaSecs, Retries: retries}, err
	}

	s.js.RunInitial()
	s.initialized = true
	cyc := s.js.Cycles() - s.prevCycles
	s.prevCycles = s.js.Cycles()
	return Result{
		Version:      0,
		AccelSeconds: s.cfg.Accel.Engine.CyclesToSeconds(cyc),
		DMASeconds:   dmaSecs,
		DMABytes:     s.totalDMABytes,
		Cycles:       cyc,
		Retries:      retries,
	}, nil
}

// Stream ingests one update batch end to end: the (possibly corrupted) feed
// is validated against the ingest policy, the transfer is sized and pushed
// through the faultable DMA link with bounded retry, and only after the
// transfer succeeds are the host version store and the device updated — an
// aborted transfer leaves every layer exactly as it was. The divergence
// watchdog, when configured, runs after the batch lands and falls back to a
// cold-start recompute if the incremental state has drifted.
func (s *Session) Stream(b graph.Batch) (Result, error) {
	if !s.initialized {
		return Result{}, fmt.Errorf("host: Initialize before Stream")
	}
	s.trace(obs.TraceEvent{Kind: obs.KindBatchStart, A: s.batches + 1, B: uint64(b.Size())})

	// The feed is untrusted: the injector models corruption on the wire.
	b, injected := s.inj.CorruptBatch(b)
	s.st.FaultsInjected += uint64(injected)

	// Ingest validation. The sanitized batch always applies cleanly, so the
	// commit below cannot fail halfway.
	clean, issues := s.js.Graph().SanitizeBatch(b)
	if len(issues) > 0 {
		if s.cfg.Ingest == graph.Strict {
			return Result{Injected: uint64(injected)}, &graph.BatchError{Issues: issues}
		}
		s.st.UpdatesDropped += uint64(len(issues))
		s.st.BatchesRepaired++
	}

	// Sliding-window expiry is staged (not yet committed) so the transfer can
	// be sized for the post-expiry footprint. Only the user's updates cross
	// the wire — aging is device-local — but the swapped CSR reflects the
	// merged result.
	apply, expired, err := s.windowMerge(s.batches+1, clean)
	if err != nil {
		return Result{Injected: uint64(injected), Repaired: uint64(len(issues))}, err
	}

	// Transfer first, sized from dimensions alone: the new CSR footprint
	// depends only on the vertex and surviving edge counts, so an abort here
	// costs nothing to host or device state.
	bytes := uint64(clean.Size()) * updateBytes
	if s.cfg.SwapFullCSR {
		g := s.js.Graph()
		e := uint64(g.NumEdges()+len(apply.Inserts)) - uint64(len(apply.Deletes))
		bytes += csrBytesDims(uint64(g.NumVertices()), e, s.cfg.Accel.Engine.VertexBytes)
	}
	dmaSecs, retries, err := s.dmaTransfer(bytes)
	if retries > 0 {
		if s.obRetries != nil {
			s.obRetries.Add(retries)
		}
		s.trace(obs.TraceEvent{Kind: obs.KindRetry, A: s.batches + 1, B: retries})
	}
	if err != nil {
		return Result{DMASeconds: dmaSecs, Retries: retries, Injected: uint64(injected), Repaired: uint64(len(issues))}, err
	}

	// Journal-before-commit: once the transfer has succeeded, the sanitized
	// delta becomes durable before the version store or the device see it, so
	// the log is always at or ahead of the committed state. A journaling
	// failure rejects the batch with every layer untouched.
	if s.wal != nil {
		if werr := s.wal.Append(s.batches+1, clean); werr != nil {
			return Result{DMASeconds: dmaSecs, Retries: retries, Injected: uint64(injected), Repaired: uint64(len(issues))},
				fmt.Errorf("host: wal: %w", werr)
		}
	}

	// Commit: version store first, then the device. Both consume the same
	// merged batch the transfer was sized for — synthesized expiry deletes
	// included, so the recorded history matches the device graph. The store
	// records the delta lazily — the device applies it incrementally below, so
	// materializing a second full CSR per batch on the host would undo the
	// incremental win; historical versions rebuild on demand from the recorded
	// deltas.
	v := s.store.AppendLazy(apply)
	p0 := s.st.EventsProcessed
	if err := s.js.ApplyBatch(apply); err != nil {
		return Result{}, err
	}
	s.windowCommit(s.batches+1, clean)
	s.batches++
	checked, div, fell := s.js.WatchdogCheck(s.cfg.Watchdog, s.batches)

	cyc := s.js.Cycles() - s.prevCycles
	s.prevCycles = s.js.Cycles()
	r := Result{
		Version:      v,
		AccelSeconds: s.cfg.Accel.Engine.CyclesToSeconds(cyc),
		DMASeconds:   dmaSecs,
		DMABytes:     bytes,
		Cycles:       cyc,
		Retries:      retries,
		Injected:     uint64(injected),
		Repaired:     uint64(len(issues)),
		Checked:      checked,
		Divergence:   div,
		FellBack:     fell,
		Expired:      expired,
	}
	if s.obLatency != nil {
		s.obLatency.Observe(uint64(r.Total().Nanoseconds()))
		s.obBatches.Inc()
	}
	s.trace(obs.TraceEvent{Kind: obs.KindBatchEnd, A: s.batches,
		B: s.st.EventsProcessed - p0, F: r.Total().Seconds()})
	return r, nil
}

// ReadBack transfers the converged vertex states to the host and returns a
// copy.
func (s *Session) ReadBack() ([]float64, float64) {
	state := s.js.State()
	secs := s.dma(uint64(len(state)) * 8)
	out := make([]float64, len(state))
	copy(out, state)
	return out, secs
}

// QueryAt evaluates the standing query from scratch against a historical
// version — the "graph versions available a priori" workload the related
// work targets (Chronos, GraphTau). It uses a separate cold device run and
// does not disturb the streaming state.
func (s *Session) QueryAt(v int) ([]float64, error) {
	g, err := s.store.At(v)
	if err != nil {
		return nil, err
	}
	cold := core.New(g, s.alg, s.cfg.Accel, nil)
	cold.RunInitial()
	out := make([]float64, len(cold.State()))
	copy(out, cold.State())
	return out, nil
}

// Verify cross-checks the streaming state against a from-scratch solver on
// the current version.
func (s *Session) Verify() float64 { return s.js.Verify() }

// Stats exposes the session's cumulative counters (including the resilience
// counters: faults injected, updates dropped, transfers retried/aborted,
// cold-start fallbacks).
func (s *Session) Stats() *stats.Counters { return s.st }

// Batches returns how many batches have been committed by Stream.
func (s *Session) Batches() uint64 { return s.batches }

// Totals reports cumulative DMA traffic and time.
func (s *Session) Totals() (bytes uint64, seconds float64) {
	return s.totalDMABytes, s.totalDMASecs
}
