package host

import (
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
	"jetstream/internal/stream"
)

func testSession(t *testing.T, swapFull bool) *Session {
	t.Helper()
	g := graph.RMAT(graph.RMATConfig{Vertices: 400, Edges: 3000, Seed: 1})
	cfg := DefaultConfig()
	cfg.SwapFullCSR = swapFull
	s, err := NewSession(g, algo.NewSSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionLifecycle(t *testing.T) {
	s := testSession(t, true)
	if _, err := s.Stream(graph.Batch{}); err == nil {
		t.Error("Stream before Initialize accepted")
	}
	init, err := s.Initialize()
	if err != nil {
		t.Fatal(err)
	}
	if init.Cycles == 0 || init.DMASeconds <= 0 || init.AccelSeconds <= 0 {
		t.Fatalf("init result %+v", init)
	}
	if _, err := s.Initialize(); err == nil {
		t.Error("double Initialize accepted")
	}

	gen := stream.NewGenerator(stream.Config{BatchSize: 50, InsertFrac: 0.7, Seed: 2})
	for i := 1; i <= 3; i++ {
		res, err := s.Stream(gen.Next(mustLatest(t, s)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Version != i {
			t.Errorf("version %d, want %d", res.Version, i)
		}
		if res.Cycles == 0 || res.Cycles >= init.Cycles {
			t.Errorf("batch cycles %d vs init %d", res.Cycles, init.Cycles)
		}
	}
	if d := s.Verify(); d != 0 {
		t.Errorf("diverged by %v", d)
	}

	state, secs := s.ReadBack()
	if len(state) != 400 || secs <= 0 {
		t.Errorf("readback: %d states, %v s", len(state), secs)
	}
	if bytes, total := s.Totals(); bytes == 0 || total <= 0 {
		t.Errorf("totals: %d bytes, %v s", bytes, total)
	}
}

func TestFullSwapCostsMoreDMA(t *testing.T) {
	run := func(swap bool) uint64 {
		s := testSession(t, swap)
		if _, err := s.Initialize(); err != nil {
			t.Fatal(err)
		}
		gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.7, Seed: 3})
		res, err := s.Stream(gen.Next(mustLatest(t, s)))
		if err != nil {
			t.Fatal(err)
		}
		return res.DMABytes
	}
	full, delta := run(true), run(false)
	// The full-CSR swap ships the whole structure; delta mode ships ~12
	// bytes per update.
	if full < delta*10 {
		t.Errorf("full swap %d bytes not much larger than delta %d", full, delta)
	}
}

func TestHistoricalQuery(t *testing.T) {
	s := testSession(t, true)
	if _, err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	// Snapshot the base answer, stream some batches, then ask for version 0
	// again: the historical run must reproduce the original results.
	base, _ := s.ReadBack()
	gen := stream.NewGenerator(stream.Config{BatchSize: 50, InsertFrac: 0.5, Seed: 5})
	for i := 0; i < 3; i++ {
		if _, err := s.Stream(gen.Next(mustLatest(t, s))); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := s.QueryAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if d := algo.MaxAbsDiff(base, hist); d != 0 {
		t.Errorf("historical query differs from original by %v", d)
	}
	// The streaming state tracks the latest version, not version 0.
	cur, _ := s.ReadBack()
	if algo.MaxAbsDiff(base, cur) == 0 {
		t.Log("note: three batches left results unchanged (legal but unlikely)")
	}
	if _, err := s.QueryAt(99); err == nil {
		t.Error("QueryAt past latest accepted")
	}
}

func TestSessionRejectsAsymmetricCC(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 100, Edges: 600, Seed: 7})
	if _, err := NewSession(g, algo.NewCC(), DefaultConfig()); err == nil {
		t.Error("asymmetric CC session accepted")
	}
	if _, err := NewSession(graph.Symmetrize(g), algo.NewCC(), DefaultConfig()); err != nil {
		t.Errorf("symmetric CC session rejected: %v", err)
	}
}

func mustLatest(t *testing.T, s *Session) *graph.CSR {
	t.Helper()
	g, err := s.Store().At(s.Store().Latest())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFunctionalSessionParallel drives a full host session on the functional
// (timing-off) configuration, where the device computes with the parallel
// multi-PE engine, and checks the end-to-end results stay exact for a
// selective kernel.
func TestFunctionalSessionParallel(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 400, Edges: 3000, Seed: 1})
	cfg := FunctionalConfig()
	if cfg.Accel.Engine.Timing {
		t.Fatal("FunctionalConfig left the timing model on")
	}
	s, err := NewSession(g, algo.NewSSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.6, MaxWeight: 5, Seed: 3})
	for i := 0; i < 5; i++ {
		if _, err := s.Stream(gen.Next(mustLatest(t, s))); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if d := s.Verify(); d != 0 {
			t.Fatalf("batch %d: parallel session diverged from reference by %v", i, d)
		}
	}
	if r := s.Stats().EventsUnaccounted(); r != 0 {
		t.Errorf("%d events unaccounted at quiescence", r)
	}
}

// TestSessionWALRecoverBitwise journals a streamed session, "crashes" it
// (drops it un-Closed), recovers with RecoverSession, and demands the
// recovered device state match an uninterrupted reference run bit for bit.
func TestSessionWALRecoverBitwise(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 400, Edges: 3000, Seed: 1})
	const n = 4

	// Reference: no WAL, same deterministic stream.
	ref, err := NewSession(g, algo.NewSSSP(0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Initialize(); err != nil {
		t.Fatal(err)
	}
	gen := stream.NewGenerator(stream.Config{BatchSize: 50, InsertFrac: 0.7, Seed: 2})
	for i := 0; i < n; i++ {
		if _, err := ref.Stream(gen.Next(mustLatest(t, ref))); err != nil {
			t.Fatal(err)
		}
	}
	want, _ := ref.ReadBack()

	// Journaled run, crashed without Close.
	cfg := DefaultConfig()
	cfg.WALDir = t.TempDir()
	s, err := NewSession(g, algo.NewSSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	gen2 := stream.NewGenerator(stream.Config{BatchSize: 50, InsertFrac: 0.7, Seed: 2})
	for i := 0; i < n; i++ {
		if _, err := s.Stream(gen2.Next(mustLatest(t, s))); err != nil {
			t.Fatal(err)
		}
	}

	rec, replayed, err := RecoverSession(g, algo.NewSSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != n {
		t.Fatalf("replayed %d batches, want %d", replayed, n)
	}
	got, _ := rec.ReadBack()
	if len(got) != len(want) {
		t.Fatalf("state length %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("vertex %d: recovered %v, reference %v", i, got[i], want[i])
		}
	}

	// The recovered session keeps journaling: stream one more batch and
	// recover again.
	if _, err := rec.Stream(gen2.Next(mustLatest(t, rec))); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, replayed2, err := RecoverSession(g, algo.NewSSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if replayed2 != n+1 {
		t.Fatalf("second recovery replayed %d, want %d", replayed2, n+1)
	}
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh NewSession must refuse the non-empty journal directory.
	if _, err := NewSession(g, algo.NewSSSP(0), cfg); err == nil {
		t.Fatal("NewSession on a resumable WAL directory succeeded")
	}
}
