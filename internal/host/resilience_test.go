package host

import (
	"errors"
	"math"
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/core"
	"jetstream/internal/fault"
	"jetstream/internal/graph"
	"jetstream/internal/stream"
)

// resilientConfig is the acceptance configuration: a lossy link (>10%
// combined transfer fault rate) and a corrupting feed, survived by bounded
// retry plus the Repair ingest policy. Timing off keeps the 50-batch session
// fast; the functional results are what resilience is judged on.
func resilientConfig() Config {
	cfg := DefaultConfig()
	cfg.Accel.Engine.Timing = false
	cfg.Ingest = graph.Repair
	cfg.Watchdog = core.WatchdogConfig{Every: 10, Epsilon: 1e-9}
	cfg.Fault = fault.Config{
		Seed:     7,
		FailProb: 0.08, PartialProb: 0.04, TimeoutProb: 0.03,
		WeightFlipProb: 0.02, IDCorruptProb: 0.02, TruncateProb: 0.05,
	}
	return cfg
}

func TestFaultySessionSurvives50Batches(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 400, Edges: 3000, Seed: 31})
	s, err := NewSession(g, algo.NewSSSP(0), resilientConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Initialize(); err != nil {
		t.Fatal(err)
	}

	gen := stream.NewGenerator(stream.Config{BatchSize: 40, InsertFrac: 0.6, Seed: 32})
	var checked int
	for i := 0; i < 50; i++ {
		res, err := s.Stream(gen.Next(mustLatest(t, s)))
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if res.Checked {
			checked++
		}
	}
	if got := s.Batches(); got != 50 {
		t.Fatalf("committed %d batches, want 50", got)
	}
	if checked != 5 {
		t.Errorf("watchdog ran %d times in 50 batches at Every=10", checked)
	}

	st := s.Stats()
	if st.FaultsInjected == 0 {
		t.Error("no faults injected at these rates")
	}
	if st.TransfersRetried == 0 {
		t.Error("no transfers retried despite link faults")
	}
	if st.UpdatesDropped == 0 || st.BatchesRepaired == 0 {
		t.Errorf("repair policy dropped %d updates over %d batches", st.UpdatesDropped, st.BatchesRepaired)
	}
	if st.TransfersAborted != 0 {
		t.Errorf("%d transfers aborted despite retry budget", st.TransfersAborted)
	}
	// Silent corruptions land consistently in the version store and on the
	// device, so the selective query still verifies exactly against a
	// from-scratch solve of the (corrupted) current version.
	if d := s.Verify(); d != 0 {
		t.Errorf("session diverged by %v", d)
	}
	t.Logf("injected=%d retried=%d dropped=%d repaired-batches=%d",
		st.FaultsInjected, st.TransfersRetried, st.UpdatesDropped, st.BatchesRepaired)
}

func TestAbortedTransferLeavesStateUntouched(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1500, Seed: 33})
	cfg := DefaultConfig()
	cfg.Accel.Engine.Timing = false
	cfg.Retry = RetryConfig{MaxRetries: 0}
	s, err := NewSession(g, algo.NewSSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	before, _ := s.ReadBack()
	version := s.Store().Latest()

	// Every transfer now fails and there is no retry budget: Stream must
	// abort without committing anything anywhere.
	s.cfg.Fault = fault.Config{Seed: 34, FailProb: 1}
	s.inj = fault.New(s.cfg.Fault)
	gen := stream.NewGenerator(stream.Config{BatchSize: 30, InsertFrac: 0.6, Seed: 35})
	res, err := s.Stream(gen.Next(mustLatest(t, s)))
	if err == nil {
		t.Fatal("aborted transfer reported success")
	}
	var te *fault.TransferError
	if !errors.As(err, &te) {
		t.Errorf("abort error %v does not wrap *fault.TransferError", err)
	}
	if res.DMASeconds <= 0 {
		t.Error("aborted transfer charged no link time")
	}
	if s.Stats().TransfersAborted != 1 {
		t.Errorf("TransfersAborted = %d, want 1", s.Stats().TransfersAborted)
	}
	if s.Store().Latest() != version || s.Batches() != 0 {
		t.Error("aborted transfer advanced the version store")
	}
	after, _ := s.ReadBack()
	if d := algo.MaxAbsDiff(before, after); d != 0 {
		t.Errorf("aborted transfer moved device state by %v", d)
	}
	if d := s.Verify(); d != 0 {
		t.Errorf("session inconsistent after abort: %v", d)
	}

	// Clearing the fault lets the same session stream again.
	s.cfg.Fault = fault.Config{}
	s.inj = nil
	if _, err := s.Stream(gen.Next(mustLatest(t, s))); err != nil {
		t.Fatal(err)
	}
	if d := s.Verify(); d != 0 {
		t.Errorf("recovered session diverged by %v", d)
	}
}

func TestStrictSessionRejectsCorruptFeed(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1500, Seed: 36})
	cfg := DefaultConfig()
	cfg.Accel.Engine.Timing = false
	s, err := NewSession(g, algo.NewSSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Initialize(); err != nil {
		t.Fatal(err)
	}
	before, _ := s.ReadBack()

	bad := graph.Batch{Inserts: []graph.Edge{{Src: 0, Dst: 9999, Weight: 1}}}
	_, err = s.Stream(bad)
	var be *graph.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("strict rejection %v is not a *graph.BatchError", err)
	}
	if s.Store().Latest() != 0 || s.Batches() != 0 {
		t.Error("rejected batch advanced the version store")
	}
	after, _ := s.ReadBack()
	if d := algo.MaxAbsDiff(before, after); d != 0 {
		t.Errorf("rejected batch moved device state by %v", d)
	}
}

func TestWatchdogFallbackOnForcedDivergence(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 200, Edges: 1500, Seed: 37})
	cfg := DefaultConfig()
	cfg.Accel.Engine.Timing = false
	cfg.Watchdog = core.WatchdogConfig{Every: 1, Epsilon: 1e-9}
	s, err := NewSession(g, algo.NewSSSP(0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Initialize(); err != nil {
		t.Fatal(err)
	}

	// Sabotage the device state directly — the kind of silent corruption the
	// watchdog exists to catch (the ingest validators can't see it). The
	// distances shrink: a monotone min-kernel can never raise a
	// too-small state, so no amount of incremental recovery repairs this.
	state := s.js.Engine().State()
	for i := range state {
		if state[i] > 0 && !math.IsInf(state[i], 0) {
			state[i] *= 0.25
		}
	}
	gen := stream.NewGenerator(stream.Config{BatchSize: 20, InsertFrac: 0.6, Seed: 38})
	res, err := s.Stream(gen.Next(mustLatest(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Checked {
		t.Fatal("watchdog did not run at Every=1")
	}
	if !res.FellBack {
		t.Fatalf("watchdog saw divergence %v but did not fall back", res.Divergence)
	}
	if s.Stats().ColdStartFallbacks != 1 {
		t.Errorf("ColdStartFallbacks = %d, want 1", s.Stats().ColdStartFallbacks)
	}
	// The cold-start recompute repaired the sabotage.
	if d := s.Verify(); d != 0 {
		t.Errorf("state still wrong after fallback: %v", d)
	}
}
