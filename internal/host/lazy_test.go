package host

import (
	"runtime"
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
)

// TestSessionConstructionCheap pins the multi-tenant contract: constructing a
// Session performs no per-vertex work — engine state, dependency arrays, and
// queue slots all materialize lazily on first use — so a server can declare
// thousands of sessions over large graphs and pay only for the ones that
// stream. 2000 sessions over a shared 100k-vertex graph would cost >1.6 GB
// with eager per-vertex state (100k vertices x 8 B x 2000, before dep arrays
// and queue slots); the lazy path must stay under a small constant budget.
func TestSessionConstructionCheap(t *testing.T) {
	g := graph.RMAT(graph.RMATConfig{Vertices: 100_000, Edges: 200_000, Seed: 1})
	cfg := DefaultConfig()

	const sessions = 2000
	keep := make([]*Session, 0, sessions)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	for i := 0; i < sessions; i++ {
		s, err := NewSession(g, algo.NewSSSP(0), cfg)
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		keep = append(keep, s)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	// Generous ceiling: ~32 KB per dormant session covers the fixed structs
	// with headroom while staying two orders of magnitude below the eager
	// per-vertex cost.
	const budget = sessions * 32 << 10
	if used := after.HeapAlloc - before.HeapAlloc; used > budget {
		t.Fatalf("%d dormant sessions hold %d bytes, budget %d: construction is no longer O(1) in vertex count",
			sessions, used, budget)
	}

	// The sessions must still be fully functional after dormancy.
	if _, err := keep[0].Initialize(); err != nil {
		t.Fatalf("initialize after dormancy: %v", err)
	}
	st, _ := keep[0].ReadBack()
	if len(st) != g.NumVertices() {
		t.Fatalf("state has %d vertices, want %d", len(st), g.NumVertices())
	}
	runtime.KeepAlive(keep)
}
