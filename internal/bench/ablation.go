package bench

import (
	"fmt"
	"strings"

	"jetstream/internal/core"
	"jetstream/internal/graph"
)

// AblationRow is one design-choice measurement: the relative per-batch cost
// of removing a mechanism from the full design.
type AblationRow struct {
	Mechanism string
	Algo      string
	// CyclesX and EventsX are the ablated configuration's per-batch cycles
	// and processed events relative to the full design (>1 = the mechanism
	// helps).
	CyclesX, EventsX float64
}

// AblationResult collects the design-choice sweep.
type AblationResult struct{ Rows []AblationRow }

// Ablations quantifies the design choices DESIGN.md calls out, on the LJ
// workload with the scaled 100K batch:
//
//   - event coalescing (the queue's central mechanism, §4.2): disabled
//     everywhere — measurable only for the epsilon-bounded accumulative
//     class, where it also costs accuracy (un-merged deltas truncate under
//     the generation threshold within a few hops);
//   - fused net-event rollback for accumulative deletion (the coalescing
//     idea applied at the Stream Reader): replaced by the paper-literal
//     two-phase negate-then-reinsert flow of Algorithm 6;
//   - the DAP recovery optimization: replaced by the base tagging scheme
//     (also visible in Fig 12, repeated here for one workload).
func (r *Runner) Ablations() (*AblationResult, error) {
	out := &AblationResult{}
	measure := func(algName string, cfg core.Config, bs []graph.Batch) (cycles, events float64, err error) {
		g, err := r.workloadGraph(algName)
		if err != nil {
			return 0, 0, err
		}
		a, err := r.algorithm(algName)
		if err != nil {
			return 0, 0, err
		}
		jr, err := r.runJetStreamCfg(g, a, cfg, bs)
		if err != nil {
			return 0, 0, err
		}
		return jr.cycles, float64(jr.eventsTotal), nil
	}

	// Selective: SSSP. (No-coalescing is not measurable here: without the
	// queue's merge, a monotonic event-driven computation degenerates to
	// enumerating every path in the graph — the unbounded cost is the very
	// reason the coalescing queue exists, §4.2.)
	{
		g, err := r.workloadGraph("sssp")
		if err != nil {
			return nil, err
		}
		bs, err := r.batches(g, r.nBatches(), r.batchSize(g, 100_000), 0.7, false, 0)
		if err != nil {
			return nil, err
		}
		fullC, fullE, err := measure("sssp", core.ConfigWithOpt(core.OptDAP), bs)
		if err != nil {
			return nil, err
		}

		c, e, err := measure("sssp", core.ConfigWithOpt(core.OptBase), bs)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{"base tagging (no DAP)", "sssp", c / fullC, e / fullE})
	}

	// Accumulative: PageRank.
	{
		g, err := r.workloadGraph("pagerank")
		if err != nil {
			return nil, err
		}
		bs, err := r.batches(g, r.nBatches(), r.batchSize(g, 100_000), 0.7, false, 0)
		if err != nil {
			return nil, err
		}
		fullC, fullE, err := measure("pagerank", core.ConfigWithOpt(core.OptDAP), bs)
		if err != nil {
			return nil, err
		}

		noCo := core.ConfigWithOpt(core.OptDAP)
		noCo.NoCoalesce = true
		c, e, err := measure("pagerank", noCo, bs)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{"no event coalescing", "pagerank", c / fullC, e / fullE})

		two := core.ConfigWithOpt(core.OptDAP)
		two.TwoPhaseAccumulate = true
		c, e, err = measure("pagerank", two, bs)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AblationRow{"literal two-phase rollback", "pagerank", c / fullC, e / fullE})
	}
	return out, nil
}

// workloadGraph returns the LJ variant for the algorithm.
func (r *Runner) workloadGraph(algName string) (*graph.CSR, error) {
	g, _, err := r.workload("LJ", algName)
	return g, err
}

func (a *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations on LJ (cost of removing a mechanism, relative to the full design)\n")
	fmt.Fprintf(&b, "%-28s %-10s %10s %10s\n", "Mechanism removed", "Algo", "Cycles", "Events")
	for _, row := range a.Rows {
		fmt.Fprintf(&b, "%-28s %-10s %9.2fx %9.2fx\n", row.Mechanism, row.Algo, row.CyclesX, row.EventsX)
	}
	return b.String()
}
