package bench

import (
	"strings"
	"testing"
)

// The harness tests run in Quick mode (small datasets) and assert the
// qualitative shapes the paper reports — who wins, which direction trends
// point — not absolute numbers.

func quickRunner() *Runner { return NewRunner(true) }

func TestTable1And2Render(t *testing.T) {
	r := quickRunner()
	t1 := r.Table1()
	for _, want := range []string{"JetStream", "processor", "DDR3"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	t2, err := r.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range DatasetNames {
		if !strings.Contains(t2, ds) {
			t.Errorf("Table2 missing %s", ds)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	r := quickRunner()
	res, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 6*len(DatasetNames) {
		t.Fatalf("got %d cells", len(res.Cells))
	}
	gpWins, swWins := 0, 0
	for _, c := range res.Cells {
		if c.JetMS <= 0 {
			t.Errorf("%s/%s: non-positive JetStream time", c.Algo, c.Dataset)
		}
		if c.GPSpeedup > 1 {
			gpWins++
		}
		if c.SWSpeedup > 1 {
			swWins++
		}
	}
	// JetStream must win the overwhelming majority of cells (the paper wins
	// all; at this ~100x-reduced scale a couple of BFS-on-web-crawl cells —
	// the paper's own weakest — can dip under 1x) and every per-algorithm
	// geomean.
	if gpWins*10 < len(res.Cells)*8 {
		t.Errorf("JetStream beat cold start in only %d of %d cells", gpWins, len(res.Cells))
	}
	if swWins*10 < len(res.Cells)*8 {
		t.Errorf("JetStream beat software in only %d of %d cells", swWins, len(res.Cells))
	}
	for _, algName := range append(append([]string{}, SelectiveAlgos...), AccumulativeAlgos...) {
		gp, sw := res.GeoMeans(algName)
		if gp <= 1 {
			t.Errorf("%s: geomean speedup over cold start %.2fx", algName, gp)
		}
		if sw <= 1 {
			t.Errorf("%s: geomean speedup over software %.2fx", algName, sw)
		}
	}
	// PageRank's software comparator (GraphBolt) should be the weakest
	// baseline, as in the paper (165x mean vs ~8-13x for KickStarter).
	_, gbPR := res.GeoMeans("pagerank")
	_, ksSSSP := res.GeoMeans("sssp")
	if gbPR < ksSSSP {
		t.Errorf("GraphBolt PR speedup %.1fx should exceed KickStarter SSSP %.1fx", gbPR, ksSSSP)
	}
	if !strings.Contains(res.String(), "GMean") {
		t.Error("Table3 rendering missing GMean")
	}
}

func TestFig9Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	r := quickRunner()
	res, err := r.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	below, vsum := 0, 0.0
	for _, c := range res.Cells {
		if c.VertexRatio <= 0 || c.EdgeRatio <= 0 {
			t.Errorf("%s/%s: non-positive ratios", c.Algo, c.Dataset)
		}
		if c.VertexRatio < 1 && c.EdgeRatio < 1 {
			below++
		}
		vsum += c.VertexRatio
	}
	// Fig 9's claim: JetStream touches a small fraction of the cold-start
	// accesses — require it in the large majority of cells and a low mean.
	if below*10 < len(res.Cells)*8 {
		t.Errorf("access ratios below 1 in only %d of %d cells", below, len(res.Cells))
	}
	if mean := vsum / float64(len(res.Cells)); mean > 0.6 {
		t.Errorf("mean vertex-access ratio %.2f, want well below cold start", mean)
	}
	_ = res.String()
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	r := quickRunner()
	res, err := r.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	var jsMore, ksMore int
	for _, c := range res.Cells {
		if c.JetResets <= c.KSResets {
			ksMore++
		} else {
			jsMore++
		}
	}
	// The paper's claim: JetStream's exact source tracking "often finds
	// smaller set of impacted vertices" — require it in the majority of
	// cells.
	if ksMore <= jsMore {
		t.Errorf("KickStarter reset more in only %d of %d cells", ksMore, ksMore+jsMore)
	}
	_ = res.String()
}

func TestFig11Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	r := quickRunner()
	res, err := r.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	var jetBetter int
	for _, c := range res.Cells {
		if c.JetUtil <= 0 || c.GPUtil <= 0 || c.JetUtil > 1 || c.GPUtil > 1 {
			t.Errorf("%s/%s: utilizations out of range (%.2f, %.2f)", c.Algo, c.Dataset, c.JetUtil, c.GPUtil)
		}
		if c.JetUtil > c.GPUtil {
			jetBetter++
		}
	}
	// Fig 11: JetStream's sparse accesses harvest *less* spatial locality
	// than GraphPulse's dense rounds in most workloads.
	if jetBetter > len(res.Cells)/3 {
		t.Errorf("JetStream beat GraphPulse utilization in %d of %d cells; expected a clear minority", jetBetter, len(res.Cells))
	}
	_ = res.String()
}

func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	r := quickRunner()
	res, err := r.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.DAP <= 0 || c.VAP <= 0 || c.Base <= 0 {
			t.Fatalf("%s/%s: non-positive speedups", c.Dataset, c.Algo)
		}
		// DAP must dominate the base policy everywhere (Fig 12's headline).
		if c.DAP < c.Base {
			t.Errorf("%s/%s: DAP %.1fx below Base %.1fx", c.Dataset, c.Algo, c.DAP, c.Base)
		}
	}
	// VAP helps SSSP/SSWP (distinct values) but not BFS/CC (uniform values):
	// check it beats Base for at least one weighted workload.
	vapWins := false
	for _, c := range res.Cells {
		if (c.Algo == "sssp" || c.Algo == "sswp") && c.VAP > c.Base {
			vapWins = true
		}
	}
	if !vapWins {
		t.Error("VAP never beat Base on the weighted workloads")
	}
	_ = res.String()
}

func TestFig13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	r := quickRunner()
	res, err := r.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("want sssp+pagerank series, got %d", len(res.Series))
	}
	for _, s := range res.Series {
		// JetStream's relative speedup must grow monotonically as batches
		// shrink (points are ordered largest batch first).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Jet < s.Points[i-1].Jet {
				t.Errorf("%s: JetStream speedup fell from %.2f to %.2f as batch shrank",
					s.Algo, s.Points[i-1].Jet, s.Points[i].Jet)
			}
		}
		// The software framework must stay behind JetStream at every batch
		// size. (The paper's stronger claim — the gap *widens* as batches
		// shrink — holds at the full workload scale, recorded in
		// EXPERIMENTS.md; quick-mode batches collapse to single digits where
		// both systems hit their floors.)
		for _, p := range s.Points {
			if p.KS_GB >= p.Jet {
				t.Errorf("%s: software ahead of JetStream at batch %d", s.Algo, p.PaperBatch)
			}
		}
	}
	_ = res.String()
}

func TestFig14Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	r := quickRunner()
	res, err := r.Fig14()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		var ins, del float64
		for _, p := range s.Points {
			if p.InsertPct == 100 {
				ins = p.Jet
			}
			if p.InsertPct == 0 {
				del = p.Jet
			}
		}
		// Fig 14: deletion-only batches are several times slower than
		// insertion-only for selective algorithms.
		if del <= ins {
			t.Errorf("%s: delete-only (%.2f) not slower than insert-only (%.2f)", s.Algo, del, ins)
		}
	}
	_ = res.String()
}

func TestTable4Renders(t *testing.T) {
	out := quickRunner().Table4()
	for _, want := range []string{"Queue", "Network", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q", want)
		}
	}
}

func TestAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid")
	}
	r := quickRunner()
	res, err := r.Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d ablation rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Removing any mechanism must not make the system cheaper.
		if row.CyclesX < 0.95 {
			t.Errorf("%s/%s: ablated config is cheaper (%.2fx)", row.Mechanism, row.Algo, row.CyclesX)
		}
	}
	// The fused net-event rollback is the dominant accumulative win: the
	// literal two-phase flow must cost clearly more events.
	for _, row := range res.Rows {
		if row.Mechanism == "literal two-phase rollback" && row.EventsX < 1.5 {
			t.Errorf("two-phase rollback only %.2fx more events", row.EventsX)
		}
	}
	_ = res.String()
}
