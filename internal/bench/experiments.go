package bench

import (
	"fmt"
	"strings"

	"jetstream/internal/algo"
	"jetstream/internal/core"
	"jetstream/internal/engine"
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/power"
	"jetstream/internal/stats"
	"jetstream/internal/sw"
)

// Datasets in paper order (Table 2 / Table 3 columns).
var DatasetNames = []string{"WK", "FB", "LJ", "UK", "TW"}

// SelectiveAlgos and AccumulativeAlgos in Table 3 row order.
var (
	SelectiveAlgos    = []string{"sswp", "sssp", "bfs", "cc"}
	AccumulativeAlgos = []string{"pagerank", "adsorption"}
)

// ---------------------------------------------------------------------------
// Table 1 — experimental configurations
// ---------------------------------------------------------------------------

// Table1 renders the hardware/software configuration pair.
func (r *Runner) Table1() string {
	acc := engine.DefaultConfig()
	cpu := sw.DefaultCPUConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: experimental configurations\n")
	fmt.Fprintf(&b, "%-22s %-28s %-28s\n", "", "Software framework", "JetStream")
	fmt.Fprintf(&b, "%-22s %-28s %-28s\n", "Compute unit",
		fmt.Sprintf("%dx core @3GHz (modeled)", cpu.Cores),
		fmt.Sprintf("%dx processor @%.0fGHz", acc.Processors, acc.ClockHz/1e9))
	fmt.Fprintf(&b, "%-22s %-28s %-28s\n", "On-chip memory", "24MB L2 (modeled)",
		fmt.Sprintf("%dMB queue eDRAM", acc.QueueBytes>>20))
	fmt.Fprintf(&b, "%-22s %-28s %-28s\n", "Off-chip bandwidth", "4x DDR4 19GB/s (modeled)",
		fmt.Sprintf("%dx DDR3 17GB/s", acc.DRAM.Channels))
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 2 — input graphs
// ---------------------------------------------------------------------------

// Table2 renders the scaled workload inventory with measured structure.
func (r *Runner) Table2() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: input graphs (synthetic stand-ins; %s)\n", ScaleNote)
	fmt.Fprintf(&b, "%-6s %10s %10s %8s %8s  %s\n", "Graph", "Nodes", "Edges", "Depth", "MaxDeg", "Topology class")
	desc := map[string]string{
		"WK": "web-crawl-like: narrow, long paths",
		"FB": "social: highly connected, power law",
		"LJ": "social: highly connected, power law",
		"UK": "web-crawl-like: narrow, long paths (larger)",
		"TW": "social: largest, heavy tail",
	}
	for _, name := range DatasetNames {
		g, err := r.dataset(name)
		if err != nil {
			return "", err
		}
		st := graph.ComputeStats(g)
		fmt.Fprintf(&b, "%-6s %10d %10d %8d %8d  %s\n",
			name, g.NumVertices(), g.NumEdges(), st.EstimatedDepth, st.MaxOutDegree, desc[name])
	}
	return b.String(), nil
}

// ---------------------------------------------------------------------------
// Table 3 — execution time per query + speedups
// ---------------------------------------------------------------------------

// Table3Cell is one (algorithm, dataset) measurement.
type Table3Cell struct {
	Algo, Dataset string
	JetMS         float64 // JetStream ms per batch
	GPSpeedup     float64 // cold-start GraphPulse time / JetStream time
	SWSpeedup     float64 // KickStarter or GraphBolt time / JetStream time
	SWName        string  // "KS" or "GB"
}

// Table3Result holds the full grid plus geometric means per algorithm.
type Table3Result struct {
	Cells []Table3Cell
}

// Table3 reproduces the headline comparison: per-batch execution time for
// batches of the scaled 100K-update size (70% insert / 30% delete), with
// speedups over cold-start GraphPulse and the software frameworks.
func (r *Runner) Table3() (*Table3Result, error) {
	out := &Table3Result{}
	for _, algName := range append(append([]string{}, SelectiveAlgos...), AccumulativeAlgos...) {
		for _, ds := range DatasetNames {
			a, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			g, sym, err := r.workload(ds, algName)
			if err != nil {
				return nil, err
			}
			bs, err := r.batches(g, r.nBatches(), r.batchSize(g, 100_000), 0.7, sym, r.insertLocality(ds))
			if err != nil {
				return nil, err
			}
			jet, err := r.runJetStream(g, a, core.OptDAP, bs)
			if err != nil {
				return nil, err
			}
			a2, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			gp, err := r.runGraphPulseCold(g, a2, bs)
			if err != nil {
				return nil, err
			}
			a3, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			swMS, _, err := r.runSoftware(g, a3, bs)
			if err != nil {
				return nil, err
			}
			swName := "KS"
			if algName == "pagerank" || algName == "adsorption" {
				swName = "GB"
			}
			out.Cells = append(out.Cells, Table3Cell{
				Algo: algName, Dataset: ds,
				JetMS:     jet.msPerBatch,
				GPSpeedup: gp.msPerBatch / jet.msPerBatch,
				SWSpeedup: swMS / jet.msPerBatch,
				SWName:    swName,
			})
		}
	}
	return out, nil
}

// GeoMeans returns per-algorithm geometric-mean speedups (GP, SW).
func (t *Table3Result) GeoMeans(algName string) (gp, sw float64) {
	var gps, sws []float64
	for _, c := range t.Cells {
		if c.Algo == algName {
			gps = append(gps, c.GPSpeedup)
			sws = append(sws, c.SWSpeedup)
		}
	}
	return stats.GeoMean(gps), stats.GeoMean(sws)
}

func (t *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: per-batch execution time (ms) and speedups (scaled batches, 70:30 ins:del)\n")
	fmt.Fprintf(&b, "%-11s %-5s", "Algo", "row")
	for _, ds := range DatasetNames {
		fmt.Fprintf(&b, " %9s", ds)
	}
	fmt.Fprintf(&b, " %9s\n", "GMean")
	byAlgo := map[string][]Table3Cell{}
	var order []string
	for _, c := range t.Cells {
		if _, ok := byAlgo[c.Algo]; !ok {
			order = append(order, c.Algo)
		}
		byAlgo[c.Algo] = append(byAlgo[c.Algo], c)
	}
	for _, algName := range order {
		cells := byAlgo[algName]
		fmt.Fprintf(&b, "%-11s %-5s", algName, "Jet")
		for _, c := range cells {
			fmt.Fprintf(&b, " %9.2f", c.JetMS)
		}
		fmt.Fprintf(&b, "\n%-11s %-5s", "", "GP")
		for _, c := range cells {
			fmt.Fprintf(&b, " %9s", fmtSpeedup(c.GPSpeedup))
		}
		gp, swm := t.GeoMeans(algName)
		fmt.Fprintf(&b, " %9s", fmtSpeedup(gp))
		fmt.Fprintf(&b, "\n%-11s %-5s", "", cells[0].SWName)
		for _, c := range cells {
			fmt.Fprintf(&b, " %9s", fmtSpeedup(c.SWSpeedup))
		}
		fmt.Fprintf(&b, " %9s\n", fmtSpeedup(swm))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 9 — vertex and edge accesses normalized to GraphPulse
// ---------------------------------------------------------------------------

// Fig9Cell is one normalized access measurement.
type Fig9Cell struct {
	Algo, Dataset          string
	VertexRatio, EdgeRatio float64
}

// Fig9Result is the access-ratio grid.
type Fig9Result struct{ Cells []Fig9Cell }

// Fig9 measures JetStream's per-batch vertex/edge accesses relative to a
// cold-start GraphPulse recomputation of the same batch.
func (r *Runner) Fig9() (*Fig9Result, error) {
	out := &Fig9Result{}
	for _, algName := range []string{"sswp", "sssp", "bfs", "cc", "pagerank"} {
		for _, ds := range []string{"FB", "WK", "LJ", "UK"} {
			a, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			g, sym, err := r.workload(ds, algName)
			if err != nil {
				return nil, err
			}
			bs, err := r.batches(g, r.nBatches(), r.batchSize(g, 100_000), 0.7, sym, r.insertLocality(ds))
			if err != nil {
				return nil, err
			}
			jet, err := r.runJetStream(g, a, core.OptDAP, bs)
			if err != nil {
				return nil, err
			}
			a2, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			gp, err := r.runGraphPulseCold(g, a2, bs)
			if err != nil {
				return nil, err
			}
			n := uint64(len(bs))
			out.Cells = append(out.Cells, Fig9Cell{
				Algo: algName, Dataset: ds,
				VertexRatio: float64(jet.vertexAcc/n) / float64(gp.vertexAcc),
				EdgeRatio:   float64(jet.edgeAcc/n) / float64(gp.edgeAcc),
			})
		}
	}
	return out, nil
}

func (f *Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 9: JetStream vertex/edge accesses normalized to GraphPulse cold start\n")
	fmt.Fprintf(&b, "%-10s %-5s %8s %8s\n", "Algo", "Graph", "Vertex", "Edge")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-10s %-5s %8.3f %8.3f\n", c.Algo, c.Dataset, c.VertexRatio, c.EdgeRatio)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 10 — vertices reset by a delete-only batch
// ---------------------------------------------------------------------------

// Fig10Cell compares reset-set sizes.
type Fig10Cell struct {
	Algo, Dataset       string
	JetResets, KSResets uint64
}

// Fig10Result is the reset-count grid.
type Fig10Result struct{ Cells []Fig10Cell }

// Fig10 counts vertices reset by the scaled 30K-deletion batch in JetStream
// (DAP) and KickStarter.
func (r *Runner) Fig10() (*Fig10Result, error) {
	out := &Fig10Result{}
	for _, algName := range SelectiveAlgos {
		for _, ds := range DatasetNames {
			a, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			g, sym, err := r.workload(ds, algName)
			if err != nil {
				return nil, err
			}
			bs, err := r.batches(g, 1, r.batchSize(g, 30_000), 0, sym, r.insertLocality(ds)) // deletions only
			if err != nil {
				return nil, err
			}
			jet, err := r.runJetStream(g, a, core.OptDAP, bs)
			if err != nil {
				return nil, err
			}
			a2, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			_, ksResets, err := r.runSoftware(g, a2, bs)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, Fig10Cell{
				Algo: algName, Dataset: ds,
				JetResets: jet.resets, KSResets: uint64(ksResets),
			})
		}
	}
	return out, nil
}

func (f *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10: vertices reset by a delete-only batch (scaled 30K)\n")
	fmt.Fprintf(&b, "%-10s %-5s %10s %12s\n", "Algo", "Graph", "JetStream", "KickStarter")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-10s %-5s %10d %12d\n", c.Algo, c.Dataset, c.JetResets, c.KSResets)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 11 — off-chip transfer utilization
// ---------------------------------------------------------------------------

// Fig11Cell compares bytes-used/bytes-transferred ratios.
type Fig11Cell struct {
	Algo, Dataset   string
	JetUtil, GPUtil float64
}

// Fig11Result is the utilization grid.
type Fig11Result struct{ Cells []Fig11Cell }

// Fig11 measures the ratio of bytes consumed by the compute engines to bytes
// transferred from DRAM, for JetStream streaming batches vs GraphPulse cold
// starts.
func (r *Runner) Fig11() (*Fig11Result, error) {
	out := &Fig11Result{}
	for _, algName := range []string{"pagerank", "sswp", "sssp", "bfs", "cc"} {
		for _, ds := range DatasetNames {
			a, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			g, sym, err := r.workload(ds, algName)
			if err != nil {
				return nil, err
			}
			bs, err := r.batches(g, 1, r.batchSize(g, 100_000), 0.7, sym, r.insertLocality(ds))
			if err != nil {
				return nil, err
			}
			jet, err := r.runJetStream(g, a, core.OptDAP, bs)
			if err != nil {
				return nil, err
			}
			a2, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			gp, err := r.runGraphPulseCold(g, a2, bs)
			if err != nil {
				return nil, err
			}
			out.Cells = append(out.Cells, Fig11Cell{
				Algo: algName, Dataset: ds,
				JetUtil: jet.memUtil, GPUtil: gp.memUtil,
			})
		}
	}
	return out, nil
}

func (f *Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11: utilization of off-chip memory transfers (used/transferred)\n")
	fmt.Fprintf(&b, "%-10s %-5s %10s %10s\n", "Algo", "Graph", "JetStream", "GraphPulse")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-10s %-5s %10.3f %10.3f\n", c.Algo, c.Dataset, c.JetUtil, c.GPUtil)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 12 — effect of the VAP and DAP optimizations
// ---------------------------------------------------------------------------

// Fig12Cell is the speedup over cold-start GraphPulse at one opt level.
type Fig12Cell struct {
	Algo, Dataset  string
	Base, VAP, DAP float64
}

// Fig12Result is the optimization-sweep grid.
type Fig12Result struct{ Cells []Fig12Cell }

// Fig12 sweeps the optimization levels on LiveJournal and UK-2002.
func (r *Runner) Fig12() (*Fig12Result, error) {
	out := &Fig12Result{}
	for _, ds := range []string{"LJ", "UK"} {
		for _, algName := range SelectiveAlgos {
			g, sym, err := r.workload(ds, algName)
			if err != nil {
				return nil, err
			}
			bs, err := r.batches(g, r.nBatches(), r.batchSize(g, 100_000), 0.7, sym, r.insertLocality(ds))
			if err != nil {
				return nil, err
			}
			aGP, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			gp, err := r.runGraphPulseCold(g, aGP, bs)
			if err != nil {
				return nil, err
			}
			cell := Fig12Cell{Algo: algName, Dataset: ds}
			for _, lvl := range []struct {
				opt  core.OptLevel
				dest *float64
			}{
				{core.OptBase, &cell.Base},
				{core.OptVAP, &cell.VAP},
				{core.OptDAP, &cell.DAP},
			} {
				a, err := r.algorithm(algName)
				if err != nil {
					return nil, err
				}
				jet, err := r.runJetStream(g, a, lvl.opt, bs)
				if err != nil {
					return nil, err
				}
				*lvl.dest = gp.msPerBatch / jet.msPerBatch
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

func (f *Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12: speedup over GraphPulse for Base / +VAP / +DAP\n")
	fmt.Fprintf(&b, "%-5s %-10s %8s %8s %8s\n", "Graph", "Algo", "Base", "+VAP", "+DAP")
	for _, c := range f.Cells {
		fmt.Fprintf(&b, "%-5s %-10s %8.1f %8.1f %8.1f\n", c.Dataset, c.Algo, c.Base, c.VAP, c.DAP)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 13 — sensitivity to batch size
// ---------------------------------------------------------------------------

// Fig13Point is one batch-size measurement, as speedup relative to JetStream
// at the largest (baseline) batch size.
type Fig13Point struct {
	PaperBatch int // the paper-scale batch size this represents
	Jet, KS_GB float64
}

// Fig13Series is one algorithm's sweep.
type Fig13Series struct {
	Algo   string
	SWName string
	Points []Fig13Point
}

// Fig13Result has the SSSP and PageRank sweeps on LiveJournal.
type Fig13Result struct{ Series []Fig13Series }

// Fig13 sweeps batch sizes (paper scale 100..100K -> ours 1..1000) on LJ;
// each point is normalized to JetStream's per-batch time at the baseline
// batch size, mirroring the paper's y-axis.
func (r *Runner) Fig13() (*Fig13Result, error) {
	paperSizes := []int{100_000, 10_000, 1_000, 100}
	out := &Fig13Result{}
	for _, algName := range []string{"sssp", "pagerank"} {
		a, err := r.algorithm(algName)
		if err != nil {
			return nil, err
		}
		g, sym, err := r.workload("LJ", algName)
		if err != nil {
			return nil, err
		}
		ser := Fig13Series{Algo: algName, SWName: "KS"}
		if a.Class() == algo.Accumulative {
			ser.SWName = "GB"
		}
		var jetBaseline float64
		seen := map[int]bool{}
		for i, ps := range paperSizes {
			size := r.batchSize(g, ps)
			if seen[size] {
				continue // scaled sizes collapsed; skip duplicates
			}
			seen[size] = true
			bs, err := r.batches(g, 1, size, 0.7, sym, 0)
			if err != nil {
				return nil, err
			}
			aj, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			jet, err := r.runJetStream(g, aj, core.OptDAP, bs)
			if err != nil {
				return nil, err
			}
			asw, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			swMS, _, err := r.runSoftware(g, asw, bs)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				jetBaseline = jet.msPerBatch
			}
			ser.Points = append(ser.Points, Fig13Point{
				PaperBatch: ps,
				Jet:        jetBaseline / jet.msPerBatch,
				KS_GB:      jetBaseline / swMS,
			})
		}
		out.Series = append(out.Series, ser)
	}
	return out, nil
}

func (f *Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 13: batch-size sensitivity on LJ (speedup vs JetStream@100K-equivalent)\n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%s:\n%-12s %12s %12s\n", s.Algo, "Batch(paper)", "JetStream", s.SWName)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%-12d %12.2f %12.4f\n", p.PaperBatch, p.Jet, p.KS_GB)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 14 — sensitivity to batch composition
// ---------------------------------------------------------------------------

// Fig14Point is one insert:delete mix, normalized to the 50:50 JetStream run.
type Fig14Point struct {
	InsertPct int
	Jet, KS   float64 // normalized runtime
}

// Fig14Series is one algorithm's sweep.
type Fig14Series struct {
	Algo   string
	Points []Fig14Point
}

// Fig14Result has the SSSP and CC sweeps on LiveJournal.
type Fig14Result struct{ Series []Fig14Series }

// Fig14 sweeps the batch composition 100:0 / 50:50 / 0:100 on LJ.
func (r *Runner) Fig14() (*Fig14Result, error) {
	out := &Fig14Result{}
	for _, algName := range []string{"sssp", "cc"} {
		g, sym, err := r.workload("LJ", algName)
		if err != nil {
			return nil, err
		}
		size := r.batchSize(g, 100_000)
		ser := Fig14Series{Algo: algName}
		var jetBase, ksBase float64
		type meas struct{ jet, ks float64 }
		var ms []meas
		fracs := []float64{1.0, 0.5, 0.0}
		for _, frac := range fracs {
			bs, err := r.batches(g, 1, size, frac, sym, 0)
			if err != nil {
				return nil, err
			}
			aj, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			jet, err := r.runJetStream(g, aj, core.OptDAP, bs)
			if err != nil {
				return nil, err
			}
			asw, err := r.algorithm(algName)
			if err != nil {
				return nil, err
			}
			swMS, _, err := r.runSoftware(g, asw, bs)
			if err != nil {
				return nil, err
			}
			ms = append(ms, meas{jet.msPerBatch, swMS})
			if frac == 0.5 {
				jetBase, ksBase = jet.msPerBatch, swMS
			}
		}
		for i, frac := range fracs {
			ser.Points = append(ser.Points, Fig14Point{
				InsertPct: int(frac * 100),
				Jet:       ms[i].jet / jetBase,
				KS:        ms[i].ks / ksBase,
			})
		}
		out.Series = append(out.Series, ser)
	}
	return out, nil
}

func (f *Fig14Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 14: batch-composition sensitivity on LJ (runtime normalized to 50:50)\n")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%s:\n%-12s %10s %10s\n", s.Algo, "Ins:Del", "JetStream", "KickStarter")
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%3d:%-8d %10.2f %10.2f\n", p.InsertPct, 100-p.InsertPct, p.Jet, p.KS)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 4 — power and area
// ---------------------------------------------------------------------------

// Table4 renders the power/area estimate with deltas vs GraphPulse.
func (r *Runner) Table4() string {
	gpCfg := engine.DefaultConfig()
	gpCfg.EventMode = event.ModeGraphPulse
	jsCfg := core.DefaultConfig().Engine
	tech := power.Default22nm()
	return "Table 4: power and area of the accelerator components (vs GraphPulse)\n" +
		power.Table(power.Estimate(jsCfg, tech), power.Estimate(gpCfg, tech))
}
