// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) on the scaled synthetic workloads,
// running JetStream, cold-start GraphPulse, KickStarter and GraphBolt over
// identical batch sequences. cmd/experiments prints the reports; the root
// bench_test.go wraps the same entry points as Go benchmarks.
package bench

import (
	"fmt"

	"jetstream/internal/algo"
	"jetstream/internal/core"
	"jetstream/internal/engine"
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/stats"
	"jetstream/internal/stream"
	"jetstream/internal/sw"
)

// ScaleNote documents the workload scaling: the paper's datasets carry
// 45M-1.46B edges; the synthetic stand-ins are ~100x smaller, so paper batch
// sizes are scaled to the same *edge fraction* each graph sees. The paper's
// reference is 100K updates against LiveJournal's 69M edges (~0.14%).
const ScaleNote = "batch sizes scaled to the paper's update-to-edge fraction (100K : 69M)"

// paperRefEdges is the edge count the paper's batch sizes are quoted against.
const paperRefEdges = 69_000_000

// workloadScale scales the software frameworks' serial costs out of the
// comparison. At paper scale, barriers and per-batch overheads are ~1% of
// KickStarter's parallel work (0.3ms of barriers against ~35ms batches), so
// the mini-scale harness — whose parallel work shrank ~100-1000x with the batch
// sizes while barrier costs would not — removes them at the same proportion
// to keep the hardware/software ratio comparable (see CPUConfig.ScaleSerial).
const workloadScale = 100

// Runner executes experiments with a fixed seed. Quick mode shrinks the
// datasets and batch counts so the whole suite runs in seconds (used by `go
// test -bench` and -short runs).
type Runner struct {
	Seed  int64
	Quick bool
	// Eps is the accumulative convergence threshold. It is chosen so the
	// ratio of a batch's injected delta mass to the threshold matches the
	// paper's scale: the stand-in graphs hold ~100x less total rank mass, so
	// a proportionally larger absolute threshold reproduces the regime in
	// which incremental ripples die out instead of saturating the graph.
	Eps float64

	graphs map[string]*graph.CSR
}

// NewRunner returns a Runner; quick selects the reduced configuration.
func NewRunner(quick bool) *Runner {
	return &Runner{Seed: 42, Quick: quick, Eps: 1e-4, graphs: map[string]*graph.CSR{}}
}

// quickDatasets mirrors Table 2's topology classes at one-tenth the default
// harness scale.
func (r *Runner) dataset(name string) (*graph.CSR, error) {
	key := name
	if g, ok := r.graphs[key]; ok {
		return g, nil
	}
	var g *graph.CSR
	if r.Quick {
		switch name {
		case "WK":
			g = graph.WebCrawl(graph.WebCrawlConfig{Vertices: 4000, AvgDegree: 9, Locality: 16, LongRange: 0.1, Seed: r.Seed})
		case "FB":
			g = graph.RMAT(graph.RMATConfig{Vertices: 1800, Edges: 24000, Seed: r.Seed})
		case "LJ":
			g = graph.RMAT(graph.RMATConfig{Vertices: 3000, Edges: 40000, Seed: r.Seed})
		case "UK":
			g = graph.WebCrawl(graph.WebCrawlConfig{Vertices: 8000, AvgDegree: 11, Locality: 20, LongRange: 0.08, Seed: r.Seed})
		case "TW":
			g = graph.RMAT(graph.RMATConfig{Vertices: 8000, Edges: 110000, A: 0.6, B: 0.18, C: 0.18, Seed: r.Seed})
		default:
			return nil, fmt.Errorf("bench: unknown dataset %q", name)
		}
	} else {
		d, err := graph.DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g = d.Build(r.Seed)
	}
	r.graphs[key] = g
	return g, nil
}

// symmetric returns the symmetrized variant (cached separately).
func (r *Runner) symmetric(name string) (*graph.CSR, error) {
	key := name + "/sym"
	if g, ok := r.graphs[key]; ok {
		return g, nil
	}
	base, err := r.dataset(name)
	if err != nil {
		return nil, err
	}
	g := graph.Symmetrize(base)
	r.graphs[key] = g
	return g, nil
}

// workload returns the dataset prepared for the algorithm (symmetrized for
// CC) plus the matching stream symmetry flag.
func (r *Runner) workload(dataset, algName string) (*graph.CSR, bool, error) {
	if algName == "cc" {
		g, err := r.symmetric(dataset)
		return g, true, err
	}
	g, err := r.dataset(dataset)
	return g, false, err
}

// insertLocality returns the stream generator's insertion locality for the
// dataset: web-crawl-class graphs receive crawl-local inserts (matching how
// those graphs grow); social graphs receive uniform inserts.
func (r *Runner) insertLocality(dataset string) int {
	if dataset == "WK" || dataset == "UK" {
		return 48
	}
	return 0
}

func (r *Runner) algorithm(name string) (algo.Algorithm, error) {
	return algo.New(name, 0, r.Eps)
}

// batchSize returns the scaled equivalent of a paper batch size against g:
// the same fraction of the graph's edges that the paper's batch is of
// LiveJournal's.
func (r *Runner) batchSize(g *graph.CSR, paper int) int {
	s := int(float64(paper) * float64(g.NumEdges()) / paperRefEdges)
	if s < 4 {
		s = 4
	}
	return s
}

// batches pre-generates n consecutive valid batches (and the intermediate
// graph versions) so every system replays the identical update stream.
func (r *Runner) batches(g *graph.CSR, n, size int, insertFrac float64, symmetric bool, locality int) ([]graph.Batch, error) {
	gen := stream.NewGenerator(stream.Config{
		BatchSize: size, InsertFrac: insertFrac, Symmetric: symmetric,
		Locality: locality, Seed: r.Seed ^ 0x5f5f,
	})
	out := make([]graph.Batch, 0, n)
	cur := g
	for i := 0; i < n; i++ {
		b := gen.Next(cur)
		out = append(out, b)
		ng, err := cur.Apply(b)
		if err != nil {
			return nil, fmt.Errorf("bench: generated batch %d does not apply: %w", i, err)
		}
		cur = ng
	}
	return out, nil
}

// jetResult is one streaming measurement.
type jetResult struct {
	msPerBatch  float64 // mean per-batch time in milliseconds
	cycles      float64 // mean per-batch cycles
	initMS      float64
	perBatch    []float64
	resets      uint64 // total vertices reset across batches
	vertexAcc   uint64 // vertex accesses across batches
	edgeAcc     uint64
	memUtil     float64
	eventsTotal uint64
}

// runJetStream replays the batch sequence through a JetStream instance.
func (r *Runner) runJetStream(g *graph.CSR, a algo.Algorithm, opt core.OptLevel, bs []graph.Batch) (jetResult, error) {
	return r.runJetStreamCfg(g, a, core.ConfigWithOpt(opt), bs)
}

// runJetStreamCfg replays the batch sequence under an explicit configuration
// (the ablation sweeps use it to switch mechanisms off).
func (r *Runner) runJetStreamCfg(g *graph.CSR, a algo.Algorithm, cfg core.Config, bs []graph.Batch) (jetResult, error) {
	st := &stats.Counters{}
	js := core.New(g, a, cfg, st)
	js.RunInitial()
	initCycles := js.Cycles()
	prevCycles := initCycles
	prev := *st

	var res jetResult
	res.initMS = cfg.Engine.CyclesToSeconds(initCycles) * 1e3
	for _, b := range bs {
		if err := js.ApplyBatch(b); err != nil {
			return jetResult{}, err
		}
		cyc := js.Cycles() - prevCycles
		prevCycles = js.Cycles()
		res.perBatch = append(res.perBatch, cfg.Engine.CyclesToSeconds(cyc)*1e3)
	}
	res.resets = st.VerticesReset - prev.VerticesReset
	res.vertexAcc = (st.VertexReads + st.VertexWrites) - (prev.VertexReads + prev.VertexWrites)
	res.edgeAcc = st.EdgeReads - prev.EdgeReads
	res.eventsTotal = st.EventsProcessed - prev.EventsProcessed
	batchBytesUsed := st.BytesUsed - prev.BytesUsed
	batchBytesMoved := st.BytesTransferred - prev.BytesTransferred
	if batchBytesMoved > 0 {
		res.memUtil = float64(batchBytesUsed) / float64(batchBytesMoved)
		if res.memUtil > 1 {
			res.memUtil = 1
		}
	}
	for _, ms := range res.perBatch {
		res.msPerBatch += ms
	}
	res.msPerBatch /= float64(len(res.perBatch))
	res.cycles = float64(js.Cycles()-initCycles) / float64(len(bs))
	return res, nil
}

// gpResult measures cold-start GraphPulse recomputation after each batch.
type gpResult struct {
	msPerBatch float64
	vertexAcc  uint64 // per full recomputation (mean)
	edgeAcc    uint64
	memUtil    float64
}

// runGraphPulseCold recomputes from scratch on each post-batch graph version
// with GraphPulse-configured hardware (the paper's cold-start comparator).
func (r *Runner) runGraphPulseCold(g *graph.CSR, a algo.Algorithm, bs []graph.Batch) (gpResult, error) {
	cfg := engine.DefaultConfig()
	cfg.EventMode = event.ModeGraphPulse
	cur := g
	var out gpResult
	var totalCycles uint64
	var used, moved uint64
	for _, b := range bs {
		next, err := cur.Apply(b)
		if err != nil {
			return gpResult{}, err
		}
		cur = next
		st := &stats.Counters{}
		e := engine.New(cur, a, cfg, st)
		e.RunToConvergence()
		totalCycles += e.Cycles()
		out.vertexAcc += st.VertexReads + st.VertexWrites
		out.edgeAcc += st.EdgeReads
		used += st.BytesUsed
		moved += st.BytesTransferred
	}
	n := uint64(len(bs))
	out.msPerBatch = cfg.CyclesToSeconds(totalCycles) * 1e3 / float64(n)
	out.vertexAcc /= n
	out.edgeAcc /= n
	if moved > 0 {
		out.memUtil = float64(used) / float64(moved)
		if out.memUtil > 1 {
			out.memUtil = 1
		}
	}
	return out, nil
}

// runSoftware replays the batches through KickStarter (selective) or
// GraphBolt (accumulative); returns mean ms per batch and total resets.
func (r *Runner) runSoftware(g *graph.CSR, a algo.Algorithm, bs []graph.Batch) (msPerBatch float64, resets int, err error) {
	cpu := sw.DefaultCPUConfig().ScaleSerial(workloadScale)
	var total float64
	if a.Class() == algo.Selective {
		k, err := sw.NewKickStarter(g, a, cpu)
		if err != nil {
			return 0, 0, err
		}
		k.RunInitial()
		for _, b := range bs {
			sec, err := k.ApplyBatch(b)
			if err != nil {
				return 0, 0, err
			}
			total += sec
			resets += k.LastResets
		}
	} else {
		gb, err := sw.NewGraphBolt(g, a, cpu)
		if err != nil {
			return 0, 0, err
		}
		gb.RunInitial()
		for _, b := range bs {
			sec, err := gb.ApplyBatch(b)
			if err != nil {
				return 0, 0, err
			}
			total += sec
		}
	}
	return total * 1e3 / float64(len(bs)), resets, nil
}

// nBatches is how many batches each measurement averages over. Reset-set
// sizes are heavy-tailed (one deletion high in a dependence tree invalidates
// a large subtree), so the full harness averages a few batches.
func (r *Runner) nBatches() int {
	if r.Quick {
		return 1
	}
	return 3
}

func fmtSpeedup(x float64) string {
	if x >= 100 {
		return fmt.Sprintf("%.0fx", x)
	}
	return fmt.Sprintf("%.1fx", x)
}
