package jetstream

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"jetstream/internal/fault"
)

// The crashpoint harness. Every test here follows the same discipline: a
// reference run records the bitwise state after every batch, a fault run
// drives the identical deterministic stream into a WAL through an injected
// disk failure, and recovery must either reproduce the reference state at the
// last durable batch exactly or fail with the documented typed error — never
// panic, never silently diverge.

var durKernels = []struct {
	name string
	alg  func() Algorithm
	sym  bool
}{
	{"sssp", func() Algorithm { return SSSP(0) }, false},
	{"sswp", func() Algorithm { return SSWP(0) }, false},
	{"bfs", func() Algorithm { return BFS(0) }, false},
	{"cc", func() Algorithm { return CC() }, true},
	{"pagerank", func() Algorithm { return PageRank(0) }, false},
	{"adsorption", func() Algorithm { return Adsorption(0) }, false},
}

// durGraph builds the shared test graph for a kernel.
func durGraph(sym bool) *Graph {
	g := RMAT(RMATConfig{Vertices: 96, Edges: 384, Seed: 31})
	if sym {
		g = Symmetrize(g)
	}
	return g
}

func durStream(sym bool) *StreamGenerator {
	return NewStream(StreamConfig{BatchSize: 16, InsertFrac: 0.65, Symmetric: sym, Seed: 77})
}

// durOpts: sequential functional engine, so every run of the same stream is
// bit-identical — the property the sweep's bitwise assertions stand on.
func durOpts(extra ...Option) []Option {
	return append([]Option{WithTiming(false), WithParallelism(1)}, extra...)
}

func bitwiseEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// runReference streams n batches without a WAL and returns the state after
// every prefix (states[k] = state after k batches) plus each graph version,
// which lets a continuation advance a fresh generator identically.
func runReference(t *testing.T, alg Algorithm, sym bool, n int) (states [][]float64, graphs []*Graph) {
	t.Helper()
	sys, err := New(durGraph(sym), alg, durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := durStream(sym)
	states = append(states, sys.State())
	graphs = append(graphs, sys.Graph())
	for i := 0; i < n; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatalf("reference batch %d: %v", i+1, err)
		}
		states = append(states, sys.State())
		graphs = append(graphs, sys.Graph())
	}
	return states, graphs
}

// measureLayout streams n batches through a fault-free WAL and returns the
// snapshot's byte size and the cumulative log size after each batch, which
// maps batch boundaries to exact cumulative disk offsets for the sweep.
func measureLayout(t *testing.T, alg Algorithm, sym bool, n int, refStates [][]float64) (snapBytes int64, recEnd []int64) {
	t.Helper()
	dir := t.TempDir()
	sys, err := New(durGraph(sym), alg, durOpts(WithWAL(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := durStream(sym)
	for i := 0; i < n; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatalf("layout batch %d: %v", i+1, err)
		}
		recEnd = append(recEnd, sys.WALSize())
		if !bitwiseEqual(sys.State(), refStates[i+1]) {
			t.Fatalf("batch %d: WAL run diverged from reference", i+1)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, SnapshotName))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size(), recEnd
}

// TestCrashpointSweepAllKernels kills the disk at swept cumulative byte
// offsets — inside the baseline snapshot, mid-record, one byte short of a
// record boundary, and exactly on it — across all six kernels, and asserts
// the recovery contract at every point: either the recovered state is
// bitwise-equal to the uninterrupted reference at the last durable batch, or
// (when the kill predates the snapshot) recovery fails with the documented
// missing-snapshot error and no batch was ever acknowledged.
func TestCrashpointSweepAllKernels(t *testing.T) {
	const n = 5
	for _, k := range durKernels {
		t.Run(k.name, func(t *testing.T) {
			refStates, _ := runReference(t, k.alg(), k.sym, n)
			snapBytes, recEnd := measureLayout(t, k.alg(), k.sym, n, refStates)

			var offsets []int64
			// Inside the snapshot write: nothing durable yet.
			offsets = append(offsets, 0, snapBytes/2, snapBytes-1)
			// Log region: for each record, mid-record, one byte short of its
			// end, and exactly its end.
			prev := int64(0)
			for _, end := range recEnd {
				offsets = append(offsets, snapBytes+(prev+end)/2, snapBytes+end-1, snapBytes+end)
				prev = end
			}

			for _, off := range offsets {
				dir := t.TempDir()
				d := fault.NewDisk(dir, fault.DiskConfig{KillAtByte: off, FlipBitAt: -1, FullAtByte: -1})
				sys, err := New(durGraph(k.sym), k.alg(), durOpts(WithWALOptions(dir, WALOptions{FS: d}))...)
				if err != nil {
					t.Fatalf("off=%d: New: %v", off, err)
				}
				sys.RunInitial()
				gen := durStream(k.sym)
				applied := 0
				for i := 0; i < n; i++ {
					if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
						break // the crash: the process would be dead here
					}
					applied++
				}

				// Recovery happens in a "new process": the real filesystem.
				rec, err := RecoverFromDir(dir)
				if off < snapBytes {
					if err == nil || !errors.Is(err, os.ErrNotExist) {
						t.Fatalf("off=%d (pre-snapshot): recover err = %v, want missing snapshot", off, err)
					}
					if applied != 0 {
						t.Fatalf("off=%d: %d batches acknowledged with no durable snapshot", off, applied)
					}
					continue
				}
				if err != nil {
					t.Fatalf("off=%d: recover: %v", off, err)
				}
				wantK := 0
				for _, end := range recEnd {
					if snapBytes+end <= off {
						wantK++
					}
				}
				if rec.Batches() != uint64(wantK) {
					t.Fatalf("off=%d: recovered %d batches, want %d", off, rec.Batches(), wantK)
				}
				if !bitwiseEqual(rec.State(), refStates[wantK]) {
					t.Fatalf("off=%d: recovered state diverges from reference at batch %d", off, wantK)
				}
				if err := rec.Close(); err != nil {
					t.Fatalf("off=%d: close: %v", off, err)
				}
			}
		})
	}
}

// TestRecoverAndContinueBitwise crashes mid-stream, recovers, and checks the
// recovered system continues the exact stream: states after the remaining
// batches are bitwise-equal to an uninterrupted run's.
func TestRecoverAndContinueBitwise(t *testing.T) {
	const n, crashAfter = 6, 3
	refStates, refGraphs := runReference(t, SSSP(0), false, n)

	dir := t.TempDir()
	sys, err := New(durGraph(false), SSSP(0), durOpts(WithWAL(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := durStream(false)
	for i := 0; i < crashAfter; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: the system is dropped without Close; per-batch fsync already
	// made every acknowledged batch durable.

	rec, err := RecoverFromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches() != crashAfter {
		t.Fatalf("recovered %d batches, want %d", rec.Batches(), crashAfter)
	}
	// Advance a fresh generator through the prefix (its draws depend on the
	// evolving graph, which the reference recorded), then continue.
	gen2 := durStream(false)
	for i := 0; i < crashAfter; i++ {
		gen2.Next(refGraphs[i])
	}
	for i := crashAfter; i < n; i++ {
		if _, err := rec.ApplyBatch(gen2.Next(rec.Graph())); err != nil {
			t.Fatalf("continue batch %d: %v", i+1, err)
		}
		if !bitwiseEqual(rec.State(), refStates[i+1]) {
			t.Fatalf("batch %d after recovery diverges from uninterrupted run", i+1)
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal kept pace: recovering again reproduces the final state.
	rec2, err := RecoverFromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Batches() != n || !bitwiseEqual(rec2.State(), refStates[n]) {
		t.Fatalf("second recovery: %d batches", rec2.Batches())
	}
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALBitFlipOutcomes injects silent bit rot at chosen cumulative offsets
// and checks each documented outcome: rot in the snapshot refuses with
// ErrCorruptCheckpoint, rot mid-log refuses with ErrCorruptWAL, and rot in
// the final record presents as a torn tail — truncated, with recovery
// succeeding one batch earlier.
func TestWALBitFlipOutcomes(t *testing.T) {
	const n = 4
	refStates, _ := runReference(t, SSSP(0), false, n)
	snapBytes, recEnd := measureLayout(t, SSSP(0), false, n, refStates)

	cases := []struct {
		name   string
		flipAt int64
		check  func(t *testing.T, rec *System, err error)
	}{
		{"snapshot", snapBytes / 2, func(t *testing.T, rec *System, err error) {
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
			}
		}},
		{"mid-log", snapBytes + recEnd[0]/2, func(t *testing.T, rec *System, err error) {
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("err = %v, want ErrCorruptWAL", err)
			}
		}},
		{"last-record", snapBytes + (recEnd[n-2]+recEnd[n-1])/2, func(t *testing.T, rec *System, err error) {
			if err != nil {
				t.Fatalf("torn-tail recovery failed: %v", err)
			}
			if rec.Batches() != n-1 || !bitwiseEqual(rec.State(), refStates[n-1]) {
				t.Fatalf("recovered %d batches, want %d (bitwise)", rec.Batches(), n-1)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := fault.NewDisk(dir, fault.DiskConfig{KillAtByte: -1, FlipBitAt: tc.flipAt, FullAtByte: -1})
			sys, err := New(durGraph(false), SSSP(0), durOpts(WithWALOptions(dir, WALOptions{FS: d}))...)
			if err != nil {
				t.Fatal(err)
			}
			sys.RunInitial()
			gen := durStream(false)
			for i := 0; i < n; i++ {
				if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
					t.Fatalf("batch %d: %v", i+1, err)
				}
			}
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}

			rec, err := RecoverFromDir(dir)
			tc.check(t, rec, err)
			if rec != nil {
				_ = rec.Close()
			}
		})
	}
}

// TestWALDiskFull models ENOSPC mid-stream: the batch that does not fit is
// rejected (typed, state untouched), the log latches broken so later batches
// cannot bury the torn tail, and recovery yields the durable prefix.
func TestWALDiskFull(t *testing.T) {
	const n = 4
	refStates, _ := runReference(t, SSSP(0), false, n)
	snapBytes, recEnd := measureLayout(t, SSSP(0), false, n, refStates)

	dir := t.TempDir()
	full := snapBytes + recEnd[0] + (recEnd[1]-recEnd[0])/2 // mid-record 2
	d := fault.NewDisk(dir, fault.DiskConfig{KillAtByte: -1, FlipBitAt: -1, FullAtByte: full})
	sys, err := New(durGraph(false), SSSP(0), durOpts(WithWALOptions(dir, WALOptions{FS: d}))...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := durStream(false)
	if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); !errors.Is(err, fault.ErrNoSpace) {
		t.Fatalf("batch 2 on full disk = %v, want ErrNoSpace", err)
	}
	// The rejected batch left the in-memory state exactly at batch 1.
	if !bitwiseEqual(sys.State(), refStates[1]) {
		t.Fatal("failed journal mutated engine state")
	}
	// Broken latch: the next batch must not append after the torn record.
	if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err == nil {
		t.Fatal("append after ENOSPC succeeded")
	}

	rec, err := RecoverFromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches() != 1 || !bitwiseEqual(rec.State(), refStates[1]) {
		t.Fatalf("recovered %d batches, want 1 (bitwise)", rec.Batches())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactTruncatesAndSurvivesCrash checks both halves of the compaction
// contract: a completed Compact bounds the log while preserving recovery, and
// a crash mid-compaction (during the snapshot rewrite) leaves the old
// snapshot + full log pair, which still recovers the complete stream.
func TestCompactTruncatesAndSurvivesCrash(t *testing.T) {
	const n = 5
	refStates, _ := runReference(t, SSSP(0), false, n)

	// Completed compaction.
	dir := t.TempDir()
	sys, err := New(durGraph(false), SSSP(0), durOpts(WithWAL(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := durStream(false)
	for i := 0; i < n; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.WALSize()
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	if sys.WALSize() != 0 || before == 0 {
		t.Fatalf("WAL size %d -> %d after compact", before, sys.WALSize())
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverFromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches() != n || !bitwiseEqual(rec.State(), refStates[n]) {
		t.Fatalf("post-compact recovery: %d batches", rec.Batches())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash during compaction's snapshot rewrite: measure the pre-compact
	// cumulative write volume with a clean disk, then kill just past it.
	measure := fault.NewDisk(t.TempDir(), fault.DiskConfig{KillAtByte: -1, FlipBitAt: -1, FullAtByte: -1})
	preCompact := streamThroughDisk(t, measure, n)
	for _, extra := range []int64{64, 4096} {
		d := fault.NewDisk(t.TempDir(), fault.DiskConfig{KillAtByte: preCompact + extra, FlipBitAt: -1, FullAtByte: -1})
		sys := streamSystemThroughDisk(t, d, n)
		if err := sys.Compact(); err == nil {
			t.Fatalf("extra=%d: compact on killed disk succeeded", extra)
		}
		rec, err := RecoverFromDir(d.Root())
		if err != nil {
			t.Fatalf("extra=%d: recover after torn compact: %v", extra, err)
		}
		if rec.Batches() != n || !bitwiseEqual(rec.State(), refStates[n]) {
			t.Fatalf("extra=%d: recovered %d batches, want %d (bitwise)", extra, rec.Batches(), n)
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// streamSystemThroughDisk streams n batches of the standard sssp stream into
// a WAL on the given disk and returns the live system.
func streamSystemThroughDisk(t *testing.T, d *fault.Disk, n int) *System {
	t.Helper()
	sys, err := New(durGraph(false), SSSP(0), durOpts(WithWALOptions(d.Root(), WALOptions{FS: d}))...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := durStream(false)
	for i := 0; i < n; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// streamThroughDisk is streamSystemThroughDisk returning the write volume.
func streamThroughDisk(t *testing.T, d *fault.Disk, n int) int64 {
	t.Helper()
	sys := streamSystemThroughDisk(t, d, n)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	return d.Written()
}

// TestNewRefusesResumableDir pins the footgun guards around WAL directories:
// New must not silently overwrite a resumable directory, and a directory
// whose snapshot vanished must not be treated as fresh.
func TestNewRefusesResumableDir(t *testing.T) {
	dir := t.TempDir()
	sys, err := New(durGraph(false), SSSP(0), durOpts(WithWAL(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := durStream(false)
	if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := New(durGraph(false), SSSP(0), durOpts(WithWAL(dir))...); err == nil {
		t.Fatal("New on a resumable WAL directory succeeded")
	}

	// Snapshot lost, records present: refuse rather than replay from nowhere.
	if err := os.Remove(filepath.Join(dir, SnapshotName)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(durGraph(false), SSSP(0), durOpts(WithWAL(dir))...); err == nil {
		t.Fatal("New on a snapshotless journal succeeded")
	}
	if _, err := RecoverFromDir(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("recover without snapshot = %v, want ErrNotExist", err)
	}
}

func TestRecoverFromDirRejectsMismatchedWALDir(t *testing.T) {
	if _, err := RecoverFromDir(t.TempDir(), WithWAL("/somewhere/else")); err == nil {
		t.Fatal("mismatched WithWAL accepted")
	}
}

// TestWALSyncPoliciesThroughSystem drives the interval and none policies
// through the public API and checks the explicit Sync path.
func TestWALSyncPoliciesThroughSystem(t *testing.T) {
	for _, policy := range []WALSyncPolicy{WALSyncEveryBatch, WALSyncInterval, WALSyncNone} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			sys, err := New(durGraph(false), SSSP(0),
				durOpts(WithWALOptions(dir, WALOptions{Sync: policy, Interval: 2}))...)
			if err != nil {
				t.Fatal(err)
			}
			sys.RunInitial()
			gen := durStream(false)
			for i := 0; i < 3; i++ {
				if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
					t.Fatal(err)
				}
			}
			if err := sys.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
			rec, err := RecoverFromDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rec.Batches() != 3 {
				t.Fatalf("recovered %d batches, want 3", rec.Batches())
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}

	if _, err := ParseWALSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseWALSyncPolicy accepted bogus")
	}
}

// TestCheckpointTruncatedVsCorrupt pins the typed split: missing tail bytes
// match both ErrCorruptCheckpoint and ErrTruncated; in-place damage matches
// only ErrCorruptCheckpoint.
func TestCheckpointTruncatedVsCorrupt(t *testing.T) {
	sys, _ := buildStreamed(t, 2, WithTiming(false))
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	cuts := []int{0, 5, len(ckptMagic) + 2, len(ckptMagic) + 12, len(blob) / 2, len(blob) - 8, len(blob) - 1}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			_, err := Restore(bytes.NewReader(blob[:cut]))
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("cut at %d: err = %v, want ErrTruncated", cut, err)
			}
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("cut at %d: ErrTruncated without ErrCorruptCheckpoint: %v", cut, err)
			}
		})
	}

	// Flips avoid the payload-length field (bytes 12..19): growing the
	// declared length is indistinguishable from a torn tail, so that one
	// field legitimately reports as truncation.
	flips := []int{0, len(ckptMagic), len(blob) / 2, len(blob) - 4}
	for _, at := range flips {
		t.Run(fmt.Sprintf("flip%d", at), func(t *testing.T) {
			dam := append([]byte(nil), blob...)
			dam[at] ^= 0x40
			_, err := Restore(bytes.NewReader(dam))
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("flip at %d: err = %v, want ErrCorruptCheckpoint", at, err)
			}
			if errors.Is(err, ErrTruncated) {
				t.Fatalf("flip at %d: in-place damage reported as truncation: %v", at, err)
			}
		})
	}
}
