module jetstream

go 1.22
