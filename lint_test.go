package jetstream

import (
	"testing"

	"jetstream/internal/lint"
)

// TestJetlint runs the full static-analysis suite over the module as part of
// the ordinary test run, so an invariant regression (a plain read of an
// atomic field, a time.Now in the engine, a severed error chain) fails
// go test ./... without anyone remembering to run the linter.
func TestJetlint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	mod, err := lint.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := lint.Run(mod, lint.All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
