package jetstream_test

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"jetstream"
)

// TestConcurrentApplyGuard is the race-detector regression test for the
// System single-writer contract: overlapping ApplyBatch calls from many
// goroutines must either serialize by luck or fail fast with
// ErrConcurrentApply — never corrupt state, never trip the race detector.
func TestConcurrentApplyGuard(t *testing.T) {
	g := jetstream.RMAT(jetstream.RMATConfig{Vertices: 256, Edges: 1024, Seed: 3})
	sys, err := jetstream.New(g, jetstream.SSSP(0),
		jetstream.WithTiming(false), jetstream.WithIngest(jetstream.Repair))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()

	// Pre-draw the batches sequentially (the generator itself is not safe for
	// concurrent use); under Repair a batch invalidated by an interleaved
	// winner is repaired, not rejected, so the only expected error is the
	// guard's.
	const goroutines = 8
	gen := jetstream.NewStream(jetstream.StreamConfig{BatchSize: 64, InsertFrac: 0.8, Seed: 17})
	batches := make([]jetstream.Batch, goroutines)
	for i := range batches {
		batches[i] = gen.Next(sys.Graph())
	}

	var applied, blocked atomic.Uint64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(b jetstream.Batch) {
			defer wg.Done()
			<-start
			switch _, err := sys.ApplyBatch(b); {
			case err == nil:
				applied.Add(1)
			case errors.Is(err, jetstream.ErrConcurrentApply):
				blocked.Add(1)
			default:
				t.Errorf("unexpected ApplyBatch error: %v", err)
			}
		}(batches[i])
	}
	close(start)
	wg.Wait()

	if applied.Load() == 0 {
		t.Fatal("no goroutine applied its batch")
	}
	if applied.Load()+blocked.Load() != goroutines {
		t.Fatalf("applied %d + blocked %d != %d goroutines", applied.Load(), blocked.Load(), goroutines)
	}
	if got := sys.Batches(); got != applied.Load() {
		t.Fatalf("Batches() = %d, want %d (the applied count)", got, applied.Load())
	}

	// The guard releases cleanly: the System keeps working single-threaded.
	if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
		t.Fatalf("ApplyBatch after concurrent episode: %v", err)
	}
}

// TestConcurrentCheckpointGuard checks the guard also covers Checkpoint
// overlapping ApplyBatch, and that a guarded rejection leaves both paths
// usable afterwards.
func TestConcurrentCheckpointGuard(t *testing.T) {
	g := jetstream.RMAT(jetstream.RMATConfig{Vertices: 128, Edges: 512, Seed: 5})
	sys, err := jetstream.New(g, jetstream.BFS(0),
		jetstream.WithTiming(false), jetstream.WithIngest(jetstream.Repair))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := jetstream.NewStream(jetstream.StreamConfig{BatchSize: 128, InsertFrac: 0.7, Seed: 23})

	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, 64)
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 16; i++ {
			if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil &&
				!errors.Is(err, jetstream.ErrConcurrentApply) {
				errs <- err
			}
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 16; i++ {
			var buf bytes.Buffer
			if err := sys.Checkpoint(&buf); err != nil &&
				!errors.Is(err, jetstream.ErrConcurrentApply) {
				errs <- err
			}
		}
	}()
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("unexpected error: %v", err)
	}

	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint after concurrent episode: %v", err)
	}
	if _, err := jetstream.Restore(&buf); err != nil {
		t.Fatalf("restore after concurrent episode: %v", err)
	}
}
