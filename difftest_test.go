package jetstream

// Differential test harness for the parallel execution engine: every
// algorithm is driven through the same randomized insert/delete batch stream
// at parallelism 1, 2, and 8, and each configuration's streaming state is
// checked against the sequential from-scratch reference solver
// (internal/algo/ref.go, reached through System.Verify). Monotonic kernels
// must match the reference exactly at every parallelism — they converge to
// the unique fixpoint under any event ordering. Accumulative kernels carry
// the epsilon-truncation bound (core.Tolerance): processing order decides
// which sub-epsilon deltas are suppressed.

import (
	"fmt"
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/core"
)

// difftestParallelisms are the worker counts the harness compares.
var difftestParallelisms = [...]int{1, 2, 8}

// difftestStream records a batch stream drawn against an evolving graph so
// the identical updates can be replayed into every parallel configuration.
func difftestStream(t *testing.T, a Algorithm, seed int64, batches, batchSize int) (*Graph, []Batch) {
	t.Helper()
	sym := algo.NeedsSymmetric(a)
	g := RMAT(RMATConfig{Vertices: 300, Edges: 2400, Seed: seed})
	if sym {
		g = Symmetrize(g)
	}
	gen := NewStream(StreamConfig{BatchSize: batchSize, InsertFrac: 0.6, MaxWeight: 8, Symmetric: sym, Seed: seed + 1})

	// Draw the stream against a throwaway system so each batch is valid for
	// the graph version it will meet during replay.
	sys, err := New(g, a, WithTiming(false), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	out := make([]Batch, batches)
	for i := range out {
		b := gen.Next(sys.Graph())
		if _, err := sys.ApplyBatch(b); err != nil {
			t.Fatalf("stream recording batch %d: %v", i, err)
		}
		out[i] = b
	}
	return g, out
}

func makeAlgByName(t *testing.T, name string) Algorithm {
	t.Helper()
	a, err := NewAlgorithm(AlgorithmSpec{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDifferentialParallelism is the harness proper: state equivalence vs the
// sequential reference for all six kernels at parallelism 1, 2, 8.
func TestDifferentialParallelism(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			a := makeAlgByName(t, name)
			g, stream := difftestStream(t, a, 77, 10, 24)
			exact := a.Class() == algo.Selective
			for _, p := range difftestParallelisms {
				t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
					sys, err := New(g, makeAlgByName(t, name), WithTiming(false), WithParallelism(p))
					if err != nil {
						t.Fatal(err)
					}
					sys.RunInitial()
					for i, b := range stream {
						if _, err := sys.ApplyBatch(b); err != nil {
							t.Fatalf("batch %d: %v", i, err)
						}
						d := sys.Verify()
						if exact {
							if d != 0 {
								t.Fatalf("batch %d: selective state deviates from reference by %v (want exact)", i, d)
							}
							continue
						}
						tol := core.Tolerance(sys.alg, sys.Graph().NumEdges(), i+2)
						if d > tol {
							t.Fatalf("batch %d: accumulative state deviates by %v > tolerance %v", i, d, tol)
						}
					}
				})
			}
		})
	}
}

// TestDifferentialParallelismAgainstSequentialState compares the parallel
// engines' final states directly against the parallelism-1 run of the very
// same stream — a tighter check than the reference solver, since the two
// incremental runs share every intermediate graph version.
func TestDifferentialParallelismAgainstSequentialState(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			a := makeAlgByName(t, name)
			g, stream := difftestStream(t, a, 31, 8, 20)

			run := func(p int) []float64 {
				sys, err := New(g, makeAlgByName(t, name), WithTiming(false), WithParallelism(p))
				if err != nil {
					t.Fatal(err)
				}
				sys.RunInitial()
				for i, b := range stream {
					if _, err := sys.ApplyBatch(b); err != nil {
						t.Fatalf("p=%d batch %d: %v", p, i, err)
					}
				}
				return sys.State()
			}

			seq := run(1)
			for _, p := range difftestParallelisms[1:] {
				par := run(p)
				d := algo.MaxAbsDiff(seq, par)
				if a.Class() == algo.Selective {
					if d != 0 {
						t.Errorf("p=%d: selective state differs from sequential by %v (want bitwise equal)", p, d)
					}
					continue
				}
				tol := core.Tolerance(a, g.NumEdges(), len(stream)+1)
				if d > tol {
					t.Errorf("p=%d: accumulative state differs from sequential by %v > %v", p, d, tol)
				}
			}
		})
	}
}
