package jetstream

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"unsafe"
)

// applyOptions runs opts over a fresh default options struct.
func applyOptions(opts []Option) *options {
	op := newOptions()
	for _, o := range opts {
		o(op)
	}
	return op
}

// fieldIface reads a (possibly unexported) struct field as an interface
// value, so the test can diff internal options fields without hand-listing
// them — the hand-list is exactly what exhaustiveness must not depend on.
func fieldIface(v reflect.Value) any {
	return reflect.NewAt(v.Type(), unsafe.Pointer(v.UnsafeAddr())).Elem().Interface()
}

// changedOptionFields reports which options-struct fields differ from the
// construction defaults after applying opts.
func changedOptionFields(opts []Option) map[string]bool {
	def := reflect.ValueOf(newOptions()).Elem()
	got := reflect.ValueOf(applyOptions(opts)).Elem()
	changed := map[string]bool{}
	for i := 0; i < def.NumField(); i++ {
		if !reflect.DeepEqual(fieldIface(def.Field(i)), fieldIface(got.Field(i))) {
			changed[def.Type().Field(i).Name] = true
		}
	}
	return changed
}

// configOptionCases pairs every exported wire-expressible option with a use
// that changes its options field away from the default. The exhaustiveness
// test below fails if the internal options struct grows a field no case
// (and therefore no Config mapping) covers.
var configOptionCases = []struct {
	name string
	opts []Option
}{
	{"defaults", nil},
	{"opt-base", []Option{WithOpt(OptBase)}},
	{"opt-vap", []Option{WithOpt(OptVAP)}},
	{"slices", []Option{WithSlices(4)}},
	{"timing-off", []Option{WithTiming(false)}},
	{"detailed-timing", []Option{WithDetailedTiming()}},
	{"pipeline-overlap", []Option{WithPipelineOverlap(true)}},
	{"parallelism", []Option{WithTiming(false), WithParallelism(4)}},
	{"ingest-repair", []Option{WithIngest(Repair)}},
	{"rebuild", []Option{WithGraphRebuild()}},
	{"inline-degree", []Option{WithInlineDegree(2)}},
	{"inline-degree-off", []Option{WithInlineDegree(-1)}},
	{"window", []Option{WithWindow(7)}},
	{"wal", []Option{WithWAL("walsubdir")}},
	{"wal-options", []Option{WithWALOptions("walsubdir", WALOptions{Sync: WALSyncInterval, Interval: 3})}},
	{"watchdog", []Option{WithWatchdog(WatchdogConfig{Every: 5, Epsilon: 1e-6, Sample: 100})}},
	{"kitchen-sink", []Option{
		WithOpt(OptVAP), WithSlices(2), WithTiming(false), WithIngest(Repair),
		WithGraphRebuild(), WithWindow(3),
		WithWALOptions("walsubdir", WALOptions{Sync: WALSyncNone, Interval: 9}),
		WithWatchdog(WatchdogConfig{Every: 2, Epsilon: 0.5, Sample: 10}),
	}},
}

// runtimeOnlyOptionFields are internal options fields deliberately absent
// from Config: live callbacks, hardware structs, fault-injection hooks, and
// the deferred-error slot itself. Adding a field here requires a doc-comment
// justification on Config; anything else must get a Config field and a case
// above or this test fails.
var runtimeOnlyOptionFields = map[string]bool{
	"accel":    true, // WithAccelerator: hardware model, not tenant policy
	"observer": true, // WithObserver: a live callback, not data
	"err":      true, // deferred construction failure, not configuration
}

// TestConfigRoundTrip checks, for every case, that lowering to options and
// re-raising to Config is lossless in both directions, that the canonical
// Config is a fixed point, and that JSON round-trips it bit for bit.
func TestConfigRoundTrip(t *testing.T) {
	for _, tc := range configOptionCases {
		t.Run(tc.name, func(t *testing.T) {
			base := applyOptions(tc.opts)
			cfg := ConfigFromOptions(tc.opts...)

			// Options-level equivalence: the Config's option list rebuilds the
			// exact internal options the original list built.
			again := applyOptions(cfg.Options())
			if !reflect.DeepEqual(base, again) {
				t.Fatalf("options differ after Config round trip:\n  direct: %+v\n  via Config %+v: %+v", base, cfg, again)
			}
			if again.err != nil {
				t.Fatalf("canonical Config produced an option error: %v", again.err)
			}

			// Canonical fixed point.
			if got := ConfigFromOptions(cfg.Options()...); got != cfg {
				t.Fatalf("ConfigFromOptions(cfg.Options()) = %+v, want %+v", got, cfg)
			}

			// JSON round trip.
			blob, err := json.Marshal(cfg)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var back Config
			if err := json.Unmarshal(blob, &back); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if back != cfg {
				t.Fatalf("JSON round trip: got %+v, want %+v (json %s)", back, cfg, blob)
			}

			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate(%+v) = %v, want nil", cfg, err)
			}
		})
	}
}

// TestConfigCoversEveryOption is the exhaustiveness gate: the union of
// options-struct fields exercised by configOptionCases must be every field
// except the documented runtime-only set. A new Option lands a new options
// field; without a Config mapping and a case here, this test names it.
func TestConfigCoversEveryOption(t *testing.T) {
	covered := map[string]bool{}
	for _, tc := range configOptionCases {
		for f := range changedOptionFields(tc.opts) {
			covered[f] = true
		}
	}
	typ := reflect.TypeOf(options{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if runtimeOnlyOptionFields[name] {
			if covered[name] {
				t.Errorf("options field %q is marked runtime-only but a config case changes it", name)
			}
			continue
		}
		if !covered[name] {
			t.Errorf("options field %q has no Config mapping exercised by configOptionCases; add a Config field and a case (or document it in runtimeOnlyOptionFields)", name)
		}
	}

	// The reverse direction: every Config field must be moved off its zero
	// value by at least one case, so a dead Config field cannot linger.
	zero := Config{}
	moved := map[string]bool{}
	for _, tc := range configOptionCases {
		cfg := ConfigFromOptions(tc.opts...)
		cv, zv := reflect.ValueOf(cfg), reflect.ValueOf(zero)
		for i := 0; i < cv.NumField(); i++ {
			if !reflect.DeepEqual(cv.Field(i).Interface(), zv.Field(i).Interface()) {
				moved[cv.Type().Field(i).Name] = true
			}
		}
	}
	ct := reflect.TypeOf(zero)
	for i := 0; i < ct.NumField(); i++ {
		if name := ct.Field(i).Name; !moved[name] {
			t.Errorf("Config field %q is never produced by any case; add one to configOptionCases", name)
		}
	}
}

// TestConfigDefaults pins the two default shapes: DefaultConfig is the
// library constructor default (timing on), and the zero Config is the
// serving default (timing off), both valid and canonical.
func TestConfigDefaults(t *testing.T) {
	def := DefaultConfig()
	want := Config{Opt: "dap", Timing: true, Ingest: "strict"}
	if def != want {
		t.Fatalf("DefaultConfig() = %+v, want %+v", def, want)
	}
	var zero Config
	if err := zero.Validate(); err != nil {
		t.Fatalf("zero Config must validate: %v", err)
	}
	canon := ConfigFromOptions(zero.Options()...)
	if canon.Timing {
		t.Fatalf("zero Config must leave timing off, got %+v", canon)
	}
}

// TestConfigInvalid checks that bad wire values are rejected — by Validate
// directly and by New via the deferred option error — always wrapping
// ErrConfigConflict.
func TestConfigInvalid(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"bad-opt", Config{Opt: "turbo"}},
		{"bad-ingest", Config{Ingest: "yolo"}},
		{"bad-wal-sync", Config{WALDir: "w", WALSync: "sometimes"}},
		{"wal-knobs-without-dir", Config{WALSync: "batch", WALSyncInterval: 4}},
		{"parallel-with-timing", Config{Timing: true, Parallelism: 4}},
		{"parallel-with-slices", Config{Parallelism: 4, Slices: 2}},
		{"negative-window", Config{WindowTTL: -1}},
		{"negative-slices", Config{Slices: -2}},
		{"negative-parallelism", Config{Parallelism: -3}},
		{"inline-degree-too-low", Config{InlineDegree: -2}},
		{"inline-degree-too-high", Config{InlineDegree: 5}},
	}
	g := RMAT(RMATConfig{Vertices: 16, Edges: 32, Seed: 1})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) = nil, want error", tc.cfg)
			}
			if !errors.Is(err, ErrConfigConflict) {
				t.Fatalf("Validate error %v does not wrap ErrConfigConflict", err)
			}
			if _, nerr := New(g, SSSP(0), tc.cfg.Options()...); nerr == nil {
				t.Fatalf("New with invalid config %+v succeeded", tc.cfg)
			}
		})
	}
}

// TestConfigConstructsSystem drives the declarative path end to end: a
// System declared purely from data must behave identically to one built from
// hand-written options.
func TestConfigConstructsSystem(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 64, Edges: 256, Seed: 7})
	cfg := Config{Ingest: "repair", WindowTTL: 4}
	declared, err := New(g, SSSP(0), cfg.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := New(g, SSSP(0), WithTiming(false), WithIngest(Repair), WithWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	declared.RunInitial()
	manual.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 32, InsertFrac: 0.7, Seed: 11})
	for i := 0; i < 5; i++ {
		b := gen.Next(declared.Graph())
		if _, err := declared.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
		if _, err := manual.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	ds, ms := declared.State(), manual.State()
	if !reflect.DeepEqual(ds, ms) {
		t.Fatalf("declared and manual systems diverged")
	}
}
