package jetstream

import (
	"errors"
	"math"
	"testing"
)

func TestStateReturnsIsolatedCopy(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 200, Edges: 1500, Seed: 41})
	sys, _ := New(g, SSSP(0), WithTiming(false))
	sys.RunInitial()

	st := sys.State()
	for i := range st {
		st[i] = -1 // scribble over the returned slice
	}
	if d := sys.Verify(); d != 0 {
		t.Errorf("mutating State()'s return corrupted the engine: diverged by %v", d)
	}
	// StateRef is the documented zero-copy path: it aliases engine memory.
	ref := sys.StateRef()
	again := sys.State()
	for i := range ref {
		if ref[i] != again[i] {
			t.Fatalf("StateRef and State disagree at vertex %d", i)
		}
	}
}

func TestIngestStrictVsRepair(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 200, Edges: 1500, Seed: 42})
	dirty := Batch{Inserts: []Edge{
		absentEdge(g),
		{Src: 0, Dst: 9999, Weight: 1},       // out of range
		{Src: 1, Dst: 2, Weight: math.NaN()}, // poisoned weight
	}}

	strict, _ := New(g, SSSP(0), WithTiming(false))
	strict.RunInitial()
	_, err := strict.ApplyBatch(dirty)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("strict rejection %v is not a *BatchError", err)
	}
	if len(be.Issues) != 2 {
		t.Errorf("got %d issues, want 2: %v", len(be.Issues), be.Issues)
	}
	if n := strict.Graph().NumEdges(); n != g.NumEdges() {
		t.Errorf("rejected batch changed the graph: %d edges, want %d", n, g.NumEdges())
	}

	repair, _ := New(g, SSSP(0), WithTiming(false), WithIngest(Repair))
	repair.RunInitial()
	res, err := repair.ApplyBatch(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repaired != 2 {
		t.Errorf("Repaired = %d, want 2", res.Repaired)
	}
	ts := repair.TotalStats()
	if ts.UpdatesDropped != 2 || ts.BatchesRepaired != 1 {
		t.Errorf("counters dropped=%d repaired=%d, want 2 and 1", ts.UpdatesDropped, ts.BatchesRepaired)
	}
	// The one valid insert landed.
	if n := repair.Graph().NumEdges(); n != g.NumEdges()+1 {
		t.Errorf("repaired batch applied %d edges, want %d", n, g.NumEdges()+1)
	}
	if d := repair.Verify(); d != 0 {
		t.Errorf("repaired system diverged by %v", d)
	}
}

func TestWatchdogThroughPublicAPI(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 200, Edges: 1500, Seed: 43})
	sys, err := New(g, SSSP(0), WithTiming(false), WithWatchdog(WatchdogConfig{Every: 2, Sample: 50}))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 30, InsertFrac: 0.6, Seed: 44})

	r1, err := sys.ApplyBatch(gen.Next(sys.Graph()))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checked {
		t.Error("watchdog ran on batch 1 at Every=2")
	}
	r2, err := sys.ApplyBatch(gen.Next(sys.Graph()))
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Checked {
		t.Fatal("watchdog skipped batch 2 at Every=2")
	}
	// A healthy incremental stream shows zero divergence and no fallback.
	if r2.Divergence != 0 || r2.FellBack {
		t.Errorf("healthy stream: divergence %v, fellBack %v", r2.Divergence, r2.FellBack)
	}
	if sys.TotalStats().ColdStartFallbacks != 0 {
		t.Errorf("healthy stream counted %d fallbacks", sys.TotalStats().ColdStartFallbacks)
	}
}
