package jetstream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"jetstream/internal/wal"
)

// Durability. With WithWAL configured a System pairs a baseline checkpoint
// (SnapshotName, written atomically on the first batch) with an append-only
// write-ahead delta log (wal.LogName): every applied batch's sanitized edge
// delta is journaled — and, per the sync policy, fsynced — before the engine
// mutates any state. A checkpoint is thereby incremental: its cost per batch
// is O(delta), never O(V+E); the O(V+E) snapshot is paid only at attach time
// and at explicit Compact calls. After a crash, RecoverFromDir restores the
// snapshot and replays the log tail, yielding exactly the durable prefix of
// the stream.
//
// Failure semantics: a torn log tail (the bytes a crash cut mid-append) is
// truncated and recovery succeeds at the last durable batch; damage in the
// middle of the log or in the snapshot refuses with an error wrapping
// ErrCorruptWAL or ErrCorruptCheckpoint respectively — recovery never panics
// and never silently diverges.

// SnapshotName is the baseline checkpoint's filename inside a WAL directory.
const SnapshotName = "snapshot.ckpt"

// WALOptions configures the write-ahead log attached by WithWALOptions: the
// sync policy, the interval for WALSyncInterval, and a filesystem override
// for fault injection.
type WALOptions = wal.Options

// WALSyncPolicy selects when the log fsyncs (see the policy constants).
type WALSyncPolicy = wal.SyncPolicy

// Sync policies for WALOptions.Sync.
const (
	// WALSyncEveryBatch fsyncs after every journaled batch: a crash loses
	// nothing ApplyBatch acknowledged (the default).
	WALSyncEveryBatch = wal.SyncEveryBatch
	// WALSyncInterval fsyncs every Interval batches: a crash loses at most
	// the unsynced interval.
	WALSyncInterval = wal.SyncInterval
	// WALSyncNone never fsyncs from ApplyBatch; durability rides on the OS
	// page cache until Sync or Close.
	WALSyncNone = wal.SyncNone
)

// ParseWALSyncPolicy resolves the command-line spellings "batch",
// "interval", and "none".
var ParseWALSyncPolicy = wal.ParseSyncPolicy

// ErrCorruptWAL is wrapped by recovery errors caused by damage in the middle
// of the write-ahead log — committed history that cannot be reconstructed.
// A torn tail is not corruption: recovery truncates it and succeeds at the
// last durable batch.
var ErrCorruptWAL = wal.ErrCorrupt

// withWALOff clears any WAL request so Restore's internal New does not try
// to open the log RecoverFromDir manages itself.
func withWALOff() Option {
	return func(op *options) { op.walDir = ""; op.walOpts = wal.Options{} }
}

// walFS resolves the effective filesystem for the System's WAL directory.
func (s *System) walFS() wal.FS {
	if s.walOpts.FS != nil {
		return s.walOpts.FS
	}
	return wal.OSFS{}
}

// writeSnapshot atomically replaces the WAL directory's baseline checkpoint
// with the System's current state.
func (s *System) writeSnapshot() error {
	return wal.WriteFileAtomic(s.walFS(), filepath.Join(s.walDir, SnapshotName), func(w io.Writer) error {
		return s.checkpointLocked(w)
	})
}

// journal durably records one sanitized batch before it is applied, writing
// the baseline snapshot first if this is the log's first record.
func (s *System) journal(clean Batch) error {
	if !s.snapDone {
		if err := s.writeSnapshot(); err != nil {
			return fmt.Errorf("jetstream: wal: baseline snapshot: %w", err)
		}
		s.snapDone = true
	}
	if err := s.wal.Append(s.batches+1, clean); err != nil {
		return fmt.Errorf("jetstream: wal: %w", err)
	}
	return nil
}

// Sync flushes the write-ahead log to stable storage — the explicit
// durability point under WALSyncInterval and WALSyncNone. Without a WAL it
// is a no-op.
func (s *System) Sync() error {
	if s.wal == nil {
		return nil
	}
	if err := s.acquire("Sync"); err != nil {
		return err
	}
	defer s.release()
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("jetstream: %w", err)
	}
	return nil
}

// Compact rewrites the baseline snapshot at the current stream position and
// truncates the log prefix it covers, bounding recovery time and log growth.
// The snapshot lands durably (atomic temp-file, fsync, rename) before the
// log is touched, so a crash at any point leaves a recoverable pair. Compact
// requires WithWAL.
func (s *System) Compact() error {
	if s.wal == nil {
		return fmt.Errorf("jetstream: compact: no write-ahead log configured (use WithWAL)")
	}
	if !s.init {
		return fmt.Errorf("jetstream: compact: call RunInitial first")
	}
	if err := s.acquire("Compact"); err != nil {
		return err
	}
	defer s.release()
	if err := s.writeSnapshot(); err != nil {
		return fmt.Errorf("jetstream: compact: %w", err)
	}
	s.snapDone = true
	if err := s.wal.CompactTo(s.batches); err != nil {
		return fmt.Errorf("jetstream: %w", err)
	}
	return nil
}

// Close flushes and releases the write-ahead log. The System itself remains
// usable, but batches applied after Close are no longer journaled — recovery
// from the directory then replays only up to the close point. Close is
// idempotent; without a WAL it is a no-op.
func (s *System) Close() error {
	if s.wal == nil {
		return nil
	}
	if err := s.acquire("Close"); err != nil {
		return err
	}
	defer s.release()
	err := s.wal.Close()
	s.wal = nil
	if err != nil {
		return fmt.Errorf("jetstream: %w", err)
	}
	return nil
}

// WALSize returns the write-ahead log's current byte length, or 0 without a
// WAL — the signal driving periodic Compact calls.
func (s *System) WALSize() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.Size()
}

// RecoverFromDir rebuilds a System from a WAL directory after a crash or
// clean shutdown: the baseline snapshot is restored, every intact journaled
// batch past the snapshot's position is replayed, and the log is reattached
// for further journaling. A torn record at the end of the log — the shape a
// crash mid-append leaves — is truncated away and recovery succeeds at the
// last durable batch; an unreadable record with intact history after it
// fails with an error wrapping ErrCorruptWAL, and snapshot damage with one
// wrapping ErrCorruptCheckpoint. Options are applied on top of the recorded
// configuration, exactly as in Restore; WAL sync options for the resumed log
// may be passed via WithWALOptions(dir, ...).
func RecoverFromDir(dir string, opts ...Option) (*System, error) {
	scratch := &options{}
	for _, o := range opts {
		o(scratch)
	}
	if scratch.walDir != "" && scratch.walDir != dir {
		return nil, fmt.Errorf("jetstream: recover %s: WithWAL(%s) disagrees with the recovery directory", dir, scratch.walDir)
	}
	walOpts := scratch.walOpts
	fs := walOpts.FS
	if fs == nil {
		fs = wal.OSFS{}
	}

	snap, err := fs.ReadFile(filepath.Join(dir, SnapshotName))
	if err != nil {
		return nil, fmt.Errorf("jetstream: recover %s: read snapshot: %w", dir, err)
	}
	all := append(append([]Option(nil), opts...), withWALOff())
	sys, err := Restore(bytes.NewReader(snap), all...)
	if err != nil {
		return nil, fmt.Errorf("jetstream: recover %s: %w", dir, err)
	}

	logData, err := fs.ReadFile(filepath.Join(dir, wal.LogName))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("jetstream: recover %s: read log: %w", dir, err)
	}
	st, err := wal.Replay(logData, sys.batches, func(r wal.Record) error {
		if _, aerr := sys.applyBatch(r.Batch, false); aerr != nil {
			return fmt.Errorf("replay batch %d: %w", r.Seq, aerr)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("jetstream: recover %s: %w", dir, err)
	}

	l, err := wal.Open(dir, walOpts)
	if err != nil {
		return nil, fmt.Errorf("jetstream: recover %s: %w", dir, err)
	}
	l.SetFloor(sys.batches)
	sys.wal, sys.walDir, sys.walOpts, sys.snapDone = l, dir, walOpts, true
	l.Instrument(sys.reg)
	if st.Replayed > 0 {
		sys.reg.Counter("jetstream_wal_replayed_total").Add(uint64(st.Replayed))
	}
	return sys, nil
}
